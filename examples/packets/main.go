// Packets: the stream-to-stream windowed join of Listing 7 — correlating a
// packet's observation at router R1 with its observation at router R2 over
// a ±2 second sliding window to compute network travel time. Run as a
// streaming Samza job whose output we aggregate into a latency histogram.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"samzasql/internal/executor"
	"samzasql/internal/kafka"
	"samzasql/internal/samza"
	"samzasql/internal/sql/catalog"
	"samzasql/internal/workload"
	"samzasql/internal/yarn"
	"samzasql/internal/zk"
)

const joinQuery = `
SELECT STREAM
  GREATEST(PacketsR1.rowtime, PacketsR2.rowtime) AS rowtime,
  PacketsR1.sourcetime,
  PacketsR1.packetId,
  PacketsR2.rowtime - PacketsR1.rowtime AS timeToTravel
FROM PacketsR1
JOIN PacketsR2 ON
  PacketsR1.rowtime BETWEEN PacketsR2.rowtime - INTERVAL '2' SECOND
    AND PacketsR2.rowtime + INTERVAL '2' SECOND
  AND PacketsR1.packetId = PacketsR2.packetId`

func main() {
	broker := kafka.NewBroker()
	cluster := yarn.NewCluster()
	cluster.AddNode("node-0", yarn.Resource{VCores: 16, MemoryMB: 1 << 16})
	cat := catalog.New()
	if err := workload.DefineCatalog(cat); err != nil {
		log.Fatal(err)
	}
	const pairs = 5000
	if err := workload.ProducePackets(broker, "packets-r1", "packets-r2", 4, pairs, workload.DefaultPacketsConfig()); err != nil {
		log.Fatal(err)
	}
	engine := executor.NewEngine(cat, broker, samza.NewJobRunner(broker, cluster), zk.NewStore())
	engine.Containers = 2

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	p, job, err := engine.ExecuteStream(ctx, joinQuery)
	if err != nil {
		log.Fatal(err)
	}
	defer job.Stop()
	fmt.Printf("streaming join job %s running; collecting travel times...\n", p.JobName)

	consumer := kafka.NewConsumer(broker, "")
	partitions, _ := broker.Partitions(p.OutputTopic)
	for part := int32(0); part < partitions; part++ {
		if err := consumer.Assign(kafka.TopicPartition{Topic: p.OutputTopic, Partition: part}); err != nil {
			log.Fatal(err)
		}
	}

	// Collect all joined rows (every packet reaches R2 within the window).
	histogram := make([]int, 8) // 0-250ms, 250-500, ... 1750-2000
	matched := 0
	var sum int64
	for matched < pairs {
		pollCtx, pollCancel := context.WithTimeout(ctx, 3*time.Second)
		msgs, err := consumer.Poll(pollCtx, 1024)
		pollCancel()
		if err != nil || len(msgs) == 0 {
			break
		}
		for _, m := range msgs {
			row, err := p.Program.OutputCodec.DecodeRow(m.Value, nil)
			if err != nil {
				log.Fatal(err)
			}
			travel := row[3].(int64)
			bucket := int(travel / 250)
			if bucket >= len(histogram) {
				bucket = len(histogram) - 1
			}
			histogram[bucket]++
			sum += travel
			matched++
		}
	}

	fmt.Printf("\nR1→R2 travel time over %d matched packets (avg %.0f ms):\n",
		matched, float64(sum)/float64(matched))
	for i, count := range histogram {
		bar := ""
		for j := 0; j < count*40/pairs; j++ {
			bar += "#"
		}
		fmt.Printf("%4d-%4dms %5d %s\n", i*250, (i+1)*250, count, bar)
	}
	if matched != pairs {
		fmt.Printf("note: %d packets unmatched (still in flight when tailing stopped)\n", pairs-matched)
	}
}

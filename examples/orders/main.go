// Orders analytics: the view / sub-query / windowed-aggregate pipeline of
// §3.5-3.6 — Listing 3's HourlyOrderTotals view, its sub-query equivalent,
// Listing 4's TUMBLE aggregation and Listing 5's aligned HOP window — all
// evaluated over the same synthetic Orders stream.
package main

import (
	"fmt"
	"log"
	"time"

	"samzasql/internal/executor"
	"samzasql/internal/kafka"
	"samzasql/internal/samza"
	"samzasql/internal/sql/catalog"
	"samzasql/internal/workload"
	"samzasql/internal/yarn"
	"samzasql/internal/zk"
)

func main() {
	broker := kafka.NewBroker()
	cluster := yarn.NewCluster()
	cluster.AddNode("node-0", yarn.Resource{VCores: 16, MemoryMB: 1 << 16})
	cat := catalog.New()
	if err := workload.DefineCatalog(cat); err != nil {
		log.Fatal(err)
	}
	// A denser clock (1 record/s of event time) makes hourly windows small
	// enough to demo; ~5.5 hours of orders.
	cfg := workload.DefaultOrdersConfig()
	cfg.TsStepMillis = 1000
	if _, err := workload.ProduceOrders(broker, "orders", 4, 20_000, cfg); err != nil {
		log.Fatal(err)
	}
	engine := executor.NewEngine(cat, broker, samza.NewJobRunner(broker, cluster), zk.NewStore())

	// Listing 3: a view over a grouped aggregate...
	if _, err := engine.CreateView(`
		CREATE VIEW HourlyOrderTotals (rowtime, productId, c, su) AS
		SELECT FLOOR(rowtime TO HOUR), productId, COUNT(*), SUM(units)
		FROM Orders
		GROUP BY FLOOR(rowtime TO HOUR), productId`); err != nil {
		log.Fatal(err)
	}
	rows, err := engine.ExecuteBounded(`
		SELECT rowtime, productId FROM HourlyOrderTotals WHERE c > 40 OR su > 2500`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("-- Listing 3 (view): %d hot (hour, product) buckets --\n", len(rows))
	for _, r := range preview(rows, 5) {
		fmt.Printf("hour=%s product=%v\n", hourOf(r[0]), r[1])
	}

	// ...and the equivalent sub-query form.
	rows2, err := engine.ExecuteBounded(`
		SELECT rowtime, productId FROM (
		  SELECT FLOOR(rowtime TO HOUR) AS rowtime, productId,
		    COUNT(*) AS c, SUM(units) AS su
		  FROM Orders GROUP BY FLOOR(rowtime TO HOUR), productId)
		WHERE c > 40 OR su > 2500`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n-- Listing 3 (sub-query): %d buckets (must match the view: %v) --\n",
		len(rows2), len(rows) == len(rows2))

	// Listing 4: hourly order counts with a TUMBLE window.
	rows, err = engine.ExecuteBounded(`
		SELECT START(rowtime), COUNT(*) FROM Orders
		GROUP BY TUMBLE(rowtime, INTERVAL '1' HOUR)`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n-- Listing 4 (TUMBLE): hourly order counts --")
	for _, r := range rows {
		fmt.Printf("hour starting %s: %v orders\n", hourOf(r[0]), r[1])
	}

	// Listing 5: 2-hour totals emitted every 90 minutes, aligned to :30.
	rows, err = engine.ExecuteBounded(`
		SELECT START(rowtime), END(rowtime), COUNT(*) FROM Orders
		GROUP BY HOP(rowtime, INTERVAL '1:30' HOUR TO MINUTE,
		  INTERVAL '2' HOUR, TIME '0:30')`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n-- Listing 5 (aligned HOP): 2h totals every 90min from :30 --")
	for _, r := range rows {
		fmt.Printf("[%s .. %s): %v orders\n", hourOf(r[0]), hourOf(r[1]), r[2])
	}
}

func preview(rows [][]any, n int) [][]any {
	if len(rows) > n {
		return rows[:n]
	}
	return rows
}

func hourOf(v any) string {
	ms, _ := v.(int64)
	return time.UnixMilli(ms).UTC().Format("2006-01-02 15:04")
}

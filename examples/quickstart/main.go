// Quickstart: boot an embedded SamzaSQL stack (broker + YARN sim + engine),
// load the paper's demo schema and data, and run the two §5.1 starter
// queries — a bounded (table-mode) aggregate and a streaming filter whose
// Samza job output we tail.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"samzasql/internal/executor"
	"samzasql/internal/kafka"
	"samzasql/internal/samza"
	"samzasql/internal/sql/catalog"
	"samzasql/internal/workload"
	"samzasql/internal/yarn"
	"samzasql/internal/zk"
)

func main() {
	// 1. Substrate: in-process Kafka-like broker and YARN-like cluster.
	broker := kafka.NewBroker()
	cluster := yarn.NewCluster()
	cluster.AddNode("node-0", yarn.Resource{VCores: 16, MemoryMB: 1 << 16})

	// 2. Catalog: the running example of §3.2 (Orders stream, Products
	// table, Packets streams), plus synthetic data.
	cat := catalog.New()
	if err := workload.DefineCatalog(cat); err != nil {
		log.Fatal(err)
	}
	if _, err := workload.ProduceOrders(broker, "orders", 4, 5000, workload.DefaultOrdersConfig()); err != nil {
		log.Fatal(err)
	}

	// 3. Engine: parse → validate → plan → optimize → compile → run.
	engine := executor.NewEngine(cat, broker, samza.NewJobRunner(broker, cluster), zk.NewStore())

	// Table mode: without STREAM the query runs over the stream's history
	// (§3.3) and returns rows directly.
	rows, err := engine.ExecuteBounded(`
		SELECT productId, COUNT(*) AS orders, SUM(units) AS units
		FROM Orders GROUP BY productId HAVING COUNT(*) > 55`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("-- busiest products (table mode) --")
	for _, r := range rows {
		fmt.Printf("product %-3v  orders=%-3v  units=%v\n", r[0], r[1], r[2])
	}

	// Streaming mode: SELECT STREAM compiles to a Samza job; results land
	// on an output topic as the job consumes the stream.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	p, job, err := engine.ExecuteStream(ctx, `
		SELECT STREAM rowtime, productId, units FROM Orders WHERE units > 95`)
	if err != nil {
		log.Fatal(err)
	}
	defer job.Stop()

	fmt.Printf("\n-- streaming filter (job %s, topic %s) --\n", p.JobName, p.OutputTopic)
	consumer := kafka.NewConsumer(broker, "")
	partitions, _ := broker.Partitions(p.OutputTopic)
	for part := int32(0); part < partitions; part++ {
		if err := consumer.Assign(kafka.TopicPartition{Topic: p.OutputTopic, Partition: part}); err != nil {
			log.Fatal(err)
		}
	}
	printed := 0
	for printed < 10 {
		pollCtx, pollCancel := context.WithTimeout(ctx, 2*time.Second)
		msgs, err := consumer.Poll(pollCtx, 10-printed)
		pollCancel()
		if err != nil || len(msgs) == 0 {
			break
		}
		for _, m := range msgs {
			row, err := p.Program.OutputCodec.DecodeRow(m.Value, nil)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("rowtime=%v product=%-3v units=%v\n", row[0], row[1], row[2])
			printed++
		}
	}
	fmt.Printf("(%d high-value orders shown)\n", printed)
}

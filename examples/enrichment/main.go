// Enrichment: the stream-to-relation join of Listing 8 / §4.4 — Orders
// enriched with each product's supplier from the Products relation, which
// reaches the join as a bootstrapped changelog stream. The example also
// updates the relation WHILE the job runs, showing that changelog updates
// keep flowing into the join's cached copy after bootstrap.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"samzasql/internal/avro"
	"samzasql/internal/executor"
	"samzasql/internal/kafka"
	"samzasql/internal/samza"
	"samzasql/internal/sql/catalog"
	"samzasql/internal/workload"
	"samzasql/internal/yarn"
	"samzasql/internal/zk"
)

const enrichQuery = `
SELECT STREAM
  Orders.rowtime, Orders.orderId, Orders.productId, Orders.units,
  Products.supplierId
FROM Orders
JOIN Products ON Orders.productId = Products.productId`

func main() {
	broker := kafka.NewBroker()
	cluster := yarn.NewCluster()
	cluster.AddNode("node-0", yarn.Resource{VCores: 16, MemoryMB: 1 << 16})
	cat := catalog.New()
	if err := workload.DefineCatalog(cat); err != nil {
		log.Fatal(err)
	}
	const partitions = 4
	if err := workload.ProduceProducts(broker, "products", partitions, 100); err != nil {
		log.Fatal(err)
	}
	if _, err := workload.ProduceOrders(broker, "orders", partitions, 2000, workload.DefaultOrdersConfig()); err != nil {
		log.Fatal(err)
	}
	engine := executor.NewEngine(cat, broker, samza.NewJobRunner(broker, cluster), zk.NewStore())

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	p, job, err := engine.ExecuteStream(ctx, enrichQuery)
	if err != nil {
		log.Fatal(err)
	}
	defer job.Stop()
	fmt.Printf("enrichment job %s: Products bootstraps first, then Orders flow\n", p.JobName)

	// Tail a few enriched orders.
	consumer := kafka.NewConsumer(broker, "")
	nOut, _ := broker.Partitions(p.OutputTopic)
	for part := int32(0); part < nOut; part++ {
		if err := consumer.Assign(kafka.TopicPartition{Topic: p.OutputTopic, Partition: part}); err != nil {
			log.Fatal(err)
		}
	}
	read := func(max int) [][]any {
		var rows [][]any
		for len(rows) < max {
			pollCtx, pollCancel := context.WithTimeout(ctx, 2*time.Second)
			msgs, err := consumer.Poll(pollCtx, max-len(rows))
			pollCancel()
			if err != nil || len(msgs) == 0 {
				break
			}
			for _, m := range msgs {
				row, err := p.Program.OutputCodec.DecodeRow(m.Value, nil)
				if err != nil {
					log.Fatal(err)
				}
				rows = append(rows, row)
			}
		}
		return rows
	}
	fmt.Println("\n-- first enriched orders (supplierId = productId % 10) --")
	for _, r := range read(5) {
		fmt.Printf("order=%-5v product=%-3v units=%-3v supplier=%v\n", r[1], r[2], r[3], r[4])
	}

	// Live relation update: product 7 moves to supplier 99 via the
	// changelog; subsequent orders for product 7 must pick it up.
	productsCodec := avro.MustCodec(workload.ProductsSchema())
	update, err := productsCodec.EncodeRow([]any{int64(7), "product-7", int64(99)})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := broker.Produce("products", kafka.Message{
		Partition: -1, Key: []byte("7"), Value: update,
	}); err != nil {
		log.Fatal(err)
	}
	// Wait for the changelog update to flow into the join's cache, then
	// send fresh orders for product 7.
	time.Sleep(100 * time.Millisecond)
	ordersCodec := avro.MustCodec(workload.OrdersSchema())
	for i := 0; i < 3; i++ {
		row := []any{time.Now().UnixMilli(), int64(7), int64(90_000 + i), int64(5), "live"}
		value, err := ordersCodec.EncodeRow(row)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := broker.Produce("orders", kafka.Message{
			Partition: -1, Key: []byte("7"), Value: value,
		}); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Println("\n-- after relation update (product 7 -> supplier 99) --")
	found := false
	deadline := time.Now().Add(10 * time.Second)
	for !found && time.Now().Before(deadline) {
		for _, r := range read(64) {
			if r[2].(int64) == 7 && r[1].(int64) >= 90_000 {
				fmt.Printf("order=%-5v product=%-3v units=%-3v supplier=%v\n", r[1], r[2], r[3], r[4])
				found = r[4].(int64) == 99
			}
		}
	}
	if found {
		fmt.Println("changelog update reached the join cache: OK")
	} else {
		fmt.Println("WARNING: updated supplier never observed")
	}
}

// Command samzasql-bench regenerates the paper's evaluation (§5): for every
// figure it runs the native and SamzaSQL implementations across the
// container sweep and prints the measured series, plus the usability
// (lines-of-code) comparison. Example:
//
//	samzasql-bench -figure all -messages 200000
//	samzasql-bench -figure 5c -containers 1,2,4,8
//	samzasql-bench -figure loc
//	samzasql-bench -figure state                 # store-tuning comparison
//	samzasql-bench -figure all -json BENCH_results.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"samzasql/internal/bench"
)

func main() {
	var (
		figure     = flag.String("figure", "all", "figure to regenerate: 5a, 5b, 5c, 6, figures (all four), state, trace, monitor-smoke, profile-overhead, profile-smoke, hot, loc or all")
		messages   = flag.Int("messages", 200_000, "orders messages per run")
		partitions = flag.Int("partitions", 32, "partitions per topic (paper: 32)")
		products   = flag.Int("products", 100, "products relation cardinality")
		containers = flag.String("containers", "", "comma-separated container counts (default: per-figure sweep)")
		taskPar    = flag.Int("task-parallelism", 0, "max tasks processing concurrently per container (0 = all tasks parallel, 1 = sequential container loop); sweep at fixed -containers to measure tasks-per-core scaling")
		check      = flag.Bool("check", false, "verify the measured shape matches the paper and exit non-zero otherwise")
		mAddr      = flag.String("metrics-addr", "", "serve /metrics, /healthz and /debug/pprof/ on this address during runs (e.g. 127.0.0.1:8642)")
		mInterval  = flag.Duration("metrics-interval", 0, "enable the per-container metrics snapshot reporter at this period (e.g. 500ms) and print per-operator latency tables")
		storeCache = flag.Int("store-cache", 0, "wrap every task store in an LRU object cache of this many entries (0 = paper-faithful per-tuple store path)")
		writeBatch = flag.Int("write-batch", 0, "batch store/changelog writes until commit, capped at this many dirty keys (0 = write-through mirroring)")
		traceRate  = flag.Float64("trace-sample-rate", 0, "sample roughly this fraction of produced messages into end-to-end span trees (0 = tracing off)")
		traceRnds  = flag.Int("trace-rounds", 5, "rounds per point for -figure trace (best-of comparison)")
		profIntv   = flag.Duration("profile-interval", 0, "run each job's continuous profiler at this capture period (e.g. 1s; 0 = profiling off)")
		profWindow = flag.Duration("profile-window", 0, "CPU sampling length within each profile interval (0 = profiler default; equal to the interval = always-on)")
		profRnds   = flag.Int("profile-rounds", 5, "rounds per point for -figure profile-overhead (best-of comparison)")
		artifacts  = flag.String("artifacts", "", "directory for raw /profile JSON artifacts from -figure profile-smoke (empty = don't save)")
		monitorOn  = flag.Bool("monitor", false, "attach the cluster monitor to every run (tails __metrics/__traces, evaluates SLO rules onto __alerts) and print each SamzaSQL run's lag-recovery series")
		batchSize  = flag.Int("batch-size", 0, "vectorized delivery granularity for SamzaSQL jobs: messages per columnar block (0 = framework default, -1 = per-message scalar path)")
		jsonPath   = flag.String("json", "", "also write the measured series as machine-readable JSON to this path (e.g. BENCH_results.json)")
		compare    = flag.String("compare", "", "diff measured sql_native_ratio per figure against this baseline JSON report (e.g. the committed BENCH_results.json); exits 3 on a >10% regression")
	)
	flag.Parse()

	cfg := bench.DefaultConfig()
	cfg.Messages = *messages
	cfg.Partitions = int32(*partitions)
	cfg.Products = *products
	if *taskPar < 0 {
		fatalf("bad -task-parallelism value %d", *taskPar)
	}
	cfg.TaskParallelism = *taskPar
	cfg.MetricsAddr = *mAddr
	cfg.MetricsInterval = *mInterval
	if *storeCache < 0 {
		fatalf("bad -store-cache value %d", *storeCache)
	}
	cfg.StoreCacheSize = *storeCache
	cfg.WriteBatchSize = *writeBatch
	if *traceRate < 0 || *traceRate > 1 {
		fatalf("bad -trace-sample-rate value %v (want [0, 1])", *traceRate)
	}
	cfg.TraceSampleRate = *traceRate
	if *profIntv < 0 || *profWindow < 0 {
		fatalf("bad -profile-interval/-profile-window (want >= 0)")
	}
	cfg.ProfileInterval = *profIntv
	cfg.ProfileWindow = *profWindow
	cfg.Monitor = *monitorOn
	if *batchSize < -1 {
		fatalf("bad -batch-size value %d (want >= -1)", *batchSize)
	}
	cfg.BatchSize = *batchSize

	var sweep []int
	if *containers != "" {
		for _, part := range strings.Split(*containers, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n < 1 {
				fatalf("bad -containers value %q", part)
			}
			sweep = append(sweep, n)
		}
	}

	report := &bench.Report{Messages: cfg.Messages, Partitions: cfg.Partitions}
	failed := false
	runOne := func(spec bench.FigureSpec) {
		if len(sweep) > 0 {
			spec.Containers = sweep
		}
		rows, err := bench.RunFigure(spec, cfg)
		if err != nil {
			fatalf("figure %s: %v", spec.ID, err)
		}
		fmt.Println(bench.FormatFigure(spec, rows))
		if *mInterval > 0 {
			if tbl := bench.FormatOperatorLatencies(spec, rows); tbl != "" {
				fmt.Println(tbl)
			}
		}
		report.Figures = append(report.Figures, bench.ReportFigure(spec, rows))
		if *check {
			for _, v := range bench.CheckShape(spec, rows) {
				fmt.Fprintf(os.Stderr, "SHAPE MISMATCH (figure %s): %s\n", spec.ID, v)
				failed = true
			}
		}
	}
	// runStoreTuning measures the sliding-window store micro comparison
	// (cache+batch on vs. off) behind the "state" figure.
	runStoreTuning := func() {
		cmp, err := bench.RunStoreTuning(cfg.Messages, *storeCache, *writeBatch)
		if err != nil {
			fatalf("store tuning: %v", err)
		}
		fmt.Println(bench.FormatStoreTuning(cmp))
		report.StoreTuning = &cmp
	}

	// runTraceOverhead measures tracing cost at sample rates 0, 0.01, 1.0
	// on the filter and sliding-window benchmarks, behind "-figure trace".
	runTraceOverhead := func() {
		rows, err := bench.RunTraceOverhead(cfg.Messages, *traceRnds)
		if err != nil {
			fatalf("trace overhead: %v", err)
		}
		fmt.Println(bench.FormatTraceOverhead(rows))
	}

	// runMonitorSmoke drives the monitored lag-spike scenario end to end
	// over the introspection HTTP surface, behind "-figure monitor-smoke"
	// and `make monitor-smoke`.
	runMonitorSmoke := func() {
		r, err := bench.RunMonitorSmoke(cfg.Messages)
		if err != nil {
			fatalf("monitor smoke: %v", err)
		}
		fmt.Println(bench.FormatMonitorSmoke(r))
	}

	// runProfileOverhead measures continuous-profiling cost off/default/
	// aggressive on the filter benchmark, behind "-figure profile-overhead".
	runProfileOverhead := func() {
		rows, err := bench.RunProfileOverhead(cfg.Messages, *profRnds)
		if err != nil {
			fatalf("profile overhead: %v", err)
		}
		fmt.Println(bench.FormatProfileOverhead(rows))
	}

	// runProfileSmoke drives a two-container profiled job and asserts the
	// cluster-merged /profile surface over HTTP, behind "-figure
	// profile-smoke" and `make profile-smoke`.
	runProfileSmoke := func() {
		r, err := bench.RunProfileSmoke(cfg.Messages, *artifacts)
		if err != nil {
			fatalf("profile smoke: %v", err)
		}
		fmt.Println(bench.FormatProfileSmoke(r))
	}

	// runHot collects the CPU hot-function baseline from a profiled filter
	// run, behind "-figure hot"; it lands in -json for bench-compare
	// attribution.
	runHot := func() {
		funcs, err := bench.CollectHotFunctions(cfg.Messages)
		if err != nil {
			fatalf("hot functions: %v", err)
		}
		fmt.Println(bench.FormatHotFunctions(funcs))
		report.HotFunctions = funcs
	}

	switch *figure {
	case "all":
		for _, spec := range bench.Figures {
			runOne(spec)
		}
		runStoreTuning()
		printLOC()
	case "figures":
		for _, spec := range bench.Figures {
			runOne(spec)
		}
	case "state":
		runStoreTuning()
	case "trace":
		runTraceOverhead()
	case "monitor-smoke":
		runMonitorSmoke()
	case "profile-overhead":
		runProfileOverhead()
	case "profile-smoke":
		runProfileSmoke()
	case "hot":
		runHot()
	case "loc":
		printLOC()
	default:
		spec, ok := bench.FigureByID(*figure)
		if !ok {
			fatalf("unknown figure %q (want 5a, 5b, 5c, 6, figures, state, trace, monitor-smoke, profile-overhead, profile-smoke, hot, loc or all)", *figure)
		}
		runOne(spec)
	}
	if *jsonPath != "" {
		// Merge-on-write: a run that didn't collect hot functions (or store
		// tuning) keeps the baseline file's sections instead of erasing them,
		// so `-figure figures -json` doesn't strip the attribution baseline
		// `-figure hot -json` wrote earlier.
		if prev, err := bench.ReadReport(*jsonPath); err == nil {
			if report.Figures == nil {
				report.Figures = prev.Figures
				report.Messages = prev.Messages
				report.Partitions = prev.Partitions
			}
			if report.HotFunctions == nil {
				report.HotFunctions = prev.HotFunctions
			}
			if report.StoreTuning == nil {
				report.StoreTuning = prev.StoreTuning
			}
		}
		if err := report.WriteJSON(*jsonPath); err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}
	if *compare != "" {
		baseline, err := bench.ReadReport(*compare)
		if err != nil {
			fatalf("compare baseline: %v", err)
		}
		table, regressed := bench.FormatComparison(bench.CompareReports(baseline, report, 0.10))
		fmt.Printf("ratio comparison vs %s (>10%% drops flagged):\n%s", *compare, table)
		if regressed {
			// Attribution: re-run the filter benchmark under the profiler and
			// diff hot-function CPU shares against the committed baseline, so
			// the regression report names the function whose share grew.
			if len(baseline.HotFunctions) > 0 {
				fresh, err := bench.CollectHotFunctions(cfg.Messages)
				if err != nil {
					fmt.Fprintf(os.Stderr, "samzasql-bench: regression attribution failed: %v\n", err)
				} else {
					fmt.Printf("regression attribution (profiled filter run vs baseline hot functions, top risers):\n%s",
						bench.FormatHotShifts(bench.CompareHotFunctions(baseline.HotFunctions, fresh), 8))
				}
			} else {
				fmt.Println("no hot-function baseline in the compare report; run `-figure hot -json` to record one for attribution")
			}
			os.Exit(3)
		}
	}
	if failed {
		os.Exit(1)
	}
}

func printLOC() {
	rows, err := bench.LOCTable()
	if err != nil {
		fatalf("loc table: %v", err)
	}
	fmt.Println(bench.FormatLOC(rows))
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "samzasql-bench: "+format+"\n", args...)
	os.Exit(1)
}

// Command samzasql-vet runs the project's static-analysis suite — the
// machine-checked form of the runtime's hot-path, locking and commit-order
// invariants — over the module's packages and exits non-zero on findings.
//
// Usage:
//
//	go run ./cmd/samzasql-vet ./...            # whole module (what make ci runs)
//	go run ./cmd/samzasql-vet ./internal/...   # one subtree
//	go run ./cmd/samzasql-vet -list            # describe the analyzers
//	go run ./cmd/samzasql-vet -run hotpath-alloc,error-drop ./...
//
// Findings print as file:line:col: analyzer: message. A finding covered by a
// //samzasql:ignore directive is suppressed (shown with -show-ignored).
// Exit status: 0 clean, 1 findings, 2 usage or load/type-check failure.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"samzasql/internal/analysis"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		list        = flag.Bool("list", false, "list the analyzers and exit")
		only        = flag.String("run", "", "comma-separated analyzer names to run (default: all)")
		showIgnored = flag.Bool("show-ignored", false, "also print findings suppressed by //samzasql:ignore")
	)
	flag.Parse()

	if *list {
		for _, a := range analysis.Suite() {
			fmt.Printf("%-22s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers := analysis.Suite()
	if *only != "" {
		analyzers = analyzers[:0:0]
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(name)
			a := analysis.ByName(name)
			if a == nil {
				fmt.Fprintf(os.Stderr, "samzasql-vet: unknown analyzer %q (use -list)\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	root, err := findModuleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "samzasql-vet:", err)
		return 2
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "samzasql-vet:", err)
		return 2
	}
	pkgs, err := loader.LoadPatterns(flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "samzasql-vet:", err)
		return 2
	}

	diags := analysis.Run(pkgs, analyzers)
	cwd, _ := os.Getwd()
	failures := 0
	for _, d := range diags {
		if d.Suppressed && !*showIgnored {
			continue
		}
		file := d.Pos.Filename
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, file); err == nil && !strings.HasPrefix(rel, "..") {
				file = rel
			}
		}
		note := ""
		if d.Suppressed {
			note = " (suppressed by //samzasql:ignore)"
		} else {
			failures++
		}
		fmt.Printf("%s:%d:%d: %s: %s%s\n", file, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message, note)
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "samzasql-vet: %d finding(s) in %d package(s)\n", failures, len(pkgs))
		return 1
	}
	return 0
}

// findModuleRoot walks up from the working directory to the nearest go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// Command samzasql-vet runs the project's static-analysis suite — the
// machine-checked form of the runtime's hot-path, locking and commit-order
// invariants — over the module's packages and exits non-zero on findings.
//
// Usage:
//
//	go run ./cmd/samzasql-vet ./...            # whole module (what make ci runs)
//	go run ./cmd/samzasql-vet ./internal/...   # one subtree
//	go run ./cmd/samzasql-vet -list            # describe the analyzers
//	go run ./cmd/samzasql-vet -run hotpath-alloc,error-drop ./...
//
// Findings print as file:line:col: analyzer: message. A finding covered by a
// //samzasql:ignore directive is suppressed (shown with -show-ignored).
// With -json every finding — suppressed ones included, so consumers can
// audit the suppression set — prints as one JSON object per line:
//
//	{"rule":"lock-order","pos":"internal/kv/cached.go:12:3","message":"…","suppressed":false}
//
// Exit status: 0 clean, 1 findings, 2 usage or load/type-check failure. In
// both modes only unsuppressed findings fail the run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"samzasql/internal/analysis"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		list        = flag.Bool("list", false, "list the analyzers and exit")
		only        = flag.String("run", "", "comma-separated analyzer names to run (default: all)")
		showIgnored = flag.Bool("show-ignored", false, "also print findings suppressed by //samzasql:ignore")
		jsonOut     = flag.Bool("json", false, "print one JSON object per finding (suppressed included) instead of text")
	)
	flag.Parse()

	if *list {
		for _, a := range analysis.Suite() {
			fmt.Printf("%-22s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers := analysis.Suite()
	if *only != "" {
		analyzers = analyzers[:0:0]
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(name)
			a := analysis.ByName(name)
			if a == nil {
				fmt.Fprintf(os.Stderr, "samzasql-vet: unknown analyzer %q (use -list)\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	root, err := findModuleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "samzasql-vet:", err)
		return 2
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "samzasql-vet:", err)
		return 2
	}
	pkgs, err := loader.LoadPatterns(flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "samzasql-vet:", err)
		return 2
	}

	diags := analysis.Run(pkgs, analyzers)
	cwd, _ := os.Getwd()
	enc := json.NewEncoder(os.Stdout)
	failures := 0
	for _, d := range diags {
		if d.Suppressed && !*showIgnored && !*jsonOut {
			continue
		}
		file := d.Pos.Filename
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, file); err == nil && !strings.HasPrefix(rel, "..") {
				file = rel
			}
		}
		if !d.Suppressed {
			failures++
		}
		if *jsonOut {
			enc.Encode(jsonFinding{
				Rule:       d.Analyzer,
				Pos:        fmt.Sprintf("%s:%d:%d", file, d.Pos.Line, d.Pos.Column),
				File:       file,
				Line:       d.Pos.Line,
				Col:        d.Pos.Column,
				Message:    d.Message,
				Suppressed: d.Suppressed,
			})
			continue
		}
		note := ""
		if d.Suppressed {
			note = " (suppressed by //samzasql:ignore)"
		}
		fmt.Printf("%s:%d:%d: %s: %s%s\n", file, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message, note)
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "samzasql-vet: %d finding(s) in %d package(s)\n", failures, len(pkgs))
		return 1
	}
	return 0
}

// jsonFinding is the -json line schema. Pos duplicates File/Line/Col as one
// clickable string; both forms stay so shell pipelines and structured
// consumers each get the shape they want.
type jsonFinding struct {
	Rule       string `json:"rule"`
	Pos        string `json:"pos"`
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
}

// findModuleRoot walks up from the working directory to the nearest go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

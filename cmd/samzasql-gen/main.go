// Command samzasql-gen generates the §5.1 synthetic evaluation workload:
// 100-byte Avro Orders records, the Products relation, and the correlated
// PacketsR1/R2 streams. Records are written as JSON lines (for inspection)
// or length-prefixed Avro binary frames (for replay into a broker).
//
//	samzasql-gen -stream orders -count 10 -format json
//	samzasql-gen -stream products -count 100 -format avro -out products.bin
package main

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"samzasql/internal/avro"
	"samzasql/internal/kafka"
	"samzasql/internal/workload"
)

func main() {
	var (
		stream  = flag.String("stream", "orders", "stream to generate: orders, products, packets-r1, packets-r2")
		count   = flag.Int("count", 10, "records to generate")
		format  = flag.String("format", "json", "output format: json or avro")
		outPath = flag.String("out", "-", "output file (default stdout)")
		seed    = flag.Int64("seed", 42, "generator seed")
	)
	flag.Parse()

	out := io.Writer(os.Stdout)
	if *outPath != "-" {
		f, err := os.Create(*outPath)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		out = f
	}
	w := bufio.NewWriter(out)
	defer w.Flush()

	var (
		codec *avro.Codec
		next  func() ([]byte, error)
	)
	switch *stream {
	case "orders":
		cfg := workload.DefaultOrdersConfig()
		cfg.Seed = *seed
		gen := workload.NewOrdersGen(cfg)
		codec = gen.Codec()
		next = func() ([]byte, error) {
			_, _, value, err := gen.Next()
			return value, err
		}
	case "products":
		codec = avro.MustCodec(workload.ProductsSchema())
		id := 0
		next = func() ([]byte, error) {
			row := []any{int64(id), fmt.Sprintf("product-%d", id), int64(id % 10)}
			id++
			return codec.EncodeRow(row)
		}
	case "packets-r1", "packets-r2":
		// Generate through a scratch broker so R1/R2 stay correlated.
		b := kafka.NewBroker()
		cfg := workload.DefaultPacketsConfig()
		cfg.Seed = *seed
		if err := workload.ProducePackets(b, "packets-r1", "packets-r2", 1, *count, cfg); err != nil {
			fatalf("%v", err)
		}
		name := "PacketsR1"
		if *stream == "packets-r2" {
			name = "PacketsR2"
		}
		codec = avro.MustCodec(workload.PacketsSchema(name))
		tp := kafka.TopicPartition{Topic: *stream, Partition: 0}
		off := int64(0)
		next = func() ([]byte, error) {
			msgs, _, err := b.Fetch(tp, off, 1)
			if err != nil || len(msgs) == 0 {
				return nil, fmt.Errorf("exhausted packets stream")
			}
			off = msgs[0].Offset + 1
			return msgs[0].Value, nil
		}
	default:
		fatalf("unknown stream %q", *stream)
	}

	for i := 0; i < *count; i++ {
		value, err := next()
		if err != nil {
			fatalf("generate: %v", err)
		}
		switch *format {
		case "json":
			rec, err := codec.Decode(value)
			if err != nil {
				fatalf("decode: %v", err)
			}
			line, err := json.Marshal(rec)
			if err != nil {
				fatalf("marshal: %v", err)
			}
			fmt.Fprintf(w, "%s\n", line)
		case "avro":
			var hdr [4]byte
			binary.BigEndian.PutUint32(hdr[:], uint32(len(value)))
			if _, err := w.Write(hdr[:]); err != nil {
				fatalf("write: %v", err)
			}
			if _, err := w.Write(value); err != nil {
				fatalf("write: %v", err)
			}
		default:
			fatalf("unknown format %q", *format)
		}
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "samzasql-gen: "+format+"\n", args...)
	os.Exit(1)
}

// Command samzasql-shell is the interactive SamzaSQL shell (§4.1): it
// parses statements, plans them, and either evaluates them over stream
// history (table mode) or submits them as Samza jobs to the embedded
// cluster and tails the result stream. The SqlLine/JDBC stack of the paper
// collapses to this REPL over the same two-step planning pipeline.
//
//	samzasql-shell -demo
//	samzasql> SELECT STREAM * FROM Orders WHERE units > 90;
//	samzasql> EXPLAIN SELECT STREAM productId, units FROM Orders;
//	samzasql> !tables
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"samzasql/internal/executor"
	"samzasql/internal/kafka"
	"samzasql/internal/monitor"
	"samzasql/internal/samza"
	"samzasql/internal/sql/catalog"
	"samzasql/internal/workload"
	"samzasql/internal/yarn"
	"samzasql/internal/zk"
)

func main() {
	var (
		modelPath  = flag.String("model", "", "JSON model file describing streams and tables")
		demo       = flag.Bool("demo", false, "preload the paper's demo schema and synthetic data")
		demoOrders = flag.Int("demo-orders", 10_000, "demo Orders records")
		streamRows = flag.Int("stream-rows", 20, "rows to tail from a streaming query before stopping it")
		partitions = flag.Int("partitions", 4, "partitions for demo topics")
		storeCache = flag.Int("store-cache", 0, "wrap task stores of submitted jobs in an LRU object cache of this many entries (0 = per-tuple store path)")
		writeBatch = flag.Int("write-batch", 0, "batch store/changelog writes until commit, capped at this many dirty keys (0 = write-through mirroring)")
		traceRate  = flag.Float64("trace-sample-rate", 0, "sample roughly this fraction of produced messages into end-to-end span trees (0 = tracing off; see \\trace and EXPLAIN ANALYZE)")
		batchSize  = flag.Int("batch-size", 0, "vectorized delivery granularity for submitted jobs: messages per columnar block (0 = framework default, -1 = per-message scalar path)")
		monitorOn  = flag.Bool("monitor", false, "attach the cluster monitor: tail __metrics/__traces/__profiles into the time-series and hot-function stores, evaluate SLO rules onto __alerts, and enable \\top, \\alerts and \\profile")
		mInterval  = flag.Duration("metrics-interval", 0, "per-container metrics snapshot period for submitted jobs (default 100ms when -monitor is on, else off)")
		profIntv   = flag.Duration("profile-interval", 0, "continuous-profiling capture period for submitted jobs (e.g. 1s; default 1s when -monitor is on, 0 = off)")
		profWindow = flag.Duration("profile-window", 0, "CPU sampling length within each profile interval (0 = profiler default 200ms)")
	)
	flag.Parse()

	broker := kafka.NewBroker()
	cluster := yarn.NewCluster()
	cluster.AddNode("node-0", yarn.Resource{VCores: 64, MemoryMB: 1 << 20})
	cluster.AddNode("node-1", yarn.Resource{VCores: 64, MemoryMB: 1 << 20})
	cat := catalog.New()
	engine := executor.NewEngine(cat, broker, samza.NewJobRunner(broker, cluster), zk.NewStore())
	engine.Containers = 2
	if *storeCache < 0 {
		fatalf("bad -store-cache value %d", *storeCache)
	}
	engine.StoreCacheSize = *storeCache
	engine.WriteBatchSize = *writeBatch
	if *traceRate < 0 || *traceRate > 1 {
		fatalf("bad -trace-sample-rate value %v (want [0, 1])", *traceRate)
	}
	engine.TraceSampleRate = *traceRate
	if *batchSize < -1 {
		fatalf("bad -batch-size value %d (want >= -1)", *batchSize)
	}
	engine.BatchSize = *batchSize
	if *traceRate > 0 {
		// Trace contexts attach at produce time, so the sampler must be on
		// the broker before the demo data (or any piped INSERTs) land.
		broker.SetTraceSampling(*traceRate)
	}
	if *mInterval < 0 {
		fatalf("bad -metrics-interval value %v", *mInterval)
	}
	engine.MetricsInterval = *mInterval
	if *profIntv < 0 || *profWindow < 0 {
		fatalf("bad -profile-interval/-profile-window (want >= 0)")
	}
	engine.ProfileInterval = *profIntv
	engine.ProfileWindow = *profWindow
	var mon *monitor.Monitor
	if *monitorOn {
		if engine.MetricsInterval == 0 {
			// The monitor only sees what jobs publish on __metrics.
			engine.MetricsInterval = 100 * time.Millisecond
		}
		if engine.ProfileInterval == 0 {
			// Continuous profiling rides along so \profile answers without
			// extra flags; the default duty cycle costs a few percent at most.
			engine.ProfileInterval = time.Second
		}
		runner := engine.Runner
		var err error
		mon, err = monitor.Start(monitor.Config{
			Broker: broker,
			Health: func() map[string]map[string]string {
				out := map[string]map[string]string{}
				for _, j := range runner.Jobs() {
					out[j.Spec.Name] = j.TaskHealth()
				}
				return out
			},
		})
		if err != nil {
			fatalf("starting monitor: %v", err)
		}
		defer mon.Stop()
		fmt.Println("cluster monitor attached (\\top for the live overview, \\alerts for SLO state, \\profile for hot functions)")
	}

	if *modelPath != "" {
		doc, err := os.ReadFile(*modelPath)
		if err != nil {
			fatalf("reading model: %v", err)
		}
		if err := cat.LoadModel(doc); err != nil {
			fatalf("loading model: %v", err)
		}
	}
	if *demo {
		if err := workload.DefineCatalog(cat); err != nil {
			fatalf("demo catalog: %v", err)
		}
		p := int32(*partitions)
		if _, err := workload.ProduceOrders(broker, "orders", p, *demoOrders, workload.DefaultOrdersConfig()); err != nil {
			fatalf("demo orders: %v", err)
		}
		if err := workload.ProduceProducts(broker, "products", p, 100); err != nil {
			fatalf("demo products: %v", err)
		}
		if err := workload.ProducePackets(broker, "packets-r1", "packets-r2", p, 1000, workload.DefaultPacketsConfig()); err != nil {
			fatalf("demo packets: %v", err)
		}
		fmt.Printf("demo data loaded: %d orders, 100 products, 1000 packet pairs (%d partitions)\n",
			*demoOrders, p)
	}

	fmt.Println("SamzaSQL shell — statements end with ';', '!help' for commands")
	repl(engine, mon, *streamRows)
}

func repl(engine *executor.Engine, mon *monitor.Monitor, streamRows int) {
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := "samzasql> "
	for {
		fmt.Print(prompt)
		if !scanner.Scan() {
			fmt.Println()
			return
		}
		line := scanner.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && (strings.HasPrefix(trimmed, "!") || strings.HasPrefix(trimmed, `\`)) {
			if !command(engine, mon, trimmed) {
				return
			}
			continue
		}
		buf.WriteString(line)
		buf.WriteString("\n")
		if !strings.Contains(line, ";") {
			prompt = "      ...> "
			continue
		}
		stmt := strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(buf.String()), ";"))
		buf.Reset()
		prompt = "samzasql> "
		if stmt == "" {
			continue
		}
		execute(engine, stmt, streamRows)
	}
}

func command(engine *executor.Engine, mon *monitor.Monitor, cmd string) bool {
	switch strings.Fields(cmd)[0] {
	case "!quit", "!exit":
		return false
	case "!tables":
		for _, name := range engine.Catalog.Names() {
			obj, err := engine.Catalog.Resolve(name)
			if err != nil {
				continue
			}
			fmt.Printf("  %-24s %-7s %s\n", name, obj.Kind, describe(obj))
		}
	case `\metrics`, "!metrics":
		printMetrics(engine)
	case `\trace`, "!trace":
		engine.Runner.WriteTraces(os.Stdout)
	case `\top`, "!top":
		if mon == nil {
			fmt.Println("\\top needs the cluster monitor (restart with -monitor)")
			break
		}
		mon.WriteTop(os.Stdout, time.Now())
	case `\alerts`, "!alerts":
		if mon == nil {
			fmt.Println("\\alerts needs the cluster monitor (restart with -monitor)")
			break
		}
		printAlerts(mon)
	case `\profile`, "!profile":
		if mon == nil {
			fmt.Println("\\profile needs the cluster monitor (restart with -monitor)")
			break
		}
		mon.WriteProfile(os.Stdout, 10, time.Minute, time.Now())
	case "!help":
		fmt.Println(`  <statement>;              run a SQL statement (SELECT [STREAM], CREATE VIEW, INSERT INTO)
  EXPLAIN <query>;          print the optimized plan
  EXPLAIN ANALYZE <query>;  run the query briefly and print the plan with live per-operator stats
  !tables                   list catalog objects
  \metrics                  dump metrics of every submitted job (counters, gauges, latency histograms)
  \trace                    dump recent sampled span trees per job (needs -trace-sample-rate > 0)
  \top                      live job overview: throughput, task latency, lag sparklines, slowest operators (needs -monitor)
  \alerts                   firing SLO alerts and the recent transition log (needs -monitor)
  \profile                  cluster-merged hot functions: CPU flat/cum per job plus top allocators (needs -monitor)
  !quit                     leave the shell`)
	default:
		fmt.Printf("unknown command %s (try !help)\n", cmd)
	}
	return true
}

// printMetrics dumps every submitted job's merged registry in the text
// format of the /metrics endpoint, with consumer-lag gauges refreshed.
func printMetrics(engine *executor.Engine) {
	jobs := engine.Runner.Jobs()
	if len(jobs) == 0 {
		fmt.Println("no jobs submitted yet")
		return
	}
	for _, j := range jobs {
		j.UpdateLags()
		fmt.Printf("# job %s\n", j.Spec.Name)
		j.MetricsSnapshot().WriteText(os.Stdout)
	}
}

// printAlerts renders the firing alerts and the recent transition log.
func printAlerts(mon *monitor.Monitor) {
	active := mon.ActiveAlerts()
	if len(active) == 0 {
		fmt.Println("no alerts firing")
	}
	for _, a := range active {
		fmt.Printf("FIRING %-28s job=%-24s subject=%-24s value=%d since=%s\n",
			a.Rule, a.Job, a.Subject, a.Value, time.UnixMilli(a.SinceMillis).Format(time.TimeOnly))
	}
	recent := mon.RecentAlerts(16)
	if len(recent) == 0 {
		return
	}
	fmt.Println("recent transitions (newest last):")
	for _, r := range recent {
		fmt.Printf("  %s %-8s %-28s job=%-24s subject=%-24s %s\n",
			time.UnixMilli(r.TimeMillis).Format(time.TimeOnly), r.State, r.Rule, r.Job, r.Subject, r.Reason)
	}
}

func describe(obj *catalog.Object) string {
	if obj.Row == nil {
		return ""
	}
	return obj.Row.String()
}

func execute(engine *executor.Engine, stmt string, streamRows int) {
	upper := strings.ToUpper(stmt)
	switch {
	case strings.HasPrefix(upper, "EXPLAIN ANALYZE"):
		rest := strings.TrimSpace(stmt[len("EXPLAIN ANALYZE"):])
		out, err := engine.ExplainAnalyze(context.Background(), rest, 2*time.Second)
		if err != nil {
			fmt.Println("ERROR:", err)
			return
		}
		fmt.Print(out)
	case strings.HasPrefix(upper, "EXPLAIN"):
		rest := strings.TrimSpace(stmt[len("EXPLAIN"):])
		out, err := engine.Explain(rest)
		if err != nil {
			fmt.Println("ERROR:", err)
			return
		}
		fmt.Print(out)
	case strings.HasPrefix(upper, "CREATE VIEW"):
		p, err := engine.CreateView(stmt)
		if err != nil {
			fmt.Println("ERROR:", err)
			return
		}
		printWarnings(p.Warnings)
		fmt.Printf("view %s created\n", p.Bound.View.Name)
	default:
		p, err := engine.Prepare(stmt)
		if err != nil {
			fmt.Println("ERROR:", err)
			return
		}
		printWarnings(p.Warnings)
		if p.Program.Streaming {
			runStreaming(engine, p, streamRows)
			return
		}
		rows, err := engine.RunBounded(p)
		if err != nil {
			fmt.Println("ERROR:", err)
			return
		}
		printTable(headerOf(p), rows)
		fmt.Printf("(%d rows)\n", len(rows))
	}
}

func headerOf(p *executor.Prepared) []string {
	cols := p.Program.OutputRow.Columns
	out := make([]string, len(cols))
	for i, c := range cols {
		out[i] = c.Name
	}
	return out
}

// runStreaming submits the job and tails its output topic.
func runStreaming(engine *executor.Engine, p *executor.Prepared, maxRows int) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rj, err := engine.Submit(ctx, p)
	if err != nil {
		fmt.Println("ERROR:", err)
		return
	}
	defer rj.Stop()
	fmt.Printf("job %s submitted; tailing %s (up to %d rows, 3s idle timeout)\n",
		p.JobName, p.OutputTopic, maxRows)

	n, err := engine.Broker.Partitions(p.OutputTopic)
	if err != nil {
		fmt.Println("ERROR:", err)
		return
	}
	consumer := kafka.NewConsumer(engine.Broker, "")
	for part := int32(0); part < n; part++ {
		if err := consumer.Assign(kafka.TopicPartition{Topic: p.OutputTopic, Partition: part}); err != nil {
			fmt.Println("ERROR:", err)
			return
		}
	}
	var rows [][]any
	for len(rows) < maxRows {
		pollCtx, pollCancel := context.WithTimeout(ctx, 3*time.Second)
		msgs, err := consumer.Poll(pollCtx, maxRows-len(rows))
		pollCancel()
		if err != nil || len(msgs) == 0 {
			break // idle: assume the job is caught up
		}
		for _, m := range msgs {
			row, err := p.Program.OutputCodec.DecodeRow(m.Value, nil)
			if err != nil {
				fmt.Println("ERROR:", err)
				return
			}
			rows = append(rows, row)
		}
	}
	printTable(headerOf(p), rows)
	fmt.Printf("(%d rows; job stopped)\n", len(rows))
}

func printWarnings(ws []string) {
	for _, w := range ws {
		fmt.Println("WARNING:", w)
	}
}

// printTable renders rows with right-padded columns.
func printTable(header []string, rows [][]any) {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	cells := make([][]string, len(rows))
	for r, row := range rows {
		cells[r] = make([]string, len(header))
		for c := range header {
			v := "NULL"
			if c < len(row) && row[c] != nil {
				v = fmt.Sprintf("%v", row[c])
			}
			cells[r][c] = v
			if len(v) > widths[c] {
				widths[c] = len(v)
			}
		}
	}
	var sep strings.Builder
	for _, w := range widths {
		sep.WriteString("+")
		sep.WriteString(strings.Repeat("-", w+2))
	}
	sep.WriteString("+")
	fmt.Println(sep.String())
	printRow := func(vals []string) {
		for i, v := range vals {
			fmt.Printf("| %-*s ", widths[i], v)
		}
		fmt.Println("|")
	}
	printRow(header)
	fmt.Println(sep.String())
	for _, r := range cells {
		printRow(r)
	}
	fmt.Println(sep.String())
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "samzasql-shell: "+format+"\n", args...)
	os.Exit(1)
}

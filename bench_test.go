package samzasql

// This file regenerates the paper's evaluation (§5) as Go benchmarks: one
// benchmark pair per figure (5a filter, 5b project, 5c join, 6 sliding
// window), each reporting job throughput in msgs/sec, plus ablation
// benchmarks for the design choices called out in DESIGN.md §4. Run with:
//
//	go test -bench=. -benchmem
//
// The cmd/samzasql-bench binary runs the same figures with the paper's full
// container sweep and prints the series side by side.

import (
	"fmt"
	"testing"

	"samzasql/internal/avro"
	"samzasql/internal/bench"
	"samzasql/internal/kv"
	"samzasql/internal/metrics"
	"samzasql/internal/operators"
	"samzasql/internal/serde"
	"samzasql/internal/sql/expr"
	"samzasql/internal/sql/types"
	"samzasql/internal/sql/validate"
	"samzasql/internal/workload"
)

// benchConfig sizes one measured job run inside a testing.B iteration.
func benchConfig(containers int) bench.Config {
	cfg := bench.DefaultConfig()
	cfg.Messages = 50_000
	cfg.Containers = containers
	return cfg
}

// skipLongBench gates the benchmarks that run full jobs behind -short, so
// `go test -race -short -bench .` (the Makefile's verify leg) stays fast.
func skipLongBench(b *testing.B) {
	b.Helper()
	if testing.Short() {
		b.Skip("skipping full-job benchmark sweep in -short mode")
	}
}

// runFigureBenchmark measures one (implementation, query, containers) cell.
func runFigureBenchmark(b *testing.B, impl, query string, containers int) {
	b.Helper()
	skipLongBench(b)
	cfg := benchConfig(containers)
	var total float64
	for i := 0; i < b.N; i++ {
		var (
			res bench.Result
			err error
		)
		if impl == "native" {
			res, err = bench.RunNative(query, cfg)
		} else {
			res, err = bench.RunSQL(query, cfg)
		}
		if err != nil {
			b.Fatal(err)
		}
		total += res.Throughput
	}
	b.ReportMetric(total/float64(b.N), "msgs/sec")
}

// --- Figure 5a: filter query throughput ---

func BenchmarkFigure5aFilterNative1(b *testing.B)   { runFigureBenchmark(b, "native", "filter", 1) }
func BenchmarkFigure5aFilterSamzaSQL1(b *testing.B) { runFigureBenchmark(b, "samzasql", "filter", 1) }
func BenchmarkFigure5aFilterNative4(b *testing.B)   { runFigureBenchmark(b, "native", "filter", 4) }
func BenchmarkFigure5aFilterSamzaSQL4(b *testing.B) { runFigureBenchmark(b, "samzasql", "filter", 4) }

// --- Figure 5b: project query throughput ---

func BenchmarkFigure5bProjectNative1(b *testing.B) { runFigureBenchmark(b, "native", "project", 1) }
func BenchmarkFigure5bProjectSamzaSQL1(b *testing.B) {
	runFigureBenchmark(b, "samzasql", "project", 1)
}
func BenchmarkFigure5bProjectNative4(b *testing.B) { runFigureBenchmark(b, "native", "project", 4) }
func BenchmarkFigure5bProjectSamzaSQL4(b *testing.B) {
	runFigureBenchmark(b, "samzasql", "project", 4)
}

// --- Figure 5c: stream-to-relation join throughput ---

func BenchmarkFigure5cJoinNative1(b *testing.B)   { runFigureBenchmark(b, "native", "join", 1) }
func BenchmarkFigure5cJoinSamzaSQL1(b *testing.B) { runFigureBenchmark(b, "samzasql", "join", 1) }
func BenchmarkFigure5cJoinNative4(b *testing.B)   { runFigureBenchmark(b, "native", "join", 4) }
func BenchmarkFigure5cJoinSamzaSQL4(b *testing.B) { runFigureBenchmark(b, "samzasql", "join", 4) }

// --- Figure 6: sliding window operator throughput ---

func BenchmarkFigure6SlidingWindowNative1(b *testing.B) {
	runFigureBenchmark(b, "native", "window", 1)
}
func BenchmarkFigure6SlidingWindowSamzaSQL1(b *testing.B) {
	runFigureBenchmark(b, "samzasql", "window", 1)
}
func BenchmarkFigure6SlidingWindowNative2(b *testing.B) {
	runFigureBenchmark(b, "native", "window", 2)
}
func BenchmarkFigure6SlidingWindowSamzaSQL2(b *testing.B) {
	runFigureBenchmark(b, "samzasql", "window", 2)
}

// --- Ablation 1 (DESIGN.md §4.1): tuple-as-array transformation ---
//
// Isolates Figure 4's AvroToArray/ArrayToAvro steps: the native filter path
// reads one field from the wire and forwards the original bytes; the
// SamzaSQL path decodes the record to a []any row and re-encodes it.

func BenchmarkAblationTupleTransformNativePath(b *testing.B) {
	codec := avro.MustCodec(workload.OrdersSchema())
	gen := workload.NewOrdersGen(workload.DefaultOrdersConfig())
	_, _, value, err := gen.Next()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		units, err := codec.ReadField(value, "units")
		if err != nil {
			b.Fatal(err)
		}
		if units.(int64) > 50 {
			_ = value // forwarded unchanged
		}
	}
}

func BenchmarkAblationTupleTransformSQLPath(b *testing.B) {
	codec := avro.MustCodec(workload.OrdersSchema())
	gen := workload.NewOrdersGen(workload.DefaultOrdersConfig())
	_, _, value, err := gen.Next()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		row, err := codec.DecodeRow(value, nil) // AvroToArray
		if err != nil {
			b.Fatal(err)
		}
		if row[3].(int64) > 50 {
			if _, err := codec.EncodeRow(row); err != nil { // ArrayToAvro
				b.Fatal(err)
			}
		}
	}
}

// --- Ablation 2 (DESIGN.md §4.2): join state serde ---
//
// The paper blames SamzaSQL's ~2x join slowdown on Kryo-based object
// deserialization in the KV cache versus the native job's Avro. Compare
// decode cost of one Products row under each serde (gob is the
// java-serialization-like worst case).

func productRowCodecs(b *testing.B) ([]byte, []byte, []byte, *avro.Codec) {
	b.Helper()
	row := []any{int64(42), "product-42", int64(2)}
	avroCodec := avro.MustCodec(workload.ProductsSchema())
	avroBytes, err := avroCodec.EncodeRow(row)
	if err != nil {
		b.Fatal(err)
	}
	objBytes, err := serde.ObjectSerde{}.Encode(row)
	if err != nil {
		b.Fatal(err)
	}
	gobBytes, err := serde.GobSerde{}.Encode(row)
	if err != nil {
		b.Fatal(err)
	}
	return avroBytes, objBytes, gobBytes, avroCodec
}

func BenchmarkAblationJoinSerdeAvro(b *testing.B) {
	avroBytes, _, _, codec := productRowCodecs(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := codec.DecodeRow(avroBytes, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationJoinSerdeObject(b *testing.B) {
	_, objBytes, _, _ := productRowCodecs(b)
	s := serde.ObjectSerde{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Decode(objBytes); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationJoinSerdeGob(b *testing.B) {
	_, _, gobBytes, _ := productRowCodecs(b)
	s := serde.GobSerde{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Decode(gobBytes); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation 3 (DESIGN.md §4.3): operator router depth ---
//
// The paper notes the router adds little overhead next to message
// transformation; verify by chaining no-op filters.

func routerWithDepth(b *testing.B, depth int) func(*operators.Tuple) error {
	b.Helper()
	sink := func(*operators.Tuple) error { return nil }
	chain := sink
	for i := 0; i < depth; i++ {
		op, err := operators.NewFilterOp(&expr.Const{V: true, T: types.Boolean})
		if err != nil {
			b.Fatal(err)
		}
		next := chain
		chain = func(t *operators.Tuple) error { return op.Process(0, t, next) }
	}
	return chain
}

func benchRouterDepth(b *testing.B, depth int) {
	chain := routerWithDepth(b, depth)
	t := &operators.Tuple{Row: []any{int64(1), int64(2)}, Ts: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := chain(t); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationRouterDepth1(b *testing.B)  { benchRouterDepth(b, 1) }
func BenchmarkAblationRouterDepth4(b *testing.B)  { benchRouterDepth(b, 4) }
func BenchmarkAblationRouterDepth16(b *testing.B) { benchRouterDepth(b, 16) }

// --- Ablation 4 (DESIGN.md §4.4): sliding-window store traffic ---
//
// Measures the full Algorithm 1 path per tuple and reports the store
// operations it performs, confirming the paper's KV-bound finding.

func BenchmarkAblationWindowStore(b *testing.B) {
	spec := &validate.BoundAnalytic{
		Fn:          "SUM",
		Arg:         &expr.ColRef{Idx: 1, Name: "units", T: types.Bigint},
		PartitionBy: []expr.Expr{&expr.ColRef{Idx: 2, Name: "pid", T: types.Bigint}},
		OrderBy:     &expr.ColRef{Idx: 0, Name: "ts", T: types.Timestamp},
		FrameMillis: 5 * 60 * 1000,
		T:           types.Bigint,
	}
	op, err := operators.NewSlidingWindowOp([]*validate.BoundAnalytic{spec})
	if err != nil {
		b.Fatal(err)
	}
	store := kv.NewStore()
	ctx := &operators.OpContext{
		Store:   func(string) kv.Store { return store },
		Metrics: metrics.NewRegistry(),
	}
	if err := op.Open(ctx); err != nil {
		b.Fatal(err)
	}
	emit := func(*operators.Tuple) error { return nil }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ts := int64(1_600_000_000_000 + i*10)
		t := &operators.Tuple{
			Row: []any{ts, int64(i % 100), int64(i % 100)}, Ts: ts,
			Stream: "orders", Offset: int64(i),
		}
		if err := op.Process(0, t, emit); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	reads, writes := store.Stats()
	b.ReportMetric(float64(reads+writes)/float64(b.N), "store-ops/tuple")
}

// --- Sliding-window state-store layer: cached+batched vs. write-through ---
//
// Drives the SQL sliding-window operator (Algorithm 1) over the full store
// stack — skiplist, changelog mirror, instrumentation, optional LRU object
// cache — flushing every commit interval as the container does. The
// "cached-batched" variant must sustain at least 2x the throughput of the
// paper-faithful "uncached" baseline; `samzasql-bench -figure state -json`
// records the same comparison in BENCH_results.json.

func benchSlidingWindowStore(b *testing.B, cacheSize, batchSize int) {
	cfg := bench.DefaultWindowStoreConfig()
	cfg.Tuples = b.N
	cfg.StoreCacheSize = cacheSize
	cfg.WriteBatchSize = batchSize
	res, err := bench.RunWindowStore(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(res.Throughput, "tuples/sec")
	b.ReportMetric(float64(res.ChangelogRecords)/float64(b.N), "changelog-recs/tuple")
}

func BenchmarkSlidingWindow(b *testing.B) {
	b.Run("uncached", func(b *testing.B) { benchSlidingWindowStore(b, 0, 0) })
	b.Run("cached-batched", func(b *testing.B) {
		benchSlidingWindowStore(b, 1024, kv.DefaultWriteBatchSize)
	})
}

// --- Ablation 5 (DESIGN.md §4.5): partition-count scaling ---
//
// The paper's sublinear container scaling comes from fewer partitions per
// task as containers grow; sweep partition counts at fixed containers.

func benchPartitionScaling(b *testing.B, partitions int32) {
	skipLongBench(b)
	cfg := benchConfig(4)
	cfg.Partitions = partitions
	var total float64
	for i := 0; i < b.N; i++ {
		res, err := bench.RunSQL("filter", cfg)
		if err != nil {
			b.Fatal(err)
		}
		total += res.Throughput
	}
	b.ReportMetric(total/float64(b.N), "msgs/sec")
}

func BenchmarkAblationPartitionScaling8(b *testing.B)   { benchPartitionScaling(b, 8) }
func BenchmarkAblationPartitionScaling32(b *testing.B)  { benchPartitionScaling(b, 32) }
func BenchmarkAblationPartitionScaling128(b *testing.B) { benchPartitionScaling(b, 128) }

// --- sanity: the LOC table used in §5's usability claim ---

func BenchmarkUsabilityLOCTable(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.LOCTable()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 4 {
			b.Fatal(fmt.Errorf("unexpected LOC rows: %d", len(rows)))
		}
	}
}

// --- Ablation 6: the §7 fast-path code generation ---
//
// The paper proposes closing the 30-40% filter/project gap by generating
// code that works directly on the wire representation, fusing scan, filter,
// project and insert. Compare the prototype pipeline, the fast path and the
// hand-written native job.

func BenchmarkAblationFastPathOff(b *testing.B) {
	skipLongBench(b)
	cfg := benchConfig(1)
	var total float64
	for i := 0; i < b.N; i++ {
		res, err := bench.RunSQL("filter", cfg)
		if err != nil {
			b.Fatal(err)
		}
		total += res.Throughput
	}
	b.ReportMetric(total/float64(b.N), "msgs/sec")
}

func BenchmarkAblationFastPathOn(b *testing.B) {
	skipLongBench(b)
	cfg := benchConfig(1)
	cfg.FastPath = true
	var total float64
	for i := 0; i < b.N; i++ {
		res, err := bench.RunSQL("filter", cfg)
		if err != nil {
			b.Fatal(err)
		}
		total += res.Throughput
	}
	b.ReportMetric(total/float64(b.N), "msgs/sec")
}

func BenchmarkAblationFastPathNativeBaseline(b *testing.B) {
	skipLongBench(b)
	cfg := benchConfig(1)
	var total float64
	for i := 0; i < b.N; i++ {
		res, err := bench.RunNative("filter", cfg)
		if err != nil {
			b.Fatal(err)
		}
		total += res.Throughput
	}
	b.ReportMetric(total/float64(b.N), "msgs/sec")
}

module samzasql

go 1.22

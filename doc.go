// Package samzasql is a from-scratch Go reproduction of "SamzaSQL: Scalable
// Fast Data Management with Streaming SQL" (Pathirage, Hyde, Pan, Plale —
// IPPS 2016): a streaming SQL engine (parser, validator, planner, optimizer
// and operator layer) compiled onto a Samza-like distributed stream
// processing framework, together with the Kafka-like partitioned log,
// YARN-like scheduler, Avro-like serialization stack, schema registry and
// Zookeeper-like metadata store it depends on.
//
// The public surface lives under internal/ packages wired together by
// internal/executor.Engine; the cmd/ binaries (samzasql-shell,
// samzasql-bench, samzasql-gen) and examples/ directories show how the
// pieces compose. The repository-root bench_test.go regenerates every
// figure of the paper's evaluation.
package samzasql

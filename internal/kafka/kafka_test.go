package kafka

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func mustCreate(t *testing.T, b *Broker, name string, cfg TopicConfig) {
	t.Helper()
	if err := b.CreateTopic(name, cfg); err != nil {
		t.Fatalf("CreateTopic(%q): %v", name, err)
	}
}

func TestCreateTopicValidation(t *testing.T) {
	b := NewBroker()
	if err := b.CreateTopic("t", TopicConfig{Partitions: 0}); !errors.Is(err, ErrInvalidPartitions) {
		t.Fatalf("want ErrInvalidPartitions, got %v", err)
	}
	mustCreate(t, b, "t", TopicConfig{Partitions: 2})
	if err := b.CreateTopic("t", TopicConfig{Partitions: 2}); !errors.Is(err, ErrTopicExists) {
		t.Fatalf("want ErrTopicExists, got %v", err)
	}
	if err := b.EnsureTopic("t", TopicConfig{Partitions: 2}); err != nil {
		t.Fatalf("EnsureTopic on existing: %v", err)
	}
	if err := b.EnsureTopic("u", TopicConfig{Partitions: 1}); err != nil {
		t.Fatalf("EnsureTopic new: %v", err)
	}
	n, err := b.Partitions("u")
	if err != nil || n != 1 {
		t.Fatalf("Partitions(u) = %d, %v", n, err)
	}
}

func TestProduceAssignsDenseOffsets(t *testing.T) {
	b := NewBroker()
	mustCreate(t, b, "t", TopicConfig{Partitions: 1})
	for i := 0; i < 100; i++ {
		off, err := b.Produce("t", Message{Partition: 0, Value: []byte{byte(i)}})
		if err != nil {
			t.Fatal(err)
		}
		if off != int64(i) {
			t.Fatalf("offset %d for message %d", off, i)
		}
	}
	hwm, _ := b.HighWatermark(TopicPartition{"t", 0})
	if hwm != 100 {
		t.Fatalf("high watermark = %d, want 100", hwm)
	}
}

func TestFetchReturnsInOrder(t *testing.T) {
	b := NewBroker()
	mustCreate(t, b, "t", TopicConfig{Partitions: 1, SegmentBytes: 256})
	for i := 0; i < 500; i++ {
		if _, err := b.Produce("t", Message{Partition: 0, Value: []byte(fmt.Sprintf("v%d", i))}); err != nil {
			t.Fatal(err)
		}
	}
	tp := TopicPartition{"t", 0}
	var got []Message
	off := int64(0)
	for off < 500 {
		batch, _, err := b.Fetch(tp, off, 37)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, batch...)
		off = batch[len(batch)-1].Offset + 1
	}
	if len(got) != 500 {
		t.Fatalf("got %d messages, want 500", len(got))
	}
	for i, m := range got {
		if m.Offset != int64(i) {
			t.Fatalf("message %d has offset %d", i, m.Offset)
		}
		if string(m.Value) != fmt.Sprintf("v%d", i) {
			t.Fatalf("message %d has value %q", i, m.Value)
		}
	}
}

func TestFetchBlocksUntilAppend(t *testing.T) {
	b := NewBroker()
	mustCreate(t, b, "t", TopicConfig{Partitions: 1})
	tp := TopicPartition{"t", 0}
	msgs, wait, err := b.Fetch(tp, 0, 10)
	if err != nil || len(msgs) != 0 || wait == nil {
		t.Fatalf("empty fetch: msgs=%v wait=%v err=%v", msgs, wait, err)
	}
	done := make(chan struct{})
	go func() {
		<-wait
		close(done)
	}()
	if _, err := b.Produce("t", Message{Partition: 0, Value: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("wait channel never fired after append")
	}
}

func TestFetchOutOfRange(t *testing.T) {
	b := NewBroker()
	mustCreate(t, b, "t", TopicConfig{Partitions: 1})
	tp := TopicPartition{"t", 0}
	if _, _, err := b.Fetch(tp, 5, 1); !errors.Is(err, ErrOffsetOutOfRange) {
		t.Fatalf("fetch above hwm: %v", err)
	}
	if _, _, err := b.Fetch(TopicPartition{"t", 9}, 0, 1); !errors.Is(err, ErrUnknownPartition) {
		t.Fatalf("fetch unknown partition: %v", err)
	}
	if _, _, err := b.Fetch(TopicPartition{"nope", 0}, 0, 1); !errors.Is(err, ErrUnknownTopic) {
		t.Fatalf("fetch unknown topic: %v", err)
	}
}

func TestRetentionExpiresHead(t *testing.T) {
	b := NewBroker()
	mustCreate(t, b, "t", TopicConfig{Partitions: 1, SegmentBytes: 200, RetentionBytes: 600})
	payload := make([]byte, 50)
	for i := 0; i < 100; i++ {
		if _, err := b.Produce("t", Message{Partition: 0, Value: payload}); err != nil {
			t.Fatal(err)
		}
	}
	tp := TopicPartition{"t", 0}
	start, _ := b.StartOffset(tp)
	if start == 0 {
		t.Fatal("retention never advanced the log start offset")
	}
	if _, _, err := b.Fetch(tp, 0, 1); !errors.Is(err, ErrOffsetOutOfRange) {
		t.Fatalf("fetch of expired offset: %v", err)
	}
	// All retained records must still be fetchable in order.
	msgs, _, err := b.Fetch(tp, start, 1000)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(msgs); i++ {
		if msgs[i].Offset != msgs[i-1].Offset+1 {
			t.Fatal("gap in retained dense log")
		}
	}
}

func TestKeyPartitioningIsStable(t *testing.T) {
	b := NewBroker()
	mustCreate(t, b, "t", TopicConfig{Partitions: 8})
	seen := map[string]int32{}
	for i := 0; i < 200; i++ {
		key := []byte(fmt.Sprintf("k%d", i%20))
		_, err := b.Produce("t", Message{Partition: -1, Key: key})
		if err != nil {
			t.Fatal(err)
		}
		p := PartitionForKey(key, 8)
		if prev, ok := seen[string(key)]; ok && prev != p {
			t.Fatalf("key %q mapped to partitions %d and %d", key, prev, p)
		}
		seen[string(key)] = p
	}
	// The 20 keys should spread over more than one partition.
	dist := map[int32]bool{}
	for _, p := range seen {
		dist[p] = true
	}
	if len(dist) < 2 {
		t.Fatalf("all keys in one partition: %v", seen)
	}
}

func TestCompactionKeepsLatestPerKey(t *testing.T) {
	b := NewBroker()
	mustCreate(t, b, "cl", TopicConfig{Partitions: 1, SegmentBytes: 128, Compacted: true})
	// Write 10 versions of 5 keys.
	for v := 0; v < 10; v++ {
		for k := 0; k < 5; k++ {
			_, err := b.Produce("cl", Message{
				Partition: 0,
				Key:       []byte(fmt.Sprintf("k%d", k)),
				Value:     []byte(fmt.Sprintf("v%d", v)),
			})
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := b.Compact("cl"); err != nil {
		t.Fatal(err)
	}
	tp := TopicPartition{"cl", 0}
	start, _ := b.StartOffset(tp)
	var all []Message
	off := start
	hwm, _ := b.HighWatermark(tp)
	for off < hwm {
		batch, wait, err := b.Fetch(tp, off, 100)
		if err != nil {
			t.Fatal(err)
		}
		if wait != nil {
			break
		}
		all = append(all, batch...)
		off = batch[len(batch)-1].Offset + 1
	}
	latest := map[string]string{}
	for _, m := range all {
		latest[string(m.Key)] = string(m.Value)
	}
	if len(latest) != 5 {
		t.Fatalf("compacted log lost keys: %v", latest)
	}
	for k, v := range latest {
		if v != "v9" {
			t.Fatalf("key %s latest value %q, want v9", k, v)
		}
	}
	if len(all) >= 50 {
		t.Fatalf("compaction kept %d records, expected fewer than 50", len(all))
	}
}

func TestCompactionDropsTombstones(t *testing.T) {
	b := NewBroker()
	mustCreate(t, b, "cl", TopicConfig{Partitions: 1, SegmentBytes: 64, Compacted: true})
	for i := 0; i < 20; i++ {
		if _, err := b.Produce("cl", Message{Partition: 0, Key: []byte("a"), Value: []byte("x")}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := b.Produce("cl", Message{Partition: 0, Key: []byte("a"), Value: nil}); err != nil {
		t.Fatal(err)
	}
	// Push the tombstone out of the active segment, then compact.
	for i := 0; i < 20; i++ {
		if _, err := b.Produce("cl", Message{Partition: 0, Key: []byte("b"), Value: []byte("y")}); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Compact("cl"); err != nil {
		t.Fatal(err)
	}
	tp := TopicPartition{"cl", 0}
	start, _ := b.StartOffset(tp)
	hwm, _ := b.HighWatermark(tp)
	foundA := false
	off := start
	for off < hwm {
		batch, wait, err := b.Fetch(tp, off, 100)
		if err != nil {
			t.Fatal(err)
		}
		if wait != nil {
			break
		}
		for _, m := range batch {
			if string(m.Key) == "a" && m.Value != nil {
				foundA = true
			}
		}
		off = batch[len(batch)-1].Offset + 1
	}
	if foundA {
		t.Fatal("tombstoned key survived compaction in closed segments")
	}
}

func TestConsumerResumeFromCommit(t *testing.T) {
	b := NewBroker()
	mustCreate(t, b, "t", TopicConfig{Partitions: 1})
	for i := 0; i < 10; i++ {
		if _, err := b.Produce("t", Message{Partition: 0, Value: []byte{byte(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	tp := TopicPartition{"t", 0}

	c1 := NewConsumer(b, "g")
	if err := c1.Assign(tp); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	msgs, err := c1.Poll(ctx, 4)
	if err != nil || len(msgs) != 4 {
		t.Fatalf("poll: %d msgs, %v", len(msgs), err)
	}
	c1.Commit()

	c2 := NewConsumer(b, "g")
	if err := c2.Assign(tp); err != nil {
		t.Fatal(err)
	}
	msgs, err = c2.Poll(ctx, 100)
	if err != nil {
		t.Fatal(err)
	}
	if msgs[0].Offset != 4 {
		t.Fatalf("resumed at %d, want 4", msgs[0].Offset)
	}
}

func TestConsumerPollBlocksAndWakes(t *testing.T) {
	b := NewBroker()
	mustCreate(t, b, "t", TopicConfig{Partitions: 2})
	c := NewConsumer(b, "")
	for p := int32(0); p < 2; p++ {
		if err := c.Assign(TopicPartition{"t", p}); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	got := make(chan []Message, 1)
	go func() {
		msgs, _ := c.Poll(ctx, 10)
		got <- msgs
	}()
	time.Sleep(20 * time.Millisecond)
	if _, err := b.Produce("t", Message{Partition: 1, Value: []byte("late")}); err != nil {
		t.Fatal(err)
	}
	select {
	case msgs := <-got:
		if len(msgs) != 1 || string(msgs[0].Value) != "late" {
			t.Fatalf("woke with %v", msgs)
		}
	case <-ctx.Done():
		t.Fatal("poll never woke after append")
	}
}

func TestConsumerPollContextCancel(t *testing.T) {
	b := NewBroker()
	mustCreate(t, b, "t", TopicConfig{Partitions: 1})
	c := NewConsumer(b, "")
	if err := c.Assign(TopicPartition{"t", 0}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	msgs, err := c.Poll(ctx, 10)
	if msgs != nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled poll returned %v, %v", msgs, err)
	}
}

func TestConsumerRoundRobinFairness(t *testing.T) {
	b := NewBroker()
	mustCreate(t, b, "t", TopicConfig{Partitions: 2})
	for i := 0; i < 50; i++ {
		for p := int32(0); p < 2; p++ {
			if _, err := b.Produce("t", Message{Partition: p, Value: []byte{byte(i)}}); err != nil {
				t.Fatal(err)
			}
		}
	}
	c := NewConsumer(b, "")
	for p := int32(0); p < 2; p++ {
		if err := c.Assign(TopicPartition{"t", p}); err != nil {
			t.Fatal(err)
		}
	}
	ctx := context.Background()
	firstPartitions := map[int32]bool{}
	for i := 0; i < 4; i++ {
		msgs, err := c.Poll(ctx, 10)
		if err != nil {
			t.Fatal(err)
		}
		firstPartitions[msgs[0].Partition] = true
	}
	if len(firstPartitions) != 2 {
		t.Fatalf("polling starved a partition; served only %v", firstPartitions)
	}
}

func TestConsumerSeekAndLag(t *testing.T) {
	b := NewBroker()
	mustCreate(t, b, "t", TopicConfig{Partitions: 1})
	for i := 0; i < 10; i++ {
		if _, err := b.Produce("t", Message{Partition: 0, Value: []byte{1}}); err != nil {
			t.Fatal(err)
		}
	}
	tp := TopicPartition{"t", 0}
	c := NewConsumer(b, "")
	if err := c.Assign(tp); err != nil {
		t.Fatal(err)
	}
	lag, err := c.Lag()
	if err != nil || lag != 10 {
		t.Fatalf("lag = %d, %v; want 10", lag, err)
	}
	if _, err := c.Poll(context.Background(), 10); err != nil {
		t.Fatal(err)
	}
	lag, _ = c.Lag()
	if lag != 0 {
		t.Fatalf("post-consume lag = %d", lag)
	}
	if err := c.SeekToBeginning(tp); err != nil {
		t.Fatal(err)
	}
	lag, _ = c.Lag()
	if lag != 10 {
		t.Fatalf("post-rewind lag = %d, want 10", lag)
	}
}

func TestConcurrentProducersDenseOffsets(t *testing.T) {
	b := NewBroker()
	mustCreate(t, b, "t", TopicConfig{Partitions: 4, SegmentBytes: 512})
	const producers = 8
	const per = 250
	var wg sync.WaitGroup
	for i := 0; i < producers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for j := 0; j < per; j++ {
				key := []byte(fmt.Sprintf("p%d-%d", id, j))
				if _, err := b.Produce("t", Message{Partition: -1, Key: key, Value: key}); err != nil {
					t.Errorf("produce: %v", err)
					return
				}
			}
		}(i)
	}
	wg.Wait()

	total := int64(0)
	for p := int32(0); p < 4; p++ {
		tp := TopicPartition{"t", p}
		hwm, _ := b.HighWatermark(tp)
		total += hwm
		// Dense, in-order offsets within each partition.
		off := int64(0)
		for off < hwm {
			batch, _, err := b.Fetch(tp, off, 97)
			if err != nil {
				t.Fatal(err)
			}
			for _, m := range batch {
				if m.Offset != off {
					t.Fatalf("partition %d: offset %d where %d expected", p, m.Offset, off)
				}
				off++
			}
		}
	}
	if total != producers*per {
		t.Fatalf("total records %d, want %d", total, producers*per)
	}
}

func TestDeleteTopic(t *testing.T) {
	b := NewBroker()
	mustCreate(t, b, "t", TopicConfig{Partitions: 1})
	if err := b.DeleteTopic("t"); err != nil {
		t.Fatal(err)
	}
	if err := b.DeleteTopic("t"); !errors.Is(err, ErrUnknownTopic) {
		t.Fatalf("double delete: %v", err)
	}
	if _, err := b.Produce("t", Message{Partition: 0}); !errors.Is(err, ErrUnknownTopic) {
		t.Fatalf("produce to deleted topic: %v", err)
	}
}

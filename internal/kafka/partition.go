package kafka

import (
	"errors"
	"fmt"
	"sync"
)

// ErrOffsetOutOfRange is returned by fetches below the log start offset
// (records expired by retention) or above the high watermark.
var ErrOffsetOutOfRange = errors.New("kafka: offset out of range")

// partition is a time-ordered, immutable, append-only sequence of messages.
// Ordering is guaranteed within the partition and nowhere else, matching the
// paper's data model (§3.1).
type partition struct {
	mu       sync.RWMutex
	topic    string
	id       int32
	segments []*segment // non-empty; last is the active segment

	// logStartOffset is the oldest retained offset; it advances when
	// retention drops head segments.
	logStartOffset int64

	// waiters are channels closed on the next append, enabling blocking
	// fetches without polling.
	waiters []chan struct{}

	// subs are persistent subscriber channels signalled (coalesced,
	// non-blocking) on every append. Consumers register one channel for
	// their whole assignment so idle polls park instead of respawning
	// wait goroutines.
	subs []chan struct{}

	maxSegmentBytes int
	retentionBytes  int // <= 0 means unbounded
	compacted       bool
}

func newPartition(topic string, id int32, cfg TopicConfig) *partition {
	p := &partition{
		topic:           topic,
		id:              id,
		maxSegmentBytes: cfg.SegmentBytes,
		retentionBytes:  cfg.RetentionBytes,
		compacted:       cfg.Compacted,
	}
	if p.maxSegmentBytes <= 0 {
		p.maxSegmentBytes = defaultSegmentBytes
	}
	p.segments = []*segment{newSegment(0)}
	return p
}

const defaultSegmentBytes = 1 << 20

// append assigns the next offset to m, stores it, wakes blocked fetchers and
// applies retention. It returns the assigned offset.
func (p *partition) append(m Message) int64 {
	p.mu.Lock()
	active := p.segments[len(p.segments)-1]
	if active.sizeBytes >= p.maxSegmentBytes {
		active = newSegmentLike(active)
		p.segments = append(p.segments, active)
	}
	m.Topic = p.topic
	m.Partition = p.id
	m.Offset = active.nextOffset()
	active.append(m)
	offset := m.Offset

	waiters := p.waiters
	p.waiters = nil
	subs := p.subs
	p.applyRetentionLocked()
	p.mu.Unlock()

	for _, w := range waiters {
		close(w)
	}
	// Signal persistent subscribers without blocking: a full buffer means a
	// wakeup is already pending, which is all the subscriber needs.
	for _, s := range subs {
		select {
		case s <- struct{}{}:
		default:
		}
	}
	return offset
}

// appendBatch assigns consecutive offsets to msgs (mutating their
// Topic/Partition/Offset fields in place), stores them, wakes blocked
// fetchers and applies retention — all under one lock acquisition with one
// coalesced subscriber signal, so an N-record changelog flush costs the same
// synchronization as a single append.
func (p *partition) appendBatch(msgs []Message) {
	if len(msgs) == 0 {
		return
	}
	p.mu.Lock()
	for i := range msgs {
		active := p.segments[len(p.segments)-1]
		if active.sizeBytes >= p.maxSegmentBytes {
			active = newSegmentLike(active)
			p.segments = append(p.segments, active)
		}
		msgs[i].Topic = p.topic
		msgs[i].Partition = p.id
		msgs[i].Offset = active.nextOffset()
		active.append(msgs[i])
	}
	waiters := p.waiters
	p.waiters = nil
	subs := p.subs
	p.applyRetentionLocked()
	p.mu.Unlock()

	for _, w := range waiters {
		close(w)
	}
	for _, s := range subs {
		select {
		case s <- struct{}{}:
		default:
		}
	}
}

// subscribe registers a persistent notification channel signalled on every
// append. The channel should be buffered; signals are coalesced. The subs
// slice is copy-on-write because append() signals a snapshot of it outside
// the partition lock.
func (p *partition) subscribe(ch chan struct{}) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, s := range p.subs {
		if s == ch {
			return
		}
	}
	next := make([]chan struct{}, 0, len(p.subs)+1)
	next = append(next, p.subs...)
	p.subs = append(next, ch)
}

// unsubscribe removes a channel registered with subscribe.
func (p *partition) unsubscribe(ch chan struct{}) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i, s := range p.subs {
		if s == ch {
			next := make([]chan struct{}, 0, len(p.subs)-1)
			next = append(next, p.subs[:i]...)
			p.subs = append(next, p.subs[i+1:]...)
			return
		}
	}
}

// applyRetentionLocked drops head segments while total size exceeds the
// retention bound, never dropping the active segment. Compacted partitions
// are cleaned by compact() instead.
func (p *partition) applyRetentionLocked() {
	if p.retentionBytes <= 0 || p.compacted {
		return
	}
	total := 0
	for _, s := range p.segments {
		total += s.sizeBytes
	}
	for total > p.retentionBytes && len(p.segments) > 1 {
		head := p.segments[0]
		total -= head.sizeBytes
		p.logStartOffset = head.nextOffset()
		p.segments = p.segments[1:]
	}
}

// highWatermark is the offset that will be assigned to the next record.
func (p *partition) highWatermark() int64 {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.segments[len(p.segments)-1].nextOffset()
}

// startOffset returns the oldest retained offset.
func (p *partition) startOffset() int64 {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.logStartOffset
}

// fetch returns up to max messages with offsets >= offset. If no records at
// or above offset exist yet (offset >= high watermark is allowed up to
// exactly the watermark), it returns an empty slice plus a wait channel that
// is closed on the next append. Fetching below the log start offset returns
// ErrOffsetOutOfRange.
func (p *partition) fetch(offset int64, max int) ([]Message, <-chan struct{}, error) {
	p.mu.Lock()
	defer p.mu.Unlock()

	if offset < p.logStartOffset {
		return nil, nil, fmt.Errorf("%w: fetch %s-%d@%d below log start %d",
			ErrOffsetOutOfRange, p.topic, p.id, offset, p.logStartOffset)
	}
	hwm := p.segments[len(p.segments)-1].nextOffset()
	if offset > hwm {
		return nil, nil, fmt.Errorf("%w: fetch %s-%d@%d above high watermark %d",
			ErrOffsetOutOfRange, p.topic, p.id, offset, hwm)
	}
	if offset == hwm {
		w := make(chan struct{})
		p.waiters = append(p.waiters, w)
		return nil, w, nil
	}

	var out []Message
	for _, s := range p.segments {
		if s.nextOffset() <= offset {
			continue
		}
		got := s.fetch(offset, max-len(out))
		out = append(out, got...)
		if len(out) >= max {
			break
		}
		offset = s.nextOffset()
	}
	if len(out) == 0 {
		// Every record in range was removed by compaction; the caller
		// should retry from the high watermark.
		w := make(chan struct{})
		p.waiters = append(p.waiters, w)
		return nil, w, nil
	}
	return out, nil, nil
}

// compact rewrites the closed segments of a compacted partition, retaining
// only the latest record per key and dropping nil-value tombstones whose key
// has no later record. Offsets are preserved (leaving gaps), exactly as
// Kafka log compaction does. The active segment is never compacted so
// concurrent tailing consumers see a stable head.
func (p *partition) compact() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.compacted || len(p.segments) < 2 {
		return
	}
	closed := p.segments[:len(p.segments)-1]
	active := p.segments[len(p.segments)-1]

	// The survivor of the previous compaction leads the segment chain and is
	// clean: unique keys, no tombstones. Its records only drop when a newer
	// dirty record overrides them, so it contributes membership lookups below
	// but never map inserts — compaction cost tracks new data, not live size.
	dirty := p.segments
	var clean *segment
	if closed[0].clean {
		clean = closed[0]
		dirty = p.segments[1:]
	}

	// Latest offset per key across the dirty segments, including the active
	// one, so records superseded by active-segment writes drop. Sized up
	// front: growing the map incrementally would rehash every doubling.
	n := 0
	for _, s := range dirty {
		n += len(s.records)
	}
	latest := make(map[string]int64, n)
	for _, s := range dirty {
		for _, m := range s.records {
			latest[string(m.Key)] = m.Offset
		}
	}

	capHint := 0
	for _, s := range closed {
		capHint += len(s.records)
	}
	merged := &segment{
		baseOffset:  closed[0].baseOffset,
		upperOffset: active.baseOffset,
		records:     make([]Message, 0, capHint),
		dense:       false,
		clean:       true,
	}
	if clean != nil {
		for _, m := range clean.records {
			if _, overridden := latest[string(m.Key)]; overridden {
				continue
			}
			merged.records = append(merged.records, m)
			merged.sizeBytes += m.Size()
		}
	}
	for _, s := range closed {
		if s == clean {
			continue
		}
		for _, m := range s.records {
			if latest[string(m.Key)] != m.Offset {
				continue
			}
			if m.Value == nil {
				continue // tombstone with no later write: drop
			}
			merged.records = append(merged.records, m)
			merged.sizeBytes += m.Size()
		}
	}
	p.segments = []*segment{merged, active}
}

// closedSegmentCount reports how many non-active segments the partition
// holds; the broker uses it to decide when compaction is worthwhile.
func (p *partition) closedSegmentCount() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return len(p.segments) - 1
}

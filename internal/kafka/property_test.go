package kafka

import (
	"fmt"
	"testing"
	"testing/quick"
)

// Property: for any sequence of produced values, fetching from offset 0 in
// any batch-size pattern returns exactly the produced sequence (per
// partition total order, no loss, no duplication).
func TestPropertyLogPreservesSequence(t *testing.T) {
	f := func(values [][]byte, batchHint uint8) bool {
		if len(values) == 0 {
			return true
		}
		b := NewBroker()
		if err := b.CreateTopic("t", TopicConfig{Partitions: 1, SegmentBytes: 128}); err != nil {
			return false
		}
		for _, v := range values {
			if _, err := b.Produce("t", Message{Partition: 0, Value: v}); err != nil {
				return false
			}
		}
		batch := int(batchHint%16) + 1
		tp := TopicPartition{"t", 0}
		var got [][]byte
		off := int64(0)
		for off < int64(len(values)) {
			msgs, wait, err := b.Fetch(tp, off, batch)
			if err != nil || wait != nil {
				return false
			}
			for _, m := range msgs {
				got = append(got, m.Value)
			}
			off = msgs[len(msgs)-1].Offset + 1
		}
		if len(got) != len(values) {
			return false
		}
		for i := range values {
			if string(got[i]) != string(values[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: compaction of a compacted topic preserves the latest value of
// every live key regardless of the write pattern.
func TestPropertyCompactionPreservesLatest(t *testing.T) {
	f := func(writes []uint8) bool {
		b := NewBroker()
		if err := b.CreateTopic("cl", TopicConfig{Partitions: 1, SegmentBytes: 64, Compacted: true}); err != nil {
			return false
		}
		want := map[string]string{}
		for i, w := range writes {
			key := fmt.Sprintf("k%d", w%7)
			val := fmt.Sprintf("v%d", i)
			want[key] = val
			if _, err := b.Produce("cl", Message{Partition: 0, Key: []byte(key), Value: []byte(val)}); err != nil {
				return false
			}
		}
		if err := b.Compact("cl"); err != nil {
			return false
		}
		tp := TopicPartition{"cl", 0}
		start, _ := b.StartOffset(tp)
		hwm, _ := b.HighWatermark(tp)
		got := map[string]string{}
		off := start
		for off < hwm {
			msgs, wait, err := b.Fetch(tp, off, 64)
			if err != nil {
				return false
			}
			if wait != nil {
				break
			}
			for _, m := range msgs {
				got[string(m.Key)] = string(m.Value)
			}
			off = msgs[len(msgs)-1].Offset + 1
		}
		if len(got) != len(want) {
			return false
		}
		for k, v := range want {
			if got[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: the default partitioner is deterministic and in range.
func TestPropertyPartitionerDeterministicInRange(t *testing.T) {
	f := func(key []byte, nRaw uint8) bool {
		n := int32(nRaw%32) + 1
		p1 := PartitionForKey(key, n)
		p2 := PartitionForKey(key, n)
		return p1 == p2 && p1 >= 0 && p1 < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

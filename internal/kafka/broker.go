package kafka

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"samzasql/internal/trace"
)

// Errors returned by broker administrative operations.
var (
	ErrTopicExists       = errors.New("kafka: topic already exists")
	ErrUnknownTopic      = errors.New("kafka: unknown topic")
	ErrUnknownPartition  = errors.New("kafka: unknown partition")
	ErrInvalidPartitions = errors.New("kafka: partition count must be positive")
)

// TopicConfig carries creation-time parameters for a topic.
type TopicConfig struct {
	// Partitions is the number of partitions; must be >= 1.
	Partitions int32
	// SegmentBytes caps each log segment; 0 selects the default (1 MiB).
	SegmentBytes int
	// RetentionBytes bounds the per-partition log size; records beyond it
	// expire from the head. <= 0 keeps everything.
	RetentionBytes int
	// Compacted selects key-compaction instead of size retention: the log
	// keeps at least the latest record per key. Used for changelog topics.
	Compacted bool
}

type topic struct {
	name       string
	config     TopicConfig
	partitions []*partition
}

// Broker is an in-process multi-topic commit log. It is safe for concurrent
// use by any number of producers and consumers.
type Broker struct {
	mu     sync.RWMutex
	topics map[string]*topic

	// committed holds consumer-group offset commits, keyed by group then
	// topic-partition — the moral equivalent of __consumer_offsets.
	committed map[string]map[TopicPartition]int64

	// compactEvery triggers compaction when a compacted partition
	// accumulates this many closed segments.
	compactEvery int

	// sampler, when non-nil, decides which produced messages start a trace
	// (SetTraceSampling). Held behind an atomic pointer so the produce path
	// pays one load when tracing is off and no lock ever.
	sampler atomic.Pointer[trace.Sampler]
}

// NewBroker returns an empty broker.
func NewBroker() *Broker {
	return &Broker{
		topics:       make(map[string]*topic),
		committed:    make(map[string]map[TopicPartition]int64),
		compactEvery: 4,
	}
}

// CreateTopic registers a topic. It fails if the topic already exists.
func (b *Broker) CreateTopic(name string, cfg TopicConfig) error {
	if cfg.Partitions <= 0 {
		return fmt.Errorf("%w: topic %q given %d", ErrInvalidPartitions, name, cfg.Partitions)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.topics[name]; ok {
		return fmt.Errorf("%w: %q", ErrTopicExists, name)
	}
	t := &topic{name: name, config: cfg}
	for i := int32(0); i < cfg.Partitions; i++ {
		t.partitions = append(t.partitions, newPartition(name, i, cfg))
	}
	b.topics[name] = t
	return nil
}

// EnsureTopic creates the topic if absent and returns nil if it exists with
// any configuration.
func (b *Broker) EnsureTopic(name string, cfg TopicConfig) error {
	err := b.CreateTopic(name, cfg)
	if errors.Is(err, ErrTopicExists) {
		return nil
	}
	return err
}

// DeleteTopic removes a topic and all its data.
func (b *Broker) DeleteTopic(name string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.topics[name]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknownTopic, name)
	}
	delete(b.topics, name)
	return nil
}

// Topics returns the sorted topic names.
func (b *Broker) Topics() []string {
	b.mu.RLock()
	defer b.mu.RUnlock()
	names := make([]string, 0, len(b.topics))
	for n := range b.topics {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Partitions returns the partition count of a topic.
func (b *Broker) Partitions(name string) (int32, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	t, ok := b.topics[name]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrUnknownTopic, name)
	}
	return int32(len(t.partitions)), nil
}

func (b *Broker) partition(tp TopicPartition) (*partition, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	t, ok := b.topics[tp.Topic]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownTopic, tp.Topic)
	}
	if tp.Partition < 0 || int(tp.Partition) >= len(t.partitions) {
		return nil, fmt.Errorf("%w: %s", ErrUnknownPartition, tp)
	}
	return t.partitions[tp.Partition], nil
}

// Produce appends a message. If m.Partition is negative the broker picks the
// partition by FNV-hashing the key (or partition 0 for nil keys), mirroring
// Kafka's default partitioner. The assigned offset is returned.
func (b *Broker) Produce(topicName string, m Message) (int64, error) {
	b.mu.RLock()
	t, ok := b.topics[topicName]
	b.mu.RUnlock()
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrUnknownTopic, topicName)
	}
	part := m.Partition
	if part < 0 {
		part = PartitionForKey(m.Key, int32(len(t.partitions)))
	}
	if int(part) >= len(t.partitions) {
		return 0, fmt.Errorf("%w: %s-%d", ErrUnknownPartition, topicName, part)
	}
	if s := b.sampler.Load(); s != nil && m.Trace.TraceID == 0 && isUserTopic(topicName) && s.Sample() {
		m.Trace = trace.NewRoot(time.Now().UnixNano())
	}
	p := t.partitions[part]
	off := p.append(m)
	if t.config.Compacted && p.closedSegmentCount() >= b.compactEvery {
		p.compact()
	}
	return off, nil
}

// SetTraceSampling installs (or, with rate <= 0, removes) the produce-time
// trace sampler: every round(1/rate)-th message appended to a user topic by
// Produce becomes the root of a sampled trace. Framework topics (the "__"
// prefix) and changelog topics never root traces — their appends are
// effects of a traced message, not new dataflow. Batched appends
// (ProduceBatch: changelog flushes) are likewise never sampled.
func (b *Broker) SetTraceSampling(rate float64) {
	b.sampler.Store(trace.NewSampler(rate))
}

// isUserTopic reports whether produce-time sampling may root a trace here.
func isUserTopic(name string) bool {
	return !strings.HasPrefix(name, "__") && !strings.HasSuffix(name, "-changelog")
}

// ProduceBatch appends msgs to topicName, resolving each message's
// partition exactly as Produce does. Runs of consecutive messages bound for
// the same partition are appended under one partition lock acquisition with
// one subscriber wakeup, so an N-record flush (a changelog commit batch)
// costs the synchronization of a single append. Assigned Topic/Partition/
// Offset fields are written back into msgs; the broker retains the key and
// value slices, so callers must not mutate them afterwards.
func (b *Broker) ProduceBatch(topicName string, msgs []Message) error {
	if len(msgs) == 0 {
		return nil
	}
	b.mu.RLock()
	t, ok := b.topics[topicName]
	b.mu.RUnlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownTopic, topicName)
	}
	n := int32(len(t.partitions))
	for i := 0; i < len(msgs); {
		part, err := resolvePartition(&msgs[i], n, topicName)
		if err != nil {
			return err
		}
		j := i + 1
		for j < len(msgs) {
			next, err := resolvePartition(&msgs[j], n, topicName)
			if err != nil {
				return err
			}
			if next != part {
				break
			}
			j++
		}
		p := t.partitions[part]
		p.appendBatch(msgs[i:j])
		if t.config.Compacted && p.closedSegmentCount() >= b.compactEvery {
			p.compact()
		}
		i = j
	}
	return nil
}

// resolvePartition maps one message to its destination partition: the
// explicit assignment when set, otherwise the key hash over n partitions.
func resolvePartition(m *Message, n int32, topicName string) (int32, error) {
	part := m.Partition
	if part < 0 {
		part = PartitionForKey(m.Key, n)
	}
	if part >= n {
		return 0, fmt.Errorf("%w: %s-%d", ErrUnknownPartition, topicName, part)
	}
	return part, nil
}

// PartitionForKey returns the partition Kafka's default partitioner would
// choose for key over n partitions: FNV-1a hash mod n, partition 0 for nil.
func PartitionForKey(key []byte, n int32) int32 {
	if n <= 1 || len(key) == 0 {
		return 0
	}
	h := fnv.New32a()
	//samzasql:ignore error-drop -- hash.Hash.Write is documented to never return an error
	h.Write(key)
	return int32(h.Sum32() % uint32(n))
}

// Fetch returns up to max messages from tp starting at offset. When the
// consumer is caught up it returns an empty batch plus a channel that is
// closed on the next append to the partition.
func (b *Broker) Fetch(tp TopicPartition, offset int64, max int) ([]Message, <-chan struct{}, error) {
	p, err := b.partition(tp)
	if err != nil {
		return nil, nil, err
	}
	return p.fetch(offset, max)
}

// Subscribe registers a persistent notification channel with tp: every
// append signals it with a coalesced, non-blocking send. Consumers use one
// buffered channel across their whole assignment so a caught-up poll parks
// on a single channel instead of spawning per-partition wait goroutines.
func (b *Broker) Subscribe(tp TopicPartition, ch chan struct{}) error {
	p, err := b.partition(tp)
	if err != nil {
		return err
	}
	p.subscribe(ch)
	return nil
}

// Unsubscribe removes a channel registered with Subscribe.
func (b *Broker) Unsubscribe(tp TopicPartition, ch chan struct{}) {
	p, err := b.partition(tp)
	if err != nil {
		return // topic deleted; nothing to detach from
	}
	p.unsubscribe(ch)
}

// HighWatermark returns the next offset that will be assigned in tp.
func (b *Broker) HighWatermark(tp TopicPartition) (int64, error) {
	p, err := b.partition(tp)
	if err != nil {
		return 0, err
	}
	return p.highWatermark(), nil
}

// StartOffset returns the oldest retained offset in tp.
func (b *Broker) StartOffset(tp TopicPartition) (int64, error) {
	p, err := b.partition(tp)
	if err != nil {
		return 0, err
	}
	return p.startOffset(), nil
}

// Compact forces a compaction pass on every partition of a compacted topic.
func (b *Broker) Compact(topicName string) error {
	b.mu.RLock()
	t, ok := b.topics[topicName]
	b.mu.RUnlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownTopic, topicName)
	}
	for _, p := range t.partitions {
		p.compact()
	}
	return nil
}

// CommitOffset durably records the next-to-consume offset for a consumer
// group on one partition.
func (b *Broker) CommitOffset(group string, tp TopicPartition, offset int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	g, ok := b.committed[group]
	if !ok {
		g = make(map[TopicPartition]int64)
		b.committed[group] = g
	}
	g[tp] = offset
}

// CommittedOffset returns the last committed offset for the group on tp and
// whether one exists.
func (b *Broker) CommittedOffset(group string, tp TopicPartition) (int64, bool) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	g, ok := b.committed[group]
	if !ok {
		return 0, false
	}
	off, ok := g[tp]
	return off, ok
}

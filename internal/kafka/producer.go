package kafka

// Producer is a convenience front for appending to one topic. It is a thin
// stateless wrapper; all ordering guarantees come from the broker.
type Producer struct {
	broker *Broker
	topic  string
}

// NewProducer returns a producer bound to topic on b.
func NewProducer(b *Broker, topic string) *Producer {
	return &Producer{broker: b, topic: topic}
}

// Send appends a message with key-based partitioning and returns its offset.
func (p *Producer) Send(key, value []byte, timestamp int64) (int64, error) {
	return p.broker.Produce(p.topic, Message{
		Partition: -1,
		Key:       key,
		Value:     value,
		Timestamp: timestamp,
	})
}

// SendBatch appends msgs in one broker call: runs of messages bound for the
// same partition share a lock acquisition and subscriber wakeup. Partition
// resolution matches Send/SendTo (negative Partition = key hash). Assigned
// offsets are written back into msgs.
func (p *Producer) SendBatch(msgs []Message) error {
	return p.broker.ProduceBatch(p.topic, msgs)
}

// SendTo appends a message to an explicit partition and returns its offset.
func (p *Producer) SendTo(part int32, key, value []byte, timestamp int64) (int64, error) {
	return p.broker.Produce(p.topic, Message{
		Partition: part,
		Key:       key,
		Value:     value,
		Timestamp: timestamp,
	})
}

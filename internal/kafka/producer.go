package kafka

// Producer is a convenience front for appending to one topic. It is a thin
// stateless wrapper; all ordering guarantees come from the broker.
type Producer struct {
	broker *Broker
	topic  string
}

// NewProducer returns a producer bound to topic on b.
func NewProducer(b *Broker, topic string) *Producer {
	return &Producer{broker: b, topic: topic}
}

// Send appends a message with key-based partitioning and returns its offset.
func (p *Producer) Send(key, value []byte, timestamp int64) (int64, error) {
	return p.broker.Produce(p.topic, Message{
		Partition: -1,
		Key:       key,
		Value:     value,
		Timestamp: timestamp,
	})
}

// SendTo appends a message to an explicit partition and returns its offset.
func (p *Producer) SendTo(part int32, key, value []byte, timestamp int64) (int64, error) {
	return p.broker.Produce(p.topic, Message{
		Partition: part,
		Key:       key,
		Value:     value,
		Timestamp: timestamp,
	})
}

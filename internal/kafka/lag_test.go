package kafka

import (
	"context"
	"testing"
	"time"

	"samzasql/internal/metrics"
)

// produceN appends n messages to topic partition p.
func produceN(t *testing.T, b *Broker, topic string, p int32, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, err := b.Produce(topic, Message{Partition: p, Key: []byte("k"), Value: []byte("v")}); err != nil {
			t.Fatal(err)
		}
	}
}

// TestConsumerLagReplayFromZero covers the satellite's replay case: a fresh
// consumer assigned at the start of a populated log reports the whole
// retained log as lag, per partition and in total.
func TestConsumerLagReplayFromZero(t *testing.T) {
	b := NewBroker()
	if err := b.CreateTopic("in", TopicConfig{Partitions: 2}); err != nil {
		t.Fatal(err)
	}
	produceN(t, b, "in", 0, 10)
	produceN(t, b, "in", 1, 25)

	c := NewConsumer(b, "g")
	defer c.Close()
	reg := metrics.NewRegistry()
	for p := int32(0); p < 2; p++ {
		tp := TopicPartition{Topic: "in", Partition: p}
		if err := c.Assign(tp); err != nil {
			t.Fatal(err)
		}
		c.BindLagGauge(tp, reg.Gauge("lag"+string(rune('0'+p))))
	}
	total, err := c.UpdateLag()
	if err != nil {
		t.Fatal(err)
	}
	if total != 35 {
		t.Fatalf("total lag = %d, want 35", total)
	}
	snap := reg.Snapshot()
	if snap.Gauges["lag0"] != 10 || snap.Gauges["lag1"] != 25 {
		t.Fatalf("per-partition lag gauges %v, want 10 and 25", snap.Gauges)
	}
}

// TestConsumerLagCaughtUp covers the satellite's caught-up case: after the
// consumer polls to the high watermark, every partition's lag gauge drops
// to 0 — and new appends raise it again.
func TestConsumerLagCaughtUp(t *testing.T) {
	b := NewBroker()
	if err := b.CreateTopic("in", TopicConfig{Partitions: 1}); err != nil {
		t.Fatal(err)
	}
	tp := TopicPartition{Topic: "in", Partition: 0}
	produceN(t, b, "in", 0, 8)

	c := NewConsumer(b, "g")
	defer c.Close()
	reg := metrics.NewRegistry()
	if err := c.Assign(tp); err != nil {
		t.Fatal(err)
	}
	c.BindLagGauge(tp, reg.Gauge("lag"))

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	consumed := 0
	for consumed < 8 {
		msgs, err := c.Poll(ctx, 64)
		if err != nil {
			t.Fatal(err)
		}
		consumed += len(msgs)
	}
	total, err := c.UpdateLag()
	if err != nil {
		t.Fatal(err)
	}
	if total != 0 {
		t.Fatalf("caught-up lag = %d, want 0", total)
	}
	if got := reg.Snapshot().Gauges["lag"]; got != 0 {
		t.Fatalf("caught-up lag gauge = %d, want 0", got)
	}

	produceN(t, b, "in", 0, 3)
	if total, err = c.UpdateLag(); err != nil || total != 3 {
		t.Fatalf("lag after new appends = %d (err %v), want 3", total, err)
	}
	if got := reg.Snapshot().Gauges["lag"]; got != 3 {
		t.Fatalf("lag gauge after new appends = %d, want 3", got)
	}
}

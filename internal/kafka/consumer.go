package kafka

import (
	"context"
	"sort"
	"sync"
)

// Consumer reads a fixed assignment of partitions, tracking a position per
// partition. It supports blocking polls (via the broker's append-wait
// channels), committed-offset resume, and seek-to-beginning replay — the
// capabilities Samza task runners need.
type Consumer struct {
	broker *Broker
	group  string

	mu        sync.Mutex
	positions map[TopicPartition]int64
	// rr orders partitions for round-robin polling fairness.
	rr   []TopicPartition
	next int
}

// NewConsumer creates a consumer for group. Group may be empty for an
// anonymous consumer that never commits.
func NewConsumer(b *Broker, group string) *Consumer {
	return &Consumer{
		broker:    b,
		group:     group,
		positions: make(map[TopicPartition]int64),
	}
}

// Assign adds tp to the consumer's assignment, resuming from the group's
// committed offset if one exists, else from the oldest retained offset.
func (c *Consumer) Assign(tp TopicPartition) error {
	start, ok := c.broker.CommittedOffset(c.group, tp)
	if !ok {
		var err error
		start, err = c.broker.StartOffset(tp)
		if err != nil {
			return err
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.positions[tp]; !dup {
		c.rr = append(c.rr, tp)
		sort.Slice(c.rr, func(i, j int) bool {
			if c.rr[i].Topic != c.rr[j].Topic {
				return c.rr[i].Topic < c.rr[j].Topic
			}
			return c.rr[i].Partition < c.rr[j].Partition
		})
	}
	c.positions[tp] = start
	return nil
}

// Seek moves the consumer's position on tp. The partition must be assigned.
func (c *Consumer) Seek(tp TopicPartition, offset int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.positions[tp]; ok {
		c.positions[tp] = offset
	}
}

// SeekToBeginning rewinds tp to the oldest retained offset (replay).
func (c *Consumer) SeekToBeginning(tp TopicPartition) error {
	start, err := c.broker.StartOffset(tp)
	if err != nil {
		return err
	}
	c.Seek(tp, start)
	return nil
}

// Position returns the next offset the consumer will fetch from tp.
func (c *Consumer) Position(tp TopicPartition) (int64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	off, ok := c.positions[tp]
	return off, ok
}

// Assignment returns the assigned partitions in deterministic order.
func (c *Consumer) Assignment() []TopicPartition {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]TopicPartition, len(c.rr))
	copy(out, c.rr)
	return out
}

// Poll fetches up to max messages, cycling over assigned partitions for
// fairness. If every partition is caught up it blocks until new data arrives
// on any of them or ctx is done. A nil slice with nil error means ctx ended.
func (c *Consumer) Poll(ctx context.Context, max int) ([]Message, error) {
	for {
		msgs, waits, err := c.pollOnce(max)
		if err != nil {
			return nil, err
		}
		if len(msgs) > 0 {
			return msgs, nil
		}
		if len(waits) == 0 {
			return nil, nil // no assignment
		}
		if !waitAny(ctx, waits) {
			return nil, ctx.Err()
		}
	}
}

// pollOnce tries each assigned partition once, starting after the last
// partition that produced data. It returns either messages or the wait
// channels of all caught-up partitions.
func (c *Consumer) pollOnce(max int) ([]Message, []<-chan struct{}, error) {
	c.mu.Lock()
	rr := make([]TopicPartition, len(c.rr))
	copy(rr, c.rr)
	start := c.next
	c.mu.Unlock()

	var waits []<-chan struct{}
	for i := 0; i < len(rr); i++ {
		tp := rr[(start+i)%len(rr)]
		c.mu.Lock()
		pos := c.positions[tp]
		c.mu.Unlock()

		msgs, wait, err := c.broker.Fetch(tp, pos, max)
		if err != nil {
			return nil, nil, err
		}
		if len(msgs) > 0 {
			c.mu.Lock()
			c.positions[tp] = msgs[len(msgs)-1].Offset + 1
			c.next = (start + i + 1) % len(rr)
			c.mu.Unlock()
			return msgs, nil, nil
		}
		if wait != nil {
			waits = append(waits, wait)
		}
	}
	return nil, waits, nil
}

// waitAny blocks until any channel closes or ctx is done; true means a
// channel fired.
func waitAny(ctx context.Context, chans []<-chan struct{}) bool {
	if len(chans) == 1 {
		select {
		case <-chans[0]:
			return true
		case <-ctx.Done():
			return false
		}
	}
	fired := make(chan struct{}, 1)
	stop := make(chan struct{})
	defer close(stop)
	for _, ch := range chans {
		go func(ch <-chan struct{}) {
			select {
			case <-ch:
				select {
				case fired <- struct{}{}:
				default:
				}
			case <-stop:
			}
		}(ch)
	}
	select {
	case <-fired:
		return true
	case <-ctx.Done():
		return false
	}
}

// Commit records the current position of every assigned partition under the
// consumer's group.
func (c *Consumer) Commit() {
	if c.group == "" {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for tp, pos := range c.positions {
		c.broker.CommitOffset(c.group, tp, pos)
	}
}

// Lag returns the total number of unconsumed messages across the assignment.
func (c *Consumer) Lag() (int64, error) {
	c.mu.Lock()
	snapshot := make(map[TopicPartition]int64, len(c.positions))
	for tp, pos := range c.positions {
		snapshot[tp] = pos
	}
	c.mu.Unlock()

	var lag int64
	for tp, pos := range snapshot {
		hwm, err := c.broker.HighWatermark(tp)
		if err != nil {
			return 0, err
		}
		if hwm > pos {
			lag += hwm - pos
		}
	}
	return lag, nil
}

package kafka

import (
	"context"
	"sort"
	"sync"

	"samzasql/internal/metrics"
)

// Consumer reads a fixed assignment of partitions, tracking a position per
// partition. It supports blocking polls (via a persistent per-consumer
// notifier), committed-offset resume, and seek-to-beginning replay — the
// capabilities Samza task runners need.
//
// A Consumer is safe for concurrent use, but Poll is designed for a single
// polling goroutine (the Samza task loop); Assign/Seek/Position may be
// called from others.
type Consumer struct {
	broker *Broker
	group  string

	// notify is the consumer's persistent wakeup channel: every assigned
	// partition signals it (coalesced, non-blocking) on append. Poll blocks
	// on it when the assignment is caught up, so idle polls park one
	// goroutine on one channel instead of spawning a goroutine per
	// partition per wait.
	notify chan struct{}

	mu        sync.Mutex
	positions map[TopicPartition]int64
	// lagGauges holds the per-partition consumer-lag gauges bound via
	// BindLagGauge; UpdateLag refreshes them against the broker's high
	// watermarks.
	lagGauges map[TopicPartition]*metrics.Gauge
	// rr orders partitions for round-robin polling fairness. It doubles as
	// the cached assignment snapshot: it is rebuilt only by Assign, and
	// pollOnce iterates it under a single lock acquisition without copying.
	rr     []TopicPartition
	next   int
	closed bool
}

// NewConsumer creates a consumer for group. Group may be empty for an
// anonymous consumer that never commits.
func NewConsumer(b *Broker, group string) *Consumer {
	return &Consumer{
		broker:    b,
		group:     group,
		notify:    make(chan struct{}, 1),
		positions: make(map[TopicPartition]int64),
	}
}

// Assign adds tp to the consumer's assignment, resuming from the group's
// committed offset if one exists, else from the oldest retained offset. It
// subscribes the consumer's notifier to the partition and invalidates the
// cached poll snapshot.
func (c *Consumer) Assign(tp TopicPartition) error {
	start, ok := c.broker.CommittedOffset(c.group, tp)
	if !ok {
		var err error
		start, err = c.broker.StartOffset(tp)
		if err != nil {
			return err
		}
	}
	if err := c.broker.Subscribe(tp, c.notify); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.positions[tp]; !dup {
		c.rr = append(c.rr, tp)
		sort.Slice(c.rr, func(i, j int) bool {
			if c.rr[i].Topic != c.rr[j].Topic {
				return c.rr[i].Topic < c.rr[j].Topic
			}
			return c.rr[i].Partition < c.rr[j].Partition
		})
	}
	c.positions[tp] = start
	return nil
}

// Close detaches the consumer's notifier from every assigned partition.
// Poll must not be called after Close.
func (c *Consumer) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	rr := make([]TopicPartition, len(c.rr))
	copy(rr, c.rr)
	c.mu.Unlock()
	for _, tp := range rr {
		c.broker.Unsubscribe(tp, c.notify)
	}
}

// Seek moves the consumer's position on tp. The partition must be assigned.
func (c *Consumer) Seek(tp TopicPartition, offset int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.positions[tp]; ok {
		c.positions[tp] = offset
	}
}

// SeekToBeginning rewinds tp to the oldest retained offset (replay).
func (c *Consumer) SeekToBeginning(tp TopicPartition) error {
	start, err := c.broker.StartOffset(tp)
	if err != nil {
		return err
	}
	c.Seek(tp, start)
	return nil
}

// Position returns the next offset the consumer will fetch from tp.
func (c *Consumer) Position(tp TopicPartition) (int64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	off, ok := c.positions[tp]
	return off, ok
}

// Assignment returns the assigned partitions in deterministic order.
func (c *Consumer) Assignment() []TopicPartition {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]TopicPartition, len(c.rr))
	copy(out, c.rr)
	return out
}

// Poll fetches up to max messages, cycling over assigned partitions for
// fairness. If every partition is caught up it blocks until new data arrives
// on any of them or ctx is done. A nil slice with nil error means the
// consumer has no assignment.
func (c *Consumer) Poll(ctx context.Context, max int) ([]Message, error) {
	for {
		msgs, assigned, err := c.pollOnce(max)
		if err != nil {
			return nil, err
		}
		if len(msgs) > 0 {
			return msgs, nil
		}
		if !assigned {
			return nil, nil
		}
		// Caught up on every partition: park on the persistent notifier.
		// An append racing the fetches above has already queued a token
		// (partitions signal after assigning the offset), so the wakeup
		// cannot be lost; a stale token merely costs one re-poll.
		select {
		case <-c.notify:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// pollOnce tries each assigned partition once, starting after the last
// partition that produced data. The whole pass runs under one lock
// acquisition: broker fetches never block and never call back into the
// consumer, and holding the lock lets the pass read rr (the assignment
// snapshot) and positions in place instead of copying them per call.
//
//samzasql:hotpath
func (c *Consumer) pollOnce(max int) (msgs []Message, assigned bool, err error) {
	//samzasql:ignore hotpath-blocking -- consumer offset state is owned by the poll loop; the lock is uncontended except during seek/rebalance
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.rr) == 0 {
		return nil, false, nil
	}
	start := c.next
	for i := 0; i < len(c.rr); i++ {
		tp := c.rr[(start+i)%len(c.rr)]
		//samzasql:ignore hotpath-blocking -- consumer offset state is owned by the poll loop; the lock is uncontended except during seek/rebalance
		msgs, _, err := c.broker.Fetch(tp, c.positions[tp], max)
		if err != nil {
			return nil, true, err
		}
		if len(msgs) > 0 {
			c.positions[tp] = msgs[len(msgs)-1].Offset + 1
			c.next = (start + i + 1) % len(c.rr)
			return msgs, true, nil
		}
	}
	return nil, true, nil
}

// Commit records the current position of every assigned partition under the
// consumer's group.
func (c *Consumer) Commit() {
	if c.group == "" {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for tp, pos := range c.positions {
		c.broker.CommitOffset(c.group, tp, pos)
	}
}

// BindLagGauge attaches a gauge to an assigned partition's consumer lag.
// UpdateLag refreshes it; a sampler (the container's metrics reporter) calls
// that on its own cadence so the poll hot path never pays the broker
// high-watermark query.
func (c *Consumer) BindLagGauge(tp TopicPartition, g *metrics.Gauge) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.lagGauges == nil {
		c.lagGauges = map[TopicPartition]*metrics.Gauge{}
	}
	c.lagGauges[tp] = g
}

// UpdateLag recomputes per-partition consumer lag against the broker's high
// watermarks (Broker.HighWatermark), stores it into any bound gauges, and
// returns the total across the assignment. A replayed-from-zero partition
// reports the full retained log; a caught-up partition reports 0.
func (c *Consumer) UpdateLag() (int64, error) {
	c.mu.Lock()
	positions := make(map[TopicPartition]int64, len(c.positions))
	for tp, pos := range c.positions {
		positions[tp] = pos
	}
	gauges := make(map[TopicPartition]*metrics.Gauge, len(c.lagGauges))
	for tp, g := range c.lagGauges {
		gauges[tp] = g
	}
	c.mu.Unlock()

	var total int64
	for tp, pos := range positions {
		hwm, err := c.broker.HighWatermark(tp)
		if err != nil {
			return 0, err
		}
		lag := hwm - pos
		if lag < 0 {
			lag = 0
		}
		if g := gauges[tp]; g != nil {
			g.Set(lag)
		}
		total += lag
	}
	return total, nil
}

// Lag returns the total number of unconsumed messages across the
// assignment, refreshing any bound per-partition gauges along the way.
func (c *Consumer) Lag() (int64, error) {
	return c.UpdateLag()
}

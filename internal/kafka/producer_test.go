package kafka

import (
	"errors"
	"testing"
)

func TestProducerSendPartitionsByKey(t *testing.T) {
	b := NewBroker()
	mustCreate(t, b, "t", TopicConfig{Partitions: 8})
	p := NewProducer(b, "t")
	off, err := p.Send([]byte("key-a"), []byte("v1"), 100)
	if err != nil || off != 0 {
		t.Fatalf("Send: %d %v", off, err)
	}
	// Same key lands in the same partition with increasing offsets.
	off2, err := p.Send([]byte("key-a"), []byte("v2"), 200)
	if err != nil || off2 != 1 {
		t.Fatalf("second Send: %d %v", off2, err)
	}
	want := PartitionForKey([]byte("key-a"), 8)
	tp := TopicPartition{Topic: "t", Partition: want}
	msgs, _, err := b.Fetch(tp, 0, 10)
	if err != nil || len(msgs) != 2 {
		t.Fatalf("fetch from keyed partition: %d msgs, %v", len(msgs), err)
	}
	if msgs[0].Timestamp != 100 || msgs[1].Timestamp != 200 {
		t.Fatalf("timestamps %d %d", msgs[0].Timestamp, msgs[1].Timestamp)
	}
}

func TestProducerSendTo(t *testing.T) {
	b := NewBroker()
	mustCreate(t, b, "t", TopicConfig{Partitions: 4})
	p := NewProducer(b, "t")
	if _, err := p.SendTo(3, []byte("k"), []byte("v"), 1); err != nil {
		t.Fatal(err)
	}
	hwm, _ := b.HighWatermark(TopicPartition{Topic: "t", Partition: 3})
	if hwm != 1 {
		t.Fatalf("explicit partition ignored: hwm %d", hwm)
	}
	if _, err := p.SendTo(9, nil, nil, 0); !errors.Is(err, ErrUnknownPartition) {
		t.Fatalf("out-of-range partition: %v", err)
	}
}

func TestProducerUnknownTopic(t *testing.T) {
	b := NewBroker()
	p := NewProducer(b, "missing")
	if _, err := p.Send(nil, []byte("v"), 0); !errors.Is(err, ErrUnknownTopic) {
		t.Fatalf("send to missing topic: %v", err)
	}
}

package kafka

import (
	"errors"
	"fmt"
	"testing"
)

func TestProduceBatchAssignsContiguousOffsets(t *testing.T) {
	b := NewBroker()
	mustCreate(t, b, "t", TopicConfig{Partitions: 2})
	msgs := make([]Message, 10)
	for i := range msgs {
		msgs[i] = Message{Partition: 1, Key: []byte("k"), Value: []byte(fmt.Sprintf("v%d", i))}
	}
	if err := b.ProduceBatch("t", msgs); err != nil {
		t.Fatal(err)
	}
	for i, m := range msgs {
		if m.Offset != int64(i) || m.Partition != 1 || m.Topic != "t" {
			t.Fatalf("msg %d assigned %s-%d@%d", i, m.Topic, m.Partition, m.Offset)
		}
	}
	got, _, err := b.Fetch(TopicPartition{Topic: "t", Partition: 1}, 0, 100)
	if err != nil || len(got) != 10 {
		t.Fatalf("fetch after batch: %d msgs, %v", len(got), err)
	}
	for i, m := range got {
		if string(m.Value) != fmt.Sprintf("v%d", i) {
			t.Fatalf("msg %d value %q", i, m.Value)
		}
	}
}

func TestProduceBatchHashPartitioning(t *testing.T) {
	b := NewBroker()
	mustCreate(t, b, "t", TopicConfig{Partitions: 8})
	msgs := []Message{
		{Partition: -1, Key: []byte("key-a"), Value: []byte("1")},
		{Partition: -1, Key: []byte("key-a"), Value: []byte("2")},
		{Partition: -1, Key: []byte("key-b"), Value: []byte("3")},
	}
	if err := b.ProduceBatch("t", msgs); err != nil {
		t.Fatal(err)
	}
	wantA := PartitionForKey([]byte("key-a"), 8)
	wantB := PartitionForKey([]byte("key-b"), 8)
	if msgs[0].Partition != wantA || msgs[1].Partition != wantA || msgs[2].Partition != wantB {
		t.Fatalf("partitions %d %d %d, want %d %d %d",
			msgs[0].Partition, msgs[1].Partition, msgs[2].Partition, wantA, wantA, wantB)
	}
	if msgs[0].Offset != 0 || msgs[1].Offset != 1 {
		t.Fatalf("same-key offsets %d %d", msgs[0].Offset, msgs[1].Offset)
	}
}

func TestProduceBatchErrors(t *testing.T) {
	b := NewBroker()
	mustCreate(t, b, "t", TopicConfig{Partitions: 2})
	if err := b.ProduceBatch("missing", []Message{{Partition: 0}}); !errors.Is(err, ErrUnknownTopic) {
		t.Fatalf("missing topic: %v", err)
	}
	if err := b.ProduceBatch("t", []Message{{Partition: 7}}); !errors.Is(err, ErrUnknownPartition) {
		t.Fatalf("bad partition: %v", err)
	}
	if err := b.ProduceBatch("t", nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
}

// TestProduceBatchCoalescedWakeup verifies a batch signals a persistent
// subscriber once (coalesced), not once per record — the synchronization
// saving the changelog flush path depends on.
func TestProduceBatchCoalescedWakeup(t *testing.T) {
	b := NewBroker()
	mustCreate(t, b, "t", TopicConfig{Partitions: 1})
	tp := TopicPartition{Topic: "t", Partition: 0}
	ch := make(chan struct{}, 16)
	if err := b.Subscribe(tp, ch); err != nil {
		t.Fatal(err)
	}
	msgs := make([]Message, 64)
	for i := range msgs {
		msgs[i] = Message{Partition: 0, Value: []byte("v")}
	}
	if err := b.ProduceBatch("t", msgs); err != nil {
		t.Fatal(err)
	}
	if n := len(ch); n != 1 {
		t.Fatalf("batch produced %d subscriber signals, want 1", n)
	}
}

// TestProduceBatchSegmentRollAndCompaction drives a batch large enough to
// roll segments on a compacted topic and checks the latest value per key
// survives a forced compaction pass.
func TestProduceBatchSegmentRollAndCompaction(t *testing.T) {
	b := NewBroker()
	mustCreate(t, b, "cl", TopicConfig{Partitions: 1, Compacted: true, SegmentBytes: 512})
	const rounds, keys = 40, 5
	for r := 0; r < rounds; r++ {
		msgs := make([]Message, keys)
		for k := 0; k < keys; k++ {
			msgs[k] = Message{
				Partition: 0,
				Key:       []byte(fmt.Sprintf("k%d", k)),
				Value:     []byte(fmt.Sprintf("r%03dk%d-padding-padding-padding", r, k)),
			}
		}
		if err := b.ProduceBatch("cl", msgs); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Compact("cl"); err != nil {
		t.Fatal(err)
	}
	tp := TopicPartition{Topic: "cl", Partition: 0}
	start, _ := b.StartOffset(tp)
	hwm, _ := b.HighWatermark(tp)
	if hwm != rounds*keys {
		t.Fatalf("hwm %d, want %d", hwm, rounds*keys)
	}
	latest := map[string]string{}
	for off := start; off < hwm; {
		msgs, wait, err := b.Fetch(tp, off, 64)
		if err != nil {
			t.Fatal(err)
		}
		if wait != nil {
			break
		}
		for _, m := range msgs {
			latest[string(m.Key)] = string(m.Value)
		}
		off = msgs[len(msgs)-1].Offset + 1
	}
	for k := 0; k < keys; k++ {
		want := fmt.Sprintf("r%03dk%d-padding-padding-padding", rounds-1, k)
		if got := latest[fmt.Sprintf("k%d", k)]; got != want {
			t.Fatalf("k%d latest %q, want %q", k, got, want)
		}
	}
}

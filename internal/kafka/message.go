// Package kafka implements an in-process, partitioned, offset-addressed,
// replayable commit log modeled on Apache Kafka's topic/partition/offset
// data model. It is the messaging substrate SamzaSQL-Go executes on.
//
// The package reproduces the properties the paper's evaluation depends on:
// per-partition total ordering, dense sequential offsets, replay from any
// retained offset, consumer-group offset commits, key-based partitioning,
// size-bounded retention, and key-compacted topics (used for changelog
// streams backing Samza local state).
package kafka

import (
	"fmt"

	"samzasql/internal/trace"
)

// Message is a single record in a partition. Key and Value are opaque byte
// slices; interpretation is left to serdes layered above the log.
type Message struct {
	// Topic and Partition identify where the message is (or will be) stored.
	Topic     string
	Partition int32
	// Offset is the dense per-partition sequence number assigned at append
	// time. For messages that have not been appended yet it is ignored.
	Offset int64
	// Key is the partitioning and compaction key. May be nil.
	Key []byte
	// Value is the payload. A nil Value is a tombstone on compacted topics.
	Value []byte
	// Timestamp is the event time in Unix milliseconds as supplied by the
	// producer. The log orders by offset, never by timestamp.
	Timestamp int64
	// Trace is the message's trace context (the moral equivalent of a trace
	// record header). The zero value — every unsampled message — costs one
	// bool check downstream. Attached by the broker at produce time when
	// sampling is enabled (Broker.SetTraceSampling), or carried through from
	// an upstream sampled message.
	Trace trace.Context
}

// Size returns the retention-accounting size of the message in bytes.
func (m *Message) Size() int {
	return len(m.Key) + len(m.Value) + messageOverhead
}

// messageOverhead approximates per-record bookkeeping bytes (offset,
// timestamp, lengths) the way Kafka's log format charges a record header.
const messageOverhead = 24

// TopicPartition names one partition of one topic.
type TopicPartition struct {
	Topic     string
	Partition int32
}

func (tp TopicPartition) String() string {
	return fmt.Sprintf("%s-%d", tp.Topic, tp.Partition)
}

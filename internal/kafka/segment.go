package kafka

// segment is a contiguous offset range of records within a partition,
// beginning at baseOffset. Partitions are chains of segments; retention
// drops whole segments from the head, which is how Kafka bounds disk usage
// without rewriting the log. After compaction a segment's records become
// sparse in offset but the segment still covers its full [base, upper)
// range, so offset arithmetic in the partition stays simple.
type segment struct {
	baseOffset  int64
	upperOffset int64 // next offset after this segment's range
	records     []Message
	sizeBytes   int
	dense       bool // records are contiguous: offset = base + index
	clean       bool // compaction survivor: unique keys, no tombstones
}

func newSegment(base int64) *segment {
	return &segment{baseOffset: base, upperOffset: base, dense: true}
}

// newSegmentLike rolls a fresh active segment once prev fills, pre-sizing the
// record slice to prev's count: segments roll at a byte bound, so the
// previous segment's record count predicts the next one's and steady-state
// appends allocate once per segment instead of doubling through growth.
func newSegmentLike(prev *segment) *segment {
	s := newSegment(prev.nextOffset())
	if n := len(prev.records); n > 0 {
		s.records = make([]Message, 0, n)
	}
	return s
}

// append adds a record, which must already carry its final offset equal to
// the segment's upper bound (dense append).
func (s *segment) append(m Message) {
	s.records = append(s.records, m)
	s.sizeBytes += m.Size()
	s.upperOffset++
}

// nextOffset is the offset one past the last offset covered by the segment.
func (s *segment) nextOffset() int64 { return s.upperOffset }

// contains reports whether offset falls inside this segment's range.
func (s *segment) contains(offset int64) bool {
	return offset >= s.baseOffset && offset < s.upperOffset
}

// fetch returns up to max records with offset >= from.
func (s *segment) fetch(from int64, max int) []Message {
	if max <= 0 {
		return nil
	}
	if s.dense {
		if from < s.baseOffset {
			from = s.baseOffset
		}
		i := int(from - s.baseOffset)
		if i >= len(s.records) {
			return nil
		}
		j := i + max
		if j > len(s.records) {
			j = len(s.records)
		}
		return s.records[i:j]
	}
	var out []Message
	for _, m := range s.records {
		if m.Offset < from {
			continue
		}
		out = append(out, m)
		if len(out) >= max {
			break
		}
	}
	return out
}

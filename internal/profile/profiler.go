package profile

import (
	"bytes"
	"context"
	"fmt"
	"runtime/pprof"
	"sync"
	"time"
)

// Defaults for the continuous capture cadence. The default duty cycle
// (200ms of CPU sampling per second) keeps steady-state overhead in the
// low single digits; Window == Interval is the aggressive always-sampling
// mode the overhead sweep measures.
const (
	// DefaultInterval is the period between capture windows.
	DefaultInterval = time.Second
	// DefaultWindow is the CPU sampling length within each interval.
	DefaultWindow = 200 * time.Millisecond
	// DefaultTopN caps how many functions one batch retains per profile
	// kind, bounding batch size and downstream store cardinality.
	DefaultTopN = 64
)

// Config controls one Profiler.
type Config struct {
	// Interval is the period between capture windows; <= 0 uses
	// DefaultInterval.
	Interval time.Duration
	// Window is the CPU sampling length per capture; <= 0 uses
	// DefaultWindow, and values above Interval clamp to it (100% duty).
	Window time.Duration
	// TopN caps retained functions per kind per batch; <= 0 uses
	// DefaultTopN.
	TopN int
}

// normalize resolves zero fields to defaults and clamps the window.
func (c Config) normalize() Config {
	if c.Interval <= 0 {
		c.Interval = DefaultInterval
	}
	if c.Window <= 0 {
		c.Window = DefaultWindow
	}
	if c.Window > c.Interval {
		c.Window = c.Interval
	}
	if c.TopN <= 0 {
		c.TopN = DefaultTopN
	}
	return c
}

// Batch is one capture window's folded output, ready for publication.
type Batch struct {
	// TimeMillis is the capture end wall-clock time.
	TimeMillis int64 `json:"time-millis"`
	// WindowMillis is the CPU sampling length this batch covers.
	WindowMillis int64 `json:"window-millis"`
	// CPU holds per-function CPU nanoseconds sampled during the window,
	// flat/cum, top-N by flat.
	CPU []FuncStat `json:"cpu,omitempty"`
	// HeapDelta holds per-function bytes allocated since the previous
	// capture (alloc_space delta between cumulative snapshots).
	HeapDelta []FuncStat `json:"heap-delta,omitempty"`
	// Goroutines holds per-function current goroutine counts (flat = parked
	// at that leaf, cum = anywhere on the stack). A level, not a delta.
	Goroutines []FuncStat `json:"goroutines,omitempty"`
}

// captureMu serializes CPU captures process-wide: runtime/pprof's
// StartCPUProfile is process-global and errors when a capture is already
// running, so concurrent containers (same process in this simulation) take
// turns instead of failing. Every capture observes the whole process.
var captureMu sync.Mutex

// Profiler periodically captures windowed CPU profiles plus heap-delta and
// goroutine snapshots for one container. It is constructed unconditionally
// cheap: until Capture runs, a Profiler costs nothing, and Enabled() is the
// branch hot-path call sites must sit behind (the profile-guard analyzer
// enforces this for //samzasql:hotpath functions, like trace-guard does for
// sampling).
type Profiler struct {
	cfg     Config
	enabled bool
	// prevHeap is the previous cumulative alloc_space fold, the baseline
	// for the next heap delta. Only the capture loop touches it.
	prevHeap []FuncStat
}

// New builds a profiler. A nil-config (all-zero) profiler uses defaults;
// pass enabled=false to construct an idle profiler that refuses captures.
func New(cfg Config, enabled bool) *Profiler {
	return &Profiler{cfg: cfg.normalize(), enabled: enabled}
}

// Enabled reports whether the profiler captures at all. This is the guard
// branch for any profiler call reachable from a hot path.
func (p *Profiler) Enabled() bool { return p != nil && p.enabled }

// Config returns the normalized capture configuration.
func (p *Profiler) Config() Config { return p.cfg }

// Capture runs one full capture window — CPU sampling for the configured
// window plus heap-delta and goroutine snapshots — and returns the folded
// batch. It blocks for about cfg.Window (less if ctx ends first) and
// serializes with concurrent captures process-wide.
func (p *Profiler) Capture(ctx context.Context) (*Batch, error) {
	if !p.Enabled() {
		return nil, fmt.Errorf("profile: profiler disabled")
	}
	cpu, err := p.CaptureCPU(ctx, p.cfg.Window)
	if err != nil {
		return nil, err
	}
	heap, err := p.CaptureHeapDelta()
	if err != nil {
		return nil, err
	}
	gor, err := p.CaptureGoroutines()
	if err != nil {
		return nil, err
	}
	return &Batch{
		TimeMillis:   time.Now().UnixMilli(),
		WindowMillis: p.cfg.Window.Milliseconds(),
		CPU:          cpu,
		HeapDelta:    heap,
		Goroutines:   gor,
	}, nil
}

// CaptureCPU samples the process's CPU for d and folds the profile into
// top-N per-function flat/cum nanoseconds.
func (p *Profiler) CaptureCPU(ctx context.Context, d time.Duration) ([]FuncStat, error) {
	captureMu.Lock()
	defer captureMu.Unlock()
	var buf bytes.Buffer
	if err := pprof.StartCPUProfile(&buf); err != nil {
		return nil, fmt.Errorf("profile: start cpu: %w", err)
	}
	t := time.NewTimer(d)
	//samzasql:ignore lock-discipline -- captureMu exists to make this blocking sampling window exclusive: StartCPUProfile is process-global, so concurrent captures must wait out the window, not interleave
	select {
	case <-ctx.Done():
		t.Stop()
	case <-t.C:
	}
	pprof.StopCPUProfile()
	prof, err := Parse(buf.Bytes())
	if err != nil {
		return nil, fmt.Errorf("profile: decode cpu: %w", err)
	}
	idx := prof.ValueIndex("cpu")
	if idx < 0 {
		// Fall back to the samples dimension; every CPU profile has one.
		idx = prof.ValueIndex("samples")
	}
	return Truncate(prof.Fold(idx), p.cfg.TopN), nil
}

// CaptureHeapDelta snapshots the cumulative allocation profile and returns
// the per-function alloc_space delta against the previous capture, top-N by
// flat. The first call returns the cumulative-since-start totals.
func (p *Profiler) CaptureHeapDelta() ([]FuncStat, error) {
	cur, err := lookupFold("allocs", "alloc_space")
	if err != nil {
		return nil, err
	}
	delta := Delta(cur, p.prevHeap)
	p.prevHeap = cur
	return Truncate(delta, p.cfg.TopN), nil
}

// CaptureGoroutines snapshots the goroutine profile: per-function counts of
// live goroutines (flat = parked at that leaf), top-N by flat.
func (p *Profiler) CaptureGoroutines() ([]FuncStat, error) {
	stats, err := lookupFold("goroutine", "goroutine")
	if err != nil {
		return nil, err
	}
	return Truncate(stats, p.cfg.TopN), nil
}

// lookupFold writes one named runtime profile in proto format, decodes it,
// and folds the named value dimension (falling back to dimension 0).
func lookupFold(name, valueType string) ([]FuncStat, error) {
	lp := pprof.Lookup(name)
	if lp == nil {
		return nil, fmt.Errorf("profile: no %q profile", name)
	}
	var buf bytes.Buffer
	if err := lp.WriteTo(&buf, 0); err != nil {
		return nil, fmt.Errorf("profile: write %s: %w", name, err)
	}
	prof, err := Parse(buf.Bytes())
	if err != nil {
		return nil, fmt.Errorf("profile: decode %s: %w", name, err)
	}
	idx := prof.ValueIndex(valueType)
	if idx < 0 {
		idx = 0
	}
	return prof.Fold(idx), nil
}

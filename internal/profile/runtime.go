package profile

import (
	"math"
	rm "runtime/metrics"

	"samzasql/internal/metrics"
)

// Runtime metric names as they appear in registry snapshots (and therefore
// on __metrics and in the monitor store).
const (
	// RuntimeGoroutines is the live goroutine count gauge.
	RuntimeGoroutines = "runtime.goroutines"
	// RuntimeHeapLive is the live heap object bytes gauge.
	RuntimeHeapLive = "runtime.heap-live-bytes"
	// RuntimeGCCycles is the completed GC cycle counter.
	RuntimeGCCycles = "runtime.gc-cycles"
	// RuntimeGCPause is the GC stop-the-world pause histogram (ns).
	RuntimeGCPause = "runtime.gc-pause-ns"
	// RuntimeGCLastPause is the most recent observed GC pause gauge (ns).
	RuntimeGCLastPause = "runtime.gc-last-pause-ns"
	// RuntimeSchedLatency is the scheduler ready-to-run latency histogram (ns).
	RuntimeSchedLatency = "runtime.sched-latency-ns"
)

// histReplayCap bounds how many Observe calls one Refresh spends replaying
// a runtime histogram's new bucket counts into the registry histogram.
// Scheduler latencies record one event per goroutine wakeup, so a busy
// interval can add hundreds of thousands of counts; above the cap the
// replay scales counts down proportionally, preserving the distribution's
// shape at bounded cost.
const histReplayCap = 1024

// Collector reads the runtime/metrics samples the profiler cares about —
// goroutine count, live heap, GC pauses, scheduler latencies — into an
// ordinary typed registry, so runtime telemetry rides the existing
// __metrics stream and monitor store with no new plumbing. Call Refresh
// from the metrics reporter's refresh hook (it runs once per snapshot
// publish, never on the message hot path).
type Collector struct {
	samples []rm.Sample

	goroutines  *metrics.Gauge
	heapLive    *metrics.Gauge
	gcCycles    *metrics.Counter
	gcLastPause *metrics.Gauge
	gcPause     *metrics.Histogram
	schedLat    *metrics.Histogram

	prevGCCycles int64
	prevPause    []uint64
	prevSched    []uint64
}

// Indices into Collector.samples, fixed at construction.
const (
	sampleGoroutines = iota
	sampleHeapLive
	sampleGCCycles
	sampleGCPause
	sampleSchedLat
	sampleCount
)

// NewCollector binds the runtime series into reg. The gauges and
// histograms are pre-bound here, so Refresh does no registry lookups.
func NewCollector(reg *metrics.Registry) *Collector {
	c := &Collector{
		samples:     make([]rm.Sample, sampleCount),
		goroutines:  reg.Gauge(RuntimeGoroutines),
		heapLive:    reg.Gauge(RuntimeHeapLive),
		gcCycles:    reg.Counter(RuntimeGCCycles),
		gcLastPause: reg.Gauge(RuntimeGCLastPause),
		gcPause:     reg.Histogram(RuntimeGCPause),
		schedLat:    reg.Histogram(RuntimeSchedLatency),
	}
	c.samples[sampleGoroutines].Name = "/sched/goroutines:goroutines"
	c.samples[sampleHeapLive].Name = "/memory/classes/heap/objects:bytes"
	c.samples[sampleGCCycles].Name = "/gc/cycles/total:gc-cycles"
	c.samples[sampleGCPause].Name = "/gc/pauses:seconds"
	c.samples[sampleSchedLat].Name = "/sched/latencies:seconds"
	return c
}

// Refresh reads the runtime samples and folds them into the registry:
// gauges set directly, counter advanced by the cycle delta, histograms fed
// the new bucket counts since the previous refresh (replayed at bucket
// midpoints, capped and scaled by histReplayCap).
func (c *Collector) Refresh() {
	rm.Read(c.samples)
	if v, ok := sampleUint(c.samples[sampleGoroutines]); ok {
		c.goroutines.Set(int64(v))
	}
	if v, ok := sampleUint(c.samples[sampleHeapLive]); ok {
		c.heapLive.Set(int64(v))
	}
	if v, ok := sampleUint(c.samples[sampleGCCycles]); ok {
		if d := int64(v) - c.prevGCCycles; d > 0 {
			c.gcCycles.Add(d)
		}
		c.prevGCCycles = int64(v)
	}
	if h := sampleHist(c.samples[sampleGCPause]); h != nil {
		if last := c.replayHist(h, &c.prevPause, c.gcPause); last > 0 {
			c.gcLastPause.Set(last)
		}
	}
	if h := sampleHist(c.samples[sampleSchedLat]); h != nil {
		c.replayHist(h, &c.prevSched, c.schedLat)
	}
}

// replayHist feeds the new counts of a cumulative runtime histogram into
// the registry histogram and returns the largest bucket midpoint (ns) that
// gained counts this refresh (0 when nothing changed). prev holds the
// previous counts and is updated in place (re-allocated only when the
// runtime changes its bucket layout).
func (c *Collector) replayHist(h *rm.Float64Histogram, prev *[]uint64, dst *metrics.Histogram) int64 {
	if len(*prev) != len(h.Counts) {
		*prev = make([]uint64, len(h.Counts))
	}
	var total uint64
	for i, n := range h.Counts {
		if n > (*prev)[i] {
			total += n - (*prev)[i]
		}
	}
	if total == 0 {
		copy(*prev, h.Counts)
		return 0
	}
	// Scale so one refresh replays at most histReplayCap observations.
	scale := 1.0
	if total > histReplayCap {
		scale = float64(histReplayCap) / float64(total)
	}
	var lastNs int64
	for i, n := range h.Counts {
		d := int64(n) - int64((*prev)[i])
		(*prev)[i] = n
		if d <= 0 {
			continue
		}
		ns := bucketMidNs(h.Buckets, i)
		if ns > lastNs {
			lastNs = ns
		}
		reps := int(math.Round(float64(d) * scale))
		if reps < 1 {
			reps = 1
		}
		for r := 0; r < reps; r++ {
			dst.Observe(ns)
		}
	}
	return lastNs
}

// bucketMidNs converts runtime histogram bucket i's midpoint from seconds
// to nanoseconds, using the finite edge when a boundary is ±Inf.
func bucketMidNs(buckets []float64, i int) int64 {
	if i+1 >= len(buckets) {
		return 0
	}
	lo, hi := buckets[i], buckets[i+1]
	if math.IsInf(lo, -1) {
		lo = 0
	}
	if math.IsInf(hi, 1) {
		hi = lo
	}
	mid := (lo + hi) / 2
	if mid < 0 {
		mid = 0
	}
	return int64(mid * 1e9)
}

// sampleUint extracts an integer sample value.
func sampleUint(s rm.Sample) (uint64, bool) {
	if s.Value.Kind() != rm.KindUint64 {
		return 0, false
	}
	return s.Value.Uint64(), true
}

// sampleHist extracts a histogram sample value.
func sampleHist(s rm.Sample) *rm.Float64Histogram {
	if s.Value.Kind() != rm.KindFloat64Histogram {
		return nil
	}
	return s.Value.Float64Histogram()
}

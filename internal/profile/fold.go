package profile

import "sort"

// FuncStat is one function's aggregate over a profile's samples: Flat is
// the value attributed to samples whose leaf frame is the function, Cum the
// value of every sample the function appears anywhere in (counted once per
// sample, so recursion does not double-count).
type FuncStat struct {
	Name string `json:"name"`
	Flat int64  `json:"flat"`
	Cum  int64  `json:"cum"`
}

// Fold aggregates the profile's samples at the given value index into
// per-function flat/cum totals, sorted by Flat descending (Cum, then name,
// break ties so output is deterministic). A negative or out-of-range index
// returns nil.
func (p *Profile) Fold(valueIndex int) []FuncStat {
	if valueIndex < 0 {
		return nil
	}
	type agg struct{ flat, cum int64 }
	byFunc := map[string]*agg{}
	// seen dedupes functions within one sample's stack for cum counting;
	// reset per sample by generation number instead of reallocating.
	seen := map[string]int{}
	gen := 0
	for _, s := range p.Samples {
		if valueIndex >= len(s.Values) {
			continue
		}
		v := s.Values[valueIndex]
		if v == 0 || len(s.LocationIDs) == 0 {
			continue
		}
		gen++
		leafDone := false
		for _, loc := range s.LocationIDs {
			for _, name := range p.FuncsAt(loc) {
				a := byFunc[name]
				if a == nil {
					a = &agg{}
					byFunc[name] = a
				}
				// The first resolvable frame of the first location is the
				// leaf (inlined frames come leaf-first within a location).
				if !leafDone {
					a.flat += v
					leafDone = true
				}
				if seen[name] != gen {
					seen[name] = gen
					a.cum += v
				}
			}
		}
	}
	out := make([]FuncStat, 0, len(byFunc))
	for name, a := range byFunc {
		out = append(out, FuncStat{Name: name, Flat: a.flat, Cum: a.cum})
	}
	SortStats(out)
	return out
}

// SortStats orders stats by Flat descending, then Cum descending, then name.
func SortStats(stats []FuncStat) {
	sort.Slice(stats, func(i, j int) bool {
		if stats[i].Flat != stats[j].Flat {
			return stats[i].Flat > stats[j].Flat
		}
		if stats[i].Cum != stats[j].Cum {
			return stats[i].Cum > stats[j].Cum
		}
		return stats[i].Name < stats[j].Name
	})
}

// Truncate keeps the top n stats (the input must already be sorted); n <= 0
// keeps everything.
func Truncate(stats []FuncStat, n int) []FuncStat {
	if n > 0 && len(stats) > n {
		return stats[:n]
	}
	return stats
}

// Delta subtracts a previous capture's per-function totals from the current
// one, dropping functions whose values did not grow — the heap-allocation
// window delta over two cumulative alloc_space captures. A nil prev returns
// cur unchanged. The result is sorted by Flat descending.
func Delta(cur, prev []FuncStat) []FuncStat {
	if len(prev) == 0 {
		out := make([]FuncStat, len(cur))
		copy(out, cur)
		SortStats(out)
		return out
	}
	base := make(map[string]FuncStat, len(prev))
	for _, s := range prev {
		base[s.Name] = s
	}
	var out []FuncStat
	for _, s := range cur {
		b := base[s.Name]
		d := FuncStat{Name: s.Name, Flat: s.Flat - b.Flat, Cum: s.Cum - b.Cum}
		if d.Flat <= 0 && d.Cum <= 0 {
			continue
		}
		if d.Flat < 0 {
			d.Flat = 0
		}
		if d.Cum < 0 {
			d.Cum = 0
		}
		out = append(out, d)
	}
	SortStats(out)
	return out
}

// Merge sums per-function stats across inputs (cross-container top-N
// aggregation), sorted by Flat descending.
func Merge(lists ...[]FuncStat) []FuncStat {
	type agg struct{ flat, cum int64 }
	byFunc := map[string]*agg{}
	for _, list := range lists {
		for _, s := range list {
			a := byFunc[s.Name]
			if a == nil {
				a = &agg{}
				byFunc[s.Name] = a
			}
			a.flat += s.Flat
			a.cum += s.Cum
		}
	}
	out := make([]FuncStat, 0, len(byFunc))
	for name, a := range byFunc {
		out = append(out, FuncStat{Name: name, Flat: a.flat, Cum: a.cum})
	}
	SortStats(out)
	return out
}

// Package profile implements the continuous profiler: periodic windowed
// CPU/heap/goroutine captures via runtime/pprof, decoded by a minimal
// in-repo reader for the pprof profile.proto wire format (this file), folded
// into per-function flat/cum aggregates (fold.go), published onto the
// __profiles stream by samza.ProfileReporter. A runtime/metrics collector
// (runtime.go) feeds GC/scheduler/heap series into the ordinary typed
// registry so they ride __metrics unchanged.
//
// The decoder is deliberately tiny: it understands exactly the protobuf
// subset the Go runtime emits — varints, length-delimited messages, packed
// repeated integers — and extracts only what folding needs (sample types,
// sample stacks, the location→line→function tables, the string table).
// Everything else (mappings, labels, comments) is skipped field-by-field.
package profile

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
)

// ValueType is one sample-value dimension: ("cpu", "nanoseconds"),
// ("alloc_space", "bytes"), ("goroutine", "count"), ...
type ValueType struct {
	Type string
	Unit string
}

// Sample is one stack sample: location IDs leaf-first plus one value per
// declared sample type.
type Sample struct {
	LocationIDs []uint64
	Values      []int64
}

// Profile is a decoded pprof profile reduced to what per-function folding
// needs. Location and function tables stay ID-keyed; FuncsAt resolves a
// location to its function names (inlined frames leaf-first).
type Profile struct {
	SampleTypes   []ValueType
	Samples       []Sample
	TimeNanos     int64
	DurationNanos int64
	Period        int64
	PeriodType    ValueType

	// locFuncs maps a location ID to the function IDs of its lines,
	// leaf-most inlined frame first (the order profile.proto guarantees).
	locFuncs map[uint64][]uint64
	// funcNames maps a function ID to its name.
	funcNames map[uint64]string
}

// ValueIndex returns the index of the sample-value dimension with the given
// type name ("cpu", "samples", "alloc_space", "inuse_space", "goroutine"),
// or -1 when the profile does not carry it.
func (p *Profile) ValueIndex(typ string) int {
	for i, st := range p.SampleTypes {
		if st.Type == typ {
			return i
		}
	}
	return -1
}

// FuncsAt resolves one location ID to its function names, leaf-most inlined
// frame first. Unknown IDs and nameless functions resolve to nothing.
func (p *Profile) FuncsAt(loc uint64) []string {
	ids := p.locFuncs[loc]
	if len(ids) == 0 {
		return nil
	}
	out := make([]string, 0, len(ids))
	for _, id := range ids {
		if name := p.funcNames[id]; name != "" {
			out = append(out, name)
		}
	}
	return out
}

// Parse decodes a pprof profile as written by runtime/pprof — gzip-wrapped
// profile.proto — into the reduced Profile. Raw (un-gzipped) proto bytes
// are accepted too, for tests that build profiles by hand.
func Parse(data []byte) (*Profile, error) {
	if len(data) >= 2 && data[0] == 0x1f && data[1] == 0x8b {
		zr, err := gzip.NewReader(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("profile: gunzip: %w", err)
		}
		raw, err := io.ReadAll(zr)
		if cerr := zr.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return nil, fmt.Errorf("profile: gunzip: %w", err)
		}
		data = raw
	}
	p := &Profile{
		locFuncs:  map[uint64][]uint64{},
		funcNames: map[uint64]string{},
	}
	// First pass collects the raw messages; string-table indices resolve
	// afterwards because the table interleaves with its referents.
	var strtab []string
	type vt struct{ typ, unit int64 }
	var sampleTypes []vt
	var periodType vt
	type fn struct {
		id   uint64
		name int64
	}
	var funcs []fn
	d := wireDecoder{buf: data}
	for !d.done() {
		num, typ, err := d.tag()
		if err != nil {
			return nil, err
		}
		switch num {
		case 1: // sample_type: repeated ValueType
			msg, err := d.bytesField(typ)
			if err != nil {
				return nil, err
			}
			t, u, err := parseValueType(msg)
			if err != nil {
				return nil, err
			}
			sampleTypes = append(sampleTypes, vt{t, u})
		case 2: // sample: repeated Sample
			msg, err := d.bytesField(typ)
			if err != nil {
				return nil, err
			}
			s, err := parseSample(msg)
			if err != nil {
				return nil, err
			}
			p.Samples = append(p.Samples, s)
		case 4: // location: repeated Location
			msg, err := d.bytesField(typ)
			if err != nil {
				return nil, err
			}
			id, fns, err := parseLocation(msg)
			if err != nil {
				return nil, err
			}
			p.locFuncs[id] = fns
		case 5: // function: repeated Function
			msg, err := d.bytesField(typ)
			if err != nil {
				return nil, err
			}
			id, name, err := parseFunction(msg)
			if err != nil {
				return nil, err
			}
			funcs = append(funcs, fn{id: id, name: name})
		case 6: // string_table: repeated string
			msg, err := d.bytesField(typ)
			if err != nil {
				return nil, err
			}
			strtab = append(strtab, string(msg))
		case 9: // time_nanos
			v, err := d.intField(typ)
			if err != nil {
				return nil, err
			}
			p.TimeNanos = v
		case 10: // duration_nanos
			v, err := d.intField(typ)
			if err != nil {
				return nil, err
			}
			p.DurationNanos = v
		case 11: // period_type
			msg, err := d.bytesField(typ)
			if err != nil {
				return nil, err
			}
			t, u, err := parseValueType(msg)
			if err != nil {
				return nil, err
			}
			periodType = vt{t, u}
		case 12: // period
			v, err := d.intField(typ)
			if err != nil {
				return nil, err
			}
			p.Period = v
		default:
			if err := d.skip(typ); err != nil {
				return nil, err
			}
		}
	}
	str := func(i int64) string {
		if i < 0 || i >= int64(len(strtab)) {
			return ""
		}
		return strtab[i]
	}
	for _, st := range sampleTypes {
		p.SampleTypes = append(p.SampleTypes, ValueType{Type: str(st.typ), Unit: str(st.unit)})
	}
	p.PeriodType = ValueType{Type: str(periodType.typ), Unit: str(periodType.unit)}
	for _, f := range funcs {
		p.funcNames[f.id] = str(f.name)
	}
	return p, nil
}

// parseValueType reads a ValueType message: type (1) and unit (2), both
// string-table indices.
func parseValueType(msg []byte) (typ, unit int64, err error) {
	d := wireDecoder{buf: msg}
	for !d.done() {
		num, wt, err := d.tag()
		if err != nil {
			return 0, 0, err
		}
		switch num {
		case 1:
			if typ, err = d.intField(wt); err != nil {
				return 0, 0, err
			}
		case 2:
			if unit, err = d.intField(wt); err != nil {
				return 0, 0, err
			}
		default:
			if err := d.skip(wt); err != nil {
				return 0, 0, err
			}
		}
	}
	return typ, unit, nil
}

// parseSample reads a Sample message: location_id (1, packed uint64) and
// value (2, packed int64). Labels (3) are skipped.
func parseSample(msg []byte) (Sample, error) {
	var s Sample
	d := wireDecoder{buf: msg}
	for !d.done() {
		num, wt, err := d.tag()
		if err != nil {
			return s, err
		}
		switch num {
		case 1:
			ids, err := d.packedUints(wt)
			if err != nil {
				return s, err
			}
			s.LocationIDs = append(s.LocationIDs, ids...)
		case 2:
			vals, err := d.packedUints(wt)
			if err != nil {
				return s, err
			}
			for _, v := range vals {
				s.Values = append(s.Values, int64(v))
			}
		default:
			if err := d.skip(wt); err != nil {
				return s, err
			}
		}
	}
	return s, nil
}

// parseLocation reads a Location message: id (1) and the function IDs of
// its Line messages (4), leaf-most inlined frame first.
func parseLocation(msg []byte) (id uint64, funcIDs []uint64, err error) {
	d := wireDecoder{buf: msg}
	for !d.done() {
		num, wt, err := d.tag()
		if err != nil {
			return 0, nil, err
		}
		switch num {
		case 1:
			v, err := d.intField(wt)
			if err != nil {
				return 0, nil, err
			}
			id = uint64(v)
		case 4:
			line, err := d.bytesField(wt)
			if err != nil {
				return 0, nil, err
			}
			fid, err := parseLine(line)
			if err != nil {
				return 0, nil, err
			}
			if fid != 0 {
				funcIDs = append(funcIDs, fid)
			}
		default:
			if err := d.skip(wt); err != nil {
				return 0, nil, err
			}
		}
	}
	return id, funcIDs, nil
}

// parseLine reads a Line message and returns its function_id (1).
func parseLine(msg []byte) (uint64, error) {
	var fid uint64
	d := wireDecoder{buf: msg}
	for !d.done() {
		num, wt, err := d.tag()
		if err != nil {
			return 0, err
		}
		if num == 1 {
			v, err := d.intField(wt)
			if err != nil {
				return 0, err
			}
			fid = uint64(v)
			continue
		}
		if err := d.skip(wt); err != nil {
			return 0, err
		}
	}
	return fid, nil
}

// parseFunction reads a Function message: id (1) and name (2, string-table
// index).
func parseFunction(msg []byte) (id uint64, name int64, err error) {
	d := wireDecoder{buf: msg}
	for !d.done() {
		num, wt, err := d.tag()
		if err != nil {
			return 0, 0, err
		}
		switch num {
		case 1:
			v, err := d.intField(wt)
			if err != nil {
				return 0, 0, err
			}
			id = uint64(v)
		case 2:
			if name, err = d.intField(wt); err != nil {
				return 0, 0, err
			}
		default:
			if err := d.skip(wt); err != nil {
				return 0, 0, err
			}
		}
	}
	return id, name, nil
}

// Protobuf wire types (the runtime emits only 0, 1 and 2; 5 is handled for
// completeness).
const (
	wireVarint  = 0
	wireFixed64 = 1
	wireBytes   = 2
	wireFixed32 = 5
)

// wireDecoder walks one protobuf message's bytes.
type wireDecoder struct {
	buf []byte
	pos int
}

func (d *wireDecoder) done() bool { return d.pos >= len(d.buf) }

// varint reads one base-128 varint.
func (d *wireDecoder) varint() (uint64, error) {
	var v uint64
	var shift uint
	for i := 0; i < 10; i++ {
		if d.pos >= len(d.buf) {
			return 0, fmt.Errorf("profile: truncated varint at %d", d.pos)
		}
		b := d.buf[d.pos]
		d.pos++
		v |= uint64(b&0x7f) << shift
		if b < 0x80 {
			return v, nil
		}
		shift += 7
	}
	return 0, fmt.Errorf("profile: varint overflow at %d", d.pos)
}

// tag reads one field tag and returns (field number, wire type).
func (d *wireDecoder) tag() (int, int, error) {
	v, err := d.varint()
	if err != nil {
		return 0, 0, err
	}
	return int(v >> 3), int(v & 7), nil
}

// bytesField reads a length-delimited field's payload.
func (d *wireDecoder) bytesField(wt int) ([]byte, error) {
	if wt != wireBytes {
		return nil, fmt.Errorf("profile: want length-delimited field, got wire type %d", wt)
	}
	n, err := d.varint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(d.buf)-d.pos) {
		return nil, fmt.Errorf("profile: field length %d past end", n)
	}
	b := d.buf[d.pos : d.pos+int(n)]
	d.pos += int(n)
	return b, nil
}

// intField reads a scalar integer field (varint or fixed encodings).
func (d *wireDecoder) intField(wt int) (int64, error) {
	switch wt {
	case wireVarint:
		v, err := d.varint()
		return int64(v), err
	case wireFixed64:
		if d.pos+8 > len(d.buf) {
			return 0, fmt.Errorf("profile: truncated fixed64 at %d", d.pos)
		}
		var v uint64
		for i := 7; i >= 0; i-- {
			v = v<<8 | uint64(d.buf[d.pos+i])
		}
		d.pos += 8
		return int64(v), nil
	case wireFixed32:
		if d.pos+4 > len(d.buf) {
			return 0, fmt.Errorf("profile: truncated fixed32 at %d", d.pos)
		}
		var v uint32
		for i := 3; i >= 0; i-- {
			v = v<<8 | uint32(d.buf[d.pos+i])
		}
		d.pos += 4
		return int64(v), nil
	default:
		return 0, fmt.Errorf("profile: want scalar field, got wire type %d", wt)
	}
}

// packedUints reads a repeated integer field in either encoding: one packed
// length-delimited run of varints (what the runtime writes) or a single
// unpacked varint element.
func (d *wireDecoder) packedUints(wt int) ([]uint64, error) {
	switch wt {
	case wireBytes:
		payload, err := d.bytesField(wt)
		if err != nil {
			return nil, err
		}
		inner := wireDecoder{buf: payload}
		var out []uint64
		for !inner.done() {
			v, err := inner.varint()
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		}
		return out, nil
	case wireVarint:
		v, err := d.varint()
		if err != nil {
			return nil, err
		}
		return []uint64{v}, nil
	default:
		return nil, fmt.Errorf("profile: want repeated int field, got wire type %d", wt)
	}
}

// skip discards one field's payload by wire type.
func (d *wireDecoder) skip(wt int) error {
	switch wt {
	case wireVarint:
		_, err := d.varint()
		return err
	case wireFixed64:
		if d.pos+8 > len(d.buf) {
			return fmt.Errorf("profile: truncated fixed64 at %d", d.pos)
		}
		d.pos += 8
		return nil
	case wireBytes:
		_, err := d.bytesField(wt)
		return err
	case wireFixed32:
		if d.pos+4 > len(d.buf) {
			return fmt.Errorf("profile: truncated fixed32 at %d", d.pos)
		}
		d.pos += 4
		return nil
	default:
		return fmt.Errorf("profile: unknown wire type %d", wt)
	}
}

package profile

import (
	"bytes"
	"context"
	"runtime"
	rm "runtime/metrics"
	"strings"
	"sync"
	"testing"
	"time"

	"samzasql/internal/metrics"
)

// protoWriter builds profile.proto bytes by hand for decoder tests.
type protoWriter struct{ buf bytes.Buffer }

func (w *protoWriter) varint(v uint64) {
	for v >= 0x80 {
		w.buf.WriteByte(byte(v) | 0x80)
		v >>= 7
	}
	w.buf.WriteByte(byte(v))
}

func (w *protoWriter) tag(num, wt int) { w.varint(uint64(num)<<3 | uint64(wt)) }

func (w *protoWriter) bytesField(num int, b []byte) {
	w.tag(num, wireBytes)
	w.varint(uint64(len(b)))
	w.buf.Write(b)
}

func (w *protoWriter) intField(num int, v int64) {
	w.tag(num, wireVarint)
	w.varint(uint64(v))
}

func (w *protoWriter) packed(num int, vals ...uint64) {
	var inner protoWriter
	for _, v := range vals {
		inner.varint(v)
	}
	w.bytesField(num, inner.buf.Bytes())
}

// buildTestProfile constructs a two-sample CPU-shaped profile:
//
//	main.leafA -> main.mid -> main.root   (value 100)
//	main.leafB -> main.root               (value 40)
func buildTestProfile() []byte {
	var p protoWriter
	// string_table: index 0 must be "".
	for _, s := range []string{"", "cpu", "nanoseconds", "main.leafA", "main.mid", "main.root", "main.leafB"} {
		p.bytesField(6, []byte(s))
	}
	var vt protoWriter
	vt.intField(1, 1) // type = "cpu"
	vt.intField(2, 2) // unit = "nanoseconds"
	p.bytesField(1, vt.buf.Bytes())
	// functions 1..4 name indices 3..6
	for id, name := range map[int64]int64{1: 3, 2: 4, 3: 5, 4: 6} {
		var f protoWriter
		f.intField(1, id)
		f.intField(2, name)
		p.bytesField(5, f.buf.Bytes())
	}
	// locations: one line each, location id == function id.
	for id := int64(1); id <= 4; id++ {
		var loc protoWriter
		loc.intField(1, id)
		var line protoWriter
		line.intField(1, id)
		loc.bytesField(4, line.buf.Bytes())
		p.bytesField(4, loc.buf.Bytes())
	}
	var s1 protoWriter
	s1.packed(1, 1, 2, 3) // leafA, mid, root (leaf first)
	s1.packed(2, 100)
	p.bytesField(2, s1.buf.Bytes())
	var s2 protoWriter
	s2.packed(1, 4, 3)
	s2.packed(2, 40)
	p.bytesField(2, s2.buf.Bytes())
	p.intField(9, 12345)  // time_nanos
	p.intField(10, 67890) // duration_nanos
	return p.buf.Bytes()
}

func statFor(stats []FuncStat, name string) (FuncStat, bool) {
	for _, s := range stats {
		if s.Name == name {
			return s, true
		}
	}
	return FuncStat{}, false
}

func TestParseAndFoldHandBuilt(t *testing.T) {
	prof, err := Parse(buildTestProfile())
	if err != nil {
		t.Fatal(err)
	}
	if prof.TimeNanos != 12345 || prof.DurationNanos != 67890 {
		t.Fatalf("time/duration = %d/%d", prof.TimeNanos, prof.DurationNanos)
	}
	idx := prof.ValueIndex("cpu")
	if idx != 0 {
		t.Fatalf("ValueIndex(cpu) = %d", idx)
	}
	stats := prof.Fold(idx)
	want := map[string]FuncStat{
		"main.leafA": {Flat: 100, Cum: 100},
		"main.mid":   {Flat: 0, Cum: 100},
		"main.root":  {Flat: 0, Cum: 140},
		"main.leafB": {Flat: 40, Cum: 40},
	}
	if len(stats) != len(want) {
		t.Fatalf("got %d functions, want %d: %+v", len(stats), len(want), stats)
	}
	for name, w := range want {
		got, ok := statFor(stats, name)
		if !ok {
			t.Fatalf("missing %s", name)
		}
		if got.Flat != w.Flat || got.Cum != w.Cum {
			t.Errorf("%s: flat/cum = %d/%d, want %d/%d", name, got.Flat, got.Cum, w.Flat, w.Cum)
		}
	}
	// Sorted by flat descending.
	if stats[0].Name != "main.leafA" || stats[1].Name != "main.leafB" {
		t.Errorf("sort order wrong: %+v", stats)
	}
}

func TestFoldRecursionCountsCumOnce(t *testing.T) {
	var p protoWriter
	for _, s := range []string{"", "cpu", "nanoseconds", "main.rec"} {
		p.bytesField(6, []byte(s))
	}
	var vt protoWriter
	vt.intField(1, 1)
	vt.intField(2, 2)
	p.bytesField(1, vt.buf.Bytes())
	var f protoWriter
	f.intField(1, 1)
	f.intField(2, 3)
	p.bytesField(5, f.buf.Bytes())
	var loc protoWriter
	loc.intField(1, 1)
	var line protoWriter
	line.intField(1, 1)
	loc.bytesField(4, line.buf.Bytes())
	p.bytesField(4, loc.buf.Bytes())
	var s1 protoWriter
	s1.packed(1, 1, 1, 1) // rec -> rec -> rec
	s1.packed(2, 7)
	p.bytesField(2, s1.buf.Bytes())
	prof, err := Parse(p.buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	stats := prof.Fold(0)
	got, ok := statFor(stats, "main.rec")
	if !ok || got.Flat != 7 || got.Cum != 7 {
		t.Fatalf("recursive fold = %+v (ok=%v), want flat=7 cum=7", got, ok)
	}
}

func TestParseTruncatedAndGarbage(t *testing.T) {
	if _, err := Parse([]byte{0x0a}); err == nil {
		t.Error("truncated input parsed without error")
	}
	full := buildTestProfile()
	if _, err := Parse(full[:len(full)-3]); err == nil {
		t.Error("truncated profile parsed without error")
	}
	if _, err := Parse([]byte{0x1f, 0x8b, 0x00}); err == nil {
		t.Error("bad gzip header parsed without error")
	}
}

func TestDeltaAndMerge(t *testing.T) {
	prev := []FuncStat{{Name: "a", Flat: 10, Cum: 20}, {Name: "b", Flat: 5, Cum: 5}}
	cur := []FuncStat{{Name: "a", Flat: 30, Cum: 45}, {Name: "b", Flat: 5, Cum: 5}, {Name: "c", Flat: 2, Cum: 2}}
	d := Delta(cur, prev)
	if got, ok := statFor(d, "a"); !ok || got.Flat != 20 || got.Cum != 25 {
		t.Errorf("delta a = %+v ok=%v", got, ok)
	}
	if _, ok := statFor(d, "b"); ok {
		t.Error("unchanged function b should drop out of the delta")
	}
	if got, ok := statFor(d, "c"); !ok || got.Flat != 2 {
		t.Errorf("delta c = %+v ok=%v", got, ok)
	}
	m := Merge(
		[]FuncStat{{Name: "x", Flat: 1, Cum: 2}},
		[]FuncStat{{Name: "x", Flat: 3, Cum: 4}, {Name: "y", Flat: 9, Cum: 9}},
	)
	if m[0].Name != "y" {
		t.Errorf("merge sort: %+v", m)
	}
	if got, _ := statFor(m, "x"); got.Flat != 4 || got.Cum != 6 {
		t.Errorf("merge x = %+v", got)
	}
}

// burnCPU spins long enough for the CPU sampler (100Hz) to catch it.
//
//go:noinline
func burnCPU(until time.Time) int64 {
	var acc int64
	for time.Now().Before(until) {
		for i := 0; i < 1000; i++ {
			acc += int64(i * i)
		}
	}
	return acc
}

// TestCaptureCPUAgainstRuntime is the decoder's integration check: a real
// runtime/pprof capture over a busy spin loop must decode, fold, and
// attribute samples to this test's functions.
func TestCaptureCPUAgainstRuntime(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping 300ms CPU capture")
	}
	p := New(Config{Window: 300 * time.Millisecond}, true)
	done := make(chan int64, 1)
	go func() { done <- burnCPU(time.Now().Add(400 * time.Millisecond)) }()
	stats, err := p.CaptureCPU(context.Background(), 300*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	<-done
	if len(stats) == 0 {
		t.Fatal("capture over a spin loop folded zero functions")
	}
	found := false
	for _, s := range stats {
		if strings.Contains(s.Name, "burnCPU") {
			found = true
			if s.Flat <= 0 {
				t.Errorf("burnCPU flat = %d, want > 0", s.Flat)
			}
		}
	}
	if !found {
		t.Errorf("burnCPU not attributed; top: %+v", Truncate(stats, 5))
	}
}

// TestConcurrentCapturesSerialize pins the process-global capture mutex:
// two concurrent captures must both succeed (taking turns) instead of the
// second failing on StartCPUProfile.
func TestConcurrentCapturesSerialize(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping CPU captures")
	}
	p := New(Config{}, true)
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = p.CaptureCPU(context.Background(), 50*time.Millisecond)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("capture %d: %v", i, err)
		}
	}
}

func TestCaptureHeapDeltaAndGoroutines(t *testing.T) {
	p := New(Config{TopN: 32}, true)
	if _, err := p.CaptureHeapDelta(); err != nil {
		t.Fatal(err)
	}
	// Allocate attributably between captures.
	sink := make([][]byte, 0, 4096)
	for i := 0; i < 4096; i++ {
		sink = append(sink, make([]byte, 1024))
	}
	runtime.KeepAlive(sink)
	delta, err := p.CaptureHeapDelta()
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, s := range delta {
		total += s.Flat
	}
	if total < 1<<20 {
		t.Errorf("heap delta flat total = %d bytes, want >= 1MiB after 4MiB of allocation", total)
	}
	if len(delta) > 32 {
		t.Errorf("TopN not applied: %d entries", len(delta))
	}

	gor, err := p.CaptureGoroutines()
	if err != nil {
		t.Fatal(err)
	}
	var count int64
	for _, s := range gor {
		count += s.Flat
	}
	if count == 0 {
		t.Error("goroutine profile folded zero goroutines")
	}
}

func TestDisabledProfilerRefusesCapture(t *testing.T) {
	p := New(Config{}, false)
	if p.Enabled() {
		t.Fatal("disabled profiler reports Enabled")
	}
	if _, err := p.Capture(context.Background()); err == nil {
		t.Fatal("disabled profiler captured")
	}
	var nilP *Profiler
	if nilP.Enabled() {
		t.Fatal("nil profiler reports Enabled")
	}
}

func TestConfigNormalize(t *testing.T) {
	c := Config{}.normalize()
	if c.Interval != DefaultInterval || c.Window != DefaultWindow || c.TopN != DefaultTopN {
		t.Fatalf("defaults: %+v", c)
	}
	c = Config{Interval: 100 * time.Millisecond, Window: time.Second}.normalize()
	if c.Window != 100*time.Millisecond {
		t.Fatalf("window not clamped to interval: %+v", c)
	}
}

func TestRuntimeCollector(t *testing.T) {
	reg := metrics.NewRegistry()
	c := NewCollector(reg)
	c.Refresh()
	// Force GC activity and allocations between refreshes so the deltas
	// are non-trivial.
	sink := make([][]byte, 0, 1024)
	for i := 0; i < 1024; i++ {
		sink = append(sink, make([]byte, 4096))
	}
	runtime.KeepAlive(sink)
	runtime.GC()
	runtime.GC()
	c.Refresh()
	snap := reg.Snapshot()
	if snap.Gauges[RuntimeGoroutines] <= 0 {
		t.Errorf("%s = %d", RuntimeGoroutines, snap.Gauges[RuntimeGoroutines])
	}
	if snap.Gauges[RuntimeHeapLive] <= 0 {
		t.Errorf("%s = %d", RuntimeHeapLive, snap.Gauges[RuntimeHeapLive])
	}
	if snap.Counters[RuntimeGCCycles] <= 0 {
		t.Errorf("%s = %d after two forced GCs", RuntimeGCCycles, snap.Counters[RuntimeGCCycles])
	}
	if h, ok := snap.Histograms[RuntimeGCPause]; !ok || h.Count == 0 {
		t.Errorf("%s histogram empty after forced GCs", RuntimeGCPause)
	}
	if snap.Gauges[RuntimeGCLastPause] <= 0 {
		t.Errorf("%s = %d", RuntimeGCLastPause, snap.Gauges[RuntimeGCLastPause])
	}
}

// TestRuntimeCollectorReplayCap pins the scaling: a huge synthetic count
// delta must not replay more than histReplayCap observations.
func TestRuntimeCollectorReplayCap(t *testing.T) {
	reg := metrics.NewRegistry()
	c := NewCollector(reg)
	h := reg.Histogram("replay-test")
	src := &rm.Float64Histogram{
		Counts:  []uint64{1 << 20, 1 << 20},
		Buckets: []float64{0, 1e-6, 1e-3},
	}
	var prev []uint64
	c.replayHist(src, &prev, h)
	if got := h.Count(); got > histReplayCap+2 {
		t.Fatalf("replayed %d observations, cap is %d", got, histReplayCap)
	}
	if h.Count() == 0 {
		t.Fatal("replay produced no observations")
	}
}

package registry

import (
	"errors"
	"testing"

	"samzasql/internal/avro"
)

func baseSchema() *avro.Schema {
	return avro.Record("Orders",
		avro.F("rowtime", avro.Long()),
		avro.F("productId", avro.Long()),
	)
}

func TestRegisterAndResolve(t *testing.T) {
	r := New()
	reg, err := r.Register("Orders", baseSchema())
	if err != nil {
		t.Fatal(err)
	}
	if reg.ID != 1 || reg.Version != 1 || reg.Subject != "Orders" {
		t.Fatalf("registration %+v", reg)
	}
	byID, err := r.ByID(reg.ID)
	if err != nil || byID.Schema.Name != "Orders" {
		t.Fatalf("ByID: %+v %v", byID, err)
	}
	latest, err := r.Latest("Orders")
	if err != nil || latest.ID != reg.ID {
		t.Fatalf("Latest: %+v %v", latest, err)
	}
	if _, err := r.Latest("Nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Latest(unknown): %v", err)
	}
	if _, err := r.ByID(99); !errors.Is(err, ErrNotFound) {
		t.Fatalf("ByID(unknown): %v", err)
	}
}

func TestRegisterIdempotentOnIdenticalSchema(t *testing.T) {
	r := New()
	a, err := r.Register("Orders", baseSchema())
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Register("Orders", baseSchema())
	if err != nil {
		t.Fatal(err)
	}
	if a.ID != b.ID || b.Version != 1 {
		t.Fatalf("re-registration created new version: %+v vs %+v", a, b)
	}
}

func TestCompatibleEvolution(t *testing.T) {
	r := New()
	if _, err := r.Register("Orders", baseSchema()); err != nil {
		t.Fatal(err)
	}
	v2 := avro.Record("Orders",
		avro.F("rowtime", avro.Long()),
		avro.F("productId", avro.Long()),
		avro.F("note", avro.String().AsNullable()),
	)
	reg, err := r.Register("Orders", v2)
	if err != nil {
		t.Fatal(err)
	}
	if reg.Version != 2 {
		t.Fatalf("version %d, want 2", reg.Version)
	}
	got, err := r.Version("Orders", 1)
	if err != nil || len(got.Schema.Fields) != 2 {
		t.Fatalf("Version(1): %+v %v", got, err)
	}
}

func TestIncompatibleEvolutionRejected(t *testing.T) {
	r := New()
	if _, err := r.Register("Orders", baseSchema()); err != nil {
		t.Fatal(err)
	}
	cases := []*avro.Schema{
		// field removed
		avro.Record("Orders", avro.F("rowtime", avro.Long())),
		// field type changed
		avro.Record("Orders", avro.F("rowtime", avro.String()), avro.F("productId", avro.Long())),
		// non-nullable field added
		avro.Record("Orders", avro.F("rowtime", avro.Long()), avro.F("productId", avro.Long()), avro.F("x", avro.Long())),
	}
	for i, s := range cases {
		if _, err := r.Register("Orders", s); !errors.Is(err, ErrIncompatible) {
			t.Errorf("case %d: %v", i, err)
		}
	}
}

func TestSubjects(t *testing.T) {
	r := New()
	if _, err := r.Register("b", baseSchema()); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Register("a", baseSchema()); err != nil {
		t.Fatal(err)
	}
	subs := r.Subjects()
	if len(subs) != 2 || subs[0] != "a" || subs[1] != "b" {
		t.Fatalf("Subjects() = %v", subs)
	}
}

func TestVersionOutOfRange(t *testing.T) {
	r := New()
	if _, err := r.Register("s", baseSchema()); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Version("s", 0); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Version(0): %v", err)
	}
	if _, err := r.Version("s", 2); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Version(2): %v", err)
	}
}

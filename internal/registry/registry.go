// Package registry implements a schema registry in the style of the
// Confluent registry the paper relies on (§3.2, §4.1): schemas are
// registered under subjects (one per topic), receive globally unique IDs and
// per-subject versions, and new versions are checked for backward
// compatibility so running queries do not break on producer upgrades.
package registry

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"samzasql/internal/avro"
)

// Errors returned by registry operations.
var (
	ErrNotFound     = errors.New("registry: not found")
	ErrIncompatible = errors.New("registry: incompatible schema")
)

// Registered describes one registered schema version.
type Registered struct {
	ID      int32
	Subject string
	Version int32
	Schema  *avro.Schema
}

// Registry is an in-process schema registry. Safe for concurrent use.
type Registry struct {
	mu       sync.RWMutex
	nextID   int32
	byID     map[int32]*Registered
	versions map[string][]*Registered
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		byID:     map[int32]*Registered{},
		versions: map[string][]*Registered{},
	}
}

// Register adds a schema under subject, returning the assigned registration.
// Re-registering a schema identical to the subject's latest returns the
// existing registration. A new version must be backward compatible with the
// latest: every existing field must keep its name, kind and nullability;
// added fields must be nullable.
func (r *Registry) Register(subject string, s *avro.Schema) (*Registered, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	vs := r.versions[subject]
	if len(vs) > 0 {
		latest := vs[len(vs)-1]
		if schemasEqual(latest.Schema, s) {
			return latest, nil
		}
		if err := checkBackwardCompatible(latest.Schema, s); err != nil {
			return nil, fmt.Errorf("%w: subject %q: %v", ErrIncompatible, subject, err)
		}
	}
	r.nextID++
	reg := &Registered{
		ID:      r.nextID,
		Subject: subject,
		Version: int32(len(vs) + 1),
		Schema:  s,
	}
	r.byID[reg.ID] = reg
	r.versions[subject] = append(vs, reg)
	return reg, nil
}

// ByID resolves a schema by its global ID.
func (r *Registry) ByID(id int32) (*Registered, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	reg, ok := r.byID[id]
	if !ok {
		return nil, fmt.Errorf("%w: schema id %d", ErrNotFound, id)
	}
	return reg, nil
}

// Latest returns the newest version under subject.
func (r *Registry) Latest(subject string) (*Registered, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	vs := r.versions[subject]
	if len(vs) == 0 {
		return nil, fmt.Errorf("%w: subject %q", ErrNotFound, subject)
	}
	return vs[len(vs)-1], nil
}

// Version returns a specific version under subject (1-based).
func (r *Registry) Version(subject string, version int32) (*Registered, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	vs := r.versions[subject]
	if version < 1 || int(version) > len(vs) {
		return nil, fmt.Errorf("%w: subject %q version %d", ErrNotFound, subject, version)
	}
	return vs[version-1], nil
}

// Subjects lists all subjects in sorted order.
func (r *Registry) Subjects() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.versions))
	for s := range r.versions {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

func schemasEqual(a, b *avro.Schema) bool {
	aj, err1 := a.MarshalJSON()
	bj, err2 := b.MarshalJSON()
	return err1 == nil && err2 == nil && string(aj) == string(bj)
}

func checkBackwardCompatible(old, new *avro.Schema) error {
	if old.Kind != avro.KindRecord || new.Kind != avro.KindRecord {
		if old.Kind != new.Kind || old.Nullable != new.Nullable {
			return fmt.Errorf("type changed from %s to %s", old.Kind, new.Kind)
		}
		return nil
	}
	newFields := map[string]*avro.Schema{}
	for _, f := range new.Fields {
		newFields[f.Name] = f.Schema
	}
	for _, f := range old.Fields {
		nf, ok := newFields[f.Name]
		if !ok {
			return fmt.Errorf("field %q removed", f.Name)
		}
		if nf.Kind != f.Schema.Kind || nf.Nullable != f.Schema.Nullable {
			return fmt.Errorf("field %q changed from %s (nullable=%v) to %s (nullable=%v)",
				f.Name, f.Schema.Kind, f.Schema.Nullable, nf.Kind, nf.Nullable)
		}
		delete(newFields, f.Name)
	}
	for name, s := range newFields {
		if !s.Nullable {
			return fmt.Errorf("added field %q must be nullable", name)
		}
	}
	return nil
}

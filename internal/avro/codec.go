package avro

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Codec encodes and decodes values of one record schema. It is stateless
// (beyond the schema) and safe for concurrent use.
type Codec struct {
	schema *Schema
}

// NewCodec returns a codec for a record schema.
func NewCodec(s *Schema) (*Codec, error) {
	if s == nil || s.Kind != KindRecord {
		return nil, errors.New("avro: codec requires a record schema")
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &Codec{schema: s}, nil
}

// MustCodec is NewCodec that panics on error, for statically known schemas.
func MustCodec(s *Schema) *Codec {
	c, err := NewCodec(s)
	if err != nil {
		panic(err)
	}
	return c
}

// Schema returns the codec's record schema.
func (c *Codec) Schema() *Schema { return c.schema }

// ErrTruncated reports a payload shorter than its schema demands.
var ErrTruncated = errors.New("avro: truncated payload")

// --- zigzag varint primitives ---

func appendVarint(dst []byte, v int64) []byte {
	return binary.AppendUvarint(dst, zigzag(v))
}

func zigzag(v int64) uint64 { return uint64((v << 1) ^ (v >> 63)) }

func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

func readVarint(data []byte) (int64, int, error) {
	u, n := binary.Uvarint(data)
	if n <= 0 {
		return 0, 0, ErrTruncated
	}
	return unzigzag(u), n, nil
}

// --- encoding ---

// Encode serializes a record given as map[string]any. Missing nullable
// fields encode as null; missing non-nullable fields are an error.
func (c *Codec) Encode(rec map[string]any) ([]byte, error) {
	return c.AppendEncode(nil, rec)
}

// AppendEncode appends the encoded record to dst.
func (c *Codec) AppendEncode(dst []byte, rec map[string]any) ([]byte, error) {
	var err error
	for _, f := range c.schema.Fields {
		v, ok := rec[f.Name]
		if !ok {
			v = nil
		}
		dst, err = encodeValue(dst, f.Schema, v)
		if err != nil {
			return nil, fmt.Errorf("avro: field %q: %w", f.Name, err)
		}
	}
	return dst, nil
}

// EncodeRow serializes a positional row ordered as the schema's fields —
// the ArrayToAvro step of Figure 4.
func (c *Codec) EncodeRow(row []any) ([]byte, error) {
	return c.AppendEncodeRow(nil, row)
}

// AppendEncodeRow appends the encoded row to dst.
func (c *Codec) AppendEncodeRow(dst []byte, row []any) ([]byte, error) {
	if len(row) != len(c.schema.Fields) {
		return nil, fmt.Errorf("avro: row has %d values, schema %q has %d fields",
			len(row), c.schema.Name, len(c.schema.Fields))
	}
	var err error
	for i, f := range c.schema.Fields {
		dst, err = encodeValue(dst, f.Schema, row[i])
		if err != nil {
			return nil, fmt.Errorf("avro: field %q: %w", f.Name, err)
		}
	}
	return dst, nil
}

func encodeValue(dst []byte, s *Schema, v any) ([]byte, error) {
	if s.Nullable {
		if v == nil {
			return append(dst, 0), nil // union branch 0 = null
		}
		dst = append(dst, 2) // zigzag(1): branch 1 = value
	} else if v == nil && s.Kind != KindNull {
		return nil, fmt.Errorf("nil value for non-nullable %s", s.Kind)
	}
	switch s.Kind {
	case KindNull:
		return dst, nil
	case KindBoolean:
		b, ok := v.(bool)
		if !ok {
			return nil, typeErr("bool", v)
		}
		if b {
			return append(dst, 1), nil
		}
		return append(dst, 0), nil
	case KindInt:
		n, ok := asInt64(v)
		if !ok || n > math.MaxInt32 || n < math.MinInt32 {
			return nil, typeErr("int32", v)
		}
		return appendVarint(dst, n), nil
	case KindLong:
		n, ok := asInt64(v)
		if !ok {
			return nil, typeErr("int64", v)
		}
		return appendVarint(dst, n), nil
	case KindFloat:
		f, ok := asFloat64(v)
		if !ok {
			return nil, typeErr("float32", v)
		}
		return binary.LittleEndian.AppendUint32(dst, math.Float32bits(float32(f))), nil
	case KindDouble:
		f, ok := asFloat64(v)
		if !ok {
			return nil, typeErr("float64", v)
		}
		return binary.LittleEndian.AppendUint64(dst, math.Float64bits(f)), nil
	case KindString:
		str, ok := v.(string)
		if !ok {
			return nil, typeErr("string", v)
		}
		dst = appendVarint(dst, int64(len(str)))
		return append(dst, str...), nil
	case KindBytes:
		b, ok := v.([]byte)
		if !ok {
			return nil, typeErr("[]byte", v)
		}
		dst = appendVarint(dst, int64(len(b)))
		return append(dst, b...), nil
	case KindArray:
		items, ok := v.([]any)
		if !ok {
			return nil, typeErr("[]any", v)
		}
		if len(items) > 0 {
			dst = appendVarint(dst, int64(len(items)))
			var err error
			for _, it := range items {
				dst, err = encodeValue(dst, s.Items, it)
				if err != nil {
					return nil, err
				}
			}
		}
		return appendVarint(dst, 0), nil
	case KindMap:
		m, ok := v.(map[string]any)
		if !ok {
			return nil, typeErr("map[string]any", v)
		}
		if len(m) > 0 {
			dst = appendVarint(dst, int64(len(m)))
			var err error
			for k, val := range m {
				dst = appendVarint(dst, int64(len(k)))
				dst = append(dst, k...)
				dst, err = encodeValue(dst, s.Items, val)
				if err != nil {
					return nil, err
				}
			}
		}
		return appendVarint(dst, 0), nil
	case KindRecord:
		switch rec := v.(type) {
		case map[string]any:
			var err error
			for _, f := range s.Fields {
				dst, err = encodeValue(dst, f.Schema, rec[f.Name])
				if err != nil {
					return nil, fmt.Errorf("field %q: %w", f.Name, err)
				}
			}
			return dst, nil
		case []any:
			if len(rec) != len(s.Fields) {
				return nil, fmt.Errorf("nested row has %d values, record %q has %d fields",
					len(rec), s.Name, len(s.Fields))
			}
			var err error
			for i, f := range s.Fields {
				dst, err = encodeValue(dst, f.Schema, rec[i])
				if err != nil {
					return nil, fmt.Errorf("field %q: %w", f.Name, err)
				}
			}
			return dst, nil
		default:
			return nil, typeErr("record", v)
		}
	default:
		return nil, fmt.Errorf("avro: unsupported kind %s", s.Kind)
	}
}

func typeErr(want string, got any) error {
	return fmt.Errorf("want %s, got %T", want, got)
}

func asInt64(v any) (int64, bool) {
	switch n := v.(type) {
	case int64:
		return n, true
	case int:
		return int64(n), true
	case int32:
		return int64(n), true
	default:
		return 0, false
	}
}

func asFloat64(v any) (float64, bool) {
	switch f := v.(type) {
	case float64:
		return f, true
	case float32:
		return float64(f), true
	case int64:
		return float64(f), true
	case int:
		return float64(f), true
	default:
		return 0, false
	}
}

// --- decoding ---

// Decode deserializes a record into a fresh map[string]any.
func (c *Codec) Decode(data []byte) (map[string]any, error) {
	rec := make(map[string]any, len(c.schema.Fields))
	pos := 0
	for _, f := range c.schema.Fields {
		v, n, err := decodeValue(data[pos:], f.Schema)
		if err != nil {
			return nil, fmt.Errorf("avro: field %q: %w", f.Name, err)
		}
		rec[f.Name] = v
		pos += n
	}
	return rec, nil
}

// DecodeRow deserializes a record into a positional []any row — the
// AvroToArray step of Figure 4. If row has the right length it is reused.
func (c *Codec) DecodeRow(data []byte, row []any) ([]any, error) {
	if len(row) != len(c.schema.Fields) {
		row = make([]any, len(c.schema.Fields))
	}
	pos := 0
	for i, f := range c.schema.Fields {
		v, n, err := decodeValue(data[pos:], f.Schema)
		if err != nil {
			return nil, fmt.Errorf("avro: field %q: %w", f.Name, err)
		}
		row[i] = v
		pos += n
	}
	return row, nil
}

func decodeValue(data []byte, s *Schema) (any, int, error) {
	pos := 0
	if s.Nullable {
		branch, n, err := readVarint(data)
		if err != nil {
			return nil, 0, err
		}
		pos += n
		if branch == 0 {
			return nil, pos, nil
		}
	}
	switch s.Kind {
	case KindNull:
		return nil, pos, nil
	case KindBoolean:
		if pos >= len(data) {
			return nil, 0, ErrTruncated
		}
		return data[pos] != 0, pos + 1, nil
	case KindInt, KindLong:
		v, n, err := readVarint(data[pos:])
		if err != nil {
			return nil, 0, err
		}
		return v, pos + n, nil
	case KindFloat:
		if pos+4 > len(data) {
			return nil, 0, ErrTruncated
		}
		bits := binary.LittleEndian.Uint32(data[pos:])
		return float64(math.Float32frombits(bits)), pos + 4, nil
	case KindDouble:
		if pos+8 > len(data) {
			return nil, 0, ErrTruncated
		}
		bits := binary.LittleEndian.Uint64(data[pos:])
		return math.Float64frombits(bits), pos + 8, nil
	case KindString:
		ln, n, err := readVarint(data[pos:])
		if err != nil {
			return nil, 0, err
		}
		pos += n
		if ln < 0 || pos+int(ln) > len(data) {
			return nil, 0, ErrTruncated
		}
		return string(data[pos : pos+int(ln)]), pos + int(ln), nil
	case KindBytes:
		ln, n, err := readVarint(data[pos:])
		if err != nil {
			return nil, 0, err
		}
		pos += n
		if ln < 0 || pos+int(ln) > len(data) {
			return nil, 0, ErrTruncated
		}
		out := make([]byte, ln)
		copy(out, data[pos:pos+int(ln)])
		return out, pos + int(ln), nil
	case KindArray:
		var items []any
		for {
			count, n, err := readVarint(data[pos:])
			if err != nil {
				return nil, 0, err
			}
			pos += n
			if count == 0 {
				break
			}
			if count < 0 {
				count = -count // block-size form; size value follows
				_, n, err := readVarint(data[pos:])
				if err != nil {
					return nil, 0, err
				}
				pos += n
			}
			for i := int64(0); i < count; i++ {
				v, n, err := decodeValue(data[pos:], s.Items)
				if err != nil {
					return nil, 0, err
				}
				items = append(items, v)
				pos += n
			}
		}
		if items == nil {
			items = []any{}
		}
		return items, pos, nil
	case KindMap:
		m := map[string]any{}
		for {
			count, n, err := readVarint(data[pos:])
			if err != nil {
				return nil, 0, err
			}
			pos += n
			if count == 0 {
				break
			}
			if count < 0 {
				count = -count
				_, n, err := readVarint(data[pos:])
				if err != nil {
					return nil, 0, err
				}
				pos += n
			}
			for i := int64(0); i < count; i++ {
				kl, n, err := readVarint(data[pos:])
				if err != nil {
					return nil, 0, err
				}
				pos += n
				if kl < 0 || pos+int(kl) > len(data) {
					return nil, 0, ErrTruncated
				}
				key := string(data[pos : pos+int(kl)])
				pos += int(kl)
				v, n, err := decodeValue(data[pos:], s.Items)
				if err != nil {
					return nil, 0, err
				}
				m[key] = v
				pos += n
			}
		}
		return m, pos, nil
	case KindRecord:
		rec := make(map[string]any, len(s.Fields))
		for _, f := range s.Fields {
			v, n, err := decodeValue(data[pos:], f.Schema)
			if err != nil {
				return nil, 0, fmt.Errorf("field %q: %w", f.Name, err)
			}
			rec[f.Name] = v
			pos += n
		}
		return rec, pos, nil
	default:
		return nil, 0, fmt.Errorf("avro: unsupported kind %s", s.Kind)
	}
}

// skipValue advances past one value without materializing it.
func skipValue(data []byte, s *Schema) (int, error) {
	pos := 0
	if s.Nullable {
		branch, n, err := readVarint(data)
		if err != nil {
			return 0, err
		}
		pos += n
		if branch == 0 {
			return pos, nil
		}
	}
	switch s.Kind {
	case KindNull:
		return pos, nil
	case KindBoolean:
		if pos >= len(data) {
			return 0, ErrTruncated
		}
		return pos + 1, nil
	case KindInt, KindLong:
		_, n, err := readVarint(data[pos:])
		if err != nil {
			return 0, err
		}
		return pos + n, nil
	case KindFloat:
		if pos+4 > len(data) {
			return 0, ErrTruncated
		}
		return pos + 4, nil
	case KindDouble:
		if pos+8 > len(data) {
			return 0, ErrTruncated
		}
		return pos + 8, nil
	case KindString, KindBytes:
		ln, n, err := readVarint(data[pos:])
		if err != nil {
			return 0, err
		}
		pos += n
		if ln < 0 || pos+int(ln) > len(data) {
			return 0, ErrTruncated
		}
		return pos + int(ln), nil
	default:
		// Composite kinds fall back to a full decode for skipping.
		_, n, err := decodeValue(data, s)
		return n, err
	}
}

// ReadField extracts a single top-level field from wire bytes without
// decoding the rest of the record. This is the access pattern a native
// Samza job uses for filters, giving it the throughput edge the paper
// measures over SamzaSQL's full decode-to-array pipeline.
func (c *Codec) ReadField(data []byte, name string) (any, error) {
	idx := c.schema.FieldIndex(name)
	if idx < 0 {
		return nil, fmt.Errorf("avro: record %q has no field %q", c.schema.Name, name)
	}
	pos := 0
	for i := 0; i < idx; i++ {
		n, err := skipValue(data[pos:], c.schema.Fields[i].Schema)
		if err != nil {
			return nil, fmt.Errorf("avro: skipping field %q: %w", c.schema.Fields[i].Name, err)
		}
		pos += n
	}
	v, _, err := decodeValue(data[pos:], c.schema.Fields[idx].Schema)
	if err != nil {
		return nil, fmt.Errorf("avro: field %q: %w", name, err)
	}
	return v, nil
}

// ReadFields decodes only the top-level fields whose indexes are marked in
// wanted (index-aligned with the schema), skipping everything else in one
// pass over the wire bytes. The result is a sparse row: unwanted slots are
// nil. This powers the fast-path execution mode (the paper's §7 proposal to
// avoid materializing full tuples for filter queries).
func (c *Codec) ReadFields(data []byte, wanted []bool, row []any) ([]any, error) {
	if len(row) != len(c.schema.Fields) {
		row = make([]any, len(c.schema.Fields))
	}
	maxIdx := -1
	for i, w := range wanted {
		if w {
			maxIdx = i
		}
	}
	pos := 0
	for i := 0; i <= maxIdx && i < len(c.schema.Fields); i++ {
		f := c.schema.Fields[i]
		if wanted[i] {
			v, n, err := decodeValue(data[pos:], f.Schema)
			if err != nil {
				return nil, fmt.Errorf("avro: field %q: %w", f.Name, err)
			}
			row[i] = v
			pos += n
			continue
		}
		n, err := skipValue(data[pos:], f.Schema)
		if err != nil {
			return nil, fmt.Errorf("avro: skipping field %q: %w", f.Name, err)
		}
		row[i] = nil
		pos += n
	}
	return row, nil
}

// ProjectFields re-encodes a subset of the record's top-level fields,
// reading each from the wire bytes and appending it to a new payload in the
// order given. A native Samza project task uses this Avro-to-Avro copy,
// skipping the array materialization SamzaSQL performs.
func (c *Codec) ProjectFields(data []byte, names []string, out *Codec) ([]byte, error) {
	// Locate the byte extent of each top-level field once.
	type extent struct{ start, end int }
	extents := make([]extent, len(c.schema.Fields))
	pos := 0
	for i, f := range c.schema.Fields {
		n, err := skipValue(data[pos:], f.Schema)
		if err != nil {
			return nil, fmt.Errorf("avro: sizing field %q: %w", f.Name, err)
		}
		extents[i] = extent{pos, pos + n}
		pos += n
	}
	var dst []byte
	for _, name := range names {
		idx := c.schema.FieldIndex(name)
		if idx < 0 {
			return nil, fmt.Errorf("avro: record %q has no field %q", c.schema.Name, name)
		}
		dst = append(dst, data[extents[idx].start:extents[idx].end]...)
	}
	return dst, nil
}

// FieldExtents locates the byte extent of every top-level field in one pass
// over the wire bytes, appending (start, end) pairs to ext (reused across
// calls by the vectorized kernel, so extent location costs no allocation
// per row). The returned slice holds 2*arity ints: field i spans
// data[ext[2i]:ext[2i+1]].
func (c *Codec) FieldExtents(data []byte, ext []int) ([]int, error) {
	ext = ext[:0]
	pos := 0
	for _, f := range c.schema.Fields {
		n, err := skipValue(data[pos:], f.Schema)
		if err != nil {
			return nil, fmt.Errorf("avro: sizing field %q: %w", f.Name, err)
		}
		ext = append(ext, pos, pos+n)
		pos += n
	}
	return ext, nil
}

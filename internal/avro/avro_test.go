package avro

import (
	"errors"
	"math"
	"reflect"
	"strings"
	"testing"
)

func ordersSchema() *Schema {
	return Record("Orders",
		F("rowtime", Long()),
		F("productId", Long()),
		F("orderId", Long()),
		F("units", Long()),
		F("pad", String()),
	)
}

func TestEncodeDecodeRoundTripMap(t *testing.T) {
	c := MustCodec(ordersSchema())
	in := map[string]any{
		"rowtime":   int64(1700000000000),
		"productId": int64(42),
		"orderId":   int64(7),
		"units":     int64(100),
		"pad":       "xxxx",
	}
	b, err := c.Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\n in: %v\nout: %v", in, out)
	}
}

func TestEncodeDecodeRowRoundTrip(t *testing.T) {
	c := MustCodec(ordersSchema())
	row := []any{int64(1), int64(2), int64(3), int64(4), "p"}
	b, err := c.EncodeRow(row)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.DecodeRow(b, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(row, got) {
		t.Fatalf("row round trip mismatch: %v vs %v", row, got)
	}
	// Reuse path.
	reuse := make([]any, 5)
	got2, err := c.DecodeRow(b, reuse)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(row, got2) {
		t.Fatalf("reused row mismatch: %v", got2)
	}
}

func TestAllPrimitiveKinds(t *testing.T) {
	s := Record("All",
		F("b", Boolean()),
		F("i", Int()),
		F("l", Long()),
		F("f", Float()),
		F("d", Double()),
		F("s", String()),
		F("y", Bytes()),
		F("n", Null()),
	)
	c := MustCodec(s)
	in := map[string]any{
		"b": true,
		"i": int64(-5),
		"l": int64(math.MaxInt64),
		"f": 1.5,
		"d": -2.25,
		"s": "héllo",
		"y": []byte{0, 1, 2},
		"n": nil,
	}
	b, err := c.Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if out["b"] != true || out["i"].(int64) != -5 || out["l"].(int64) != math.MaxInt64 {
		t.Fatalf("bad ints: %v", out)
	}
	if out["f"].(float64) != 1.5 || out["d"].(float64) != -2.25 {
		t.Fatalf("bad floats: %v", out)
	}
	if out["s"].(string) != "héllo" || !reflect.DeepEqual(out["y"], []byte{0, 1, 2}) || out["n"] != nil {
		t.Fatalf("bad string/bytes/null: %v", out)
	}
}

func TestNullableFields(t *testing.T) {
	s := Record("N", F("a", Long().AsNullable()), F("b", String().AsNullable()))
	c := MustCodec(s)
	for _, in := range []map[string]any{
		{"a": int64(5), "b": "x"},
		{"a": nil, "b": "x"},
		{"a": int64(5), "b": nil},
		{"a": nil, "b": nil},
	} {
		b, err := c.Encode(in)
		if err != nil {
			t.Fatal(err)
		}
		out, err := c.Decode(b)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(in, out) {
			t.Fatalf("nullable mismatch: %v vs %v", in, out)
		}
	}
	// Missing nullable field encodes as null.
	b, err := c.Encode(map[string]any{})
	if err != nil {
		t.Fatal(err)
	}
	out, _ := c.Decode(b)
	if out["a"] != nil || out["b"] != nil {
		t.Fatalf("missing nullable fields: %v", out)
	}
}

func TestNonNullableRejectsNil(t *testing.T) {
	c := MustCodec(Record("R", F("a", Long())))
	if _, err := c.Encode(map[string]any{"a": nil}); err == nil {
		t.Fatal("nil accepted for non-nullable long")
	}
	if _, err := c.Encode(map[string]any{}); err == nil {
		t.Fatal("missing non-nullable field accepted")
	}
}

func TestCollections(t *testing.T) {
	s := Record("C",
		F("tags", Array(String())),
		F("attrs", Map(Long())),
		F("inner", Record("Inner", F("x", Long()))),
	)
	c := MustCodec(s)
	in := map[string]any{
		"tags":  []any{"a", "b", "c"},
		"attrs": map[string]any{"k1": int64(1), "k2": int64(2)},
		"inner": map[string]any{"x": int64(9)},
	}
	b, err := c.Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("collections mismatch:\n in: %v\nout: %v", in, out)
	}
	// Empty collections.
	in2 := map[string]any{"tags": []any{}, "attrs": map[string]any{}, "inner": map[string]any{"x": int64(0)}}
	b2, err := c.Encode(in2)
	if err != nil {
		t.Fatal(err)
	}
	out2, err := c.Decode(b2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in2, out2) {
		t.Fatalf("empty collections mismatch: %v vs %v", in2, out2)
	}
}

func TestReadFieldWithoutFullDecode(t *testing.T) {
	c := MustCodec(ordersSchema())
	b, err := c.EncodeRow([]any{int64(111), int64(222), int64(333), int64(444), "padpad"})
	if err != nil {
		t.Fatal(err)
	}
	for name, want := range map[string]int64{
		"rowtime": 111, "productId": 222, "orderId": 333, "units": 444,
	} {
		v, err := c.ReadField(b, name)
		if err != nil {
			t.Fatalf("ReadField(%s): %v", name, err)
		}
		if v.(int64) != want {
			t.Fatalf("ReadField(%s) = %v, want %d", name, v, want)
		}
	}
	if s, err := c.ReadField(b, "pad"); err != nil || s.(string) != "padpad" {
		t.Fatalf("ReadField(pad) = %v, %v", s, err)
	}
	if _, err := c.ReadField(b, "missing"); err == nil {
		t.Fatal("ReadField on unknown field succeeded")
	}
}

func TestProjectFields(t *testing.T) {
	in := MustCodec(ordersSchema())
	outSchema := Record("Projected",
		F("rowtime", Long()),
		F("productId", Long()),
		F("units", Long()),
	)
	out := MustCodec(outSchema)
	b, err := in.EncodeRow([]any{int64(1), int64(2), int64(3), int64(4), "x"})
	if err != nil {
		t.Fatal(err)
	}
	pb, err := in.ProjectFields(b, []string{"rowtime", "productId", "units"}, out)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := out.Decode(pb)
	if err != nil {
		t.Fatal(err)
	}
	if rec["rowtime"].(int64) != 1 || rec["productId"].(int64) != 2 || rec["units"].(int64) != 4 {
		t.Fatalf("projected record %v", rec)
	}
}

func TestTruncatedPayload(t *testing.T) {
	c := MustCodec(ordersSchema())
	b, _ := c.EncodeRow([]any{int64(1), int64(2), int64(3), int64(4), "hello world"})
	for cut := 0; cut < len(b); cut++ {
		if _, err := c.Decode(b[:cut]); err == nil {
			t.Fatalf("truncated payload at %d decoded cleanly", cut)
		}
	}
	_ = errors.Is // keep errors imported for future checks
}

func TestParseSchemaJSON(t *testing.T) {
	doc := `{
	  "type": "record", "name": "Orders",
	  "fields": [
	    {"name": "rowtime", "type": "long"},
	    {"name": "productId", "type": "long"},
	    {"name": "note", "type": ["null", "string"]},
	    {"name": "tags", "type": {"type": "array", "items": "string"}},
	    {"name": "attrs", "type": {"type": "map", "values": "long"}},
	    {"name": "inner", "type": {"type": "record", "name": "Inner",
	        "fields": [{"name": "x", "type": "double"}]}}
	  ]
	}`
	s, err := ParseSchema([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if s.Kind != KindRecord || s.Name != "Orders" || len(s.Fields) != 6 {
		t.Fatalf("parsed %+v", s)
	}
	if !s.Fields[2].Schema.Nullable || s.Fields[2].Schema.Kind != KindString {
		t.Fatalf("nullable union field parsed as %+v", s.Fields[2].Schema)
	}
	if s.Fields[3].Schema.Kind != KindArray || s.Fields[3].Schema.Items.Kind != KindString {
		t.Fatalf("array field parsed as %+v", s.Fields[3].Schema)
	}
	if s.Fields[5].Schema.Kind != KindRecord || s.Fields[5].Schema.Fields[0].Schema.Kind != KindDouble {
		t.Fatalf("nested record parsed as %+v", s.Fields[5].Schema)
	}
}

func TestSchemaJSONRoundTrip(t *testing.T) {
	s := Record("R",
		F("a", Long()),
		F("b", String().AsNullable()),
		F("c", Array(Double())),
	)
	doc, err := s.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseSchema(doc)
	if err != nil {
		t.Fatalf("reparse %s: %v", doc, err)
	}
	if back.Name != "R" || len(back.Fields) != 3 || !back.Fields[1].Schema.Nullable {
		t.Fatalf("round-tripped schema %+v", back)
	}
}

func TestParseSchemaErrors(t *testing.T) {
	for _, doc := range []string{
		`"frob"`,
		`{"type":"record","fields":[]}`, // no name
		`["string","null"]`,             // union not null-first
		`["null","string","long"]`,      // 3-branch union
		`{"type":"record","name":"R","fields":[{"name":"a","type":"frob"}]}`,
	} {
		if _, err := ParseSchema([]byte(doc)); err == nil {
			t.Errorf("ParseSchema(%s) succeeded", doc)
		}
	}
}

func TestValidateRejectsDuplicateFields(t *testing.T) {
	s := Record("R", F("a", Long()), F("a", String()))
	err := s.Validate()
	if err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicate fields: %v", err)
	}
	if _, err := NewCodec(Long()); err == nil {
		t.Fatal("codec accepted non-record schema")
	}
}

func TestZigzag(t *testing.T) {
	for _, v := range []int64{0, -1, 1, -2, 2, math.MaxInt64, math.MinInt64} {
		if got := unzigzag(zigzag(v)); got != v {
			t.Fatalf("zigzag(%d) round-tripped to %d", v, got)
		}
	}
	// Avro convention: small magnitudes use few bytes.
	if got := zigzag(-1); got != 1 {
		t.Fatalf("zigzag(-1) = %d, want 1", got)
	}
	if got := zigzag(1); got != 2 {
		t.Fatalf("zigzag(1) = %d, want 2", got)
	}
}

package avro

import (
	"reflect"
	"testing"
	"testing/quick"
)

// Property: arbitrary rows of (long, long, string, bool, double) round-trip
// exactly through EncodeRow/DecodeRow.
func TestPropertyRowRoundTrip(t *testing.T) {
	c := MustCodec(Record("P",
		F("a", Long()),
		F("b", Long()),
		F("c", String()),
		F("d", Boolean()),
		F("e", Double()),
	))
	f := func(a, b int64, s string, d bool, e float64) bool {
		row := []any{a, b, s, d, e}
		enc, err := c.EncodeRow(row)
		if err != nil {
			return false
		}
		dec, err := c.DecodeRow(enc, nil)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(row, dec)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: ReadField always agrees with a full decode, for every field.
func TestPropertyReadFieldMatchesDecode(t *testing.T) {
	c := MustCodec(Record("P",
		F("x", Long()),
		F("y", String()),
		F("z", Long().AsNullable()),
		F("w", Double()),
	))
	f := func(x int64, y string, zSet bool, z int64, w float64) bool {
		var zv any
		if zSet {
			zv = z
		}
		row := []any{x, y, zv, w}
		enc, err := c.EncodeRow(row)
		if err != nil {
			return false
		}
		full, err := c.Decode(enc)
		if err != nil {
			return false
		}
		for _, name := range []string{"x", "y", "z", "w"} {
			v, err := c.ReadField(enc, name)
			if err != nil {
				return false
			}
			if !reflect.DeepEqual(v, full[name]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: zigzag varint encoding round-trips all int64 values.
func TestPropertyZigzagRoundTrip(t *testing.T) {
	f := func(v int64) bool {
		b := appendVarint(nil, v)
		got, n, err := readVarint(b)
		return err == nil && n == len(b) && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: nullable string fields survive nil/value alternation and decoded
// maps re-encode to identical bytes (canonical encoding).
func TestPropertyCanonicalReencode(t *testing.T) {
	c := MustCodec(Record("P",
		F("a", String().AsNullable()),
		F("b", Long()),
	))
	f := func(set bool, s string, b int64) bool {
		var av any
		if set {
			av = s
		}
		enc1, err := c.EncodeRow([]any{av, b})
		if err != nil {
			return false
		}
		rec, err := c.Decode(enc1)
		if err != nil {
			return false
		}
		enc2, err := c.Encode(rec)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(enc1, enc2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

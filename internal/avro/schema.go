// Package avro implements a schema-driven binary record format modeled on
// Apache Avro: declared record schemas, zigzag-varint integer encoding,
// length-prefixed strings, and nullable fields as null-unions. It is the
// primary message format of SamzaSQL-Go, as Avro is for SamzaSQL (§2).
//
// Three access paths matter to the paper's evaluation:
//
//   - Decode / Encode: generic record <-> map[string]any.
//   - DecodeRow / EncodeRow: record <-> positional []any — the
//     "AvroToArray" / "ArrayToAvro" steps of Figure 4 that the SQL engine's
//     expression layer requires and that cost SamzaSQL 30-40% throughput.
//   - ReadField: extract one field from the wire bytes without materializing
//     the record — the cheap path a hand-written native Samza job uses.
package avro

import (
	"encoding/json"
	"errors"
	"fmt"
)

// Kind enumerates the supported Avro types.
type Kind int

// Supported schema kinds.
const (
	KindNull Kind = iota
	KindBoolean
	KindInt
	KindLong
	KindFloat
	KindDouble
	KindString
	KindBytes
	KindArray
	KindMap
	KindRecord
)

func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindBoolean:
		return "boolean"
	case KindInt:
		return "int"
	case KindLong:
		return "long"
	case KindFloat:
		return "float"
	case KindDouble:
		return "double"
	case KindString:
		return "string"
	case KindBytes:
		return "bytes"
	case KindArray:
		return "array"
	case KindMap:
		return "map"
	case KindRecord:
		return "record"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Schema describes one Avro type. Nullable marks the type as a union with
// null (["null", T]), encoded as a one-byte branch index before the value.
type Schema struct {
	Kind     Kind
	Nullable bool
	// Name is set for records.
	Name string
	// Fields is set for records.
	Fields []Field
	// Items is the element schema for arrays, the value schema for maps.
	Items *Schema

	// fieldIndex maps field name to position, built lazily by Build.
	fieldIndex map[string]int
}

// Field is a named member of a record schema.
type Field struct {
	Name   string
	Schema *Schema
}

// Primitive constructors.
func Null() *Schema    { return &Schema{Kind: KindNull} }
func Boolean() *Schema { return &Schema{Kind: KindBoolean} }
func Int() *Schema     { return &Schema{Kind: KindInt} }
func Long() *Schema    { return &Schema{Kind: KindLong} }
func Float() *Schema   { return &Schema{Kind: KindFloat} }
func Double() *Schema  { return &Schema{Kind: KindDouble} }
func String() *Schema  { return &Schema{Kind: KindString} }
func Bytes() *Schema   { return &Schema{Kind: KindBytes} }

// Array returns an array schema with the given element type.
func Array(items *Schema) *Schema { return &Schema{Kind: KindArray, Items: items} }

// Map returns a map schema (string keys) with the given value type.
func Map(values *Schema) *Schema { return &Schema{Kind: KindMap, Items: values} }

// Record returns a record schema with the given name and fields.
func Record(name string, fields ...Field) *Schema {
	s := &Schema{Kind: KindRecord, Name: name, Fields: fields}
	s.buildIndex()
	return s
}

// F is a convenience field constructor.
func F(name string, s *Schema) Field { return Field{Name: name, Schema: s} }

// AsNullable returns a copy of s marked nullable.
func (s *Schema) AsNullable() *Schema {
	c := *s
	c.Nullable = true
	return &c
}

func (s *Schema) buildIndex() {
	s.fieldIndex = make(map[string]int, len(s.Fields))
	for i, f := range s.Fields {
		s.fieldIndex[f.Name] = i
	}
}

// FieldIndex returns the position of the named field, or -1.
func (s *Schema) FieldIndex(name string) int {
	if s.fieldIndex == nil {
		s.buildIndex()
	}
	if i, ok := s.fieldIndex[name]; ok {
		return i
	}
	return -1
}

// Validate checks structural well-formedness.
func (s *Schema) Validate() error {
	switch s.Kind {
	case KindRecord:
		if s.Name == "" {
			return errors.New("avro: record schema requires a name")
		}
		seen := map[string]bool{}
		for _, f := range s.Fields {
			if f.Name == "" {
				return fmt.Errorf("avro: record %q has unnamed field", s.Name)
			}
			if seen[f.Name] {
				return fmt.Errorf("avro: record %q has duplicate field %q", s.Name, f.Name)
			}
			seen[f.Name] = true
			if f.Schema == nil {
				return fmt.Errorf("avro: field %q has nil schema", f.Name)
			}
			if err := f.Schema.Validate(); err != nil {
				return err
			}
		}
	case KindArray, KindMap:
		if s.Items == nil {
			return fmt.Errorf("avro: %s schema requires an item type", s.Kind)
		}
		return s.Items.Validate()
	}
	return nil
}

// jsonSchema is the JSON representation (a subset of Avro's schema JSON).
type jsonSchema struct {
	Type   json.RawMessage `json:"type"`
	Name   string          `json:"name,omitempty"`
	Fields []jsonField     `json:"fields,omitempty"`
	Items  json.RawMessage `json:"items,omitempty"`
	Values json.RawMessage `json:"values,omitempty"`
}

type jsonField struct {
	Name string          `json:"name"`
	Type json.RawMessage `json:"type"`
}

// ParseSchema parses an Avro-style JSON schema document. Supported forms:
// primitive name strings ("long"), ["null", T] unions (nullable T), and
// {"type":"record"|"array"|"map", ...} objects.
func ParseSchema(doc []byte) (*Schema, error) {
	s, err := parseRaw(doc)
	if err != nil {
		return nil, err
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

func parseRaw(raw json.RawMessage) (*Schema, error) {
	var prim string
	if err := json.Unmarshal(raw, &prim); err == nil {
		return primitiveByName(prim)
	}
	var union []json.RawMessage
	if err := json.Unmarshal(raw, &union); err == nil {
		return parseUnion(union)
	}
	var obj jsonSchema
	if err := json.Unmarshal(raw, &obj); err != nil {
		return nil, fmt.Errorf("avro: unparseable schema: %w", err)
	}
	var typeName string
	if err := json.Unmarshal(obj.Type, &typeName); err != nil {
		// {"type": [...]} union or nested object; recurse.
		return parseRaw(obj.Type)
	}
	switch typeName {
	case "record":
		fields := make([]Field, 0, len(obj.Fields))
		for _, jf := range obj.Fields {
			fs, err := parseRaw(jf.Type)
			if err != nil {
				return nil, fmt.Errorf("avro: field %q: %w", jf.Name, err)
			}
			fields = append(fields, Field{Name: jf.Name, Schema: fs})
		}
		return Record(obj.Name, fields...), nil
	case "array":
		items, err := parseRaw(obj.Items)
		if err != nil {
			return nil, err
		}
		return Array(items), nil
	case "map":
		values, err := parseRaw(obj.Values)
		if err != nil {
			return nil, err
		}
		return Map(values), nil
	default:
		return primitiveByName(typeName)
	}
}

func parseUnion(union []json.RawMessage) (*Schema, error) {
	if len(union) != 2 {
		return nil, fmt.Errorf("avro: only [\"null\", T] unions are supported, got %d branches", len(union))
	}
	var first string
	if err := json.Unmarshal(union[0], &first); err != nil || first != "null" {
		return nil, errors.New("avro: union must start with \"null\"")
	}
	inner, err := parseRaw(union[1])
	if err != nil {
		return nil, err
	}
	return inner.AsNullable(), nil
}

func primitiveByName(name string) (*Schema, error) {
	switch name {
	case "null":
		return Null(), nil
	case "boolean":
		return Boolean(), nil
	case "int":
		return Int(), nil
	case "long":
		return Long(), nil
	case "float":
		return Float(), nil
	case "double":
		return Double(), nil
	case "string":
		return String(), nil
	case "bytes":
		return Bytes(), nil
	default:
		return nil, fmt.Errorf("avro: unknown type %q", name)
	}
}

// MarshalJSON renders the schema back to Avro-style JSON.
func (s *Schema) MarshalJSON() ([]byte, error) {
	return json.Marshal(s.toJSONValue(false))
}

func (s *Schema) toJSONValue(ignoreNullable bool) any {
	if s.Nullable && !ignoreNullable {
		return []any{"null", s.toJSONValue(true)}
	}
	switch s.Kind {
	case KindRecord:
		fields := make([]any, 0, len(s.Fields))
		for _, f := range s.Fields {
			fields = append(fields, map[string]any{
				"name": f.Name,
				"type": f.Schema.toJSONValue(false),
			})
		}
		return map[string]any{"type": "record", "name": s.Name, "fields": fields}
	case KindArray:
		return map[string]any{"type": "array", "items": s.Items.toJSONValue(false)}
	case KindMap:
		return map[string]any{"type": "map", "values": s.Items.toJSONValue(false)}
	default:
		return s.Kind.String()
	}
}

package kv

import (
	"fmt"

	"samzasql/internal/kafka"
)

// Flushable is implemented by stores that buffer writes between commits.
// The container flushes every store at commit time, before the offset
// checkpoint is written, so restored state is never behind committed
// offsets (§4.3; Samza's task commit order).
type Flushable interface {
	// Flush forces buffered writes down the store stack (and, for
	// changelog-backed stores, onto the changelog topic).
	Flush() error
}

// DefaultWriteBatchSize is the changelog/write-batch cap when the job does
// not configure one — Samza's write.batch.size default of 500.
const DefaultWriteBatchSize = 500

// changelogSlabSize is the arena slab the changelog copies key/value bytes
// into. Slices handed to the broker alias the slab, so a slab is never
// rewritten; exhausted slabs are simply dropped for a fresh one.
const changelogSlabSize = 64 << 10

// ChangelogStore wraps a Store, mirroring every write to a compacted Kafka
// changelog topic partition so the state can be rebuilt after a task
// failure, exactly as Samza snapshots local state (§2, §4.3). The changelog
// partition matches the task's input partition so restored state lands on
// the task that owns the keys.
//
// Mirrored writes are buffered and produced as one batch — at Flush (the
// container calls it during commit, before the offset checkpoint) or when
// the buffer reaches the write-batch cap. Each key/value is copied once,
// into an arena slab shared by the whole batch; the broker retains the
// slices, so used slab regions are never rewritten. Like the stores it
// wraps, a ChangelogStore is owned by a single task goroutine.
type ChangelogStore struct {
	Store
	broker    *kafka.Broker
	topic     string
	partition int32

	pending  []kafka.Message
	arena    []byte
	batchCap int
}

// NewChangelogStore creates (if needed) the compacted changelog topic with
// the given partition count and returns a store mirroring to one partition.
func NewChangelogStore(inner Store, broker *kafka.Broker, topic string, partitions, partition int32) (*ChangelogStore, error) {
	err := broker.EnsureTopic(topic, kafka.TopicConfig{
		Partitions: partitions,
		Compacted:  true,
	})
	if err != nil {
		return nil, fmt.Errorf("kv: changelog topic: %w", err)
	}
	return &ChangelogStore{
		Store:     inner,
		broker:    broker,
		topic:     topic,
		partition: partition,
		batchCap:  DefaultWriteBatchSize,
	}, nil
}

// SetWriteBatchSize caps how many mirrored writes buffer before an early
// flush (Samza's write.batch.size). Values <= 0 keep the default.
func (c *ChangelogStore) SetWriteBatchSize(n int) {
	if n > 0 {
		c.batchCap = n
	}
}

// Put writes through to the inner store and buffers the changelog record.
func (c *ChangelogStore) Put(key, value []byte) {
	c.Store.Put(key, value)
	c.buffer(key, value)
}

// Delete removes the key and buffers a tombstone for the changelog.
func (c *ChangelogStore) Delete(key []byte) bool {
	ok := c.Store.Delete(key)
	c.buffer(key, nil)
	return ok
}

// copyToArena copies b into the current slab (starting a fresh slab when it
// does not fit) and returns the aliasing slice. Previously returned slices
// stay valid: slabs are append-only and never recycled.
func (c *ChangelogStore) copyToArena(b []byte) []byte {
	if len(b) == 0 {
		return nil
	}
	if cap(c.arena)-len(c.arena) < len(b) {
		size := changelogSlabSize
		if len(b) > size {
			size = len(b)
		}
		c.arena = make([]byte, 0, size)
	}
	start := len(c.arena)
	c.arena = append(c.arena, b...)
	return c.arena[start:len(c.arena):len(c.arena)]
}

// buffer queues one mirrored write, copying key and value once into the
// batch arena. A nil value is a tombstone. When the buffer reaches the
// write-batch cap it flushes early; like the old per-write produce path,
// a broker failure there is a programming error (the topic exists and the
// partition was validated at construction) and panics.
func (c *ChangelogStore) buffer(key, value []byte) {
	m := kafka.Message{
		Partition: c.partition,
		Key:       c.copyToArena(key),
	}
	if value != nil {
		m.Value = c.copyToArena(value)
	}
	c.pending = append(c.pending, m)
	if len(c.pending) >= c.batchCap {
		if err := c.Flush(); err != nil {
			panic(fmt.Sprintf("kv: changelog append: %v", err))
		}
	}
}

// Flush produces the buffered changelog records as one batch: one lock
// acquisition and one subscriber wakeup on the partition regardless of the
// batch size. The container calls it at commit, before the offset
// checkpoint, so a restored store is never behind committed offsets.
func (c *ChangelogStore) Flush() error {
	if len(c.pending) == 0 {
		return nil
	}
	if err := c.broker.ProduceBatch(c.topic, c.pending); err != nil {
		return fmt.Errorf("kv: changelog flush: %w", err)
	}
	// The broker retains the message key/value slices (they alias arena
	// slabs that are never rewritten); only the message headers are reused.
	c.pending = c.pending[:0]
	return nil
}

// Pending reports how many mirrored writes are buffered but not yet on the
// changelog topic — test and introspection hook.
func (c *ChangelogStore) Pending() int { return len(c.pending) }

// Restore rebuilds the inner store by replaying the changelog partition from
// its start offset to the current high watermark. It is called by the task
// runner before any input message is delivered after a (re)start.
func (c *ChangelogStore) Restore() error {
	tp := kafka.TopicPartition{Topic: c.topic, Partition: c.partition}
	start, err := c.broker.StartOffset(tp)
	if err != nil {
		return err
	}
	hwm, err := c.broker.HighWatermark(tp)
	if err != nil {
		return err
	}
	off := start
	for off < hwm {
		msgs, wait, err := c.broker.Fetch(tp, off, 1024)
		if err != nil {
			return err
		}
		if wait != nil {
			break // compaction gap at the tail; nothing further to replay
		}
		for _, m := range msgs {
			if m.Value == nil {
				c.Store.Delete(m.Key)
			} else {
				c.Store.Put(m.Key, m.Value)
			}
		}
		off = msgs[len(msgs)-1].Offset + 1
	}
	return nil
}

package kv

import (
	"fmt"

	"samzasql/internal/kafka"
)

// ChangelogStore wraps a Store, mirroring every write to a compacted Kafka
// changelog topic partition so the state can be rebuilt after a task
// failure, exactly as Samza snapshots local state (§2, §4.3). The changelog
// partition matches the task's input partition so restored state lands on
// the task that owns the keys.
type ChangelogStore struct {
	Store
	broker    *kafka.Broker
	topic     string
	partition int32
}

// NewChangelogStore creates (if needed) the compacted changelog topic with
// the given partition count and returns a store mirroring to one partition.
func NewChangelogStore(inner Store, broker *kafka.Broker, topic string, partitions, partition int32) (*ChangelogStore, error) {
	err := broker.EnsureTopic(topic, kafka.TopicConfig{
		Partitions: partitions,
		Compacted:  true,
	})
	if err != nil {
		return nil, fmt.Errorf("kv: changelog topic: %w", err)
	}
	return &ChangelogStore{
		Store:     inner,
		broker:    broker,
		topic:     topic,
		partition: partition,
	}, nil
}

// Put writes through to the inner store and appends to the changelog.
func (c *ChangelogStore) Put(key, value []byte) {
	c.Store.Put(key, value)
	// Changelog appends cannot fail here: the topic exists and the
	// partition index was validated at construction.
	if _, err := c.broker.Produce(c.topic, kafka.Message{
		Partition: c.partition,
		Key:       append([]byte(nil), key...),
		Value:     append([]byte(nil), value...),
	}); err != nil {
		panic(fmt.Sprintf("kv: changelog append: %v", err))
	}
}

// Delete removes the key and appends a tombstone to the changelog.
func (c *ChangelogStore) Delete(key []byte) bool {
	ok := c.Store.Delete(key)
	if _, err := c.broker.Produce(c.topic, kafka.Message{
		Partition: c.partition,
		Key:       append([]byte(nil), key...),
		Value:     nil,
	}); err != nil {
		panic(fmt.Sprintf("kv: changelog tombstone: %v", err))
	}
	return ok
}

// Restore rebuilds the inner store by replaying the changelog partition from
// its start offset to the current high watermark. It is called by the task
// runner before any input message is delivered after a (re)start.
func (c *ChangelogStore) Restore() error {
	tp := kafka.TopicPartition{Topic: c.topic, Partition: c.partition}
	start, err := c.broker.StartOffset(tp)
	if err != nil {
		return err
	}
	hwm, err := c.broker.HighWatermark(tp)
	if err != nil {
		return err
	}
	off := start
	for off < hwm {
		msgs, wait, err := c.broker.Fetch(tp, off, 1024)
		if err != nil {
			return err
		}
		if wait != nil {
			break // compaction gap at the tail; nothing further to replay
		}
		for _, m := range msgs {
			if m.Value == nil {
				c.Store.Delete(m.Key)
			} else {
				c.Store.Put(m.Key, m.Value)
			}
		}
		off = msgs[len(msgs)-1].Offset + 1
	}
	return nil
}

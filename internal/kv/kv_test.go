package kv

import (
	"bytes"
	"fmt"
	"sort"
	"testing"
	"testing/quick"

	"samzasql/internal/kafka"
	"samzasql/internal/serde"
)

func TestStoreGetPutDelete(t *testing.T) {
	s := NewStore()
	if _, ok := s.Get([]byte("a")); ok {
		t.Fatal("empty store returned a value")
	}
	s.Put([]byte("a"), []byte("1"))
	v, ok := s.Get([]byte("a"))
	if !ok || string(v) != "1" {
		t.Fatalf("Get: %q %v", v, ok)
	}
	s.Put([]byte("a"), []byte("2"))
	v, _ = s.Get([]byte("a"))
	if string(v) != "2" {
		t.Fatalf("overwrite: %q", v)
	}
	if !s.Delete([]byte("a")) {
		t.Fatal("delete of present key returned false")
	}
	if s.Delete([]byte("a")) {
		t.Fatal("delete of absent key returned true")
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestStoreKeyCopySemantics(t *testing.T) {
	s := NewStore()
	key := []byte("k")
	val := []byte("v")
	s.Put(key, val)
	key[0] = 'X'
	val[0] = 'X'
	if _, ok := s.Get([]byte("k")); !ok {
		t.Fatal("mutating caller's key slice corrupted the store")
	}
	v, _ := s.Get([]byte("k"))
	if string(v) != "v" {
		t.Fatal("mutating caller's value slice corrupted the store")
	}
}

func TestStoreRangeOrdered(t *testing.T) {
	s := NewStore()
	keys := []string{"d", "a", "c", "b", "e"}
	for _, k := range keys {
		s.Put([]byte(k), []byte("v"+k))
	}
	all := s.Range(nil, nil, 0)
	if len(all) != 5 {
		t.Fatalf("full scan returned %d entries", len(all))
	}
	for i := 1; i < len(all); i++ {
		if bytes.Compare(all[i-1].Key, all[i].Key) >= 0 {
			t.Fatal("scan out of order")
		}
	}
	mid := s.Range([]byte("b"), []byte("d"), 0)
	if len(mid) != 2 || string(mid[0].Key) != "b" || string(mid[1].Key) != "c" {
		t.Fatalf("bounded scan: %v", mid)
	}
	limited := s.Range(nil, nil, 3)
	if len(limited) != 3 {
		t.Fatalf("limited scan returned %d", len(limited))
	}
}

func TestStoreStats(t *testing.T) {
	s := NewStore()
	s.Put([]byte("a"), []byte("1"))
	s.Get([]byte("a"))
	s.Range(nil, nil, 0)
	s.Delete([]byte("a"))
	reads, writes := s.Stats()
	if reads != 2 || writes != 2 {
		t.Fatalf("stats = %d reads %d writes", reads, writes)
	}
}

func TestPropertyStoreMatchesMap(t *testing.T) {
	type op struct {
		Put bool
		Key uint8
		Val uint16
	}
	f := func(ops []op) bool {
		s := NewStore()
		ref := map[string]string{}
		for _, o := range ops {
			k := []byte(fmt.Sprintf("k%03d", o.Key))
			if o.Put {
				v := []byte(fmt.Sprintf("v%d", o.Val))
				s.Put(k, v)
				ref[string(k)] = string(v)
			} else {
				s.Delete(k)
				delete(ref, string(k))
			}
		}
		if s.Len() != len(ref) {
			return false
		}
		// Full scan must equal the sorted reference map.
		var wantKeys []string
		for k := range ref {
			wantKeys = append(wantKeys, k)
		}
		sort.Strings(wantKeys)
		got := s.Range(nil, nil, 0)
		if len(got) != len(wantKeys) {
			return false
		}
		for i, k := range wantKeys {
			if string(got[i].Key) != k || string(got[i].Value) != ref[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestChangelogRestore(t *testing.T) {
	broker := kafka.NewBroker()
	cs, err := NewChangelogStore(NewStore(), broker, "state-cl", 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		cs.Put([]byte(fmt.Sprintf("k%02d", i%10)), []byte(fmt.Sprintf("v%d", i)))
	}
	cs.Delete([]byte("k03"))
	// Writes buffer until commit; flush puts them on the changelog topic.
	if err := cs.Flush(); err != nil {
		t.Fatal(err)
	}

	// Simulate failure: brand-new store restored from the changelog.
	restored, err := NewChangelogStore(NewStore(), broker, "state-cl", 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.Restore(); err != nil {
		t.Fatal(err)
	}
	if restored.Len() != 9 {
		t.Fatalf("restored %d keys, want 9", restored.Len())
	}
	v, ok := restored.Get([]byte("k05"))
	if !ok || string(v) != "v45" {
		t.Fatalf("restored k05 = %q %v", v, ok)
	}
	if _, ok := restored.Get([]byte("k03")); ok {
		t.Fatal("tombstoned key resurrected by restore")
	}
}

func TestChangelogRestoreAfterCompaction(t *testing.T) {
	broker := kafka.NewBroker()
	cs, err := NewChangelogStore(NewStore(), broker, "cl", 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		cs.Put([]byte(fmt.Sprintf("k%02d", i%25)), []byte(fmt.Sprintf("v%d", i)))
	}
	if err := cs.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := broker.Compact("cl"); err != nil {
		t.Fatal(err)
	}
	restored, err := NewChangelogStore(NewStore(), broker, "cl", 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.Restore(); err != nil {
		t.Fatal(err)
	}
	if restored.Len() != 25 {
		t.Fatalf("restored %d keys, want 25", restored.Len())
	}
	for i := 0; i < 25; i++ {
		v, ok := restored.Get([]byte(fmt.Sprintf("k%02d", i)))
		want := fmt.Sprintf("v%d", 1975+i)
		if !ok || string(v) != want {
			t.Fatalf("k%02d restored to %q, want %q", i, v, want)
		}
	}
}

func TestTypedStoreRoundTrip(t *testing.T) {
	ts := NewTypedStore(NewStore(), serde.Int64Serde{}, serde.GobSerde{})
	row := []any{int64(1), "order", 2.5}
	if err := ts.Put(int64(100), row); err != nil {
		t.Fatal(err)
	}
	got, ok, err := ts.Get(int64(100))
	if err != nil || !ok {
		t.Fatalf("Get: %v %v", ok, err)
	}
	r := got.([]any)
	if r[0].(int64) != 1 || r[1].(string) != "order" || r[2].(float64) != 2.5 {
		t.Fatalf("decoded %v", r)
	}
	if _, ok, _ := ts.Get(int64(999)); ok {
		t.Fatal("phantom key")
	}
	if err := ts.Delete(int64(100)); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := ts.Get(int64(100)); ok {
		t.Fatal("key survived delete")
	}
}

func TestTypedStoreRangeNumericOrder(t *testing.T) {
	ts := NewTypedStore(NewStore(), serde.Int64Serde{}, serde.GobSerde{})
	// Include negatives: the int64 serde must keep numeric order.
	for _, k := range []int64{5, -3, 10, 0, 7, -8} {
		if err := ts.Put(k, []any{k}); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := ts.Range(int64(-5), int64(8), 0)
	if err != nil {
		t.Fatal(err)
	}
	var got []int64
	for _, e := range entries {
		got = append(got, e.Key.(int64))
	}
	want := []int64{-3, 0, 5, 7}
	if len(got) != len(want) {
		t.Fatalf("range keys %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("range keys %v, want %v", got, want)
		}
	}
}

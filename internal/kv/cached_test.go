package kv

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"samzasql/internal/kafka"
	"samzasql/internal/metrics"
)

func TestCachedStoreReadThroughAndHitCounters(t *testing.T) {
	inner := NewStore()
	inner.Put([]byte("a"), []byte("1"))
	c := NewCachedStore(inner, 8, 0)
	reg := metrics.NewRegistry()
	c.BindMetrics(reg, "s")

	v, ok := c.Get([]byte("a")) // miss: falls through and caches
	if !ok || string(v) != "1" {
		t.Fatalf("read-through: %q %v", v, ok)
	}
	for i := 0; i < 3; i++ {
		if v, ok = c.Get([]byte("a")); !ok || string(v) != "1" {
			t.Fatalf("cached read %d: %q %v", i, v, ok)
		}
	}
	if _, ok = c.Get([]byte("nope")); ok {
		t.Fatal("phantom key")
	}
	if _, ok = c.Get([]byte("nope")); ok { // negative entry must hold
		t.Fatal("phantom key on negative-cached read")
	}
	hits := reg.Counter("store.s.cache.hits").Value()
	misses := reg.Counter("store.s.cache.misses").Value()
	if hits != 4 || misses != 2 {
		t.Fatalf("hits=%d misses=%d, want 4/2", hits, misses)
	}
	// The negative read and the three repeats never touched the inner store.
	reads, _ := inner.Stats()
	if reads != 2 {
		t.Fatalf("inner reads = %d, want 2", reads)
	}
}

func TestCachedStoreWriteBatchDedup(t *testing.T) {
	inner := NewStore()
	c := NewCachedStore(inner, 8, 100)
	for i := 0; i < 50; i++ {
		c.Put([]byte("hot"), []byte(fmt.Sprintf("v%d", i)))
	}
	if _, writes := inner.Stats(); writes != 0 {
		t.Fatalf("writes leaked before flush: %d", writes)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, writes := inner.Stats(); writes != 1 {
		t.Fatalf("50 puts flushed as %d inner writes, want 1", writes)
	}
	v, ok := inner.Get([]byte("hot"))
	if !ok || string(v) != "v49" {
		t.Fatalf("inner sees %q %v, want v49", v, ok)
	}
}

func TestCachedStoreAutoFlushAtBatchCap(t *testing.T) {
	inner := NewStore()
	c := NewCachedStore(inner, 64, 10)
	for i := 0; i < 10; i++ {
		c.Put([]byte(fmt.Sprintf("k%d", i)), []byte("v"))
	}
	if _, writes := inner.Stats(); writes != 10 {
		t.Fatalf("batch cap of 10 flushed %d writes", writes)
	}
}

func TestCachedStoreDirtyEvictionWritesThrough(t *testing.T) {
	inner := NewStore()
	c := NewCachedStore(inner, 2, 100)
	reg := metrics.NewRegistry()
	c.BindMetrics(reg, "s")
	c.Put([]byte("a"), []byte("1"))
	c.Put([]byte("b"), []byte("2"))
	c.Put([]byte("c"), []byte("3")) // evicts "a", which is dirty
	if v, ok := inner.Get([]byte("a")); !ok || string(v) != "1" {
		t.Fatalf("evicted dirty entry not written through: %q %v", v, ok)
	}
	// A fresh read of the evicted key must see its value, not a stale miss.
	if v, ok := c.Get([]byte("a")); !ok || string(v) != "1" {
		t.Fatalf("read after dirty eviction: %q %v", v, ok)
	}
	if ev := reg.Counter("store.s.cache.evictions").Value(); ev == 0 {
		t.Fatal("evictions counter never moved")
	}
	if err := c.Flush(); err != nil { // must not re-write the evicted entry twice
		t.Fatal(err)
	}
	for _, k := range []string{"a", "b", "c"} {
		if _, ok := inner.Get([]byte(k)); !ok {
			t.Fatalf("key %q missing after flush", k)
		}
	}
}

func TestCachedStoreDeleteAndLen(t *testing.T) {
	inner := NewStore()
	inner.Put([]byte("a"), []byte("1"))
	inner.Put([]byte("b"), []byte("2"))
	c := NewCachedStore(inner, 8, 100)
	if !c.Delete([]byte("a")) {
		t.Fatal("delete of present key reported absent")
	}
	if c.Delete([]byte("a")) {
		t.Fatal("second delete reported present")
	}
	if _, ok := c.Get([]byte("a")); ok {
		t.Fatal("buffered tombstone not visible to Get")
	}
	if got := c.Len(); got != 1 { // Len writes the batch through first
		t.Fatalf("Len = %d, want 1", got)
	}
	if _, ok := inner.Get([]byte("a")); ok {
		t.Fatal("tombstone not applied to inner store")
	}
	c.Put([]byte("a"), []byte("back"))
	if v, ok := c.Get([]byte("a")); !ok || string(v) != "back" {
		t.Fatalf("re-put after tombstone: %q %v", v, ok)
	}
}

func TestCachedStoreRangeSeesBufferedWrites(t *testing.T) {
	inner := NewStore()
	c := NewCachedStore(inner, 8, 100)
	c.Put([]byte("a"), []byte("1"))
	c.Put([]byte("c"), []byte("3"))
	c.Put([]byte("b"), []byte("2"))
	c.Delete([]byte("c"))
	got := c.Range(nil, nil, 0)
	if len(got) != 2 || string(got[0].Key) != "a" || string(got[1].Key) != "b" {
		t.Fatalf("range over buffered writes: %v", got)
	}
}

func TestCachedStoreObjectPathDefersEncode(t *testing.T) {
	inner := NewStore()
	c := NewCachedStore(inner, 8, 100)
	type state struct{ n int }
	s := &state{}
	encodes := 0
	enc := func(obj any) ([]byte, error) {
		encodes++
		return []byte(fmt.Sprintf("n=%d", obj.(*state).n)), nil
	}
	key := []byte("s1")
	for i := 0; i < 1000; i++ {
		obj, ok := c.GetObject(key)
		if i == 0 {
			if ok {
				t.Fatal("object resident before first put")
			}
			obj = s
		} else if !ok {
			t.Fatalf("object evicted at iteration %d", i)
		}
		obj.(*state).n++
		c.PutObject(key, obj, enc)
	}
	if encodes != 0 {
		t.Fatalf("encoded %d times before flush, want 0", encodes)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if encodes != 1 {
		t.Fatalf("encoded %d times at flush, want 1", encodes)
	}
	if v, ok := inner.Get(key); !ok || string(v) != "n=1000" {
		t.Fatalf("inner value %q %v", v, ok)
	}
	// Byte-level Get on a flushed deferred entry returns the encoded form.
	if v, ok := c.Get(key); !ok || string(v) != "n=1000" {
		t.Fatalf("cached Get after flush: %q %v", v, ok)
	}
	// The object stays resident for the next commit interval.
	if obj, ok := c.GetObject(key); !ok || obj.(*state).n != 1000 {
		t.Fatalf("object not resident after flush: %v %v", obj, ok)
	}
}

func TestCachedStoreCacheObjectMemoizesCleanReads(t *testing.T) {
	inner := NewStore()
	inner.Put([]byte("r"), []byte("bytes"))
	c := NewCachedStore(inner, 8, 100)
	if _, ok := c.GetObject([]byte("r")); ok {
		t.Fatal("object resident before CacheObject")
	}
	v, ok := c.Get([]byte("r")) // makes the entry resident
	if !ok || string(v) != "bytes" {
		t.Fatalf("get: %q %v", v, ok)
	}
	c.CacheObject([]byte("r"), "decoded")
	obj, ok := c.GetObject([]byte("r"))
	if !ok || obj.(string) != "decoded" {
		t.Fatalf("memoized object: %v %v", obj, ok)
	}
	// CacheObject never dirties: flush must not write anything.
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, writes := inner.Stats(); writes != 1 { // only the seed write
		t.Fatalf("CacheObject caused %d inner writes", writes-1)
	}
}

func TestCachedStorePutCopiesValue(t *testing.T) {
	inner := NewStore()
	c := NewCachedStore(inner, 8, 100)
	val := []byte("v")
	c.Put([]byte("k"), val)
	val[0] = 'X'
	if v, _ := c.Get([]byte("k")); string(v) != "v" {
		t.Fatal("mutating caller's value slice corrupted the cache")
	}
}

// TestPropertyCachedStoreMatchesPlain drives identical random operation
// sequences — puts, deletes, gets, ranges, interleaved flushes — through a
// cached stack and a plain store and requires identical observable state.
// Small capacity and batch force constant eviction and write-through.
func TestPropertyCachedStoreMatchesPlain(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	inner := NewStore()
	c := NewCachedStore(inner, 4, 3)
	ref := map[string]string{}
	for i := 0; i < 5000; i++ {
		k := []byte(fmt.Sprintf("k%02d", rng.Intn(12)))
		switch rng.Intn(10) {
		case 0, 1, 2, 3:
			v := []byte(fmt.Sprintf("v%d", i))
			c.Put(k, v)
			ref[string(k)] = string(v)
		case 4:
			gotP := c.Delete(k)
			_, wantP := ref[string(k)]
			if gotP != wantP {
				t.Fatalf("op %d: delete presence %v, want %v", i, gotP, wantP)
			}
			delete(ref, string(k))
		case 5, 6, 7:
			v, ok := c.Get(k)
			want, wantOK := ref[string(k)]
			if ok != wantOK || (ok && string(v) != want) {
				t.Fatalf("op %d: get %q = %q %v, want %q %v", i, k, v, ok, want, wantOK)
			}
		case 8:
			if len(c.Range(nil, nil, 0)) != len(ref) {
				t.Fatalf("op %d: range size mismatch", i)
			}
		case 9:
			if err := c.Flush(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	var wantKeys []string
	for k := range ref {
		wantKeys = append(wantKeys, k)
	}
	sort.Strings(wantKeys)
	got := inner.Range(nil, nil, 0)
	if len(got) != len(wantKeys) {
		t.Fatalf("final inner size %d, want %d", len(got), len(wantKeys))
	}
	for i, k := range wantKeys {
		if string(got[i].Key) != k || string(got[i].Value) != ref[k] {
			t.Fatalf("final key %q = %q, want %q", got[i].Key, got[i].Value, ref[k])
		}
	}
}

// TestCachedChangelogStackFlushOrderAndRestore exercises the full task store
// stack — CachedStore over Instrument over ChangelogStore — and verifies
// Flush cascades so a restore reproduces exactly the flushed state.
func TestCachedChangelogStackFlushOrderAndRestore(t *testing.T) {
	broker := kafka.NewBroker()
	cl, err := NewChangelogStore(NewStore(), broker, "stack-cl", 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	c := NewCachedStore(Instrument(cl, reg, "st"), 16, 100)
	for i := 0; i < 200; i++ {
		c.Put([]byte(fmt.Sprintf("k%02d", i%10)), []byte(fmt.Sprintf("v%d", i)))
	}
	c.Delete([]byte("k04"))

	tp := kafka.TopicPartition{Topic: "stack-cl", Partition: 0}
	if hwm, _ := broker.HighWatermark(tp); hwm != 0 {
		t.Fatalf("changelog has %d records before commit flush", hwm)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	hwm, _ := broker.HighWatermark(tp)
	// Dedup: 9 live keys + 1 tombstone (k04's put and delete collapse into
	// the tombstone), not 201 raw writes.
	if hwm != 10 {
		t.Fatalf("changelog records after flush = %d, want 10", hwm)
	}
	if reg.Histogram("store.st.flush-ns").Count() == 0 {
		t.Fatal("flush latency histogram never observed")
	}

	restored, err := NewChangelogStore(NewStore(), broker, "stack-cl", 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.Restore(); err != nil {
		t.Fatal(err)
	}
	if restored.Len() != 9 {
		t.Fatalf("restored %d keys, want 9", restored.Len())
	}
	for i := 0; i < 10; i++ {
		k := []byte(fmt.Sprintf("k%02d", i))
		v, ok := restored.Get(k)
		if i == 4 {
			if ok {
				t.Fatal("tombstoned key restored")
			}
			continue
		}
		want := fmt.Sprintf("v%d", 190+i)
		if !ok || string(v) != want {
			t.Fatalf("restored %s = %q %v, want %q", k, v, ok, want)
		}
	}
}

func TestChangelogAutoFlushAtWriteBatchCap(t *testing.T) {
	broker := kafka.NewBroker()
	cs, err := NewChangelogStore(NewStore(), broker, "auto-cl", 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	cs.SetWriteBatchSize(16)
	tp := kafka.TopicPartition{Topic: "auto-cl", Partition: 0}
	for i := 0; i < 15; i++ {
		cs.Put([]byte(fmt.Sprintf("k%d", i)), []byte("v"))
	}
	if hwm, _ := broker.HighWatermark(tp); hwm != 0 {
		t.Fatalf("produced %d records below the cap", hwm)
	}
	if cs.Pending() != 15 {
		t.Fatalf("pending = %d, want 15", cs.Pending())
	}
	cs.Put([]byte("k15"), []byte("v")) // 16th write crosses the cap
	if hwm, _ := broker.HighWatermark(tp); hwm != 16 {
		t.Fatalf("auto-flush produced %d records, want 16", hwm)
	}
	if cs.Pending() != 0 {
		t.Fatalf("pending after auto-flush = %d", cs.Pending())
	}
}

// TestChangelogRestoreCompactedSparseOffsets drives overwrites and deletes
// through small segments, forces compaction (leaving offset gaps up to the
// active segment), and checks Restore replays the sparse log exactly.
func TestChangelogRestoreCompactedSparseOffsets(t *testing.T) {
	broker := kafka.NewBroker()
	inner := NewStore()
	cs, err := NewChangelogStore(inner, broker, "sparse-cl", 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	cs.SetWriteBatchSize(8) // frequent small produce batches -> many segments
	rng := rand.New(rand.NewSource(7))
	ref := map[string]string{}
	for i := 0; i < 3000; i++ {
		k := fmt.Sprintf("k%02d", rng.Intn(20))
		if rng.Intn(6) == 0 {
			cs.Delete([]byte(k))
			delete(ref, k)
		} else {
			v := fmt.Sprintf("v%d", i)
			cs.Put([]byte(k), []byte(v))
			ref[k] = v
		}
	}
	if err := cs.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := broker.Compact("sparse-cl"); err != nil {
		t.Fatal(err)
	}
	tp := kafka.TopicPartition{Topic: "sparse-cl", Partition: 0}
	hwm, _ := broker.HighWatermark(tp)
	if hwm != 3000 {
		t.Fatalf("hwm %d, want 3000 (offsets preserved across compaction)", hwm)
	}

	restored, err := NewChangelogStore(NewStore(), broker, "sparse-cl", 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.Restore(); err != nil {
		t.Fatal(err)
	}
	if restored.Len() != len(ref) {
		t.Fatalf("restored %d keys, want %d", restored.Len(), len(ref))
	}
	for k, want := range ref {
		v, ok := restored.Get([]byte(k))
		if !ok || string(v) != want {
			t.Fatalf("restored %s = %q %v, want %q", k, v, ok, want)
		}
	}
	// The restored store must byte-equal the survivor, not just size-match.
	a, b := inner.Range(nil, nil, 0), restored.Range(nil, nil, 0)
	for i := range a {
		if !bytes.Equal(a[i].Key, b[i].Key) || !bytes.Equal(a[i].Value, b[i].Value) {
			t.Fatalf("entry %d diverges: %q vs %q", i, a[i].Key, b[i].Key)
		}
	}
}

// nopStore isolates the changelog buffering path from skiplist allocations
// for the arena allocation pin.
type nopStore struct{}

func (nopStore) Get([]byte) ([]byte, bool)        { return nil, false }
func (nopStore) Put(_, _ []byte)                  {}
func (nopStore) Delete([]byte) bool               { return false }
func (nopStore) Range(_, _ []byte, _ int) []Entry { return nil }
func (nopStore) Len() int                         { return 0 }
func (nopStore) Stats() (int64, int64)            { return 0, 0 }

// TestChangelogBufferAllocs pins the arena design: buffering a mirrored
// write costs amortized under one allocation (slab and pending-slice growth
// only), versus the two defensive copies the per-write produce path made.
func TestChangelogBufferAllocs(t *testing.T) {
	broker := kafka.NewBroker()
	cs, err := NewChangelogStore(nopStore{}, broker, "alloc-cl", 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	key := []byte("alloc-key")
	val := []byte("alloc-value-of-reasonable-size")
	// 400 runs stay under the default 500 write-batch cap, so no produce
	// happens inside the measured region.
	avg := testing.AllocsPerRun(400, func() {
		cs.Put(key, val)
	})
	if avg >= 1 {
		t.Fatalf("changelog buffer path averages %.2f allocs/op, want < 1", avg)
	}
}

package kv

import (
	"samzasql/internal/serde"
)

// TypedStore layers serdes over a byte Store, the shape operators program
// against. The choice of value serde here is performance-critical: the
// paper's SamzaSQL prototype used Kryo (our gob analog) and paid ~2x on
// joins versus the native job's Avro serde (§5.1).
type TypedStore struct {
	raw        Store
	keySerde   serde.Serde
	valueSerde serde.Serde
}

// NewTypedStore wraps raw with the given serdes.
func NewTypedStore(raw Store, key, value serde.Serde) *TypedStore {
	return &TypedStore{raw: raw, keySerde: key, valueSerde: value}
}

// Raw exposes the underlying byte store.
func (t *TypedStore) Raw() Store { return t.raw }

// Get decodes the value stored under key.
func (t *TypedStore) Get(key any) (any, bool, error) {
	kb, err := t.keySerde.Encode(key)
	if err != nil {
		return nil, false, err
	}
	vb, ok := t.raw.Get(kb)
	if !ok {
		return nil, false, nil
	}
	v, err := t.valueSerde.Decode(vb)
	if err != nil {
		return nil, false, err
	}
	return v, true, nil
}

// Put encodes and stores value under key.
func (t *TypedStore) Put(key, value any) error {
	kb, err := t.keySerde.Encode(key)
	if err != nil {
		return err
	}
	vb, err := t.valueSerde.Encode(value)
	if err != nil {
		return err
	}
	t.raw.Put(kb, vb)
	return nil
}

// Delete removes key.
func (t *TypedStore) Delete(key any) error {
	kb, err := t.keySerde.Encode(key)
	if err != nil {
		return err
	}
	t.raw.Delete(kb)
	return nil
}

// TypedEntry is a decoded key-value pair.
type TypedEntry struct {
	Key   any
	Value any
}

// Range decodes entries with start <= key < end under the key serde's byte
// ordering (use an order-preserving key serde such as int64).
func (t *TypedStore) Range(start, end any, limit int) ([]TypedEntry, error) {
	var sb, eb []byte
	var err error
	if start != nil {
		if sb, err = t.keySerde.Encode(start); err != nil {
			return nil, err
		}
	}
	if end != nil {
		if eb, err = t.keySerde.Encode(end); err != nil {
			return nil, err
		}
	}
	raw := t.raw.Range(sb, eb, limit)
	out := make([]TypedEntry, 0, len(raw))
	for _, e := range raw {
		k, err := t.keySerde.Decode(e.Key)
		if err != nil {
			return nil, err
		}
		v, err := t.valueSerde.Decode(e.Value)
		if err != nil {
			return nil, err
		}
		out = append(out, TypedEntry{Key: k, Value: v})
	}
	return out, nil
}

package kv

// Batched point reads. The vectorized operator paths cluster a block's
// tuples by state key and then fetch every distinct key's state in one
// call, so the store stack pays its per-operation overhead — the skiplist
// lock, the latency observation, the trace leaf — once per block instead
// of once per tuple. Writes stay per-key: the dirty batch in CachedStore
// and the changelog buffer already amortize those.

// BatchReader is implemented by stores that can serve multi-key point
// reads with amortized per-call overhead. vals and oks are caller-owned
// result slices of the same length as keys; vals[i], oks[i] receive what
// Get(keys[i]) would have returned.
type BatchReader interface {
	GetMany(keys [][]byte, vals [][]byte, oks []bool)
}

// GetMany reads every keys[i] from s into vals[i], oks[i], using the
// store's batched fast path when it has one and falling back to per-key
// Get otherwise. len(vals) and len(oks) must equal len(keys).
//
//samzasql:hotpath
func GetMany(s Store, keys [][]byte, vals [][]byte, oks []bool) {
	if br, ok := s.(BatchReader); ok {
		br.GetMany(keys, vals, oks)
		return
	}
	for i, k := range keys {
		//samzasql:ignore hotpath-blocking -- the task store mutex is per-task single-writer and uncontended by design; skiplist access under it is the state-access contract
		vals[i], oks[i] = s.Get(k)
	}
}

// GetMany serves the whole batch under one lock acquisition: the skiplist
// descent per key is unavoidable, but the mutex and the read-counter
// update are paid once per block rather than once per key.
//
//samzasql:hotpath
func (s *store) GetMany(keys [][]byte, vals [][]byte, oks []bool) {
	//samzasql:ignore hotpath-blocking -- the task store mutex is per-task single-writer and uncontended by design; skiplist access under it is the state-access contract
	s.mu.Lock()
	defer s.mu.Unlock()
	s.reads += int64(len(keys))
	for i, k := range keys {
		vals[i], oks[i] = s.list.get(k)
	}
}

// GetMany forwards the batched read to the store underneath; reads need no
// changelog mirroring. (The embedded Store interface does not promote the
// method — it is not part of Store — so the forwarder is explicit.)
//
//samzasql:hotpath
func (c *ChangelogStore) GetMany(keys [][]byte, vals [][]byte, oks []bool) {
	GetMany(c.Store, keys, vals, oks)
}

// GetMany serves cache-resident keys (including buffered uncommitted
// writes and negative entries) straight from the cache and gathers the
// misses into one inner batched read, so a block whose keys are cold costs
// a single lock acquisition downstream instead of one per key. Entries
// fetched for misses are inserted like Get would insert them; an insert
// can evict an earlier entry mid-batch, which is safe because already
// filled vals alias entry value slices that survive unlinking.
//
//samzasql:hotpath
func (c *CachedStore) GetMany(keys [][]byte, vals [][]byte, oks []bool) {
	missKeys := c.missKeys[:0]
	missIdx := c.missIdx[:0]
	for i, k := range keys {
		if e, ok := c.entries[string(k)]; ok {
			c.touch(e)
			if c.hits != nil {
				c.hits.Inc()
			}
			if e.present {
				c.encodeEntry(e)
				vals[i], oks[i] = e.value, true
			} else {
				vals[i], oks[i] = nil, false
			}
			continue
		}
		if c.misses != nil {
			c.misses.Inc()
		}
		missKeys = append(missKeys, k)
		missIdx = append(missIdx, i)
	}
	if len(missKeys) > 0 {
		missVals := c.missVals[:0]
		missOks := c.missOks[:0]
		for range missKeys {
			missVals = append(missVals, nil)
			missOks = append(missOks, false)
		}
		GetMany(c.inner, missKeys, missVals, missOks)
		for j, i := range missIdx {
			vals[i], oks[i] = missVals[j], missOks[j]
			// A duplicate key earlier in this batch may have inserted the
			// entry already; re-inserting would double-link it in the LRU.
			if _, ok := c.entries[string(missKeys[j])]; !ok {
				//samzasql:ignore hotpath-blocking -- write-through to the changelog is the durability contract; the flush path's broker append lock is per-partition and the io.Write is an in-memory FNV hash
				c.insert(&cacheEntry{key: string(missKeys[j]), value: missVals[j], present: missOks[j]})
			}
		}
		c.missVals, c.missOks = missVals[:0], missOks[:0]
	}
	c.missKeys, c.missIdx = missKeys[:0], missIdx[:0]
}

// GetObjectMany fills objs[i], oks[i] with the memoized decoded object for
// each resident keys[i] — the batched form of GetObject. Misses are left
// for the caller to resolve through GetMany plus its decoder; unlike
// GetMany this never touches the inner store, because only the caller
// knows how to decode.
//
//samzasql:hotpath
func (c *CachedStore) GetObjectMany(keys [][]byte, objs []any, oks []bool) {
	for i, k := range keys {
		e, ok := c.entries[string(k)]
		if !ok || !e.present || e.obj == nil {
			if c.misses != nil {
				c.misses.Inc()
			}
			objs[i], oks[i] = nil, false
			continue
		}
		c.touch(e)
		if c.hits != nil {
			c.hits.Inc()
		}
		objs[i], oks[i] = e.obj, true
	}
}

package kv

import (
	"testing"

	"samzasql/internal/metrics"
)

func TestInstrumentedStore(t *testing.T) {
	reg := metrics.NewRegistry()
	s := Instrument(NewStore(), reg, "join")
	s.Put([]byte("a"), []byte("1"))
	s.Put([]byte("b"), []byte("2"))
	if v, ok := s.Get([]byte("a")); !ok || string(v) != "1" {
		t.Fatalf("get a = %q %v", v, ok)
	}
	if _, ok := s.Get([]byte("zz")); ok {
		t.Fatal("get zz should miss")
	}
	if got := len(s.Range(nil, nil, 0)); got != 2 {
		t.Fatalf("range returned %d entries", got)
	}
	if !s.Delete([]byte("a")) {
		t.Fatal("delete a should report present")
	}
	if s.Len() != 1 {
		t.Fatalf("len = %d", s.Len())
	}
	snap := reg.Snapshot()
	for name, want := range map[string]int64{
		"store.join.get-ns":    2,
		"store.join.put-ns":    2,
		"store.join.range-ns":  1,
		"store.join.delete-ns": 1,
	} {
		if got := snap.Histograms[name].Count; got != want {
			t.Errorf("%s count = %d, want %d", name, got, want)
		}
	}
}

// TestInstrumentedStoreZeroAllocs pins that the instrumentation layer adds
// no allocations of its own to the store access path (the skiplist Get
// itself is allocation-free for present keys).
func TestInstrumentedStoreZeroAllocs(t *testing.T) {
	reg := metrics.NewRegistry()
	s := Instrument(NewStore(), reg, "x")
	key, val := []byte("k"), []byte("v")
	s.Put(key, val)
	if allocs := testing.AllocsPerRun(1000, func() { s.Get(key) }); allocs != 0 {
		t.Errorf("instrumented Get: %.1f allocs/op, want 0", allocs)
	}
}

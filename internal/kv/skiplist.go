// Package kv implements the managed local key-value state store Samza gives
// each streaming task (§2 "Fault-tolerant Local State", §4.3, §4.4): an
// ordered byte-keyed store with range scans, optionally backed by a
// compacted Kafka changelog topic for restore-after-failure.
package kv

import (
	"bytes"
	"math/rand"
	"sync"
)

const maxHeight = 16

type skipNode struct {
	key   []byte
	value []byte
	next  [maxHeight]*skipNode
}

// skiplist is an ordered map from []byte to []byte, the in-memory engine
// behind Store. Reads and writes are O(log n); iteration is ordered.
type skiplist struct {
	head   *skipNode
	height int
	length int
	rng    *rand.Rand
}

func newSkiplist() *skiplist {
	return &skiplist{
		head:   &skipNode{},
		height: 1,
		// Deterministic seed: store behaviour must not vary across runs.
		rng: rand.New(rand.NewSource(0x5a3a)),
	}
}

func (s *skiplist) randomHeight() int {
	h := 1
	for h < maxHeight && s.rng.Intn(4) == 0 {
		h++
	}
	return h
}

// findGreaterOrEqual returns the first node with key >= key, recording the
// rightmost node before it at every level in prev (when prev != nil).
func (s *skiplist) findGreaterOrEqual(key []byte, prev *[maxHeight]*skipNode) *skipNode {
	x := s.head
	for level := s.height - 1; level >= 0; level-- {
		for x.next[level] != nil && bytes.Compare(x.next[level].key, key) < 0 {
			x = x.next[level]
		}
		if prev != nil {
			prev[level] = x
		}
	}
	return x.next[0]
}

func (s *skiplist) get(key []byte) ([]byte, bool) {
	n := s.findGreaterOrEqual(key, nil)
	if n != nil && bytes.Equal(n.key, key) {
		return n.value, true
	}
	return nil, false
}

func (s *skiplist) put(key, value []byte) {
	var prev [maxHeight]*skipNode
	for level := s.height; level < maxHeight; level++ {
		prev[level] = s.head
	}
	n := s.findGreaterOrEqual(key, &prev)
	if n != nil && bytes.Equal(n.key, key) {
		n.value = value
		return
	}
	h := s.randomHeight()
	if h > s.height {
		s.height = h
	}
	node := &skipNode{key: key, value: value}
	for level := 0; level < h; level++ {
		node.next[level] = prev[level].next[level]
		prev[level].next[level] = node
	}
	s.length++
}

func (s *skiplist) delete(key []byte) bool {
	var prev [maxHeight]*skipNode
	n := s.findGreaterOrEqual(key, &prev)
	if n == nil || !bytes.Equal(n.key, key) {
		return false
	}
	for level := 0; level < s.height; level++ {
		if prev[level].next[level] == n {
			prev[level].next[level] = n.next[level]
		}
	}
	for s.height > 1 && s.head.next[s.height-1] == nil {
		s.height--
	}
	s.length--
	return true
}

// Entry is one key-value pair returned by iteration.
type Entry struct {
	Key   []byte
	Value []byte
}

// rangeScan collects entries with start <= key < end. nil start means from
// the beginning, nil end means to the end; limit <= 0 means unlimited.
func (s *skiplist) rangeScan(start, end []byte, limit int) []Entry {
	var out []Entry
	var n *skipNode
	if start == nil {
		n = s.head.next[0]
	} else {
		n = s.findGreaterOrEqual(start, nil)
	}
	for n != nil {
		if end != nil && bytes.Compare(n.key, end) >= 0 {
			break
		}
		out = append(out, Entry{Key: n.key, Value: n.value})
		if limit > 0 && len(out) >= limit {
			break
		}
		n = n.next[0]
	}
	return out
}

// store is the mutex-guarded skiplist implementing Store.
type store struct {
	mu   sync.RWMutex
	list *skiplist
	// writes and reads count store operations, exposed for the paper's
	// observation that sliding-window throughput is KV-access bound (§5.1).
	writes int64
	reads  int64
}

// NewStore returns an empty ordered in-memory store.
func NewStore() Store {
	return &store{list: newSkiplist()}
}

// Store is the task-local state interface handed to operators.
type Store interface {
	// Get returns the value for key, or ok=false.
	Get(key []byte) (value []byte, ok bool)
	// Put inserts or replaces key. Key and value bytes are copied.
	Put(key, value []byte)
	// Delete removes key, reporting whether it was present.
	Delete(key []byte) bool
	// Range returns entries with start <= key < end (nil = unbounded),
	// at most limit (<=0 = all), in key order.
	Range(start, end []byte, limit int) []Entry
	// Len returns the number of live keys.
	Len() int
	// Stats returns cumulative (reads, writes).
	Stats() (reads, writes int64)
}

func (s *store) Get(key []byte) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.reads++
	return s.list.get(key)
}

func (s *store) Put(key, value []byte) {
	k := append([]byte(nil), key...)
	v := append([]byte(nil), value...)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.writes++
	s.list.put(k, v)
}

func (s *store) Delete(key []byte) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.writes++
	return s.list.delete(key)
}

func (s *store) Range(start, end []byte, limit int) []Entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.reads++
	return s.list.rangeScan(start, end, limit)
}

func (s *store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.list.length
}

func (s *store) Stats() (int64, int64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.reads, s.writes
}

package kv

import (
	"fmt"
	"time"

	"samzasql/internal/metrics"
)

// ObjectEncoder serializes a decoded state object back to store bytes. A
// cached store holding a deferred-encode entry calls it at flush or eviction
// time, so a value rewritten N times between commits is encoded once.
type ObjectEncoder func(obj any) ([]byte, error)

// ObjectCache is the extended store interface operators use to keep decoded
// state resident and skip per-tuple serde work. It is implemented by
// CachedStore; operators type-assert their Store and fall back to the plain
// byte path when the job runs with the cache disabled.
//
// Byte-level and object-level accessors share one coherent entry per key:
// PutObject supersedes earlier Put bytes and vice versa. Keys routed through
// Uncached bypass the cache entirely, so a given key space must use either
// the cached or the uncached path, never both.
type ObjectCache interface {
	Store
	Flushable
	// GetObject returns the memoized decoded object for key, if resident.
	GetObject(key []byte) (obj any, ok bool)
	// PutObject records obj as the authoritative value for key. Encoding is
	// deferred to flush/eviction via enc. The caller must not mutate obj
	// afterwards without calling PutObject again.
	PutObject(key []byte, obj any, enc ObjectEncoder)
	// GetObjectMany is the batched form of GetObject: it fills objs[i],
	// oks[i] for each keys[i], leaving misses for the caller to resolve
	// via GetMany plus its decoder.
	GetObjectMany(keys [][]byte, objs []any, oks []bool)
	// CacheObject memoizes the decoded form of the value just read with Get,
	// without dirtying the entry. It is a no-op if key is not resident.
	CacheObject(key []byte, obj any)
	// Uncached returns the store underneath the cache, for key spaces the
	// cache would not help (write-once keys that are range-scanned and
	// purged, never re-read point-wise).
	Uncached() Store
}

// cacheEntry is one key's cached state plus its LRU and dirty-batch linkage.
type cacheEntry struct {
	key   string
	value []byte        // encoded value; nil for tombstones and deferred encodes
	obj   any           // memoized decoded object, when known
	enc   ObjectEncoder // non-nil while value must be re-derived from obj
	// present distinguishes a live key from a negative entry / buffered
	// tombstone.
	present bool
	dirty   bool

	prev, next *cacheEntry // LRU list, most-recent first
}

// CachedStore wraps a Store with a bounded LRU cache of decoded values and a
// deduplicating write-behind batch, after Samza's CachedStore
// (object.cache.size / write.batch.size). Reads of hot keys skip the
// skiplist and the serde; repeated writes to one key between commits
// collapse to a single downstream Put — which, over a ChangelogStore, also
// means a single changelog record per key per commit interval.
//
// Writes are held in the cache (write-behind) until Flush, an eviction of a
// dirty entry, a range/len access (which must see them), or the dirty count
// reaching the batch cap. The container calls Flush at commit before the
// offset checkpoint, and Flush cascades to the wrapped store, so the
// store-flush -> changelog-flush -> offset-commit order holds through the
// whole stack. Like every task store, a CachedStore is single-goroutine.
type CachedStore struct {
	inner    Store
	entries  map[string]*cacheEntry
	lru      cacheEntry // sentinel; lru.next is most recent
	capacity int

	dirtyList  []*cacheEntry // flush order = first-dirtied order
	dirtyCount int
	batchCap   int

	// GetMany scratch, reused across calls so batched reads stay
	// allocation-free once warm.
	missKeys [][]byte
	missIdx  []int
	missVals [][]byte
	missOks  []bool

	// lenDirty notes Len()/Range() must write the batch through before
	// asking the inner store.
	hits, misses, evictions *metrics.Counter
	flushLat                *metrics.Histogram
}

// NewCachedStore wraps inner with an LRU of at most cacheSize entries and a
// write batch of at most batchSize dirty keys. cacheSize must be positive;
// batchSize <= 0 selects DefaultWriteBatchSize.
func NewCachedStore(inner Store, cacheSize, batchSize int) *CachedStore {
	if cacheSize <= 0 {
		panic("kv: cache size must be positive")
	}
	if batchSize <= 0 {
		batchSize = DefaultWriteBatchSize
	}
	c := &CachedStore{
		inner:    inner,
		entries:  make(map[string]*cacheEntry, cacheSize),
		capacity: cacheSize,
		batchCap: batchSize,
	}
	c.lru.prev = &c.lru
	c.lru.next = &c.lru
	return c
}

// BindMetrics registers cache hit/miss/eviction counters and a flush latency
// histogram under "store.<name>.cache.*". Handles are bound once; the access
// path pays one lock-free counter increment.
func (c *CachedStore) BindMetrics(reg *metrics.Registry, name string) {
	prefix := "store." + name + ".cache."
	c.hits = reg.Counter(prefix + "hits")
	c.misses = reg.Counter(prefix + "misses")
	c.evictions = reg.Counter(prefix + "evictions")
	c.flushLat = reg.Histogram(prefix + "flush-ns")
}

// Uncached returns the wrapped store.
func (c *CachedStore) Uncached() Store { return c.inner }

func (c *CachedStore) touch(e *cacheEntry) {
	if c.lru.next == e {
		return
	}
	if e.prev != nil { // already linked: unlink first
		e.prev.next = e.next
		e.next.prev = e.prev
	}
	e.prev = &c.lru
	e.next = c.lru.next
	c.lru.next.prev = e
	c.lru.next = e
}

// insert links a new entry at the LRU front, evicting from the tail when
// over capacity. Evicting a dirty entry writes it through to the inner store
// first so a later cache miss on that key cannot read a stale value.
func (c *CachedStore) insert(e *cacheEntry) {
	c.entries[e.key] = e
	c.touch(e)
	for len(c.entries) > c.capacity {
		tail := c.lru.prev
		if tail == &c.lru {
			return
		}
		if tail.dirty {
			c.writeThrough(tail)
			tail.dirty = false
			c.dirtyCount--
		}
		tail.prev.next = tail.next
		tail.next.prev = tail.prev
		tail.prev, tail.next = nil, nil
		delete(c.entries, tail.key)
		if c.evictions != nil {
			c.evictions.Inc()
		}
	}
}

// writeThrough pushes one entry's buffered write to the inner store,
// encoding a deferred object first. Encode failures are programming errors
// on the state path (the same object encoded fine before) and panic, as the
// byte Store interface has no error channel.
func (c *CachedStore) writeThrough(e *cacheEntry) {
	if !e.present {
		c.inner.Delete([]byte(e.key))
		return
	}
	c.encodeEntry(e)
	c.inner.Put([]byte(e.key), e.value)
}

func (c *CachedStore) encodeEntry(e *cacheEntry) {
	if e.enc == nil {
		return
	}
	b, err := e.enc(e.obj)
	if err != nil {
		panic(fmt.Sprintf("kv: cached store encode %q: %v", e.key, err))
	}
	e.value = b
	e.enc = nil
}

// markDirty queues e for the next batch write, flushing the batch early when
// it reaches the write-batch cap.
func (c *CachedStore) markDirty(e *cacheEntry) {
	if !e.dirty {
		e.dirty = true
		c.dirtyList = append(c.dirtyList, e)
		c.dirtyCount++
	}
	if c.dirtyCount >= c.batchCap {
		c.flushBatch()
	}
}

// flushBatch writes every dirty entry through to the inner store, in
// first-dirtied order, and resets the batch. It does not flush the inner
// store; Flush does that.
func (c *CachedStore) flushBatch() {
	for _, e := range c.dirtyList {
		if !e.dirty {
			continue // written through at eviction
		}
		c.writeThrough(e)
		e.dirty = false
	}
	c.dirtyList = c.dirtyList[:0]
	c.dirtyCount = 0
}

// Flush writes the dirty batch through and then flushes the wrapped store
// (for a changelog-backed stack, producing the buffered changelog batch).
// The container calls it at commit, before the offset checkpoint.
func (c *CachedStore) Flush() error {
	t0 := time.Now()
	c.flushBatch()
	if f, ok := c.inner.(Flushable); ok {
		if err := f.Flush(); err != nil {
			return err
		}
	}
	if c.flushLat != nil {
		c.flushLat.Observe(time.Since(t0).Nanoseconds())
	}
	return nil
}

// Get serves hot keys from the cache; misses fall through to the inner
// store and are cached, including negative results (absent keys), which
// stream-relation join probes hit constantly.
//
//samzasql:hotpath
func (c *CachedStore) Get(key []byte) ([]byte, bool) {
	if e, ok := c.entries[string(key)]; ok { // no alloc: map lookup special case
		c.touch(e)
		if c.hits != nil {
			c.hits.Inc()
		}
		if !e.present {
			return nil, false
		}
		c.encodeEntry(e)
		return e.value, true
	}
	if c.misses != nil {
		c.misses.Inc()
	}
	//samzasql:ignore hotpath-blocking -- the task store mutex is per-task single-writer and uncontended by design; skiplist access under it is the state-access contract
	v, ok := c.inner.Get(key)
	//samzasql:ignore hotpath-blocking -- write-through to the changelog is the durability contract; the flush path's broker append lock is per-partition and the io.Write is an in-memory FNV hash
	c.insert(&cacheEntry{key: string(key), value: v, present: ok})
	return v, ok
}

// Put buffers the write in the cache; the inner store sees it at the next
// batch write. The value is copied, matching the inner store's contract.
//
//samzasql:hotpath
func (c *CachedStore) Put(key, value []byte) {
	v := append([]byte(nil), value...)
	if e, ok := c.entries[string(key)]; ok {
		e.value = v
		e.obj = nil
		e.enc = nil
		e.present = true
		c.touch(e)
		//samzasql:ignore hotpath-blocking -- write-through to the changelog is the durability contract; the flush path's broker append lock is per-partition and the io.Write is an in-memory FNV hash
		c.markDirty(e)
		return
	}
	e := &cacheEntry{key: string(key), value: v, present: true}
	//samzasql:ignore hotpath-blocking -- write-through to the changelog is the durability contract; the flush path's broker append lock is per-partition and the io.Write is an in-memory FNV hash
	c.insert(e)
	//samzasql:ignore hotpath-blocking -- write-through to the changelog is the durability contract; the flush path's broker append lock is per-partition and the io.Write is an in-memory FNV hash
	c.markDirty(e)
}

// PutObject buffers a decoded object as the key's value, deferring encoding
// to flush or eviction. Rewriting a hot key N times per commit costs N cache
// stores but only one encode and one downstream Put.
//
//samzasql:hotpath
func (c *CachedStore) PutObject(key []byte, obj any, enc ObjectEncoder) {
	if e, ok := c.entries[string(key)]; ok {
		e.value = nil
		e.obj = obj
		e.enc = enc
		e.present = true
		c.touch(e)
		//samzasql:ignore hotpath-blocking -- write-through to the changelog is the durability contract; the flush path's broker append lock is per-partition and the io.Write is an in-memory FNV hash
		c.markDirty(e)
		return
	}
	e := &cacheEntry{key: string(key), obj: obj, enc: enc, present: true}
	//samzasql:ignore hotpath-blocking -- write-through to the changelog is the durability contract; the flush path's broker append lock is per-partition and the io.Write is an in-memory FNV hash
	c.insert(e)
	//samzasql:ignore hotpath-blocking -- write-through to the changelog is the durability contract; the flush path's broker append lock is per-partition and the io.Write is an in-memory FNV hash
	c.markDirty(e)
}

// GetObject returns the memoized decoded object for key, when resident.
//
//samzasql:hotpath
func (c *CachedStore) GetObject(key []byte) (any, bool) {
	e, ok := c.entries[string(key)]
	if !ok || !e.present || e.obj == nil {
		if c.misses != nil {
			c.misses.Inc()
		}
		return nil, false
	}
	c.touch(e)
	if c.hits != nil {
		c.hits.Inc()
	}
	return e.obj, true
}

// CacheObject attaches the decoded form to a resident entry without marking
// it dirty: the bytes already in the store stay authoritative. Callers
// invoke it right after decoding a Get result.
func (c *CachedStore) CacheObject(key []byte, obj any) {
	if e, ok := c.entries[string(key)]; ok && e.present {
		e.obj = obj
	}
}

// Delete buffers a tombstone. The presence report consults the cache first
// and only probes the inner store for unknown keys.
func (c *CachedStore) Delete(key []byte) bool {
	if e, ok := c.entries[string(key)]; ok {
		was := e.present
		e.value = nil
		e.obj = nil
		e.enc = nil
		e.present = false
		c.touch(e)
		c.markDirty(e)
		return was
	}
	_, was := c.inner.Get(key)
	e := &cacheEntry{key: string(key)}
	c.insert(e)
	c.markDirty(e)
	return was
}

// Range writes the dirty batch through first — a scan must observe buffered
// writes — then scans the inner store. Key spaces that are scanned per tuple
// should use Uncached instead, or the flush defeats write batching.
func (c *CachedStore) Range(start, end []byte, limit int) []Entry {
	c.flushBatch()
	return c.inner.Range(start, end, limit)
}

// Len writes the dirty batch through and reports the inner store's size.
func (c *CachedStore) Len() int {
	c.flushBatch()
	return c.inner.Len()
}

// Stats reports the inner store's cumulative reads and writes. Cache
// absorption shows up as these growing slower than tuple counts.
func (c *CachedStore) Stats() (reads, writes int64) { return c.inner.Stats() }

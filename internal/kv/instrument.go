package kv

import (
	"time"

	"samzasql/internal/metrics"
)

// instrumentedStore wraps a Store with per-operation latency histograms.
// The handles are bound once at construction, so each operation costs two
// monotonic clock reads and one lock-free Observe on top of the wrapped
// store — no allocations, no registry lookups on the access path. The
// paper's §5.1 observation that window/join throughput is KV-access bound
// is exactly what these histograms make visible.
type instrumentedStore struct {
	raw                      Store
	getLat, putLat, rangeLat *metrics.Histogram
	deleteLat, flushLat      *metrics.Histogram
}

// Instrument wraps s so that get/put/delete/range latencies are recorded
// into reg under "store.<name>.<op>-ns". Wrapping an already-instrumented
// store layers a second set of timings; callers wrap once, at the point the
// store is handed to tasks.
func Instrument(s Store, reg *metrics.Registry, name string) Store {
	prefix := "store." + name + "."
	return &instrumentedStore{
		raw:       s,
		getLat:    reg.Histogram(prefix + "get-ns"),
		putLat:    reg.Histogram(prefix + "put-ns"),
		rangeLat:  reg.Histogram(prefix + "range-ns"),
		deleteLat: reg.Histogram(prefix + "delete-ns"),
		flushLat:  reg.Histogram(prefix + "flush-ns"),
	}
}

func (s *instrumentedStore) Get(key []byte) ([]byte, bool) {
	start := time.Now()
	v, ok := s.raw.Get(key)
	s.getLat.Observe(time.Since(start).Nanoseconds())
	return v, ok
}

func (s *instrumentedStore) Put(key, value []byte) {
	start := time.Now()
	s.raw.Put(key, value)
	s.putLat.Observe(time.Since(start).Nanoseconds())
}

func (s *instrumentedStore) Delete(key []byte) bool {
	start := time.Now()
	ok := s.raw.Delete(key)
	s.deleteLat.Observe(time.Since(start).Nanoseconds())
	return ok
}

func (s *instrumentedStore) Range(start, end []byte, limit int) []Entry {
	t0 := time.Now()
	out := s.raw.Range(start, end, limit)
	s.rangeLat.Observe(time.Since(t0).Nanoseconds())
	return out
}

// Flush forwards to the wrapped store's Flush when it buffers writes (a
// ChangelogStore producing its batch), timing it; otherwise it is a no-op,
// so an instrumented stack is always safely Flushable.
func (s *instrumentedStore) Flush() error {
	f, ok := s.raw.(Flushable)
	if !ok {
		return nil
	}
	start := time.Now()
	err := f.Flush()
	s.flushLat.Observe(time.Since(start).Nanoseconds())
	return err
}

func (s *instrumentedStore) Len() int { return s.raw.Len() }

func (s *instrumentedStore) Stats() (reads, writes int64) { return s.raw.Stats() }

package kv

import (
	"time"

	"samzasql/internal/metrics"
	"samzasql/internal/trace"
)

// instrumentedStore wraps a Store with per-operation latency histograms.
// The handles are bound once at construction, so each operation costs two
// monotonic clock reads and one lock-free Observe on top of the wrapped
// store — no allocations, no registry lookups on the access path. The
// paper's §5.1 observation that window/join throughput is KV-access bound
// is exactly what these histograms make visible.
//
// When a tracing cursor is bound (BindTrace) and the current message is
// sampled, each operation additionally records a trace leaf span from the
// same timing — the store/changelog leg of the message's span tree. The
// stage strings are precomputed here so the sampled path allocates nothing.
type instrumentedStore struct {
	raw                      Store
	getLat, putLat, rangeLat *metrics.Histogram
	deleteLat, flushLat      *metrics.Histogram

	act *trace.Active
	getStage, putStage, rangeStage,
	deleteStage, flushStage, getManyStage string
}

// Instrument wraps s so that get/put/delete/range latencies are recorded
// into reg under "store.<name>.<op>-ns". Wrapping an already-instrumented
// store layers a second set of timings; callers wrap once, at the point the
// store is handed to tasks.
func Instrument(s Store, reg *metrics.Registry, name string) Store {
	prefix := "store." + name + "."
	return &instrumentedStore{
		raw:          s,
		getLat:       reg.Histogram(prefix + "get-ns"),
		putLat:       reg.Histogram(prefix + "put-ns"),
		rangeLat:     reg.Histogram(prefix + "range-ns"),
		deleteLat:    reg.Histogram(prefix + "delete-ns"),
		flushLat:     reg.Histogram(prefix + "flush-ns"),
		getStage:     prefix + "get",
		putStage:     prefix + "put",
		rangeStage:   prefix + "range",
		deleteStage:  prefix + "delete",
		flushStage:   prefix + "flush",
		getManyStage: prefix + "get-many",
	}
}

// BindTrace attaches a tracing cursor to an instrumented store so its
// operations record trace leaf spans for sampled messages. A no-op on
// stores that are not the Instrument wrapper; safe to call before the
// store serves traffic (binding is not synchronized).
func BindTrace(s Store, act *trace.Active) {
	if is, ok := s.(*instrumentedStore); ok {
		is.act = act
	}
}

func (s *instrumentedStore) Get(key []byte) ([]byte, bool) {
	start := time.Now()
	v, ok := s.raw.Get(key)
	d := time.Since(start).Nanoseconds()
	s.getLat.Observe(d)
	if s.act.Sampled() {
		s.act.Leaf(s.getStage, start.UnixNano(), d)
	}
	return v, ok
}

// GetMany times the whole batch as one observation — the point of the
// batched path is exactly that the per-operation overhead (clock reads,
// histogram update, trace leaf) is paid once per block, so instrumenting
// it per key would reintroduce the tax being measured away.
//
//samzasql:hotpath
func (s *instrumentedStore) GetMany(keys [][]byte, vals [][]byte, oks []bool) {
	start := time.Now()
	GetMany(s.raw, keys, vals, oks)
	d := time.Since(start).Nanoseconds()
	s.getLat.Observe(d)
	if s.act.Sampled() {
		s.act.Leaf(s.getManyStage, start.UnixNano(), d)
	}
}

func (s *instrumentedStore) Put(key, value []byte) {
	start := time.Now()
	s.raw.Put(key, value)
	d := time.Since(start).Nanoseconds()
	s.putLat.Observe(d)
	if s.act.Sampled() {
		s.act.Leaf(s.putStage, start.UnixNano(), d)
	}
}

func (s *instrumentedStore) Delete(key []byte) bool {
	start := time.Now()
	ok := s.raw.Delete(key)
	d := time.Since(start).Nanoseconds()
	s.deleteLat.Observe(d)
	if s.act.Sampled() {
		s.act.Leaf(s.deleteStage, start.UnixNano(), d)
	}
	return ok
}

func (s *instrumentedStore) Range(start, end []byte, limit int) []Entry {
	t0 := time.Now()
	out := s.raw.Range(start, end, limit)
	d := time.Since(t0).Nanoseconds()
	s.rangeLat.Observe(d)
	if s.act.Sampled() {
		s.act.Leaf(s.rangeStage, t0.UnixNano(), d)
	}
	return out
}

// Flush forwards to the wrapped store's Flush when it buffers writes (a
// ChangelogStore producing its batch), timing it; otherwise it is a no-op,
// so an instrumented stack is always safely Flushable. Flushes run inside
// the commit, so a sampled flush span nests under the commit span.
func (s *instrumentedStore) Flush() error {
	f, ok := s.raw.(Flushable)
	if !ok {
		return nil
	}
	start := time.Now()
	err := f.Flush()
	d := time.Since(start).Nanoseconds()
	s.flushLat.Observe(d)
	if s.act.Sampled() {
		s.act.Leaf(s.flushStage, start.UnixNano(), d)
	}
	return err
}

func (s *instrumentedStore) Len() int { return s.raw.Len() }

func (s *instrumentedStore) Stats() (reads, writes int64) { return s.raw.Stats() }

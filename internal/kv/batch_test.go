package kv

import (
	"fmt"
	"testing"
)

// plainStore hides the batched fast path: the embedded interface only
// promotes Store's methods, so kv.GetMany must fall back to per-key Get.
type plainStore struct{ Store }

func TestGetManyFallsBackToPerKeyGet(t *testing.T) {
	inner := NewStore()
	inner.Put([]byte("a"), []byte("1"))
	inner.Put([]byte("c"), []byte("3"))
	s := plainStore{inner}
	if _, ok := any(s).(BatchReader); ok {
		t.Fatal("wrapper unexpectedly exposes GetMany; fallback path untested")
	}
	keys := [][]byte{[]byte("a"), []byte("b"), []byte("c")}
	vals := make([][]byte, len(keys))
	oks := make([]bool, len(keys))
	GetMany(s, keys, vals, oks)
	if !oks[0] || string(vals[0]) != "1" || oks[1] || !oks[2] || string(vals[2]) != "3" {
		t.Fatalf("fallback results: vals=%q oks=%v", vals, oks)
	}
}

func TestStoreGetManyMatchesGet(t *testing.T) {
	s := NewStore()
	for i := 0; i < 10; i++ {
		s.Put([]byte(fmt.Sprintf("k%d", i)), []byte(fmt.Sprintf("v%d", i)))
	}
	keys := [][]byte{[]byte("k3"), []byte("nope"), []byte("k7"), []byte("k3")}
	vals := make([][]byte, len(keys))
	oks := make([]bool, len(keys))
	s.(BatchReader).GetMany(keys, vals, oks)
	for i, k := range keys {
		wv, wok := s.Get(k)
		if oks[i] != wok || string(vals[i]) != string(wv) {
			t.Fatalf("key %q: batched (%q,%v) vs scalar (%q,%v)", k, vals[i], oks[i], wv, wok)
		}
	}
	// The batch counts as one read per key in the store stats.
	reads, _ := s.Stats()
	if reads != int64(4+len(keys)) {
		t.Fatalf("reads=%d, want %d", reads, 4+len(keys))
	}
}

func TestCachedStoreGetManyHitMissMix(t *testing.T) {
	inner := NewStore()
	inner.Put([]byte("hot"), []byte("H"))
	inner.Put([]byte("cold"), []byte("C"))
	c := NewCachedStore(inner, 8, 0)
	// Warm one positive and one negative entry.
	if _, ok := c.Get([]byte("hot")); !ok {
		t.Fatal("warm read failed")
	}
	if _, ok := c.Get([]byte("ghost")); ok {
		t.Fatal("phantom key")
	}
	readsBefore, _ := inner.Stats()

	keys := [][]byte{
		[]byte("hot"),   // positive hit
		[]byte("ghost"), // negative hit: absent, served without an inner read
		[]byte("cold"),  // miss: filled from the inner store
		[]byte("void"),  // miss: absent below too
		[]byte("hot"),   // repeated hit
	}
	vals := make([][]byte, len(keys))
	oks := make([]bool, len(keys))
	c.GetMany(keys, vals, oks)
	if !oks[0] || string(vals[0]) != "H" || !oks[4] || string(vals[4]) != "H" {
		t.Fatalf("hit results: %q %v", vals, oks)
	}
	if oks[1] || vals[1] != nil {
		t.Fatalf("negative entry leaked a value: %q %v", vals[1], oks[1])
	}
	if !oks[2] || string(vals[2]) != "C" || oks[3] {
		t.Fatalf("miss results: %q %v", vals, oks)
	}
	// Only the two cold keys reached the inner store, in one batched read.
	readsAfter, _ := inner.Stats()
	if readsAfter-readsBefore != 2 {
		t.Fatalf("inner reads for the batch: %d, want 2", readsAfter-readsBefore)
	}
	// The misses were inserted like Get would insert them: both (including
	// the absent one, as a negative entry) now serve without inner reads.
	if v, ok := c.Get([]byte("cold")); !ok || string(v) != "C" {
		t.Fatalf("miss not cached: %q %v", v, ok)
	}
	if _, ok := c.Get([]byte("void")); ok {
		t.Fatal("absent key resurrected")
	}
	if r, _ := inner.Stats(); r != readsAfter {
		t.Fatalf("post-batch scalar reads went to the inner store (%d -> %d)", readsAfter, r)
	}
}

// TestCachedStoreGetManySeesUncommittedWrites drives the batched read over a
// write-behind dirty batch: buffered Puts, a buffered deferred-encode
// PutObject, and a buffered tombstone must all be visible before any flush
// reaches the inner store.
func TestCachedStoreGetManySeesUncommittedWrites(t *testing.T) {
	inner := NewStore()
	inner.Put([]byte("doomed"), []byte("old"))
	inner.Put([]byte("stale"), []byte("old"))
	c := NewCachedStore(inner, 16, 100) // large batch: nothing auto-flushes
	c.Put([]byte("plain"), []byte("new"))
	c.Put([]byte("stale"), []byte("new")) // overwrite shadows the inner value
	enc := func(obj any) ([]byte, error) { return []byte(obj.(string)), nil }
	c.PutObject([]byte("obj"), "decoded", ObjectEncoder(enc))
	c.Delete([]byte("doomed"))

	_, writesBefore := inner.Stats()
	if writesBefore != 2 {
		t.Fatalf("writes flushed early: %d", writesBefore)
	}
	keys := [][]byte{[]byte("plain"), []byte("stale"), []byte("obj"), []byte("doomed")}
	vals := make([][]byte, len(keys))
	oks := make([]bool, len(keys))
	c.GetMany(keys, vals, oks)
	if !oks[0] || string(vals[0]) != "new" {
		t.Fatalf("buffered put invisible: %q %v", vals[0], oks[0])
	}
	if !oks[1] || string(vals[1]) != "new" {
		t.Fatalf("buffered overwrite lost to inner value: %q %v", vals[1], oks[1])
	}
	// The deferred-encode entry must be materialized on read, exactly once.
	if !oks[2] || string(vals[2]) != "decoded" {
		t.Fatalf("deferred-encode object not materialized: %q %v", vals[2], oks[2])
	}
	if oks[3] {
		t.Fatalf("buffered tombstone invisible: read %q", vals[3])
	}
	// Reads never forced the dirty batch through.
	if _, writes := inner.Stats(); writes != writesBefore {
		t.Fatalf("batched read flushed writes (%d -> %d)", writesBefore, writes)
	}
}

// TestCachedStoreGetManyEvictionMidBatch reads more distinct cold keys than
// the cache holds: inserting each miss evicts an earlier one mid-batch, and
// every already-filled result slot must survive the unlinking.
func TestCachedStoreGetManyEvictionMidBatch(t *testing.T) {
	inner := NewStore()
	const n = 6
	keys := make([][]byte, n)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("k%d", i))
		inner.Put(keys[i], []byte(fmt.Sprintf("v%d", i)))
	}
	c := NewCachedStore(inner, 2, 0) // capacity far below the batch's key count
	vals := make([][]byte, n)
	oks := make([]bool, n)
	c.GetMany(keys, vals, oks)
	for i := range keys {
		if !oks[i] || string(vals[i]) != fmt.Sprintf("v%d", i) {
			t.Fatalf("slot %d corrupted by mid-batch eviction: %q %v", i, vals[i], oks[i])
		}
	}
	// The survivors still answer correctly after the churn.
	for i := range keys {
		if v, ok := c.Get(keys[i]); !ok || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("key %d after eviction churn: %q %v", i, v, ok)
		}
	}
}

func TestCachedStoreGetObjectManyResidentOnly(t *testing.T) {
	inner := NewStore()
	inner.Put([]byte("bytesOnly"), []byte("raw"))
	c := NewCachedStore(inner, 8, 100)
	enc := func(obj any) ([]byte, error) { return []byte(obj.(string)), nil }
	c.PutObject([]byte("a"), "objA", ObjectEncoder(enc))
	c.Get([]byte("bytesOnly")) // resident, but bytes-only: no decoded object
	c.CacheObject([]byte("bytesOnly"), "decodedB")

	keys := [][]byte{[]byte("a"), []byte("bytesOnly"), []byte("coldKey")}
	objs := make([]any, len(keys))
	oks := make([]bool, len(keys))
	c.GetObjectMany(keys, objs, oks)
	if !oks[0] || objs[0] != "objA" {
		t.Fatalf("dirty object not served: %v %v", objs[0], oks[0])
	}
	if !oks[1] || objs[1] != "decodedB" {
		t.Fatalf("memoized object not served: %v %v", objs[1], oks[1])
	}
	if oks[2] || objs[2] != nil {
		t.Fatalf("non-resident key fabricated an object: %v %v", objs[2], oks[2])
	}
	// GetObjectMany never touches the inner store: misses are the caller's.
	if reads, _ := inner.Stats(); reads != 1 {
		t.Fatalf("inner reads = %d, want 1 (the warming Get only)", reads)
	}
}

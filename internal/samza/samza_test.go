package samza

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"samzasql/internal/kafka"
	"samzasql/internal/yarn"
)

// testEnv bundles a broker and a one-node cluster.
func testEnv() (*kafka.Broker, *JobRunner) {
	b := kafka.NewBroker()
	c := yarn.NewCluster()
	c.AddNode("n1", yarn.Resource{VCores: 64, MemoryMB: 1 << 20})
	c.AddNode("n2", yarn.Resource{VCores: 64, MemoryMB: 1 << 20})
	return b, NewJobRunner(b, c)
}

// passthroughTask copies every input message to an output topic.
type passthroughTask struct {
	out string
}

func (t *passthroughTask) Init(ctx *TaskContext) error { return nil }

func (t *passthroughTask) Process(env IncomingMessageEnvelope, c MessageCollector, _ Coordinator) error {
	return c.Send(OutgoingMessageEnvelope{
		Stream:    t.out,
		Partition: env.Partition,
		Key:       env.Key,
		Value:     env.Value,
		Timestamp: env.Timestamp,
	})
}

func produceN(t *testing.T, b *kafka.Broker, topic string, partition int32, n int, prefix string) {
	t.Helper()
	for i := 0; i < n; i++ {
		_, err := b.Produce(topic, kafka.Message{
			Partition: partition,
			Key:       []byte(fmt.Sprintf("%s-%d", prefix, i)),
			Value:     []byte(fmt.Sprintf("%s-v%d", prefix, i)),
			Timestamp: int64(i),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

// drainTopic reads everything currently in a topic.
func drainTopic(t *testing.T, b *kafka.Broker, topic string) []kafka.Message {
	t.Helper()
	n, err := b.Partitions(topic)
	if err != nil {
		t.Fatal(err)
	}
	var out []kafka.Message
	for p := int32(0); p < n; p++ {
		tp := kafka.TopicPartition{Topic: topic, Partition: p}
		hwm, _ := b.HighWatermark(tp)
		off, _ := b.StartOffset(tp)
		for off < hwm {
			msgs, wait, err := b.Fetch(tp, off, 1024)
			if err != nil {
				t.Fatal(err)
			}
			if wait != nil {
				break
			}
			out = append(out, msgs...)
			off = msgs[len(msgs)-1].Offset + 1
		}
	}
	return out
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestJobSpecValidate(t *testing.T) {
	factory := func() StreamTask { return &passthroughTask{} }
	cases := []struct {
		name string
		spec JobSpec
		want string
	}{
		{"no name", JobSpec{Inputs: []StreamSpec{{Topic: "a"}}, TaskFactory: factory}, "name"},
		{"no inputs", JobSpec{Name: "j", TaskFactory: factory}, "inputs"},
		{"no factory", JobSpec{Name: "j", Inputs: []StreamSpec{{Topic: "a"}}}, "factory"},
		{"dup input", JobSpec{Name: "j", Inputs: []StreamSpec{{Topic: "a"}, {Topic: "a"}}, TaskFactory: factory}, "twice"},
		{"dup store", JobSpec{Name: "j", Inputs: []StreamSpec{{Topic: "a"}}, TaskFactory: factory,
			Stores: []StoreSpec{{Name: "s"}, {Name: "s"}}}, "twice"},
	}
	for _, tc := range cases {
		err := tc.spec.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestPlanAssignmentGroupsByPartition(t *testing.T) {
	b := kafka.NewBroker()
	if err := b.CreateTopic("in", kafka.TopicConfig{Partitions: 8}); err != nil {
		t.Fatal(err)
	}
	job := &JobSpec{Name: "j", Inputs: []StreamSpec{{Topic: "in"}}, Containers: 3,
		TaskFactory: func() StreamTask { return &passthroughTask{} }}
	a, err := planAssignment(b, job)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.taskPartitions) != 8 {
		t.Fatalf("%d tasks, want 8", len(a.taskPartitions))
	}
	if len(a.containerTasks) != 3 {
		t.Fatalf("%d containers, want 3", len(a.containerTasks))
	}
	// Every task appears exactly once.
	seen := map[int]bool{}
	for _, tasks := range a.containerTasks {
		for _, ti := range tasks {
			if seen[ti] {
				t.Fatalf("task %d assigned twice", ti)
			}
			seen[ti] = true
		}
	}
	if len(seen) != 8 {
		t.Fatalf("assigned %d tasks", len(seen))
	}
}

func TestPlanAssignmentRejectsMismatchedInputs(t *testing.T) {
	b := kafka.NewBroker()
	if err := b.CreateTopic("a", kafka.TopicConfig{Partitions: 4}); err != nil {
		t.Fatal(err)
	}
	if err := b.CreateTopic("bb", kafka.TopicConfig{Partitions: 8}); err != nil {
		t.Fatal(err)
	}
	job := &JobSpec{Name: "j", Inputs: []StreamSpec{{Topic: "a"}, {Topic: "bb"}},
		TaskFactory: func() StreamTask { return &passthroughTask{} }}
	if _, err := planAssignment(b, job); err == nil || !strings.Contains(err.Error(), "disagree") {
		t.Fatalf("mismatched partitions: %v", err)
	}
}

func TestPlanAssignmentClampsContainers(t *testing.T) {
	b := kafka.NewBroker()
	if err := b.CreateTopic("in", kafka.TopicConfig{Partitions: 2}); err != nil {
		t.Fatal(err)
	}
	job := &JobSpec{Name: "j", Inputs: []StreamSpec{{Topic: "in"}}, Containers: 10,
		TaskFactory: func() StreamTask { return &passthroughTask{} }}
	a, err := planAssignment(b, job)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.containerTasks) != 2 {
		t.Fatalf("%d containers for 2 partitions", len(a.containerTasks))
	}
}

func TestEndToEndPassthrough(t *testing.T) {
	b, r := testEnv()
	for _, topic := range []string{"in", "out"} {
		if err := b.CreateTopic(topic, kafka.TopicConfig{Partitions: 4}); err != nil {
			t.Fatal(err)
		}
	}
	for p := int32(0); p < 4; p++ {
		produceN(t, b, "in", p, 25, fmt.Sprintf("p%d", p))
	}
	job := &JobSpec{
		Name:        "passthrough",
		Inputs:      []StreamSpec{{Topic: "in"}},
		Containers:  2,
		TaskFactory: func() StreamTask { return &passthroughTask{out: "out"} },
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rj, err := r.Submit(ctx, job)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool {
		return len(drainTopic(t, b, "out")) == 100
	}, "100 output messages")
	rj.Stop()

	out := drainTopic(t, b, "out")
	if len(out) != 100 {
		t.Fatalf("%d output messages, want 100", len(out))
	}
	// Partition affinity: input partition p lands in output partition p.
	counts := map[int32]int{}
	for _, m := range out {
		counts[m.Partition]++
		wantPrefix := fmt.Sprintf("p%d-", m.Partition)
		if !strings.HasPrefix(string(m.Key), wantPrefix) {
			t.Fatalf("message %q in partition %d", m.Key, m.Partition)
		}
	}
	for p := int32(0); p < 4; p++ {
		if counts[p] != 25 {
			t.Fatalf("partition %d has %d messages", p, counts[p])
		}
	}
	snap := rj.MetricsSnapshot()
	if snap.Counters["messages-processed"] != 100 || snap.Counters["messages-sent"] != 100 {
		t.Fatalf("metrics %v", snap)
	}
}

// countingTask records how many messages it processed and optionally crashes.
type countingTask struct {
	mu        *sync.Mutex
	seen      map[string]int
	crashAt   int // crash (once) when this many total messages seen; 0=never
	crashed   *atomic.Bool
	processed *atomic.Int64
}

func (t *countingTask) Init(ctx *TaskContext) error { return nil }

func (t *countingTask) Process(env IncomingMessageEnvelope, c MessageCollector, _ Coordinator) error {
	t.mu.Lock()
	t.seen[string(env.Key)]++
	t.mu.Unlock()
	n := t.processed.Add(1)
	if t.crashAt > 0 && n == int64(t.crashAt) && t.crashed.CompareAndSwap(false, true) {
		return errors.New("injected task failure")
	}
	return nil
}

func TestCheckpointResumeAfterCrash(t *testing.T) {
	b, r := testEnv()
	if err := b.CreateTopic("in", kafka.TopicConfig{Partitions: 1}); err != nil {
		t.Fatal(err)
	}
	produceN(t, b, "in", 0, 100, "m")

	var mu sync.Mutex
	seen := map[string]int{}
	var crashed atomic.Bool
	var processed atomic.Int64
	job := &JobSpec{
		Name:        "resume",
		Inputs:      []StreamSpec{{Topic: "in"}},
		CommitEvery: 10,
		MaxRestarts: 2,
		TaskFactory: func() StreamTask {
			return &countingTask{mu: &mu, seen: seen, crashAt: 50, crashed: &crashed, processed: &processed}
		},
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rj, err := r.Submit(ctx, job)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		complete := true
		for i := 0; i < 100; i++ {
			if seen[fmt.Sprintf("m-%d", i)] == 0 {
				complete = false
				break
			}
		}
		return complete
	}, "all 100 messages processed across crash")
	rj.Stop()

	if !crashed.Load() {
		t.Fatal("crash was never injected")
	}
	mu.Lock()
	defer mu.Unlock()
	// At-least-once: everything seen; replay window bounded by CommitEvery.
	replayed := 0
	for _, n := range seen {
		if n > 1 {
			replayed++
		}
	}
	if replayed > 20 {
		t.Fatalf("replayed %d messages; checkpoint resume not working", replayed)
	}
}

// statefulTask counts per-key occurrences in a changelog-backed store.
type statefulTask struct{}

func (t *statefulTask) Init(ctx *TaskContext) error { return nil }

func (t *statefulTask) Process(env IncomingMessageEnvelope, c MessageCollector, _ Coordinator) error {
	return nil
}

func TestStateRestoreFromChangelog(t *testing.T) {
	b, r := testEnv()
	if err := b.CreateTopic("in", kafka.TopicConfig{Partitions: 1}); err != nil {
		t.Fatal(err)
	}
	produceN(t, b, "in", 0, 60, "k")

	// Task increments a store counter per message and crashes midway.
	var crashed atomic.Bool
	var restoredLen atomic.Int64
	type counterTask struct {
		ctx  *TaskContext
		n    int
		pass int
	}
	_ = counterTask{}

	job := &JobSpec{
		Name:        "stateful",
		Inputs:      []StreamSpec{{Topic: "in"}},
		Stores:      []StoreSpec{{Name: "counts", Changelog: true}},
		CommitEvery: 10,
		MaxRestarts: 2,
		TaskFactory: func() StreamTask {
			return &storeCrashTask{crashed: &crashed, restoredLen: &restoredLen}
		},
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rj, err := r.Submit(ctx, job)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool { return restoredLen.Load() > 0 }, "task restart with restored state")
	rj.Stop()
	if got := restoredLen.Load(); got < 20 || got > 60 {
		t.Fatalf("restored store had %d keys; changelog restore broken", got)
	}
}

// storeCrashTask writes each key to its store, crashes at message 30, and on
// restart records how many keys the restored store holds.
type storeCrashTask struct {
	ctx         *TaskContext
	n           int
	crashed     *atomic.Bool
	restoredLen *atomic.Int64
}

func (t *storeCrashTask) Init(ctx *TaskContext) error {
	t.ctx = ctx
	if t.crashed.Load() {
		t.restoredLen.Store(int64(ctx.Store("counts").Len()))
	}
	return nil
}

func (t *storeCrashTask) Process(env IncomingMessageEnvelope, c MessageCollector, _ Coordinator) error {
	t.ctx.Store("counts").Put(env.Key, env.Value)
	t.n++
	if t.n == 30 && t.crashed.CompareAndSwap(false, true) {
		return errors.New("injected failure after 30 writes")
	}
	return nil
}

// bootstrapProbeTask records the order in which streams deliver.
type bootstrapProbeTask struct {
	mu    *sync.Mutex
	order *[]string
}

func (t *bootstrapProbeTask) Init(ctx *TaskContext) error { return nil }

func (t *bootstrapProbeTask) Process(env IncomingMessageEnvelope, c MessageCollector, _ Coordinator) error {
	t.mu.Lock()
	*t.order = append(*t.order, env.Stream)
	t.mu.Unlock()
	return nil
}

func TestBootstrapStreamDrainsFirst(t *testing.T) {
	b, r := testEnv()
	for _, topic := range []string{"relation", "stream"} {
		if err := b.CreateTopic(topic, kafka.TopicConfig{Partitions: 1}); err != nil {
			t.Fatal(err)
		}
	}
	produceN(t, b, "relation", 0, 30, "rel")
	produceN(t, b, "stream", 0, 30, "str")

	var mu sync.Mutex
	var order []string
	job := &JobSpec{
		Name: "bootstrap",
		Inputs: []StreamSpec{
			{Topic: "stream"},
			{Topic: "relation", Bootstrap: true},
		},
		TaskFactory: func() StreamTask { return &bootstrapProbeTask{mu: &mu, order: &order} },
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rj, err := r.Submit(ctx, job)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(order) == 60
	}, "all 60 messages")
	rj.Stop()

	mu.Lock()
	defer mu.Unlock()
	for i := 0; i < 30; i++ {
		if order[i] != "relation" {
			t.Fatalf("message %d came from %q before bootstrap drained", i, order[i])
		}
	}
	for i := 30; i < 60; i++ {
		if order[i] != "stream" {
			t.Fatalf("message %d came from %q after bootstrap", i, order[i])
		}
	}
}

// windowProbeTask counts Window() invocations.
type windowProbeTask struct {
	windows *atomic.Int64
}

func (t *windowProbeTask) Init(ctx *TaskContext) error { return nil }
func (t *windowProbeTask) Process(env IncomingMessageEnvelope, c MessageCollector, _ Coordinator) error {
	return nil
}
func (t *windowProbeTask) Window(c MessageCollector, _ Coordinator) error {
	t.windows.Add(1)
	return nil
}

func TestWindowableTaskFires(t *testing.T) {
	b, r := testEnv()
	if err := b.CreateTopic("in", kafka.TopicConfig{Partitions: 1}); err != nil {
		t.Fatal(err)
	}
	produceN(t, b, "in", 0, 100, "m")
	var windows atomic.Int64
	job := &JobSpec{
		Name:        "windowed",
		Inputs:      []StreamSpec{{Topic: "in"}},
		WindowEvery: 10,
		TaskFactory: func() StreamTask { return &windowProbeTask{windows: &windows} },
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rj, err := r.Submit(ctx, job)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool { return windows.Load() >= 10 }, "10 window fires")
	rj.Stop()
}

// shutdownTask asks the coordinator to stop after N messages.
type shutdownTask struct {
	n     int
	limit int
}

func (t *shutdownTask) Init(ctx *TaskContext) error { return nil }
func (t *shutdownTask) Process(env IncomingMessageEnvelope, c MessageCollector, coord Coordinator) error {
	t.n++
	if t.n >= t.limit {
		coord.Shutdown()
	}
	return nil
}

func TestCoordinatorShutdown(t *testing.T) {
	b, r := testEnv()
	if err := b.CreateTopic("in", kafka.TopicConfig{Partitions: 1}); err != nil {
		t.Fatal(err)
	}
	produceN(t, b, "in", 0, 50, "m")
	job := &JobSpec{
		Name:        "selfstop",
		Inputs:      []StreamSpec{{Topic: "in"}},
		TaskFactory: func() StreamTask { return &shutdownTask{limit: 20} },
	}
	rj, err := r.Submit(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan []yarn.ContainerStatus, 1)
	go func() { done <- rj.Wait() }()
	select {
	case statuses := <-done:
		for _, s := range statuses {
			if s.Err != nil {
				t.Fatalf("container error: %v", s.Err)
			}
		}
	case <-time.After(5 * time.Second):
		t.Fatal("job never stopped after coordinator shutdown")
	}
}

func TestCheckpointManagerRoundTrip(t *testing.T) {
	b := kafka.NewBroker()
	job := &JobSpec{Name: "cp"}
	m, err := NewCheckpointManager(b, job)
	if err != nil {
		t.Fatal(err)
	}
	if _, found, err := m.Read(TaskNameFor(0)); err != nil || found {
		t.Fatalf("read of missing checkpoint: %v %v", found, err)
	}
	cp := Checkpoint{Task: TaskNameFor(0), Offsets: map[string]int64{"in": 42}}
	if err := m.Write(cp); err != nil {
		t.Fatal(err)
	}
	cp2 := Checkpoint{Task: TaskNameFor(0), Offsets: map[string]int64{"in": 99}}
	if err := m.Write(cp2); err != nil {
		t.Fatal(err)
	}
	got, found, err := m.Read(TaskNameFor(0))
	if err != nil || !found || got.Offsets["in"] != 99 {
		t.Fatalf("read: %+v %v %v", got, found, err)
	}
}

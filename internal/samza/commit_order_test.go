package samza

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync/atomic"
	"testing"

	"samzasql/internal/kafka"
	"samzasql/internal/kv"
	"time"
)

// incrementTask keeps one counter per key in a changelog-backed store and
// injects a crash mid-commit-interval, after buffered (unflushed) writes
// have accumulated.
type incrementTask struct {
	ctx       *TaskContext
	crashed   *atomic.Bool
	delivered *atomic.Int64 // crash trigger, shared across incarnations
	done      *atomic.Bool
	crashAt   int64
	lastOff   int64
}

func (t *incrementTask) Init(ctx *TaskContext) error {
	t.ctx = ctx
	return nil
}

func (t *incrementTask) Process(env IncomingMessageEnvelope, c MessageCollector, _ Coordinator) error {
	st := t.ctx.Store("counts")
	var n int64
	if v, ok := st.Get(env.Key); ok {
		n, _ = strconv.ParseInt(string(v), 10, 64)
	}
	st.Put(env.Key, []byte(strconv.FormatInt(n+1, 10)))
	if t.delivered.Add(1) == t.crashAt && t.crashed.CompareAndSwap(false, true) {
		return errors.New("injected crash with unflushed batch writes")
	}
	t.lastOff = env.Offset
	if env.Offset == t.lastExpectedOffset() {
		t.done.Store(true)
	}
	return nil
}

func (t *incrementTask) lastExpectedOffset() int64 { return 999 }

// TestCrashMidBatchReplaysExactly proves the commit-order invariant end to
// end: store flush precedes the offset checkpoint, and writes buffered after
// the last commit die with the crash instead of reaching the changelog. The
// restarted task therefore resumes from state that matches the committed
// offsets exactly, and replaying the uncommitted suffix recomputes — not
// double-applies — each increment: final counts come out exactly-once even
// though delivery is at-least-once. Runs with the object cache enabled and
// disabled; the batched changelog alone provides the invariant in both.
func TestCrashMidBatchReplaysExactly(t *testing.T) {
	const (
		total   = 1000
		keys    = 20
		crashAt = 350 // after 3 commits of 100, mid-interval
	)
	for _, tc := range []struct {
		name      string
		cacheSize int
	}{
		{"cached", 64},
		{"uncached", 0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			b, r := testEnv()
			if err := b.CreateTopic("in", kafka.TopicConfig{Partitions: 1}); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < total; i++ {
				_, err := b.Produce("in", kafka.Message{
					Partition: 0,
					Key:       []byte(fmt.Sprintf("k%02d", i%keys)),
					Value:     []byte("x"),
				})
				if err != nil {
					t.Fatal(err)
				}
			}

			var crashed, done atomic.Bool
			var delivered atomic.Int64
			job := &JobSpec{
				Name:           "crash-batch-" + tc.name,
				Inputs:         []StreamSpec{{Topic: "in"}},
				Stores:         []StoreSpec{{Name: "counts", Changelog: true}},
				CommitEvery:    100,
				MaxRestarts:    2,
				StoreCacheSize: tc.cacheSize,
				// Opt into commit-scoped batching with a cap no mid-interval
				// write count reaches: nothing hits the changelog between
				// commits, which is the semantics under test.
				WriteBatchSize: 1000,
				TaskFactory: func() StreamTask {
					return &incrementTask{crashed: &crashed, delivered: &delivered, done: &done, crashAt: crashAt}
				},
			}
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			rj, err := r.Submit(ctx, job)
			if err != nil {
				t.Fatal(err)
			}
			waitFor(t, 10*time.Second, done.Load, "last input offset processed after crash")
			rj.Stop() // final commit flushes the store stack onto the changelog

			if !crashed.Load() {
				t.Fatal("crash was never injected")
			}
			if delivered.Load() <= total {
				t.Fatalf("delivered %d messages; expected a replayed suffix beyond %d", delivered.Load(), total)
			}

			// Rebuild the state from the changelog exactly as a restarted task
			// would and require every counter to be exact: any buffered write
			// that leaked past the last checkpoint would double-count its
			// replayed increments.
			restored, err := kv.NewChangelogStore(kv.NewStore(), b, job.ChangelogTopic("counts"), 1, 0)
			if err != nil {
				t.Fatal(err)
			}
			if err := restored.Restore(); err != nil {
				t.Fatal(err)
			}
			if restored.Len() != keys {
				t.Fatalf("restored %d keys, want %d", restored.Len(), keys)
			}
			for k := 0; k < keys; k++ {
				key := []byte(fmt.Sprintf("k%02d", k))
				v, ok := restored.Get(key)
				if !ok {
					t.Fatalf("key %s missing from final state", key)
				}
				n, _ := strconv.ParseInt(string(v), 10, 64)
				if n != total/keys {
					t.Fatalf("key %s = %d, want exactly %d (state ran ahead of or behind committed offsets)",
						key, n, total/keys)
				}
			}
		})
	}
}

package samza

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"samzasql/internal/kafka"
)

// rendezvousTask blocks its first Process until `want` tasks are inside
// Process at the same time. Under the sequential container loop this
// deadlocks (and times out); under per-task goroutines it completes.
type rendezvousTask struct {
	want    int32
	arrived *atomic.Int32
	release chan struct{}
	entered bool
}

func (t *rendezvousTask) Init(ctx *TaskContext) error { return nil }

func (t *rendezvousTask) Process(env IncomingMessageEnvelope, c MessageCollector, _ Coordinator) error {
	if t.entered {
		return nil
	}
	t.entered = true
	if t.arrived.Add(1) == t.want {
		close(t.release)
	}
	select {
	case <-t.release:
		return nil
	case <-time.After(5 * time.Second):
		return errors.New("tasks did not run concurrently")
	}
}

func TestTasksRunConcurrentlyInOneContainer(t *testing.T) {
	b, r := testEnv()
	if err := b.CreateTopic("in", kafka.TopicConfig{Partitions: 4}); err != nil {
		t.Fatal(err)
	}
	for p := int32(0); p < 4; p++ {
		produceN(t, b, "in", p, 5, fmt.Sprintf("p%d", p))
	}
	var arrived atomic.Int32
	release := make(chan struct{})
	job := &JobSpec{
		Name:       "rendezvous",
		Inputs:     []StreamSpec{{Topic: "in"}},
		Containers: 1,
		TaskFactory: func() StreamTask {
			return &rendezvousTask{want: 4, arrived: &arrived, release: release}
		},
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rj, err := r.Submit(ctx, job)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 8*time.Second, func() bool {
		return rj.MetricsSnapshot().Counters["messages-processed"] >= 20
	}, "all 20 messages across 4 concurrent tasks")
	for _, s := range rj.Stop() {
		if s.Err != nil {
			t.Fatalf("container error: %v", s.Err)
		}
	}
}

// gaugeTask measures how many Process calls overlap.
type gaugeTask struct {
	inFlight *atomic.Int32
	max      *atomic.Int32
}

func (t *gaugeTask) Init(ctx *TaskContext) error { return nil }

func (t *gaugeTask) Process(env IncomingMessageEnvelope, c MessageCollector, _ Coordinator) error {
	cur := t.inFlight.Add(1)
	for {
		old := t.max.Load()
		if cur <= old || t.max.CompareAndSwap(old, cur) {
			break
		}
	}
	time.Sleep(200 * time.Microsecond) // widen the overlap window
	t.inFlight.Add(-1)
	return nil
}

func runGaugeJob(t *testing.T, parallelism int) int32 {
	t.Helper()
	b, r := testEnv()
	if err := b.CreateTopic("in", kafka.TopicConfig{Partitions: 4}); err != nil {
		t.Fatal(err)
	}
	for p := int32(0); p < 4; p++ {
		produceN(t, b, "in", p, 40, fmt.Sprintf("p%d", p))
	}
	var inFlight, max atomic.Int32
	job := &JobSpec{
		Name:            "gauge",
		Inputs:          []StreamSpec{{Topic: "in"}},
		Containers:      1,
		TaskParallelism: parallelism,
		TaskFactory: func() StreamTask {
			return &gaugeTask{inFlight: &inFlight, max: &max}
		},
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rj, err := r.Submit(ctx, job)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, func() bool {
		return rj.MetricsSnapshot().Counters["messages-processed"] >= 160
	}, "all 160 messages")
	rj.Stop()
	return max.Load()
}

func TestTaskParallelismOneSerializesProcessing(t *testing.T) {
	if got := runGaugeJob(t, 1); got != 1 {
		t.Fatalf("TaskParallelism=1 saw %d overlapping Process calls, want 1", got)
	}
}

func TestTaskParallelismUnboundedOverlaps(t *testing.T) {
	if got := runGaugeJob(t, 0); got < 2 {
		t.Fatalf("TaskParallelism=0 saw max overlap %d, want >= 2", got)
	}
}

// storeWriteTask writes every message key to a changelog-backed store and
// optionally injects one crash partway through a chosen partition.
type storeWriteTask struct {
	ctx     *TaskContext
	n       int
	mu      *sync.Mutex
	seen    map[string]int
	crashAt int // messages into the chosen partition; 0 = never
	crashOn int32
	crashed *atomic.Bool
}

func (t *storeWriteTask) Init(ctx *TaskContext) error {
	t.ctx = ctx
	return nil
}

func (t *storeWriteTask) Process(env IncomingMessageEnvelope, c MessageCollector, _ Coordinator) error {
	t.ctx.Store("state").Put(env.Key, env.Value)
	t.mu.Lock()
	t.seen[string(env.Key)]++
	t.mu.Unlock()
	t.n++
	if t.crashAt > 0 && env.Partition == t.crashOn && t.n == t.crashAt &&
		t.crashed.CompareAndSwap(false, true) {
		return errors.New("injected mid-run task failure")
	}
	return nil
}

// TestParallelTasksCrashRestartConsistency runs 4 tasks with changelog
// stores concurrently, kills the container mid-run via an injected task
// failure, and checks that after restart every message is delivered
// at-least-once, checkpoints land per task, and each task's changelog
// partition holds only that task's keys.
func TestParallelTasksCrashRestartConsistency(t *testing.T) {
	const parts, perPart = int32(4), 120
	b, r := testEnv()
	if err := b.CreateTopic("in", kafka.TopicConfig{Partitions: parts}); err != nil {
		t.Fatal(err)
	}
	for p := int32(0); p < parts; p++ {
		produceN(t, b, "in", p, perPart, fmt.Sprintf("p%d", p))
	}
	var mu sync.Mutex
	seen := map[string]int{}
	var crashed atomic.Bool
	job := &JobSpec{
		Name:        "crashrestart",
		Inputs:      []StreamSpec{{Topic: "in"}},
		Containers:  1,
		Stores:      []StoreSpec{{Name: "state", Changelog: true}},
		CommitEvery: 10,
		MaxRestarts: 2,
		TaskFactory: func() StreamTask {
			return &storeWriteTask{mu: &mu, seen: seen, crashAt: 60, crashOn: 2, crashed: &crashed}
		},
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rj, err := r.Submit(ctx, job)
	if err != nil {
		t.Fatal(err)
	}
	total := int(parts) * perPart
	waitFor(t, 10*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(seen) == total
	}, "every key delivered at least once across the crash")
	rj.Stop()

	if !crashed.Load() {
		t.Fatal("crash was never injected")
	}
	// At-least-once with bounded replay: healthy tasks checkpoint when the
	// supervisor cancels them, and the crashed task replays at most its
	// uncommitted window plus the in-flight batch.
	mu.Lock()
	replayed := 0
	for _, n := range seen {
		replayed += n - 1
	}
	mu.Unlock()
	if replayed > perPart {
		t.Fatalf("replayed %d messages after restart; per-task checkpointing broken", replayed)
	}
	// Every task wrote a final checkpoint covering its whole partition.
	cpm, err := NewCheckpointManager(b, job)
	if err != nil {
		t.Fatal(err)
	}
	for p := int32(0); p < parts; p++ {
		cp, found, err := cpm.Read(TaskNameFor(p))
		if err != nil || !found {
			t.Fatalf("task %d checkpoint: found=%v err=%v", p, found, err)
		}
		if cp.Offsets["in"] != perPart {
			t.Fatalf("task %d checkpointed offset %d, want %d", p, cp.Offsets["in"], perPart)
		}
	}
	// Changelog partitions stay task-private: partition p only ever holds
	// keys produced by the task owning input partition p.
	clTopic := job.ChangelogTopic("state")
	for _, m := range drainTopic(t, b, clTopic) {
		wantPrefix := fmt.Sprintf("p%d-", m.Partition)
		if !strings.HasPrefix(string(m.Key), wantPrefix) {
			t.Fatalf("changelog partition %d holds foreign key %q", m.Partition, m.Key)
		}
	}
}

// failingTask errors immediately; sibling tasks should be cancelled and the
// container should surface the first error.
type failingTask struct {
	partition int32 // partition whose task fails
}

func (t *failingTask) Init(ctx *TaskContext) error { return nil }

func (t *failingTask) Process(env IncomingMessageEnvelope, c MessageCollector, _ Coordinator) error {
	if env.Partition == t.partition {
		return errors.New("boom")
	}
	return nil
}

func TestFirstTaskErrorPropagates(t *testing.T) {
	b := kafka.NewBroker()
	if err := b.CreateTopic("in", kafka.TopicConfig{Partitions: 4}); err != nil {
		t.Fatal(err)
	}
	for p := int32(0); p < 4; p++ {
		produceN(t, b, "in", p, 10, fmt.Sprintf("p%d", p))
	}
	job := &JobSpec{
		Name:        "failprop",
		Inputs:      []StreamSpec{{Topic: "in"}},
		TaskFactory: func() StreamTask { return &failingTask{partition: 1} },
	}
	cpm, err := NewCheckpointManager(b, job)
	if err != nil {
		t.Fatal(err)
	}
	cont, err := newContainer(0, job, b, cpm, []int32{0, 1, 2, 3}, 4)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cont.Run(context.Background()) }()
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "boom") {
			t.Fatalf("container returned %v, want the task's error", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("container did not stop after a task error")
	}
}

func TestCoordinatorShutdownStopsSiblingTasks(t *testing.T) {
	b, r := testEnv()
	if err := b.CreateTopic("in", kafka.TopicConfig{Partitions: 4}); err != nil {
		t.Fatal(err)
	}
	for p := int32(0); p < 4; p++ {
		produceN(t, b, "in", p, 30, fmt.Sprintf("p%d", p))
	}
	job := &JobSpec{
		Name:       "parshutdown",
		Inputs:     []StreamSpec{{Topic: "in"}},
		Containers: 1,
		TaskFactory: func() StreamTask {
			// Only partition 0's task ever requests shutdown; the other
			// three must still exit cleanly.
			return &partitionShutdownTask{limit: 10}
		},
	}
	rj, err := r.Submit(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		for _, s := range rj.Wait() {
			if s.Err != nil {
				t.Errorf("container error: %v", s.Err)
			}
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("sibling tasks kept running after coordinator shutdown")
	}
}

type partitionShutdownTask struct {
	n     int
	limit int
}

func (t *partitionShutdownTask) Init(ctx *TaskContext) error { return nil }

func (t *partitionShutdownTask) Process(env IncomingMessageEnvelope, c MessageCollector, coord Coordinator) error {
	if env.Partition != 0 {
		return nil
	}
	t.n++
	if t.n >= t.limit {
		coord.Shutdown()
	}
	return nil
}

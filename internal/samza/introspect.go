package samza

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"sync"
)

// ServeIntrospection starts the runner's HTTP introspection server on addr
// (stdlib only; opt-in — nothing listens unless this is called):
//
//	/metrics       plain-text dump of every job's merged metrics
//	/healthz       per-task liveness as JSON; 503 when any task has failed
//	/debug/traces  recent sampled span trees + per-stage breakdown per job
//	/debug/pprof/  runtime profiling (CPU, heap, goroutines, ...)
//
// It returns the bound address (useful with ":0") and a shutdown function.
// The handlers read live registries, so numbers move between requests while
// jobs run.
func (r *JobRunner) ServeIntrospection(addr string) (string, func(context.Context) error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("samza: introspection listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", r.handleMetrics)
	mux.HandleFunc("/healthz", r.handleHealthz)
	mux.HandleFunc("/debug/traces", r.handleTraces)
	// Register pprof by hand: the package's init only touches
	// http.DefaultServeMux, which this server deliberately avoids.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	// Mount handlers registered through Handle before serving started, then
	// publish the mux so later registrations attach to it directly.
	r.httpMu.Lock()
	for pattern, h := range r.httpExtra {
		mux.Handle(pattern, h)
	}
	r.httpExtra = nil
	r.httpMux = mux
	r.httpMu.Unlock()
	srv := &http.Server{Handler: mux}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Serve returns ErrServerClosed after Shutdown; real accept errors
		// surface through the failing requests, not this goroutine.
		_ = srv.Serve(ln)
	}()
	shutdown := func(ctx context.Context) error {
		err := srv.Shutdown(ctx)
		wg.Wait()
		return err
	}
	return ln.Addr().String(), shutdown, nil
}

// handleMetrics dumps every job's merged snapshot in the registry text
// format, sections separated by "# job <name>" headers. Lag gauges are
// refreshed from the broker first, so the dump reflects current backlog.
func (r *JobRunner) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	jobs := r.Jobs()
	sort.Slice(jobs, func(i, j int) bool { return jobs[i].Spec.Name < jobs[j].Spec.Name })
	for _, j := range jobs {
		j.UpdateLags()
		fmt.Fprintf(w, "# job %s\n", j.Spec.Name)
		j.MetricsSnapshot().WriteText(w)
	}
}

// handleTraces dumps each job's recent sampled traces — the per-stage
// critical-path breakdown and the newest span trees — as plain text. Empty
// (beyond headers) until a job runs with a trace sample rate.
func (r *JobRunner) handleTraces(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	r.WriteTraces(w)
}

// handleHealthz reports per-task liveness for every job. The response is
// 200 with {"status":"ok"} while no task has failed, 503 otherwise — the
// shape load balancers and kubelet-style probes expect.
func (r *JobRunner) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	type health struct {
		Status string                       `json:"status"`
		Jobs   map[string]map[string]string `json:"jobs"`
	}
	out := health{Status: "ok", Jobs: map[string]map[string]string{}}
	for _, j := range r.Jobs() {
		tasks := j.TaskHealth()
		out.Jobs[j.Spec.Name] = tasks
		for _, state := range tasks {
			if state == "failed" {
				out.Status = "failed"
			}
		}
	}
	w.Header().Set("Content-Type", "application/json")
	if out.Status != "ok" {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	_ = json.NewEncoder(w).Encode(out)
}

package samza

import (
	"context"
	"errors"
	"fmt"
	"time"

	"samzasql/internal/kafka"
	"samzasql/internal/kv"
	"samzasql/internal/metrics"
)

// TaskContext is handed to StreamTask.Init, exposing the task's identity,
// configuration, local stores and metrics — the Samza TaskContext analog.
type TaskContext struct {
	// Job is the owning job's spec.
	Job *JobSpec
	// Task is this task's name.
	Task TaskName
	// Partition is the input partition this task owns across all inputs.
	Partition int32
	// Metrics is the container's metric registry.
	Metrics *metrics.Registry
	// Config aliases the job's Config map.
	Config map[string]string

	stores map[string]kv.Store
}

// Store returns the named local store declared in the job spec. It panics on
// undeclared names — that is a programming error in the job, not a runtime
// condition.
func (c *TaskContext) Store(name string) kv.Store {
	s, ok := c.stores[name]
	if !ok {
		panic(fmt.Sprintf("samza: task %s requested undeclared store %q", c.Task, name))
	}
	return s
}

// collector implements MessageCollector over the broker.
type collector struct {
	broker *kafka.Broker
	sent   *metrics.Counter
}

func (c *collector) Send(env OutgoingMessageEnvelope) error {
	part := env.Partition
	if part >= 0 {
		// explicit partition
	} else {
		part = -1 // broker partitions by key
	}
	_, err := c.broker.Produce(env.Stream, kafka.Message{
		Partition: part,
		Key:       env.Key,
		Value:     env.Value,
		Timestamp: env.Timestamp,
	})
	if err == nil {
		c.sent.Inc()
	}
	return err
}

// coordinatorState implements Coordinator.
type coordinatorState struct {
	commitRequested   bool
	shutdownRequested bool
}

func (c *coordinatorState) Commit()   { c.commitRequested = true }
func (c *coordinatorState) Shutdown() { c.shutdownRequested = true }

// taskInstance is one running task inside a container.
type taskInstance struct {
	name      TaskName
	partition int32
	task      StreamTask
	consumer  *kafka.Consumer
	ctx       *TaskContext
	changelog []*kv.ChangelogStore
	processed int // messages since last commit
	sinceWin  int // messages since last window fire
	// delivered holds, per input topic, the offset after the last message
	// the task finished processing. Checkpoints are written from here, not
	// from the consumer position: the consumer advances a whole fetched
	// batch at once, and committing its position mid-batch would skip
	// unprocessed messages after a crash.
	delivered map[string]int64
}

// Container runs a set of tasks against the broker, mirroring a Samza
// container: restore state, bootstrap, then the poll-process-commit loop.
type Container struct {
	ID      int
	job     *JobSpec
	broker  *kafka.Broker
	cpm     *CheckpointManager
	tasks   []*taskInstance
	Metrics *metrics.Registry
}

// newContainer builds (but does not run) a container for the given task
// partition list.
func newContainer(id int, job *JobSpec, broker *kafka.Broker, cpm *CheckpointManager, partitions []int32, inputPartitions int32) (*Container, error) {
	c := &Container{
		ID:      id,
		job:     job,
		broker:  broker,
		cpm:     cpm,
		Metrics: metrics.NewRegistry(),
	}
	for _, p := range partitions {
		ti, err := c.buildTask(p, inputPartitions)
		if err != nil {
			return nil, err
		}
		c.tasks = append(c.tasks, ti)
	}
	return c, nil
}

func (c *Container) buildTask(partition, inputPartitions int32) (*taskInstance, error) {
	name := TaskNameFor(partition)
	stores := map[string]kv.Store{}
	var changelogs []*kv.ChangelogStore
	for _, spec := range c.job.Stores {
		base := kv.NewStore()
		if spec.Changelog {
			cl, err := kv.NewChangelogStore(base, c.broker, c.job.ChangelogTopic(spec.Name), inputPartitions, partition)
			if err != nil {
				return nil, err
			}
			stores[spec.Name] = cl
			changelogs = append(changelogs, cl)
		} else {
			stores[spec.Name] = base
		}
	}
	tctx := &TaskContext{
		Job:       c.job,
		Task:      name,
		Partition: partition,
		Metrics:   c.Metrics,
		Config:    c.job.Config,
		stores:    stores,
	}
	consumer := kafka.NewConsumer(c.broker, c.job.Name)
	return &taskInstance{
		name:      name,
		partition: partition,
		task:      c.job.TaskFactory(),
		consumer:  consumer,
		ctx:       tctx,
		changelog: changelogs,
		delivered: map[string]int64{},
	}, nil
}

// Run executes the container until ctx is cancelled, a task requests
// shutdown, or a task returns an error. The returned error is nil on orderly
// shutdown (including context cancellation).
func (c *Container) Run(ctx context.Context) error {
	// Phase 1: restore local state from changelogs (§4.3).
	for _, ti := range c.tasks {
		for _, cl := range ti.changelog {
			if err := cl.Restore(); err != nil {
				return fmt.Errorf("samza: %s state restore: %w", ti.name, err)
			}
		}
	}
	// Phase 2: position consumers from checkpoints.
	for _, ti := range c.tasks {
		cp, found, err := c.cpm.Read(ti.name)
		if err != nil {
			return fmt.Errorf("samza: %s checkpoint read: %w", ti.name, err)
		}
		for _, in := range c.job.Inputs {
			tp := kafka.TopicPartition{Topic: in.Topic, Partition: ti.partition}
			if err := ti.consumer.Assign(tp); err != nil {
				return fmt.Errorf("samza: %s assign %s: %w", ti.name, tp, err)
			}
			if found {
				if off, ok := cp.Offsets[in.Topic]; ok {
					ti.consumer.Seek(tp, off)
				}
			}
			if pos, ok := ti.consumer.Position(tp); ok {
				ti.delivered[in.Topic] = pos
			}
		}
	}
	// Phase 3: initialize tasks (after state restore, per the API contract).
	for _, ti := range c.tasks {
		if err := ti.task.Init(ti.ctx); err != nil {
			return fmt.Errorf("samza: %s init: %w", ti.name, err)
		}
	}
	// Phase 4: drain bootstrap streams to their current high watermark
	// before any other input is delivered (§2 "Bootstrap Streams").
	coll := &collector{broker: c.broker, sent: c.Metrics.Counter("messages-sent")}
	for _, ti := range c.tasks {
		if err := c.bootstrap(ctx, ti, coll); err != nil {
			return err
		}
	}
	// Phase 5: main poll-process loop.
	processed := c.Metrics.Counter("messages-processed")
	for {
		// One consumer per task: poll each task round-robin. Poll blocks
		// only when every partition of that task is caught up, so iterate
		// with a short non-blocking pass first.
		anyDelivered := false
		for _, ti := range c.tasks {
			delivered, stop, err := c.pollTask(ctx, ti, coll, processed, false)
			if err != nil {
				return err
			}
			if stop {
				return c.shutdown()
			}
			anyDelivered = anyDelivered || delivered
		}
		if !anyDelivered {
			// Everything is caught up. Block briefly on the first task;
			// the timeout bounds wake-up latency for the other tasks'
			// partitions, which are re-checked on the next non-blocking
			// pass.
			waitCtx, cancel := context.WithTimeout(ctx, idleWait)
			_, stop, err := c.pollTask(waitCtx, c.tasks[0], coll, processed, true)
			cancel()
			if err != nil {
				return err
			}
			if stop {
				return c.shutdown()
			}
		}
		if ctx.Err() != nil {
			return c.shutdown()
		}
	}
}

// bootstrap consumes each bootstrap stream partition from the consumer's
// current position to the high watermark observed at start.
func (c *Container) bootstrap(ctx context.Context, ti *taskInstance, coll MessageCollector) error {
	for _, in := range c.job.Inputs {
		if !in.Bootstrap {
			continue
		}
		tp := kafka.TopicPartition{Topic: in.Topic, Partition: ti.partition}
		hwm, err := c.broker.HighWatermark(tp)
		if err != nil {
			return err
		}
		pos, _ := ti.consumer.Position(tp)
		for pos < hwm {
			msgs, wait, err := c.broker.Fetch(tp, pos, 512)
			if err != nil {
				return fmt.Errorf("samza: %s bootstrap %s: %w", ti.name, tp, err)
			}
			if wait != nil {
				break
			}
			for _, m := range msgs {
				if m.Offset >= hwm {
					break
				}
				env := IncomingMessageEnvelope{
					Stream: m.Topic, Partition: m.Partition, Offset: m.Offset,
					Key: m.Key, Value: m.Value, Timestamp: m.Timestamp,
				}
				coord := &coordinatorState{}
				if err := ti.task.Process(env, coll, coord); err != nil {
					return fmt.Errorf("samza: %s bootstrap process: %w", ti.name, err)
				}
				pos = m.Offset + 1
			}
			if ctx.Err() != nil {
				return nil
			}
		}
		ti.consumer.Seek(tp, pos)
		ti.delivered[in.Topic] = pos
	}
	return nil
}

// idleWait bounds how long a fully caught-up container blocks before
// re-scanning all of its tasks' partitions.
const idleWait = 10 * time.Millisecond

// pollTask delivers one batch to the task. Returns (delivered, stop, err).
func (c *Container) pollTask(ctx context.Context, ti *taskInstance, coll MessageCollector, processed *metrics.Counter, blocking bool) (bool, bool, error) {
	pollCtx := ctx
	if !blocking {
		// Non-blocking pass: poll with an already-cancelled child context
		// trick is wrong; instead check lag first.
		lag, err := ti.consumer.Lag()
		if err != nil {
			return false, false, err
		}
		if lag == 0 {
			return false, false, nil
		}
	}
	msgs, err := ti.consumer.Poll(pollCtx, 256)
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return false, false, nil
		}
		return false, false, fmt.Errorf("samza: %s poll: %w", ti.name, err)
	}
	if len(msgs) == 0 {
		return false, false, nil
	}
	for _, m := range msgs {
		env := IncomingMessageEnvelope{
			Stream: m.Topic, Partition: m.Partition, Offset: m.Offset,
			Key: m.Key, Value: m.Value, Timestamp: m.Timestamp,
		}
		coord := &coordinatorState{}
		if err := ti.task.Process(env, coll, coord); err != nil {
			return true, false, fmt.Errorf("samza: %s process: %w", ti.name, err)
		}
		ti.delivered[env.Stream] = env.Offset + 1
		processed.Inc()
		ti.processed++
		ti.sinceWin++

		if wt, ok := ti.task.(WindowableTask); ok && c.job.WindowEvery > 0 && ti.sinceWin >= c.job.WindowEvery {
			if err := wt.Window(coll, coord); err != nil {
				return true, false, fmt.Errorf("samza: %s window: %w", ti.name, err)
			}
			ti.sinceWin = 0
		}
		needCommit := coord.commitRequested ||
			(c.job.CommitEvery > 0 && ti.processed >= c.job.CommitEvery)
		if needCommit {
			if err := c.commitTask(ti); err != nil {
				return true, false, err
			}
			ti.processed = 0
		}
		if coord.shutdownRequested {
			return true, true, nil
		}
	}
	return true, false, nil
}

// commitTask writes the task's current consumer positions as a checkpoint.
func (c *Container) commitTask(ti *taskInstance) error {
	cp := Checkpoint{Task: ti.name, Offsets: map[string]int64{}}
	for topic, off := range ti.delivered {
		cp.Offsets[topic] = off
	}
	if err := c.cpm.Write(cp); err != nil {
		return fmt.Errorf("samza: %s checkpoint write: %w", ti.name, err)
	}
	c.Metrics.Counter("commits").Inc()
	return nil
}

// shutdown commits all tasks and closes closable ones.
func (c *Container) shutdown() error {
	var firstErr error
	for _, ti := range c.tasks {
		if err := c.commitTask(ti); err != nil && firstErr == nil {
			firstErr = err
		}
		if ct, ok := ti.task.(ClosableTask); ok {
			if err := ct.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	return firstErr
}

package samza

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"samzasql/internal/kafka"
	"samzasql/internal/kv"
	"samzasql/internal/metrics"
	"samzasql/internal/profile"
	"samzasql/internal/trace"
)

// TaskContext is handed to StreamTask.Init, exposing the task's identity,
// configuration, local stores and metrics — the Samza TaskContext analog.
type TaskContext struct {
	// Job is the owning job's spec.
	Job *JobSpec
	// Task is this task's name.
	Task TaskName
	// Partition is the input partition this task owns across all inputs.
	Partition int32
	// Metrics is the container's metric registry.
	Metrics *metrics.Registry
	// Config aliases the job's Config map.
	Config map[string]string
	// Collector sends messages to output streams. The framework binds it
	// once per task before Init and passes the same value to every Process
	// call, so tasks may capture it at Init and build per-task senders
	// instead of rebinding per message.
	Collector MessageCollector
	// Trace is the task's tracing cursor. Always non-nil; when the current
	// message is unsampled every method collapses to a bool check. Task
	// code touching it from a hot path must branch on Trace.Sampled()
	// first (enforced by the samzasql-vet trace-guard rule).
	Trace *trace.Active

	stores map[string]kv.Store
}

// Store returns the named local store declared in the job spec. It panics on
// undeclared names — that is a programming error in the job, not a runtime
// condition.
func (c *TaskContext) Store(name string) kv.Store {
	s, ok := c.stores[name]
	if !ok {
		panic(fmt.Sprintf("samza: task %s requested undeclared store %q", c.Task, name))
	}
	return s
}

// collector implements MessageCollector over the broker. It is stateless
// apart from the atomic sent counter, so one instance is safely shared by
// every task goroutine in the container.
type collector struct {
	broker *kafka.Broker
	sent   *metrics.Counter
}

func (c *collector) Send(env OutgoingMessageEnvelope) error {
	// env.Partition passes through unchanged: non-negative selects that
	// partition explicitly, negative delegates to the broker's key hash
	// (see OutgoingMessageEnvelope.Partition).
	_, err := c.broker.Produce(env.Stream, kafka.Message{
		Partition: env.Partition,
		Key:       env.Key,
		Value:     env.Value,
		Timestamp: env.Timestamp,
		Trace:     env.Trace,
	})
	if err == nil {
		c.sent.Inc()
	}
	return err
}

// SendBatch implements BatchCollector: one producer call appends a whole
// block's output messages, preserving order. The broker writes assigned
// offsets back into msgs and retains the key/value slices (never the msgs
// header slice itself).
func (c *collector) SendBatch(stream string, msgs []kafka.Message) error {
	if err := c.broker.ProduceBatch(stream, msgs); err != nil {
		return err
	}
	c.sent.Add(int64(len(msgs)))
	return nil
}

// coordinatorState implements Coordinator. Each task loop reuses one
// instance across messages, resetting it per delivery, so the hot path
// performs no per-message allocation for coordinator plumbing.
type coordinatorState struct {
	commitRequested   bool
	shutdownRequested bool
}

func (c *coordinatorState) Commit()   { c.commitRequested = true }
func (c *coordinatorState) Shutdown() { c.shutdownRequested = true }

func (c *coordinatorState) reset() {
	c.commitRequested = false
	c.shutdownRequested = false
}

// taskInstance is one running task inside a container. All of its mutable
// state is owned by the single goroutine running its loop; tasks own
// disjoint partitions and disjoint stores, which is what makes the
// container's task-level parallelism safe under Samza's semantics.
type taskInstance struct {
	name      TaskName
	partition int32
	task      StreamTask
	// batched is the task's vectorized path, cached at build time: non-nil
	// only when the task implements BatchedStreamTask and the job has not
	// forced scalar delivery (BatchSize == ScalarBatch).
	batched BatchedStreamTask
	// pollMax caps messages per poll (JobSpec.BatchSize resolved).
	pollMax int
	// envs is the reusable envelope arena the batched path delivers through.
	envs      []IncomingMessageEnvelope
	consumer  *kafka.Consumer
	ctx       *TaskContext
	changelog []*kv.ChangelogStore
	// flushables are the top of each store stack, flushed at commit before
	// the offset checkpoint is written: buffered store writes and changelog
	// records always land before the offsets covering them, so restored
	// state is never behind committed offsets.
	flushables []kv.Flushable
	processed  int // messages since last commit
	sinceWin   int // messages since last window fire
	// coord is the per-loop Coordinator handed to Process, reset per
	// message instead of allocated per message.
	coord coordinatorState
	// delivered holds, per input topic, the offset after the last message
	// the task finished processing. Checkpoints are written from here, not
	// from the consumer position: the consumer advances a whole fetched
	// batch at once, and committing its position mid-batch would skip
	// unprocessed messages after a crash.
	delivered map[string]int64
	// act is the task's tracing cursor (shared with ctx.Trace and the
	// store stack), owned by the task goroutine like everything else here.
	act *trace.Active
	// procLat, winLat and commitLat are pre-bound per-task latency timers
	// ("task.<name>.{process,window,commit}-ns"); hoisting them here keeps
	// the per-message path free of registry lookups and allocations.
	procLat   metrics.Timer
	winLat    metrics.Timer
	commitLat metrics.Timer
	// health is the supervisor-visible liveness state (taskHealth* consts),
	// read by Container.TaskHealth for the /healthz endpoint.
	health atomic.Int32
}

// Task liveness states reported by Container.TaskHealth.
const (
	taskHealthInit int32 = iota
	taskHealthRunning
	taskHealthStopped
	taskHealthFailed
)

func taskHealthString(s int32) string {
	switch s {
	case taskHealthRunning:
		return "running"
	case taskHealthStopped:
		return "stopped"
	case taskHealthFailed:
		return "failed"
	default:
		return "init"
	}
}

// Container runs a set of tasks against the broker, mirroring a Samza
// container: restore state, bootstrap, then one poll-process-window-commit
// loop per task, each in a dedicated goroutine under an errgroup-style
// supervisor.
type Container struct {
	ID      int
	job     *JobSpec
	broker  *kafka.Broker
	cpm     *CheckpointManager
	tasks   []*taskInstance
	Metrics *metrics.Registry

	// coll is the shared broker-backed collector (safe for concurrent use).
	coll *collector
	// sem, when non-nil, bounds how many tasks process batches at once
	// (JobSpec.TaskParallelism).
	sem chan struct{}
	// processed and commits are hoisted counters so the per-message path
	// never takes the registry lock.
	processed *metrics.Counter
	commits   *metrics.Counter
	// tracer collects completed spans from every task goroutine (lock-free
	// ring) plus lifecycle events; recent assembles drained spans into
	// whole traces for /debug/traces and the shell's \trace.
	tracer *trace.Recorder
	recent *trace.Recent
}

// traceRingSize bounds the per-container span ring: enough for the spans
// of a few hundred sampled messages between reporter drains; overflow
// drops spans (counted) rather than blocking a task goroutine.
const traceRingSize = 4096

// recentTraces bounds the assembled traces kept for /debug/traces.
const recentTraces = 32

// errStopRequested signals an orderly whole-container stop requested by a
// task's Coordinator.Shutdown; the supervisor translates it into
// cancellation of the sibling tasks rather than a failure.
var errStopRequested = errors.New("samza: task requested shutdown")

// newContainer builds (but does not run) a container for the given task
// partition list.
func newContainer(id int, job *JobSpec, broker *kafka.Broker, cpm *CheckpointManager, partitions []int32, inputPartitions int32) (*Container, error) {
	c := &Container{
		ID:      id,
		job:     job,
		broker:  broker,
		cpm:     cpm,
		Metrics: metrics.NewRegistry(),
		tracer:  trace.NewRecorder(traceRingSize),
		recent:  trace.NewRecent(recentTraces),
	}
	c.coll = &collector{broker: broker, sent: c.Metrics.Counter("messages-sent")}
	c.processed = c.Metrics.Counter("messages-processed")
	c.commits = c.Metrics.Counter("commits")
	if n := job.TaskParallelism; n > 0 && n < len(partitions) {
		c.sem = make(chan struct{}, n)
	}
	for _, p := range partitions {
		ti, err := c.buildTask(p, inputPartitions)
		if err != nil {
			return nil, err
		}
		c.tasks = append(c.tasks, ti)
	}
	return c, nil
}

func (c *Container) buildTask(partition, inputPartitions int32) (*taskInstance, error) {
	name := TaskNameFor(partition)
	act := trace.NewActive(c.tracer)
	stores := map[string]kv.Store{}
	var changelogs []*kv.ChangelogStore
	var flushables []kv.Flushable
	for _, spec := range c.job.Stores {
		// Store stack, bottom to top: skiplist base, optional changelog
		// mirroring (batched, produced at flush), latency instrumentation,
		// optional LRU object cache with write-behind batching. Flush on the
		// top layer cascades down, so one call drains the whole stack.
		// WriteBatchSize <= 0 means write-through (a batch cap of one):
		// every mirrored write reaches the changelog immediately, the
		// seed-faithful default that keeps state ahead of offsets for
		// replay detection. Batching is an explicit job-level opt-in.
		batch := c.job.WriteBatchSize
		if batch <= 0 {
			batch = 1
		}
		s := kv.NewStore()
		if spec.Changelog {
			cl, err := kv.NewChangelogStore(s, c.broker, c.job.ChangelogTopic(spec.Name), inputPartitions, partition)
			if err != nil {
				return nil, err
			}
			cl.SetWriteBatchSize(batch)
			changelogs = append(changelogs, cl)
			s = cl
		}
		s = kv.Instrument(s, c.Metrics, spec.Name)
		// The instrumented layer already times every op; binding the task's
		// cursor lets it double those timings as trace leaf spans when the
		// current message is sampled.
		kv.BindTrace(s, act)
		if c.job.StoreCacheSize > 0 {
			cached := kv.NewCachedStore(s, c.job.StoreCacheSize, batch)
			cached.BindMetrics(c.Metrics, spec.Name)
			s = cached
		}
		stores[spec.Name] = s
		if f, ok := s.(kv.Flushable); ok {
			flushables = append(flushables, f)
		}
	}
	tctx := &TaskContext{
		Job:       c.job,
		Task:      name,
		Partition: partition,
		Metrics:   c.Metrics,
		Config:    c.job.Config,
		Collector: c.coll,
		Trace:     act,
		stores:    stores,
	}
	consumer := kafka.NewConsumer(c.broker, c.job.Name)
	task := c.job.TaskFactory()
	pollMax := c.job.BatchSize
	if pollMax <= 0 {
		pollMax = DefaultBatchSize
	}
	ti := &taskInstance{
		name:       name,
		partition:  partition,
		task:       task,
		pollMax:    pollMax,
		consumer:   consumer,
		ctx:        tctx,
		changelog:  changelogs,
		flushables: flushables,
		act:        act,
		delivered:  map[string]int64{},
		procLat:    c.Metrics.Timer("task." + string(name) + ".process-ns"),
		winLat:     c.Metrics.Timer("task." + string(name) + ".window-ns"),
		commitLat:  c.Metrics.Timer("task." + string(name) + ".commit-ns"),
	}
	if c.job.BatchSize != ScalarBatch {
		ti.batched, _ = task.(BatchedStreamTask)
	}
	return ti, nil
}

// TaskHealth reports the liveness state of every task in the container,
// keyed by task name. Safe to call concurrently with Run.
func (c *Container) TaskHealth() map[string]string {
	out := make(map[string]string, len(c.tasks))
	for _, ti := range c.tasks {
		out[string(ti.name)] = taskHealthString(ti.health.Load())
	}
	return out
}

// UpdateLags refreshes every task consumer's per-partition lag gauges from
// the broker's high watermarks and returns the container-wide total.
func (c *Container) UpdateLags() int64 {
	var total int64
	for _, ti := range c.tasks {
		if lag, err := ti.consumer.UpdateLag(); err == nil {
			total += lag
		}
	}
	return total
}

// Run executes the container until ctx is cancelled, a task requests
// shutdown, or a task returns an error. The returned error is nil on orderly
// shutdown (including context cancellation); on a task failure the first
// error is returned after every sibling task has been cancelled and drained.
func (c *Container) Run(ctx context.Context) error {
	// Phase 1: restore local state from changelogs (§4.3).
	for _, ti := range c.tasks {
		for _, cl := range ti.changelog {
			if err := cl.Restore(); err != nil {
				return fmt.Errorf("samza: %s state restore: %w", ti.name, err)
			}
		}
	}
	// Phase 2: position consumers from checkpoints.
	for _, ti := range c.tasks {
		cp, found, err := c.cpm.Read(ti.name)
		if err != nil {
			return fmt.Errorf("samza: %s checkpoint read: %w", ti.name, err)
		}
		for _, in := range c.job.Inputs {
			tp := kafka.TopicPartition{Topic: in.Topic, Partition: ti.partition}
			if err := ti.consumer.Assign(tp); err != nil {
				return fmt.Errorf("samza: %s assign %s: %w", ti.name, tp, err)
			}
			ti.consumer.BindLagGauge(tp, c.Metrics.Gauge(fmt.Sprintf("kafka.lag.%s.%d", in.Topic, ti.partition)))
			if found {
				if off, ok := cp.Offsets[in.Topic]; ok {
					ti.consumer.Seek(tp, off)
				}
			}
			if pos, ok := ti.consumer.Position(tp); ok {
				ti.delivered[in.Topic] = pos
			}
		}
	}
	// Phase 3: initialize tasks (after state restore, per the API contract).
	for _, ti := range c.tasks {
		if err := ti.task.Init(ti.ctx); err != nil {
			return fmt.Errorf("samza: %s init: %w", ti.name, err)
		}
	}
	// Start the per-container reporters (when configured) before the task
	// loops, on their own context: they must outlive the tasks so the final
	// flushes after wg.Wait() capture complete end-of-run metrics and the
	// spans of the last sampled messages.
	var (
		repWG     sync.WaitGroup
		repCancel context.CancelFunc
		repCtx    context.Context
	)
	startReporter := func(run func(context.Context)) {
		if repCancel == nil {
			repCtx, repCancel = context.WithCancel(context.Background())
		}
		repWG.Add(1)
		go func() {
			defer repWG.Done()
			run(repCtx)
		}()
	}
	if c.job.MetricsInterval > 0 {
		topic := c.job.MetricsTopicName()
		if err := c.broker.EnsureTopic(topic, kafka.TopicConfig{Partitions: 1}); err != nil {
			return fmt.Errorf("samza: metrics topic: %w", err)
		}
		// The runtime/metrics collector rides the snapshot reporter's
		// refresh hook: goroutine count, live heap, GC pauses and scheduler
		// latencies land in the ordinary registry once per publish, so they
		// travel __metrics with no extra plumbing and zero hot-path cost.
		rtc := profile.NewCollector(c.Metrics)
		rep := NewMetricsSnapshotReporter(c.broker, c.job.Name, c.ID, topic,
			c.job.MetricsInterval, c.Metrics, func() {
				c.UpdateLags()
				rtc.Refresh()
			})
		startReporter(rep.Run)
	}
	if c.job.ProfileInterval > 0 {
		topic := c.job.ProfilesTopicName()
		if err := c.broker.EnsureTopic(topic, kafka.TopicConfig{Partitions: 1}); err != nil {
			return fmt.Errorf("samza: profiles topic: %w", err)
		}
		prof := profile.New(profile.Config{
			Interval: c.job.ProfileInterval,
			Window:   c.job.ProfileWindow,
		}, true)
		rep := NewProfileReporter(c.broker, c.job.Name, c.ID, topic, prof)
		startReporter(rep.Run)
	}
	if interval := c.traceInterval(); interval > 0 {
		topic := c.job.TraceTopicName()
		if err := c.broker.EnsureTopic(topic, kafka.TopicConfig{Partitions: 1}); err != nil {
			return fmt.Errorf("samza: trace topic: %w", err)
		}
		rep := NewTraceReporter(c.broker, c.job.Name, c.ID, topic, interval, c.SyncTraces)
		startReporter(rep.Run)
	}
	// Lifecycle events land in the same recorder as spans and publish on
	// the trace stream, so trace anomalies correlate with runtime events.
	now := time.Now().UnixNano()
	c.tracer.Event(now, "container-start", fmt.Sprintf("%s container %d", c.job.Name, c.ID))
	for _, ti := range c.tasks {
		c.tracer.Event(now, "task-assigned", string(ti.name))
	}
	// Phases 4+5 run per task in a dedicated goroutine: drain bootstrap
	// streams (§2 "Bootstrap Streams"), then the poll-process loop. The
	// supervisor cancels every sibling on the first failure or on a
	// coordinator shutdown and propagates the first real error.
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	for _, ti := range c.tasks {
		wg.Add(1)
		go func(ti *taskInstance) {
			defer wg.Done()
			ti.health.Store(taskHealthRunning)
			err := c.runTask(runCtx, ti)
			if err == nil {
				ti.health.Store(taskHealthStopped)
				return
			}
			if errors.Is(err, errStopRequested) {
				ti.health.Store(taskHealthStopped)
				cancel()
				return
			}
			ti.health.Store(taskHealthFailed)
			errOnce.Do(func() { firstErr = err })
			cancel()
		}(ti)
	}
	wg.Wait()
	c.tracer.Event(time.Now().UnixNano(), "container-stop", fmt.Sprintf("%s container %d", c.job.Name, c.ID))
	if repCancel != nil {
		repCancel()
		repWG.Wait()
	}
	return firstErr
}

// traceInterval resolves the trace reporter period: the job's explicit
// setting, or the default whenever sampling is enabled without one.
func (c *Container) traceInterval() time.Duration {
	if c.job.TraceInterval > 0 {
		return c.job.TraceInterval
	}
	if c.job.TraceSampleRate > 0 {
		return DefaultTraceInterval
	}
	return 0
}

// SyncTraces drains the span ring into the container's recent-trace store
// and returns the drained batch (spans, lifecycle events, drop count).
// Called by the trace reporter each tick and by the introspection path on
// demand; safe for concurrent use.
func (c *Container) SyncTraces() ([]trace.Span, []trace.Event, int64) {
	spans := c.tracer.Drain(nil)
	c.recent.Add(spans)
	return spans, c.tracer.DrainEvents(nil), c.tracer.TakeDropped()
}

// RecentTraces returns the most recently completed traces this container
// observed, newest first.
func (c *Container) RecentTraces() []*trace.TraceData {
	c.SyncTraces()
	return c.recent.Traces()
}

// runTask is one task's whole life inside a running container: bootstrap,
// then poll batches until the context ends, an error occurs, or the task
// requests shutdown. On orderly exits the task writes a final checkpoint and
// closes; after a processing error it does not, preserving the replay
// window for the restarted attempt.
func (c *Container) runTask(ctx context.Context, ti *taskInstance) error {
	defer ti.consumer.Close()
	if err := c.bootstrap(ctx, ti); err != nil {
		return err
	}
	for {
		if ctx.Err() != nil {
			return c.finishTask(ti)
		}
		stop, err := c.pollTask(ctx, ti)
		if err != nil {
			return err
		}
		if stop {
			if err := c.finishTask(ti); err != nil {
				return err
			}
			return errStopRequested
		}
	}
}

// bootstrap consumes each bootstrap stream partition from the consumer's
// current position to the high watermark observed at start.
func (c *Container) bootstrap(ctx context.Context, ti *taskInstance) error {
	for _, in := range c.job.Inputs {
		if !in.Bootstrap {
			continue
		}
		tp := kafka.TopicPartition{Topic: in.Topic, Partition: ti.partition}
		hwm, err := c.broker.HighWatermark(tp)
		if err != nil {
			return err
		}
		pos, _ := ti.consumer.Position(tp)
		for pos < hwm {
			msgs, wait, err := c.broker.Fetch(tp, pos, 512)
			if err != nil {
				return fmt.Errorf("samza: %s bootstrap %s: %w", ti.name, tp, err)
			}
			if wait != nil {
				break
			}
			env := IncomingMessageEnvelope{}
			for _, m := range msgs {
				if m.Offset >= hwm {
					break
				}
				env = IncomingMessageEnvelope{
					Stream: m.Topic, Partition: m.Partition, Offset: m.Offset,
					Key: m.Key, Value: m.Value, Timestamp: m.Timestamp,
				}
				ti.coord.reset()
				if err := ti.task.Process(env, c.coll, &ti.coord); err != nil {
					return fmt.Errorf("samza: %s bootstrap process: %w", ti.name, err)
				}
				pos = m.Offset + 1
			}
			if ctx.Err() != nil {
				return nil
			}
		}
		ti.consumer.Seek(tp, pos)
		ti.delivered[in.Topic] = pos
	}
	return nil
}

// idleWait bounds how long a task with no assignment sleeps between polls;
// assigned tasks block on the consumer's notifier instead.
const idleWait = 10 * time.Millisecond

// DefaultBatchSize is the per-poll message cap when JobSpec.BatchSize is
// unset: the delivery unit of the vectorized block path and the fetch
// granularity of the scalar path alike.
const DefaultBatchSize = 256

// ScalarBatch, as JobSpec.BatchSize, forces per-message delivery even for
// tasks implementing BatchedStreamTask — the reference path batch-vs-scalar
// equivalence tests compare against.
const ScalarBatch = -1

// pollTask delivers one batch to the task. Returns stop=true when the task
// requested shutdown.
//
//samzasql:hotpath
func (c *Container) pollTask(ctx context.Context, ti *taskInstance) (bool, error) {
	//samzasql:ignore hotpath-blocking -- the blocking poll is the idle wait itself; it wakes on new input or shutdown, never while messages are queued
	msgs, err := ti.consumer.Poll(ctx, ti.pollMax)
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return false, nil
		}
		return false, fmt.Errorf("samza: %s poll: %w", ti.name, err)
	}
	if len(msgs) == 0 {
		// No assignment: nothing will ever arrive; avoid a hot spin.
		//samzasql:ignore hotpath-blocking -- the blocking poll is the idle wait itself; it wakes on new input or shutdown, never while messages are queued
		select {
		case <-ctx.Done():
		case <-time.After(idleWait):
		}
		return false, nil
	}
	// TaskParallelism gates processing, not polling: a parked poll holds no
	// slot, so N slots bound the tasks concurrently burning CPU.
	if c.sem != nil {
		//samzasql:ignore hotpath-blocking -- the blocking poll is the idle wait itself; it wakes on new input or shutdown, never while messages are queued
		select {
		case c.sem <- struct{}{}:
		case <-ctx.Done():
			return false, nil
		}
		//samzasql:ignore hotpath-blocking -- the blocking poll is the idle wait itself; it wakes on new input or shutdown, never while messages are queued
		defer func() { <-c.sem }()
	}
	// batchNs anchors the poll span of any sampled message in this batch:
	// one time read per batch is the only unconditional tracing cost.
	batchNs := time.Now().UnixNano()
	// Vectorized delivery: the whole polled batch (one topic-partition, in
	// offset order) goes to the task in a single ProcessBatch call, with
	// one coordinator reset, one latency observation, and one
	// delivered-offset update per batch instead of per message. Trace
	// bookkeeping for sampled messages inside the batch is the task's to
	// replay (batch-level spans with row counts).
	if ti.batched != nil {
		envs := ti.envs[:0]
		for i := range msgs {
			m := &msgs[i]
			envs = append(envs, IncomingMessageEnvelope{
				Stream: m.Topic, Partition: m.Partition, Offset: m.Offset,
				Key: m.Key, Value: m.Value, Timestamp: m.Timestamp,
				Trace: m.Trace,
			})
		}
		ti.envs = envs
		ti.coord.reset()
		start := ti.procLat.Start()
		if err := ti.batched.ProcessBatch(envs, c.coll, &ti.coord, batchNs); err != nil {
			return false, fmt.Errorf("samza: %s process batch: %w", ti.name, err)
		}
		ti.procLat.Stop(start)
		ti.delivered[msgs[0].Topic] = msgs[len(msgs)-1].Offset + 1
		c.processed.Add(int64(len(msgs)))
		ti.processed += len(msgs)
		ti.sinceWin += len(msgs)
		if wt, ok := ti.task.(WindowableTask); ok && c.job.WindowEvery > 0 && ti.sinceWin >= c.job.WindowEvery {
			wstart := ti.winLat.Start()
			if err := wt.Window(c.coll, &ti.coord); err != nil {
				return false, fmt.Errorf("samza: %s window: %w", ti.name, err)
			}
			ti.winLat.Stop(wstart)
			ti.sinceWin = 0
		}
		needCommit := ti.coord.commitRequested ||
			(c.job.CommitEvery > 0 && ti.processed >= c.job.CommitEvery)
		if needCommit {
			//samzasql:ignore hotpath-blocking -- commit-interval work amortized across the whole batch, not a per-message cost
			if err := c.commitTask(ti); err != nil {
				return false, err
			}
			ti.processed = 0
		}
		return ti.coord.shutdownRequested, nil
	}
	// env and ti.coord are reused across the batch; Process receives the
	// envelope by value, so reuse is invisible to the task.
	env := IncomingMessageEnvelope{}
	for i := range msgs {
		m := &msgs[i]
		env = IncomingMessageEnvelope{
			Stream: m.Topic, Partition: m.Partition, Offset: m.Offset,
			Key: m.Key, Value: m.Value, Timestamp: m.Timestamp,
			Trace: m.Trace,
		}
		ti.coord.reset()
		if m.Trace.Sampled {
			ti.act.StartMessage(m.Trace, batchNs, time.Now().UnixNano())
		}
		start := ti.procLat.Start()
		//samzasql:ignore hotpath-blocking -- devirtualization resolves StreamTask to every impl including the bench throttle task, whose Sleep is intended backpressure in benchmarks only
		if err := ti.task.Process(env, c.coll, &ti.coord); err != nil {
			return false, fmt.Errorf("samza: %s process: %w", ti.name, err)
		}
		ti.procLat.Stop(start)
		if m.Trace.Sampled {
			ti.act.FinishMessage(time.Now().UnixNano())
		}
		ti.delivered[env.Stream] = env.Offset + 1
		c.processed.Inc()
		ti.processed++
		ti.sinceWin++

		if wt, ok := ti.task.(WindowableTask); ok && c.job.WindowEvery > 0 && ti.sinceWin >= c.job.WindowEvery {
			wstart := ti.winLat.Start()
			if err := wt.Window(c.coll, &ti.coord); err != nil {
				return false, fmt.Errorf("samza: %s window: %w", ti.name, err)
			}
			ti.winLat.Stop(wstart)
			ti.sinceWin = 0
		}
		needCommit := ti.coord.commitRequested ||
			(c.job.CommitEvery > 0 && ti.processed >= c.job.CommitEvery)
		if needCommit {
			//samzasql:ignore hotpath-blocking -- commit-interval work amortized across the whole batch, not a per-message cost
			if err := c.commitTask(ti); err != nil {
				return false, err
			}
			ti.processed = 0
		}
		if ti.coord.shutdownRequested {
			return true, nil
		}
	}
	return false, nil
}

// commitTask runs the task's commit sequence in Samza's order: flush the
// store stacks (write-behind batches into the stores, buffered changelog
// records onto their topics), then write the offset checkpoint. State on the
// changelog is therefore always at or ahead of the committed offsets; a
// restart replays at most the uncommitted suffix, and buffered writes that
// never flushed are reproduced by that replay rather than lost.
func (c *Container) commitTask(ti *taskInstance) error {
	// A trace pending since the last sampled message closes here: the
	// commit span re-activates it so the store and changelog flush spans
	// recorded below nest underneath.
	if ti.act.PendingCommit() {
		ti.act.StartCommit(time.Now().UnixNano())
	}
	start := ti.commitLat.Start()
	for _, f := range ti.flushables {
		if err := f.Flush(); err != nil {
			return fmt.Errorf("samza: %s store flush: %w", ti.name, err)
		}
	}
	if len(ti.flushables) > 0 {
		c.tracer.Event(time.Now().UnixNano(), "store-flush", string(ti.name))
	}
	cp := Checkpoint{Task: ti.name, Offsets: map[string]int64{}}
	for topic, off := range ti.delivered {
		cp.Offsets[topic] = off
	}
	if err := c.cpm.Write(cp); err != nil {
		return fmt.Errorf("samza: %s checkpoint write: %w", ti.name, err)
	}
	c.commits.Inc()
	ti.commitLat.Stop(start)
	c.tracer.Event(time.Now().UnixNano(), "checkpoint-commit", string(ti.name))
	if ti.act.Sampled() {
		ti.act.FinishCommit(time.Now().UnixNano())
	}
	return nil
}

// finishTask commits the task's final checkpoint and closes it.
func (c *Container) finishTask(ti *taskInstance) error {
	err := c.commitTask(ti)
	if ct, ok := ti.task.(ClosableTask); ok {
		if cerr := ct.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}

package samza

import (
	"errors"
	"fmt"
	"time"

	"samzasql/internal/kafka"
)

// StreamSpec describes one input stream of a job.
type StreamSpec struct {
	// Topic is the Kafka topic name.
	Topic string
	// Bootstrap marks the stream as a bootstrap stream (§2): the task
	// consumes it to its high watermark before processing other inputs.
	// SamzaSQL uses this for the relation side of stream-to-relation joins.
	Bootstrap bool
}

// StoreSpec describes one named local store of a job's tasks.
type StoreSpec struct {
	// Name is the handle tasks use via TaskContext.Store.
	Name string
	// Changelog, when true, mirrors the store to a compacted changelog
	// topic named "<job>-<store>-changelog" for restore after failure.
	Changelog bool
}

// JobSpec is the deployable description of one Samza job: Samza's job
// package plus property-file configuration collapsed into a struct, with
// the free-form Config carrying what the property file would (SamzaSQL
// stores planner metadata references there, §4.2).
type JobSpec struct {
	// Name identifies the job; checkpoint and changelog topics derive from it.
	Name string
	// Inputs are the consumed streams. All must exist at submit time.
	Inputs []StreamSpec
	// TaskFactory builds one StreamTask per partition.
	TaskFactory func() StreamTask
	// Containers is the number of containers tasks spread over. Defaults 1.
	Containers int
	// Stores declares the local stores available to tasks.
	Stores []StoreSpec
	// CommitEvery checkpoints input offsets after this many processed
	// messages per task. 0 disables count-based commits (commits then only
	// happen on Coordinator.Commit or shutdown).
	CommitEvery int
	// WindowEvery fires WindowableTask.Window after this many processed
	// messages per task; 0 disables. (The simulation is message-driven, so
	// window firing is count-based rather than wall-clock.)
	WindowEvery int
	// MaxRestarts bounds per-container restarts after failures.
	MaxRestarts int
	// TaskParallelism bounds how many of a container's tasks may process
	// message batches concurrently (Samza's job.container.thread.pool.size
	// analog). 0 (the default) means unbounded: every task runs its loop
	// fully in parallel. 1 reproduces the sequential container of the
	// paper's prototype. Values above the container's task count behave
	// like 0. Tasks own disjoint partitions and disjoint state, so any
	// setting preserves per-task ordering.
	TaskParallelism int
	// StoreCacheSize, when positive, wraps every task store in a CachedStore
	// holding up to this many entries: an LRU of decoded values plus a
	// deduplicating write-behind batch flushed at commit (Samza's
	// stores.<store>.object.cache.size). 0 disables caching; stores then
	// write through per operation as before.
	StoreCacheSize int
	// WriteBatchSize caps how many dirty keys (CachedStore) or mirrored
	// changelog records (ChangelogStore) buffer before an early flush —
	// Samza's stores.<store>.write.batch.size. <= 0 (the default) keeps
	// write-through mirroring: every store write reaches the changelog
	// immediately, so after a crash restored state covers everything
	// processed and offset-tracking operators can suppress replayed output
	// (§4.3 exactly-once). Values > 1 buffer writes until commit: state then
	// tracks committed offsets exactly (replay recomputes rather than
	// double-applies), at the cost of re-emitted output for the replayed
	// suffix in tasks that rely on state-ahead replay detection.
	WriteBatchSize int
	// MetricsInterval, when positive, runs a MetricsSnapshotReporter per
	// container, publishing registry snapshots to the metrics stream at this
	// period (plus an initial snapshot at start and a final one at stop).
	// 0 disables reporting.
	MetricsInterval time.Duration
	// MetricsTopic overrides the metrics stream name; empty uses
	// DefaultMetricsTopic.
	MetricsTopic string
	// TraceSampleRate, when positive, samples roughly this fraction of
	// messages produced to the job's input topics into end-to-end traces
	// (produce → poll → operators → store/changelog → commit). The runner
	// installs the sampler on the broker at submit. 0 disables tracing;
	// the hot path then pays a single branch per call site.
	TraceSampleRate float64
	// TraceInterval, when positive, runs a TraceReporter per container,
	// draining the span ring onto the trace stream at this period (plus a
	// final flush at stop). Defaults to DefaultTraceInterval whenever
	// TraceSampleRate is set and this is 0.
	TraceInterval time.Duration
	// TraceTopic overrides the trace stream name; empty uses
	// DefaultTraceTopic.
	TraceTopic string
	// ProfileInterval, when positive, runs a continuous ProfileReporter per
	// container: every interval it captures a short windowed CPU profile
	// plus heap-delta/goroutine snapshots, folds them per function, and
	// publishes the batch to the profiles stream (plus a final CPU-less
	// flush at stop). 0 disables continuous profiling entirely; the hot
	// path then pays nothing.
	ProfileInterval time.Duration
	// ProfileWindow is the CPU sampling length within each interval; 0
	// uses profile.DefaultWindow, values above ProfileInterval clamp to it
	// (100% duty — the aggressive mode of the overhead sweep).
	ProfileWindow time.Duration
	// ProfilesTopic overrides the profiles stream name; empty uses
	// DefaultProfilesTopic.
	ProfilesTopic string
	// BatchSize caps how many messages one poll delivers to a task and, for
	// tasks implementing BatchedStreamTask, selects vectorized delivery:
	// whole batches per ProcessBatch call. 0 (the default) uses
	// DefaultBatchSize. ScalarBatch (-1) forces per-message delivery even
	// for batched tasks — the scalar reference path the equivalence tests
	// compare against. Plain StreamTasks see per-message delivery at every
	// setting.
	BatchSize int
	// Config carries arbitrary job configuration strings.
	Config map[string]string
}

// MetricsTopicName resolves the metrics stream this job publishes to.
func (j *JobSpec) MetricsTopicName() string {
	if j.MetricsTopic != "" {
		return j.MetricsTopic
	}
	return DefaultMetricsTopic
}

// TraceTopicName resolves the trace stream this job publishes to.
func (j *JobSpec) TraceTopicName() string {
	if j.TraceTopic != "" {
		return j.TraceTopic
	}
	return DefaultTraceTopic
}

// ProfilesTopicName resolves the profiles stream this job publishes to.
func (j *JobSpec) ProfilesTopicName() string {
	if j.ProfilesTopic != "" {
		return j.ProfilesTopic
	}
	return DefaultProfilesTopic
}

// Validate checks the spec for structural problems.
func (j *JobSpec) Validate() error {
	if j.Name == "" {
		return errors.New("samza: job needs a name")
	}
	if len(j.Inputs) == 0 {
		return fmt.Errorf("samza: job %q has no inputs", j.Name)
	}
	if j.TaskFactory == nil {
		return fmt.Errorf("samza: job %q has no task factory", j.Name)
	}
	if j.TaskParallelism < 0 {
		return fmt.Errorf("samza: job %q has negative task parallelism %d", j.Name, j.TaskParallelism)
	}
	if j.StoreCacheSize < 0 {
		return fmt.Errorf("samza: job %q has negative store cache size %d", j.Name, j.StoreCacheSize)
	}
	if j.TraceSampleRate < 0 || j.TraceSampleRate > 1 {
		return fmt.Errorf("samza: job %q trace sample rate %v outside [0, 1]", j.Name, j.TraceSampleRate)
	}
	if j.ProfileInterval < 0 || j.ProfileWindow < 0 {
		return fmt.Errorf("samza: job %q has negative profile interval/window", j.Name)
	}
	if j.BatchSize < ScalarBatch {
		return fmt.Errorf("samza: job %q has invalid batch size %d (want >= %d)", j.Name, j.BatchSize, ScalarBatch)
	}
	seen := map[string]bool{}
	for _, in := range j.Inputs {
		if in.Topic == "" {
			return fmt.Errorf("samza: job %q has an unnamed input", j.Name)
		}
		if seen[in.Topic] {
			return fmt.Errorf("samza: job %q lists input %q twice", j.Name, in.Topic)
		}
		seen[in.Topic] = true
	}
	storeSeen := map[string]bool{}
	for _, st := range j.Stores {
		if st.Name == "" {
			return fmt.Errorf("samza: job %q has an unnamed store", j.Name)
		}
		if storeSeen[st.Name] {
			return fmt.Errorf("samza: job %q declares store %q twice", j.Name, st.Name)
		}
		storeSeen[st.Name] = true
	}
	return nil
}

// ChangelogTopic is the changelog topic name for a store of a job.
func (j *JobSpec) ChangelogTopic(store string) string {
	return fmt.Sprintf("%s-%s-changelog", j.Name, store)
}

// CheckpointTopic is the compacted topic holding task checkpoints.
func (j *JobSpec) CheckpointTopic() string {
	return fmt.Sprintf("__checkpoint-%s", j.Name)
}

// assignment maps tasks (one per partition) to containers.
type assignment struct {
	// taskPartitions[taskIdx] is the partition the task owns across every
	// input stream (Samza's GroupByPartition strategy).
	taskPartitions []int32
	// containerTasks[containerIdx] lists task indexes owned by a container.
	containerTasks [][]int
}

// planAssignment computes the task and container layout for the job against
// the broker's current topic metadata. Every input must have the same
// partition count (Samza's GroupByPartition requirement for joins to align);
// jobs whose inputs differ are rejected to avoid silently mismatched joins.
func planAssignment(b *kafka.Broker, j *JobSpec) (*assignment, error) {
	partitions := int32(-1)
	for _, in := range j.Inputs {
		n, err := b.Partitions(in.Topic)
		if err != nil {
			return nil, fmt.Errorf("samza: job %q input: %w", j.Name, err)
		}
		if partitions == -1 {
			partitions = n
		} else if n != partitions {
			return nil, fmt.Errorf("samza: job %q inputs disagree on partition count (%d vs %d); repartition upstream",
				j.Name, partitions, n)
		}
	}
	containers := j.Containers
	if containers <= 0 {
		containers = 1
	}
	if int32(containers) > partitions {
		containers = int(partitions)
	}
	a := &assignment{containerTasks: make([][]int, containers)}
	for p := int32(0); p < partitions; p++ {
		taskIdx := int(p)
		a.taskPartitions = append(a.taskPartitions, p)
		c := taskIdx % containers
		a.containerTasks[c] = append(a.containerTasks[c], taskIdx)
	}
	return a, nil
}

package samza

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"samzasql/internal/kafka"
)

func httpGet(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestIntrospectionEndpoints(t *testing.T) {
	b, runner := testEnv()
	if err := b.EnsureTopic("in", kafka.TopicConfig{Partitions: 2}); err != nil {
		t.Fatal(err)
	}
	if err := b.EnsureTopic("out", kafka.TopicConfig{Partitions: 2}); err != nil {
		t.Fatal(err)
	}
	produceN(t, b, "in", 0, 10, "a")
	produceN(t, b, "in", 1, 10, "b")

	addr, shutdown, err := runner.ServeIntrospection("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown(context.Background())

	job := &JobSpec{
		Name:        "introspected",
		Inputs:      []StreamSpec{{Topic: "in"}},
		TaskFactory: func() StreamTask { return &passthroughTask{out: "out"} },
		CommitEvery: 5,
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rj, err := runner.Submit(ctx, job)
	if err != nil {
		t.Fatal(err)
	}
	defer rj.Stop()
	waitFor(t, 5*time.Second, func() bool {
		return rj.MetricsSnapshot().Counters["messages-processed"] >= 20
	}, "messages processed")

	base := "http://" + addr
	code, body := httpGet(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	for _, want := range []string{
		"# job introspected",
		"counter messages-processed 20",
		"histogram task.Partition-0.process-ns",
		"gauge kafka.lag.in.0 0",
		"gauge kafka.lag.in.1 0",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}

	code, body = httpGet(t, base+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz status %d: %s", code, body)
	}
	var h struct {
		Status string                       `json:"status"`
		Jobs   map[string]map[string]string `json:"jobs"`
	}
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatalf("/healthz is not JSON: %v\n%s", err, body)
	}
	if h.Status != "ok" {
		t.Fatalf("healthz status %q, want ok", h.Status)
	}
	tasks := h.Jobs["introspected"]
	if tasks["Partition-0"] != "running" || tasks["Partition-1"] != "running" {
		t.Fatalf("task health %v, want both running", tasks)
	}

	code, body = httpGet(t, base+"/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ status %d body %.80s", code, body)
	}
}

// TestIntrospectionExtraHandlers checks JobRunner.Handle registration both
// before and after the server starts — the hook the monitor uses to mount
// /query and /alerts without samza importing it.
func TestIntrospectionExtraHandlers(t *testing.T) {
	_, runner := testEnv()
	runner.Handle("/before", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		io.WriteString(w, "registered before serve")
	}))
	addr, shutdown, err := runner.ServeIntrospection("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown(context.Background())
	runner.Handle("/after", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		io.WriteString(w, "registered after serve")
	}))

	base := "http://" + addr
	if code, body := httpGet(t, base+"/before"); code != http.StatusOK || body != "registered before serve" {
		t.Fatalf("/before status %d body %q", code, body)
	}
	if code, body := httpGet(t, base+"/after"); code != http.StatusOK || body != "registered after serve" {
		t.Fatalf("/after status %d body %q", code, body)
	}
}

package samza

import (
	"encoding/json"
	"fmt"

	"samzasql/internal/kafka"
)

// Checkpoint records, per input topic, the next offset a task should consume
// from its partition. Samza writes these to a Kafka checkpoint stream (§2
// "Durability", Figure 1); we use a compacted topic keyed by task name.
type Checkpoint struct {
	Task    TaskName         `json:"task"`
	Offsets map[string]int64 `json:"offsets"` // topic -> next offset
}

// CheckpointManager reads and writes task checkpoints for one job.
type CheckpointManager struct {
	broker *kafka.Broker
	topic  string
}

// NewCheckpointManager ensures the checkpoint topic exists and returns a
// manager for it.
func NewCheckpointManager(b *kafka.Broker, job *JobSpec) (*CheckpointManager, error) {
	topic := job.CheckpointTopic()
	if err := b.EnsureTopic(topic, kafka.TopicConfig{Partitions: 1, Compacted: true}); err != nil {
		return nil, fmt.Errorf("samza: checkpoint topic: %w", err)
	}
	return &CheckpointManager{broker: b, topic: topic}, nil
}

// Write appends a checkpoint for the task.
func (m *CheckpointManager) Write(cp Checkpoint) error {
	val, err := json.Marshal(cp)
	if err != nil {
		return err
	}
	_, err = m.broker.Produce(m.topic, kafka.Message{
		Partition: 0,
		Key:       []byte(cp.Task),
		Value:     val,
	})
	return err
}

// Read returns the most recent checkpoint for the task, or ok=false if the
// task has never checkpointed.
func (m *CheckpointManager) Read(task TaskName) (Checkpoint, bool, error) {
	tp := kafka.TopicPartition{Topic: m.topic, Partition: 0}
	start, err := m.broker.StartOffset(tp)
	if err != nil {
		return Checkpoint{}, false, err
	}
	hwm, err := m.broker.HighWatermark(tp)
	if err != nil {
		return Checkpoint{}, false, err
	}
	var latest Checkpoint
	found := false
	off := start
	for off < hwm {
		msgs, wait, err := m.broker.Fetch(tp, off, 256)
		if err != nil {
			return Checkpoint{}, false, err
		}
		if wait != nil {
			break
		}
		for _, msg := range msgs {
			if string(msg.Key) != string(task) {
				continue
			}
			var cp Checkpoint
			if err := json.Unmarshal(msg.Value, &cp); err != nil {
				return Checkpoint{}, false, fmt.Errorf("samza: corrupt checkpoint at %s@%d: %w", tp, msg.Offset, err)
			}
			latest, found = cp, true
		}
		off = msgs[len(msgs)-1].Offset + 1
	}
	return latest, found, nil
}

package samza

import (
	"context"
	"fmt"
	"testing"
	"time"

	"samzasql/internal/kafka"
)

// latencyTask models an operator whose per-message cost is dominated by
// waiting on something external (a remote store lookup, an RPC, downstream
// backpressure) rather than CPU. Task-level parallelism overlaps those waits
// across a container's tasks, so the speedup shows even on a single core;
// CPU-bound operators additionally need GOMAXPROCS > 1 to scale.
type latencyTask struct{ d time.Duration }

func (t *latencyTask) Init(*TaskContext) error { return nil }

func (t *latencyTask) Process(IncomingMessageEnvelope, MessageCollector, Coordinator) error {
	time.Sleep(t.d)
	return nil
}

// BenchmarkContainerParallelism compares one container running 4 tasks under
// the sequential loop (TaskParallelism=1, the paper prototype's behavior)
// against bounded (2) and full (4) task parallelism. Throughput is reported
// as msg/s; the par=4 case should beat par=1 by well over 2x.
func BenchmarkContainerParallelism(b *testing.B) {
	for _, par := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("tasks=4/par=%d", par), func(b *testing.B) {
			benchContainerParallelism(b, par)
		})
	}
}

func benchContainerParallelism(b *testing.B, par int) {
	const (
		parts   = int32(4)
		perPart = 64
		latency = 100 * time.Microsecond
	)
	total := int64(parts) * perPart
	key, val := []byte("k"), make([]byte, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		broker := kafka.NewBroker()
		if err := broker.CreateTopic("in", kafka.TopicConfig{Partitions: parts}); err != nil {
			b.Fatal(err)
		}
		for p := int32(0); p < parts; p++ {
			for m := 0; m < perPart; m++ {
				if _, err := broker.Produce("in", kafka.Message{Partition: p, Key: key, Value: val}); err != nil {
					b.Fatal(err)
				}
			}
		}
		job := &JobSpec{
			Name:            "bench-par",
			Inputs:          []StreamSpec{{Topic: "in"}},
			TaskParallelism: par,
			TaskFactory:     func() StreamTask { return &latencyTask{d: latency} },
		}
		cpm, err := NewCheckpointManager(broker, job)
		if err != nil {
			b.Fatal(err)
		}
		cont, err := newContainer(0, job, broker, cpm, []int32{0, 1, 2, 3}, parts)
		if err != nil {
			b.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan error, 1)
		b.StartTimer()
		go func() { done <- cont.Run(ctx) }()
		for cont.processed.Value() < total {
			time.Sleep(50 * time.Microsecond)
		}
		b.StopTimer()
		cancel()
		if err := <-done; err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
	b.StopTimer()
	b.ReportMetric(float64(total)*float64(b.N)/b.Elapsed().Seconds(), "msg/s")
}

type nopTask struct{}

func (nopTask) Init(*TaskContext) error { return nil }

func (nopTask) Process(IncomingMessageEnvelope, MessageCollector, Coordinator) error {
	return nil
}

// BenchmarkTaskLoopMachineryAllocs measures the container's own per-message
// overhead — consumer poll, envelope construction, coordinator plumbing,
// metrics — by driving pollTask directly over a prefilled partition with a
// no-op task. The loop machinery must amortize to 0 allocs/op: the only
// allocations are the fetched batch slices, ~1 per 256 messages.
func BenchmarkTaskLoopMachineryAllocs(b *testing.B) {
	broker := kafka.NewBroker()
	if err := broker.CreateTopic("in", kafka.TopicConfig{Partitions: 1}); err != nil {
		b.Fatal(err)
	}
	key, val := []byte("k"), make([]byte, 100)
	for i := 0; i < b.N; i++ {
		if _, err := broker.Produce("in", kafka.Message{Partition: 0, Key: key, Value: val, Timestamp: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
	job := &JobSpec{
		Name:        "bench-alloc",
		Inputs:      []StreamSpec{{Topic: "in"}},
		TaskFactory: func() StreamTask { return nopTask{} },
	}
	cpm, err := NewCheckpointManager(broker, job)
	if err != nil {
		b.Fatal(err)
	}
	cont, err := newContainer(0, job, broker, cpm, []int32{0}, 1)
	if err != nil {
		b.Fatal(err)
	}
	ti := cont.tasks[0]
	if err := ti.consumer.Assign(kafka.TopicPartition{Topic: "in", Partition: 0}); err != nil {
		b.Fatal(err)
	}
	if err := ti.task.Init(ti.ctx); err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for cont.processed.Value() < int64(b.N) {
		if _, err := cont.pollTask(ctx, ti); err != nil {
			b.Fatal(err)
		}
	}
}

package samza

import (
	"context"
	"encoding/json"
	"fmt"
	"time"

	"samzasql/internal/kafka"
	"samzasql/internal/metrics"
	"samzasql/internal/serde"
)

// DefaultMetricsTopic is the stream metrics snapshots publish to when the
// job does not override it — Samza's "metrics" stream convention, prefixed
// like the other framework topics.
const DefaultMetricsTopic = "__metrics"

// MetricsSnapshotMessage is one published registry snapshot — the analog of
// Samza's MetricsSnapshot envelope. Because it travels over an ordinary
// stream, monitoring data inherits the platform's own properties (§2):
// replayable from retention, consumable by downstream jobs, and queryable
// with the same tools as any other stream.
type MetricsSnapshotMessage struct {
	// Job is the publishing job's name.
	Job string `json:"job"`
	// Container is the publishing container's ID within the job.
	Container int `json:"container"`
	// TimeMillis is the publish wall-clock time.
	TimeMillis int64 `json:"time-millis"`
	// Seq numbers this container's snapshots from 1.
	Seq int64 `json:"seq"`
	// Final marks the flush published when the container stops. Consumers
	// (the monitor, tests on short-lived jobs) use it to close out a
	// container's series instead of waiting for an interval that will never
	// tick again.
	Final bool `json:"final,omitempty"`
	// Metrics is the typed registry snapshot.
	Metrics metrics.Snapshot `json:"metrics"`
}

// snapshotSerde routes snapshots through the serde stack like any payload,
// registered as "metrics-snapshot" so jobs and tools resolve it by name.
type snapshotSerde struct{}

// Name implements serde.Serde.
func (snapshotSerde) Name() string { return "metrics-snapshot" }

// Encode implements serde.Serde.
func (snapshotSerde) Encode(v any) ([]byte, error) {
	m, ok := v.(*MetricsSnapshotMessage)
	if !ok {
		return nil, fmt.Errorf("%w: want *samza.MetricsSnapshotMessage, got %T", serde.ErrWrongType, v)
	}
	return json.Marshal(m)
}

// Decode implements serde.Serde.
func (snapshotSerde) Decode(data []byte) (any, error) {
	var m MetricsSnapshotMessage
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, err
	}
	return &m, nil
}

func init() { serde.Register(snapshotSerde{}) }

// MetricsSnapshotReporter periodically serializes one container's registry
// onto the metrics stream. It publishes an initial snapshot on start, one
// per interval, and a final one on shutdown, so even a short-lived job
// leaves at least two snapshots behind.
type MetricsSnapshotReporter struct {
	broker    *kafka.Broker
	job       string
	container int
	topic     string
	interval  time.Duration
	reg       *metrics.Registry
	s         serde.Serde
	seq       int64
	// refresh, when non-nil, runs before each publish to update pull-style
	// gauges (consumer lag) that nothing on the hot path touches.
	refresh func()
}

// NewMetricsSnapshotReporter builds a reporter over the container's registry.
// The metrics topic must already exist (Container.Run ensures it).
func NewMetricsSnapshotReporter(b *kafka.Broker, job string, container int, topic string, interval time.Duration, reg *metrics.Registry, refresh func()) *MetricsSnapshotReporter {
	s, err := serde.Lookup("metrics-snapshot")
	if err != nil {
		// Registered by this package's init; absence is a programming error.
		panic(err)
	}
	return &MetricsSnapshotReporter{
		broker: b, job: job, container: container,
		topic: topic, interval: interval, reg: reg, s: s,
		refresh: refresh,
	}
}

// Publish serializes one snapshot onto the metrics stream.
func (r *MetricsSnapshotReporter) Publish() error { return r.publish(false) }

func (r *MetricsSnapshotReporter) publish(final bool) error {
	if r.refresh != nil {
		r.refresh()
	}
	r.seq++
	msg := &MetricsSnapshotMessage{
		Job:        r.job,
		Container:  r.container,
		TimeMillis: time.Now().UnixMilli(),
		Seq:        r.seq,
		Final:      final,
		Metrics:    r.reg.Snapshot(),
	}
	data, err := r.s.Encode(msg)
	if err != nil {
		return fmt.Errorf("samza: metrics snapshot encode: %w", err)
	}
	_, err = r.broker.Produce(r.topic, kafka.Message{
		Partition: 0,
		Key:       []byte(fmt.Sprintf("%s-%d", r.job, r.container)),
		Value:     data,
		Timestamp: msg.TimeMillis,
	})
	if err != nil {
		return fmt.Errorf("samza: metrics snapshot publish: %w", err)
	}
	return nil
}

// Run publishes until ctx is cancelled, then flushes a final snapshot
// (Final=true — mirroring TraceReporter's final flush) so a job that stops
// between ticks still leaves its closing counters on the stream. Publish
// errors are not fatal to the job: metrics reporting must never take down
// the pipeline it observes, so Run drops failed publishes and tries again
// next tick.
func (r *MetricsSnapshotReporter) Run(ctx context.Context) {
	_ = r.publish(false)
	t := time.NewTicker(r.interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			_ = r.publish(true)
			return
		case <-t.C:
			_ = r.publish(false)
		}
	}
}

// MetricsTailer consumes a metrics stream back into decoded snapshots — the
// consumer half of the reporter, used by the shell's \metrics command and by
// tests asserting on published telemetry.
type MetricsTailer struct {
	consumer *kafka.Consumer
	topic    string
	s        serde.Serde
}

// NewMetricsTailer attaches a consumer at the start of the metrics topic.
func NewMetricsTailer(b *kafka.Broker, topic string) (*MetricsTailer, error) {
	s, err := serde.Lookup("metrics-snapshot")
	if err != nil {
		return nil, err
	}
	c := kafka.NewConsumer(b, "metrics-tailer")
	if err := c.Assign(kafka.TopicPartition{Topic: topic, Partition: 0}); err != nil {
		return nil, fmt.Errorf("samza: metrics tailer assign: %w", err)
	}
	return &MetricsTailer{consumer: c, topic: topic, s: s}, nil
}

// BindLag registers the tailer's own consumer lag on the metrics stream as
// a gauge ("tailer.lag.<topic>.0") in reg, so the observability pipeline
// is itself observable. Call UpdateLag to refresh it.
func (t *MetricsTailer) BindLag(reg *metrics.Registry) {
	tp := kafka.TopicPartition{Topic: t.topic, Partition: 0}
	t.consumer.BindLagGauge(tp, reg.Gauge(fmt.Sprintf("tailer.lag.%s.0", t.topic)))
}

// UpdateLag refreshes the bound lag gauge from the broker's high watermark
// and returns the tailer's outstanding snapshots.
func (t *MetricsTailer) UpdateLag() (int64, error) {
	return t.consumer.UpdateLag()
}

// Poll returns up to max snapshots published since the last call, blocking
// per the consumer's semantics until messages arrive or ctx ends.
func (t *MetricsTailer) Poll(ctx context.Context, max int) ([]*MetricsSnapshotMessage, error) {
	msgs, err := t.consumer.Poll(ctx, max)
	if err != nil {
		return nil, err
	}
	out := make([]*MetricsSnapshotMessage, 0, len(msgs))
	for i := range msgs {
		v, err := t.s.Decode(msgs[i].Value)
		if err != nil {
			return out, fmt.Errorf("samza: metrics snapshot decode: %w", err)
		}
		out = append(out, v.(*MetricsSnapshotMessage))
	}
	return out, nil
}

// Close releases the tailer's consumer.
func (t *MetricsTailer) Close() { t.consumer.Close() }

package samza

import (
	"context"
	"testing"
	"time"

	"samzasql/internal/kafka"
	"samzasql/internal/serde"
)

func TestSnapshotSerdeRoundTrip(t *testing.T) {
	s, err := serde.Lookup("metrics-snapshot")
	if err != nil {
		t.Fatal(err)
	}
	in := &MetricsSnapshotMessage{Job: "j", Container: 2, TimeMillis: 123, Seq: 7}
	in.Metrics.Counters = map[string]int64{"messages-processed": 42}
	in.Metrics.Gauges = map[string]int64{"kafka.lag.orders.0": 5}
	data, err := s.Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	v, err := s.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	out := v.(*MetricsSnapshotMessage)
	if out.Job != "j" || out.Container != 2 || out.Seq != 7 {
		t.Fatalf("round trip mangled envelope: %+v", out)
	}
	if out.Metrics.Counters["messages-processed"] != 42 || out.Metrics.Gauges["kafka.lag.orders.0"] != 5 {
		t.Fatalf("round trip mangled metrics: %+v", out.Metrics)
	}
	if _, err := s.Encode("not a snapshot"); err == nil {
		t.Fatal("expected wrong-type error")
	}
}

// TestMetricsSnapshotReporterPublishes runs a job with the reporter enabled
// and tails the metrics stream back, asserting the published snapshots carry
// per-task latency percentiles and per-partition consumer-lag gauges.
func TestMetricsSnapshotReporterPublishes(t *testing.T) {
	b, runner := testEnv()
	if err := b.EnsureTopic("in", kafka.TopicConfig{Partitions: 2}); err != nil {
		t.Fatal(err)
	}
	if err := b.EnsureTopic("out", kafka.TopicConfig{Partitions: 2}); err != nil {
		t.Fatal(err)
	}
	produceN(t, b, "in", 0, 30, "a")
	produceN(t, b, "in", 1, 20, "b")

	job := &JobSpec{
		Name:            "reported",
		Inputs:          []StreamSpec{{Topic: "in"}},
		TaskFactory:     func() StreamTask { return &passthroughTask{out: "out"} },
		CommitEvery:     10,
		MetricsInterval: 5 * time.Millisecond,
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rj, err := runner.Submit(ctx, job)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool {
		return rj.MetricsSnapshot().Counters["messages-processed"] >= 50
	}, "all messages processed")
	// Let at least one interval tick fire before the final flush.
	time.Sleep(15 * time.Millisecond)
	rj.Stop()

	tailer, err := NewMetricsTailer(b, DefaultMetricsTopic)
	if err != nil {
		t.Fatal(err)
	}
	defer tailer.Close()
	tctx, tcancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer tcancel()
	var snaps []*MetricsSnapshotMessage
	for len(snaps) < 2 {
		batch, err := tailer.Poll(tctx, 128)
		if err != nil {
			t.Fatalf("tailer poll after %d snapshots: %v", len(snaps), err)
		}
		snaps = append(snaps, batch...)
	}
	if len(snaps) < 2 {
		t.Fatalf("want >= 2 published snapshots, got %d", len(snaps))
	}
	for i, s := range snaps {
		if s.Job != "reported" {
			t.Fatalf("snapshot %d from unexpected job %q", i, s.Job)
		}
		if s.Seq < 1 {
			t.Fatalf("snapshot %d has seq %d", i, s.Seq)
		}
	}
	// The last snapshot is the final flush: complete end-of-run metrics.
	last := snaps[len(snaps)-1]
	if got := last.Metrics.Counters["messages-processed"]; got != 50 {
		t.Fatalf("final snapshot messages-processed = %d, want 50", got)
	}
	for _, task := range []string{"Partition-0", "Partition-1"} {
		h, ok := last.Metrics.Histograms["task."+task+".process-ns"]
		if !ok {
			t.Fatalf("final snapshot missing task %s process-latency histogram; have %v",
				task, last.Metrics.Histograms)
		}
		if h.Count == 0 || h.P50 <= 0 || h.P99 < h.P50 {
			t.Fatalf("task %s latency histogram implausible: %+v", task, h)
		}
	}
	for _, g := range []string{"kafka.lag.in.0", "kafka.lag.in.1"} {
		lag, ok := last.Metrics.Gauges[g]
		if !ok {
			t.Fatalf("final snapshot missing lag gauge %s; have %v", g, last.Metrics.Gauges)
		}
		if lag != 0 {
			t.Fatalf("caught-up job reports lag %d on %s", lag, g)
		}
	}
}

// TestMetricsReporterFinalSnapshotShortLivedJob is the regression test for
// the stop-flush: a job that stops long before its first interval tick must
// still leave an initial and a Final=true closing snapshot on __metrics,
// with the closing one carrying the complete end-of-run counters.
func TestMetricsReporterFinalSnapshotShortLivedJob(t *testing.T) {
	b, runner := testEnv()
	if err := b.EnsureTopic("in", kafka.TopicConfig{Partitions: 1}); err != nil {
		t.Fatal(err)
	}
	if err := b.EnsureTopic("out", kafka.TopicConfig{Partitions: 1}); err != nil {
		t.Fatal(err)
	}
	produceN(t, b, "in", 0, 10, "x")

	job := &JobSpec{
		Name:        "short-lived",
		Inputs:      []StreamSpec{{Topic: "in"}},
		TaskFactory: func() StreamTask { return &passthroughTask{out: "out"} },
		// An interval the job will never reach: every snapshot on the
		// stream is either the startup publish or the stop flush.
		MetricsInterval: time.Hour,
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rj, err := runner.Submit(ctx, job)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool {
		return rj.MetricsSnapshot().Counters["messages-processed"] >= 10
	}, "all messages processed")
	rj.Stop()

	tailer, err := NewMetricsTailer(b, DefaultMetricsTopic)
	if err != nil {
		t.Fatal(err)
	}
	defer tailer.Close()
	tctx, tcancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer tcancel()
	snaps, err := tailer.Poll(tctx, 128)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) < 2 {
		t.Fatalf("short-lived job published %d snapshots, want >= 2 (initial + final)", len(snaps))
	}
	for i, s := range snaps[:len(snaps)-1] {
		if s.Final {
			t.Fatalf("snapshot %d of %d marked Final", i, len(snaps))
		}
	}
	last := snaps[len(snaps)-1]
	if !last.Final {
		t.Fatalf("closing snapshot not marked Final: %+v", last)
	}
	if got := last.Metrics.Counters["messages-processed"]; got != 10 {
		t.Fatalf("final snapshot messages-processed = %d, want 10", got)
	}
}

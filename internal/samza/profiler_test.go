package samza

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"samzasql/internal/kafka"
	"samzasql/internal/profile"
	"samzasql/internal/serde"
)

func TestProfileSerdeRoundTrip(t *testing.T) {
	s, err := serde.Lookup("profile-batch")
	if err != nil {
		t.Fatal(err)
	}
	in := &ProfileBatchMessage{
		Job: "j", Container: 1, TimeMillis: 99, Seq: 3, WindowMillis: 200,
		CPU:        []profile.FuncStat{{Name: "samzasql/internal/operators.fold", Flat: 1000, Cum: 2500}},
		HeapDelta:  []profile.FuncStat{{Name: "encoding/json.Marshal", Flat: 4096, Cum: 8192}},
		Goroutines: []profile.FuncStat{{Name: "runtime.gopark", Flat: 12, Cum: 12}},
	}
	data, err := s.Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	v, err := s.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	out := v.(*ProfileBatchMessage)
	if out.Job != "j" || out.Container != 1 || out.Seq != 3 || out.WindowMillis != 200 {
		t.Fatalf("round trip mangled envelope: %+v", out)
	}
	if len(out.CPU) != 1 || out.CPU[0].Flat != 1000 || out.CPU[0].Cum != 2500 {
		t.Fatalf("round trip mangled cpu stats: %+v", out.CPU)
	}
	if len(out.HeapDelta) != 1 || len(out.Goroutines) != 1 {
		t.Fatalf("round trip dropped sections: %+v", out)
	}
	if _, err := s.Encode("not a batch"); err == nil {
		t.Fatal("expected wrong-type error")
	}
}

// TestProfileReporterPublishes runs a job with continuous profiling enabled
// and tails __profiles back: batches must arrive with increasing Seq,
// non-empty heap/goroutine folds, and a Final flush closing the series.
func TestProfileReporterPublishes(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping CPU capture windows")
	}
	b, runner := testEnv()
	if err := b.EnsureTopic("in", kafka.TopicConfig{Partitions: 1}); err != nil {
		t.Fatal(err)
	}
	if err := b.EnsureTopic("out", kafka.TopicConfig{Partitions: 1}); err != nil {
		t.Fatal(err)
	}
	produceN(t, b, "in", 0, 200, "p")

	job := &JobSpec{
		Name:            "profiled",
		Inputs:          []StreamSpec{{Topic: "in"}},
		TaskFactory:     func() StreamTask { return &passthroughTask{out: "out"} },
		ProfileInterval: 40 * time.Millisecond,
		ProfileWindow:   15 * time.Millisecond,
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rj, err := runner.Submit(ctx, job)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool {
		return rj.MetricsSnapshot().Counters["messages-processed"] >= 200
	}, "all messages processed")
	// Let at least two capture windows complete before stopping.
	time.Sleep(150 * time.Millisecond)
	rj.Stop()

	tailer, err := NewProfilesTailer(b, DefaultProfilesTopic)
	if err != nil {
		t.Fatal(err)
	}
	defer tailer.Close()
	tctx, tcancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer tcancel()
	var batches []*ProfileBatchMessage
	for len(batches) < 2 {
		got, err := tailer.Poll(tctx, 128)
		if err != nil {
			t.Fatalf("tailer poll after %d batches: %v", len(batches), err)
		}
		batches = append(batches, got...)
	}
	var prevSeq int64
	for i, m := range batches {
		if m.Job != "profiled" || m.Container != 0 {
			t.Fatalf("batch %d from unexpected publisher %s/%d", i, m.Job, m.Container)
		}
		if m.Seq != prevSeq+1 {
			t.Fatalf("batch %d seq = %d, want %d", i, m.Seq, prevSeq+1)
		}
		prevSeq = m.Seq
	}
	last := batches[len(batches)-1]
	if !last.Final {
		t.Fatalf("closing batch not marked Final: %+v", last)
	}
	// The final flush skips CPU but always snapshots goroutines; at least
	// one interval batch must carry a CPU window length.
	if len(last.Goroutines) == 0 {
		t.Fatal("final batch has no goroutine fold")
	}
	sawWindow := false
	for _, m := range batches[:len(batches)-1] {
		if m.WindowMillis > 0 {
			sawWindow = true
		}
	}
	if !sawWindow {
		t.Fatal("no interval batch carried a CPU window")
	}
}

// TestProfilesTailerResumeAcrossContainerRestart is the restart-resume
// coverage: a profiled job whose task crashes and restarts under the YARN
// sim must keep publishing batches from the second attempt, the tailer
// consuming through the restart — visible as the per-container Seq
// restarting from 1.
func TestProfilesTailerResumeAcrossContainerRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping CPU capture windows")
	}
	b, runner := testEnv()
	if err := b.EnsureTopic("in", kafka.TopicConfig{Partitions: 1}); err != nil {
		t.Fatal(err)
	}
	const total = 400
	produceN(t, b, "in", 0, total, "r")
	// The tailer attaches before the first container runs, like the monitor
	// does; ensure the topic exists up front.
	if err := b.EnsureTopic(DefaultProfilesTopic, kafka.TopicConfig{Partitions: 1}); err != nil {
		t.Fatal(err)
	}

	var crashed atomic.Bool
	job := &JobSpec{
		Name:        "crashy-profiled",
		Inputs:      []StreamSpec{{Topic: "in"}},
		CommitEvery: 10,
		MaxRestarts: 2,
		TaskFactory: func() StreamTask {
			// Slow processing keeps each attempt alive across several capture
			// intervals; the crash at message 150 forces a restart. crashed
			// is shared across factory calls so the restarted task runs clean.
			return &crashOnceTask{crashAt: 150, delay: 300 * time.Microsecond, crashed: &crashed}
		},
		ProfileInterval: 30 * time.Millisecond,
		ProfileWindow:   10 * time.Millisecond,
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rj, err := runner.Submit(ctx, job)
	if err != nil {
		t.Fatal(err)
	}

	tailer, err := NewProfilesTailer(b, DefaultProfilesTopic)
	if err != nil {
		t.Fatal(err)
	}
	defer tailer.Close()

	// Tail live while the job crashes and restarts: the consumer must ride
	// through the restart, collecting batches from both attempts.
	var batches []*ProfileBatchMessage
	seqResets := 0
	var prevSeq int64
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		pctx, pcancel := context.WithTimeout(ctx, 200*time.Millisecond)
		got, _ := tailer.Poll(pctx, 64)
		pcancel()
		for _, m := range got {
			if m.Seq <= prevSeq {
				seqResets++
			}
			prevSeq = m.Seq
			batches = append(batches, m)
		}
		if rj.MetricsSnapshot().Counters["messages-processed"] >= total && seqResets > 0 {
			break
		}
	}
	rj.Stop()
	if seqResets == 0 {
		t.Fatalf("no Seq restart observed across %d batches; the restarted container never published", len(batches))
	}
	if len(batches) < 3 {
		t.Fatalf("tailer consumed only %d batches through the restart", len(batches))
	}
}

// crashOnceTask panics once at crashAt processed messages, then runs clean
// after its restart (crashed is shared across the factory's instances).
type crashOnceTask struct {
	n       int
	crashAt int
	delay   time.Duration
	crashed *atomic.Bool
}

func (c *crashOnceTask) Init(ctx *TaskContext) error { return nil }

func (c *crashOnceTask) Process(env IncomingMessageEnvelope, col MessageCollector, coord Coordinator) error {
	c.n++
	if c.delay > 0 {
		time.Sleep(c.delay)
	}
	if c.n == c.crashAt && c.crashed.CompareAndSwap(false, true) {
		return errors.New("injected task failure for profiles-tailer resume test")
	}
	return nil
}

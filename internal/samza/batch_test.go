package samza

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"samzasql/internal/kafka"
)

// batchRecordingTask implements both StreamTask and BatchedStreamTask,
// recording which entry point the container used and the offsets of every
// delivered batch, and forwarding input through the batched collector sink.
type batchRecordingTask struct {
	mu      *sync.Mutex
	batches *[][]int64 // offsets of each delivered batch, in order
	scalar  *atomic.Int64
	out     string
}

func (t *batchRecordingTask) Init(ctx *TaskContext) error { return nil }

func (t *batchRecordingTask) Process(env IncomingMessageEnvelope, c MessageCollector, _ Coordinator) error {
	t.scalar.Add(1)
	return c.Send(OutgoingMessageEnvelope{
		Stream: t.out, Partition: env.Partition,
		Key: env.Key, Value: env.Value, Timestamp: env.Timestamp,
	})
}

func (t *batchRecordingTask) ProcessBatch(envs []IncomingMessageEnvelope, c MessageCollector, _ Coordinator, pollNs int64) error {
	offs := make([]int64, len(envs))
	msgs := make([]kafka.Message, len(envs))
	for i, env := range envs {
		offs[i] = env.Offset
		msgs[i] = kafka.Message{
			Topic: t.out, Partition: env.Partition,
			Key: env.Key, Value: env.Value, Timestamp: env.Timestamp,
		}
	}
	t.mu.Lock()
	*t.batches = append(*t.batches, offs)
	t.mu.Unlock()
	bc, ok := c.(BatchCollector)
	if !ok {
		return fmt.Errorf("container collector %T does not implement BatchCollector", c)
	}
	return bc.SendBatch(t.out, msgs)
}

// runBatchJob submits a single-partition job with the given BatchSize over
// n preloaded messages, waits for full passthrough, and returns the
// recorded batch offsets and scalar-delivery count.
func runBatchJob(t *testing.T, batchSize, n int) ([][]int64, int64) {
	t.Helper()
	b, r := testEnv()
	for _, topic := range []string{"in", "out"} {
		if err := b.CreateTopic(topic, kafka.TopicConfig{Partitions: 1}); err != nil {
			t.Fatal(err)
		}
	}
	produceN(t, b, "in", 0, n, "m")
	var mu sync.Mutex
	var batches [][]int64
	var scalar atomic.Int64
	job := &JobSpec{
		Name:       "batch-delivery",
		Inputs:     []StreamSpec{{Topic: "in"}},
		Containers: 1,
		BatchSize:  batchSize,
		TaskFactory: func() StreamTask {
			return &batchRecordingTask{mu: &mu, batches: &batches, scalar: &scalar, out: "out"}
		},
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rj, err := r.Submit(ctx, job)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool {
		return len(drainTopic(t, b, "out")) == n
	}, fmt.Sprintf("%d output messages", n))
	rj.Stop()
	if got := len(drainTopic(t, b, "out")); got != n {
		t.Fatalf("%d output messages, want %d", got, n)
	}
	snap := rj.MetricsSnapshot()
	if snap.Counters["messages-processed"] != int64(n) || snap.Counters["messages-sent"] != int64(n) {
		t.Fatalf("metrics after batch run: %v", snap.Counters)
	}
	mu.Lock()
	defer mu.Unlock()
	return batches, scalar.Load()
}

// flatten checks the recorded batches cover offsets 0..n-1 in order —
// batch delivery must not reorder, skip or replay messages.
func flattenBatches(t *testing.T, batches [][]int64, n int) {
	t.Helper()
	var next int64
	for _, offs := range batches {
		if len(offs) == 0 {
			t.Fatal("container delivered an empty batch")
		}
		for _, o := range offs {
			if o != next {
				t.Fatalf("batch offsets out of order: got %d, want %d (batches %v)", o, next, batches)
			}
			next++
		}
	}
	if next != int64(n) {
		t.Fatalf("batches covered %d offsets, want %d", next, n)
	}
}

// TestBatchedTaskReceivesBlocks verifies the default vectorized delivery: a
// BatchedStreamTask gets whole multi-message batches through ProcessBatch
// (never per-message Process), covering every offset exactly once, with the
// batched collector sink wired.
func TestBatchedTaskReceivesBlocks(t *testing.T) {
	const n = 300
	batches, scalar := runBatchJob(t, 0, n)
	if scalar != 0 {
		t.Fatalf("scalar Process ran %d times for a batched task", scalar)
	}
	flattenBatches(t, batches, n)
	multi := 0
	for _, offs := range batches {
		if len(offs) > 1 {
			multi++
		}
	}
	if multi == 0 {
		t.Fatalf("no batch held more than one message across %d batches — delivery is not vectorized", len(batches))
	}
}

// TestScalarBatchForcesPerMessageDelivery pins the equivalence-reference
// escape hatch: BatchSize = ScalarBatch delivers through Process one
// message at a time even when the task implements BatchedStreamTask.
func TestScalarBatchForcesPerMessageDelivery(t *testing.T) {
	const n = 50
	batches, scalar := runBatchJob(t, ScalarBatch, n)
	if len(batches) != 0 {
		t.Fatalf("ProcessBatch ran %d times with BatchSize=ScalarBatch", len(batches))
	}
	if scalar != n {
		t.Fatalf("scalar Process ran %d times, want %d", scalar, n)
	}
}

// TestBatchSizeOneDeliversSingleRowBlocks checks the boundary granularity:
// BatchSize = 1 still uses the batched entry point, one message per block.
func TestBatchSizeOneDeliversSingleRowBlocks(t *testing.T) {
	const n = 40
	batches, scalar := runBatchJob(t, 1, n)
	if scalar != 0 {
		t.Fatalf("scalar Process ran %d times for a batched task", scalar)
	}
	for _, offs := range batches {
		if len(offs) != 1 {
			t.Fatalf("batch of %d messages with BatchSize=1", len(offs))
		}
	}
	flattenBatches(t, batches, n)
}

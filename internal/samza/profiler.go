package samza

import (
	"context"
	"encoding/json"
	"fmt"
	"time"

	"samzasql/internal/kafka"
	"samzasql/internal/metrics"
	"samzasql/internal/profile"
	"samzasql/internal/serde"
)

// DefaultProfilesTopic is the stream profile batches publish to when the
// job does not override it, mirroring the "__metrics"/"__traces" convention.
const DefaultProfilesTopic = "__profiles"

// ProfileBatchMessage is one published capture window: per-function CPU
// flat/cum nanoseconds over the window, heap-allocation deltas, and
// goroutine counts. Like metrics snapshots and trace batches it travels
// over an ordinary stream, so profiles are replayable from retention and
// consumable with the same tools as any other stream.
type ProfileBatchMessage struct {
	// Job is the publishing job's name.
	Job string `json:"job"`
	// Container is the publishing container's ID within the job. Each
	// capture observes the whole process (CPU profiling is process-global),
	// so in this in-process simulation per-container batches are views of
	// the shared process taken on that container's schedule.
	Container int `json:"container"`
	// TimeMillis is the publish wall-clock time.
	TimeMillis int64 `json:"time-millis"`
	// Seq numbers this container's batches from 1.
	Seq int64 `json:"seq"`
	// Final marks the flush published when the container stops (heap and
	// goroutine snapshots only — no CPU window delays shutdown).
	Final bool `json:"final,omitempty"`
	// WindowMillis is the CPU sampling length this batch covers.
	WindowMillis int64 `json:"window-millis"`
	// CPU is the top-N per-function CPU time over the window.
	CPU []profile.FuncStat `json:"cpu,omitempty"`
	// HeapDelta is the top-N per-function bytes allocated since the
	// previous batch.
	HeapDelta []profile.FuncStat `json:"heap-delta,omitempty"`
	// Goroutines is the top-N per-function live goroutine counts (a level,
	// not a delta).
	Goroutines []profile.FuncStat `json:"goroutines,omitempty"`
}

// profileSerde routes profile batches through the serde stack, registered
// as "profile-batch" so jobs and tools resolve it by name.
type profileSerde struct{}

// Name implements serde.Serde.
func (profileSerde) Name() string { return "profile-batch" }

// Encode implements serde.Serde.
func (profileSerde) Encode(v any) ([]byte, error) {
	m, ok := v.(*ProfileBatchMessage)
	if !ok {
		return nil, fmt.Errorf("%w: want *samza.ProfileBatchMessage, got %T", serde.ErrWrongType, v)
	}
	return json.Marshal(m)
}

// Decode implements serde.Serde.
func (profileSerde) Decode(data []byte) (any, error) {
	var m ProfileBatchMessage
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, err
	}
	return &m, nil
}

func init() { serde.Register(profileSerde{}) }

// ProfileReporter runs one container's continuous profiler: every interval
// it captures a CPU window plus heap-delta/goroutine snapshots and
// publishes the folded batch. On shutdown it publishes a final CPU-less
// batch (Final=true) so consumers can close the container's series without
// waiting out a capture window.
type ProfileReporter struct {
	broker    *kafka.Broker
	job       string
	container int
	topic     string
	prof      *profile.Profiler
	s         serde.Serde
	seq       int64
}

// NewProfileReporter builds a reporter around an enabled profiler. The
// profiles topic must already exist (Container.Run ensures it).
func NewProfileReporter(b *kafka.Broker, job string, container int, topic string, prof *profile.Profiler) *ProfileReporter {
	s, err := serde.Lookup("profile-batch")
	if err != nil {
		// Registered by this package's init; absence is a programming error.
		panic(err)
	}
	return &ProfileReporter{
		broker: b, job: job, container: container,
		topic: topic, prof: prof, s: s,
	}
}

// Publish captures one window and serializes the batch onto the profiles
// stream.
func (r *ProfileReporter) Publish(ctx context.Context) error {
	batch, err := r.prof.Capture(ctx)
	if err != nil {
		return err
	}
	return r.publish(batch, false)
}

func (r *ProfileReporter) publish(batch *profile.Batch, final bool) error {
	r.seq++
	msg := &ProfileBatchMessage{
		Job:          r.job,
		Container:    r.container,
		TimeMillis:   batch.TimeMillis,
		Seq:          r.seq,
		Final:        final,
		WindowMillis: batch.WindowMillis,
		CPU:          batch.CPU,
		HeapDelta:    batch.HeapDelta,
		Goroutines:   batch.Goroutines,
	}
	data, err := r.s.Encode(msg)
	if err != nil {
		return fmt.Errorf("samza: profile batch encode: %w", err)
	}
	_, err = r.broker.Produce(r.topic, kafka.Message{
		Partition: 0,
		Key:       []byte(fmt.Sprintf("%s-%d", r.job, r.container)),
		Value:     data,
		Timestamp: msg.TimeMillis,
	})
	if err != nil {
		return fmt.Errorf("samza: profile batch publish: %w", err)
	}
	return nil
}

// Run captures and publishes until ctx is cancelled, then flushes a final
// CPU-less batch. Capture and publish errors are not fatal to the job —
// profiling must never take down the pipeline it observes — so Run drops
// them and tries again next interval. The interval ticker starts after
// each capture returns, so a window can never overlap the next tick's.
func (r *ProfileReporter) Run(ctx context.Context) {
	interval := r.prof.Config().Interval
	for {
		// Sleep the gap between windows (interval minus the window the
		// capture itself blocks for), so the capture cadence matches the
		// configured interval rather than interval+window.
		gap := interval - r.prof.Config().Window
		if gap < 0 {
			gap = 0
		}
		t := time.NewTimer(gap)
		select {
		case <-ctx.Done():
			t.Stop()
			r.finalFlush()
			return
		case <-t.C:
		}
		_ = r.Publish(ctx)
		if ctx.Err() != nil {
			r.finalFlush()
			return
		}
	}
}

// finalFlush publishes the closing heap/goroutine snapshot with Final set.
func (r *ProfileReporter) finalFlush() {
	heap, err := r.prof.CaptureHeapDelta()
	if err != nil {
		return
	}
	gor, _ := r.prof.CaptureGoroutines()
	_ = r.publish(&profile.Batch{
		TimeMillis: time.Now().UnixMilli(),
		HeapDelta:  heap,
		Goroutines: gor,
	}, true)
}

// ProfilesTailer consumes a profiles stream back into decoded batches —
// the consumer half of the reporter, used by the monitor's hot-function
// store and by tests asserting on published profiles.
type ProfilesTailer struct {
	consumer *kafka.Consumer
	topic    string
	s        serde.Serde
}

// NewProfilesTailer attaches a consumer at the start of the profiles topic.
func NewProfilesTailer(b *kafka.Broker, topic string) (*ProfilesTailer, error) {
	s, err := serde.Lookup("profile-batch")
	if err != nil {
		return nil, err
	}
	c := kafka.NewConsumer(b, "profiles-tailer")
	if err := c.Assign(kafka.TopicPartition{Topic: topic, Partition: 0}); err != nil {
		return nil, fmt.Errorf("samza: profiles tailer assign: %w", err)
	}
	return &ProfilesTailer{consumer: c, topic: topic, s: s}, nil
}

// BindLag registers the tailer's own consumer lag on the profiles stream as
// a gauge ("tailer.lag.<topic>.0") in reg, so the observability pipeline is
// itself observable. Call UpdateLag to refresh it.
func (t *ProfilesTailer) BindLag(reg *metrics.Registry) {
	tp := kafka.TopicPartition{Topic: t.topic, Partition: 0}
	t.consumer.BindLagGauge(tp, reg.Gauge(fmt.Sprintf("tailer.lag.%s.0", t.topic)))
}

// UpdateLag refreshes the bound lag gauge from the broker's high watermark
// and returns the tailer's outstanding batches.
func (t *ProfilesTailer) UpdateLag() (int64, error) {
	return t.consumer.UpdateLag()
}

// Poll returns up to max batches published since the last call, blocking
// per the consumer's semantics until messages arrive or ctx ends.
func (t *ProfilesTailer) Poll(ctx context.Context, max int) ([]*ProfileBatchMessage, error) {
	msgs, err := t.consumer.Poll(ctx, max)
	if err != nil {
		return nil, err
	}
	out := make([]*ProfileBatchMessage, 0, len(msgs))
	for i := range msgs {
		v, err := t.s.Decode(msgs[i].Value)
		if err != nil {
			return out, fmt.Errorf("samza: profile batch decode: %w", err)
		}
		out = append(out, v.(*ProfileBatchMessage))
	}
	return out, nil
}

// Close releases the tailer's consumer.
func (t *ProfilesTailer) Close() { t.consumer.Close() }

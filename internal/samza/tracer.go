package samza

import (
	"context"
	"encoding/json"
	"fmt"
	"time"

	"samzasql/internal/kafka"
	"samzasql/internal/metrics"
	"samzasql/internal/serde"
	"samzasql/internal/trace"
)

// DefaultTraceTopic is the stream trace batches and lifecycle events
// publish to when the job does not override it, mirroring the "__metrics"
// convention.
const DefaultTraceTopic = "__traces"

// DefaultTraceInterval is the reporter period used when a job enables
// sampling without choosing one.
const DefaultTraceInterval = 250 * time.Millisecond

// TraceBatchMessage is one published drain of a container's span ring plus
// any lifecycle events since the previous batch. Like metrics snapshots it
// travels over an ordinary stream, so traces are replayable from retention
// and consumable with the same tools as any other stream.
type TraceBatchMessage struct {
	// Job is the publishing job's name; empty for cluster-level lifecycle
	// batches published by the JobRunner itself.
	Job string `json:"job"`
	// Container is the publishing container's ID, or -1 for runner batches.
	Container int `json:"container"`
	// TimeMillis is the publish wall-clock time.
	TimeMillis int64 `json:"time-millis"`
	// Seq numbers this publisher's batches from 1.
	Seq int64 `json:"seq"`
	// Spans are the completed spans drained from the ring, arrival order.
	Spans []trace.Span `json:"spans,omitempty"`
	// Events are lifecycle events recorded since the last batch.
	Events []trace.Event `json:"events,omitempty"`
	// Dropped counts spans/events lost to ring overflow since the last
	// batch — nonzero means the sample rate outruns the reporter.
	Dropped int64 `json:"dropped,omitempty"`
}

// traceSerde routes trace batches through the serde stack, registered as
// "trace-batch" so jobs and tools resolve it by name.
type traceSerde struct{}

// Name implements serde.Serde.
func (traceSerde) Name() string { return "trace-batch" }

// Encode implements serde.Serde.
func (traceSerde) Encode(v any) ([]byte, error) {
	m, ok := v.(*TraceBatchMessage)
	if !ok {
		return nil, fmt.Errorf("%w: want *samza.TraceBatchMessage, got %T", serde.ErrWrongType, v)
	}
	return json.Marshal(m)
}

// Decode implements serde.Serde.
func (traceSerde) Decode(data []byte) (any, error) {
	var m TraceBatchMessage
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, err
	}
	return &m, nil
}

func init() { serde.Register(traceSerde{}) }

// TraceReporter periodically drains a container's span ring and lifecycle
// events onto the trace stream (and into the container's recent-trace
// store for /debug/traces). It publishes one batch per interval and a
// final one at shutdown, so the spans of the last sampled messages are
// never lost to a stop.
type TraceReporter struct {
	broker    *kafka.Broker
	job       string
	container int
	topic     string
	interval  time.Duration
	s         serde.Serde
	seq       int64
	// collect drains the container's recorder (feeding its recent-trace
	// store as a side effect) and returns the batch to publish.
	collect func() ([]trace.Span, []trace.Event, int64)
}

// NewTraceReporter builds a reporter over a container's collect function.
// The trace topic must already exist (Container.Run ensures it).
func NewTraceReporter(b *kafka.Broker, job string, container int, topic string, interval time.Duration, collect func() ([]trace.Span, []trace.Event, int64)) *TraceReporter {
	s, err := serde.Lookup("trace-batch")
	if err != nil {
		// Registered by this package's init; absence is a programming error.
		panic(err)
	}
	return &TraceReporter{
		broker: b, job: job, container: container,
		topic: topic, interval: interval, s: s, collect: collect,
	}
}

// Publish drains and serializes one batch onto the trace stream. Empty
// drains publish nothing.
func (r *TraceReporter) Publish() error {
	spans, events, dropped := r.collect()
	if len(spans) == 0 && len(events) == 0 && dropped == 0 {
		return nil
	}
	r.seq++
	msg := &TraceBatchMessage{
		Job:        r.job,
		Container:  r.container,
		TimeMillis: time.Now().UnixMilli(),
		Seq:        r.seq,
		Spans:      spans,
		Events:     events,
		Dropped:    dropped,
	}
	data, err := r.s.Encode(msg)
	if err != nil {
		return fmt.Errorf("samza: trace batch encode: %w", err)
	}
	_, err = r.broker.Produce(r.topic, kafka.Message{
		Partition: 0,
		Key:       []byte(fmt.Sprintf("%s-%d", r.job, r.container)),
		Value:     data,
		Timestamp: msg.TimeMillis,
	})
	if err != nil {
		return fmt.Errorf("samza: trace batch publish: %w", err)
	}
	return nil
}

// Run publishes until ctx is cancelled, then flushes a final batch. Like
// the metrics reporter, publish errors are dropped: tracing must never
// take down the pipeline it observes.
func (r *TraceReporter) Run(ctx context.Context) {
	t := time.NewTicker(r.interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			_ = r.Publish()
			return
		case <-t.C:
			_ = r.Publish()
		}
	}
}

// TraceTailer consumes a trace stream back into decoded batches — the
// consumer half of the reporter, used by the shell's \trace command and by
// tests asserting on published spans.
type TraceTailer struct {
	consumer *kafka.Consumer
	topic    string
	s        serde.Serde
}

// NewTraceTailer attaches a consumer at the start of the trace topic.
func NewTraceTailer(b *kafka.Broker, topic string) (*TraceTailer, error) {
	s, err := serde.Lookup("trace-batch")
	if err != nil {
		return nil, err
	}
	c := kafka.NewConsumer(b, "trace-tailer")
	if err := c.Assign(kafka.TopicPartition{Topic: topic, Partition: 0}); err != nil {
		return nil, fmt.Errorf("samza: trace tailer assign: %w", err)
	}
	return &TraceTailer{consumer: c, topic: topic, s: s}, nil
}

// Poll returns up to max batches published since the last call, blocking
// per the consumer's semantics until messages arrive or ctx ends.
func (t *TraceTailer) Poll(ctx context.Context, max int) ([]*TraceBatchMessage, error) {
	msgs, err := t.consumer.Poll(ctx, max)
	if err != nil {
		return nil, err
	}
	out := make([]*TraceBatchMessage, 0, len(msgs))
	for i := range msgs {
		v, err := t.s.Decode(msgs[i].Value)
		if err != nil {
			return out, fmt.Errorf("samza: trace batch decode: %w", err)
		}
		out = append(out, v.(*TraceBatchMessage))
	}
	return out, nil
}

// BindLag registers the tailer's own consumer lag on the trace stream as a
// gauge ("tailer.lag.<topic>.0") in reg, so the observability pipeline is
// itself observable. Call UpdateLag to refresh it.
func (t *TraceTailer) BindLag(reg *metrics.Registry) {
	tp := kafka.TopicPartition{Topic: t.topic, Partition: 0}
	t.consumer.BindLagGauge(tp, reg.Gauge(fmt.Sprintf("tailer.lag.%s.0", t.topic)))
}

// UpdateLag refreshes the bound lag gauge from the broker's high watermark
// and returns the tailer's outstanding batches.
func (t *TraceTailer) UpdateLag() (int64, error) {
	return t.consumer.UpdateLag()
}

// Close releases the tailer's consumer.
func (t *TraceTailer) Close() { t.consumer.Close() }

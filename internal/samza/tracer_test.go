package samza

import (
	"context"
	"testing"
	"time"

	"samzasql/internal/kafka"
	"samzasql/internal/metrics"
	"samzasql/internal/serde"
	"samzasql/internal/trace"
)

func TestTraceBatchSerdeRoundTrip(t *testing.T) {
	s, err := serde.Lookup("trace-batch")
	if err != nil {
		t.Fatal(err)
	}
	in := &TraceBatchMessage{
		Job: "j", Container: 1, TimeMillis: 99, Seq: 3,
		Spans: []trace.Span{
			{TraceID: 7, SpanID: 8, ParentID: 0, Stage: "produce", StartNs: 10, EndNs: 10},
			{TraceID: 7, SpanID: 9, ParentID: 8, Stage: "poll", StartNs: 11, EndNs: 12},
		},
		Events:  []trace.Event{{TimeNs: 5, Kind: "container-start", Detail: "j container 1"}},
		Dropped: 2,
	}
	data, err := s.Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	v, err := s.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	out := v.(*TraceBatchMessage)
	if out.Job != "j" || out.Container != 1 || out.Seq != 3 || out.Dropped != 2 {
		t.Fatalf("round trip mangled envelope: %+v", out)
	}
	if len(out.Spans) != 2 || out.Spans[1].ParentID != 8 || out.Spans[1].Stage != "poll" {
		t.Fatalf("round trip mangled spans: %+v", out.Spans)
	}
	if len(out.Events) != 1 || out.Events[0].Kind != "container-start" {
		t.Fatalf("round trip mangled events: %+v", out.Events)
	}
	if _, err := s.Encode("not a batch"); err == nil {
		t.Fatal("expected wrong-type error")
	}
}

// storePutTask writes every message into a changelog-backed store.
type storePutTask struct {
	ctx *TaskContext
}

func (t *storePutTask) Init(ctx *TaskContext) error { t.ctx = ctx; return nil }

func (t *storePutTask) Process(env IncomingMessageEnvelope, c MessageCollector, _ Coordinator) error {
	t.ctx.Store("s").Put(env.Key, env.Value)
	return nil
}

// pollTraces tails the trace stream until done says the collected batches
// suffice, or the deadline passes.
func pollTraces(t *testing.T, b *kafka.Broker, done func([]*TraceBatchMessage) bool) []*TraceBatchMessage {
	t.Helper()
	tailer, err := NewTraceTailer(b, DefaultTraceTopic)
	if err != nil {
		t.Fatal(err)
	}
	defer tailer.Close()
	var batches []*TraceBatchMessage
	deadline := time.Now().Add(5 * time.Second)
	for !done(batches) {
		if time.Now().After(deadline) {
			t.Fatalf("timed out tailing traces; got %d batches", len(batches))
		}
		ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
		got, err := tailer.Poll(ctx, 128)
		cancel()
		if err != nil && ctx.Err() == nil {
			t.Fatal(err)
		}
		batches = append(batches, got...)
	}
	return batches
}

// TestEndToEndTraceSpanTree runs a store-writing job with every message
// sampled and asserts a published trace covers the full causal chain:
// produce → poll → process → store put, and commit → store flush — plus the
// lifecycle event log around it.
func TestEndToEndTraceSpanTree(t *testing.T) {
	b, r := testEnv()
	b.SetTraceSampling(1.0)
	if err := b.CreateTopic("in", kafka.TopicConfig{Partitions: 1}); err != nil {
		t.Fatal(err)
	}
	produceN(t, b, "in", 0, 10, "k")

	job := &JobSpec{
		Name:            "traced",
		Inputs:          []StreamSpec{{Topic: "in"}},
		Stores:          []StoreSpec{{Name: "s", Changelog: true}},
		TaskFactory:     func() StreamTask { return &storePutTask{} },
		CommitEvery:     5,
		TraceSampleRate: 1.0,
		TraceInterval:   5 * time.Millisecond,
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rj, err := r.Submit(ctx, job)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool {
		return rj.MetricsSnapshot().Counters["messages-processed"] >= 10
	}, "all messages processed")
	rj.Stop()

	// Collect until some trace holds the full chain including the commit
	// side, which only records after a checkpoint.
	wantStages := []string{"produce", "poll", "process", "store.s.put", "commit", "store.s.flush"}
	complete := func(batches []*TraceBatchMessage) map[uint64]map[string]trace.Span {
		byTrace := map[uint64]map[string]trace.Span{}
		for _, batch := range batches {
			for _, s := range batch.Spans {
				m := byTrace[s.TraceID]
				if m == nil {
					m = map[string]trace.Span{}
					byTrace[s.TraceID] = m
				}
				m[s.Stage] = s
			}
		}
		return byTrace
	}
	hasFull := func(batches []*TraceBatchMessage) bool {
		for _, m := range complete(batches) {
			ok := true
			for _, st := range wantStages {
				if _, have := m[st]; !have {
					ok = false
					break
				}
			}
			if ok {
				return true
			}
		}
		return false
	}
	batches := pollTraces(t, b, hasFull)

	for _, m := range complete(batches) {
		full := true
		for _, st := range wantStages {
			if _, have := m[st]; !have {
				full = false
				break
			}
		}
		if !full {
			continue
		}
		// The causal chain: poll under produce, process under poll, the
		// store put under process; the commit under a process span with the
		// flush beneath it.
		if m["produce"].ParentID != 0 {
			t.Fatalf("produce span has parent %d, want root", m["produce"].ParentID)
		}
		if m["poll"].ParentID != m["produce"].SpanID {
			t.Fatalf("poll parent %d, want produce span %d", m["poll"].ParentID, m["produce"].SpanID)
		}
		if m["process"].ParentID != m["poll"].SpanID {
			t.Fatalf("process parent %d, want poll span %d", m["process"].ParentID, m["poll"].SpanID)
		}
		if m["store.s.put"].ParentID != m["process"].SpanID {
			t.Fatalf("store put parent %d, want process span %d", m["store.s.put"].ParentID, m["process"].SpanID)
		}
		if m["commit"].ParentID != m["process"].SpanID {
			t.Fatalf("commit parent %d, want process span %d", m["commit"].ParentID, m["process"].SpanID)
		}
		if m["store.s.flush"].ParentID != m["commit"].SpanID {
			t.Fatalf("flush parent %d, want commit span %d", m["store.s.flush"].ParentID, m["commit"].SpanID)
		}
		break
	}

	// Lifecycle events: container-level and runner-level batches share the
	// stream; the runner publishes job-start/job-stop as Container -1.
	events := map[string]bool{}
	runnerEvents := map[string]bool{}
	for _, batch := range batches {
		for _, e := range batch.Events {
			events[e.Kind] = true
			if batch.Container == -1 {
				runnerEvents[e.Kind] = true
			}
		}
	}
	for _, kind := range []string{"container-start", "task-assigned", "checkpoint-commit", "store-flush", "container-stop"} {
		if !events[kind] {
			t.Errorf("missing lifecycle event %q; have %v", kind, events)
		}
	}
	for _, kind := range []string{"job-start", "job-stop", "container-allocate"} {
		if !runnerEvents[kind] {
			t.Errorf("missing runner-level event %q; have %v", kind, runnerEvents)
		}
	}

	// The job handle's recent-trace view feeds /debug/traces and \trace.
	if traces := rj.RecentTraces(); len(traces) == 0 {
		t.Error("RecentTraces is empty after a fully sampled run")
	}
}

// TestTailerLagGauges covers the observability-of-observability satellite:
// both tailers surface their own consumer lag as gauges.
func TestTailerLagGauges(t *testing.T) {
	b, r := testEnv()
	b.SetTraceSampling(1.0)
	if err := b.CreateTopic("in", kafka.TopicConfig{Partitions: 1}); err != nil {
		t.Fatal(err)
	}
	produceN(t, b, "in", 0, 20, "k")
	job := &JobSpec{
		Name:            "lagged",
		Inputs:          []StreamSpec{{Topic: "in"}},
		TaskFactory:     func() StreamTask { return &passthroughTask{out: "in2"} },
		CommitEvery:     10,
		MetricsInterval: 5 * time.Millisecond,
		TraceSampleRate: 1.0,
		TraceInterval:   5 * time.Millisecond,
	}
	if err := b.EnsureTopic("in2", kafka.TopicConfig{Partitions: 1}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rj, err := r.Submit(ctx, job)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool {
		return rj.MetricsSnapshot().Counters["messages-processed"] >= 20
	}, "all messages processed")
	time.Sleep(15 * time.Millisecond) // let at least one reporter tick land
	rj.Stop()

	reg := metrics.NewRegistry()
	mt, err := NewMetricsTailer(b, DefaultMetricsTopic)
	if err != nil {
		t.Fatal(err)
	}
	defer mt.Close()
	mt.BindLag(reg)
	lag, err := mt.UpdateLag()
	if err != nil {
		t.Fatal(err)
	}
	if lag <= 0 {
		t.Fatalf("metrics tailer lag %d before any poll, want > 0", lag)
	}
	if got := reg.Gauge("tailer.lag." + DefaultMetricsTopic + ".0").Value(); got != lag {
		t.Fatalf("metrics lag gauge %d, want %d", got, lag)
	}

	tt, err := NewTraceTailer(b, DefaultTraceTopic)
	if err != nil {
		t.Fatal(err)
	}
	defer tt.Close()
	tt.BindLag(reg)
	tlag, err := tt.UpdateLag()
	if err != nil {
		t.Fatal(err)
	}
	if tlag <= 0 {
		t.Fatalf("trace tailer lag %d before any poll, want > 0", tlag)
	}
	if got := reg.Gauge("tailer.lag." + DefaultTraceTopic + ".0").Value(); got != tlag {
		t.Fatalf("trace lag gauge %d, want %d", got, tlag)
	}
}

// TestReportersConcurrentShutdown stops jobs while both reporters are mid
// tick, repeatedly, to shake out send-on-closed-channel and dropped-final-
// flush bugs (run with -race). The final metrics flush must reflect the full
// run even when Stop lands between ticks.
func TestReportersConcurrentShutdown(t *testing.T) {
	for i := 0; i < 5; i++ {
		b, r := testEnv()
		b.SetTraceSampling(1.0)
		if err := b.CreateTopic("in", kafka.TopicConfig{Partitions: 2}); err != nil {
			t.Fatal(err)
		}
		produceN(t, b, "in", 0, 30, "a")
		produceN(t, b, "in", 1, 30, "b")
		job := &JobSpec{
			Name:            "churny",
			Inputs:          []StreamSpec{{Topic: "in"}},
			Stores:          []StoreSpec{{Name: "s", Changelog: true}},
			TaskFactory:     func() StreamTask { return &storePutTask{} },
			CommitEvery:     7,
			MetricsInterval: time.Millisecond,
			TraceSampleRate: 1.0,
			TraceInterval:   time.Millisecond,
		}
		ctx, cancel := context.WithCancel(context.Background())
		rj, err := r.Submit(ctx, job)
		if err != nil {
			cancel()
			t.Fatal(err)
		}
		// Vary the stop point relative to reporter ticks across rounds.
		time.Sleep(time.Duration(i) * 3 * time.Millisecond)
		rj.Stop()
		processed := rj.MetricsSnapshot().Counters["messages-processed"]
		cancel()

		// The final flush runs after every task exits, so the last published
		// snapshot must carry the end-of-run counter.
		mt, err := NewMetricsTailer(b, DefaultMetricsTopic)
		if err != nil {
			t.Fatal(err)
		}
		var final int64
		deadline := time.Now().Add(2 * time.Second)
		for {
			pctx, pcancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
			snaps, err := mt.Poll(pctx, 256)
			pcancel()
			if err != nil && pctx.Err() == nil {
				t.Fatal(err)
			}
			for _, s := range snaps {
				if got := s.Metrics.Counters["messages-processed"]; got > final {
					final = got
				}
			}
			if final >= processed || time.Now().After(deadline) {
				break
			}
		}
		mt.Close()
		if final < processed {
			t.Fatalf("round %d: final published snapshot has %d processed, job reported %d — final flush dropped",
				i, final, processed)
		}
	}
}

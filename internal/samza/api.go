// Package samza implements the distributed stream processing framework
// SamzaSQL executes on, modeled on Apache Samza 0.9 (§2): jobs composed of
// containers and tasks, partition-aligned task assignment, a Map/Reduce-like
// StreamTask API, checkpoint streams, changelog-backed local state, and
// bootstrap streams consumed to completion before regular input.
package samza

import (
	"fmt"

	"samzasql/internal/kafka"
	"samzasql/internal/trace"
)

// IncomingMessageEnvelope is one message delivered to a task's Process.
type IncomingMessageEnvelope struct {
	// Stream and Partition identify the source system-stream-partition.
	Stream    string
	Partition int32
	// Offset is the message's position within the partition.
	Offset int64
	// Key and Value are the raw payload bytes; serdes are applied by the
	// task (or by the SamzaSQL operator layer above it).
	Key   []byte
	Value []byte
	// Timestamp is the producer-supplied event time (Unix millis).
	Timestamp int64
	// Trace is the message's trace context, copied from the underlying
	// kafka.Message. Zero (one bool check) for unsampled messages.
	Trace trace.Context
}

// TP returns the envelope's topic-partition.
func (e *IncomingMessageEnvelope) TP() kafka.TopicPartition {
	return kafka.TopicPartition{Topic: e.Stream, Partition: e.Partition}
}

// OutgoingMessageEnvelope is one message a task emits via the collector.
type OutgoingMessageEnvelope struct {
	// Stream is the destination topic.
	Stream string
	// Partition selects the destination partition. A non-negative value
	// names an explicit partition and is passed to the broker unchanged;
	// any negative value delegates partitioning to the broker, which
	// FNV-hashes Key over the topic's partitions (empty keys land on
	// partition 0). The collector never rewrites this field — the sign is
	// the whole contract.
	Partition int32
	Key       []byte
	Value     []byte
	Timestamp int64
	// Trace, when sampled, links the produced message into the emitting
	// task's trace (built via trace.Active.Outgoing). The zero value lets
	// the broker's own sampler decide instead.
	Trace trace.Context
}

// MessageCollector receives messages a task produces during Process.
type MessageCollector interface {
	Send(env OutgoingMessageEnvelope) error
}

// BatchCollector is a MessageCollector that can also flush a whole block of
// output messages in one producer call. The framework's collector
// implements it; vectorized tasks type-assert for it and fall back to
// per-message sends against plain collectors (tests, bounded execution).
//
// The broker copies Message structs but retains key/value slices, so
// callers hand over freshly allocated per-block payloads and may reuse the
// msgs header slice itself. Message Partition fields follow the
// OutgoingMessageEnvelope sign contract (negative delegates to the broker's
// key hash).
type BatchCollector interface {
	MessageCollector
	SendBatch(stream string, msgs []kafka.Message) error
}

// Coordinator lets a task request commits and shutdown, mirroring Samza's
// TaskCoordinator.
type Coordinator interface {
	// Commit requests a checkpoint after the current message completes.
	Commit()
	// Shutdown requests an orderly stop of the whole container after the
	// current message completes.
	Shutdown()
}

// StreamTask is the processing interface for one partition's worth of
// messages, analogous to Samza's StreamTask. Implementations need not be
// safe for concurrent use: the framework serializes calls per task
// instance. Distinct instances run concurrently (one goroutine per task),
// so state a TaskFactory shares across instances must be synchronized.
type StreamTask interface {
	// Init is called once before any message is delivered, after local
	// state has been restored from changelogs.
	Init(ctx *TaskContext) error
	// Process handles one message.
	Process(env IncomingMessageEnvelope, collector MessageCollector, coord Coordinator) error
}

// BatchedStreamTask is implemented by tasks with a vectorized path: the
// container delivers a whole polled batch (all from one topic-partition, in
// offset order) per call instead of one message at a time, amortizing
// virtual dispatch, decode and trace bookkeeping across the batch. The
// per-message semantics are the task's to preserve: a returned error is
// positioned at the batch, offsets advance past the whole batch only on
// success, and commit/shutdown requests are honored at the batch boundary.
// pollNs is the batch's poll anchor timestamp (UnixNano), used by tasks
// that replay trace spans for sampled messages inside the batch.
type BatchedStreamTask interface {
	StreamTask
	ProcessBatch(envs []IncomingMessageEnvelope, collector MessageCollector, coord Coordinator, pollNs int64) error
}

// WindowableTask is implemented by tasks that want periodic Window calls
// (used by hopping/tumbling aggregate operators to emit on intervals).
type WindowableTask interface {
	// Window fires on the job's configured window interval.
	Window(collector MessageCollector, coord Coordinator) error
}

// ClosableTask is implemented by tasks that hold resources to release at
// shutdown.
type ClosableTask interface {
	Close() error
}

// TaskName names a task within a job; Samza names tasks after the partition
// they own.
type TaskName string

// TaskNameFor builds the canonical task name for a partition.
func TaskNameFor(partition int32) TaskName {
	return TaskName(fmt.Sprintf("Partition-%d", partition))
}

package samza

import (
	"context"
	"fmt"
	"sync"

	"samzasql/internal/kafka"
	"samzasql/internal/metrics"
	"samzasql/internal/yarn"
)

// JobRunner is the Samza YARN client analog: it plans the task assignment,
// provisions checkpoint and changelog topics, and submits one YARN container
// per Samza container. Each job gets its own application master (the YARN
// Application) — Samza's masterless design (§2).
type JobRunner struct {
	Broker  *kafka.Broker
	Cluster *yarn.Cluster
	// Resource is the per-container resource request.
	Resource yarn.Resource

	mu   sync.Mutex
	jobs []*RunningJob
}

// NewJobRunner builds a runner over the broker and cluster.
func NewJobRunner(b *kafka.Broker, c *yarn.Cluster) *JobRunner {
	return &JobRunner{
		Broker:  b,
		Cluster: c,
		Resource: yarn.Resource{
			VCores:   1,
			MemoryMB: 1024,
		},
	}
}

// RunningJob is a handle to a submitted job.
type RunningJob struct {
	Spec *JobSpec
	app  *yarn.Application

	mu         sync.Mutex
	containers []*Container
}

// Submit validates the job, plans the assignment and launches containers on
// the cluster. The job runs until Stop is called or ctx is cancelled.
func (r *JobRunner) Submit(ctx context.Context, job *JobSpec) (*RunningJob, error) {
	if err := job.Validate(); err != nil {
		return nil, err
	}
	a, err := planAssignment(r.Broker, job)
	if err != nil {
		return nil, err
	}
	cpm, err := NewCheckpointManager(r.Broker, job)
	if err != nil {
		return nil, err
	}
	inputPartitions := int32(len(a.taskPartitions))

	rj := &RunningJob{Spec: job}
	specs := make([]yarn.ContainerSpec, len(a.containerTasks))
	for ci, taskIdxs := range a.containerTasks {
		partitions := make([]int32, len(taskIdxs))
		for i, t := range taskIdxs {
			partitions[i] = a.taskPartitions[t]
		}
		specs[ci] = yarn.ContainerSpec{
			Resource:    r.Resource,
			MaxRestarts: job.MaxRestarts,
			Run: func(runCtx context.Context) error {
				// A fresh Container per attempt: restart rebuilds state
				// from changelogs and resumes from checkpoints.
				cont, err := newContainer(ci, job, r.Broker, cpm, partitions, inputPartitions)
				if err != nil {
					return err
				}
				rj.mu.Lock()
				rj.containers = append(rj.containers, cont)
				rj.mu.Unlock()
				return cont.Run(runCtx)
			},
		}
	}
	app, err := r.Cluster.Submit(ctx, job.Name, specs)
	if err != nil {
		return nil, fmt.Errorf("samza: submitting job %q: %w", job.Name, err)
	}
	rj.app = app
	r.mu.Lock()
	r.jobs = append(r.jobs, rj)
	r.mu.Unlock()
	return rj, nil
}

// Jobs lists every job this runner has submitted (including stopped ones),
// for the introspection endpoints.
func (r *JobRunner) Jobs() []*RunningJob {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*RunningJob, len(r.jobs))
	copy(out, r.jobs)
	return out
}

// Stop cancels all containers and waits for them to exit.
func (j *RunningJob) Stop() []yarn.ContainerStatus {
	j.app.Stop()
	return j.app.Wait()
}

// Wait blocks until every container exits on its own (shutdown request or
// failure without restart budget).
func (j *RunningJob) Wait() []yarn.ContainerStatus {
	return j.app.Wait()
}

// MetricsSnapshot merges all container metric registries: counters and
// gauges sum across containers (the per-job totals the paper's harness
// multiplies out, §5.1); histograms merge count-weighted.
func (j *RunningJob) MetricsSnapshot() metrics.Snapshot {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := metrics.NewSnapshot()
	for _, c := range j.containers {
		out.Merge(c.Metrics.Snapshot())
	}
	return out
}

// TaskHealth merges per-task liveness across containers. Later container
// attempts overwrite earlier ones for the same task name, so a restarted
// task reports its current attempt's state.
func (j *RunningJob) TaskHealth() map[string]string {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := map[string]string{}
	for _, c := range j.containers {
		for name, state := range c.TaskHealth() {
			out[name] = state
		}
	}
	return out
}

// UpdateLags refreshes consumer-lag gauges on every container and returns
// the job-wide total outstanding messages.
func (j *RunningJob) UpdateLags() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	var total int64
	for _, c := range j.containers {
		total += c.UpdateLags()
	}
	return total
}

// ContainerMetrics returns each live container attempt's registry.
func (j *RunningJob) ContainerMetrics() []*metrics.Registry {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]*metrics.Registry, 0, len(j.containers))
	for _, c := range j.containers {
		out = append(out, c.Metrics)
	}
	return out
}

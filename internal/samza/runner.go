package samza

import (
	"context"
	"fmt"
	"sync"

	"samzasql/internal/kafka"
	"samzasql/internal/metrics"
	"samzasql/internal/yarn"
)

// JobRunner is the Samza YARN client analog: it plans the task assignment,
// provisions checkpoint and changelog topics, and submits one YARN container
// per Samza container. Each job gets its own application master (the YARN
// Application) — Samza's masterless design (§2).
type JobRunner struct {
	Broker  *kafka.Broker
	Cluster *yarn.Cluster
	// Resource is the per-container resource request.
	Resource yarn.Resource
}

// NewJobRunner builds a runner over the broker and cluster.
func NewJobRunner(b *kafka.Broker, c *yarn.Cluster) *JobRunner {
	return &JobRunner{
		Broker:  b,
		Cluster: c,
		Resource: yarn.Resource{
			VCores:   1,
			MemoryMB: 1024,
		},
	}
}

// RunningJob is a handle to a submitted job.
type RunningJob struct {
	Spec *JobSpec
	app  *yarn.Application

	mu         sync.Mutex
	containers []*Container
}

// Submit validates the job, plans the assignment and launches containers on
// the cluster. The job runs until Stop is called or ctx is cancelled.
func (r *JobRunner) Submit(ctx context.Context, job *JobSpec) (*RunningJob, error) {
	if err := job.Validate(); err != nil {
		return nil, err
	}
	a, err := planAssignment(r.Broker, job)
	if err != nil {
		return nil, err
	}
	cpm, err := NewCheckpointManager(r.Broker, job)
	if err != nil {
		return nil, err
	}
	inputPartitions := int32(len(a.taskPartitions))

	rj := &RunningJob{Spec: job}
	specs := make([]yarn.ContainerSpec, len(a.containerTasks))
	for ci, taskIdxs := range a.containerTasks {
		partitions := make([]int32, len(taskIdxs))
		for i, t := range taskIdxs {
			partitions[i] = a.taskPartitions[t]
		}
		specs[ci] = yarn.ContainerSpec{
			Resource:    r.Resource,
			MaxRestarts: job.MaxRestarts,
			Run: func(runCtx context.Context) error {
				// A fresh Container per attempt: restart rebuilds state
				// from changelogs and resumes from checkpoints.
				cont, err := newContainer(ci, job, r.Broker, cpm, partitions, inputPartitions)
				if err != nil {
					return err
				}
				rj.mu.Lock()
				rj.containers = append(rj.containers, cont)
				rj.mu.Unlock()
				return cont.Run(runCtx)
			},
		}
	}
	app, err := r.Cluster.Submit(ctx, job.Name, specs)
	if err != nil {
		return nil, fmt.Errorf("samza: submitting job %q: %w", job.Name, err)
	}
	rj.app = app
	return rj, nil
}

// Stop cancels all containers and waits for them to exit.
func (j *RunningJob) Stop() []yarn.ContainerStatus {
	j.app.Stop()
	return j.app.Wait()
}

// Wait blocks until every container exits on its own (shutdown request or
// failure without restart budget).
func (j *RunningJob) Wait() []yarn.ContainerStatus {
	return j.app.Wait()
}

// MetricsSnapshot merges all container metric registries, summing values
// across containers (the per-job totals the paper's harness multiplies out,
// §5.1).
func (j *RunningJob) MetricsSnapshot() map[string]int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := map[string]int64{}
	for _, c := range j.containers {
		for name, v := range c.Metrics.Snapshot() {
			out[name] += v
		}
	}
	return out
}

// ContainerMetrics returns each live container attempt's registry.
func (j *RunningJob) ContainerMetrics() []*metrics.Registry {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]*metrics.Registry, 0, len(j.containers))
	for _, c := range j.containers {
		out = append(out, c.Metrics)
	}
	return out
}

package samza

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"samzasql/internal/kafka"
	"samzasql/internal/metrics"
	"samzasql/internal/serde"
	"samzasql/internal/trace"
	"samzasql/internal/yarn"
)

// JobRunner is the Samza YARN client analog: it plans the task assignment,
// provisions checkpoint and changelog topics, and submits one YARN container
// per Samza container. Each job gets its own application master (the YARN
// Application) — Samza's masterless design (§2).
type JobRunner struct {
	Broker  *kafka.Broker
	Cluster *yarn.Cluster
	// Resource is the per-container resource request.
	Resource yarn.Resource

	mu   sync.Mutex
	jobs []*RunningJob

	// Runner-level lifecycle event log (job start/stop, YARN allocations
	// and failures), published on the trace stream as Container -1 batches.
	// Armed by the first tracing-enabled Submit or by EnableEventLog.
	evMu    sync.Mutex
	evOn    bool
	evTopic string
	evSeq   int64

	// Extra introspection handlers (the monitor's /query and /alerts).
	// Registered onto the mux when ServeIntrospection starts; patterns added
	// after that attach to the live mux directly.
	httpMu    sync.Mutex
	httpMux   *http.ServeMux
	httpExtra map[string]http.Handler
}

// Handle registers an extra handler on the introspection HTTP server —
// how subsystems layered above samza (the monitor's /query and /alerts)
// surface endpoints without this package importing them. Safe to call
// before or after ServeIntrospection; handlers registered before serving
// are mounted when the server starts.
func (r *JobRunner) Handle(pattern string, h http.Handler) {
	r.httpMu.Lock()
	defer r.httpMu.Unlock()
	if r.httpMux != nil {
		// ServeMux is safe for concurrent registration and serving.
		r.httpMux.Handle(pattern, h)
		return
	}
	if r.httpExtra == nil {
		r.httpExtra = map[string]http.Handler{}
	}
	r.httpExtra[pattern] = h
}

// NewJobRunner builds a runner over the broker and cluster. The cluster's
// lifecycle events (container allocations, exits, restarts, node deaths)
// feed the runner's event log.
func NewJobRunner(b *kafka.Broker, c *yarn.Cluster) *JobRunner {
	r := &JobRunner{
		Broker:  b,
		Cluster: c,
		Resource: yarn.Resource{
			VCores:   1,
			MemoryMB: 1024,
		},
	}
	c.SetEventHook(r.publishEvent)
	return r
}

// EnableEventLog arms lifecycle-event publishing onto topic (empty means
// DefaultTraceTopic). Submit arms it automatically for tracing-enabled jobs;
// call this to capture job and YARN events without sampling any messages.
func (r *JobRunner) EnableEventLog(topic string) {
	if topic == "" {
		topic = DefaultTraceTopic
	}
	r.evMu.Lock()
	r.evOn = true
	r.evTopic = topic
	r.evMu.Unlock()
}

// publishEvent writes one lifecycle event to the trace stream as a
// runner-level batch (Job "", Container -1). A no-op until the event log is
// armed; publish errors are dropped — observability must never take down
// the cluster it observes.
func (r *JobRunner) publishEvent(kind, detail string) {
	r.evMu.Lock()
	if !r.evOn {
		r.evMu.Unlock()
		return
	}
	topic := r.evTopic
	r.evSeq++
	seq := r.evSeq
	r.evMu.Unlock()
	s, err := serde.Lookup("trace-batch")
	if err != nil {
		return
	}
	if err := r.Broker.EnsureTopic(topic, kafka.TopicConfig{Partitions: 1}); err != nil {
		return
	}
	now := time.Now()
	msg := &TraceBatchMessage{
		Container:  -1,
		TimeMillis: now.UnixMilli(),
		Seq:        seq,
		Events:     []trace.Event{{TimeNs: now.UnixNano(), Kind: kind, Detail: detail}},
	}
	data, err := s.Encode(msg)
	if err != nil {
		return
	}
	_, _ = r.Broker.Produce(topic, kafka.Message{
		Partition: 0,
		Key:       []byte("runner"),
		Value:     data,
		Timestamp: msg.TimeMillis,
	})
}

// RunningJob is a handle to a submitted job.
type RunningJob struct {
	Spec   *JobSpec
	app    *yarn.Application
	runner *JobRunner

	mu         sync.Mutex
	containers []*Container
}

// Submit validates the job, plans the assignment and launches containers on
// the cluster. The job runs until Stop is called or ctx is cancelled.
func (r *JobRunner) Submit(ctx context.Context, job *JobSpec) (*RunningJob, error) {
	if err := job.Validate(); err != nil {
		return nil, err
	}
	a, err := planAssignment(r.Broker, job)
	if err != nil {
		return nil, err
	}
	cpm, err := NewCheckpointManager(r.Broker, job)
	if err != nil {
		return nil, err
	}
	inputPartitions := int32(len(a.taskPartitions))
	if job.TraceSampleRate > 0 || job.TraceInterval > 0 {
		r.EnableEventLog(job.TraceTopicName())
	}
	r.publishEvent("job-start", job.Name)

	rj := &RunningJob{Spec: job, runner: r}
	specs := make([]yarn.ContainerSpec, len(a.containerTasks))
	for ci, taskIdxs := range a.containerTasks {
		partitions := make([]int32, len(taskIdxs))
		for i, t := range taskIdxs {
			partitions[i] = a.taskPartitions[t]
		}
		specs[ci] = yarn.ContainerSpec{
			Resource:    r.Resource,
			MaxRestarts: job.MaxRestarts,
			Run: func(runCtx context.Context) error {
				// A fresh Container per attempt: restart rebuilds state
				// from changelogs and resumes from checkpoints.
				cont, err := newContainer(ci, job, r.Broker, cpm, partitions, inputPartitions)
				if err != nil {
					return err
				}
				rj.mu.Lock()
				rj.containers = append(rj.containers, cont)
				rj.mu.Unlock()
				return cont.Run(runCtx)
			},
		}
	}
	app, err := r.Cluster.Submit(ctx, job.Name, specs)
	if err != nil {
		return nil, fmt.Errorf("samza: submitting job %q: %w", job.Name, err)
	}
	rj.app = app
	r.mu.Lock()
	r.jobs = append(r.jobs, rj)
	r.mu.Unlock()
	return rj, nil
}

// Jobs lists every job this runner has submitted (including stopped ones),
// for the introspection endpoints.
func (r *JobRunner) Jobs() []*RunningJob {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*RunningJob, len(r.jobs))
	copy(out, r.jobs)
	return out
}

// Stop cancels all containers and waits for them to exit.
func (j *RunningJob) Stop() []yarn.ContainerStatus {
	j.app.Stop()
	st := j.app.Wait()
	if j.runner != nil {
		j.runner.publishEvent("job-stop", j.Spec.Name)
	}
	return st
}

// Wait blocks until every container exits on its own (shutdown request or
// failure without restart budget).
func (j *RunningJob) Wait() []yarn.ContainerStatus {
	return j.app.Wait()
}

// MetricsSnapshot merges all container metric registries: counters and
// gauges sum across containers (the per-job totals the paper's harness
// multiplies out, §5.1); histograms merge count-weighted.
func (j *RunningJob) MetricsSnapshot() metrics.Snapshot {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := metrics.NewSnapshot()
	for _, c := range j.containers {
		out.Merge(c.Metrics.Snapshot())
	}
	return out
}

// TaskHealth merges per-task liveness across containers. Later container
// attempts overwrite earlier ones for the same task name, so a restarted
// task reports its current attempt's state.
func (j *RunningJob) TaskHealth() map[string]string {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := map[string]string{}
	for _, c := range j.containers {
		for name, state := range c.TaskHealth() {
			out[name] = state
		}
	}
	return out
}

// UpdateLags refreshes consumer-lag gauges on every container and returns
// the job-wide total outstanding messages.
func (j *RunningJob) UpdateLags() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	var total int64
	for _, c := range j.containers {
		total += c.UpdateLags()
	}
	return total
}

// RecentTraces merges the recent sampled span trees of every container
// attempt, newest first. Syncs each container's ring into its recent-trace
// store first, so spans not yet published still show.
func (j *RunningJob) RecentTraces() []*trace.TraceData {
	j.mu.Lock()
	defer j.mu.Unlock()
	lists := make([][]*trace.TraceData, 0, len(j.containers))
	for _, c := range j.containers {
		lists = append(lists, c.RecentTraces())
	}
	return trace.Merge(lists...)
}

// WriteTraces renders every job's recent sampled traces: a per-stage
// critical-path breakdown followed by the newest span trees. Shared by the
// /debug/traces endpoint and the shell's \trace command.
func (r *JobRunner) WriteTraces(w io.Writer) {
	jobs := r.Jobs()
	sort.Slice(jobs, func(i, j int) bool { return jobs[i].Spec.Name < jobs[j].Spec.Name })
	const maxTrees = 5
	for _, j := range jobs {
		fmt.Fprintf(w, "# job %s\n", j.Spec.Name)
		traces := j.RecentTraces()
		trace.WriteBreakdown(w, trace.Breakdown(traces))
		for i, t := range traces {
			if i >= maxTrees {
				fmt.Fprintf(w, "... %d older traces elided\n", len(traces)-maxTrees)
				break
			}
			fmt.Fprintln(w)
			t.Format(w)
		}
		fmt.Fprintln(w)
	}
}

// ContainerMetrics returns each live container attempt's registry.
func (j *RunningJob) ContainerMetrics() []*metrics.Registry {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]*metrics.Registry, 0, len(j.containers))
	for _, c := range j.containers {
		out = append(out, c.Metrics)
	}
	return out
}

package trace

import (
	"fmt"
	"io"
	"sort"
	"sync"
)

// TraceData is one assembled trace: every span observed so far for one
// trace ID, in arrival order.
type TraceData struct {
	ID    uint64
	Spans []Span
}

// startNs is the earliest span start — the trace's begin time.
func (t *TraceData) startNs() int64 {
	min := int64(0)
	for i := range t.Spans {
		if i == 0 || t.Spans[i].StartNs < min {
			min = t.Spans[i].StartNs
		}
	}
	return min
}

// DurationNs is the end-to-end wall-clock span of the trace.
func (t *TraceData) DurationNs() int64 {
	var min, max int64
	for i := range t.Spans {
		if i == 0 || t.Spans[i].StartNs < min {
			min = t.Spans[i].StartNs
		}
		if i == 0 || t.Spans[i].EndNs > max {
			max = t.Spans[i].EndNs
		}
	}
	return max - min
}

// Recent keeps the last N distinct traces seen by a drain loop, assembling
// spans by trace ID, for the /debug/traces endpoint and the shell's \trace
// command. Bounded and mutex-guarded: it sits on the drain path, never the
// record path.
type Recent struct {
	mu     sync.Mutex
	cap    int
	order  []uint64 // trace IDs, oldest first
	traces map[uint64]*TraceData
}

// NewRecent builds a store keeping up to capacity traces (minimum 1).
func NewRecent(capacity int) *Recent {
	if capacity < 1 {
		capacity = 1
	}
	return &Recent{cap: capacity, traces: map[uint64]*TraceData{}}
}

// Add folds drained spans into the per-trace buckets, evicting the oldest
// trace when over capacity.
func (r *Recent) Add(spans []Span) {
	if len(spans) == 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, s := range spans {
		td, ok := r.traces[s.TraceID]
		if !ok {
			td = &TraceData{ID: s.TraceID}
			r.traces[s.TraceID] = td
			r.order = append(r.order, s.TraceID)
			for len(r.order) > r.cap {
				delete(r.traces, r.order[0])
				r.order = r.order[1:]
			}
		}
		td.Spans = append(td.Spans, s)
	}
}

// Traces returns the retained traces, newest first, as deep copies safe to
// read without holding the store's lock.
func (r *Recent) Traces() []*TraceData {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*TraceData, 0, len(r.order))
	for i := len(r.order) - 1; i >= 0; i-- {
		td := r.traces[r.order[i]]
		cp := &TraceData{ID: td.ID, Spans: append([]Span(nil), td.Spans...)}
		out = append(out, cp)
	}
	return out
}

// StageStat aggregates one stage across a set of traces: how many spans,
// their total inclusive time, their self time (inclusive minus children —
// the critical-path attribution), and the worst single span.
type StageStat struct {
	Stage   string `json:"stage"`
	Count   int    `json:"count"`
	TotalNs int64  `json:"total-ns"`
	SelfNs  int64  `json:"self-ns"`
	MaxNs   int64  `json:"max-ns"`
}

// Breakdown computes per-stage critical-path statistics over the given
// traces. Self time is a span's duration minus the durations of its direct
// children (clamped at zero), so summing SelfNs across stages attributes
// every nanosecond of a trace exactly once. A synthetic "queue-wait" stage
// accounts the gap between a produce span and the poll that picked the
// message up.
func Breakdown(traces []*TraceData) []StageStat {
	acc := map[string]*StageStat{}
	observe := func(stage string, selfNs, totalNs int64) {
		st, ok := acc[stage]
		if !ok {
			st = &StageStat{Stage: stage}
			acc[stage] = st
		}
		st.Count++
		st.TotalNs += totalNs
		st.SelfNs += selfNs
		if totalNs > st.MaxNs {
			st.MaxNs = totalNs
		}
	}
	for _, td := range traces {
		childNs := map[uint64]int64{}
		endNs := map[uint64]int64{}
		for i := range td.Spans {
			s := &td.Spans[i]
			childNs[s.ParentID] += s.DurationNs()
			endNs[s.SpanID] = s.EndNs
		}
		for i := range td.Spans {
			s := &td.Spans[i]
			self := s.DurationNs() - childNs[s.SpanID]
			if self < 0 {
				self = 0
			}
			observe(s.Stage, self, s.DurationNs())
			if s.Stage == "poll" {
				if prodEnd, ok := endNs[s.ParentID]; ok && s.StartNs > prodEnd {
					wait := s.StartNs - prodEnd
					observe("queue-wait", wait, wait)
				}
			}
		}
	}
	out := make([]StageStat, 0, len(acc))
	for _, st := range acc {
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].SelfNs > out[j].SelfNs })
	return out
}

// WriteBreakdown renders the stats as an aligned text table.
func WriteBreakdown(w io.Writer, stats []StageStat) {
	if len(stats) == 0 {
		fmt.Fprintln(w, "(no sampled traces yet)")
		return
	}
	fmt.Fprintf(w, "%-28s %8s %12s %12s %12s\n", "stage", "spans", "self-us", "total-us", "max-us")
	for _, st := range stats {
		fmt.Fprintf(w, "%-28s %8d %12.1f %12.1f %12.1f\n",
			st.Stage, st.Count,
			float64(st.SelfNs)/1e3, float64(st.TotalNs)/1e3, float64(st.MaxNs)/1e3)
	}
}

// Format renders the trace as an indented span tree ordered by start time,
// with durations and start offsets relative to the trace root.
func (t *TraceData) Format(w io.Writer) {
	fmt.Fprintf(w, "trace %d  (%d spans, %.1fus end-to-end)\n",
		t.ID, len(t.Spans), float64(t.DurationNs())/1e3)
	base := t.startNs()
	children := map[uint64][]*Span{}
	ids := map[uint64]bool{}
	for i := range t.Spans {
		ids[t.Spans[i].SpanID] = true
	}
	var roots []*Span
	for i := range t.Spans {
		s := &t.Spans[i]
		if s.ParentID != 0 && ids[s.ParentID] {
			children[s.ParentID] = append(children[s.ParentID], s)
		} else {
			roots = append(roots, s)
		}
	}
	byStart := func(list []*Span) {
		sort.Slice(list, func(i, j int) bool {
			if list[i].StartNs != list[j].StartNs {
				return list[i].StartNs < list[j].StartNs
			}
			return list[i].SpanID < list[j].SpanID
		})
	}
	byStart(roots)
	var walk func(s *Span, depth int)
	walk = func(s *Span, depth int) {
		for i := 0; i < depth; i++ {
			io.WriteString(w, "  ")
		}
		fmt.Fprintf(w, "%-*s +%.1fus %.1fus\n", 30-2*depth, s.Stage,
			float64(s.StartNs-base)/1e3, float64(s.DurationNs())/1e3)
		kids := children[s.SpanID]
		byStart(kids)
		for _, k := range kids {
			walk(k, depth+1)
		}
	}
	for _, r := range roots {
		walk(r, 1)
	}
}

// Merge combines per-container trace lists, concatenating span lists for
// traces that crossed containers (repartition hops), newest first.
func Merge(lists ...[]*TraceData) []*TraceData {
	byID := map[uint64]*TraceData{}
	var order []uint64
	for _, list := range lists {
		for _, td := range list {
			got, ok := byID[td.ID]
			if !ok {
				byID[td.ID] = &TraceData{ID: td.ID, Spans: append([]Span(nil), td.Spans...)}
				order = append(order, td.ID)
				continue
			}
			got.Spans = append(got.Spans, td.Spans...)
		}
	}
	out := make([]*TraceData, 0, len(order))
	for _, id := range order {
		out = append(out, byID[id])
	}
	sort.Slice(out, func(i, j int) bool { return out[i].startNs() > out[j].startNs() })
	return out
}

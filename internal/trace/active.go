package trace

// maxDepth bounds the per-task open-span stack. Operator chains are a
// handful of stages deep; frames past the bound are counted but not
// recorded, so pathological nesting degrades coverage instead of memory.
const maxDepth = 32

// frame is one open span on the Active stack.
type frame struct {
	span    uint64
	stage   string
	startNs int64
}

// Active is a task's tracing cursor: the mutable state of the one trace
// (at most) the task is currently inside. It is owned by the task's single
// goroutine and is not safe for concurrent use — which is exactly the
// container's task model, and what lets every method run without atomics.
//
// The zero-ish lifecycle per sampled message:
//
//	StartMessage  — synthesize the produce span from the message's Context,
//	                record the poll span, open the "process" frame
//	Begin/End     — operator stages nest via the call stack
//	Leaf          — point spans for store/changelog operations
//	FinishMessage — close "process"; the trace pends until the next commit
//	StartCommit/FinishCommit — the commit span (store + changelog flushes
//	                recorded during it nest under it) closes the trace
//
// Every method is nil-safe and collapses to a bool check when no trace is
// active, so unsampled messages pay one branch per call site.
type Active struct {
	rec *Recorder

	sampled bool
	traceID uint64
	// rootParent is the parent for the bottom frame: the poll span while
	// processing, the pending process span during commit.
	rootParent uint64
	frames     [maxDepth]frame
	// depth counts open frames and may exceed maxDepth; the excess frames
	// are neither stored nor recorded.
	depth int

	// pendTrace/pendSpan survive FinishMessage: the last sampled message's
	// trace and process span, which the next commit closes.
	pendTrace uint64
	pendSpan  uint64
}

// NewActive builds a cursor recording into rec.
func NewActive(rec *Recorder) *Active {
	return &Active{rec: rec}
}

// Sampled reports whether the task is currently inside a sampled trace.
// This is the guard every hot-path call site branches on.
func (a *Active) Sampled() bool { return a != nil && a.sampled }

// StartMessage opens a trace for a sampled message: it records the produce
// span synthesized from the message's context (zero-duration, stamped at
// attach time — the gap to the poll span is the queue wait), the poll span
// from pollNs (batch fetch) to nowNs (delivery), and opens the "process"
// frame covering the task's Process call.
func (a *Active) StartMessage(mctx Context, pollNs, nowNs int64) {
	if a == nil || !mctx.Sampled {
		return
	}
	a.sampled = true
	a.traceID = mctx.TraceID
	a.rec.Record(Span{
		TraceID: mctx.TraceID, SpanID: mctx.SpanID, ParentID: mctx.ParentID,
		Stage: "produce", StartNs: mctx.StartNs, EndNs: mctx.StartNs,
	})
	pollSpan := NextID()
	a.rec.Record(Span{
		TraceID: mctx.TraceID, SpanID: pollSpan, ParentID: mctx.SpanID,
		Stage: "poll", StartNs: pollNs, EndNs: nowNs,
	})
	a.rootParent = pollSpan
	a.frames[0] = frame{span: NextID(), stage: "process", startNs: nowNs}
	a.depth = 1
}

// Begin opens a nested span; End closes it. Calls must pair, which the
// operator chain's call structure guarantees.
func (a *Active) Begin(stage string, nowNs int64) {
	if a == nil || !a.sampled {
		return
	}
	if a.depth < maxDepth {
		a.frames[a.depth] = frame{span: NextID(), stage: stage, startNs: nowNs}
	}
	a.depth++
}

// End closes the innermost open span and records it.
func (a *Active) End(nowNs int64) {
	if a == nil || !a.sampled || a.depth == 0 {
		return
	}
	a.depth--
	if a.depth >= maxDepth {
		return // overflowed frame: counted open, never stored
	}
	f := &a.frames[a.depth]
	parent := a.rootParent
	if a.depth > 0 {
		parent = a.frames[a.depth-1].span
	}
	a.rec.Record(Span{
		TraceID: a.traceID, SpanID: f.span, ParentID: parent,
		Stage: f.stage, StartNs: f.startNs, EndNs: nowNs,
	})
}

// Leaf records a completed point span (a store get/put, a changelog flush)
// under the innermost open span.
func (a *Active) Leaf(stage string, startNs, durNs int64) {
	if a == nil || !a.sampled {
		return
	}
	a.rec.Record(Span{
		TraceID: a.traceID, SpanID: NextID(), ParentID: a.currentParent(),
		Stage: stage, StartNs: startNs, EndNs: startNs + durNs,
	})
}

// StageRows records a completed batch-granularity stage span, carrying the
// number of rows the stage covered, under the innermost open span. The
// vectorized block path runs each operator once per block and then replays
// the block's stage log through this for every sampled message in the
// block, so sampled messages keep their per-operator spans (with row
// counts) instead of losing them to the batch.
func (a *Active) StageRows(stage string, startNs, endNs, rows int64) {
	if a == nil || !a.sampled {
		return
	}
	a.rec.Record(Span{
		TraceID: a.traceID, SpanID: NextID(), ParentID: a.currentParent(),
		Stage: stage, StartNs: startNs, EndNs: endNs, Rows: rows,
	})
}

// Outgoing derives the context to attach to a message emitted while inside
// a sampled trace, parenting its produce span under the emitting stage.
// Returns the zero Context when no trace is active.
func (a *Active) Outgoing(nowNs int64) Context {
	if a == nil || !a.sampled {
		return Context{}
	}
	return Context{
		TraceID: a.traceID, SpanID: NextID(), ParentID: a.currentParent(),
		Sampled: true, StartNs: nowNs,
	}
}

// currentParent is the span new children attach to: the innermost stored
// frame, or the root parent when none is open.
func (a *Active) currentParent() uint64 {
	d := a.depth
	if d > maxDepth {
		d = maxDepth
	}
	if d > 0 {
		return a.frames[d-1].span
	}
	return a.rootParent
}

// FinishMessage closes the process span (and, defensively, any frames left
// open by an error path) and demotes the trace to pending-commit: no
// further spans record until StartCommit re-activates it.
func (a *Active) FinishMessage(nowNs int64) {
	if a == nil || !a.sampled {
		return
	}
	proc := a.frames[0].span
	for a.depth > 0 {
		a.End(nowNs)
	}
	a.sampled = false
	a.pendTrace = a.traceID
	a.pendSpan = proc
}

// PendingCommit reports whether a finished trace is waiting for its commit
// span. The commit path branches on this the way the message path branches
// on Sampled.
func (a *Active) PendingCommit() bool { return a != nil && a.pendTrace != 0 }

// StartCommit re-activates the pending trace and opens the "commit" frame
// under the last sampled message's process span, so store and changelog
// flush spans recorded during the commit nest beneath it.
func (a *Active) StartCommit(nowNs int64) {
	if a == nil || a.pendTrace == 0 {
		return
	}
	a.sampled = true
	a.traceID = a.pendTrace
	a.rootParent = a.pendSpan
	a.frames[0] = frame{span: NextID(), stage: "commit", startNs: nowNs}
	a.depth = 1
}

// FinishCommit closes the commit span and the trace.
func (a *Active) FinishCommit(nowNs int64) {
	if a == nil || !a.sampled {
		return
	}
	for a.depth > 0 {
		a.End(nowNs)
	}
	a.sampled = false
	a.pendTrace, a.pendSpan = 0, 0
}

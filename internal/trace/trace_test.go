package trace

import (
	"strings"
	"sync"
	"testing"
)

func TestSamplerCadence(t *testing.T) {
	if s := NewSampler(0); s != nil {
		t.Fatalf("rate 0 should disable sampling, got interval %d", s.Interval())
	}
	if s := NewSampler(-1); s.Sample() {
		t.Fatal("nil sampler sampled")
	}
	s := NewSampler(0.01)
	if s.Interval() != 100 {
		t.Fatalf("rate 0.01 interval = %d, want 100", s.Interval())
	}
	hits := 0
	for i := 0; i < 1000; i++ {
		if s.Sample() {
			hits++
		}
	}
	if hits != 10 {
		t.Fatalf("rate 0.01 over 1000 messages sampled %d, want 10", hits)
	}
	all := NewSampler(1.0)
	for i := 0; i < 5; i++ {
		if !all.Sample() {
			t.Fatal("rate 1.0 skipped a message")
		}
	}
	if NewSampler(7).Interval() != 1 {
		t.Fatal("rates above 1 should clamp to every message")
	}
}

func TestRecorderRoundTrip(t *testing.T) {
	r := NewRecorder(8)
	for i := 1; i <= 3; i++ {
		r.Record(Span{TraceID: 1, SpanID: uint64(i), Stage: "s"})
	}
	got := r.Drain(nil)
	if len(got) != 3 {
		t.Fatalf("drained %d spans, want 3", len(got))
	}
	for i, s := range got {
		if s.SpanID != uint64(i+1) {
			t.Fatalf("span %d has ID %d, want FIFO order", i, s.SpanID)
		}
	}
	if d := r.TakeDropped(); d != 0 {
		t.Fatalf("dropped %d, want 0", d)
	}
}

func TestRecorderDropsWhenFull(t *testing.T) {
	r := NewRecorder(4)
	for i := 0; i < 10; i++ {
		r.Record(Span{SpanID: uint64(i)})
	}
	got := r.Drain(nil)
	if len(got) != 4 {
		t.Fatalf("ring of 4 retained %d spans", len(got))
	}
	if d := r.TakeDropped(); d != 6 {
		t.Fatalf("dropped = %d, want 6", d)
	}
	// The ring frees up after a drain.
	r.Record(Span{SpanID: 99})
	if got = r.Drain(nil); len(got) != 1 || got[0].SpanID != 99 {
		t.Fatalf("post-drain record lost: %v", got)
	}
}

func TestRecorderConcurrent(t *testing.T) {
	const writers, perWriter = 8, 2000
	r := NewRecorder(1024)
	var wg sync.WaitGroup
	var total sync.WaitGroup
	seen := make(chan int, 64)
	total.Add(1)
	go func() {
		defer total.Done()
		n := 0
		for c := range seen {
			n += c
		}
		if drained := n + int(r.TakeDropped()); drained != writers*perWriter {
			t.Errorf("drained+dropped = %d, want %d", drained, writers*perWriter)
		}
	}()
	var drainWG sync.WaitGroup
	stop := make(chan struct{})
	drainWG.Add(1)
	go func() {
		defer drainWG.Done()
		var buf []Span
		for {
			buf = r.Drain(buf[:0])
			seen <- len(buf)
			select {
			case <-stop:
				buf = r.Drain(buf[:0])
				seen <- len(buf)
				return
			default:
			}
		}
	}()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				r.Record(Span{TraceID: uint64(w), SpanID: uint64(i)})
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	drainWG.Wait()
	close(seen)
	total.Wait()
}

func TestActiveSpanTree(t *testing.T) {
	rec := NewRecorder(64)
	a := NewActive(rec)
	if a.Sampled() {
		t.Fatal("fresh Active is sampled")
	}
	ctx := NewRoot(1000)
	a.StartMessage(ctx, 2000, 2100)
	if !a.Sampled() {
		t.Fatal("StartMessage did not activate the trace")
	}
	a.Begin("operator.filter", 2200)
	a.Leaf("store.s.put", 2250, 30)
	out := a.Outgoing(2280)
	if !out.Sampled || out.TraceID != ctx.TraceID {
		t.Fatalf("Outgoing context %+v not in trace %d", out, ctx.TraceID)
	}
	a.End(2300)
	a.FinishMessage(2400)
	if a.Sampled() {
		t.Fatal("trace still active after FinishMessage")
	}
	if !a.PendingCommit() {
		t.Fatal("no pending commit after FinishMessage")
	}
	a.StartCommit(3000)
	a.Leaf("store.s.flush", 3010, 50)
	a.FinishCommit(3100)
	if a.PendingCommit() {
		t.Fatal("commit did not clear the pending trace")
	}

	spans := rec.Drain(nil)
	byStage := map[string]Span{}
	for _, s := range spans {
		byStage[s.Stage] = s
	}
	for _, want := range []string{"produce", "poll", "process", "operator.filter", "store.s.put", "commit", "store.s.flush"} {
		if _, ok := byStage[want]; !ok {
			t.Fatalf("missing %q span; got %v", want, spans)
		}
	}
	if got := byStage["poll"].ParentID; got != ctx.SpanID {
		t.Fatalf("poll parent = %d, want produce span %d", got, ctx.SpanID)
	}
	proc := byStage["process"]
	if proc.ParentID != byStage["poll"].SpanID {
		t.Fatal("process span not parented under poll")
	}
	if byStage["operator.filter"].ParentID != proc.SpanID {
		t.Fatal("operator span not parented under process")
	}
	if byStage["store.s.put"].ParentID != byStage["operator.filter"].SpanID {
		t.Fatal("store leaf not parented under the open operator span")
	}
	if out.ParentID != byStage["operator.filter"].SpanID {
		t.Fatal("outgoing context not parented under the emitting operator")
	}
	commit := byStage["commit"]
	if commit.ParentID != proc.SpanID {
		t.Fatal("commit span not parented under the last process span")
	}
	if byStage["store.s.flush"].ParentID != commit.SpanID {
		t.Fatal("flush leaf not parented under the commit span")
	}
	for _, s := range spans {
		if s.TraceID != ctx.TraceID {
			t.Fatalf("span %+v escaped trace %d", s, ctx.TraceID)
		}
	}
}

func TestActiveNilAndUnsampledAreNoops(t *testing.T) {
	var a *Active
	if a.Sampled() || a.PendingCommit() {
		t.Fatal("nil Active reports activity")
	}
	a.StartMessage(Context{Sampled: true, TraceID: 1}, 0, 0)
	a.Begin("x", 0)
	a.End(0)
	a.Leaf("x", 0, 0)
	a.FinishMessage(0)
	a.StartCommit(0)
	a.FinishCommit(0)
	if a.Outgoing(0).Sampled {
		t.Fatal("nil Active produced a sampled outgoing context")
	}

	rec := NewRecorder(8)
	b := NewActive(rec)
	b.StartMessage(Context{}, 0, 0) // unsampled context
	b.Begin("x", 0)
	b.End(0)
	b.FinishMessage(0)
	if spans := rec.Drain(nil); len(spans) != 0 {
		t.Fatalf("unsampled message recorded %d spans", len(spans))
	}
}

func TestRecentAndBreakdown(t *testing.T) {
	r := NewRecent(2)
	mk := func(trace uint64, startNs int64) []Span {
		produce := Span{TraceID: trace, SpanID: trace*10 + 1, Stage: "produce", StartNs: startNs, EndNs: startNs}
		poll := Span{TraceID: trace, SpanID: trace*10 + 2, ParentID: produce.SpanID, Stage: "poll", StartNs: startNs + 100, EndNs: startNs + 150}
		proc := Span{TraceID: trace, SpanID: trace*10 + 3, ParentID: poll.SpanID, Stage: "process", StartNs: startNs + 150, EndNs: startNs + 450}
		op := Span{TraceID: trace, SpanID: trace*10 + 4, ParentID: proc.SpanID, Stage: "operator.filter", StartNs: startNs + 200, EndNs: startNs + 400}
		return []Span{produce, poll, proc, op}
	}
	r.Add(mk(1, 0))
	r.Add(mk(2, 1000))
	r.Add(mk(3, 2000))
	traces := r.Traces()
	if len(traces) != 2 {
		t.Fatalf("capacity 2 retained %d traces", len(traces))
	}
	if traces[0].ID != 3 || traces[1].ID != 2 {
		t.Fatalf("want newest-first [3 2], got [%d %d]", traces[0].ID, traces[1].ID)
	}

	stats := Breakdown(traces)
	byStage := map[string]StageStat{}
	for _, st := range stats {
		byStage[st.Stage] = st
	}
	if st := byStage["process"]; st.Count != 2 || st.SelfNs != 2*(300-200) {
		t.Fatalf("process self time wrong: %+v", st)
	}
	if st := byStage["queue-wait"]; st.Count != 2 || st.SelfNs != 200 {
		t.Fatalf("queue-wait not attributed: %+v", st)
	}

	var tree strings.Builder
	traces[0].Format(&tree)
	for _, want := range []string{"produce", "poll", "process", "operator.filter"} {
		if !strings.Contains(tree.String(), want) {
			t.Fatalf("formatted tree missing %q:\n%s", want, tree.String())
		}
	}
	var tbl strings.Builder
	WriteBreakdown(&tbl, stats)
	if !strings.Contains(tbl.String(), "operator.filter") {
		t.Fatalf("breakdown table missing stage:\n%s", tbl.String())
	}
}

func TestMerge(t *testing.T) {
	a := []*TraceData{{ID: 1, Spans: []Span{{TraceID: 1, SpanID: 1, StartNs: 10}}}}
	b := []*TraceData{
		{ID: 1, Spans: []Span{{TraceID: 1, SpanID: 2, StartNs: 20}}},
		{ID: 2, Spans: []Span{{TraceID: 2, SpanID: 3, StartNs: 50}}},
	}
	got := Merge(a, b)
	if len(got) != 2 {
		t.Fatalf("merged %d traces, want 2", len(got))
	}
	if got[0].ID != 2 {
		t.Fatalf("want newest trace first, got %d", got[0].ID)
	}
	if len(got[1].Spans) != 2 {
		t.Fatalf("cross-container trace not combined: %d spans", len(got[1].Spans))
	}
}

package trace

import (
	"sync"
	"sync/atomic"
)

// maxEvents bounds the recorder's lifecycle-event buffer between drains.
// Events past the bound are dropped (and counted) rather than growing
// without a consumer.
const maxEvents = 4096

// Recorder collects completed spans from every task goroutine of a
// container into a bounded lock-free ring (a Vyukov-style MPMC queue
// restricted to one drainer at a time), plus a small mutex-guarded
// lifecycle-event buffer for the cold control-plane path. When the ring is
// full, new spans are dropped and counted: tracing must never block or
// stall the pipeline it observes.
type slot struct {
	// seq is the slot's sequence number: equal to the slot's ring position
	// when free for the writer of that lap, position+1 once the span is
	// published for the reader.
	seq  atomic.Uint64
	span Span
}

// Recorder is safe for concurrent Record from any number of goroutines;
// Drain serializes readers internally.
type Recorder struct {
	slots []slot
	mask  uint64
	enq   atomic.Uint64

	// deqMu serializes drainers; deq is the next position to read.
	deqMu sync.Mutex
	deq   uint64

	dropped atomic.Int64

	evMu      sync.Mutex
	events    []Event
	evDropped int64
}

// NewRecorder builds a recorder whose ring holds at least capacity spans
// (rounded up to a power of two, minimum 2).
func NewRecorder(capacity int) *Recorder {
	n := 2
	for n < capacity {
		n <<= 1
	}
	r := &Recorder{slots: make([]slot, n), mask: uint64(n - 1)}
	for i := range r.slots {
		r.slots[i].seq.Store(uint64(i))
	}
	return r
}

// Record enqueues a completed span. Lock-free; when the ring is full the
// span is dropped and counted instead of blocking the recording goroutine.
func (r *Recorder) Record(span Span) {
	for {
		pos := r.enq.Load()
		s := &r.slots[pos&r.mask]
		seq := s.seq.Load()
		switch {
		case seq == pos:
			if r.enq.CompareAndSwap(pos, pos+1) {
				s.span = span
				s.seq.Store(pos + 1)
				return
			}
		case seq < pos:
			// The slot still holds last lap's span: the ring is full.
			r.dropped.Add(1)
			return
		}
		// seq > pos: another producer claimed this position; reload and retry.
	}
}

// Drain appends every published span to dst and frees the slots. A span
// whose writer claimed a slot but has not finished publishing is left for
// the next drain.
func (r *Recorder) Drain(dst []Span) []Span {
	r.deqMu.Lock()
	defer r.deqMu.Unlock()
	for {
		pos := r.deq
		s := &r.slots[pos&r.mask]
		if s.seq.Load() != pos+1 {
			return dst
		}
		dst = append(dst, s.span)
		s.seq.Store(pos + uint64(len(r.slots)))
		r.deq = pos + 1
	}
}

// Event records one lifecycle event. This is the cold control-plane path
// (job/container/task transitions, commits, flushes) — mutex-guarded and
// allocating; it must not be called per message.
func (r *Recorder) Event(nowNs int64, kind, detail string) {
	r.evMu.Lock()
	if len(r.events) < maxEvents {
		r.events = append(r.events, Event{TimeNs: nowNs, Kind: kind, Detail: detail})
	} else {
		r.evDropped++
	}
	r.evMu.Unlock()
}

// DrainEvents appends all buffered events to dst and clears the buffer.
func (r *Recorder) DrainEvents(dst []Event) []Event {
	r.evMu.Lock()
	defer r.evMu.Unlock()
	dst = append(dst, r.events...)
	r.events = r.events[:0]
	return dst
}

// TakeDropped returns the spans+events dropped since the last call and
// resets the counter, for publication alongside a drained batch.
func (r *Recorder) TakeDropped() int64 {
	n := r.dropped.Swap(0)
	r.evMu.Lock()
	n += r.evDropped
	r.evDropped = 0
	r.evMu.Unlock()
	return n
}

// Package trace implements a sampled, allocation-disciplined tracing
// subsystem for the SamzaSQL substrate. A trace context (trace ID, parent
// span, sample bit) is attached to a message at produce time, propagated
// through the container poll path, the operator chain and state-store
// operations, and closed at commit — yielding a causal span tree per
// sampled message. The package is deliberately dependency-free (types and
// logic only) so every layer of the substrate can import it without cycles.
//
// Discipline: with sampling disabled, the entire surface collapses to a
// nil/bool check — no allocation, no atomic traffic, no time reads. Every
// call into this package from a //samzasql:hotpath function must be guarded
// on the sample bit (enforced by the samzasql-vet trace-guard analyzer).
package trace

import "sync/atomic"

// idCounter issues process-unique trace and span IDs. A counter (rather
// than a random source) keeps ID allocation to one uncontended atomic add
// on the sampled path and makes test output deterministic per run.
var idCounter atomic.Uint64

// NextID returns a fresh nonzero process-unique ID.
func NextID() uint64 { return idCounter.Add(1) }

// Context is the per-message trace context carried on kafka.Message and the
// samza envelopes. The zero value means "not traced" and is what every
// unsampled message carries; its Sampled bit is the single branch the hot
// path pays.
type Context struct {
	// TraceID identifies the causal tree this message belongs to.
	TraceID uint64
	// SpanID is the ID of this message's produce span. The consuming
	// container synthesizes the produce span from the context, so a message
	// that is never consumed costs its producer nothing.
	SpanID uint64
	// ParentID is the span that caused the produce: zero for a root message
	// sampled at the broker, or the emitting operator's span for messages
	// produced mid-trace.
	ParentID uint64
	// Sampled is the decision bit. All other fields are meaningful only
	// when it is set.
	Sampled bool
	// StartNs is the produce wall-clock time (UnixNano), stamped when the
	// context is attached. The gap between it and the poll span is the
	// message's queue wait.
	StartNs int64
}

// NewRoot builds a sampled root context for a message entering the system
// at nowNs.
func NewRoot(nowNs int64) Context {
	return Context{TraceID: NextID(), SpanID: NextID(), Sampled: true, StartNs: nowNs}
}

// Span is one completed node of a trace tree: a named stage with start/end
// timestamps and a parent link. Spans are recorded complete (never mutated
// after recording), which is what lets the ring buffer publish them with a
// single sequence-number store.
type Span struct {
	TraceID  uint64 `json:"trace"`
	SpanID   uint64 `json:"span"`
	ParentID uint64 `json:"parent,omitempty"`
	// Stage names the pipeline stage: "produce", "poll", "process",
	// "operator.<name>", "store.<name>.<op>", "commit", ...
	Stage   string `json:"stage"`
	StartNs int64  `json:"start-ns"`
	EndNs   int64  `json:"end-ns"`
	// Rows is the number of rows the stage covered when the span was
	// recorded at batch granularity (the vectorized block path); zero for
	// per-message spans.
	Rows int64 `json:"rows,omitempty"`
}

// DurationNs is the span's wall-clock duration.
func (s *Span) DurationNs() int64 { return s.EndNs - s.StartNs }

// Event is one structured lifecycle event (job start/stop, container
// allocate/restart, task assignment, checkpoint commit, store flush),
// published on the trace stream so span anomalies can be correlated with
// runtime events.
type Event struct {
	// TimeNs is the event wall-clock time (UnixNano).
	TimeNs int64 `json:"time-ns"`
	// Kind is the event type, e.g. "job-start", "container-allocate",
	// "checkpoint-commit".
	Kind string `json:"kind"`
	// Detail carries the subject: a job name, container ID, task name.
	Detail string `json:"detail,omitempty"`
}

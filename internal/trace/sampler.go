package trace

import (
	"math"
	"sync/atomic"
)

// Sampler decides which produced messages start a trace. It is a counting
// sampler: a rate of r samples every round(1/r)-th message, so the decision
// is one atomic add — no random source, no time read — and low rates still
// sample deterministically often rather than in bursts.
//
// A nil *Sampler never samples, so callers hold one behind an
// atomic.Pointer and skip all tracing work when it is nil.
type Sampler struct {
	every uint64
	n     atomic.Uint64
}

// NewSampler builds a sampler for the given rate in (0, 1]. Rates <= 0
// return nil (sampling disabled); rates > 1 are clamped to 1 (every
// message).
func NewSampler(rate float64) *Sampler {
	if rate <= 0 || math.IsNaN(rate) {
		return nil
	}
	every := uint64(math.Round(1 / rate))
	if every < 1 {
		every = 1
	}
	return &Sampler{every: every}
}

// Sample reports whether the next message should be traced. Safe for
// concurrent use; nil receivers never sample.
func (s *Sampler) Sample() bool {
	if s == nil {
		return false
	}
	return s.n.Add(1)%s.every == 0
}

// Interval reports the sampling interval (one trace per Interval messages);
// 0 for a nil sampler.
func (s *Sampler) Interval() uint64 {
	if s == nil {
		return 0
	}
	return s.every
}

package yarn

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func twoNodeCluster() *Cluster {
	c := NewCluster()
	c.AddNode("n1", Resource{VCores: 4, MemoryMB: 4096})
	c.AddNode("n2", Resource{VCores: 4, MemoryMB: 4096})
	return c
}

func TestSubmitRunsContainersToCompletion(t *testing.T) {
	c := twoNodeCluster()
	var ran atomic.Int32
	specs := make([]ContainerSpec, 3)
	for i := range specs {
		specs[i] = ContainerSpec{
			Resource: Resource{VCores: 1, MemoryMB: 512},
			Run: func(ctx context.Context) error {
				ran.Add(1)
				return nil
			},
		}
	}
	app, err := c.Submit(context.Background(), "job", specs)
	if err != nil {
		t.Fatal(err)
	}
	statuses := app.Wait()
	if ran.Load() != 3 {
		t.Fatalf("%d containers ran, want 3", ran.Load())
	}
	for _, s := range statuses {
		if s.Err != nil {
			t.Fatalf("container %s failed: %v", s.ID, s.Err)
		}
	}
}

func TestCapacityLimits(t *testing.T) {
	c := NewCluster()
	c.AddNode("n1", Resource{VCores: 2, MemoryMB: 1024})
	block := make(chan struct{})
	specs := []ContainerSpec{
		{Resource: Resource{VCores: 2, MemoryMB: 1024}, Run: func(ctx context.Context) error {
			// Containers must return promptly on cancellation: Submit's
			// failure path stops the whole application.
			select {
			case <-block:
			case <-ctx.Done():
			}
			return nil
		}},
		{Resource: Resource{VCores: 1, MemoryMB: 512}, Run: func(ctx context.Context) error {
			return nil
		}},
	}
	_, err := c.Submit(context.Background(), "job", specs)
	if !errors.Is(err, ErrNoCapacity) {
		t.Fatalf("overcommit: %v", err)
	}
	close(block)
}

func TestFailedContainerRestarts(t *testing.T) {
	c := twoNodeCluster()
	var attempts atomic.Int32
	spec := ContainerSpec{
		Resource:    Resource{VCores: 1, MemoryMB: 256},
		MaxRestarts: 3,
		Run: func(ctx context.Context) error {
			if attempts.Add(1) < 3 {
				return errors.New("task crash")
			}
			return nil
		},
	}
	app, err := c.Submit(context.Background(), "job", []ContainerSpec{spec})
	if err != nil {
		t.Fatal(err)
	}
	statuses := app.Wait()
	if attempts.Load() != 3 {
		t.Fatalf("%d attempts, want 3", attempts.Load())
	}
	last := statuses[len(statuses)-1]
	if last.Err != nil {
		t.Fatalf("final attempt failed: %v", last.Err)
	}
}

func TestRestartBudgetExhausted(t *testing.T) {
	c := twoNodeCluster()
	spec := ContainerSpec{
		Resource:    Resource{VCores: 1, MemoryMB: 256},
		MaxRestarts: 2,
		Run: func(ctx context.Context) error {
			return errors.New("always fails")
		},
	}
	app, err := c.Submit(context.Background(), "job", []ContainerSpec{spec})
	if err != nil {
		t.Fatal(err)
	}
	statuses := app.Wait()
	var gaveUp bool
	for _, s := range statuses {
		if errors.Is(s.Err, ErrGiveUp) {
			gaveUp = true
		}
	}
	if !gaveUp {
		t.Fatalf("restart budget never reported: %v", statuses)
	}
	if got := app.Restarts()[ContainerID{App: "job", Seq: 0}]; got != 3 {
		t.Fatalf("restarts = %d, want 3 (2 allowed + 1 over)", got)
	}
}

func TestNodeFailureMigratesContainer(t *testing.T) {
	c := twoNodeCluster()
	started := make(chan string, 8)
	finished := make(chan struct{})
	spec := ContainerSpec{
		Resource:    Resource{VCores: 1, MemoryMB: 256},
		MaxRestarts: 2,
		Run: func(ctx context.Context) error {
			started <- "attempt"
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-finished:
				return nil
			}
		},
	}
	app, err := c.Submit(context.Background(), "job", []ContainerSpec{spec})
	if err != nil {
		t.Fatal(err)
	}
	<-started // first attempt running

	// Find which node hosts it by killing nodes until the attempt dies;
	// deterministic allocation places the first container on n1 (most free
	// cores, sorted tie-break).
	if err := c.KillNode("n1"); err != nil {
		t.Fatal(err)
	}
	select {
	case <-started: // restarted on the surviving node
	case <-time.After(5 * time.Second):
		t.Fatal("container never migrated after node death")
	}
	close(finished)
	statuses := app.Wait()

	var killed, clean bool
	for _, s := range statuses {
		if s.Killed {
			killed = true
		}
		if s.Err == nil && !s.Killed {
			clean = true
		}
	}
	if !killed || !clean {
		t.Fatalf("expected one killed and one clean attempt: %+v", statuses)
	}
	if nodes := c.Nodes(); len(nodes) != 1 || nodes[0] != "n2" {
		t.Fatalf("live nodes %v", nodes)
	}
}

func TestStopCancelsContainers(t *testing.T) {
	c := twoNodeCluster()
	spec := ContainerSpec{
		Resource: Resource{VCores: 1, MemoryMB: 256},
		Run: func(ctx context.Context) error {
			<-ctx.Done()
			return ctx.Err()
		},
	}
	app, err := c.Submit(context.Background(), "job", []ContainerSpec{spec})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		app.Stop()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Stop never returned")
	}
}

func TestKillUnknownNode(t *testing.T) {
	c := NewCluster()
	if err := c.KillNode("ghost"); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("KillNode(ghost): %v", err)
	}
}

func TestSubmitOnEmptyCluster(t *testing.T) {
	c := NewCluster()
	_, err := c.Submit(context.Background(), "job", []ContainerSpec{{
		Resource: Resource{VCores: 1},
		Run:      func(ctx context.Context) error { return nil },
	}})
	if !errors.Is(err, ErrClusterEmpty) {
		t.Fatalf("empty cluster: %v", err)
	}
}

// Package yarn simulates the slice of Hadoop YARN that Samza depends on
// (§2): a resource manager tracking node managers with finite capacity, a
// per-application master that requests containers, and restart of failed
// containers on surviving nodes. There is no global master involvement in
// job-level scheduling decisions — each application master schedules its own
// containers, mirroring Samza's "masterless" property.
package yarn

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Errors returned by the resource manager.
var (
	ErrNoCapacity   = errors.New("yarn: no node with free capacity")
	ErrUnknownNode  = errors.New("yarn: unknown node")
	ErrUnknownApp   = errors.New("yarn: unknown application")
	ErrAppFinished  = errors.New("yarn: application finished")
	ErrGiveUp       = errors.New("yarn: container exceeded restart budget")
	ErrClusterEmpty = errors.New("yarn: cluster has no nodes")
)

// Resource is the capacity unit requested per container.
type Resource struct {
	VCores   int
	MemoryMB int
}

// node is one node manager.
type node struct {
	id       string
	capacity Resource
	used     Resource
	alive    bool
	// running tracks cancel functions for containers placed here.
	running map[ContainerID]context.CancelFunc
}

func (n *node) fits(r Resource) bool {
	return n.alive &&
		n.used.VCores+r.VCores <= n.capacity.VCores &&
		n.used.MemoryMB+r.MemoryMB <= n.capacity.MemoryMB
}

// ContainerID identifies a container within the cluster.
type ContainerID struct {
	App string
	Seq int
}

func (id ContainerID) String() string { return fmt.Sprintf("%s#%d", id.App, id.Seq) }

// ContainerStatus is the terminal report for one container attempt.
type ContainerStatus struct {
	ID     ContainerID
	Node   string
	Err    error // nil on clean exit
	Killed bool  // true when the node died or the app was stopped
}

// RunFunc is the work a container executes. It should return promptly when
// ctx is cancelled.
type RunFunc func(ctx context.Context) error

// ContainerSpec describes one container an application wants.
type ContainerSpec struct {
	Resource Resource
	Run      RunFunc
	// MaxRestarts bounds automatic restarts after failures; the default 0
	// means never restart.
	MaxRestarts int
}

// Cluster is the resource manager plus node managers.
type Cluster struct {
	mu    sync.Mutex
	nodes map[string]*node
	apps  map[string]*Application
	// hook, when set, observes cluster lifecycle events (allocations,
	// container exits, restarts, node deaths). Called outside c.mu.
	hook func(kind, detail string)
}

// SetEventHook installs fn as the cluster's lifecycle event observer. The
// runner uses it to feed the trace stream's event log; fn must be safe for
// concurrent calls and must not block.
func (c *Cluster) SetEventHook(fn func(kind, detail string)) {
	c.mu.Lock()
	c.hook = fn
	c.mu.Unlock()
}

// emit reports one lifecycle event to the hook, if any, outside c.mu.
func (c *Cluster) emit(kind, detail string) {
	c.mu.Lock()
	fn := c.hook
	c.mu.Unlock()
	if fn != nil {
		fn(kind, detail)
	}
}

// NewCluster returns an empty cluster.
func NewCluster() *Cluster {
	return &Cluster{nodes: map[string]*node{}, apps: map[string]*Application{}}
}

// AddNode registers a node manager with the given capacity.
func (c *Cluster) AddNode(id string, capacity Resource) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nodes[id] = &node{
		id:       id,
		capacity: capacity,
		alive:    true,
		running:  map[ContainerID]context.CancelFunc{},
	}
}

// Nodes returns the IDs of live nodes, sorted.
func (c *Cluster) Nodes() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []string
	for id, n := range c.nodes {
		if n.alive {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}

// allocate picks the live node with the most free vcores that fits r.
func (c *Cluster) allocate(r Resource) (*node, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.nodes) == 0 {
		return nil, ErrClusterEmpty
	}
	var best *node
	bestFree := -1
	// Deterministic tie-break: iterate sorted IDs.
	ids := make([]string, 0, len(c.nodes))
	for id := range c.nodes {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		n := c.nodes[id]
		if !n.fits(r) {
			continue
		}
		free := n.capacity.VCores - n.used.VCores
		if free > bestFree {
			best, bestFree = n, free
		}
	}
	if best == nil {
		return nil, ErrNoCapacity
	}
	best.used.VCores += r.VCores
	best.used.MemoryMB += r.MemoryMB
	return best, nil
}

func (c *Cluster) release(n *node, r Resource, id ContainerID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	n.used.VCores -= r.VCores
	n.used.MemoryMB -= r.MemoryMB
	delete(n.running, id)
}

// KillNode marks a node dead and cancels every container on it. Application
// masters observe the failures and restart containers elsewhere.
func (c *Cluster) KillNode(id string) error {
	c.mu.Lock()
	n, ok := c.nodes[id]
	if !ok {
		c.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrUnknownNode, id)
	}
	n.alive = false
	cancels := make([]context.CancelFunc, 0, len(n.running))
	for _, cancel := range n.running {
		cancels = append(cancels, cancel)
	}
	c.mu.Unlock()
	c.emit("node-killed", id)
	for _, cancel := range cancels {
		cancel()
	}
	return nil
}

// Application is the application-master view of one submitted job.
type Application struct {
	ID string

	cluster *Cluster
	ctx     context.Context
	cancel  context.CancelFunc
	wg      sync.WaitGroup

	mu       sync.Mutex
	statuses []ContainerStatus
	restarts map[ContainerID]int
	done     bool
}

// Submit creates an application and launches one container per spec. Each
// container that fails (or whose node dies) is restarted on a node with
// capacity, up to its restart budget.
func (c *Cluster) Submit(ctx context.Context, appID string, specs []ContainerSpec) (*Application, error) {
	appCtx, cancel := context.WithCancel(ctx)
	app := &Application{
		ID:       appID,
		cluster:  c,
		ctx:      appCtx,
		cancel:   cancel,
		restarts: map[ContainerID]int{},
	}
	c.mu.Lock()
	c.apps[appID] = app
	c.mu.Unlock()

	for i, spec := range specs {
		id := ContainerID{App: appID, Seq: i}
		if err := app.launch(id, spec); err != nil {
			app.Stop()
			return nil, err
		}
	}
	return app, nil
}

// launch places one container attempt; on failure it recursively relaunches
// until the restart budget is exhausted.
func (a *Application) launch(id ContainerID, spec ContainerSpec) error {
	n, err := a.cluster.allocate(spec.Resource)
	if err != nil {
		return fmt.Errorf("launching %s: %w", id, err)
	}
	runCtx, runCancel := context.WithCancel(a.ctx)
	a.cluster.mu.Lock()
	n.running[id] = runCancel
	a.cluster.mu.Unlock()
	a.cluster.emit("container-allocate", fmt.Sprintf("%s on %s", id, n.id))

	a.wg.Add(1)
	go func() {
		defer a.wg.Done()
		err := spec.Run(runCtx)
		killed := runCtx.Err() != nil
		runCancel()
		a.cluster.release(n, spec.Resource, id)

		a.mu.Lock()
		a.statuses = append(a.statuses, ContainerStatus{ID: id, Node: n.id, Err: err, Killed: killed})
		done := a.done
		a.mu.Unlock()

		appStopped := a.ctx.Err() != nil
		if done || appStopped {
			if killed {
				a.cluster.emit("container-killed", fmt.Sprintf("%s on %s", id, n.id))
			} else {
				a.cluster.emit("container-exit", fmt.Sprintf("%s on %s", id, n.id))
			}
			return
		}
		if err == nil && !killed {
			a.cluster.emit("container-exit", fmt.Sprintf("%s on %s", id, n.id))
			return // clean exit
		}
		if err != nil {
			a.cluster.emit("container-failed", fmt.Sprintf("%s on %s: %v", id, n.id, err))
		}
		// Failure or node death: restart if budget remains.
		a.mu.Lock()
		a.restarts[id]++
		over := a.restarts[id] > spec.MaxRestarts
		a.mu.Unlock()
		if over {
			a.cluster.emit("container-giveup", id.String())
			a.mu.Lock()
			a.statuses = append(a.statuses, ContainerStatus{ID: id, Node: n.id, Err: ErrGiveUp})
			a.mu.Unlock()
			return
		}
		a.cluster.emit("container-restart", fmt.Sprintf("%s attempt %d", id, a.Restarts()[id]+1))
		if lerr := a.launch(id, spec); lerr != nil {
			a.mu.Lock()
			a.statuses = append(a.statuses, ContainerStatus{ID: id, Node: n.id, Err: lerr})
			a.mu.Unlock()
		}
	}()
	return nil
}

// Wait blocks until all containers (including restarts) finish.
func (a *Application) Wait() []ContainerStatus {
	a.wg.Wait()
	a.mu.Lock()
	defer a.mu.Unlock()
	a.done = true
	out := make([]ContainerStatus, len(a.statuses))
	copy(out, a.statuses)
	return out
}

// Stop cancels all containers and waits for them to unwind.
func (a *Application) Stop() {
	a.mu.Lock()
	a.done = true
	a.mu.Unlock()
	a.cancel()
	a.wg.Wait()
}

// Restarts reports how many restarts each container consumed.
func (a *Application) Restarts() map[ContainerID]int {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[ContainerID]int, len(a.restarts))
	for k, v := range a.restarts {
		out[k] = v
	}
	return out
}

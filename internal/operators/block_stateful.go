package operators

import (
	"encoding/binary"
	"fmt"

	"samzasql/internal/kv"
)

// Vectorized paths for the stateful operators: sliding window, streaming
// aggregate, stream-relation join, stream-stream join. The shared scheme is
// per-block group clustering — evaluate key expressions columnarly over the
// block, encode each group/join key once per distinct key (adjacent equal
// keys are run-detected, the single-int64 memo catches repeats across
// runs), load every distinct key's state through one batched store read
// (kv.GetMany / ObjectCache.GetObjectMany), fold all of the key's rows, and
// write the state back once per key per block instead of once per tuple.
//
// Output rows are emitted in input-row order (window emissions in window-end
// order), so a block-path program produces byte-identical output in the
// identical sequence to the scalar per-tuple path — the property the
// batch-vs-scalar equivalence tests pin.

// runEqual reports whether two consecutive key values are equal, for the
// scalar types worth run-detecting. Other types report comparable=false and
// fall back to per-row encoding.
func runEqual(a, b any) (eq, ok bool) {
	switch av := a.(type) {
	case int64:
		bv, ok := b.(int64)
		return ok && av == bv, true
	case string:
		bv, ok := b.(string)
		return ok && av == bv, true
	}
	return false, false
}

// ----- SlidingWindowOp -----

// ProcessBlock implements BlockOperator: Algorithm 1 over a whole block.
// Per analytic call it clusters the block's rows by partition key, loads
// each distinct key's window state once (batched), folds the key's rows in
// offset order through the same per-tuple steps as the scalar path, and
// persists each modified state once. The output block carries one row per
// selected input row — input columns plus one value column per call — with
// replayed rows (already-applied offsets) deselected, matching the scalar
// path's suppressed emits.
//
//samzasql:hotpath
func (o *SlidingWindowOp) ProcessBlock(_ int, b *TupleBlock, emit BlockEmit) error {
	nSel := len(b.Sel)
	inArity := len(b.Cols)
	arity := inArity + len(o.calls)
	out := &o.outBlock
	out.resetOut(b, arity)
	if nSel == 0 {
		out.finishOut()
		return emit(out)
	}
	out.N = nSel
	out.sizeCols(arity, nSel)
	for k, r := range b.Sel {
		for c := 0; c < inArity; c++ {
			out.Cols[c][k] = b.Cols[c][r]
		}
		out.Ts = append(out.Ts, b.Ts[r])
		out.Keys = append(out.Keys, b.Keys[r])
		out.Offsets = append(out.Offsets, b.Offsets[r])
	}
	if cap(o.rowScratch) < inArity {
		o.rowScratch = make([]any, inArity)
	}
	row := o.rowScratch[:inArity]
	replay := o.blkReplay[:0]
	for k := 0; k < nSel; k++ {
		replay = append(replay, false)
	}
	src := o.sources.keyFor(b.Stream, b.Partition)
	for ci, call := range o.calls {
		if err := o.processCallBlock(call, b, out.Cols[inArity+ci], replay, ci == 0, src, row); err != nil {
			return err
		}
	}
	o.blkReplay = replay
	// Replayed rows (detected on call 0, like the scalar path) are
	// deselected rather than compacted; downstream stages honor Sel.
	sel := out.Sel[:0]
	for k := 0; k < nSel; k++ {
		if !replay[k] {
			sel = append(sel, k)
		}
	}
	out.Sel = sel
	return emit(out)
}

// processCallBlock runs one analytic call over the block: columnar key
// evaluation with run detection, one batched state load per distinct key,
// in-order folding, one write-back per modified key.
//
//samzasql:hotpath
func (o *SlidingWindowOp) processCallBlock(c *analyticState, b *TupleBlock, outCol []any, replay []bool, first bool, src string, row []any) error {
	if c.partVals == nil {
		c.partVals = make([]any, len(c.partEvals))
	}
	// Pass 1: encoded partition key per selected row. Adjacent rows with the
	// same single-column key reuse the previous encoding; the group-key memo
	// catches non-adjacent repeats of int64 keys.
	pks := o.blkPks[:0]
	var prevPk []byte
	var prevVal any
	havePrev := false
	for _, r := range b.Sel {
		row = b.gather(r, row)
		for i, ev := range c.partEvals {
			v, err := ev(row)
			if err != nil {
				return err
			}
			c.partVals[i] = v
		}
		if len(c.partVals) == 1 && havePrev {
			if eq, ok := runEqual(c.partVals[0], prevVal); ok && eq {
				pks = append(pks, prevPk)
				continue
			}
		}
		pk, err := c.groupKey(o.obj)
		if err != nil {
			return err
		}
		pks = append(pks, pk)
		if len(c.partVals) == 1 {
			if _, ok := runEqual(c.partVals[0], c.partVals[0]); ok {
				prevPk, prevVal, havePrev = pk, c.partVals[0], true
				continue
			}
		}
		havePrev = false
	}
	o.blkPks = pks

	// Pass 2: distinct state keys in first-touch order, then one batched
	// load through the cache/store stack.
	states := o.resetBlockStates()
	keys := o.blkKeys[:0]
	for _, pk := range pks {
		o.sbuf = appendStateKey(o.sbuf[:0], c.idx, pk)
		if _, ok := states[string(o.sbuf)]; ok {
			continue
		}
		sk := append([]byte(nil), o.sbuf...)
		states[string(sk)] = nil
		keys = append(keys, sk)
	}
	o.blkKeys = keys
	if err := o.loadStatesBatch(c, keys, states); err != nil {
		return err
	}

	// Pass 3: fold the rows in offset order against the block-resident
	// states — the same steps as the scalar processCall, minus the per-tuple
	// load and save.
	for k, r := range b.Sel {
		o.sbuf = appendStateKey(o.sbuf[:0], c.idx, pks[k])
		ws := states[string(o.sbuf)]
		offset := b.Offsets[r]
		if ws.offsets.seen(src, offset) {
			if first {
				replay[k] = true
			}
			outCol[k] = ws.acc.Value()
			continue
		}
		row = b.gather(r, row)
		ov, err := c.orderEval(row)
		if err != nil {
			return err
		}
		ts, ok := ov.(int64)
		if !ok {
			return fmt.Errorf("operators: ORDER BY value is %T", ov)
		}
		var arg any = int64(1)
		if c.argEval != nil {
			arg, err = c.argEval(row)
			if err != nil {
				return err
			}
		}
		if err := o.foldTuple(c, ws, pks[k], ts, arg, offset); err != nil {
			return err
		}
		ws.offsets = ws.offsets.update(src, offset)
		ws.dirty = true
		outCol[k] = ws.acc.Value()
	}

	// Write back once per modified key, in first-touch order (deterministic
	// changelog content for a given input).
	for _, sk := range keys {
		ws := states[string(sk)]
		if !ws.dirty {
			continue
		}
		ws.dirty = false
		//samzasql:ignore hotpath-blocking -- the task store mutex is per-task single-writer and uncontended by design; skiplist access under it is the state-access contract
		if err := o.saveCallState(sk, ws); err != nil {
			return err
		}
	}
	return nil
}

// resetBlockStates returns the cleared per-block state map; the map itself
// allocates once per operator, outside the hot path.
func (o *SlidingWindowOp) resetBlockStates() map[string]*windowState {
	if o.blkStates == nil {
		o.blkStates = make(map[string]*windowState)
	}
	for k := range o.blkStates {
		delete(o.blkStates, k)
	}
	return o.blkStates
}

// loadStatesBatch fills the block state map for the distinct state keys:
// cache-resident decoded states come from one GetObjectMany, everything
// else from one batched byte read (which, over a CachedStore, also caches
// the entries exactly as the scalar per-tuple Get would).
func (o *SlidingWindowOp) loadStatesBatch(c *analyticState, keys [][]byte, states map[string]*windowState) error {
	miss := keys
	if o.cache != nil {
		objs := o.blkObjs[:0]
		oks := o.blkOks[:0]
		for range keys {
			objs = append(objs, nil)
			oks = append(oks, false)
		}
		o.cache.GetObjectMany(keys, objs, oks)
		miss = o.blkMiss[:0]
		for i, k := range keys {
			if oks[i] {
				states[string(k)] = objs[i].(*windowState)
			} else {
				miss = append(miss, k)
			}
		}
		o.blkMiss = miss
		o.blkObjs = objs[:0]
	}
	if len(miss) > 0 {
		vals := o.blkVals[:0]
		oks := o.blkOks[:0]
		for range miss {
			vals = append(vals, nil)
			oks = append(oks, false)
		}
		kv.GetMany(o.store, miss, vals, oks)
		for j, k := range miss {
			ws, err := o.decodeCallState(c, vals[j], oks[j])
			if err != nil {
				return err
			}
			if o.cache != nil {
				o.cache.CacheObject(k, ws)
			}
			states[string(k)] = ws
		}
		o.blkVals, o.blkOks = vals[:0], oks[:0]
	}
	// Clear dirty flags: cached state objects are shared with earlier
	// blocks and may carry stale marks.
	for _, k := range keys {
		states[string(k)].dirty = false
	}
	return nil
}

// ----- StreamAggregateOp -----

// appendWindowKey assembles the store key "w:" + bigendian(end) + kb from
// pre-encoded group-key bytes, letting the block path encode the group part
// once per distinct key instead of once per (row, boundary).
func appendWindowKey(buf []byte, end int64, kb []byte) []byte {
	var e [8]byte
	binary.BigEndian.PutUint64(e[:], uint64(end))
	buf = append(buf, 'w', ':')
	buf = append(buf, e[:]...)
	return append(buf, kb...)
}

// ProcessBlock implements BlockOperator for the streaming aggregate. Both
// modes cluster the block by group key and load each distinct key's
// accumulator set through one batched read. Unwindowed groups emit their
// updated row per input tuple (early results), in input order; windowed
// groups buffer contributions against a locally advancing watermark and
// emit every closed window once, in window-end order — the same sequence
// the scalar path's per-tuple watermark advances produce.
//
//samzasql:hotpath
func (o *StreamAggregateOp) ProcessBlock(_ int, b *TupleBlock, emit BlockEmit) error {
	out := &o.outBlock
	out.resetOut(b, len(o.keyEvals)+len(o.aggs))
	if len(b.Sel) > 0 {
		var err error
		if o.window == nil {
			//samzasql:ignore hotpath-blocking -- the task store mutex is per-task single-writer and uncontended by design; skiplist access under it is the state-access contract
			err = o.processUnwindowedBlock(b, out)
		} else {
			//samzasql:ignore hotpath-blocking -- the task store mutex is per-task single-writer and uncontended by design; skiplist access under it is the state-access contract
			err = o.processWindowedBlock(b, out)
		}
		if err != nil {
			return err
		}
	}
	out.finishOut()
	return emit(out)
}

// blockScratch sizes the gather row and group-key scratch for the block.
func (o *StreamAggregateOp) blockScratch(b *TupleBlock) []any {
	if cap(o.rowScratch) < len(b.Cols) {
		o.rowScratch = make([]any, len(b.Cols))
	}
	if cap(o.keyScratch) < len(o.keyEvals)+len(o.aggs) {
		o.keyScratch = make([]any, len(o.keyEvals)+len(o.aggs))
	}
	return o.rowScratch[:len(b.Cols)]
}

// loadAggStates batch-reads the distinct store keys into the block state
// map (first-touch order in keys).
func (o *StreamAggregateOp) loadAggStates(keys [][]byte, states map[string]*aggBlockState) error {
	if len(keys) == 0 {
		return nil
	}
	vals := o.blkVals[:0]
	oks := o.blkOks[:0]
	for range keys {
		vals = append(vals, nil)
		oks = append(oks, false)
	}
	kv.GetMany(o.store, keys, vals, oks)
	for i, k := range keys {
		set, offsets, err := o.decodeSet(vals[i], oks[i])
		if err != nil {
			return err
		}
		states[string(k)] = &aggBlockState{set: set, offsets: offsets}
	}
	o.blkVals, o.blkOks = vals[:0], oks[:0]
	return nil
}

func (o *StreamAggregateOp) resetBlockStates() map[string]*aggBlockState {
	states := o.blkStates
	if states == nil {
		states = make(map[string]*aggBlockState)
		o.blkStates = states
	}
	for k := range states {
		delete(states, k)
	}
	return states
}

func (o *StreamAggregateOp) processUnwindowedBlock(b *TupleBlock, out *TupleBlock) error {
	row := o.blockScratch(b)
	nk := len(o.keyEvals)
	keyVals := o.keyScratch[:nk]

	// Pass 1: per-row store keys (run-detected) plus the flat key-value
	// arena emission reads back, and the distinct-key list.
	states := o.resetBlockStates()
	kbs := o.blkKb[:0]
	keyArena := o.blkKeyVals[:0]
	keys := o.blkKeys[:0]
	var prevKey []byte
	var prevVal any
	havePrev := false
	for _, r := range b.Sel {
		row = b.gather(r, row)
		for i, ev := range o.keyEvals {
			v, err := ev(row)
			if err != nil {
				return fmt.Errorf("operators: group key: %w", err)
			}
			keyVals[i] = v
		}
		keyArena = append(keyArena, keyVals...)
		if nk == 1 && havePrev {
			if eq, ok := runEqual(keyVals[0], prevVal); ok && eq {
				kbs = append(kbs, prevKey)
				continue
			}
		}
		sk, err := o.encodeKey(0, keyVals)
		if err != nil {
			return err
		}
		kbs = append(kbs, sk)
		if nk == 1 {
			if _, ok := runEqual(keyVals[0], keyVals[0]); ok {
				prevKey, prevVal, havePrev = sk, keyVals[0], true
			} else {
				havePrev = false
			}
		}
		if _, ok := states[string(sk)]; !ok {
			states[string(sk)] = nil
			keys = append(keys, sk)
		}
	}
	o.blkKb, o.blkKeyVals, o.blkKeys = kbs, keyArena, keys

	// Pass 2: one batched load for every distinct group.
	if err := o.loadAggStates(keys, states); err != nil {
		return err
	}

	// Pass 3: fold in input order, emitting each group's updated row per
	// tuple (early-results policy), state written back once per group.
	src := o.sources.keyFor(b.Stream, b.Partition)
	outRow := o.keyScratch[:nk+len(o.aggs)]
	for k, r := range b.Sel {
		st := states[string(kbs[k])]
		offset := b.Offsets[r]
		if st.offsets.seen(src, offset) {
			continue
		}
		row = b.gather(r, row)
		if err := st.set.Add(row); err != nil {
			return err
		}
		st.offsets = st.offsets.update(src, offset)
		st.dirty = true
		copy(outRow[:nk], keyArena[k*nk:(k+1)*nk])
		copy(outRow[nk:], st.set.Values())
		out.appendRow(outRow, b.Ts[r], kbs[k], offset)
	}
	for _, sk := range keys {
		st := states[string(sk)]
		if !st.dirty {
			continue
		}
		st.dirty = false
		if err := o.saveSet(sk, st.set, st.offsets); err != nil {
			return err
		}
	}
	return nil
}

func (o *StreamAggregateOp) processWindowedBlock(b *TupleBlock, out *TupleBlock) error {
	row := o.blockScratch(b)
	nk := len(o.keyEvals)
	keyVals := o.keyScratch[:nk]
	emitEvery := o.window.EmitMillis
	retain := o.window.RetainMillis
	align := o.window.AlignMillis

	// Pass 1: per-row group-key bytes (run-detected) and window timestamps,
	// plus the candidate (window end, group) store keys — every boundary
	// past the block-start watermark. Rows a later (local) watermark will
	// drop contribute unused loads, never wrong state.
	states := o.resetBlockStates()
	kbs := o.blkKb[:0]
	tss := o.blkTs[:0]
	keys := o.blkKeys[:0]
	var prevKb []byte
	var prevVal any
	havePrev := false
	for _, r := range b.Sel {
		row = b.gather(r, row)
		for i, ev := range o.keyEvals {
			v, err := ev(row)
			if err != nil {
				return fmt.Errorf("operators: group key: %w", err)
			}
			keyVals[i] = v
		}
		tsv, err := o.tsEval(row)
		if err != nil {
			return fmt.Errorf("operators: window timestamp: %w", err)
		}
		ts, ok := tsv.(int64)
		if !ok {
			return fmt.Errorf("operators: window timestamp is %T", tsv)
		}
		tss = append(tss, ts)
		reused := false
		if nk == 1 && havePrev {
			if eq, ok := runEqual(keyVals[0], prevVal); ok && eq {
				kbs = append(kbs, prevKb)
				reused = true
			}
		}
		if !reused {
			kb, err := o.obj.Encode(keyVals)
			if err != nil {
				return err
			}
			kbs = append(kbs, kb)
			if nk == 1 {
				if _, ok := runEqual(keyVals[0], keyVals[0]); ok {
					prevKb, prevVal, havePrev = kb, keyVals[0], true
				} else {
					havePrev = false
				}
			}
		}
		kb := kbs[len(kbs)-1]
		for e := nextBoundary(ts, emitEvery, align); e <= ts+retain; e += emitEvery {
			if e <= o.watermark {
				continue
			}
			o.blkWk = appendWindowKey(o.blkWk[:0], e, kb)
			if _, ok := states[string(o.blkWk)]; ok {
				continue
			}
			sk := append([]byte(nil), o.blkWk...)
			states[string(sk)] = nil
			keys = append(keys, sk)
		}
	}
	o.blkKb, o.blkTs, o.blkKeys = kbs, tss, keys

	// Pass 2: one batched load for every candidate window state.
	if err := o.loadAggStates(keys, states); err != nil {
		return err
	}

	// Pass 3: fold contributions against a locally advancing watermark —
	// the same drop decisions the scalar path makes tuple by tuple.
	src := o.sources.keyFor(b.Stream, b.Partition)
	wmLocal := o.watermark
	for k, r := range b.Sel {
		ts := tss[k]
		offset := b.Offsets[r]
		row = b.gather(r, row)
		for e := nextBoundary(ts, emitEvery, align); e <= ts+retain; e += emitEvery {
			if e <= wmLocal {
				continue // window already closed; late contribution dropped
			}
			o.blkWk = appendWindowKey(o.blkWk[:0], e, kbs[k])
			st := states[string(o.blkWk)]
			if st.offsets.seen(src, offset) {
				continue
			}
			st.set.SetWindow(e-retain, e)
			if err := st.set.Add(row); err != nil {
				return err
			}
			st.offsets = st.offsets.update(src, offset)
			st.dirty = true
		}
		if ts > wmLocal {
			wmLocal = ts
		}
	}

	// Write the dirty window states through, then close every window the
	// block's watermark passed with one advance. Deferring the advance to
	// the block boundary emits the identical window set in the identical
	// (end-order) sequence: contributions to a window past the local
	// watermark were dropped above, exactly as the scalar path drops them
	// after its own mid-stream advances.
	for _, sk := range keys {
		st := states[string(sk)]
		if !st.dirty {
			continue
		}
		st.dirty = false
		if err := o.saveSet(sk, st.set, st.offsets); err != nil {
			return err
		}
	}
	if wmLocal > o.watermark {
		last := b.Sel[len(b.Sel)-1]
		srcT := Tuple{Stream: b.Stream, Partition: b.Partition, Offset: b.Offsets[last]}
		o.wmOut = out
		err := o.advanceWatermark(wmLocal, o.wmSink, &srcT)
		o.wmOut = nil
		return err
	}
	return nil
}

// ----- StreamRelationJoinOp -----

// combineInto lays out the combined row in operator scratch with the stream
// side in its SQL position; appendRow and the compiled evaluators copy or
// read values, so the scratch is safe to reuse per row.
func (o *StreamRelationJoinOp) combineInto(streamRow, relRow []any) []any {
	arity := o.leftArity + o.rightArity
	if cap(o.cmbScratch) < arity {
		o.cmbScratch = make([]any, arity)
	}
	out := o.cmbScratch[:arity]
	for i := range out {
		out[i] = nil
	}
	if o.StreamIsLeft {
		copy(out, streamRow)
		copy(out[o.leftArity:], relRow)
	} else {
		copy(out, relRow)
		copy(out[o.leftArity:], streamRow)
	}
	return out
}

// ProcessBlock implements BlockOperator. Relation-side blocks update the
// cached relation row per tuple and emit nothing, like the scalar path.
// Stream-side blocks evaluate the join key columnarly, resolve every
// distinct key with one batched read (decoded-object cache first, then
// bytes), and emit the matching combined rows in input order.
//
//samzasql:hotpath
func (o *StreamRelationJoinOp) ProcessBlock(side int, b *TupleBlock, emit BlockEmit) error {
	if cap(o.rowScratch) < len(b.Cols) {
		o.rowScratch = make([]any, len(b.Cols))
	}
	row := o.rowScratch[:len(b.Cols)]
	if side == RightSide {
		for _, r := range b.Sel {
			row = b.gather(r, row)
			relRow := row
			if o.cache != nil {
				// The cache retains the row; hand over an owned copy.
				relRow = append([]any(nil), row...)
			}
			//samzasql:ignore hotpath-blocking -- the task store mutex is per-task single-writer and uncontended by design; skiplist access under it is the state-access contract
			if err := o.processRelationRow(relRow); err != nil {
				return err
			}
		}
		return nil
	}
	out := &o.outBlock
	out.resetOut(b, o.leftArity+o.rightArity)
	if len(b.Sel) == 0 {
		out.finishOut()
		return emit(out)
	}

	// Pass 1: per-row relation keys with run detection, distinct keys in
	// first-touch order.
	rel := o.resetRelMap()
	rks := o.blkRks[:0]
	keys := o.blkKeys[:0]
	var prevRk []byte
	var prevVal any
	havePrev := false
	for _, r := range b.Sel {
		row = b.gather(r, row)
		probe := o.combineInto(row, nil)
		kval, err := o.keyEval(probe)
		if err != nil {
			return fmt.Errorf("operators: stream join key: %w", err)
		}
		if havePrev {
			if eq, ok := runEqual(kval, prevVal); ok && eq {
				rks = append(rks, prevRk)
				continue
			}
		}
		key, err := encodeGroupKey(o.store.obj, []any{kval})
		if err != nil {
			return err
		}
		rk := append([]byte("r:"), key...)
		rks = append(rks, rk)
		if _, ok := runEqual(kval, kval); ok {
			prevRk, prevVal, havePrev = rk, kval, true
		} else {
			havePrev = false
		}
		if _, ok := rel[string(rk)]; !ok {
			rel[string(rk)] = nil
			keys = append(keys, rk)
		}
	}
	o.blkRks, o.blkKeys = rks, keys

	// Pass 2: resolve every distinct key with one batched read. A key that
	// stays nil has no relation row — the inner join drops its rows.
	if err := o.resolveRelBatch(keys, rel); err != nil {
		return err
	}

	// Pass 3: combine, apply the residual, emit matches in input order.
	for k, r := range b.Sel {
		relRow := rel[string(rks[k])]
		if relRow == nil {
			continue
		}
		row = b.gather(r, row)
		combined := o.combineInto(row, relRow)
		v, err := o.residual(combined)
		if err != nil {
			return fmt.Errorf("operators: join condition: %w", err)
		}
		if bl, ok := v.(bool); !ok || !bl {
			continue
		}
		out.appendRow(combined, b.Ts[r], b.Keys[r], b.Offsets[r])
	}
	out.finishOut()
	return emit(out)
}

// resetRelMap returns the cleared per-block resolved-relation map; the map
// itself allocates once per operator, outside the hot path.
func (o *StreamRelationJoinOp) resetRelMap() map[string][]any {
	if o.blkRel == nil {
		o.blkRel = make(map[string][]any)
	}
	for k := range o.blkRel {
		delete(o.blkRel, k)
	}
	return o.blkRel
}

// resolveRelBatch fills rel for the distinct relation keys: decoded rows
// from one GetObjectMany when the cache is on, everything else through one
// batched byte read plus decode (cache-memoized like the scalar probe).
func (o *StreamRelationJoinOp) resolveRelBatch(keys [][]byte, rel map[string][]any) error {
	miss := keys
	if o.cache != nil {
		objs := o.blkObjs[:0]
		oks := o.blkOks[:0]
		for range keys {
			objs = append(objs, nil)
			oks = append(oks, false)
		}
		o.cache.GetObjectMany(keys, objs, oks)
		miss = miss[:0:0]
		for i, k := range keys {
			if oks[i] {
				rel[string(k)] = objs[i].([]any)
			} else {
				miss = append(miss, k)
			}
		}
		o.blkObjs = objs[:0]
	}
	if len(miss) == 0 {
		return nil
	}
	vals := o.blkVals[:0]
	oks := o.blkOks[:0]
	for range miss {
		vals = append(vals, nil)
		oks = append(oks, false)
	}
	kv.GetMany(o.store.raw, miss, vals, oks)
	for j, k := range miss {
		if !oks[j] {
			continue // no relation row: rel entry stays nil
		}
		relRowAny, err := o.store.obj.Decode(vals[j])
		if err != nil {
			return fmt.Errorf("operators: relation row decode: %w", err)
		}
		relRow := relRowAny.([]any)
		if o.cache != nil {
			o.cache.CacheObject(k, relRow)
		}
		rel[string(k)] = relRow
	}
	o.blkVals, o.blkOks = vals[:0], oks[:0]
	return nil
}

// ----- StreamStreamJoinOp -----

// ProcessBlock implements BlockOperator: the windowed side state stays
// range-probed per tuple (write-once keys a point cache or batched point
// read cannot serve), but the block path amortizes dispatch and
// instrumentation and assembles all matches into one output block, emitted
// in probe order — identical to the scalar emission sequence.
//
//samzasql:hotpath
func (o *StreamStreamJoinOp) ProcessBlock(side int, b *TupleBlock, emit BlockEmit) error {
	out := &o.outBlock
	out.resetOut(b, o.leftArity+o.rightArity)
	if cap(o.rowScratch) < len(b.Cols) {
		o.rowScratch = make([]any, len(b.Cols))
	}
	row := o.rowScratch[:len(b.Cols)]
	for _, r := range b.Sel {
		row = b.gather(r, row)
		o.blkTs, o.blkKey, o.blkOff = b.Ts[r], b.Keys[r], b.Offsets[r]
		//samzasql:ignore hotpath-blocking -- the task store mutex is per-task single-writer and uncontended by design; skiplist access under it is the state-access contract
		if err := o.processOne(side, row, o.blkTs, o.blkOff, o.blkSink); err != nil {
			return err
		}
	}
	out.finishOut()
	return emit(out)
}

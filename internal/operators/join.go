package operators

import (
	"encoding/binary"
	"fmt"

	"samzasql/internal/kv"
	"samzasql/internal/serde"
	"samzasql/internal/sql/expr"
	"samzasql/internal/sql/validate"
)

// JoinStoreName is the task store backing join state.
const JoinStoreName = "samzasql-join"

// Side indexes for join inputs.
const (
	LeftSide  = 0
	RightSide = 1
)

// StreamRelationJoinOp implements stream-to-relation joins (§4.4): the
// relation arrives as a bootstrapped changelog whose latest row per key is
// cached in the task's local store; stream tuples then look the key up and
// emit joined rows. Rows are (de)serialized with the generic object serde — the Go
// analog of the Kryo object serde the paper's prototype used, whose
// deserialization cost is the main reason SamzaSQL joins ran ~2x slower
// than native jobs (§5.1).
type StreamRelationJoinOp struct {
	// StreamIsLeft records which side of the combined row the stream
	// occupies.
	StreamIsLeft bool
	leftArity    int
	rightArity   int

	keyEval  expr.Evaluator // stream-side key over combined row
	relKey   expr.Evaluator // relation-side key over combined row
	residual expr.Evaluator // full ON condition over combined row

	store *storeView
	// cache, when the task store supports it, memoizes decoded relation rows
	// so repeated probes of a hot key skip the object-serde decode the paper
	// blames for the ~2x SQL join slowdown (§5.1). encRow re-encodes a
	// cached row when a relation update defers its serialization.
	cache  kv.ObjectCache
	encRow kv.ObjectEncoder

	// Block-path scratch (block_stateful.go): the output block, the gather
	// and combined-row scratch, per-row relation keys, the per-block
	// resolved-relation map, and the batched-read slices.
	outBlock   TupleBlock
	rowScratch []any
	cmbScratch []any
	blkRks     [][]byte
	blkRel     map[string][]any
	blkKeys    [][]byte
	blkVals    [][]byte
	blkObjs    []any
	blkOks     []bool
}

// NewStreamRelationJoinOp builds the operator. info's LeftKey/RightKey are
// bound over the combined row.
func NewStreamRelationJoinOp(info *validate.JoinInfo, leftArity, rightArity int, streamIsLeft bool) (*StreamRelationJoinOp, error) {
	op := &StreamRelationJoinOp{
		StreamIsLeft: streamIsLeft,
		leftArity:    leftArity,
		rightArity:   rightArity,
	}
	var streamKey, relKey expr.Expr
	if streamIsLeft {
		streamKey, relKey = info.LeftKey, info.RightKey
	} else {
		streamKey, relKey = info.RightKey, info.LeftKey
	}
	var err error
	if op.keyEval, err = expr.Compile(streamKey); err != nil {
		return nil, err
	}
	if op.relKey, err = expr.Compile(relKey); err != nil {
		return nil, err
	}
	if op.residual, err = expr.Compile(info.On); err != nil {
		return nil, err
	}
	return op, nil
}

// Open implements Operator.
func (o *StreamRelationJoinOp) Open(ctx *OpContext) error {
	o.store = &storeView{raw: ctx.Store(JoinStoreName)}
	if c, ok := o.store.raw.(kv.ObjectCache); ok {
		o.cache = c
		o.encRow = o.store.obj.Encode // bound once; handed to the cache per update
	}
	return nil
}

// Process implements Operator. Side 0 carries stream tuples, side 1 carries
// relation changelog tuples (regardless of SQL-side order; the physical
// planner routes accordingly).
func (o *StreamRelationJoinOp) Process(side int, t *Tuple, emit Emit) error {
	if side == RightSide {
		return o.processRelation(t)
	}
	return o.processStream(t, emit)
}

// processRelation caches the latest relation row under its join key.
func (o *StreamRelationJoinOp) processRelation(t *Tuple) error {
	return o.processRelationRow(t.Row)
}

// processRelationRow is the row-level relation update, shared by the scalar
// and block paths.
func (o *StreamRelationJoinOp) processRelationRow(row []any) error {
	combined := o.combine(nil, row)
	kval, err := o.relKey(combined)
	if err != nil {
		return fmt.Errorf("operators: relation join key: %w", err)
	}
	key, err := encodeGroupKey(o.store.obj, []any{kval})
	if err != nil {
		return err
	}
	rk := append([]byte("r:"), key...)
	if o.cache != nil {
		// Keep the decoded row resident; serialization defers to commit
		// flush, so a relation key updated many times per interval encodes
		// (and reaches the changelog) once. The cache retains row, so the
		// caller must hand over an owned slice, never reused scratch.
		o.cache.PutObject(rk, row, o.encRow)
		return nil
	}
	// The paper's prototype stores the row via a generic object serde
	// (Kryo there, the tagged object serde here).
	val, err := o.store.obj.Encode(row)
	if err != nil {
		return err
	}
	o.store.raw.Put(rk, val)
	return nil
}

// processStream joins one stream tuple against the cached relation.
//
//samzasql:hotpath
func (o *StreamRelationJoinOp) processStream(t *Tuple, emit Emit) error {
	probe := o.combine(t.Row, nil)
	kval, err := o.keyEval(probe)
	if err != nil {
		return fmt.Errorf("operators: stream join key: %w", err)
	}
	key, err := encodeGroupKey(o.store.obj, []any{kval})
	if err != nil {
		return err
	}
	rk := append([]byte("r:"), key...)
	var relRow []any
	if o.cache != nil {
		if obj, ok := o.cache.GetObject(rk); ok {
			relRow = obj.([]any)
		}
	}
	if relRow == nil {
		//samzasql:ignore hotpath-blocking -- the task store mutex is per-task single-writer and uncontended by design; skiplist access under it is the state-access contract
		raw, ok := o.store.raw.Get(rk)
		if !ok {
			return nil // inner join: no match, no output
		}
		relRowAny, err := o.store.obj.Decode(raw)
		if err != nil {
			return fmt.Errorf("operators: relation row decode: %w", err)
		}
		relRow = relRowAny.([]any)
		if o.cache != nil {
			o.cache.CacheObject(rk, relRow)
		}
	}
	combined := o.combine(t.Row, relRow)
	v, err := o.residual(combined)
	if err != nil {
		return fmt.Errorf("operators: join condition: %w", err)
	}
	if b, ok := v.(bool); !ok || !b {
		return nil
	}
	return emit(&Tuple{
		Row: combined, Ts: t.Ts, Key: t.Key,
		Stream: t.Stream, Partition: t.Partition, Offset: t.Offset,
	})
}

// combine lays out the combined row with the stream side in its SQL
// position. Missing sides are nil-filled.
func (o *StreamRelationJoinOp) combine(streamRow, relRow []any) []any {
	out := make([]any, o.leftArity+o.rightArity)
	if o.StreamIsLeft {
		copy(out, streamRow)
		copy(out[o.leftArity:], relRow)
	} else {
		copy(out, relRow)
		copy(out[o.leftArity:], streamRow)
	}
	return out
}

// storeView pairs a raw store with the generic object serde (the paper's
// Kryo analog) used for join state values.
type storeView struct {
	raw kv.Store
	obj serde.ObjectSerde
}

// StreamStreamJoinOp implements windowed stream-to-stream joins (§3.8.1):
// each side's recent tuples are retained in the local store keyed by
// (join key, timestamp, offset); an arriving tuple probes the opposite
// side's window, evaluates the full ON condition over the combined row, and
// emits matches. Tuples older than the window fall out of state as the
// event-time watermark advances.
type StreamStreamJoinOp struct {
	info       *validate.JoinInfo
	leftArity  int
	rightArity int

	leftKey, rightKey expr.Evaluator // over combined row
	residual          expr.Evaluator

	store     *storeView
	watermark [2]int64

	// Block-path scratch (block_stateful.go). blkSink is the output-block
	// append bound once in Open (a per-block closure would escape in the hot
	// path); blkTs/blkKey/blkOff carry the current row's attributes into it.
	outBlock   TupleBlock
	rowScratch []any
	blkSink    func(full []any) error
	blkTs      int64
	blkOff     int64
	blkKey     []byte

	// Scalar-path scratch: emitSink wraps the caller's emit the same way
	// blkSink wraps the output block — bound once in Open so Process does
	// not allocate a closure per tuple; curEmit/curT carry the live call's
	// emit and tuple into it.
	emitSink func(full []any) error
	curEmit  Emit
	curT     *Tuple
}

// NewStreamStreamJoinOp builds the operator.
func NewStreamStreamJoinOp(info *validate.JoinInfo, leftArity, rightArity int) (*StreamStreamJoinOp, error) {
	op := &StreamStreamJoinOp{info: info, leftArity: leftArity, rightArity: rightArity}
	var err error
	if op.leftKey, err = expr.Compile(info.LeftKey); err != nil {
		return nil, err
	}
	if op.rightKey, err = expr.Compile(info.RightKey); err != nil {
		return nil, err
	}
	if op.residual, err = expr.Compile(info.On); err != nil {
		return nil, err
	}
	return op, nil
}

// Open implements Operator.
func (o *StreamStreamJoinOp) Open(ctx *OpContext) error {
	o.store = &storeView{raw: ctx.Store(JoinStoreName)}
	// Windowed side state is write-once and probed/purged with per-tuple
	// range scans; an LRU point cache cannot help it, and ranging through
	// the cache would flush the write batch on every probe. Bypass it.
	if c, ok := o.store.raw.(kv.ObjectCache); ok {
		o.store.raw = c.Uncached()
	}
	o.blkSink = func(full []any) error {
		o.outBlock.appendRow(full, o.blkTs, o.blkKey, o.blkOff)
		return nil
	}
	o.emitSink = func(full []any) error {
		t := o.curT
		return o.curEmit(&Tuple{
			Row: full, Ts: t.Ts, Key: t.Key,
			Stream: t.Stream, Partition: t.Partition, Offset: t.Offset,
		})
	}
	return nil
}

// Process implements Operator: side 0 = left stream, side 1 = right stream.
func (o *StreamStreamJoinOp) Process(side int, t *Tuple, emit Emit) error {
	o.curEmit, o.curT = emit, t
	err := o.processOne(side, t.Row, t.Ts, t.Offset, o.emitSink)
	o.curEmit, o.curT = nil, nil
	return err
}

// processOne is the row-level join step shared by the scalar and block
// paths: store the tuple on its own side, probe the opposite side's window,
// hand every match (a freshly combined row the sink may retain) to sink,
// then purge. State access stays range-based per tuple — write-once windowed
// side state cannot use the point cache or the batched point reads.
func (o *StreamStreamJoinOp) processOne(side int, row []any, ts, offset int64, sink func(full []any) error) error {
	if side != LeftSide && side != RightSide {
		return fmt.Errorf("operators: bad join side %d", side)
	}
	// Compute this side's join key over a half-filled combined row.
	var combined []any
	if side == LeftSide {
		combined = o.combineRows(row, nil)
	} else {
		combined = o.combineRows(nil, row)
	}
	keyEval := o.leftKey
	if side == RightSide {
		keyEval = o.rightKey
	}
	kvVal, err := keyEval(combined)
	if err != nil {
		return fmt.Errorf("operators: join key: %w", err)
	}
	pk, err := encodeGroupKey(o.store.obj, []any{kvVal})
	if err != nil {
		return err
	}

	// Store this tuple on its own side.
	myKey := o.sideKey(byte(side), pk, ts, offset)
	val, err := o.store.obj.Encode(row)
	if err != nil {
		return err
	}
	o.store.raw.Put(myKey, val)

	// Probe the other side within the time window.
	other := 1 - side
	w := o.info.WindowMillis
	loTs := ts - w
	if loTs < 0 {
		loTs = 0 // negative would wrap in the unsigned key encoding
	}
	lo := o.sideKey(byte(other), pk, loTs, 0)
	hi := o.sideKey(byte(other), pk, ts+w+1, 0)
	for _, e := range o.store.raw.Range(lo, hi, 0) {
		otherRowAny, err := o.store.obj.Decode(e.Value)
		if err != nil {
			return err
		}
		otherRow := otherRowAny.([]any)
		var full []any
		if side == LeftSide {
			full = o.combineRows(row, otherRow)
		} else {
			full = o.combineRows(otherRow, row)
		}
		v, err := o.residual(full)
		if err != nil {
			return fmt.Errorf("operators: join condition: %w", err)
		}
		if b, ok := v.(bool); ok && b {
			if err := sink(full); err != nil {
				return err
			}
		}
	}

	// Purge this side's tuples that can no longer match: anything older
	// than the opposite watermark minus the window.
	o.watermark[side] = maxI64(o.watermark[side], ts)
	cutoff := o.watermark[other] - w
	if cutoff > 0 {
		start := o.sidePrefix(byte(side), pk)
		end := o.sideKey(byte(side), pk, cutoff, 0)
		for _, e := range o.store.raw.Range(start, end, 0) {
			o.store.raw.Delete(e.Key)
		}
	}
	return nil
}

func (o *StreamStreamJoinOp) combineRows(left, right []any) []any {
	out := make([]any, o.leftArity+o.rightArity)
	copy(out, left)
	copy(out[o.leftArity:], right)
	return out
}

func (o *StreamStreamJoinOp) sidePrefix(side byte, pk []byte) []byte {
	out := make([]byte, 0, 4+len(pk))
	out = append(out, 'j', side)
	var l [2]byte
	binary.BigEndian.PutUint16(l[:], uint16(len(pk)))
	out = append(out, l[:]...)
	return append(out, pk...)
}

func (o *StreamStreamJoinOp) sideKey(side byte, pk []byte, ts, offset int64) []byte {
	out := o.sidePrefix(side, pk)
	out = append(out, u64be(uint64(ts))...)
	return append(out, u64be(uint64(offset))...)
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

package operators

import (
	"fmt"
	"time"

	"samzasql/internal/kafka"
)

// This file implements the vectorized execution path: instead of routing
// one tuple per virtual dispatch (the tuple-at-a-time model of Figure 4),
// the container drains up to BatchSize messages from one topic-partition
// into a reusable columnar TupleBlock, the scan decodes the whole block in
// one call, and each operator's ProcessBlock runs the full block per
// dispatch, refining a selection vector instead of materializing
// intermediate tuples. Selected rows flush to the producer through one
// batched send. Allocation discipline is per-block, not per-tuple: column
// vectors and the output byte slab amortize across the rows of a block.

// TupleBlock is a batch of rows in columnar layout: the unit of work of the
// vectorized path. Column vectors and per-row attribute slices are arenas
// owned by whoever built the block and reused across batches; only the
// output byte slab is freshly allocated per block (the broker retains sent
// value slices).
type TupleBlock struct {
	// Stream and Partition locate the source; a polled batch always comes
	// from a single topic-partition, so they are block-level.
	Stream    string
	Partition int32
	// N is the number of rows decoded into the block. Column vectors and
	// per-row slices are index-aligned over [0, N).
	N int
	// Cols are the column vectors: Cols[c][r] holds column c of row r.
	Cols [][]any
	// Ts is the per-row event timestamp (Unix millis).
	Ts []int64
	// Keys holds each row's message key (nil for keyless messages).
	Keys [][]byte
	// Offsets holds each row's source offset.
	Offsets []int64
	// Raw holds each row's undecoded message value.
	Raw [][]byte
	// Sel is the selection vector: indexes of the live rows, ascending.
	// Filters refine it in place; downstream operators visit only selected
	// rows.
	Sel []int
	// Trace, when non-nil, collects per-stage spans for the block so the
	// sampled messages inside it can have the batch-level spans (with row
	// counts) replayed onto their traces after the block completes.
	Trace *BlockTrace
}

// Reset prepares the block for a new batch of n rows from one partition,
// reusing every arena. Column vectors are sized by the scan (arity is not
// known here); Raw/Keys/Ts/Offsets start empty for appending.
func (b *TupleBlock) Reset(stream string, partition int32, n int) {
	b.Stream = stream
	b.Partition = partition
	b.N = n
	b.Ts = b.Ts[:0]
	b.Keys = b.Keys[:0]
	b.Offsets = b.Offsets[:0]
	b.Raw = b.Raw[:0]
	b.Sel = b.Sel[:0]
	b.Trace = nil
}

// SelAll selects every row of the block (the state after a scan).
//
//samzasql:hotpath
func (b *TupleBlock) SelAll() {
	sel := b.Sel[:0]
	for r := 0; r < b.N; r++ {
		sel = append(sel, r)
	}
	b.Sel = sel
}

// sizeCols ensures the block has arity column vectors of length n, reusing
// capacity. One slice make per column per growth, amortized across blocks.
func (b *TupleBlock) sizeCols(arity, n int) {
	for len(b.Cols) < arity {
		b.Cols = append(b.Cols, nil)
	}
	b.Cols = b.Cols[:arity]
	for c := range b.Cols {
		if cap(b.Cols[c]) < n {
			b.Cols[c] = make([]any, n)
		}
		b.Cols[c] = b.Cols[c][:n]
	}
}

// gather copies row r's columns into the reusable row scratch, giving
// row-oriented evaluators (compiled expressions) a view of one block row.
//
//samzasql:hotpath
func (b *TupleBlock) gather(r int, row []any) []any {
	row = row[:len(b.Cols)]
	for c := range b.Cols {
		row[c] = b.Cols[c][r]
	}
	return row
}

// resetOut prepares an operator-owned output block for row-appending
// assembly: arity columns emptied, per-row vectors emptied, source location
// and trace log carried over from src. Stateful operators produce a
// variable number of output rows per block (joins drop non-matches, window
// emission depends on watermarks), so their output blocks grow by appendRow
// instead of being pre-sized.
func (b *TupleBlock) resetOut(src *TupleBlock, arity int) {
	b.Stream = src.Stream
	b.Partition = src.Partition
	for len(b.Cols) < arity {
		b.Cols = append(b.Cols, nil)
	}
	b.Cols = b.Cols[:arity]
	for c := range b.Cols {
		b.Cols[c] = b.Cols[c][:0]
	}
	b.Ts = b.Ts[:0]
	b.Keys = b.Keys[:0]
	b.Offsets = b.Offsets[:0]
	b.Raw = b.Raw[:0]
	b.Sel = b.Sel[:0]
	b.Trace = src.Trace
}

// appendRow adds one assembled row (len(row) must equal the block's arity).
// Values are copied element-wise, so callers may reuse row as scratch; key
// is retained.
//
//samzasql:hotpath
func (b *TupleBlock) appendRow(row []any, ts int64, key []byte, offset int64) {
	for c := range b.Cols {
		b.Cols[c] = append(b.Cols[c], row[c])
	}
	b.Ts = append(b.Ts, ts)
	b.Keys = append(b.Keys, key)
	b.Offsets = append(b.Offsets, offset)
}

// finishOut completes assembly: N covers the appended rows and all are
// selected. Raw stays empty — no operator downstream of a stateful stage
// reads raw source encodings.
func (b *TupleBlock) finishOut() {
	b.N = len(b.Ts)
	b.SelAll()
}

// BlockEmit passes a block to the next operator stage.
type BlockEmit func(b *TupleBlock) error

// BlockOperator is an operator with a vectorized path: ProcessBlock handles
// a whole block per call, emitting blocks downstream. Operators without it
// force the program back to the per-tuple router.
type BlockOperator interface {
	Operator
	ProcessBlock(side int, b *TupleBlock, emit BlockEmit) error
}

// BlockSpan is one completed batch-level stage span: the stage ran once for
// the whole block, covering Rows selected rows.
type BlockSpan struct {
	Stage   string
	StartNs int64
	EndNs   int64
	Rows    int64
}

// BlockTrace accumulates the block's stage spans for replay onto sampled
// messages. Owned by the program and reused across blocks.
type BlockTrace struct {
	Spans []BlockSpan
}

// Reset clears the span log for a new block.
func (t *BlockTrace) Reset() { t.Spans = t.Spans[:0] }

// BatchSender abstracts the batched side of the Samza message collector:
// one call appends a whole block's output messages. Message structs are
// copied by the broker, but key/value slices are retained — senders must
// hand over freshly allocated (per-block) payload slabs.
type BatchSender func(stream string, msgs []kafka.Message) error

// DecodeBlock decodes the block's raw messages into its column vectors —
// the AvroToArray step of Figure 4 amortized to one virtual dispatch and
// one metrics/latency observation per block. Event timestamps refresh from
// the declared timestamp column as in Decode. The block arrives with Raw,
// Keys, Ts and Offsets filled for N rows; all rows become selected.
//
//samzasql:hotpath
func (s *ScanOp) DecodeBlock(b *TupleBlock) error {
	start := time.Now()
	arity := len(s.Codec.Schema().Fields)
	b.sizeCols(arity, b.N)
	if cap(s.rowScratch) < arity {
		s.rowScratch = make([]any, arity)
	}
	row := s.rowScratch[:arity]
	var bytes int64
	for r := 0; r < b.N; r++ {
		bytes += int64(len(b.Raw[r]))
		row, err := s.Codec.DecodeRow(b.Raw[r], row)
		if err != nil {
			return fmt.Errorf("operators: scan decode (%s): %w", s.Stream, err)
		}
		for c := 0; c < arity; c++ {
			b.Cols[c][r] = row[c]
		}
		if s.TsIdx >= 0 && s.TsIdx < arity {
			if ts, ok := row[s.TsIdx].(int64); ok {
				b.Ts[r] = ts
			}
		}
	}
	if s.bytesIn != nil {
		s.bytesIn.Add(bytes)
		s.decodeLat.Observe(time.Since(start).Nanoseconds())
	}
	b.SelAll()
	return nil
}

// ProcessBlock implements BlockOperator for FilterOp: it evaluates the
// condition over each selected row and refines the selection vector in
// place — rows are never copied or compacted.
//
//samzasql:hotpath
func (f *FilterOp) ProcessBlock(_ int, b *TupleBlock, emit BlockEmit) error {
	if cap(f.rowScratch) < len(b.Cols) {
		f.rowScratch = make([]any, len(b.Cols))
	}
	row := f.rowScratch[:len(b.Cols)]
	sel := b.Sel[:0]
	for _, r := range b.Sel {
		row = b.gather(r, row)
		v, err := f.cond(row)
		if err != nil {
			return fmt.Errorf("operators: filter: %w", err)
		}
		if keep, ok := v.(bool); ok && keep {
			sel = append(sel, r)
		}
	}
	b.Sel = sel
	return emit(b)
}

// ProcessBlock implements BlockOperator for ProjectOp: it evaluates the
// output expressions over the selected rows into an operator-owned output
// block (compacting the selection), refreshing event timestamps from the
// output timestamp column when one is declared.
//
//samzasql:hotpath
func (p *ProjectOp) ProcessBlock(_ int, b *TupleBlock, emit BlockEmit) error {
	if p.Identity {
		// SELECT *: every expression is its own input column, so the block
		// passes through untouched — selection, columns and raw encodings
		// intact. The out counter still sees len(Sel) via WrapBlockEmit.
		// Only the timestamp refresh is applied, matching the scalar path
		// when the projection's timestamp column differs from the scan's.
		if p.TsIdx >= 0 && p.TsIdx < len(b.Cols) {
			for _, r := range b.Sel {
				if t, ok := b.Cols[p.TsIdx][r].(int64); ok {
					b.Ts[r] = t
				}
			}
		}
		return emit(b)
	}
	if cap(p.rowScratch) < len(b.Cols) {
		p.rowScratch = make([]any, len(b.Cols))
	}
	row := p.rowScratch[:len(b.Cols)]
	out := &p.outBlock
	n := len(b.Sel)
	out.Stream = b.Stream
	out.Partition = b.Partition
	out.N = n
	out.sizeCols(len(p.evals), n)
	out.Ts = out.Ts[:0]
	out.Keys = out.Keys[:0]
	out.Offsets = out.Offsets[:0]
	out.Raw = out.Raw[:0]
	out.Trace = b.Trace
	for k, r := range b.Sel {
		row = b.gather(r, row)
		ts := b.Ts[r]
		for c, ev := range p.evals {
			v, err := ev(row)
			if err != nil {
				return fmt.Errorf("operators: project: %w", err)
			}
			out.Cols[c][k] = v
		}
		if p.TsIdx >= 0 && p.TsIdx < len(p.evals) {
			if t, ok := out.Cols[p.TsIdx][k].(int64); ok {
				ts = t
			}
		}
		out.Ts = append(out.Ts, ts)
		out.Keys = append(out.Keys, b.Keys[r])
		out.Offsets = append(out.Offsets, b.Offsets[r])
	}
	out.SelAll()
	return emit(out)
}

// ProcessBlock implements BlockOperator for InsertOp: it encodes every
// selected row into one per-block byte slab (the ArrayToAvro step amortized
// across the block) and flushes the block's messages through one batched
// send when a BatchSender is bound, falling back to per-row sends
// otherwise. The slab is freshly allocated per block because the broker
// retains sent value slices; the message and offset scratches are reused.
//
//samzasql:hotpath
func (i *InsertOp) ProcessBlock(_ int, b *TupleBlock, emit BlockEmit) error {
	if cap(i.rowScratch) < len(b.Cols) {
		i.rowScratch = make([]any, len(b.Cols))
	}
	row := i.rowScratch[:len(b.Cols)]
	slab := make([]byte, 0, i.slabHint)
	offs := i.offScratch[:0]
	var err error
	for _, r := range b.Sel {
		row = b.gather(r, row)
		start := len(slab)
		slab, err = i.Codec.AppendEncodeRow(slab, row)
		if err != nil {
			return fmt.Errorf("operators: insert encode (%s): %w", i.Target, err)
		}
		offs = append(offs, start, len(slab))
	}
	i.offScratch = offs
	if len(slab) > i.slabHint {
		i.slabHint = len(slab)
	}
	if i.bytesOut != nil {
		i.bytesOut.Add(int64(len(slab)))
	}
	if i.SendBatch != nil {
		msgs := i.msgScratch[:0]
		for k, r := range b.Sel {
			partition := b.Partition
			var key []byte
			if i.KeyByTupleKey && len(b.Keys[r]) > 0 {
				key = b.Keys[r]
				partition = -1
			}
			msgs = append(msgs, kafka.Message{
				Partition: partition,
				Key:       key,
				Value:     slab[offs[2*k]:offs[2*k+1]:offs[2*k+1]],
				Timestamp: b.Ts[r],
			})
		}
		i.msgScratch = msgs
		if len(msgs) > 0 {
			if err := i.SendBatch(i.Target, msgs); err != nil {
				return err
			}
		}
	} else {
		for k, r := range b.Sel {
			partition := b.Partition
			var key []byte
			if i.KeyByTupleKey && len(b.Keys[r]) > 0 {
				key = b.Keys[r]
				partition = -1
			}
			value := slab[offs[2*k]:offs[2*k+1]:offs[2*k+1]]
			if err := i.Send(i.Target, partition, key, value, b.Ts[r]); err != nil {
				return err
			}
		}
	}
	if emit != nil {
		return emit(b)
	}
	return nil
}

// BlockOp returns the wrapped operator's vectorized path, or nil when it
// has none (which forces the program back to per-tuple routing).
func (i *Instrumented) BlockOp() (BlockOperator, bool) {
	bop, ok := i.Op.(BlockOperator)
	return bop, ok
}

// ProcessBlock implements BlockOperator, timing the wrapped block call —
// one latency observation per block instead of per tuple. When the block
// carries a trace log, the stage's span (with its input row count) is
// appended for replay onto the block's sampled messages.
//
//samzasql:hotpath
func (i *Instrumented) ProcessBlock(side int, b *TupleBlock, emit BlockEmit) error {
	bop, ok := i.Op.(BlockOperator)
	if !ok {
		return fmt.Errorf("operators: %s has no block path", i.name)
	}
	if i.lat == nil && b.Trace == nil {
		return bop.ProcessBlock(side, b, emit)
	}
	rows := int64(len(b.Sel))
	tr := b.Trace
	start := time.Now()
	err := bop.ProcessBlock(side, b, emit)
	d := time.Since(start).Nanoseconds()
	if i.lat != nil {
		i.lat.Observe(d)
	}
	if tr != nil {
		startNs := start.UnixNano()
		tr.Spans = append(tr.Spans, BlockSpan{Stage: i.stage, StartNs: startNs, EndNs: startNs + d, Rows: rows})
	}
	return err
}

// WrapBlockEmit returns a block emit that counts this operator's output
// rows (the emitted block's selected rows) before passing it downstream,
// keeping the "operator.<name>.out" counters identical to the scalar
// path's.
func (i *Instrumented) WrapBlockEmit(downstream BlockEmit) BlockEmit {
	return func(b *TupleBlock) error {
		if i.out != nil {
			i.out.Add(int64(len(b.Sel)))
		}
		return downstream(b)
	}
}

// Package operators implements SamzaSQL's physical operator layer (§4):
// scan (AvroToArray), filter, project, streaming aggregate (HOP/TUMBLE),
// the sliding-window operator of Algorithm 1, stream-to-stream and
// stream-to-relation joins, and stream insert (ArrayToAvro) — plus the
// message router that flows tuples through them inside a Samza task.
package operators

import (
	"samzasql/internal/kv"
	"samzasql/internal/metrics"
	"samzasql/internal/trace"
)

// Tuple is one row in flight between operators: the tuple-as-array
// representation of Figure 4.
type Tuple struct {
	// Row holds the column values.
	Row []any
	// Ts is the event timestamp in Unix millis (from the stream's
	// timestamp column when it has one, else the message timestamp).
	Ts int64
	// Key is the output partitioning key; nil inherits Partition.
	Key []byte
	// Stream, Partition and Offset locate the source message.
	Stream    string
	Partition int32
	Offset    int64
}

// Emit passes a tuple to the next operator.
type Emit func(t *Tuple) error

// OpContext gives operators access to task-local state and metrics.
type OpContext struct {
	// Store resolves a named task-local store.
	Store func(name string) kv.Store
	// Partition is the task's input partition.
	Partition int32
	// Metrics is the container registry.
	Metrics *metrics.Registry
	// Trace is the task's tracing cursor; may be nil (bounded execution,
	// tests). Hot-path uses must branch on Trace.Sampled() — nil-safe —
	// before any other call (enforced by the samzasql-vet trace-guard rule).
	Trace *trace.Active
}

// Operator is one stage of the router. Side distinguishes join inputs
// (0 = left/only, 1 = right); linear operators ignore it.
type Operator interface {
	// Open is called once before any tuple, after state restore.
	Open(ctx *OpContext) error
	// Process handles one tuple, emitting zero or more results.
	Process(side int, t *Tuple, emit Emit) error
}

// Router is the message router of §4.2: it maps each input stream to an
// entry chain and flows tuples through the operator DAG.
type Router struct {
	// entries maps source stream name to its processing function.
	entries map[string]func(t *Tuple) error
	// operators in Open order (sources first).
	ops []Operator
}

// NewRouter returns an empty router.
func NewRouter() *Router {
	return &Router{entries: map[string]func(t *Tuple) error{}}
}

// AddEntry binds a source stream to its entry function.
func (r *Router) AddEntry(stream string, fn func(t *Tuple) error) {
	r.entries[stream] = fn
}

// Register records an operator for lifecycle management.
func (r *Router) Register(op Operator) {
	r.ops = append(r.ops, op)
}

// Open opens every registered operator.
func (r *Router) Open(ctx *OpContext) error {
	for _, op := range r.ops {
		if err := op.Open(ctx); err != nil {
			return err
		}
	}
	return nil
}

// Route dispatches a tuple from the named source stream.
func (r *Router) Route(stream string, t *Tuple) error {
	fn, ok := r.entries[stream]
	if !ok {
		return nil // not an input of this query
	}
	return fn(t)
}

// Streams lists the router's input streams.
func (r *Router) Streams() []string {
	out := make([]string, 0, len(r.entries))
	for s := range r.entries {
		out = append(out, s)
	}
	return out
}

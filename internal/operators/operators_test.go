package operators

import (
	"testing"

	"samzasql/internal/kv"
	"samzasql/internal/metrics"
	"samzasql/internal/sql/expr"
	"samzasql/internal/sql/types"
	"samzasql/internal/sql/validate"
)

func testCtx() *OpContext {
	stores := map[string]kv.Store{}
	return &OpContext{
		Store: func(name string) kv.Store {
			s, ok := stores[name]
			if !ok {
				s = kv.NewStore()
				stores[name] = s
			}
			return s
		},
		Metrics: metrics.NewRegistry(),
	}
}

func collect(out *[]*Tuple) Emit {
	return func(t *Tuple) error {
		*out = append(*out, t)
		return nil
	}
}

func tup(offset int64, ts int64, row ...any) *Tuple {
	return &Tuple{Row: row, Ts: ts, Stream: "in", Partition: 0, Offset: offset}
}

func TestFilterOp(t *testing.T) {
	cond := &expr.Binary{Op: expr.Gt,
		L: &expr.ColRef{Idx: 0, Name: "units", T: types.Bigint},
		R: &expr.Const{V: int64(10), T: types.Bigint},
		T: types.Boolean}
	op, err := NewFilterOp(cond)
	if err != nil {
		t.Fatal(err)
	}
	var out []*Tuple
	emit := collect(&out)
	for i, u := range []int64{5, 15, 10, 25} {
		if err := op.Process(0, tup(int64(i), 0, u), emit); err != nil {
			t.Fatal(err)
		}
	}
	if len(out) != 2 || out[0].Row[0].(int64) != 15 || out[1].Row[0].(int64) != 25 {
		t.Fatalf("filtered %v", out)
	}
}

func TestProjectOpRefreshesTimestamp(t *testing.T) {
	op, err := NewProjectOp([]expr.Expr{
		&expr.Binary{Op: expr.Add,
			L: &expr.ColRef{Idx: 0, Name: "ts", T: types.Timestamp},
			R: &expr.Const{V: int64(1000), T: types.Interval},
			T: types.Timestamp},
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	var out []*Tuple
	if err := op.Process(0, tup(0, 500, int64(500)), collect(&out)); err != nil {
		t.Fatal(err)
	}
	if out[0].Ts != 1500 {
		t.Fatalf("projected ts %d, want 1500", out[0].Ts)
	}
}

func boundAggs(fns ...string) []*validate.BoundAgg {
	var out []*validate.BoundAgg
	for _, fn := range fns {
		ag := &validate.BoundAgg{Fn: fn, T: types.Bigint}
		if fn == "SUM" || fn == "MIN" || fn == "MAX" || fn == "AVG" {
			ag.Arg = &expr.ColRef{Idx: 1, Name: "units", T: types.Bigint}
			if fn == "AVG" {
				ag.T = types.Double
			}
		}
		if fn == "START" || fn == "END" {
			ag.T = types.Timestamp
			ag.Arg = &expr.ColRef{Idx: 0, Name: "ts", T: types.Timestamp}
		}
		out = append(out, ag)
	}
	return out
}

func TestUnwindowedAggregateEarlyResults(t *testing.T) {
	keys := []expr.Expr{&expr.ColRef{Idx: 2, Name: "pid", T: types.Bigint}}
	op, err := NewStreamAggregateOp(keys, nil, boundAggs("COUNT", "SUM"))
	if err != nil {
		t.Fatal(err)
	}
	if err := op.Open(testCtx()); err != nil {
		t.Fatal(err)
	}
	var out []*Tuple
	emit := collect(&out)
	// Rows: (ts, units, pid)
	inputs := []*Tuple{
		tup(0, 1, int64(1), int64(10), int64(7)),
		tup(1, 2, int64(2), int64(5), int64(7)),
		tup(2, 3, int64(3), int64(1), int64(8)),
	}
	for _, in := range inputs {
		if err := op.Process(0, in, emit); err != nil {
			t.Fatal(err)
		}
	}
	// Early-results: one output per input.
	if len(out) != 3 {
		t.Fatalf("%d outputs", len(out))
	}
	// Second output: group 7 has count 2, sum 15.
	r := out[1].Row
	if r[0].(int64) != 7 || r[1].(int64) != 2 || r[2].(int64) != 15 {
		t.Fatalf("partial row %v", r)
	}
}

func TestWindowedAggregateEmitsOnWatermark(t *testing.T) {
	win := &validate.GroupWindow{
		Kind:         validate.WindowTumble,
		Ts:           &expr.ColRef{Idx: 0, Name: "ts", T: types.Timestamp},
		EmitMillis:   1000,
		RetainMillis: 1000,
	}
	op, err := NewStreamAggregateOp(nil, win, boundAggs("START", "COUNT"))
	if err != nil {
		t.Fatal(err)
	}
	if err := op.Open(testCtx()); err != nil {
		t.Fatal(err)
	}
	var out []*Tuple
	emit := collect(&out)
	// Three tuples in window (0,1000]; then one at 2500 closing it.
	for i, ts := range []int64{100, 400, 900} {
		if err := op.Process(0, tup(int64(i), ts, ts), emit); err != nil {
			t.Fatal(err)
		}
	}
	if len(out) != 0 {
		t.Fatalf("window emitted before close: %v", out)
	}
	if err := op.Process(0, tup(3, 2500, int64(2500)), emit); err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("%d windows emitted", len(out))
	}
	r := out[0].Row
	if r[0].(int64) != 0 || r[1].(int64) != 3 {
		t.Fatalf("window row %v (want START=0 COUNT=3)", r)
	}
}

func TestWindowedAggregateDropsLateTuples(t *testing.T) {
	win := &validate.GroupWindow{
		Kind:         validate.WindowTumble,
		Ts:           &expr.ColRef{Idx: 0, Name: "ts", T: types.Timestamp},
		EmitMillis:   1000,
		RetainMillis: 1000,
	}
	op, err := NewStreamAggregateOp(nil, win, boundAggs("COUNT"))
	if err != nil {
		t.Fatal(err)
	}
	if err := op.Open(testCtx()); err != nil {
		t.Fatal(err)
	}
	var out []*Tuple
	emit := collect(&out)
	if err := op.Process(0, tup(0, 500, int64(500)), emit); err != nil {
		t.Fatal(err)
	}
	if err := op.Process(0, tup(1, 2500, int64(2500)), emit); err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Row[0].(int64) != 1 {
		t.Fatalf("first window: %v", out)
	}
	// Late arrival for the already-closed first window: discarded (§3).
	if err := op.Process(0, tup(2, 600, int64(600)), emit); err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("late tuple re-emitted a window: %v", out)
	}
}

func TestAggregateReplayIsExactlyOnce(t *testing.T) {
	keys := []expr.Expr{&expr.ColRef{Idx: 2, Name: "pid", T: types.Bigint}}
	op, err := NewStreamAggregateOp(keys, nil, boundAggs("COUNT"))
	if err != nil {
		t.Fatal(err)
	}
	if err := op.Open(testCtx()); err != nil {
		t.Fatal(err)
	}
	var out []*Tuple
	emit := collect(&out)
	in := tup(5, 1, int64(1), int64(10), int64(7))
	if err := op.Process(0, in, emit); err != nil {
		t.Fatal(err)
	}
	// Re-delivery of the same offset must not change state or emit.
	if err := op.Process(0, in, emit); err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("replayed tuple emitted again: %d outputs", len(out))
	}
	if out[0].Row[1].(int64) != 1 {
		t.Fatalf("replayed tuple double-counted: %v", out[0].Row)
	}
}

func slidingSpec(fn string, frameMillis int64, rows int64, unbounded bool) *validate.BoundAnalytic {
	spec := &validate.BoundAnalytic{
		Fn:          fn,
		Arg:         &expr.ColRef{Idx: 1, Name: "units", T: types.Bigint},
		PartitionBy: []expr.Expr{&expr.ColRef{Idx: 2, Name: "pid", T: types.Bigint}},
		OrderBy:     &expr.ColRef{Idx: 0, Name: "ts", T: types.Timestamp},
		FrameMillis: frameMillis,
		FrameRows:   rows,
		IsRows:      rows > 0,
		Unbounded:   unbounded,
		T:           types.Bigint,
	}
	if fn == "COUNT" {
		spec.Arg = nil
	}
	return spec
}

func TestSlidingWindowRangeSum(t *testing.T) {
	op, err := NewSlidingWindowOp([]*validate.BoundAnalytic{slidingSpec("SUM", 1000, 0, false)})
	if err != nil {
		t.Fatal(err)
	}
	if err := op.Open(testCtx()); err != nil {
		t.Fatal(err)
	}
	var out []*Tuple
	emit := collect(&out)
	// Partition 7: ts/unit pairs.
	inputs := []struct{ ts, units int64 }{
		{100, 10}, {500, 20}, {900, 5}, {1600, 7}, {3000, 1},
	}
	want := []int64{10, 30, 35, 12, 1} // sums over [ts-1000, ts]
	for i, in := range inputs {
		if err := op.Process(0, tup(int64(i), in.ts, in.ts, in.units, int64(7)), emit); err != nil {
			t.Fatal(err)
		}
	}
	if len(out) != 5 {
		t.Fatalf("%d outputs", len(out))
	}
	for i, o := range out {
		got := o.Row[3].(int64)
		if got != want[i] {
			t.Fatalf("row %d: window sum %d, want %d", i, got, want[i])
		}
	}
}

func TestSlidingWindowPartitionsIsolated(t *testing.T) {
	op, err := NewSlidingWindowOp([]*validate.BoundAnalytic{slidingSpec("SUM", 10000, 0, false)})
	if err != nil {
		t.Fatal(err)
	}
	if err := op.Open(testCtx()); err != nil {
		t.Fatal(err)
	}
	var out []*Tuple
	emit := collect(&out)
	if err := op.Process(0, tup(0, 100, int64(100), int64(10), int64(1)), emit); err != nil {
		t.Fatal(err)
	}
	if err := op.Process(0, tup(1, 200, int64(200), int64(99), int64(2)), emit); err != nil {
		t.Fatal(err)
	}
	if err := op.Process(0, tup(2, 300, int64(300), int64(5), int64(1)), emit); err != nil {
		t.Fatal(err)
	}
	if out[2].Row[3].(int64) != 15 {
		t.Fatalf("partition 1 sum %v leaked partition 2's values", out[2].Row[3])
	}
}

func TestSlidingWindowRowsFrame(t *testing.T) {
	op, err := NewSlidingWindowOp([]*validate.BoundAnalytic{slidingSpec("SUM", 0, 2, false)})
	if err != nil {
		t.Fatal(err)
	}
	if err := op.Open(testCtx()); err != nil {
		t.Fatal(err)
	}
	var out []*Tuple
	emit := collect(&out)
	units := []int64{1, 2, 4, 8, 16}
	want := []int64{1, 3, 7, 14, 28} // current + 2 preceding
	for i, u := range units {
		if err := op.Process(0, tup(int64(i), int64(i*100), int64(i*100), u, int64(7)), emit); err != nil {
			t.Fatal(err)
		}
	}
	for i := range units {
		if got := out[i].Row[3].(int64); got != want[i] {
			t.Fatalf("row %d: %d, want %d", i, got, want[i])
		}
	}
}

func TestSlidingWindowMinMaxRebuild(t *testing.T) {
	op, err := NewSlidingWindowOp([]*validate.BoundAnalytic{slidingSpec("MAX", 1000, 0, false)})
	if err != nil {
		t.Fatal(err)
	}
	if err := op.Open(testCtx()); err != nil {
		t.Fatal(err)
	}
	var out []*Tuple
	emit := collect(&out)
	inputs := []struct{ ts, units int64 }{
		{100, 50}, {500, 20}, {1400, 7}, // the 50 expires before ts=1400
	}
	want := []int64{50, 50, 20}
	for i, in := range inputs {
		if err := op.Process(0, tup(int64(i), in.ts, in.ts, in.units, int64(7)), emit); err != nil {
			t.Fatal(err)
		}
	}
	for i := range inputs {
		if got := out[i].Row[3].(int64); got != want[i] {
			t.Fatalf("row %d: MAX %d, want %d", i, got, want[i])
		}
	}
}

func TestSlidingWindowUnbounded(t *testing.T) {
	op, err := NewSlidingWindowOp([]*validate.BoundAnalytic{slidingSpec("COUNT", 0, 0, true)})
	if err != nil {
		t.Fatal(err)
	}
	if err := op.Open(testCtx()); err != nil {
		t.Fatal(err)
	}
	var out []*Tuple
	emit := collect(&out)
	for i := 0; i < 5; i++ {
		if err := op.Process(0, tup(int64(i), int64(i), int64(i), int64(1), int64(7)), emit); err != nil {
			t.Fatal(err)
		}
	}
	if got := out[4].Row[3].(int64); got != 5 {
		t.Fatalf("unbounded count %d, want 5", got)
	}
}

func TestSlidingWindowStateSurvivesRestore(t *testing.T) {
	// Same store instance across two operator incarnations simulates
	// changelog-restored state plus message replay.
	ctx := testCtx()
	spec := []*validate.BoundAnalytic{slidingSpec("SUM", 10000, 0, false)}
	op1, err := NewSlidingWindowOp(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := op1.Open(ctx); err != nil {
		t.Fatal(err)
	}
	var out []*Tuple
	emit := collect(&out)
	if err := op1.Process(0, tup(0, 100, int64(100), int64(10), int64(7)), emit); err != nil {
		t.Fatal(err)
	}
	if err := op1.Process(0, tup(1, 200, int64(200), int64(20), int64(7)), emit); err != nil {
		t.Fatal(err)
	}
	// "Crash", restart with restored store; offset 1 replays, then 2 new.
	op2, err := NewSlidingWindowOp(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := op2.Open(ctx); err != nil {
		t.Fatal(err)
	}
	if err := op2.Process(0, tup(1, 200, int64(200), int64(20), int64(7)), emit); err != nil {
		t.Fatal(err)
	}
	if err := op2.Process(0, tup(2, 300, int64(300), int64(5), int64(7)), emit); err != nil {
		t.Fatal(err)
	}
	// Replayed offset 1 emits nothing; final sum = 10+20+5.
	if len(out) != 3 {
		t.Fatalf("%d outputs (replay not deduped)", len(out))
	}
	if got := out[2].Row[3].(int64); got != 35 {
		t.Fatalf("post-restore sum %d, want 35", got)
	}
}

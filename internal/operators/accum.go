package operators

import (
	"fmt"

	"samzasql/internal/sql/expr"
	"samzasql/internal/sql/udf"
	"samzasql/internal/sql/validate"
)

// Accumulator is one aggregate function's running state: the builtins
// (COUNT/SUM/MIN/MAX/AVG/START/END) and user-defined aggregates implement
// it. Remove supports the sliding window's purge phase (Algorithm 1) for
// invertible aggregates; non-invertible ones (MIN/MAX, non-invertible
// UDAFs) are rebuilt by rescanning the retained window.
type Accumulator interface {
	// Add folds one value in; v may be nil (ignored by builtins except
	// COUNT(*), whose caller passes a non-nil marker).
	Add(v any) error
	// Remove unfolds one value (only called when Invertible is true).
	Remove(v any) error
	// Invertible reports whether Remove fully maintains the aggregate.
	Invertible() bool
	// Value returns the aggregate's current SQL value.
	Value() any
	// SetWindow supplies window bounds (used by START/END; no-op others).
	SetWindow(start, end int64)
	// Snapshot flattens the state for changelog-backed persistence.
	Snapshot() []any
	// Restore rebuilds the state from a Snapshot row.
	Restore(row []any) error
}

// NewAccumulatorFor builds the accumulator for an aggregate function name:
// a builtin, or a registered user-defined aggregate (§7 future work 4).
func NewAccumulatorFor(fn string) (Accumulator, error) {
	ctor, err := AccumCtorFor(fn)
	if err != nil {
		return nil, err
	}
	return ctor(), nil
}

// AccumCtorFor resolves fn's accumulator constructor once — builtins
// directly, UDAFs through a single registry lookup — so per-group state
// construction on the hot path stays off the shared registry lock.
func AccumCtorFor(fn string) (func() Accumulator, error) {
	switch fn {
	case "COUNT", "SUM", "MIN", "MAX", "AVG", "START", "END":
		return func() Accumulator { return NewAccum(fn) }, nil
	}
	if def, ok := udf.LookupAggregate(fn); ok {
		return func() Accumulator { return &udafAccum{state: def.New()} }, nil
	}
	return nil, fmt.Errorf("operators: unknown aggregate %q", fn)
}

// AccumCtors resolves every bound aggregate's constructor, index-aligned
// with aggs; pair with CompileAggArgs in operator constructors.
func AccumCtors(aggs []*validate.BoundAgg) ([]func() Accumulator, error) {
	ctors := make([]func() Accumulator, 0, len(aggs))
	for _, ag := range aggs {
		ctor, err := AccumCtorFor(ag.Fn)
		if err != nil {
			return nil, err
		}
		ctors = append(ctors, ctor)
	}
	return ctors, nil
}

// Accum is the builtin accumulator.
type Accum struct {
	Fn      string
	Count   int64 // non-null inputs (or all rows for COUNT(*))
	SumI    int64
	SumF    float64
	IsFloat bool
	Min     any
	Max     any
	// Start/End hold window bounds for the START/END aggregates (§3.6).
	Start int64
	End   int64
}

// NewAccum builds the builtin accumulator for fn.
func NewAccum(fn string) *Accum { return &Accum{Fn: fn} }

// Add implements Accumulator.
func (a *Accum) Add(v any) error {
	if v == nil {
		return nil
	}
	if a.Fn == "COUNT" {
		a.Count++
		return nil
	}
	a.Count++
	switch t := v.(type) {
	case int64:
		a.SumI += t
	case float64:
		a.SumF += t
		a.IsFloat = true
	case bool, string:
		// MIN/MAX over non-numerics: no sum.
	default:
		return fmt.Errorf("operators: aggregate over %T", v)
	}
	if a.Min == nil {
		a.Min = v
		a.Max = v
		return nil
	}
	if c, err := expr.CompareValues(v, a.Min); err == nil && c < 0 {
		a.Min = v
	}
	if c, err := expr.CompareValues(v, a.Max); err == nil && c > 0 {
		a.Max = v
	}
	return nil
}

// Remove implements Accumulator (invertible aggregates only; Min/Max go
// stale and are rebuilt by the caller when it relies on them).
func (a *Accum) Remove(v any) error {
	if v == nil {
		return nil
	}
	a.Count--
	if a.Fn == "COUNT" {
		return nil
	}
	switch t := v.(type) {
	case int64:
		a.SumI -= t
	case float64:
		a.SumF -= t
	}
	return nil
}

// Invertible implements Accumulator.
func (a *Accum) Invertible() bool {
	switch a.Fn {
	case "COUNT", "SUM", "AVG", "START", "END":
		return true
	default:
		return false
	}
}

// SetWindow implements Accumulator.
func (a *Accum) SetWindow(start, end int64) {
	a.Start, a.End = start, end
}

// Value implements Accumulator.
func (a *Accum) Value() any {
	switch a.Fn {
	case "COUNT":
		return a.Count
	case "SUM":
		if a.Count == 0 {
			return nil
		}
		if a.IsFloat {
			return a.SumF + float64(a.SumI)
		}
		return a.SumI
	case "AVG":
		if a.Count == 0 {
			return nil
		}
		return (a.SumF + float64(a.SumI)) / float64(a.Count)
	case "MIN":
		return a.Min
	case "MAX":
		return a.Max
	case "START":
		return a.Start
	case "END":
		return a.End
	default:
		return nil
	}
}

// Snapshot implements Accumulator; rows round-trip through the object serde
// used for state (the paper prototype's Kryo analog).
func (a *Accum) Snapshot() []any {
	return []any{a.Fn, a.Count, a.SumI, a.SumF, a.IsFloat, a.Min, a.Max, a.Start, a.End}
}

// Restore implements Accumulator.
func (a *Accum) Restore(row []any) error {
	if len(row) != 9 {
		return fmt.Errorf("operators: accumulator snapshot has %d fields", len(row))
	}
	fn, ok := row[0].(string)
	if !ok {
		return fmt.Errorf("operators: accumulator snapshot fn is %T", row[0])
	}
	a.Fn = fn
	a.Count, _ = row[1].(int64)
	a.SumI, _ = row[2].(int64)
	a.SumF, _ = row[3].(float64)
	a.IsFloat, _ = row[4].(bool)
	a.Min = row[5]
	a.Max = row[6]
	a.Start, _ = row[7].(int64)
	a.End, _ = row[8].(int64)
	return nil
}

// RestoreAccum rebuilds a builtin accumulator from Snapshot output.
func RestoreAccum(row []any) (*Accum, error) {
	a := &Accum{}
	if err := a.Restore(row); err != nil {
		return nil, err
	}
	return a, nil
}

// udafAccum adapts a user-defined aggregate to the Accumulator interface.
type udafAccum struct {
	state udf.AggregateState
}

func (u *udafAccum) Add(v any) error         { return u.state.Add(v) }
func (u *udafAccum) Remove(v any) error      { return u.state.Remove(v) }
func (u *udafAccum) Invertible() bool        { return u.state.Invertible() }
func (u *udafAccum) Value() any              { return u.state.Value() }
func (u *udafAccum) SetWindow(_, _ int64)    {}
func (u *udafAccum) Snapshot() []any         { return u.state.Snapshot() }
func (u *udafAccum) Restore(row []any) error { return u.state.Restore(row) }

// AccumSet is the per-group collection of accumulators.
type AccumSet struct {
	specs  []*validate.BoundAgg
	Accums []Accumulator
	// argEvals[i] computes the i-th aggregate's input from a tuple row
	// (nil for COUNT(*), START, END).
	argEvals []expr.Evaluator
}

// CompileAggArgs compiles the argument evaluators for the bound aggregates,
// index-aligned with aggs (nil for COUNT(*), START, END). Evaluators are
// stateless and safe to share across every AccumSet built for the same plan.
func CompileAggArgs(aggs []*validate.BoundAgg) ([]expr.Evaluator, error) {
	evals := make([]expr.Evaluator, 0, len(aggs))
	for _, ag := range aggs {
		if ag.Arg != nil && ag.Fn != "START" && ag.Fn != "END" {
			ev, err := expr.Compile(ag.Arg)
			if err != nil {
				return nil, err
			}
			evals = append(evals, ev)
		} else {
			evals = append(evals, nil)
		}
	}
	return evals, nil
}

// NewAccumSet builds accumulators and compiled argument evaluators for the
// bound aggregates. Per-message callers must resolve once with CompileAggArgs
// and AccumCtors and build sets with NewAccumSetWith — this convenience form
// recompiles the argument expressions and re-resolves constructors per call.
func NewAccumSet(aggs []*validate.BoundAgg) (*AccumSet, error) {
	evals, err := CompileAggArgs(aggs)
	if err != nil {
		return nil, err
	}
	ctors, err := AccumCtors(aggs)
	if err != nil {
		return nil, err
	}
	return NewAccumSetWith(aggs, evals, ctors), nil
}

// NewAccumSetWith builds fresh accumulators around pre-compiled argument
// evaluators and pre-resolved constructors, keeping the per-group set
// construction the state decode path performs for every store entry free of
// expression recompilation and registry lookups.
func NewAccumSetWith(aggs []*validate.BoundAgg, argEvals []expr.Evaluator, ctors []func() Accumulator) *AccumSet {
	s := &AccumSet{specs: aggs, argEvals: argEvals}
	for _, ctor := range ctors {
		s.Accums = append(s.Accums, ctor())
	}
	return s
}

// ArgEvals exposes the compiled argument evaluators (index-aligned with
// Accums; nil entries mean "count the row" or window-bound aggregates).
func (s *AccumSet) ArgEvals() []expr.Evaluator { return s.argEvals }

// Add folds a tuple row into every accumulator.
func (s *AccumSet) Add(row []any) error {
	for i, a := range s.Accums {
		fn := s.specs[i].Fn
		if fn == "START" || fn == "END" {
			continue
		}
		var v any = int64(1) // COUNT(*) marker
		if s.argEvals[i] != nil {
			var err error
			v, err = s.argEvals[i](row)
			if err != nil {
				return err
			}
		}
		if err := a.Add(v); err != nil {
			return err
		}
	}
	return nil
}

// SetWindow fills START/END values.
func (s *AccumSet) SetWindow(start, end int64) {
	for _, a := range s.Accums {
		a.SetWindow(start, end)
	}
}

// Values returns the aggregate output slots.
func (s *AccumSet) Values() []any {
	out := make([]any, len(s.Accums))
	for i, a := range s.Accums {
		out[i] = a.Value()
	}
	return out
}

// Snapshot nests each accumulator's snapshot into one row.
func (s *AccumSet) Snapshot() []any {
	out := make([]any, len(s.Accums))
	for i, a := range s.Accums {
		out[i] = a.Snapshot()
	}
	return out
}

// RestoreInto refills the accumulators from a Snapshot row.
func (s *AccumSet) RestoreInto(row []any) error {
	if len(row) != len(s.Accums) {
		return fmt.Errorf("operators: accumulator set snapshot has %d entries, want %d",
			len(row), len(s.Accums))
	}
	for i := range s.Accums {
		snap, ok := row[i].([]any)
		if !ok {
			return fmt.Errorf("operators: accumulator snapshot entry %d is %T", i, row[i])
		}
		if err := s.Accums[i].Restore(snap); err != nil {
			return err
		}
	}
	return nil
}

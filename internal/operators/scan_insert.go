package operators

import (
	"fmt"

	"samzasql/internal/avro"
)

// ScanOp decodes an incoming Avro message into the tuple-as-array
// representation — the AvroToArray step of Figure 4 that every SamzaSQL
// message pays and native jobs avoid (§5.1). When the source declares a
// timestamp column the event time is read from it.
type ScanOp struct {
	Codec *avro.Codec
	// TsIdx is the timestamp column index, or -1 to use the message time.
	TsIdx int
	// Stream is the source topic name (used for routing labels).
	Stream string
}

// Open implements Operator.
func (*ScanOp) Open(*OpContext) error { return nil }

// Process is not used for ScanOp; scans convert raw messages via Decode.
func (s *ScanOp) Process(_ int, t *Tuple, emit Emit) error { return emit(t) }

// Decode converts one raw message into a tuple.
func (s *ScanOp) Decode(value []byte, key []byte, msgTs int64, partition int32, offset int64) (*Tuple, error) {
	row, err := s.Codec.DecodeRow(value, nil)
	if err != nil {
		return nil, fmt.Errorf("operators: scan decode (%s): %w", s.Stream, err)
	}
	t := &Tuple{
		Row: row, Ts: msgTs, Key: key,
		Stream: s.Stream, Partition: partition, Offset: offset,
	}
	if s.TsIdx >= 0 && s.TsIdx < len(row) {
		if ts, ok := row[s.TsIdx].(int64); ok {
			t.Ts = ts
		}
	}
	return t, nil
}

// Sender abstracts the Samza message collector for the insert operator.
type Sender func(stream string, partition int32, key, value []byte, ts int64) error

// InsertOp encodes result rows back to Avro (the ArrayToAvro step of Figure
// 4) and sends them to the output stream. Output preserves the source
// partition unless the tuple carries an explicit key, in which case the
// broker partitions by key.
type InsertOp struct {
	Codec  *avro.Codec
	Target string
	Send   Sender
	// KeyByTupleKey selects key-based partitioning when tuples carry keys.
	KeyByTupleKey bool
}

// Open implements Operator.
func (*InsertOp) Open(*OpContext) error { return nil }

// Process implements Operator.
func (i *InsertOp) Process(_ int, t *Tuple, emit Emit) error {
	value, err := i.Codec.EncodeRow(t.Row)
	if err != nil {
		return fmt.Errorf("operators: insert encode (%s): %w", i.Target, err)
	}
	partition := t.Partition
	var key []byte
	if i.KeyByTupleKey && len(t.Key) > 0 {
		key = t.Key
		partition = -1
	}
	if err := i.Send(i.Target, partition, key, value, t.Ts); err != nil {
		return err
	}
	if emit != nil {
		return emit(t)
	}
	return nil
}

package operators

import (
	"fmt"
	"time"

	"samzasql/internal/avro"
	"samzasql/internal/kafka"
	"samzasql/internal/metrics"
)

// Serde byte counters shared by every decode/encode stage of a task: bytes
// read off the wire into tuples and bytes written back out. Operators bind
// them once at Open.
const (
	SerdeBytesInMetric  = "serde.bytes-in"
	SerdeBytesOutMetric = "serde.bytes-out"
)

// ScanOp decodes an incoming Avro message into the tuple-as-array
// representation — the AvroToArray step of Figure 4 that every SamzaSQL
// message pays and native jobs avoid (§5.1). When the source declares a
// timestamp column the event time is read from it.
type ScanOp struct {
	Codec *avro.Codec
	// TsIdx is the timestamp column index, or -1 to use the message time.
	TsIdx int
	// Stream is the source topic name (used for routing labels).
	Stream string

	// Observability handles, bound at Open (nil when the op runs outside a
	// metrics-carrying context, e.g. direct Decode calls in tests).
	bytesIn   *metrics.Counter
	decodeLat *metrics.Histogram

	// rowScratch is DecodeBlock's reusable decode row.
	rowScratch []any
}

// Open implements Operator, binding the scan's serde metrics.
func (s *ScanOp) Open(ctx *OpContext) error {
	if ctx.Metrics != nil {
		s.bytesIn = ctx.Metrics.Counter(SerdeBytesInMetric)
		s.decodeLat = ctx.Metrics.Histogram("operator.scan." + s.Stream + ".decode-ns")
	}
	return nil
}

// Process is not used for ScanOp; scans convert raw messages via Decode.
func (s *ScanOp) Process(_ int, t *Tuple, emit Emit) error { return emit(t) }

// Decode converts one raw message into a tuple.
func (s *ScanOp) Decode(value []byte, key []byte, msgTs int64, partition int32, offset int64) (*Tuple, error) {
	start := time.Now()
	row, err := s.Codec.DecodeRow(value, nil)
	if err != nil {
		return nil, fmt.Errorf("operators: scan decode (%s): %w", s.Stream, err)
	}
	if s.bytesIn != nil {
		s.bytesIn.Add(int64(len(value)))
		s.decodeLat.Observe(time.Since(start).Nanoseconds())
	}
	t := &Tuple{
		Row: row, Ts: msgTs, Key: key,
		Stream: s.Stream, Partition: partition, Offset: offset,
	}
	if s.TsIdx >= 0 && s.TsIdx < len(row) {
		if ts, ok := row[s.TsIdx].(int64); ok {
			t.Ts = ts
		}
	}
	return t, nil
}

// Sender abstracts the Samza message collector for the insert operator.
type Sender func(stream string, partition int32, key, value []byte, ts int64) error

// InsertOp encodes result rows back to Avro (the ArrayToAvro step of Figure
// 4) and sends them to the output stream. Output preserves the source
// partition unless the tuple carries an explicit key, in which case the
// broker partitions by key.
type InsertOp struct {
	Codec  *avro.Codec
	Target string
	Send   Sender
	// SendBatch, when bound, lets ProcessBlock flush a whole block's output
	// in one producer call; without it the block path sends per row.
	SendBatch BatchSender
	// KeyByTupleKey selects key-based partitioning when tuples carry keys.
	KeyByTupleKey bool

	// bytesOut counts encoded output bytes; bound at Open.
	bytesOut *metrics.Counter

	// Block-path arenas: the gather row, the (start, end) offsets of each
	// encoded row in the block slab, the outgoing message headers, and the
	// high-water slab size used to pre-size the next block's slab.
	rowScratch []any
	offScratch []int
	msgScratch []kafka.Message
	slabHint   int
}

// Open implements Operator, binding the insert's serde metrics.
func (i *InsertOp) Open(ctx *OpContext) error {
	if ctx.Metrics != nil {
		i.bytesOut = ctx.Metrics.Counter(SerdeBytesOutMetric)
	}
	return nil
}

// Process implements Operator.
func (i *InsertOp) Process(_ int, t *Tuple, emit Emit) error {
	value, err := i.Codec.EncodeRow(t.Row)
	if err != nil {
		return fmt.Errorf("operators: insert encode (%s): %w", i.Target, err)
	}
	if i.bytesOut != nil {
		i.bytesOut.Add(int64(len(value)))
	}
	partition := t.Partition
	var key []byte
	if i.KeyByTupleKey && len(t.Key) > 0 {
		key = t.Key
		partition = -1
	}
	if err := i.Send(i.Target, partition, key, value, t.Ts); err != nil {
		return err
	}
	if emit != nil {
		return emit(t)
	}
	return nil
}

package operators

import (
	"encoding/binary"
	"fmt"

	"samzasql/internal/kv"
	"samzasql/internal/serde"
	"samzasql/internal/sql/expr"
	"samzasql/internal/sql/validate"
)

// AggStoreName is the task store the streaming aggregate operator uses.
const AggStoreName = "samzasql-agg"

// StreamAggregateOp implements grouped aggregation over streams (§4.3
// "Hopping and tumbling windows are implemented in the streaming aggregate
// operator"). Two emission modes:
//
//   - Windowed (HOP/TUMBLE in GROUP BY): per-window accumulators keyed by
//     (window end, group key) live in the task's key-value store; a window
//     emits when the event-time watermark passes its end, and tuples for
//     already-emitted windows are discarded — the paper's timeout-expiry
//     deviation from standard SQL semantics (§3).
//
//   - Unwindowed GROUP BY: the early-results policy — every input tuple
//     emits the group's updated aggregate row immediately (an insert stream
//     of partial results, §3.3).
//
// Replayed messages are detected via per-stream last-offset markers kept in
// the same store, giving deterministic output across failure and replay.
type StreamAggregateOp struct {
	keys   []expr.Expr
	window *validate.GroupWindow
	aggs   []*validate.BoundAgg

	keyEvals []expr.Evaluator
	tsEval   expr.Evaluator
	// argEvals and accumCtors are the aggregate argument evaluators and
	// accumulator constructors, resolved once at construction and shared by
	// every AccumSet the state decode path builds.
	argEvals   []expr.Evaluator
	accumCtors []func() Accumulator

	store     kv.Store
	obj       serde.ObjectSerde
	watermark int64
	sources   sourceKeys

	// Block-path scratch (block_stateful.go): the output block, the gather
	// row, per-row group key values/bytes/timestamps, the per-block state
	// map, and the batched-read slices.
	outBlock   TupleBlock
	rowScratch []any
	keyScratch []any
	blkKb      [][]byte
	blkTs      []int64
	blkKeyVals []any
	blkWk      []byte
	blkStates  map[string]*aggBlockState
	blkKeys    [][]byte
	blkVals    [][]byte
	blkOks     []bool
	// wmSink appends watermark-closed windows to the block path's output
	// block; bound once in Open (a per-block closure would escape in the
	// hot path). wmOut is the live call's output block.
	wmSink Emit
	wmOut  *TupleBlock
}

// aggBlockState is one group's (or one (window, group)'s) state while a
// block is in flight: loaded once per block, written back once when dirty.
type aggBlockState struct {
	set     *AccumSet
	offsets offsetVector
	dirty   bool
}

// NewStreamAggregateOp builds the operator from the bound query pieces.
func NewStreamAggregateOp(keys []expr.Expr, window *validate.GroupWindow, aggs []*validate.BoundAgg) (*StreamAggregateOp, error) {
	op := &StreamAggregateOp{keys: keys, window: window, aggs: aggs}
	for _, k := range keys {
		ev, err := expr.Compile(k)
		if err != nil {
			return nil, err
		}
		op.keyEvals = append(op.keyEvals, ev)
	}
	if window != nil {
		ev, err := expr.Compile(window.Ts)
		if err != nil {
			return nil, err
		}
		op.tsEval = ev
	}
	evals, err := CompileAggArgs(aggs)
	if err != nil {
		return nil, err
	}
	op.argEvals = evals
	ctors, err := AccumCtors(aggs)
	if err != nil {
		return nil, err
	}
	op.accumCtors = ctors
	return op, nil
}

// Open implements Operator.
func (o *StreamAggregateOp) Open(ctx *OpContext) error {
	o.store = ctx.Store(AggStoreName)
	if v, ok := o.store.Get([]byte("wm")); ok && len(v) == 8 {
		o.watermark = int64(binary.BigEndian.Uint64(v))
	}
	o.wmSink = func(t *Tuple) error {
		o.wmOut.appendRow(t.Row, t.Ts, t.Key, t.Offset)
		return nil
	}
	return nil
}

// Process implements Operator.
func (o *StreamAggregateOp) Process(_ int, t *Tuple, emit Emit) error {
	keyVals := make([]any, len(o.keyEvals))
	for i, ev := range o.keyEvals {
		v, err := ev(t.Row)
		if err != nil {
			return fmt.Errorf("operators: group key: %w", err)
		}
		keyVals[i] = v
	}
	if o.window == nil {
		return o.processUnwindowed(keyVals, t, emit)
	}
	return o.processWindowed(keyVals, t, emit)
}

func (o *StreamAggregateOp) processUnwindowed(keyVals []any, t *Tuple, emit Emit) error {
	storeKey, err := o.encodeKey(0, keyVals)
	if err != nil {
		return err
	}
	set, offsets, err := o.loadSet(storeKey)
	if err != nil {
		return err
	}
	// Replay dedup (§4.3): the state row remembers the last offset applied
	// per source partition; re-delivered messages are no-ops, no output.
	src := o.sources.key(t)
	if offsets.seen(src, t.Offset) {
		return nil
	}
	if err := set.Add(t.Row); err != nil {
		return err
	}
	if err := o.saveSet(storeKey, set, offsets.update(src, t.Offset)); err != nil {
		return err
	}
	// Early-results policy: emit the group's current row.
	row := append(append([]any(nil), keyVals...), set.Values()...)
	return emit(&Tuple{
		Row: row, Ts: t.Ts, Key: storeKey,
		Stream: t.Stream, Partition: t.Partition, Offset: t.Offset,
	})
}

func (o *StreamAggregateOp) processWindowed(keyVals []any, t *Tuple, emit Emit) error {
	tsv, err := o.tsEval(t.Row)
	if err != nil {
		return fmt.Errorf("operators: window timestamp: %w", err)
	}
	ts, ok := tsv.(int64)
	if !ok {
		return fmt.Errorf("operators: window timestamp is %T", tsv)
	}
	// Window ends are the emit boundaries e ≡ align (mod emit) with
	// e in (ts, ts+retain]; each window covers [e-retain, e).
	emitEvery := o.window.EmitMillis
	retain := o.window.RetainMillis
	align := o.window.AlignMillis
	first := nextBoundary(ts, emitEvery, align)
	for e := first; e <= ts+retain; e += emitEvery {
		if e <= o.watermark {
			continue // window already emitted; late tuple contribution dropped
		}
		storeKey, err := o.encodeKey(e, keyVals)
		if err != nil {
			return err
		}
		set, offsets, err := o.loadSet(storeKey)
		if err != nil {
			return err
		}
		src := o.sources.key(t)
		if offsets.seen(src, t.Offset) {
			continue // replayed message already contributed to this window
		}
		set.SetWindow(e-retain, e)
		if err := set.Add(t.Row); err != nil {
			return err
		}
		if err := o.saveSet(storeKey, set, offsets.update(src, t.Offset)); err != nil {
			return err
		}
	}
	// Advance the watermark and close any windows it passed.
	if ts > o.watermark {
		return o.advanceWatermark(ts, emit, t)
	}
	return nil
}

// nextBoundary returns the smallest e > ts with e ≡ align (mod every).
func nextBoundary(ts, every, align int64) int64 {
	base := ts - align
	k := base / every
	e := k*every + align
	for e <= ts {
		e += every
	}
	return e
}

// advanceWatermark emits every stored window whose end is <= the new
// watermark, then persists it.
func (o *StreamAggregateOp) advanceWatermark(ts int64, emit Emit, src *Tuple) error {
	// Window store keys are "w:"+bigendian(end)+keyBytes, so a range scan
	// up to the new watermark finds exactly the closed windows in end
	// order — deterministic emission.
	start := []byte("w:")
	end := append([]byte("w:"), u64be(uint64(ts)+1)...)
	closed := o.store.Range(start, end, 0)
	for _, e := range closed {
		winEnd := int64(binary.BigEndian.Uint64(e.Key[2:10]))
		keyVals, set, err := o.decodeEntry(e)
		if err != nil {
			return err
		}
		set.SetWindow(winEnd-o.window.RetainMillis, winEnd)
		row := append(append([]any(nil), keyVals...), set.Values()...)
		if err := emit(&Tuple{
			Row: row, Ts: winEnd, Key: e.Key,
			Stream: src.Stream, Partition: src.Partition, Offset: src.Offset,
		}); err != nil {
			return err
		}
		o.store.Delete(e.Key)
	}
	o.watermark = ts
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(ts))
	o.store.Put([]byte("wm"), buf[:])
	return nil
}

func u64be(v uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return b[:]
}

// FlushFinal emits every window still open. The bounded (table-mode)
// executor calls this at end of input, where "the history of the stream up
// to the point of execution" (§3.3) is complete and all windows close.
func (o *StreamAggregateOp) FlushFinal(emit Emit) error {
	if o.window == nil {
		return nil // unwindowed groups already emitted their latest rows
	}
	return o.advanceWatermark(int64(1)<<62, emit, &Tuple{})
}

// encodeKey builds the store key "w:" + windowEnd + object(groupKey).
func (o *StreamAggregateOp) encodeKey(windowEnd int64, keyVals []any) ([]byte, error) {
	kb, err := o.obj.Encode(keyVals)
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, 10+len(kb))
	out = append(out, 'w', ':')
	out = append(out, u64be(uint64(windowEnd))...)
	return append(out, kb...), nil
}

func (o *StreamAggregateOp) decodeEntry(e kv.Entry) ([]any, *AccumSet, error) {
	kv, err := o.obj.Decode(e.Key[10:])
	if err != nil {
		return nil, nil, err
	}
	keyVals := kv.([]any)
	set := NewAccumSetWith(o.aggs, o.argEvals, o.accumCtors)
	snap, err := o.obj.Decode(e.Value)
	if err != nil {
		return nil, nil, err
	}
	row := snap.([]any)
	if len(row) != 2 {
		return nil, nil, fmt.Errorf("operators: aggregate state has %d fields", len(row))
	}
	snaps, ok := row[1].([]any)
	if !ok {
		return nil, nil, fmt.Errorf("operators: aggregate snapshots are %T", row[1])
	}
	if err := set.RestoreInto(snaps); err != nil {
		return nil, nil, err
	}
	return keyVals, set, nil
}

// loadSet returns the accumulator set plus the per-source offset vector of
// messages already folded in.
func (o *StreamAggregateOp) loadSet(storeKey []byte) (*AccumSet, offsetVector, error) {
	v, ok := o.store.Get(storeKey)
	return o.decodeSet(v, ok)
}

// decodeSet builds the accumulator set and offset vector from stored state
// bytes; ok=false yields a fresh empty set. Shared by the scalar load path
// and the block path's batched miss fill.
func (o *StreamAggregateOp) decodeSet(v []byte, ok bool) (*AccumSet, offsetVector, error) {
	set := NewAccumSetWith(o.aggs, o.argEvals, o.accumCtors)
	if !ok {
		return set, nil, nil
	}
	snap, err := o.obj.Decode(v)
	if err != nil {
		return nil, nil, err
	}
	row := snap.([]any)
	if len(row) != 2 {
		return nil, nil, fmt.Errorf("operators: aggregate state has %d fields", len(row))
	}
	snaps, ok := row[1].([]any)
	if !ok {
		return nil, nil, fmt.Errorf("operators: aggregate snapshots are %T", row[1])
	}
	if err := set.RestoreInto(snaps); err != nil {
		return nil, nil, err
	}
	vec, _ := row[0].([]any)
	return set, offsetVector(vec), nil
}

func (o *StreamAggregateOp) saveSet(storeKey []byte, set *AccumSet, offsets offsetVector) error {
	row := []any{[]any(offsets), set.Snapshot()}
	v, err := o.obj.Encode(row)
	if err != nil {
		return err
	}
	o.store.Put(storeKey, v)
	return nil
}

// encodeGroupKey produces stable key bytes for a value tuple; shared by the
// join and sliding-window operators.
func encodeGroupKey(g serde.ObjectSerde, vals []any) ([]byte, error) {
	return g.Encode(vals)
}

package operators

import (
	"time"

	"samzasql/internal/metrics"
	"samzasql/internal/trace"
)

// Instrumented wraps an operator with per-operator observability: a
// process-latency histogram ("operator.<name>.process-ns") and an output
// tuple counter ("operator.<name>.out"). Handles bind once at Open from the
// task's registry; until then (or when the context carries no registry) the
// wrapper is a transparent pass-through. The per-tuple cost is two
// monotonic clock reads plus lock-free atomics — no allocations, so the
// wrapper is safe on the 0 allocs/op message path.
type Instrumented struct {
	// Op is the wrapped operator.
	Op   Operator
	name string
	lat  *metrics.Histogram
	out  *metrics.Counter
	// act and stage support per-stage trace spans for sampled messages:
	// the cursor binds at Open, the stage string is precomputed at
	// construction so the sampled path allocates nothing.
	act   *trace.Active
	stage string
}

// NewInstrumented wraps op under the given stage name (unique within one
// compiled program; the physical compiler suffixes repeated kinds).
func NewInstrumented(name string, op Operator) *Instrumented {
	return &Instrumented{Op: op, name: name, stage: "operator." + name}
}

// Name returns the stage name.
func (i *Instrumented) Name() string { return i.name }

// Open implements Operator: binds the metric handles, then opens the
// wrapped operator.
func (i *Instrumented) Open(ctx *OpContext) error {
	if ctx.Metrics != nil {
		i.lat = ctx.Metrics.Histogram("operator." + i.name + ".process-ns")
		i.out = ctx.Metrics.Counter("operator." + i.name + ".out")
	}
	i.act = ctx.Trace
	return i.Op.Open(ctx)
}

// Process implements Operator, timing the wrapped call. The emit chain is
// expected to be pre-wrapped with WrapEmit so output counting costs no
// per-tuple closure. For sampled messages the same call is bracketed in a
// per-stage trace span; nested operators nest via the call stack.
//
//samzasql:hotpath
func (i *Instrumented) Process(side int, t *Tuple, emit Emit) error {
	if i.lat == nil {
		//samzasql:ignore hotpath-blocking -- the task store mutex is per-task single-writer and uncontended by design; skiplist access under it is the state-access contract
		return i.Op.Process(side, t, emit)
	}
	if i.act.Sampled() {
		start := time.Now()
		startNs := start.UnixNano()
		i.act.Begin(i.stage, startNs)
		//samzasql:ignore hotpath-blocking -- the task store mutex is per-task single-writer and uncontended by design; skiplist access under it is the state-access contract
		err := i.Op.Process(side, t, emit)
		d := time.Since(start).Nanoseconds()
		i.act.End(startNs + d)
		i.lat.Observe(d)
		return err
	}
	start := time.Now()
	//samzasql:ignore hotpath-blocking -- the task store mutex is per-task single-writer and uncontended by design; skiplist access under it is the state-access contract
	err := i.Op.Process(side, t, emit)
	i.lat.Observe(time.Since(start).Nanoseconds())
	return err
}

// WrapEmit returns an emit that counts this operator's outputs before
// passing them downstream. Built once at compile time, so the per-tuple
// path allocates nothing.
func (i *Instrumented) WrapEmit(downstream Emit) Emit {
	return func(t *Tuple) error {
		if i.out != nil {
			i.out.Inc()
		}
		return downstream(t)
	}
}

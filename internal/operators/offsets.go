package operators

import (
	"fmt"

	"samzasql/internal/kafka"
)

// Stateful operators remember, inside each state row, the offset of the
// last message applied from every source partition. That makes re-delivered
// messages (Samza replays after a failure, §4.3) no-ops without extra store
// round-trips: the vector rides along in the state value that is read and
// written anyway. It is keyed per (stream, partition) because one operator
// instance can see several partitions (a join's two inputs; the bounded
// table-mode executor feeds all partitions through one instance).

// offsetVector is a flat [key1, off1, key2, off2, ...] list of source
// identifiers and last-applied offsets, stored as a nested row.
type offsetVector []any

// seen reports whether the offset was already applied from source key.
func (v offsetVector) seen(key string, offset int64) bool {
	for i := 0; i+1 < len(v); i += 2 {
		if k, ok := v[i].(string); ok && k == key {
			last, _ := v[i+1].(int64)
			return offset <= last
		}
	}
	return false
}

// update records offset for source key, returning the updated vector.
func (v offsetVector) update(key string, offset int64) offsetVector {
	for i := 0; i+1 < len(v); i += 2 {
		if k, ok := v[i].(string); ok && k == key {
			v[i+1] = offset
			return v
		}
	}
	return append(v, key, offset)
}

// sourceKeys caches the "stream:partition" strings so the per-message path
// does not allocate.
type sourceKeys struct {
	cache map[kafka.TopicPartition]string
}

func (s *sourceKeys) key(t *Tuple) string {
	return s.keyFor(t.Stream, t.Partition)
}

// keyFor is the block-path variant: a polled block carries one
// (stream, partition) for all its rows, so the key is computed once per
// block instead of per tuple.
func (s *sourceKeys) keyFor(stream string, partition int32) string {
	if s.cache == nil {
		s.cache = map[kafka.TopicPartition]string{}
	}
	tp := kafka.TopicPartition{Topic: stream, Partition: partition}
	k, ok := s.cache[tp]
	if !ok {
		k = fmt.Sprintf("%s:%d", stream, partition)
		s.cache[tp] = k
	}
	return k
}

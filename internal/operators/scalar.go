package operators

import (
	"fmt"

	"samzasql/internal/sql/expr"
)

// FilterOp drops tuples whose condition is not TRUE (NULL filters out, per
// SQL semantics).
type FilterOp struct {
	cond expr.Evaluator
	// rowScratch is ProcessBlock's reusable gather row.
	rowScratch []any
}

// NewFilterOp compiles the condition.
func NewFilterOp(cond expr.Expr) (*FilterOp, error) {
	ev, err := expr.Compile(cond)
	if err != nil {
		return nil, err
	}
	return &FilterOp{cond: ev}, nil
}

// Open implements Operator.
func (*FilterOp) Open(*OpContext) error { return nil }

// Process implements Operator.
func (f *FilterOp) Process(_ int, t *Tuple, emit Emit) error {
	v, err := f.cond(t.Row)
	if err != nil {
		return fmt.Errorf("operators: filter: %w", err)
	}
	if b, ok := v.(bool); ok && b {
		return emit(t)
	}
	return nil
}

// ProjectOp computes the output expressions of a projection. When the
// output row type carries a timestamp column (TsIdx >= 0), the produced
// tuple's event time is refreshed from it so downstream windows keep
// working (§3.4's recommendation to preserve timestamps).
type ProjectOp struct {
	evals []expr.Evaluator
	// TsIdx is the output timestamp column, or -1.
	TsIdx int
	// Identity marks a projection whose expressions are the input columns in
	// order (SELECT *): the block path then passes blocks through unchanged
	// instead of re-evaluating column references and compacting. Scalar
	// Process ignores it.
	Identity bool

	// Block-path arenas: the gather row and the operator-owned output block
	// ProcessBlock compacts selected rows into.
	rowScratch []any
	outBlock   TupleBlock
}

// NewProjectOp compiles the projections.
func NewProjectOp(exprs []expr.Expr, tsIdx int) (*ProjectOp, error) {
	evals := make([]expr.Evaluator, len(exprs))
	for i, e := range exprs {
		ev, err := expr.Compile(e)
		if err != nil {
			return nil, err
		}
		evals[i] = ev
	}
	return &ProjectOp{evals: evals, TsIdx: tsIdx}, nil
}

// Open implements Operator.
func (*ProjectOp) Open(*OpContext) error { return nil }

// Process implements Operator.
func (p *ProjectOp) Process(_ int, t *Tuple, emit Emit) error {
	row := make([]any, len(p.evals))
	for i, ev := range p.evals {
		v, err := ev(t.Row)
		if err != nil {
			return fmt.Errorf("operators: project: %w", err)
		}
		row[i] = v
	}
	out := &Tuple{
		Row:       row,
		Ts:        t.Ts,
		Key:       t.Key,
		Stream:    t.Stream,
		Partition: t.Partition,
		Offset:    t.Offset,
	}
	if p.TsIdx >= 0 {
		if ts, ok := row[p.TsIdx].(int64); ok {
			out.Ts = ts
		}
	}
	return emit(out)
}

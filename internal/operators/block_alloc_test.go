package operators

import (
	"testing"

	"samzasql/internal/kv"
	"samzasql/internal/metrics"
	"samzasql/internal/sql/validate"
)

// fillWindowBlock loads b with n rows [ts, units, pid]: timestamps advance
// stepMillis per row from baseTs, offsets from baseOff, and partition ids
// cycle in runs of runLen so the block path's adjacent-key run detection
// engages alongside the memo.
func fillWindowBlock(b *TupleBlock, n, parts, runLen int, baseTs, baseOff int64, stepMillis int64) {
	b.Reset("in", 0, n)
	b.sizeCols(3, n)
	for r := 0; r < n; r++ {
		ts := baseTs + int64(r)*stepMillis
		b.Cols[0][r] = ts
		b.Cols[1][r] = int64(r%13 + 1)
		b.Cols[2][r] = int64((r / runLen) % parts)
		b.Ts = append(b.Ts, ts)
		b.Keys = append(b.Keys, nil)
		b.Offsets = append(b.Offsets, baseOff+int64(r))
	}
	b.SelAll()
}

// TestSlidingWindowBlockAllocBudget pins the vectorized sliding window's
// per-row allocation cost. Unlike the stateless filter kernel this path can
// never hit zero — every fresh tuple persists a message contribution (the
// skiplist copies key and value) and boxes its aggregate output — but the
// clustering design bounds the per-row count by a small constant independent
// of block size: state loads, decodes and write-backs are paid per distinct
// key per block, not per row. The budget has headroom over the measured
// value (~5.4) while staying far below the scalar path's per-tuple cost.
func TestSlidingWindowBlockAllocBudget(t *testing.T) {
	op, err := NewSlidingWindowOp([]*validate.BoundAnalytic{slidingSpec("SUM", 1000, 0, false)})
	if err != nil {
		t.Fatal(err)
	}
	// The production perf configuration: an object-caching store, so window
	// states stay resident as decoded objects between blocks.
	cached := kv.NewCachedStore(kv.NewStore(), 1<<12, 0)
	ctx := &OpContext{
		Store:   func(string) kv.Store { return cached },
		Metrics: metrics.NewRegistry(),
	}
	if err := op.Open(ctx); err != nil {
		t.Fatal(err)
	}
	const (
		block = 256
		parts = 4
	)
	b := &TupleBlock{}
	emit := func(*TupleBlock) error { return nil }
	ts := int64(1_600_000_000_000)
	off := int64(0)
	runBlock := func() {
		// Fresh timestamps and offsets per run: replay detection must see
		// new tuples, and advancing time keeps the RANGE purge live.
		fillWindowBlock(b, block, parts, 16, ts, off, 10)
		ts += block * 10
		off += block
		if err := op.ProcessBlock(0, b, emit); err != nil {
			t.Fatal(err)
		}
	}
	runBlock() // warm the scratch arenas and resident states
	allocs := testing.AllocsPerRun(50, runBlock)
	perRow := allocs / block
	t.Logf("vectorized sliding window: %.2f allocs/row (%.0f per %d-row block)", perRow, allocs, block)
	const budget = 10.0
	if perRow > budget {
		t.Errorf("vectorized sliding window: %.2f allocs/row (%.0f per %d-row block), budget %.0f",
			perRow, allocs, block, budget)
	}
}

package operators

import (
	"encoding/binary"
	"fmt"

	"samzasql/internal/kv"
	"samzasql/internal/serde"
	"samzasql/internal/sql/expr"
	"samzasql/internal/sql/validate"
)

// SlidingStoreName is the task store backing the sliding window operator.
const SlidingStoreName = "samzasql-window"

// SlidingWindowOp implements Algorithm 1 (§4.3): on each tuple it saves the
// message into local storage, initializes/advances the window bounds, purges
// expired messages while adjusting aggregate values, folds in the current
// tuple, persists the window state, and emits the input row extended with
// the latest aggregate values downstream.
//
// All state lives in the task's key-value store so Samza's changelog
// snapshot/restore makes the operator fault-tolerant, and per-stream offset
// markers make re-delivered messages no-ops (exactly-once output, §4.3).
// The heavy store read/write traffic per tuple is intrinsic — the paper
// measures sliding-window throughput as dominated by key-value access.
type SlidingWindowOp struct {
	calls   []*analyticState
	store   kv.Store
	obj     serde.ObjectSerde
	sources sourceKeys
}

type analyticState struct {
	spec      *validate.BoundAnalytic
	partEvals []expr.Evaluator
	orderEval expr.Evaluator
	argEval   expr.Evaluator // nil for COUNT(*)
	idx       byte
}

// NewSlidingWindowOp compiles the analytic calls.
func NewSlidingWindowOp(calls []*validate.BoundAnalytic) (*SlidingWindowOp, error) {
	if len(calls) > 255 {
		return nil, fmt.Errorf("operators: too many analytic calls (%d)", len(calls))
	}
	op := &SlidingWindowOp{}
	for i, c := range calls {
		st := &analyticState{spec: c, idx: byte(i)}
		for _, p := range c.PartitionBy {
			ev, err := expr.Compile(p)
			if err != nil {
				return nil, err
			}
			st.partEvals = append(st.partEvals, ev)
		}
		ev, err := expr.Compile(c.OrderBy)
		if err != nil {
			return nil, err
		}
		st.orderEval = ev
		if c.Arg != nil {
			ae, err := expr.Compile(c.Arg)
			if err != nil {
				return nil, err
			}
			st.argEval = ae
		}
		op.calls = append(op.calls, st)
	}
	return op, nil
}

// Open implements Operator.
func (o *SlidingWindowOp) Open(ctx *OpContext) error {
	o.store = ctx.Store(SlidingStoreName)
	return nil
}

// Process implements Operator (Algorithm 1). Re-delivered messages are
// detected via the last-applied offset carried in each window state row and
// produce no state change and no output (exactly-once, §4.3).
func (o *SlidingWindowOp) Process(_ int, t *Tuple, emit Emit) error {
	out := append([]any(nil), t.Row...)
	replay := false
	for i, call := range o.calls {
		v, seen, err := o.processCall(call, t)
		if err != nil {
			return err
		}
		if i == 0 && seen {
			replay = true
		}
		out = append(out, v)
	}
	if replay {
		return nil
	}
	return emit(&Tuple{
		Row: out, Ts: t.Ts, Key: t.Key,
		Stream: t.Stream, Partition: t.Partition, Offset: t.Offset,
	})
}

func (o *SlidingWindowOp) processCall(c *analyticState, t *Tuple) (any, bool, error) {
	// Partition key for window state.
	partVals := make([]any, len(c.partEvals))
	for i, ev := range c.partEvals {
		v, err := ev(t.Row)
		if err != nil {
			return nil, false, err
		}
		partVals[i] = v
	}
	pk, err := encodeGroupKey(o.obj, partVals)
	if err != nil {
		return nil, false, err
	}
	// Window ordering value (the tuple timestamp; §3.8 assumes it
	// monotonically increases per partition).
	ov, err := c.orderEval(t.Row)
	if err != nil {
		return nil, false, err
	}
	ts, ok := ov.(int64)
	if !ok {
		return nil, false, fmt.Errorf("operators: ORDER BY value is %T", ov)
	}
	// The aggregate input value (a non-nil marker for COUNT(*)).
	var arg any = int64(1)
	if c.argEval != nil {
		arg, err = c.argEval(t.Row)
		if err != nil {
			return nil, false, err
		}
	}

	// 1. Load window state (aggregate values, bounds, applied offsets).
	acc, count, offsets, err := o.loadCallState(c, pk)
	if err != nil {
		return nil, false, err
	}
	// Replayed message: state already reflects it; report current value.
	src := o.sources.key(t)
	if offsets.seen(src, t.Offset) {
		return acc.Value(), true, nil
	}
	count++

	// 2. Save the message's window contribution in the message store.
	msgKey := o.msgKey(c.idx, pk, ts, t.Offset)
	msgVal, err := o.obj.Encode([]any{ts, arg})
	if err != nil {
		return nil, false, err
	}
	o.store.Put(msgKey, msgVal)

	// 3. Purge expired messages, adjusting aggregate values.
	rebuild := false
	prefix := o.msgPrefix(c.idx, pk)
	if !c.spec.Unbounded {
		if c.spec.IsRows {
			// Keep the last FrameRows+1 contributions.
			keep := c.spec.FrameRows + 1
			if count > keep {
				entries := o.store.Range(prefix, prefixEnd(prefix), int(count-keep))
				for _, e := range entries {
					if err := o.dropEntry(acc, e, &rebuild); err != nil {
						return nil, false, err
					}
					count--
				}
			}
		} else if cutoff := ts - c.spec.FrameMillis; cutoff > 0 {
			// RANGE frame: drop contributions older than ts - frame.
			// (cutoff <= 0 cannot match any Unix-milli timestamp, and a
			// negative value would wrap in the unsigned key encoding.)
			end := o.msgKey(c.idx, pk, cutoff, 0)
			entries := o.store.Range(prefix, end, 0)
			for _, e := range entries {
				if err := o.dropEntry(acc, e, &rebuild); err != nil {
					return nil, false, err
				}
				count--
			}
		}
	}
	// 4. Fold in the current tuple.
	if err := acc.Add(arg); err != nil {
		return nil, false, err
	}
	// 5. Non-invertible aggregates (MIN/MAX, non-invertible UDAFs) rebuild
	// from the retained window after a purge.
	if rebuild && !acc.Invertible() {
		fresh, err := NewAccumulatorFor(c.spec.Fn)
		if err != nil {
			return nil, false, err
		}
		for _, e := range o.store.Range(prefix, prefixEnd(prefix), 0) {
			contrib, err := o.obj.Decode(e.Value)
			if err != nil {
				return nil, false, err
			}
			if err := fresh.Add(contrib.([]any)[1]); err != nil {
				return nil, false, err
			}
		}
		acc = fresh
	}
	// 6. Persist state.
	if err := o.saveCallState(c, pk, acc, count, offsets.update(src, t.Offset)); err != nil {
		return nil, false, err
	}
	return acc.Value(), false, nil
}

// dropEntry removes one expired message contribution.
func (o *SlidingWindowOp) dropEntry(acc Accumulator, e kv.Entry, rebuild *bool) error {
	contrib, err := o.obj.Decode(e.Value)
	if err != nil {
		return err
	}
	val := contrib.([]any)[1]
	if acc.Invertible() {
		if err := acc.Remove(val); err != nil {
			return err
		}
	} else {
		*rebuild = true
	}
	o.store.Delete(e.Key)
	return nil
}

// msgPrefix is "m" + callIdx + len(pk) + pk; fixed-width so ts ordering
// inside the prefix is the byte ordering.
func (o *SlidingWindowOp) msgPrefix(idx byte, pk []byte) []byte {
	out := make([]byte, 0, 4+len(pk))
	out = append(out, 'm', idx)
	var l [2]byte
	binary.BigEndian.PutUint16(l[:], uint16(len(pk)))
	out = append(out, l[:]...)
	return append(out, pk...)
}

func (o *SlidingWindowOp) msgKey(idx byte, pk []byte, ts int64, offset int64) []byte {
	out := o.msgPrefix(idx, pk)
	out = append(out, u64be(uint64(ts))...)
	return append(out, u64be(uint64(offset))...)
}

// prefixEnd returns the smallest key greater than every key with prefix p.
func prefixEnd(p []byte) []byte {
	out := append([]byte(nil), p...)
	for i := len(out) - 1; i >= 0; i-- {
		if out[i] != 0xff {
			out[i]++
			return out[:i+1]
		}
	}
	return nil // prefix is all 0xff: scan to the end
}

func (o *SlidingWindowOp) stateKey(idx byte, pk []byte) []byte {
	out := make([]byte, 0, 2+len(pk))
	out = append(out, 's', idx)
	return append(out, pk...)
}

// loadCallState returns the accumulator, contribution count and the vector
// of per-source offsets already applied. The state row is
// [accumulatorSnapshot, count, offsetVector].
func (o *SlidingWindowOp) loadCallState(c *analyticState, pk []byte) (Accumulator, int64, offsetVector, error) {
	acc, err := NewAccumulatorFor(c.spec.Fn)
	if err != nil {
		return nil, 0, nil, err
	}
	var count int64
	var offsets offsetVector
	if v, ok := o.store.Get(o.stateKey(c.idx, pk)); ok {
		snap, err := o.obj.Decode(v)
		if err != nil {
			return nil, 0, nil, err
		}
		row := snap.([]any)
		if len(row) != 3 {
			return nil, 0, nil, fmt.Errorf("operators: window state has %d fields", len(row))
		}
		accSnap, ok := row[0].([]any)
		if !ok {
			return nil, 0, nil, fmt.Errorf("operators: window state snapshot is %T", row[0])
		}
		if err := acc.Restore(accSnap); err != nil {
			return nil, 0, nil, err
		}
		count, _ = row[1].(int64)
		vec, _ := row[2].([]any)
		offsets = offsetVector(vec)
	}
	return acc, count, offsets, nil
}

func (o *SlidingWindowOp) saveCallState(c *analyticState, pk []byte, acc Accumulator, count int64, offsets offsetVector) error {
	row := []any{acc.Snapshot(), count, []any(offsets)}
	v, err := o.obj.Encode(row)
	if err != nil {
		return err
	}
	o.store.Put(o.stateKey(c.idx, pk), v)
	return nil
}

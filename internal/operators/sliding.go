package operators

import (
	"encoding/binary"
	"fmt"

	"samzasql/internal/kv"
	"samzasql/internal/serde"
	"samzasql/internal/sql/expr"
	"samzasql/internal/sql/validate"
)

// SlidingStoreName is the task store backing the sliding window operator.
const SlidingStoreName = "samzasql-window"

// SlidingWindowOp implements Algorithm 1 (§4.3): on each tuple it saves the
// message into local storage, initializes/advances the window bounds, purges
// expired messages while adjusting aggregate values, folds in the current
// tuple, persists the window state, and emits the input row extended with
// the latest aggregate values downstream.
//
// All state lives in the task's key-value store so Samza's changelog
// snapshot/restore makes the operator fault-tolerant, and per-stream offset
// markers make re-delivered messages no-ops (exactly-once output, §4.3).
// The heavy store read/write traffic per tuple is intrinsic — the paper
// measures sliding-window throughput as dominated by key-value access.
//
// When the job enables the store cache (JobSpec.StoreCacheSize), the
// per-partition window state rows ('s' keys) stay resident as decoded
// windowState objects: a cache-hit tuple pays no ObjectSerde decode on load
// and no encode on save (encoding defers to commit flush or eviction).
// Message contributions ('m' keys) are write-once and range-purged, which a
// point-read LRU cannot help, so they route to the uncached layer — that
// also keeps the hot path free of Range calls on the cache, which would
// force the write batch through early and destroy deduplication.
type SlidingWindowOp struct {
	calls []*analyticState
	store kv.Store
	// cache is non-nil when the task store supports object caching; msgStore
	// is then the layer underneath it for the write-once 'm' key space.
	cache    kv.ObjectCache
	msgStore kv.Store
	encState kv.ObjectEncoder
	obj      serde.ObjectSerde
	sources  sourceKeys

	// Per-tuple scratch buffers (tasks are single-goroutine; every store
	// layer copies keys and values it retains, so reuse is safe). sbuf holds
	// the state key, kbuf the message key, pbuf/ebuf the purge-scan bounds,
	// vbuf the encoded contribution.
	sbuf, kbuf, pbuf, ebuf, vbuf []byte

	// Block-path scratch (block_stateful.go): the output block, the gather
	// row, per-row group keys, per-row replay flags, the per-block state map
	// keyed by state-key string, and the batched-read slices.
	outBlock   TupleBlock
	rowScratch []any
	blkPks     [][]byte
	blkReplay  []bool
	blkStates  map[string]*windowState
	blkKeys    [][]byte
	blkMiss    [][]byte
	blkVals    [][]byte
	blkObjs    []any
	blkOks     []bool
}

// windowState is one window partition's decoded state: the live accumulator,
// the retained-contribution count, and the per-source applied-offset vector
// that makes re-delivered messages no-ops. Its encoded form is the
// [accSnapshot, count, offsetVector] row loadCallState reads.
type windowState struct {
	acc     Accumulator
	count   int64
	offsets offsetVector
	// dirty marks block-path modification; set while a block is in flight so
	// the state is written back once per key per block, cleared on save. Not
	// part of the encoded form.
	dirty bool
}

type analyticState struct {
	spec      *validate.BoundAnalytic
	partEvals []expr.Evaluator
	orderEval expr.Evaluator
	argEval   expr.Evaluator // nil for COUNT(*)
	// newAcc builds a fresh accumulator for this call, resolved once at
	// construction so per-tuple state decodes stay off the UDAF registry lock.
	newAcc func() Accumulator
	idx    byte
	// partVals is the per-tuple partition-value scratch (tasks are
	// single-goroutine, so one buffer per call suffices).
	partVals []any
	// pkMemo caches encoded group keys for the common single-int64
	// partition column (PARTITION BY productId), skipping the per-tuple
	// ObjectSerde encode. Bounded: cardinality past pkMemoCap falls back to
	// encoding.
	pkMemo map[int64][]byte
}

// pkMemoCap bounds the group-key memo; the window state itself holds one row
// per group, so the memo never exceeds the state's own key cardinality until
// this cap.
const pkMemoCap = 1 << 16

// groupKey returns the encoded partition key for the tuple's partition
// values, memoized for single-int64 partitions.
func (c *analyticState) groupKey(g serde.ObjectSerde) ([]byte, error) {
	if len(c.partVals) == 1 {
		if v, ok := c.partVals[0].(int64); ok {
			if pk, ok := c.pkMemo[v]; ok {
				return pk, nil
			}
			pk, err := encodeGroupKey(g, c.partVals)
			if err != nil {
				return nil, err
			}
			if c.pkMemo == nil {
				c.pkMemo = make(map[int64][]byte)
			}
			if len(c.pkMemo) < pkMemoCap {
				c.pkMemo[v] = pk
			}
			return pk, nil
		}
	}
	return encodeGroupKey(g, c.partVals)
}

// NewSlidingWindowOp compiles the analytic calls.
func NewSlidingWindowOp(calls []*validate.BoundAnalytic) (*SlidingWindowOp, error) {
	if len(calls) > 255 {
		return nil, fmt.Errorf("operators: too many analytic calls (%d)", len(calls))
	}
	op := &SlidingWindowOp{}
	for i, c := range calls {
		st := &analyticState{spec: c, idx: byte(i)}
		for _, p := range c.PartitionBy {
			ev, err := expr.Compile(p)
			if err != nil {
				return nil, err
			}
			st.partEvals = append(st.partEvals, ev)
		}
		ev, err := expr.Compile(c.OrderBy)
		if err != nil {
			return nil, err
		}
		st.orderEval = ev
		if c.Arg != nil {
			ae, err := expr.Compile(c.Arg)
			if err != nil {
				return nil, err
			}
			st.argEval = ae
		}
		ctor, err := AccumCtorFor(c.Fn)
		if err != nil {
			return nil, err
		}
		st.newAcc = ctor
		op.calls = append(op.calls, st)
	}
	return op, nil
}

// Open implements Operator.
func (o *SlidingWindowOp) Open(ctx *OpContext) error {
	o.store = ctx.Store(SlidingStoreName)
	o.msgStore = o.store
	if c, ok := o.store.(kv.ObjectCache); ok {
		o.cache = c
		o.msgStore = c.Uncached()
		// Bound once: a method value allocates, and the encoder is handed to
		// the cache on every state save.
		o.encState = o.encodeState
	}
	return nil
}

// encodeState is the deferred ObjectEncoder for cached window state; the
// cache invokes it at commit flush or eviction, so a partition rewritten N
// times per interval is encoded once.
func (o *SlidingWindowOp) encodeState(obj any) ([]byte, error) {
	ws := obj.(*windowState)
	return o.obj.Encode([]any{ws.acc.Snapshot(), ws.count, []any(ws.offsets)})
}

// Process implements Operator (Algorithm 1). Re-delivered messages are
// detected via the last-applied offset carried in each window state row and
// produce no state change and no output (exactly-once, §4.3).
//
//samzasql:hotpath
func (o *SlidingWindowOp) Process(_ int, t *Tuple, emit Emit) error {
	out := append([]any(nil), t.Row...)
	replay := false
	for i, call := range o.calls {
		v, seen, err := o.processCall(call, t)
		if err != nil {
			return err
		}
		if i == 0 && seen {
			replay = true
		}
		out = append(out, v)
	}
	if replay {
		return nil
	}
	return emit(&Tuple{
		Row: out, Ts: t.Ts, Key: t.Key,
		Stream: t.Stream, Partition: t.Partition, Offset: t.Offset,
	})
}

//samzasql:hotpath
func (o *SlidingWindowOp) processCall(c *analyticState, t *Tuple) (any, bool, error) {
	// Partition key for window state.
	if c.partVals == nil {
		c.partVals = make([]any, len(c.partEvals))
	}
	for i, ev := range c.partEvals {
		v, err := ev(t.Row)
		if err != nil {
			return nil, false, err
		}
		c.partVals[i] = v
	}
	pk, err := c.groupKey(o.obj)
	if err != nil {
		return nil, false, err
	}
	// Window ordering value (the tuple timestamp; §3.8 assumes it
	// monotonically increases per partition).
	ov, err := c.orderEval(t.Row)
	if err != nil {
		return nil, false, err
	}
	ts, ok := ov.(int64)
	if !ok {
		return nil, false, fmt.Errorf("operators: ORDER BY value is %T", ov)
	}
	// The aggregate input value (a non-nil marker for COUNT(*)).
	var arg any = int64(1)
	if c.argEval != nil {
		arg, err = c.argEval(t.Row)
		if err != nil {
			return nil, false, err
		}
	}

	// 1. Load window state (aggregate values, bounds, applied offsets) —
	// from the object cache when resident, decoding from bytes otherwise.
	o.sbuf = appendStateKey(o.sbuf[:0], c.idx, pk)
	sk := o.sbuf
	//samzasql:ignore hotpath-blocking -- the task store mutex is per-task single-writer and uncontended by design; skiplist access under it is the state-access contract
	ws, err := o.loadCallState(c, sk)
	if err != nil {
		return nil, false, err
	}
	// Replayed message: state already reflects it; report current value.
	src := o.sources.key(t)
	if ws.offsets.seen(src, t.Offset) {
		return ws.acc.Value(), true, nil
	}
	if err := o.foldTuple(c, ws, pk, ts, arg, t.Offset); err != nil {
		return nil, false, err
	}
	// 6. Persist state.
	ws.offsets = ws.offsets.update(src, t.Offset)
	//samzasql:ignore hotpath-blocking -- the task store mutex is per-task single-writer and uncontended by design; skiplist access under it is the state-access contract
	if err := o.saveCallState(sk, ws); err != nil {
		return nil, false, err
	}
	return ws.acc.Value(), false, nil
}

// foldTuple applies one tuple's contribution to a loaded window state:
// Algorithm 1 steps 2–5 (save contribution, purge expired, fold, rebuild
// non-invertible aggregates). Replay detection and state persistence stay
// with the caller — the scalar path saves per tuple, the block path once
// per key per block.
//
//samzasql:hotpath
func (o *SlidingWindowOp) foldTuple(c *analyticState, ws *windowState, pk []byte, ts int64, arg any, offset int64) error {
	ws.count++

	// 2. Save the message's window contribution in the message store.
	var err error
	o.kbuf = appendMsgKey(o.kbuf[:0], c.idx, pk, ts, offset)
	o.vbuf, err = o.encodeContribution(o.vbuf[:0], ts, arg)
	if err != nil {
		return err
	}
	//samzasql:ignore hotpath-blocking -- the task store mutex is per-task single-writer and uncontended by design; skiplist access under it is the state-access contract
	o.msgStore.Put(o.kbuf, o.vbuf)

	// 3. Purge expired messages, adjusting aggregate values.
	rebuild := false
	o.pbuf = appendMsgPrefix(o.pbuf[:0], c.idx, pk)
	prefix := o.pbuf
	if !c.spec.Unbounded {
		if c.spec.IsRows {
			// Keep the last FrameRows+1 contributions.
			keep := c.spec.FrameRows + 1
			if ws.count > keep {
				//samzasql:ignore hotpath-blocking -- the task store mutex is per-task single-writer and uncontended by design; skiplist access under it is the state-access contract
				entries := o.msgStore.Range(prefix, prefixEnd(prefix), int(ws.count-keep))
				for _, e := range entries {
					//samzasql:ignore hotpath-blocking -- the task store mutex is per-task single-writer and uncontended by design; skiplist access under it is the state-access contract
					if err := o.dropEntry(ws.acc, e, &rebuild); err != nil {
						return err
					}
					ws.count--
				}
			}
		} else if cutoff := ts - c.spec.FrameMillis; cutoff > 0 {
			// RANGE frame: drop contributions older than ts - frame.
			// (cutoff <= 0 cannot match any Unix-milli timestamp, and a
			// negative value would wrap in the unsigned key encoding.)
			o.ebuf = appendMsgKey(o.ebuf[:0], c.idx, pk, cutoff, 0)
			//samzasql:ignore hotpath-blocking -- the task store mutex is per-task single-writer and uncontended by design; skiplist access under it is the state-access contract
			entries := o.msgStore.Range(prefix, o.ebuf, 0)
			for _, e := range entries {
				//samzasql:ignore hotpath-blocking -- the task store mutex is per-task single-writer and uncontended by design; skiplist access under it is the state-access contract
				if err := o.dropEntry(ws.acc, e, &rebuild); err != nil {
					return err
				}
				ws.count--
			}
		}
	}
	// 4. Fold in the current tuple.
	if err := ws.acc.Add(arg); err != nil {
		return err
	}
	// 5. Non-invertible aggregates (MIN/MAX, non-invertible UDAFs) rebuild
	// from the retained window after a purge.
	if rebuild && !ws.acc.Invertible() {
		fresh := c.newAcc()
		//samzasql:ignore hotpath-blocking -- the task store mutex is per-task single-writer and uncontended by design; skiplist access under it is the state-access contract
		for _, e := range o.msgStore.Range(prefix, prefixEnd(prefix), 0) {
			val, err := o.decodeContribution(e.Value)
			if err != nil {
				return err
			}
			if err := fresh.Add(val); err != nil {
				return err
			}
		}
		ws.acc = fresh
	}
	return nil
}

// dropEntry removes one expired message contribution.
func (o *SlidingWindowOp) dropEntry(acc Accumulator, e kv.Entry, rebuild *bool) error {
	val, err := o.decodeContribution(e.Value)
	if err != nil {
		return err
	}
	if acc.Invertible() {
		if err := acc.Remove(val); err != nil {
			return err
		}
	} else {
		*rebuild = true
	}
	o.msgStore.Delete(e.Key)
	return nil
}

// Contribution value codec: the overwhelmingly common int64 argument encodes
// as a fixed 17-byte record {1, ts, value}, skipping the ObjectSerde round
// trip each tuple pays on save and each purge pays on drop; other argument
// types wrap the ObjectSerde row [ts, value] behind a 0 marker.
func (o *SlidingWindowOp) encodeContribution(buf []byte, ts int64, arg any) ([]byte, error) {
	if v, ok := arg.(int64); ok {
		var b [8]byte
		buf = append(buf, 1)
		binary.BigEndian.PutUint64(b[:], uint64(ts))
		buf = append(buf, b[:]...)
		binary.BigEndian.PutUint64(b[:], uint64(v))
		return append(buf, b[:]...), nil
	}
	row, err := o.obj.Encode([]any{ts, arg})
	if err != nil {
		return nil, err
	}
	return append(append(buf, 0), row...), nil
}

// decodeContribution returns the aggregate input value of one stored
// contribution.
func (o *SlidingWindowOp) decodeContribution(v []byte) (any, error) {
	if len(v) == 17 && v[0] == 1 {
		return int64(binary.BigEndian.Uint64(v[9:])), nil
	}
	if len(v) == 0 || v[0] != 0 {
		return nil, fmt.Errorf("operators: bad window contribution encoding (%d bytes)", len(v))
	}
	contrib, err := o.obj.Decode(v[1:])
	if err != nil {
		return nil, err
	}
	return contrib.([]any)[1], nil
}

// appendMsgPrefix appends "m" + callIdx + len(pk) + pk to buf; fixed-width so
// ts ordering inside the prefix is the byte ordering. The append-style
// helpers let the hot path reuse per-operator scratch buffers.
func appendMsgPrefix(buf []byte, idx byte, pk []byte) []byte {
	buf = append(buf, 'm', idx)
	var l [2]byte
	binary.BigEndian.PutUint16(l[:], uint16(len(pk)))
	buf = append(buf, l[:]...)
	return append(buf, pk...)
}

func appendMsgKey(buf []byte, idx byte, pk []byte, ts, offset int64) []byte {
	buf = appendMsgPrefix(buf, idx, pk)
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(ts))
	buf = append(buf, b[:]...)
	binary.BigEndian.PutUint64(b[:], uint64(offset))
	return append(buf, b[:]...)
}

// prefixEnd returns the smallest key greater than every key with prefix p.
func prefixEnd(p []byte) []byte {
	out := append([]byte(nil), p...)
	for i := len(out) - 1; i >= 0; i-- {
		if out[i] != 0xff {
			out[i]++
			return out[:i+1]
		}
	}
	return nil // prefix is all 0xff: scan to the end
}

func appendStateKey(buf []byte, idx byte, pk []byte) []byte {
	buf = append(buf, 's', idx)
	return append(buf, pk...)
}

// loadCallState returns the window state stored under state key sk. On a
// cache hit the decoded windowState comes back as-is — no Get, no Decode.
// Otherwise the state row [accumulatorSnapshot, count, offsetVector] is read
// and decoded, and the decoded form is memoized for subsequent tuples.
func (o *SlidingWindowOp) loadCallState(c *analyticState, sk []byte) (*windowState, error) {
	if o.cache != nil {
		if obj, ok := o.cache.GetObject(sk); ok {
			return obj.(*windowState), nil
		}
	}
	v, ok := o.store.Get(sk)
	ws, err := o.decodeCallState(c, v, ok)
	if err != nil {
		return nil, err
	}
	if o.cache != nil {
		o.cache.CacheObject(sk, ws)
	}
	return ws, nil
}

// decodeCallState builds a windowState from stored bytes; ok=false yields a
// fresh empty state. Shared by the scalar load path and the block path's
// batched miss fill.
func (o *SlidingWindowOp) decodeCallState(c *analyticState, v []byte, ok bool) (*windowState, error) {
	ws := &windowState{acc: c.newAcc()}
	if ok {
		snap, err := o.obj.Decode(v)
		if err != nil {
			return nil, err
		}
		row := snap.([]any)
		if len(row) != 3 {
			return nil, fmt.Errorf("operators: window state has %d fields", len(row))
		}
		accSnap, ok := row[0].([]any)
		if !ok {
			return nil, fmt.Errorf("operators: window state snapshot is %T", row[0])
		}
		if err := ws.acc.Restore(accSnap); err != nil {
			return nil, err
		}
		ws.count, _ = row[1].(int64)
		vec, _ := row[2].([]any)
		ws.offsets = offsetVector(vec)
	}
	return ws, nil
}

// saveCallState persists the window state under sk. With the cache the
// object is stored as-is and encoding defers to flush/eviction; without it
// the row is encoded and written per tuple, the paper-faithful baseline.
func (o *SlidingWindowOp) saveCallState(sk []byte, ws *windowState) error {
	if o.cache != nil {
		o.cache.PutObject(sk, ws, o.encState)
		return nil
	}
	v, err := o.encodeState(ws)
	if err != nil {
		return err
	}
	o.store.Put(sk, v)
	return nil
}

package bench

import "testing"

// TestWindowStoreModesRecoverIdenticalState runs the same window workload
// with the state-store performance layer off (write-through baseline) and on
// (LRU cache + commit-scoped batching) and requires the changelog-restored
// state to be byte-identical: the layer may only change how fast state gets
// there, never what a restarted task recovers.
func TestWindowStoreModesRecoverIdenticalState(t *testing.T) {
	cfg := DefaultWindowStoreConfig()
	cfg.Tuples = 5000
	cfg.Keys = 20
	cfg.CommitEvery = 250
	cfg.WindowMillis = 10_000 // 1000-tuple window at the 10ms tuple spacing

	baseline, err := RunWindowStore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tuned := cfg
	tuned.StoreCacheSize = 64
	tuned.WriteBatchSize = 100
	cached, err := RunWindowStore(tuned)
	if err != nil {
		t.Fatal(err)
	}

	if baseline.RestoredKeys == 0 {
		t.Fatal("baseline run restored no keys from the changelog")
	}
	if cached.RestoredKeys != baseline.RestoredKeys {
		t.Fatalf("restored key counts differ: cached %d, baseline %d",
			cached.RestoredKeys, baseline.RestoredKeys)
	}
	if cached.StateDigest != baseline.StateDigest {
		t.Fatalf("restored state digests differ: cached %s, baseline %s",
			cached.StateDigest, baseline.StateDigest)
	}
	if cached.CacheHits == 0 {
		t.Fatal("cached run recorded no cache hits")
	}
	// Dedup must show on the changelog: the cached run writes each window
	// state row once per commit interval instead of once per tuple.
	if cached.ChangelogRecords >= baseline.ChangelogRecords {
		t.Fatalf("cached run wrote %d changelog records, baseline %d; batching should dedup",
			cached.ChangelogRecords, baseline.ChangelogRecords)
	}
}

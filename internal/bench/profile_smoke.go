package bench

import (
	"context"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"samzasql/internal/kafka"
	"samzasql/internal/monitor"
	"samzasql/internal/samza"
)

// spinFilterTask burns CPU per message before filtering, so every profile
// capture window has samples to attribute and the pre-loaded backlog drains
// over many windows — the profiling analog of the monitor smoke's
// throttled task (a sleep would idle the CPU sampler instead).
type spinFilterTask struct {
	NativeFilterTask
	spins int
	sink  int64
}

func (t *spinFilterTask) Process(env samza.IncomingMessageEnvelope, c samza.MessageCollector, coord samza.Coordinator) error {
	for i := 0; i < t.spins; i++ {
		t.sink += int64(i * i)
	}
	return t.NativeFilterTask.Process(env, c, coord)
}

// ProfileSmokeReport is what RunProfileSmoke measured and verified.
type ProfileSmokeReport struct {
	Addr string
	// Messages is the drained workload size.
	Messages int
	// Containers is how many distinct containers contributed CPU batches to
	// the merged /profile answer (must be >= 2).
	Containers int
	// Functions is the merged top-N size /profile returned.
	Functions int
	// TopFunction is the hottest merged function by flat CPU.
	TopFunction string
	// Artifacts lists the raw /profile JSON files written for CI upload.
	Artifacts []string
}

// RunProfileSmoke is the CI smoke behind `make profile-smoke` and
// `-figure profile-smoke`: a two-container profiled job drains a CPU-bound
// backlog while the monitor tails __profiles; the check asserts over HTTP
// that /profile answers a cluster-merged, non-empty top-N with
// contributions from both containers, then saves the raw JSON answers as
// CI artifacts.
func RunProfileSmoke(messages int, artifactsDir string) (ProfileSmokeReport, error) {
	cfg := DefaultConfig()
	cfg.Messages = messages
	cfg.Partitions = 4
	cfg.Containers = 2
	cfg.Monitor = true
	cfg.MetricsInterval = 10 * time.Millisecond
	cfg.ProfileInterval = 40 * time.Millisecond
	cfg.ProfileWindow = 20 * time.Millisecond
	e, err := newEnv(cfg)
	if err != nil {
		return ProfileSmokeReport{}, err
	}
	_, stopMon, err := e.startMonitor(cfg, nil)
	if err != nil {
		return ProfileSmokeReport{}, err
	}
	defer stopMon()
	addr, shutdown, err := e.runner.ServeIntrospection("127.0.0.1:0")
	if err != nil {
		return ProfileSmokeReport{}, err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		_ = shutdown(ctx)
	}()
	if err := e.loadOrders(cfg); err != nil {
		return ProfileSmokeReport{}, err
	}
	outTopic := "bench-out"
	if err := e.broker.EnsureTopic(outTopic, kafka.TopicConfig{Partitions: cfg.Partitions}); err != nil {
		return ProfileSmokeReport{}, err
	}

	const jobName = "profile-smoke"
	job := &samza.JobSpec{
		Name:            jobName,
		Inputs:          []samza.StreamSpec{{Topic: "orders"}},
		Containers:      cfg.Containers,
		CommitEvery:     1000,
		MetricsInterval: cfg.MetricsInterval,
		ProfileInterval: cfg.ProfileInterval,
		ProfileWindow:   cfg.ProfileWindow,
		Config:          map[string]string{},
		TaskFactory: func() samza.StreamTask {
			return &spinFilterTask{NativeFilterTask: NativeFilterTask{Output: outTopic}, spins: 20_000}
		},
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	start := time.Now()
	rj, err := e.runner.Submit(ctx, job)
	if err != nil {
		return ProfileSmokeReport{}, err
	}
	defer rj.Stop()
	base := "http://" + addr

	// The smoke's contract is the HTTP surface: /profile must merge CPU
	// batches from both containers into a non-empty top-N while the job
	// drains.
	profileURL := base + "/profile?top=20&window=1m&job=" + jobName
	var resp monitor.ProfileResponse
	if err := awaitHTTP(base+"/profile", smokeTimeout, func() (bool, error) {
		if err := getJSON(profileURL, &resp); err != nil {
			return false, nil
		}
		return resp.Containers >= 2 && len(resp.Functions) > 0, nil
	}); err != nil {
		return ProfileSmokeReport{}, fmt.Errorf("profile smoke: /profile never merged cpu batches from both containers: %w", err)
	}
	for _, f := range resp.Functions {
		if f.Name == "" || f.Cum < f.Flat {
			return ProfileSmokeReport{}, fmt.Errorf("profile smoke: malformed hot function %+v", f)
		}
	}
	if _, err := awaitProcessed(rj, int64(messages), start, smokeTimeout); err != nil {
		return ProfileSmokeReport{}, err
	}

	report := ProfileSmokeReport{
		Addr:        addr,
		Messages:    messages,
		Containers:  resp.Containers,
		Functions:   len(resp.Functions),
		TopFunction: resp.Functions[0].Name,
	}
	// Save the raw per-kind answers for CI artifact upload.
	if artifactsDir != "" {
		if err := os.MkdirAll(artifactsDir, 0o755); err != nil {
			return ProfileSmokeReport{}, fmt.Errorf("profile smoke: artifacts dir: %w", err)
		}
		for _, kind := range []string{monitor.HotKindCPU, monitor.HotKindHeap, monitor.HotKindGoroutine} {
			path := filepath.Join(artifactsDir, "profile-"+kind+".json")
			if err := saveURL(base+"/profile?top=64&window=5m&kind="+kind+"&job="+jobName, path); err != nil {
				return ProfileSmokeReport{}, fmt.Errorf("profile smoke: saving %s artifact: %w", kind, err)
			}
			report.Artifacts = append(report.Artifacts, path)
		}
	}
	return report, nil
}

// saveURL fetches a URL and writes the raw body to path.
func saveURL(url, path string) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := f.ReadFrom(resp.Body); err != nil {
		return err
	}
	return nil
}

// FormatProfileSmoke renders the smoke outcome for the terminal and CI log.
func FormatProfileSmoke(r ProfileSmokeReport) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "profile smoke (%d messages, introspection on %s)\n", r.Messages, r.Addr)
	fmt.Fprintf(&sb, "  /profile merged %d functions from %d containers; hottest: %s\n",
		r.Functions, r.Containers, r.TopFunction)
	if len(r.Artifacts) > 0 {
		fmt.Fprintf(&sb, "  artifacts: %s\n", strings.Join(r.Artifacts, ", "))
	}
	return sb.String()
}

package bench

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"samzasql/internal/monitor"
	"samzasql/internal/profile"
)

// ProfileMode is one point of the profiler-overhead sweep.
type ProfileMode struct {
	Name     string
	Interval time.Duration
	Window   time.Duration
}

// ProfileOverheadModes are the sweep points: off, the always-on default
// (1s interval, 200ms window — 20% CPU-sampling duty), and aggressive
// (window == interval — the CPU sampler never stops).
var ProfileOverheadModes = []ProfileMode{
	{Name: "off"},
	{Name: "default", Interval: profile.DefaultInterval, Window: profile.DefaultWindow},
	{Name: "aggressive", Interval: 250 * time.Millisecond, Window: 250 * time.Millisecond},
}

// ProfileOverheadRow is one measured (query, mode) point.
type ProfileOverheadRow struct {
	Query string
	Mode  string
	// Throughput is the best-of-rounds messages/second — best-of, not mean,
	// so scheduler noise doesn't masquerade as profiling overhead.
	Throughput float64
	// OverheadPct is the throughput loss versus the off row of the same
	// query, in percent (0 for the baseline itself).
	OverheadPct float64
}

// RunProfileOverhead measures continuous-profiling overhead on the filter
// benchmark across ProfileOverheadModes, taking the best of rounds runs per
// point. The acceptance bar: the default mode must stay within ~5% of the
// profiler-off baseline.
func RunProfileOverhead(messages, rounds int) ([]ProfileOverheadRow, error) {
	if rounds < 1 {
		rounds = 1
	}
	var rows []ProfileOverheadRow
	const query = "filter"
	var baseline float64
	for _, mode := range ProfileOverheadModes {
		cfg := DefaultConfig()
		cfg.Messages = messages
		cfg.ProfileInterval = mode.Interval
		cfg.ProfileWindow = mode.Window
		best := 0.0
		for i := 0; i < rounds; i++ {
			res, err := RunSQL(query, cfg)
			if err != nil {
				return nil, fmt.Errorf("bench: profile overhead %s mode %s: %w", query, mode.Name, err)
			}
			if res.Throughput > best {
				best = res.Throughput
			}
		}
		row := ProfileOverheadRow{Query: query, Mode: mode.Name, Throughput: best}
		if mode.Name == "off" {
			baseline = best
		} else if baseline > 0 {
			row.OverheadPct = (baseline - best) / baseline * 100
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatProfileOverhead renders the sweep as an aligned table.
func FormatProfileOverhead(rows []ProfileOverheadRow) string {
	var b strings.Builder
	b.WriteString("Continuous-profiling overhead (best-of-N throughput, msg/s)\n")
	fmt.Fprintf(&b, "%-10s %-12s %14s %10s\n", "query", "mode", "throughput", "overhead")
	for _, r := range rows {
		overhead := "baseline"
		if r.Mode != "off" {
			overhead = fmt.Sprintf("%+.1f%%", r.OverheadPct)
		}
		fmt.Fprintf(&b, "%-10s %-12s %14.0f %10s\n", r.Query, r.Mode, r.Throughput, overhead)
	}
	return b.String()
}

// hotFunctionsTopN bounds the hot-function list a profiled run records.
const hotFunctionsTopN = 15

// CollectHotFunctions runs one profiled, monitored filter benchmark and
// returns the cluster-merged CPU hot-function list as flat-share
// percentages — the per-function baseline `make bench-compare` attributes
// ratio regressions against. Shares (not absolute nanoseconds) compare
// across machines of different speeds.
func CollectHotFunctions(messages int) ([]HotFunctionReport, error) {
	cfg := DefaultConfig()
	cfg.Messages = messages
	cfg.Monitor = true
	// Aggressive capture: short runs need the CPU sampler always on to
	// attribute enough samples.
	cfg.ProfileInterval = 150 * time.Millisecond
	cfg.ProfileWindow = 150 * time.Millisecond
	res, err := RunSQLProfiled("filter", cfg)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// RunSQLProfiled is RunSQL plus hot-function collection: it keeps the
// monitor handle long enough to read the hot store after the run drains.
func RunSQLProfiled(query string, cfg Config) ([]HotFunctionReport, error) {
	sql, ok := Queries[query]
	if !ok {
		return nil, fmt.Errorf("bench: unknown SQL query %q", query)
	}
	if cfg.MetricsInterval <= 0 {
		cfg.MetricsInterval = 10 * time.Millisecond
	}
	cfg.Monitor = true
	e, err := newEnv(cfg)
	if err != nil {
		return nil, err
	}
	mon, stopMon, err := e.startMonitor(cfg, nil)
	if err != nil {
		return nil, err
	}
	defer stopMon()
	if err := e.loadOrders(cfg); err != nil {
		return nil, err
	}
	e.engine.Containers = cfg.Containers
	e.engine.ProfileInterval = cfg.ProfileInterval
	e.engine.ProfileWindow = cfg.ProfileWindow
	e.engine.MetricsInterval = cfg.MetricsInterval

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	start := time.Now()
	p, rj, err := e.engine.ExecuteStream(ctx, sql)
	if err != nil {
		return nil, err
	}
	if _, err := awaitProcessed(rj, int64(cfg.Messages), start, benchTimeout); err != nil {
		rj.Stop()
		return nil, err
	}
	// Wait for CPU-bearing batches to reach the monitor, then let the tail
	// of the stream drain before reading the final merged list.
	deadline := time.Now().Add(10 * time.Second)
	var funcs []monitor.HotFunc
	for time.Now().Before(deadline) {
		funcs, _ = mon.HotStore().TopN(p.JobName, monitor.HotKindCPU, hotFunctionsTopN, 0)
		if len(funcs) > 0 {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if len(funcs) > 0 {
		time.Sleep(300 * time.Millisecond)
		funcs, _ = mon.HotStore().TopN(p.JobName, monitor.HotKindCPU, hotFunctionsTopN, 0)
	}
	rj.Stop()
	if len(funcs) == 0 {
		return nil, fmt.Errorf("bench: profiled %s run yielded no cpu hot functions", query)
	}
	var total int64
	for _, f := range funcs {
		total += f.Flat
	}
	out := make([]HotFunctionReport, 0, len(funcs))
	for _, f := range funcs {
		r := HotFunctionReport{Name: f.Name}
		if total > 0 {
			r.FlatPct = 100 * float64(f.Flat) / float64(total)
			r.CumPct = 100 * float64(f.Cum) / float64(total)
		}
		out = append(out, r)
	}
	return out, nil
}

// FormatHotFunctions renders a collected hot-function baseline.
func FormatHotFunctions(funcs []HotFunctionReport) string {
	var sb strings.Builder
	sb.WriteString("CPU hot functions (profiled filter run, share of sampled CPU)\n")
	fmt.Fprintf(&sb, "%-56s %9s %9s\n", "function", "flat", "cum")
	for _, f := range funcs {
		fmt.Fprintf(&sb, "%-56s %8.1f%% %8.1f%%\n", f.Name, f.FlatPct, f.CumPct)
	}
	return sb.String()
}

// HotShift is one function's flat-share change between a baseline report
// and a fresh profiled run.
type HotShift struct {
	Name string
	// OldPct/NewPct are flat shares of sampled CPU in percent; 0 when the
	// function is absent from that side.
	OldPct float64
	NewPct float64
	Delta  float64
}

// CompareHotFunctions diffs two hot-function lists by flat share, returning
// the biggest risers first — the attribution table a flagged ratio
// regression prints so the offending function arrives with the alarm.
func CompareHotFunctions(baseline, fresh []HotFunctionReport) []HotShift {
	old := map[string]float64{}
	for _, f := range baseline {
		old[f.Name] = f.FlatPct
	}
	seen := map[string]bool{}
	var out []HotShift
	for _, f := range fresh {
		seen[f.Name] = true
		out = append(out, HotShift{Name: f.Name, OldPct: old[f.Name], NewPct: f.FlatPct, Delta: f.FlatPct - old[f.Name]})
	}
	for _, f := range baseline {
		if !seen[f.Name] {
			out = append(out, HotShift{Name: f.Name, OldPct: f.FlatPct, Delta: -f.FlatPct})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Delta > out[j].Delta })
	return out
}

// FormatHotShifts renders the top risers of a hot-function comparison.
func FormatHotShifts(shifts []HotShift, top int) string {
	if len(shifts) == 0 {
		return "(no hot-function baseline to attribute against)\n"
	}
	if top > 0 && len(shifts) > top {
		shifts = shifts[:top]
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-56s %9s %9s %9s\n", "hot function (cpu flat share)", "base", "current", "delta")
	for _, s := range shifts {
		fmt.Fprintf(&sb, "%-56s %8.1f%% %8.1f%% %+8.1f%%\n", s.Name, s.OldPct, s.NewPct, s.Delta)
	}
	return sb.String()
}

package bench

import (
	_ "embed"
	"fmt"
	"strings"
)

//go:embed native.go
var nativeSource string

// LOCRow compares implementation effort for one query (§5's usability
// discussion: "streaming jobs implemented using Samza's Java API will
// contain more than 100 lines for sliding window queries, more than 50
// lines for simple stream-to-relation join and around 20 to 30 lines for
// filter and project queries").
type LOCRow struct {
	Query     string
	SQLLines  int
	TaskLines int
	// PaperTaskLines is the paper's reported native size for reference.
	PaperTaskLines string
}

// locMarkers maps queries to their marker names in native.go.
var locMarkers = map[string]string{
	"filter":  "filter",
	"project": "project",
	"join":    "join",
	"window":  "window",
}

var paperLOC = map[string]string{
	"filter":  "20-30",
	"project": "20-30",
	"join":    ">50",
	"window":  ">100",
}

// CountTaskLines counts the non-blank, non-comment lines of a native task
// implementation between its loc markers in this package's source.
func CountTaskLines(query string) (int, error) {
	marker, ok := locMarkers[query]
	if !ok {
		return 0, fmt.Errorf("bench: no LOC marker for %q", query)
	}
	begin := fmt.Sprintf("// loc:%s:begin", marker)
	end := fmt.Sprintf("// loc:%s:end", marker)
	i := strings.Index(nativeSource, begin)
	j := strings.Index(nativeSource, end)
	if i < 0 || j < 0 || j < i {
		return 0, fmt.Errorf("bench: markers for %q not found", query)
	}
	count := 0
	for _, line := range strings.Split(nativeSource[i+len(begin):j], "\n") {
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || strings.HasPrefix(trimmed, "//") {
			continue
		}
		count++
	}
	return count, nil
}

// CountSQLLines counts the lines of a benchmark query's SQL text.
func CountSQLLines(query string) (int, error) {
	sql, ok := Queries[query]
	if !ok {
		return 0, fmt.Errorf("bench: unknown query %q", query)
	}
	return len(strings.Split(strings.TrimSpace(sql), "\n")), nil
}

// LOCTable builds the usability comparison for all four queries.
func LOCTable() ([]LOCRow, error) {
	var rows []LOCRow
	for _, q := range []string{"filter", "project", "window", "join"} {
		sqlLines, err := CountSQLLines(q)
		if err != nil {
			return nil, err
		}
		taskLines, err := CountTaskLines(q)
		if err != nil {
			return nil, err
		}
		rows = append(rows, LOCRow{
			Query:          q,
			SQLLines:       sqlLines,
			TaskLines:      taskLines,
			PaperTaskLines: paperLOC[q],
		})
	}
	return rows, nil
}

// FormatLOC renders the usability table.
func FormatLOC(rows []LOCRow) string {
	var sb strings.Builder
	sb.WriteString("Usability: query size in lines (paper §5, prose)\n")
	fmt.Fprintf(&sb, "  %-8s  %10s  %16s  %18s\n", "query", "SQL lines", "native Go lines", "paper native (Java)")
	for _, r := range rows {
		fmt.Fprintf(&sb, "  %-8s  %10d  %16d  %18s\n", r.Query, r.SQLLines, r.TaskLines, r.PaperTaskLines)
	}
	sb.WriteString("  (plus per-job configuration files that SamzaSQL generates automatically)\n")
	return sb.String()
}

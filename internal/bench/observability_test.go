package bench

import (
	"context"
	"strings"
	"testing"
	"time"

	"samzasql/internal/samza"
)

// TestFigureQueryPublishesSnapshots runs the Figure 5a filter query with the
// metrics snapshot reporter enabled and consumes the __metrics stream back,
// asserting the published telemetry carries per-task latency percentiles,
// per-operator counters and a consumer-lag gauge per input partition.
func TestFigureQueryPublishesSnapshots(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Messages = 2000
	cfg.Partitions = 4
	cfg.MetricsInterval = 5 * time.Millisecond
	e, err := newEnv(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.loadOrders(cfg); err != nil {
		t.Fatal(err)
	}
	e.engine.MetricsInterval = cfg.MetricsInterval

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, rj, err := e.engine.ExecuteStream(ctx, Queries["filter"])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := awaitProcessed(rj, int64(cfg.Messages), time.Now(), time.Minute); err != nil {
		t.Fatal(err)
	}
	// Let one interval tick land before the final flush.
	time.Sleep(15 * time.Millisecond)
	rj.Stop()

	tailer, err := samza.NewMetricsTailer(e.broker, samza.DefaultMetricsTopic)
	if err != nil {
		t.Fatal(err)
	}
	defer tailer.Close()
	tctx, tcancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer tcancel()
	var snaps []*samza.MetricsSnapshotMessage
	for len(snaps) < 2 {
		batch, err := tailer.Poll(tctx, 256)
		if err != nil {
			t.Fatalf("tailer poll after %d snapshots: %v", len(snaps), err)
		}
		snaps = append(snaps, batch...)
	}

	last := snaps[len(snaps)-1].Metrics
	// Per-task process-latency percentiles for every task of the job.
	for p := int32(0); p < cfg.Partitions; p++ {
		name := "task.Partition-" + string(rune('0'+p)) + ".process-ns"
		h, ok := last.Histograms[name]
		if !ok {
			t.Fatalf("final snapshot missing %s; histograms: %v", name, keysOf(last.Histograms))
		}
		if h.Count == 0 || h.P50 <= 0 || h.P99 < h.P50 || h.Max < h.P99 {
			t.Fatalf("%s percentiles implausible: %+v", name, h)
		}
	}
	// Per-operator counters from the instrumented router stages.
	var operatorCounters int
	for name := range last.Counters {
		if strings.HasPrefix(name, "operator.") && strings.HasSuffix(name, ".out") {
			operatorCounters++
		}
	}
	if operatorCounters == 0 {
		t.Fatalf("final snapshot has no operator.*.out counters: %v", keysOf(last.Counters))
	}
	if last.Counters["serde.bytes-in"] == 0 {
		t.Fatal("final snapshot shows no serde bytes in")
	}
	// One consumer-lag gauge per input partition, caught up at job end.
	for p := int32(0); p < cfg.Partitions; p++ {
		name := "kafka.lag.orders." + string(rune('0'+p))
		lag, ok := last.Gauges[name]
		if !ok {
			t.Fatalf("final snapshot missing %s; gauges: %v", name, keysOf(last.Gauges))
		}
		if lag != 0 {
			t.Fatalf("%s = %d after full drain, want 0", name, lag)
		}
	}
}

func keysOf[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

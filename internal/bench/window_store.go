package bench

import (
	"fmt"
	"hash/fnv"
	"runtime"
	"time"

	"samzasql/internal/kafka"
	"samzasql/internal/kv"
	"samzasql/internal/metrics"
	"samzasql/internal/operators"
	"samzasql/internal/sql/expr"
	"samzasql/internal/sql/types"
	"samzasql/internal/sql/validate"
)

// WindowStoreConfig sizes one sliding-window store micro-run: the SQL
// sliding-window operator (Algorithm 1) driven directly over a
// changelog-backed store stack, isolating store and serde cost from the rest
// of the job (consumers, routers, output produce).
type WindowStoreConfig struct {
	// Tuples processed by the run.
	Tuples int
	// Keys is the partition-key cardinality (distinct products).
	Keys int
	// CommitEvery flushes the store stack after this many tuples, modelling
	// the container's commit interval.
	CommitEvery int
	// StoreCacheSize > 0 puts a CachedStore on top of the stack; 0 is the
	// paper-faithful per-tuple path.
	StoreCacheSize int
	// WriteBatchSize > 1 batches changelog records until commit; <= 0 keeps
	// write-through mirroring (one produce per store write).
	WriteBatchSize int
	// WindowMillis is the sliding-window frame (paper: 5 minutes).
	WindowMillis int64
}

// DefaultWindowStoreConfig mirrors the Figure 6 workload at micro scale.
func DefaultWindowStoreConfig() WindowStoreConfig {
	return WindowStoreConfig{
		Tuples:       200_000,
		Keys:         100,
		CommitEvery:  1000,
		WindowMillis: 5 * 60 * 1000,
	}
}

// WindowStoreResult is one measured micro-run.
type WindowStoreResult struct {
	Tuples     int           `json:"tuples"`
	Elapsed    time.Duration `json:"elapsed_ns"`
	Throughput float64       `json:"tuples_per_sec"`
	// StoreReads/StoreWrites are the base skiplist's cumulative operation
	// counts; cache absorption shows up as these growing slower than tuples.
	StoreReads  int64 `json:"store_reads"`
	StoreWrites int64 `json:"store_writes"`
	// ChangelogRecords is the changelog partition's high watermark after the
	// final flush — write batching plus dedup shrinks it.
	ChangelogRecords int64 `json:"changelog_records"`
	CacheHits        int64 `json:"cache_hits,omitempty"`
	CacheMisses      int64 `json:"cache_misses,omitempty"`
	// FlushP95Ns/FlushP99Ns summarize commit-flush latency of the top of the
	// store stack.
	FlushP95Ns int64 `json:"flush_p95_ns,omitempty"`
	FlushP99Ns int64 `json:"flush_p99_ns,omitempty"`
	// RestoredKeys/StateDigest describe the state rebuilt from the changelog
	// after the run: batching and caching must not change what a restarted
	// task recovers, so the digest is identical across modes.
	RestoredKeys int    `json:"restored_keys"`
	StateDigest  string `json:"state_digest"`
}

// windowStoreSpec is the Figure 6 aggregation: SUM(units) over a 5-minute
// range frame partitioned by product.
func windowStoreSpec(windowMillis int64) *validate.BoundAnalytic {
	return &validate.BoundAnalytic{
		Fn:          "SUM",
		Arg:         &expr.ColRef{Idx: 1, Name: "units", T: types.Bigint},
		PartitionBy: []expr.Expr{&expr.ColRef{Idx: 2, Name: "pid", T: types.Bigint}},
		OrderBy:     &expr.ColRef{Idx: 0, Name: "ts", T: types.Timestamp},
		FrameMillis: windowMillis,
		T:           types.Bigint,
	}
}

// RunWindowStore drives the sliding-window operator over the full state
// stack — base skiplist, batched changelog mirror, instrumentation, and
// (when configured) the LRU object cache — flushing at each commit interval
// exactly as the container does. It backs BenchmarkSlidingWindow and the
// store-tuning rows of the JSON report.
func RunWindowStore(cfg WindowStoreConfig) (WindowStoreResult, error) {
	if cfg.Tuples <= 0 {
		return WindowStoreResult{}, fmt.Errorf("bench: window store run needs tuples > 0")
	}
	if cfg.Keys <= 0 {
		cfg.Keys = 1
	}
	if cfg.CommitEvery <= 0 {
		cfg.CommitEvery = 1000
	}
	op, err := operators.NewSlidingWindowOp([]*validate.BoundAnalytic{windowStoreSpec(cfg.WindowMillis)})
	if err != nil {
		return WindowStoreResult{}, err
	}

	broker := kafka.NewBroker()
	const topic = "bench-window-changelog"
	base := kv.NewStore()
	cl, err := kv.NewChangelogStore(base, broker, topic, 1, 0)
	if err != nil {
		return WindowStoreResult{}, err
	}
	reg := metrics.NewRegistry()
	var store kv.Store = kv.Instrument(cl, reg, "window")
	if cfg.StoreCacheSize > 0 {
		if cfg.WriteBatchSize > 0 {
			cl.SetWriteBatchSize(cfg.WriteBatchSize)
		}
		cached := kv.NewCachedStore(store, cfg.StoreCacheSize, cfg.WriteBatchSize)
		cached.BindMetrics(reg, "window")
		store = cached
	} else {
		// Paper-faithful baseline: every mirrored write reaches the changelog
		// immediately, as the container configures write-through jobs.
		cl.SetWriteBatchSize(1)
	}
	flush, _ := store.(kv.Flushable)

	ctx := &operators.OpContext{
		Store:   func(string) kv.Store { return store },
		Metrics: reg,
	}
	if err := op.Open(ctx); err != nil {
		return WindowStoreResult{}, err
	}
	emit := func(*operators.Tuple) error { return nil }

	// Start the timed section from a collected heap so leftover garbage from
	// setup (or a previous run in the same process) doesn't bill a GC cycle
	// to this run — the same hygiene testing.B applies between benchmarks.
	runtime.GC()
	start := time.Now()
	for i := 0; i < cfg.Tuples; i++ {
		ts := int64(1_600_000_000_000 + i*10)
		t := &operators.Tuple{
			Row:    []any{ts, int64(i % 97), int64(i % cfg.Keys)},
			Ts:     ts,
			Stream: "orders",
			Offset: int64(i),
		}
		if err := op.Process(0, t, emit); err != nil {
			return WindowStoreResult{}, err
		}
		if flush != nil && (i+1)%cfg.CommitEvery == 0 {
			if err := flush.Flush(); err != nil {
				return WindowStoreResult{}, err
			}
		}
	}
	if flush != nil {
		if err := flush.Flush(); err != nil {
			return WindowStoreResult{}, err
		}
	}
	elapsed := time.Since(start)

	hwm, err := broker.HighWatermark(kafka.TopicPartition{Topic: topic, Partition: 0})
	if err != nil {
		return WindowStoreResult{}, err
	}
	reads, writes := base.Stats()
	res := WindowStoreResult{
		Tuples:           cfg.Tuples,
		Elapsed:          elapsed,
		Throughput:       float64(cfg.Tuples) / elapsed.Seconds(),
		StoreReads:       reads,
		StoreWrites:      writes,
		ChangelogRecords: hwm,
	}
	snap := reg.Snapshot()
	res.CacheHits = snap.Counters["store.window.cache.hits"]
	res.CacheMisses = snap.Counters["store.window.cache.misses"]
	flushName := "store.window.flush-ns"
	if cfg.StoreCacheSize > 0 {
		flushName = "store.window.cache.flush-ns"
	}
	if h, ok := snap.Histograms[flushName]; ok {
		res.FlushP95Ns = h.P95
		res.FlushP99Ns = h.P99
	}

	// Rebuild state from the changelog exactly as a restarted task would and
	// digest it: caching and batching are pure performance layers, so the
	// recovered state must not depend on them.
	restored := kv.NewStore()
	rcl, err := kv.NewChangelogStore(restored, broker, topic, 1, 0)
	if err != nil {
		return WindowStoreResult{}, err
	}
	if err := rcl.Restore(); err != nil {
		return WindowStoreResult{}, err
	}
	digest := fnv.New64a()
	for _, e := range restored.Range(nil, nil, 0) {
		digest.Write(e.Key)
		digest.Write(e.Value)
	}
	res.RestoredKeys = restored.Len()
	res.StateDigest = fmt.Sprintf("%016x", digest.Sum64())
	return res, nil
}

// StoreTuningComparison is the cached-versus-baseline pair the ISSUE's
// acceptance bar measures: the same window workload with the state-store
// performance layer off (paper-faithful) and on.
type StoreTuningComparison struct {
	StoreCacheSize int               `json:"store_cache_size"`
	WriteBatchSize int               `json:"write_batch_size"`
	Baseline       WindowStoreResult `json:"baseline"`
	Cached         WindowStoreResult `json:"cached"`
	// Speedup is cached throughput over baseline throughput.
	Speedup float64 `json:"speedup"`
}

// storeTuningIterations is how many times each mode runs; the comparison
// keeps the fastest run per mode. GC pauses and scheduler preemption only
// ever slow a run down, so best-of-N converges on the workload's real cost
// the same way `go test -bench -count=N` plus benchstat's min does.
const storeTuningIterations = 5

// storeTuningMinTuples floors the comparison's run length. The 5-minute
// frame holds 30k tuples at the generator's 10ms spacing, so shorter runs
// spend most of their time filling the window; 200k tuples gives several
// window lengths of steady-state insert+expiry, which is what Figure 6
// actually measures, and is long enough for the throughput ratio to settle.
const storeTuningMinTuples = 200_000

// RunStoreTuning measures the comparison at the given scale. cacheSize and
// batchSize configure the tuned run; the baseline always runs with the cache
// off and write-through mirroring. The two modes alternate run-for-run so
// machine-wide drift (thermal, background load) lands on both sides evenly.
func RunStoreTuning(tuples, cacheSize, batchSize int) (StoreTuningComparison, error) {
	cfg := DefaultWindowStoreConfig()
	if tuples > 0 {
		cfg.Tuples = tuples
	}
	if cfg.Tuples < storeTuningMinTuples {
		cfg.Tuples = storeTuningMinTuples
	}
	if cacheSize <= 0 {
		cacheSize = 1024
	}
	if batchSize <= 0 {
		batchSize = kv.DefaultWriteBatchSize
	}
	tuned := cfg
	tuned.StoreCacheSize = cacheSize
	tuned.WriteBatchSize = batchSize
	var baseline, cached WindowStoreResult
	for i := 0; i < storeTuningIterations; i++ {
		b, err := RunWindowStore(cfg)
		if err != nil {
			return StoreTuningComparison{}, fmt.Errorf("bench: store tuning baseline: %w", err)
		}
		if b.Throughput > baseline.Throughput {
			baseline = b
		}
		c, err := RunWindowStore(tuned)
		if err != nil {
			return StoreTuningComparison{}, fmt.Errorf("bench: store tuning cached: %w", err)
		}
		if c.Throughput > cached.Throughput {
			cached = c
		}
	}
	return StoreTuningComparison{
		StoreCacheSize: cacheSize,
		WriteBatchSize: batchSize,
		Baseline:       baseline,
		Cached:         cached,
		Speedup:        cached.Throughput / baseline.Throughput,
	}, nil
}

// FormatStoreTuning renders the comparison for the terminal.
func FormatStoreTuning(c StoreTuningComparison) string {
	return fmt.Sprintf(`Sliding-window store tuning (cache %d entries, write batch %d)
  %-10s %14s %12s %12s %16s
  %-10s %14.0f %12d %12d %16d
  %-10s %14.0f %12d %12d %16d
  speedup: %.2fx
`,
		c.StoreCacheSize, c.WriteBatchSize,
		"mode", "tuples/sec", "base reads", "base writes", "changelog recs",
		"baseline", c.Baseline.Throughput, c.Baseline.StoreReads, c.Baseline.StoreWrites, c.Baseline.ChangelogRecords,
		"cached", c.Cached.Throughput, c.Cached.StoreReads, c.Cached.StoreWrites, c.Cached.ChangelogRecords,
		c.Speedup)
}

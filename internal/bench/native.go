// Package bench implements the paper's evaluation (§5): hand-written native
// Samza tasks for the four benchmark queries, a throughput harness that runs
// native-vs-SamzaSQL pairs across container counts, and the table/figure
// generators for Figures 5a, 5b, 5c and 6 plus the usability (lines-of-code)
// comparison the paper reports in prose.
package bench

import (
	"fmt"

	"samzasql/internal/avro"
	"samzasql/internal/kv"
	"samzasql/internal/samza"
	"samzasql/internal/workload"
)

// The native tasks below are written the way the paper describes its
// baseline jobs (§5.1): they operate directly on the incoming Avro bytes,
// avoiding SamzaSQL's AvroToArray/ArrayToAvro tuple transformation
// (Figure 4), and use Avro rather than a generic object serde for any local
// state. LOC markers bound each implementation for the usability table.

// loc:filter:begin

// NativeFilterTask is the hand-written equivalent of
// SELECT STREAM * FROM Orders WHERE units > 50: it reads the units field
// straight out of the wire bytes and forwards the message unmodified.
type NativeFilterTask struct {
	Output string
	codec  *avro.Codec
}

// Init implements samza.StreamTask.
func (t *NativeFilterTask) Init(ctx *samza.TaskContext) error {
	t.codec = avro.MustCodec(workload.OrdersSchema())
	return nil
}

// Process implements samza.StreamTask.
func (t *NativeFilterTask) Process(env samza.IncomingMessageEnvelope, c samza.MessageCollector, _ samza.Coordinator) error {
	units, err := t.codec.ReadField(env.Value, "units")
	if err != nil {
		return err
	}
	if units.(int64) <= 50 {
		return nil
	}
	return c.Send(samza.OutgoingMessageEnvelope{
		Stream:    t.Output,
		Partition: env.Partition,
		Key:       env.Key,
		Value:     env.Value, // unchanged bytes
		Timestamp: env.Timestamp,
	})
}

// loc:filter:end

// loc:project:begin

// NativeProjectTask is the hand-written equivalent of
// SELECT STREAM rowtime, productId, units FROM Orders: it copies the three
// field encodings directly from the incoming Avro message into a new one,
// never materializing a tuple.
type NativeProjectTask struct {
	Output string
	in     *avro.Codec
	out    *avro.Codec
}

// ProjectedSchema is the native project task's output schema.
func ProjectedSchema() *avro.Schema {
	return avro.Record("OrdersProjected",
		avro.F("rowtime", avro.Long()),
		avro.F("productId", avro.Long()),
		avro.F("units", avro.Long()),
	)
}

// Init implements samza.StreamTask.
func (t *NativeProjectTask) Init(ctx *samza.TaskContext) error {
	t.in = avro.MustCodec(workload.OrdersSchema())
	t.out = avro.MustCodec(ProjectedSchema())
	return nil
}

// Process implements samza.StreamTask.
func (t *NativeProjectTask) Process(env samza.IncomingMessageEnvelope, c samza.MessageCollector, _ samza.Coordinator) error {
	value, err := t.in.ProjectFields(env.Value, []string{"rowtime", "productId", "units"}, t.out)
	if err != nil {
		return err
	}
	return c.Send(samza.OutgoingMessageEnvelope{
		Stream:    t.Output,
		Partition: env.Partition,
		Key:       env.Key,
		Value:     value,
		Timestamp: env.Timestamp,
	})
}

// loc:project:end

// loc:join:begin

// NativeJoinTask is the hand-written equivalent of the stream-to-relation
// join of Listing 8. The Products changelog is a bootstrap input cached in
// the task's local store as raw Avro bytes; each order reads productId from
// the wire, looks the product up, decodes it with the Avro codec (the fast
// serde the paper contrasts with SamzaSQL's Kryo) and emits a hand-built
// output record.
type NativeJoinTask struct {
	Output        string
	OrdersTopic   string
	ProductsTopic string
	orders        *avro.Codec
	products      *avro.Codec
	out           *avro.Codec
	store         kv.Store
}

// JoinedSchema is the native join task's output schema.
func JoinedSchema() *avro.Schema {
	return avro.Record("OrdersEnriched",
		avro.F("rowtime", avro.Long()),
		avro.F("orderId", avro.Long()),
		avro.F("productId", avro.Long()),
		avro.F("units", avro.Long()),
		avro.F("supplierId", avro.Long()),
	)
}

// JoinStoreName names the native join task's local store.
const JoinStoreName = "native-join"

// Init implements samza.StreamTask.
func (t *NativeJoinTask) Init(ctx *samza.TaskContext) error {
	t.orders = avro.MustCodec(workload.OrdersSchema())
	t.products = avro.MustCodec(workload.ProductsSchema())
	t.out = avro.MustCodec(JoinedSchema())
	t.store = ctx.Store(JoinStoreName)
	return nil
}

// Process implements samza.StreamTask.
func (t *NativeJoinTask) Process(env samza.IncomingMessageEnvelope, c samza.MessageCollector, _ samza.Coordinator) error {
	if env.Stream == t.ProductsTopic {
		// Bootstrap/changelog side: cache raw Avro bytes by key.
		t.store.Put(env.Key, env.Value)
		return nil
	}
	row, err := t.orders.DecodeRow(env.Value, nil)
	if err != nil {
		return err
	}
	productKey := fmt.Sprintf("%d", row[1].(int64))
	productBytes, ok := t.store.Get([]byte(productKey))
	if !ok {
		return nil
	}
	product, err := t.products.DecodeRow(productBytes, nil)
	if err != nil {
		return err
	}
	value, err := t.out.EncodeRow([]any{row[0], row[2], row[1], row[3], product[2]})
	if err != nil {
		return err
	}
	return c.Send(samza.OutgoingMessageEnvelope{
		Stream:    t.Output,
		Partition: env.Partition,
		Key:       env.Key,
		Value:     value,
		Timestamp: env.Timestamp,
	})
}

// loc:join:end

// loc:window:begin

// NativeSlidingWindowTask is the hand-written equivalent of the Listing 6
// sliding-window query (SUM(units) over the last window per product). It
// follows Algorithm 1 directly: store the message, purge expired entries
// from the local store, adjust the running sum, emit the extended record.
// State values use the Avro codec; the dominant cost is key-value store
// traffic, exactly as the paper observes (§5.1).
type NativeSlidingWindowTask struct {
	Output       string
	WindowMillis int64
	orders       *avro.Codec
	out          *avro.Codec
	contribution *avro.Codec
	store        kv.Store
}

// WindowedSchema is the native sliding-window output schema.
func WindowedSchema() *avro.Schema {
	return avro.Record("OrdersWindowed",
		avro.F("rowtime", avro.Long()),
		avro.F("productId", avro.Long()),
		avro.F("units", avro.Long()),
		avro.F("windowSum", avro.Long()),
	)
}

// WindowStoreName names the native window task's local store.
const WindowStoreName = "native-window"

// Init implements samza.StreamTask.
func (t *NativeSlidingWindowTask) Init(ctx *samza.TaskContext) error {
	t.orders = avro.MustCodec(workload.OrdersSchema())
	t.out = avro.MustCodec(WindowedSchema())
	t.contribution = avro.MustCodec(avro.Record("Contribution",
		avro.F("ts", avro.Long()), avro.F("units", avro.Long())))
	t.store = ctx.Store(WindowStoreName)
	return nil
}

// Process implements samza.StreamTask.
func (t *NativeSlidingWindowTask) Process(env samza.IncomingMessageEnvelope, c samza.MessageCollector, _ samza.Coordinator) error {
	row, err := t.orders.DecodeRow(env.Value, nil)
	if err != nil {
		return err
	}
	ts := row[0].(int64)
	productID := row[1].(int64)
	units := row[3].(int64)

	// Save the message's contribution keyed (product, ts, offset).
	prefix := fmt.Sprintf("w:%016d:", productID)
	msgKey := fmt.Sprintf("%s%016d:%016d", prefix, ts, env.Offset)
	contribution, err := t.contribution.EncodeRow([]any{ts, units})
	if err != nil {
		return err
	}
	t.store.Put([]byte(msgKey), contribution)

	// Load the running sum.
	sumKey := fmt.Sprintf("s:%d", productID)
	var sum int64
	if v, ok := t.store.Get([]byte(sumKey)); ok {
		state, err := t.contribution.DecodeRow(v, nil)
		if err != nil {
			return err
		}
		sum = state[1].(int64)
	}
	// Purge expired contributions, adjusting the sum.
	cutoff := ts - t.WindowMillis
	if cutoff > 0 {
		end := fmt.Sprintf("%s%016d:", prefix, cutoff)
		for _, e := range t.store.Range([]byte(prefix), []byte(end), 0) {
			old, err := t.contribution.DecodeRow(e.Value, nil)
			if err != nil {
				return err
			}
			sum -= old[1].(int64)
			t.store.Delete(e.Key)
		}
	}
	// Fold in the current tuple and persist the state.
	sum += units
	state, err := t.contribution.EncodeRow([]any{ts, sum})
	if err != nil {
		return err
	}
	t.store.Put([]byte(sumKey), state)

	value, err := t.out.EncodeRow([]any{ts, productID, units, sum})
	if err != nil {
		return err
	}
	return c.Send(samza.OutgoingMessageEnvelope{
		Stream:    t.Output,
		Partition: env.Partition,
		Key:       env.Key,
		Value:     value,
		Timestamp: env.Timestamp,
	})
}

// loc:window:end

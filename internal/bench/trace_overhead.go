package bench

import (
	"fmt"
	"strings"
)

// TraceOverheadRates are the sample rates the overhead comparison sweeps:
// off, the recommended production rate, and every-message.
var TraceOverheadRates = []float64{0, 0.01, 1.0}

// TraceOverheadRow is one measured (query, sample rate) point.
type TraceOverheadRow struct {
	Query string
	Rate  float64
	// Throughput is the best-of-rounds messages/second — best-of, not mean,
	// so scheduler noise doesn't masquerade as tracing overhead.
	Throughput float64
	// OverheadPct is the throughput loss versus the rate-0 row of the same
	// query, in percent (0 for the baseline itself).
	OverheadPct float64
}

// RunTraceOverhead measures tracing overhead on the filter and
// sliding-window benchmarks across TraceOverheadRates, taking the best of
// rounds runs per point. The acceptance bar: the sampled-off rows must stay
// within ~2% of an untraced build, and rate 0.01 should be close behind.
func RunTraceOverhead(messages, rounds int) ([]TraceOverheadRow, error) {
	if rounds < 1 {
		rounds = 1
	}
	var rows []TraceOverheadRow
	for _, query := range []string{"filter", "window"} {
		var baseline float64
		for _, rate := range TraceOverheadRates {
			cfg := DefaultConfig()
			cfg.Messages = messages
			cfg.TraceSampleRate = rate
			best := 0.0
			for i := 0; i < rounds; i++ {
				res, err := RunSQL(query, cfg)
				if err != nil {
					return nil, fmt.Errorf("bench: trace overhead %s rate %v: %w", query, rate, err)
				}
				if res.Throughput > best {
					best = res.Throughput
				}
			}
			row := TraceOverheadRow{Query: query, Rate: rate, Throughput: best}
			if rate == 0 {
				baseline = best
			} else if baseline > 0 {
				row.OverheadPct = (baseline - best) / baseline * 100
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// FormatTraceOverhead renders the comparison as an aligned table.
func FormatTraceOverhead(rows []TraceOverheadRow) string {
	var b strings.Builder
	b.WriteString("Tracing overhead (best-of-N throughput, msg/s)\n")
	fmt.Fprintf(&b, "%-10s %12s %14s %10s\n", "query", "sample-rate", "throughput", "overhead")
	for _, r := range rows {
		overhead := "baseline"
		if r.Rate != 0 {
			overhead = fmt.Sprintf("%+.1f%%", r.OverheadPct)
		}
		fmt.Fprintf(&b, "%-10s %12v %14.0f %10s\n", r.Query, r.Rate, r.Throughput, overhead)
	}
	return b.String()
}

package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// ReadReport loads a previously written BENCH_results.json.
func ReadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("bench: parsing %s: %w", path, err)
	}
	return &r, nil
}

// RatioDiff is one (figure, containers) point compared between a baseline
// report and a fresh run.
type RatioDiff struct {
	Figure     string
	Containers int
	// Old and New are the sql_native_ratio values; Delta is the relative
	// change ((new-old)/old), negative for regressions.
	Old   float64
	New   float64
	Delta float64
	// Regression marks points whose ratio fell by more than the tolerance.
	Regression bool
}

// CompareReports diffs sql_native_ratio per figure row between a baseline
// and a fresh report, matching rows by (figure ID, container count). Points
// whose ratio fell by more than tol (e.g. 0.10 for 10%) are flagged as
// regressions. Points present in only one report are skipped — a new figure
// or container count is not a regression.
func CompareReports(baseline, fresh *Report, tol float64) []RatioDiff {
	type key struct {
		id         string
		containers int
	}
	old := map[key]float64{}
	for _, f := range baseline.Figures {
		for _, r := range f.Rows {
			old[key{f.ID, r.Containers}] = r.SQLNativeRatio
		}
	}
	var out []RatioDiff
	for _, f := range fresh.Figures {
		for _, r := range f.Rows {
			prev, ok := old[key{f.ID, r.Containers}]
			if !ok || prev == 0 {
				continue
			}
			delta := (r.SQLNativeRatio - prev) / prev
			out = append(out, RatioDiff{
				Figure:     f.ID,
				Containers: r.Containers,
				Old:        prev,
				New:        r.SQLNativeRatio,
				Delta:      delta,
				Regression: delta < -tol,
			})
		}
	}
	return out
}

// FormatComparison renders a comparison as the table `make bench-compare`
// prints, regressions marked. Returns the rendered table and whether any
// point regressed.
func FormatComparison(diffs []RatioDiff) (string, bool) {
	var sb strings.Builder
	regressed := false
	fmt.Fprintf(&sb, "%-8s %-10s  %10s  %10s  %8s\n", "figure", "containers", "base", "current", "delta")
	for _, d := range diffs {
		mark := ""
		if d.Regression {
			mark = "  REGRESSION"
			regressed = true
		}
		fmt.Fprintf(&sb, "%-8s %-10d  %9.2fx  %9.2fx  %+7.1f%%%s\n",
			d.Figure, d.Containers, d.Old, d.New, d.Delta*100, mark)
	}
	if len(diffs) == 0 {
		sb.WriteString("(no overlapping figure points to compare)\n")
	}
	return sb.String(), regressed
}

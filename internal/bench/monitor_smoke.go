package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"

	"samzasql/internal/kafka"
	"samzasql/internal/monitor"
	"samzasql/internal/samza"
)

// MonitorSummary is the lag-recovery record of one monitored benchmark run:
// how far behind the job fell (the pre-loaded workload is an injected lag
// spike — every message is backlog at submit time) and how long it took the
// backlog to drain back to zero, as seen through the monitor's ingested
// __metrics series rather than the job's own registries.
type MonitorSummary struct {
	// PeakLag is the highest per-partition consumer lag any ingested
	// snapshot recorded.
	PeakLag int64
	// PeakAtMillis is the snapshot timestamp of the peak.
	PeakAtMillis int64
	// RecoveryMillis is the time from the peak to the first snapshot showing
	// that partition fully drained (lag 0); -1 when no drained snapshot was
	// ingested before the job stopped.
	RecoveryMillis int64
	// AlertsFired / AlertsResolved count the alert transitions published on
	// __alerts during the run.
	AlertsFired    int
	AlertsResolved int
}

// startMonitor attaches a cluster monitor to the env's broker when the
// config asks for one. The returned stop function is a no-op when disabled.
func (e *env) startMonitor(cfg Config, rules []monitor.Rule) (*monitor.Monitor, func(), error) {
	if !cfg.Monitor {
		return nil, func() {}, nil
	}
	runner := e.runner
	mon, err := monitor.Start(monitor.Config{
		Broker:       e.broker,
		EvalInterval: 5 * time.Millisecond,
		Rules:        rules,
		Health: func() map[string]map[string]string {
			out := map[string]map[string]string{}
			for _, j := range runner.Jobs() {
				out[j.Spec.Name] = j.TaskHealth()
			}
			return out
		},
	})
	if err != nil {
		return nil, nil, err
	}
	mon.Register(runner)
	return mon, mon.Stop, nil
}

// summarizeMonitor reads the lag series the monitor ingested for one job
// plus the alert transition log. It reads raw ranges (not the live-gauge
// views), so it stays valid after final snapshots close the containers out.
func summarizeMonitor(mon *monitor.Monitor, job string) *MonitorSummary {
	st := mon.Store()
	s := &MonitorSummary{RecoveryMillis: -1}
	var peakKey monitor.SeriesKey
	for _, info := range st.Series() {
		k := info.Key
		if k.Job != job || info.Kind != monitor.KindGauge || !strings.HasPrefix(k.Name, monitor.DefaultLagPrefix) {
			continue
		}
		for _, pts := range st.Range(k.Job, k.Container, k.Name, 0) {
			for _, p := range pts {
				if p.Value > s.PeakLag {
					s.PeakLag, s.PeakAtMillis, peakKey = p.Value, p.TimeMillis, k
				}
			}
		}
	}
	if s.PeakLag > 0 {
		for _, pts := range st.Range(peakKey.Job, peakKey.Container, peakKey.Name, s.PeakAtMillis) {
			for _, p := range pts {
				if p.Value == 0 {
					s.RecoveryMillis = p.TimeMillis - s.PeakAtMillis
					break
				}
			}
		}
	}
	for _, a := range mon.RecentAlerts(0) {
		switch a.State {
		case monitor.StateFiring:
			s.AlertsFired++
		case monitor.StateResolved:
			s.AlertsResolved++
		}
	}
	return s
}

// awaitMonitorSummary polls the summary until the lag series shows a full
// recovery (or the deadline passes — snapshot ingestion is asynchronous, so
// the drained-to-zero sample can arrive a few reporter periods after the
// last message is processed).
func awaitMonitorSummary(mon *monitor.Monitor, job string, timeout time.Duration) *MonitorSummary {
	deadline := time.Now().Add(timeout)
	for {
		s := summarizeMonitor(mon, job)
		if s.RecoveryMillis >= 0 || time.Now().After(deadline) {
			return s
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// throttledFilterTask slows the native filter down so the pre-loaded
// backlog drains over an observable number of snapshot periods instead of
// a single one — the smoke test's controllable lag spike.
type throttledFilterTask struct {
	NativeFilterTask
	delay time.Duration
}

func (t *throttledFilterTask) Process(env samza.IncomingMessageEnvelope, c samza.MessageCollector, coord samza.Coordinator) error {
	if t.delay > 0 {
		time.Sleep(t.delay)
	}
	return t.NativeFilterTask.Process(env, c, coord)
}

// MonitorSmokeReport is what RunMonitorSmoke measured and verified.
type MonitorSmokeReport struct {
	Addr     string
	Messages int
	Summary  *MonitorSummary
}

// smokeTimeout bounds the whole smoke run.
const smokeTimeout = 60 * time.Second

// RunMonitorSmoke is the CI smoke behind `make monitor-smoke` and
// `-figure monitor-smoke`: it starts a monitored job with an injected lag
// spike (the whole workload pre-produced as backlog, drained by a
// deliberately throttled task), serves the introspection endpoints on a
// loopback port, and asserts over HTTP that /query answers, /alerts answers,
// a lag alert fires, and the alert resolves once the backlog drains.
func RunMonitorSmoke(messages int) (MonitorSmokeReport, error) {
	cfg := DefaultConfig()
	cfg.Messages = messages
	cfg.Partitions = 4
	cfg.Containers = 1
	cfg.Monitor = true
	cfg.MetricsInterval = 10 * time.Millisecond
	e, err := newEnv(cfg)
	if err != nil {
		return MonitorSmokeReport{}, err
	}
	// Fire when a partition's backlog holds above 1/8 of the workload —
	// guaranteed at submit (each partition starts with messages/partitions
	// backlog), cleared when drained.
	rules := []monitor.Rule{monitor.LagRule(int64(messages)/8, 500*time.Millisecond, 2)}
	mon, stopMon, err := e.startMonitor(cfg, rules)
	if err != nil {
		return MonitorSmokeReport{}, err
	}
	defer stopMon()
	addr, shutdown, err := e.runner.ServeIntrospection("127.0.0.1:0")
	if err != nil {
		return MonitorSmokeReport{}, err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		_ = shutdown(ctx)
	}()
	if err := e.loadOrders(cfg); err != nil {
		return MonitorSmokeReport{}, err
	}
	outTopic := "bench-out"
	if err := e.broker.EnsureTopic(outTopic, kafka.TopicConfig{Partitions: cfg.Partitions}); err != nil {
		return MonitorSmokeReport{}, err
	}

	const jobName = "monitor-smoke"
	job := &samza.JobSpec{
		Name:            jobName,
		Inputs:          []samza.StreamSpec{{Topic: "orders"}},
		Containers:      1,
		CommitEvery:     1000,
		MetricsInterval: cfg.MetricsInterval,
		Config:          map[string]string{},
		TaskFactory: func() samza.StreamTask {
			return &throttledFilterTask{NativeFilterTask: NativeFilterTask{Output: outTopic}, delay: 100 * time.Microsecond}
		},
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	start := time.Now()
	rj, err := e.runner.Submit(ctx, job)
	if err != nil {
		return MonitorSmokeReport{}, err
	}
	defer rj.Stop()
	base := "http://" + addr

	// The smoke's contract is the HTTP surface, so every check goes through
	// the introspection server, not in-process accessors.
	if err := awaitHTTP(base, smokeTimeout, func() (bool, error) {
		var q monitor.QueryResponse
		if err := getJSON(base+"/query?metric=messages-processed&agg=rate&job="+jobName+"&window=30s", &q); err != nil {
			return false, nil
		}
		return q.Count > 0, nil
	}); err != nil {
		return MonitorSmokeReport{}, fmt.Errorf("monitor smoke: /query never reported job progress: %w", err)
	}
	if err := awaitHTTP(base, smokeTimeout, func() (bool, error) {
		var a monitor.AlertsResponse
		if err := getJSON(base+"/alerts", &a); err != nil {
			return false, nil
		}
		for _, r := range a.Recent {
			if r.Kind == string(monitor.RuleLag) && r.State == monitor.StateFiring {
				return true, nil
			}
		}
		return false, nil
	}); err != nil {
		return MonitorSmokeReport{}, fmt.Errorf("monitor smoke: no lag alert fired: %w", err)
	}
	if _, err := awaitProcessed(rj, int64(messages), start, smokeTimeout); err != nil {
		return MonitorSmokeReport{}, err
	}
	if err := awaitHTTP(base, smokeTimeout, func() (bool, error) {
		var a monitor.AlertsResponse
		if err := getJSON(base+"/alerts", &a); err != nil {
			return false, nil
		}
		for _, r := range a.Recent {
			if r.Kind == string(monitor.RuleLag) && r.State == monitor.StateResolved {
				return true, nil
			}
		}
		return false, nil
	}); err != nil {
		return MonitorSmokeReport{}, fmt.Errorf("monitor smoke: lag alert never resolved after drain: %w", err)
	}
	summary := awaitMonitorSummary(mon, jobName, time.Second)
	return MonitorSmokeReport{Addr: addr, Messages: messages, Summary: summary}, nil
}

// getJSON fetches a URL and decodes its JSON body, failing on non-200s.
func getJSON(url string, into any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(into)
}

// awaitHTTP polls cond until it reports true or the timeout passes.
func awaitHTTP(what string, timeout time.Duration, cond func() (bool, error)) error {
	deadline := time.Now().Add(timeout)
	for {
		ok, err := cond()
		if err != nil {
			return err
		}
		if ok {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("timed out after %s polling %s", timeout, what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// FormatMonitorSmoke renders the smoke outcome for the terminal and CI log.
func FormatMonitorSmoke(r MonitorSmokeReport) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "monitor smoke (%d messages, introspection on %s)\n", r.Messages, r.Addr)
	fmt.Fprintf(&sb, "  /query responded, /alerts responded, lag alert fired and resolved\n")
	fmt.Fprintf(&sb, "  %s", FormatMonitorSummary(r.Summary))
	return sb.String()
}

// FormatMonitorSummary renders one run's lag-recovery line.
func FormatMonitorSummary(s *MonitorSummary) string {
	if s == nil {
		return ""
	}
	recovery := "not observed"
	if s.RecoveryMillis >= 0 {
		recovery = fmt.Sprintf("%dms", s.RecoveryMillis)
	}
	return fmt.Sprintf("peak lag %d msgs, recovery %s, alerts fired/resolved %d/%d\n",
		s.PeakLag, recovery, s.AlertsFired, s.AlertsResolved)
}

package bench

import (
	"fmt"
	"sort"
	"strings"

	"samzasql/internal/metrics"
)

// FigureRow is one (container count) point of a figure: native and
// SamzaSQL job throughput plus their ratio.
type FigureRow struct {
	Containers int
	Native     float64 // msgs/sec
	SQL        float64 // msgs/sec
	Ratio      float64 // SQL / native
	// SQLSnap is the SamzaSQL run's merged end-of-run metrics, carrying the
	// per-operator latency histograms FormatOperatorLatencies renders.
	SQLSnap metrics.Snapshot
	// SQLMonitor is the SamzaSQL run's lag-recovery record (Config.Monitor
	// runs only).
	SQLMonitor *MonitorSummary
}

// FigureSpec maps a paper figure to its benchmark query and sweep.
type FigureSpec struct {
	ID         string
	Title      string
	Query      string
	Containers []int
	// Expected describes the paper's qualitative result, printed alongside
	// measurements so EXPERIMENTS.md comparisons are self-contained.
	Expected string
}

// Figures lists every figure of the paper's evaluation (§5).
var Figures = []FigureSpec{
	{
		ID: "5a", Title: "Filter query throughput (Figure 5a)",
		Query: "filter", Containers: []int{1, 2, 4, 8},
		Expected: "SamzaSQL 30-40% below native (message-format transformation); sublinear scaling at fixed partition count",
	},
	{
		ID: "5b", Title: "Project query throughput (Figure 5b)",
		Query: "project", Containers: []int{1, 2, 4, 8},
		Expected: "SamzaSQL 30-40% below native (AvroToArray/ArrayToAvro); here vectorized blocks amortize the serde gap to near parity",
	},
	{
		ID: "5c", Title: "Stream-to-relation join throughput (Figure 5c)",
		Query: "join", Containers: []int{1, 2, 4, 8},
		Expected: "SamzaSQL about 2x slower (object serde per probe); here block-clustered probes batch the relation reads, reaching near parity",
	},
	{
		ID: "6", Title: "Sliding window operator throughput (Figure 6)",
		Query: "window", Containers: []int{1, 2, 4, 8},
		Expected: "near parity, both KV-bound; here per-block state clustering amortizes the KV traffic, putting SamzaSQL at or above the per-tuple native baseline",
	},
}

// FigureByID resolves a figure spec.
func FigureByID(id string) (FigureSpec, bool) {
	for _, f := range Figures {
		if f.ID == id {
			return f, true
		}
	}
	return FigureSpec{}, false
}

// RunFigure sweeps the container counts of one figure, running the
// native/SamzaSQL pair at each point.
func RunFigure(spec FigureSpec, cfg Config) ([]FigureRow, error) {
	var rows []FigureRow
	for _, c := range spec.Containers {
		runCfg := cfg
		runCfg.Containers = c
		nat, err := RunNative(spec.Query, runCfg)
		if err != nil {
			return nil, fmt.Errorf("figure %s native x%d: %w", spec.ID, c, err)
		}
		sql, err := RunSQL(spec.Query, runCfg)
		if err != nil {
			return nil, fmt.Errorf("figure %s samzasql x%d: %w", spec.ID, c, err)
		}
		rows = append(rows, FigureRow{
			Containers: c,
			Native:     nat.Throughput,
			SQL:        sql.Throughput,
			Ratio:      sql.Throughput / nat.Throughput,
			SQLSnap:    sql.Snapshot,
			SQLMonitor: sql.Monitor,
		})
	}
	return rows, nil
}

// FormatFigure renders the measured series as the paper's figure data.
func FormatFigure(spec FigureSpec, rows []FigureRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", spec.Title)
	fmt.Fprintf(&sb, "  paper: %s\n", spec.Expected)
	fmt.Fprintf(&sb, "  %-10s  %14s  %14s  %9s\n", "containers", "native msg/s", "samzasql msg/s", "sql/native")
	for _, r := range rows {
		fmt.Fprintf(&sb, "  %-10d  %14.0f  %14.0f  %8.2fx\n", r.Containers, r.Native, r.SQL, r.Ratio)
	}
	for _, r := range rows {
		if r.SQLMonitor != nil {
			fmt.Fprintf(&sb, "  monitor x%d: %s", r.Containers, FormatMonitorSummary(r.SQLMonitor))
		}
	}
	return sb.String()
}

// FormatOperatorLatencies renders the per-operator latency percentiles of
// the figure's first (single-container) SamzaSQL run, from the
// "operator.<stage>.process-ns" histograms the snapshot reporter publishes.
// Latencies are inclusive of each operator's downstream chain.
func FormatOperatorLatencies(spec FigureSpec, rows []FigureRow) string {
	if len(rows) == 0 {
		return ""
	}
	snap := rows[0].SQLSnap
	var names []string
	for name := range snap.Histograms {
		if strings.HasPrefix(name, "operator.") && strings.HasSuffix(name, ".process-ns") {
			names = append(names, name)
		}
	}
	if len(names) == 0 {
		return ""
	}
	sort.Strings(names)
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s — per-operator latency, SamzaSQL x%d (ns; inclusive of downstream)\n",
		spec.Title, rows[0].Containers)
	fmt.Fprintf(&sb, "  %-24s %10s %9s %9s %9s %10s %10s\n",
		"operator", "count", "p50", "p95", "p99", "max", "out")
	for _, name := range names {
		h := snap.Histograms[name]
		stage := strings.TrimSuffix(strings.TrimPrefix(name, "operator."), ".process-ns")
		out := "-"
		if v, ok := snap.Counters["operator."+stage+".out"]; ok {
			out = fmt.Sprintf("%d", v)
		}
		fmt.Fprintf(&sb, "  %-24s %10d %9d %9d %9d %10d %10s\n",
			stage, h.Count, h.P50, h.P95, h.P99, h.Max, out)
	}
	return sb.String()
}

// CheckShape verifies the measured rows reproduce the paper's qualitative
// result for the figure, returning a list of violations (empty = shape
// holds). Thresholds are deliberately loose: the substrate is an in-process
// simulator, not the paper's EC2 cluster.
func CheckShape(spec FigureSpec, rows []FigureRow) []string {
	var bad []string
	for _, r := range rows {
		switch spec.Query {
		case "filter":
			if r.Ratio >= 0.95 {
				bad = append(bad, fmt.Sprintf("x%d: SQL (%.0f) not measurably below native (%.0f)", r.Containers, r.SQL, r.Native))
			}
		case "project":
			// Vectorized projection amortizes decode and flush per block, so
			// it brushes native parity; guard against regressing back toward
			// the scalar-path gap (and against implausible >native readings).
			if r.Ratio < 0.5 || r.Ratio >= 1.5 {
				bad = append(bad, fmt.Sprintf("x%d: project ratio %.2f outside vectorized band [0.5, 1.5)", r.Containers, r.Ratio))
			}
		case "join":
			// Block-native join with batched relation reads closed the
			// paper's 2x serde gap: the floor guards the vectorized win, the
			// ceiling catches implausible readings (the native baseline does
			// the same per-message work minus SQL dispatch).
			if r.Ratio < 0.7 || r.Ratio >= 1.8 {
				bad = append(bad, fmt.Sprintf("x%d: join ratio %.2f outside vectorized band [0.7, 1.8)", r.Containers, r.Ratio))
			}
		case "window":
			// Both sides are KV-bound, but the vectorized window pays state
			// load/decode/write-back once per key per block while the native
			// baseline pays them per tuple, so SQL lands at or above parity.
			if r.Ratio < 0.7 || r.Ratio >= 6 {
				bad = append(bad, fmt.Sprintf("x%d: window ratio %.2f outside vectorized band [0.7, 6)", r.Containers, r.Ratio))
			}
		}
	}
	// Monotone-ish window sweep: adding containers must never crater the SQL
	// side. (The pre-vectorization x4 dip to 0.48 was a native-side spike —
	// the ratio floor above now absorbs that — but a SQL-side collapse at one
	// sweep point would still pass per-point ratio checks on a noisy run.)
	if spec.Query == "window" {
		best := 0.0
		for _, r := range rows {
			if r.SQL < 0.5*best {
				bad = append(bad, fmt.Sprintf("x%d: SQL window throughput %.0f collapsed below half of an earlier sweep point (%.0f)", r.Containers, r.SQL, best))
			}
			if r.SQL > best {
				best = r.SQL
			}
		}
	}
	return bad
}

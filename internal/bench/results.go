package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

// Report is the machine-readable benchmark output (BENCH_results.json):
// per-figure throughput series with operator latency percentiles, plus the
// store-tuning comparison backing the state-store performance layer.
type Report struct {
	// Messages/Partitions echo the run configuration.
	Messages   int            `json:"messages"`
	Partitions int32          `json:"partitions"`
	Figures    []FigureReport `json:"figures,omitempty"`
	// StoreTuning is the sliding-window cached-versus-baseline micro
	// comparison (tuples/sec, store traffic, changelog records, speedup).
	StoreTuning *StoreTuningComparison `json:"store_tuning,omitempty"`
	// HotFunctions is the cluster-merged CPU hot-function baseline from a
	// profiled filter run, as flat shares of sampled CPU. bench-compare
	// diffs a fresh profiled run against it to attribute ratio regressions
	// to the function whose share grew.
	HotFunctions []HotFunctionReport `json:"hot_functions,omitempty"`
}

// HotFunctionReport is one function's share of sampled CPU in a profiled
// benchmark run.
type HotFunctionReport struct {
	Name    string  `json:"name"`
	FlatPct float64 `json:"flat_pct"`
	CumPct  float64 `json:"cum_pct"`
}

// FigureReport is one figure's measured series.
type FigureReport struct {
	ID    string            `json:"id"`
	Title string            `json:"title"`
	Query string            `json:"query"`
	Rows  []FigureReportRow `json:"rows"`
}

// FigureReportRow is one container-count point.
type FigureReportRow struct {
	Containers     int     `json:"containers"`
	NativeRowsSec  float64 `json:"native_rows_per_sec"`
	SQLRowsSec     float64 `json:"samzasql_rows_per_sec"`
	SQLNativeRatio float64 `json:"sql_native_ratio"`
	// Operators carries the SamzaSQL run's per-operator latency percentiles
	// (inclusive of each operator's downstream chain), from the
	// "operator.<stage>.process-ns" histograms.
	Operators []OperatorLatency `json:"operator_latencies,omitempty"`
}

// OperatorLatency summarizes one operator's process-time histogram.
type OperatorLatency struct {
	Operator string `json:"operator"`
	Count    int64  `json:"count"`
	P50Ns    int64  `json:"p50_ns"`
	P95Ns    int64  `json:"p95_ns"`
	P99Ns    int64  `json:"p99_ns"`
	MaxNs    int64  `json:"max_ns"`
}

// ReportFigure converts one measured figure into its report form.
func ReportFigure(spec FigureSpec, rows []FigureRow) FigureReport {
	fr := FigureReport{ID: spec.ID, Title: spec.Title, Query: spec.Query}
	for _, r := range rows {
		row := FigureReportRow{
			Containers:     r.Containers,
			NativeRowsSec:  r.Native,
			SQLRowsSec:     r.SQL,
			SQLNativeRatio: r.Ratio,
			Operators:      operatorLatencies(r),
		}
		fr.Rows = append(fr.Rows, row)
	}
	return fr
}

// operatorLatencies extracts the per-operator histograms of one SamzaSQL run,
// sorted by operator name. Empty when the run had no snapshot reporter.
func operatorLatencies(r FigureRow) []OperatorLatency {
	var out []OperatorLatency
	for name, h := range r.SQLSnap.Histograms {
		if !strings.HasPrefix(name, "operator.") || !strings.HasSuffix(name, ".process-ns") {
			continue
		}
		stage := strings.TrimSuffix(strings.TrimPrefix(name, "operator."), ".process-ns")
		out = append(out, OperatorLatency{
			Operator: stage,
			Count:    h.Count,
			P50Ns:    h.P50,
			P95Ns:    h.P95,
			P99Ns:    h.P99,
			MaxNs:    h.Max,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Operator < out[j].Operator })
	return out
}

// WriteJSON writes the report, indented, to path.
func (r *Report) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("bench: encoding report: %w", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("bench: writing report: %w", err)
	}
	return nil
}

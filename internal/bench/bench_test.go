package bench

import (
	"testing"
)

// smallConfig keeps unit-test runs quick; the figure benchmarks in the repo
// root use larger message counts.
func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Messages = 4000
	cfg.Partitions = 8
	return cfg
}

func TestNativeTasksProduceCorrectResults(t *testing.T) {
	for _, q := range []string{"filter", "project", "join", "window"} {
		res, err := RunNative(q, smallConfig())
		if err != nil {
			t.Fatalf("native %s: %v", q, err)
		}
		if res.Messages != 4000 || res.Throughput <= 0 {
			t.Fatalf("native %s result %+v", q, res)
		}
	}
}

func TestSQLTasksRun(t *testing.T) {
	for _, q := range []string{"filter", "project", "join", "window"} {
		res, err := RunSQL(q, smallConfig())
		if err != nil {
			t.Fatalf("samzasql %s: %v", q, err)
		}
		if res.Throughput <= 0 {
			t.Fatalf("samzasql %s result %+v", q, res)
		}
	}
}

func TestNativeAndSQLAgreeOnFilterOutput(t *testing.T) {
	// Correctness cross-check: run both and compare output counts.
	cfg := smallConfig()
	nat, err := RunNative("filter", cfg)
	if err != nil {
		t.Fatal(err)
	}
	sql, err := RunSQL("filter", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if nat.Messages != sql.Messages {
		t.Fatalf("processed counts differ: %d vs %d", nat.Messages, sql.Messages)
	}
}

func TestFilterPerformanceShape(t *testing.T) {
	if testing.Short() {
		t.Skip("perf shape check skipped in -short mode")
	}
	cfg := smallConfig()
	cfg.Messages = 30_000
	nat, err := RunNative("filter", cfg)
	if err != nil {
		t.Fatal(err)
	}
	sql, err := RunSQL("filter", cfg)
	if err != nil {
		t.Fatal(err)
	}
	ratio := sql.Throughput / nat.Throughput
	t.Logf("filter: native %.0f msg/s, samzasql %.0f msg/s, ratio %.2f", nat.Throughput, sql.Throughput, ratio)
	if ratio >= 1.0 {
		t.Errorf("SamzaSQL filter (%.0f) faster than native (%.0f); transformation overhead missing", sql.Throughput, nat.Throughput)
	}
}

func TestFigureSpecsComplete(t *testing.T) {
	seen := map[string]bool{}
	for _, f := range Figures {
		if _, ok := Queries[f.Query]; !ok {
			t.Errorf("figure %s references unknown query %q", f.ID, f.Query)
		}
		seen[f.ID] = true
	}
	for _, id := range []string{"5a", "5b", "5c", "6"} {
		if !seen[id] {
			t.Errorf("figure %s missing", id)
		}
	}
	if _, ok := FigureByID("5a"); !ok {
		t.Error("FigureByID(5a) failed")
	}
	if _, ok := FigureByID("nope"); ok {
		t.Error("FigureByID(nope) succeeded")
	}
}

func TestLOCTable(t *testing.T) {
	rows, err := LOCTable()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	byQuery := map[string]LOCRow{}
	for _, r := range rows {
		byQuery[r.Query] = r
		if r.SQLLines <= 0 || r.TaskLines <= 0 {
			t.Fatalf("bad row %+v", r)
		}
		if r.SQLLines >= r.TaskLines {
			t.Errorf("%s: SQL (%d lines) not smaller than native (%d lines)", r.Query, r.SQLLines, r.TaskLines)
		}
	}
	// Paper ordering: window > join > filter/project in native size.
	if byQuery["window"].TaskLines <= byQuery["filter"].TaskLines {
		t.Errorf("window task (%d) should dwarf filter task (%d)",
			byQuery["window"].TaskLines, byQuery["filter"].TaskLines)
	}
	out := FormatLOC(rows)
	if !contains(out, "window") || !contains(out, "SQL lines") {
		t.Fatalf("table rendering: %s", out)
	}
}

func TestFormatFigure(t *testing.T) {
	spec, _ := FigureByID("5a")
	out := FormatFigure(spec, []FigureRow{{Containers: 1, Native: 1000, SQL: 650, Ratio: 0.65}})
	for _, want := range []string{"Figure 5a", "containers", "0.65x"} {
		if !contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestCheckShape(t *testing.T) {
	spec, _ := FigureByID("5a")
	good := []FigureRow{{Containers: 1, Native: 1000, SQL: 650, Ratio: 0.65}}
	if v := CheckShape(spec, good); len(v) != 0 {
		t.Fatalf("good rows flagged: %v", v)
	}
	bad := []FigureRow{{Containers: 1, Native: 1000, SQL: 1000, Ratio: 1.0}}
	if v := CheckShape(spec, bad); len(v) == 0 {
		t.Fatal("parity rows not flagged for filter figure")
	}
	joinSpec, _ := FigureByID("5c")
	if v := CheckShape(joinSpec, []FigureRow{{Containers: 1, Ratio: 0.93}}); len(v) != 0 {
		t.Fatalf("join near-parity flagged: %v", v)
	}
	// The pre-vectorization gap (scalar per-probe relation reads) is now a
	// regression.
	if v := CheckShape(joinSpec, []FigureRow{{Containers: 1, Ratio: 0.5}}); len(v) == 0 {
		t.Fatal("join ratio 0.5 not flagged after vectorization")
	}
	winSpec, _ := FigureByID("6")
	if v := CheckShape(winSpec, []FigureRow{
		{Containers: 1, Ratio: 0.9, SQL: 200_000},
		{Containers: 2, Ratio: 2.5, SQL: 210_000},
	}); len(v) != 0 {
		t.Fatalf("window parity-or-better flagged: %v", v)
	}
	// The committed pre-vectorization x4 anomaly (ratio 0.48) is below the
	// new floor.
	if v := CheckShape(winSpec, []FigureRow{{Containers: 4, Ratio: 0.48, SQL: 150_000}}); len(v) == 0 {
		t.Fatal("window ratio 0.48 not flagged after vectorization")
	}
	// A SQL-side collapse at one sweep point fails even when each per-point
	// ratio stays inside the band.
	if v := CheckShape(winSpec, []FigureRow{
		{Containers: 1, Ratio: 1.2, SQL: 200_000},
		{Containers: 2, Ratio: 0.8, SQL: 90_000},
	}); len(v) == 0 {
		t.Fatal("window sweep collapse not flagged")
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 ||
		// strings.Contains without importing strings twice in tests
		indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

package bench

import (
	"context"
	"fmt"
	"time"

	"samzasql/internal/kafka"
	"samzasql/internal/metrics"
	"samzasql/internal/samza"
	"samzasql/internal/sql/catalog"
	"samzasql/internal/workload"
	"samzasql/internal/yarn"
	"samzasql/internal/zk"

	"samzasql/internal/executor"
)

// Config parameterizes one benchmark run, mirroring §5.1: 100-byte
// messages, 32-partition topics, partitions uniformly spread over tasks.
type Config struct {
	// Partitions per topic (paper: 32).
	Partitions int32
	// Messages is the Orders stream length per run.
	Messages int
	// Products is the relation cardinality.
	Products int
	// Containers for the Samza job.
	Containers int
	// TaskParallelism bounds concurrent task execution inside each
	// container: 0 runs every task in parallel, 1 reproduces the
	// sequential container loop. Sweeping it at fixed containers measures
	// tasks-per-core scaling.
	TaskParallelism int
	// WindowMillis for the sliding-window benchmarks (paper: 5 minutes).
	WindowMillis int64
	// FastPath enables the engine's fused execution mode (§7 future work
	// item 5) for the SamzaSQL side; off reproduces the paper's prototype.
	FastPath bool
	// StoreCacheSize, when positive, runs both implementations' task stores
	// behind an LRU object cache with write-behind batching
	// (samza.JobSpec.StoreCacheSize). 0 reproduces the paper's per-tuple
	// store path.
	StoreCacheSize int
	// WriteBatchSize > 1 batches store/changelog writes per commit interval
	// (samza.JobSpec.WriteBatchSize); 0 keeps write-through mirroring.
	WriteBatchSize int
	// MetricsInterval, when positive, enables each benchmark job's
	// per-container metrics snapshot reporter (snapshots land on the
	// __metrics stream of the run's private broker).
	MetricsInterval time.Duration
	// MetricsAddr, when non-empty, serves the runner's introspection
	// endpoints (/metrics, /healthz, /debug/pprof/) on this address for the
	// duration of each run — the hook `make profile` uses to capture CPU
	// profiles of a live benchmark.
	MetricsAddr string
	// TraceSampleRate, when positive, samples roughly this fraction of
	// produced messages into end-to-end span trees. Installed on the run's
	// broker before the workload is produced, so pre-loaded messages carry
	// trace contexts too. 0 keeps the hot path at a single branch.
	TraceSampleRate float64
	// TraceInterval overrides the per-container trace reporter period
	// (0 = samza.DefaultTraceInterval whenever sampling is on).
	TraceInterval time.Duration
	// ProfileInterval, when positive, runs each benchmark job's per-container
	// continuous profiler (samza.JobSpec.ProfileInterval): windowed CPU
	// captures plus heap/goroutine snapshots published on the run's private
	// __profiles stream. 0 keeps profiling off.
	ProfileInterval time.Duration
	// ProfileWindow is the CPU sampling length within each profile interval
	// (0 = profile.DefaultWindow; equal to ProfileInterval = 100% duty, the
	// aggressive mode of the overhead sweep).
	ProfileWindow time.Duration
	// Monitor, when true, attaches a cluster monitor to each run's broker
	// (tailing __metrics/__traces, evaluating the default SLO rules onto
	// __alerts) and records the run's lag-recovery series in
	// Result.Monitor. Forces a 10ms MetricsInterval when none is set —
	// the monitor sees nothing without snapshots.
	Monitor bool
	// BatchSize sets the SamzaSQL side's vectorized delivery granularity
	// (samza.JobSpec.BatchSize): 0 uses samza.DefaultBatchSize,
	// samza.ScalarBatch (-1) forces the per-message reference path. Native
	// jobs are plain StreamTasks and see per-message delivery regardless,
	// so the baseline is unaffected.
	BatchSize int
}

// DefaultConfig returns the paper's setup scaled for in-process runs.
func DefaultConfig() Config {
	return Config{
		Partitions:   32,
		Messages:     100_000,
		Products:     100,
		Containers:   1,
		WindowMillis: 5 * 60 * 1000,
	}
}

// Result is one measured job run.
type Result struct {
	Impl       string // "native" or "samzasql"
	Query      string // "filter", "project", "join", "window"
	Containers int
	Messages   int64
	Elapsed    time.Duration
	// Throughput is job throughput in messages/second (the per-container
	// average times the container count, as the paper computes it).
	Throughput float64
	// Snapshot is the job's merged end-of-run metrics (operator latency
	// histograms, serde byte counters, consumer-lag gauges).
	Snapshot metrics.Snapshot
	// Monitor is the run's lag-recovery record, set when Config.Monitor
	// attached a cluster monitor.
	Monitor *MonitorSummary
}

// env is one fresh in-process cluster.
type env struct {
	broker  *kafka.Broker
	cluster *yarn.Cluster
	runner  *samza.JobRunner
	catalog *catalog.Catalog
	engine  *executor.Engine
}

func newEnv(cfg Config) (*env, error) {
	broker := kafka.NewBroker()
	cluster := yarn.NewCluster()
	// Nodes sized so any container count in the sweep fits (3x r3.2xlarge
	// in the paper; capacity is not the bottleneck in-process).
	for i := 0; i < 3; i++ {
		cluster.AddNode(fmt.Sprintf("node-%d", i), yarn.Resource{VCores: 64, MemoryMB: 1 << 20})
	}
	cat := catalog.New()
	if err := workload.DefineCatalog(cat); err != nil {
		return nil, err
	}
	runner := samza.NewJobRunner(broker, cluster)
	eng := executor.NewEngine(cat, broker, runner, zk.NewStore())
	return &env{broker: broker, cluster: cluster, runner: runner, catalog: cat, engine: eng}, nil
}

// loadOrders pre-produces the Orders stream (excluded from timing). Trace
// sampling, when enabled, is installed first: contexts attach at produce
// time, so the sampler must be live before the workload lands.
func (e *env) loadOrders(cfg Config) error {
	if cfg.TraceSampleRate > 0 {
		e.broker.SetTraceSampling(cfg.TraceSampleRate)
	}
	ocfg := workload.DefaultOrdersConfig()
	ocfg.Products = cfg.Products
	_, err := workload.ProduceOrders(e.broker, "orders", cfg.Partitions, cfg.Messages, ocfg)
	return err
}

func (e *env) loadProducts(cfg Config) error {
	return workload.ProduceProducts(e.broker, "products", cfg.Partitions, cfg.Products)
}

// metricsSource is anything exposing merged job metrics (a Samza job, or a
// SamzaSQL job handle with repartition stages).
type metricsSource interface {
	MetricsSnapshot() metrics.Snapshot
}

// awaitProcessed polls the job's processed-message counter until it reaches
// want, returning the elapsed time since start.
func awaitProcessed(rj metricsSource, want int64, start time.Time, timeout time.Duration) (time.Duration, error) {
	deadline := start.Add(timeout)
	for {
		snap := rj.MetricsSnapshot()
		if snap.Counters["messages-processed"] >= want {
			return time.Since(start), nil
		}
		if time.Now().After(deadline) {
			return 0, fmt.Errorf("bench: job processed %d of %d messages before timeout",
				snap.Counters["messages-processed"], want)
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// benchTimeout bounds a single measured run.
const benchTimeout = 10 * time.Minute

// RunNative measures one hand-written task implementation.
func RunNative(query string, cfg Config) (Result, error) {
	if cfg.Monitor && cfg.MetricsInterval <= 0 {
		cfg.MetricsInterval = 10 * time.Millisecond
	}
	e, err := newEnv(cfg)
	if err != nil {
		return Result{}, err
	}
	mon, stopMon, err := e.startMonitor(cfg, nil)
	if err != nil {
		return Result{}, err
	}
	defer stopMon()
	stopIntrospection, err := e.serveIntrospection(cfg)
	if err != nil {
		return Result{}, err
	}
	defer stopIntrospection()
	if err := e.loadOrders(cfg); err != nil {
		return Result{}, err
	}
	outTopic := "bench-out"
	if err := e.broker.EnsureTopic(outTopic, kafka.TopicConfig{Partitions: cfg.Partitions}); err != nil {
		return Result{}, err
	}

	job := &samza.JobSpec{
		Name:            "native-" + query,
		Inputs:          []samza.StreamSpec{{Topic: "orders"}},
		Containers:      cfg.Containers,
		TaskParallelism: cfg.TaskParallelism,
		CommitEvery:     100_000,
		StoreCacheSize:  cfg.StoreCacheSize,
		WriteBatchSize:  cfg.WriteBatchSize,
		MetricsInterval: cfg.MetricsInterval,
		TraceSampleRate: cfg.TraceSampleRate,
		TraceInterval:   cfg.TraceInterval,
		ProfileInterval: cfg.ProfileInterval,
		ProfileWindow:   cfg.ProfileWindow,
		Config:          map[string]string{},
	}
	switch query {
	case "filter":
		job.TaskFactory = func() samza.StreamTask { return &NativeFilterTask{Output: outTopic} }
	case "project":
		job.TaskFactory = func() samza.StreamTask { return &NativeProjectTask{Output: outTopic} }
	case "join":
		if err := e.loadProducts(cfg); err != nil {
			return Result{}, err
		}
		job.Inputs = append(job.Inputs, samza.StreamSpec{Topic: "products", Bootstrap: true})
		job.Stores = []samza.StoreSpec{{Name: JoinStoreName, Changelog: true}}
		job.TaskFactory = func() samza.StreamTask {
			return &NativeJoinTask{Output: outTopic, OrdersTopic: "orders", ProductsTopic: "products"}
		}
	case "window":
		job.Stores = []samza.StoreSpec{{Name: WindowStoreName, Changelog: true}}
		job.TaskFactory = func() samza.StreamTask {
			return &NativeSlidingWindowTask{Output: outTopic, WindowMillis: cfg.WindowMillis}
		}
	default:
		return Result{}, fmt.Errorf("bench: unknown native query %q", query)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	start := time.Now()
	rj, err := e.runner.Submit(ctx, job)
	if err != nil {
		return Result{}, err
	}
	elapsed, err := awaitProcessed(rj, int64(cfg.Messages), start, benchTimeout)
	var summary *MonitorSummary
	if err == nil && mon != nil {
		summary = awaitMonitorSummary(mon, job.Name, time.Second)
	}
	rj.Stop()
	if err != nil {
		return Result{}, err
	}
	return Result{
		Impl:       "native",
		Query:      query,
		Containers: cfg.Containers,
		Messages:   int64(cfg.Messages),
		Elapsed:    elapsed,
		Throughput: float64(cfg.Messages) / elapsed.Seconds(),
		Snapshot:   rj.MetricsSnapshot(),
		Monitor:    summary,
	}, nil
}

// serveIntrospection starts the env's introspection server when the config
// asks for one, returning a stop function (a no-op when disabled).
func (e *env) serveIntrospection(cfg Config) (func(), error) {
	if cfg.MetricsAddr == "" {
		return func() {}, nil
	}
	addr, shutdown, err := e.runner.ServeIntrospection(cfg.MetricsAddr)
	if err != nil {
		return nil, err
	}
	fmt.Printf("bench: introspection on http://%s\n", addr)
	return func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		_ = shutdown(ctx)
	}, nil
}

// Queries are the §5.1 benchmark statements.
var Queries = map[string]string{
	"filter":  "SELECT STREAM * FROM Orders WHERE units > 50",
	"project": "SELECT STREAM rowtime, productId, units FROM Orders",
	"window": `SELECT STREAM rowtime, productId, units,
  SUM(units) OVER (PARTITION BY productId ORDER BY rowtime
    RANGE INTERVAL '5' MINUTE PRECEDING) unitsLastFiveMinutes
FROM Orders`,
	"join": `SELECT STREAM Orders.rowtime, Orders.orderId, Orders.productId,
  Orders.units, Products.supplierId
FROM Orders JOIN Products ON Orders.productId = Products.productId`,
}

// RunSQL measures the SamzaSQL implementation of one benchmark query.
func RunSQL(query string, cfg Config) (Result, error) {
	sql, ok := Queries[query]
	if !ok {
		return Result{}, fmt.Errorf("bench: unknown SQL query %q", query)
	}
	if cfg.Monitor && cfg.MetricsInterval <= 0 {
		cfg.MetricsInterval = 10 * time.Millisecond
	}
	e, err := newEnv(cfg)
	if err != nil {
		return Result{}, err
	}
	mon, stopMon, err := e.startMonitor(cfg, nil)
	if err != nil {
		return Result{}, err
	}
	defer stopMon()
	stopIntrospection, err := e.serveIntrospection(cfg)
	if err != nil {
		return Result{}, err
	}
	defer stopIntrospection()
	if err := e.loadOrders(cfg); err != nil {
		return Result{}, err
	}
	if query == "join" {
		if err := e.loadProducts(cfg); err != nil {
			return Result{}, err
		}
	}
	e.engine.Containers = cfg.Containers
	e.engine.TaskParallelism = cfg.TaskParallelism
	e.engine.FastPath = cfg.FastPath
	e.engine.StoreCacheSize = cfg.StoreCacheSize
	e.engine.WriteBatchSize = cfg.WriteBatchSize
	e.engine.MetricsInterval = cfg.MetricsInterval
	e.engine.TraceSampleRate = cfg.TraceSampleRate
	e.engine.TraceInterval = cfg.TraceInterval
	e.engine.ProfileInterval = cfg.ProfileInterval
	e.engine.ProfileWindow = cfg.ProfileWindow
	e.engine.BatchSize = cfg.BatchSize

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	start := time.Now()
	p, rj, err := e.engine.ExecuteStream(ctx, sql)
	if err != nil {
		return Result{}, err
	}
	elapsed, err := awaitProcessed(rj, int64(cfg.Messages), start, benchTimeout)
	var summary *MonitorSummary
	if err == nil && mon != nil {
		summary = awaitMonitorSummary(mon, p.JobName, time.Second)
	}
	rj.Stop()
	if err != nil {
		return Result{}, err
	}
	return Result{
		Impl:       "samzasql",
		Query:      query,
		Containers: cfg.Containers,
		Messages:   int64(cfg.Messages),
		Elapsed:    elapsed,
		Throughput: float64(cfg.Messages) / elapsed.Seconds(),
		Snapshot:   rj.MetricsSnapshot(),
		Monitor:    summary,
	}, nil
}

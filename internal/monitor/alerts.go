package monitor

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"

	"samzasql/internal/kafka"
	"samzasql/internal/serde"
)

// DefaultAlertsTopic is the stream alert transitions publish to. The "__"
// prefix keeps it out of user-topic trace sampling, like __metrics and
// __traces.
const DefaultAlertsTopic = "__alerts"

// AlertState is the transition an alert record announces.
type AlertState string

const (
	// StateFiring means the rule's condition held for its sustain count.
	StateFiring AlertState = "firing"
	// StateResolved means a firing alert's condition cleared for the
	// sustain count.
	StateResolved AlertState = "resolved"
)

// AlertMessage is one serde-encoded alert transition on __alerts. Records
// are published only on transitions (deduplication: a condition that keeps
// violating while firing publishes nothing), so the stream is a compact
// event log of SLO state changes, replayable like any other stream.
type AlertMessage struct {
	// Rule names the rule that fired, unique within the monitor config.
	Rule string `json:"rule"`
	// Kind is the rule kind ("lag", "throughput-drop", "p99", "task-flap").
	Kind string `json:"kind"`
	// Job is the job the subject belongs to; empty for cluster-wide rules.
	Job string `json:"job,omitempty"`
	// Subject is what violated: a topic/partition for lag rules, a metric
	// name for latency/throughput rules, a task name for flap rules.
	Subject string `json:"subject"`
	// State is the transition: firing or resolved.
	State AlertState `json:"state"`
	// Value is the observed value at transition time (lag messages, p99
	// nanoseconds, flaps in window, throughput percent of trailing).
	Value int64 `json:"value"`
	// Threshold is the rule's configured bound.
	Threshold int64 `json:"threshold"`
	// Reason is a human-readable one-liner ("lag 1240 >= 200 for 3 samples,
	// +900 over window").
	Reason string `json:"reason,omitempty"`
	// TimeMillis is the transition wall-clock time.
	TimeMillis int64 `json:"time-millis"`
	// SinceMillis is when the alert started firing (set on both states, so
	// a resolved record carries the incident duration).
	SinceMillis int64 `json:"since-millis,omitempty"`
	// Seq numbers this monitor's alert records from 1.
	Seq int64 `json:"seq"`
}

// alertSerde routes alert records through the serde stack, registered as
// "alert" so jobs and tools resolve it by name.
type alertSerde struct{}

// Name implements serde.Serde.
func (alertSerde) Name() string { return "alert" }

// Encode implements serde.Serde.
func (alertSerde) Encode(v any) ([]byte, error) {
	m, ok := v.(*AlertMessage)
	if !ok {
		return nil, fmt.Errorf("%w: want *monitor.AlertMessage, got %T", serde.ErrWrongType, v)
	}
	return json.Marshal(m)
}

// Decode implements serde.Serde.
func (alertSerde) Decode(data []byte) (any, error) {
	var m AlertMessage
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, err
	}
	return &m, nil
}

func init() { serde.Register(alertSerde{}) }

// alertKey identifies one alert instance for deduplication. The job is part
// of the key: different jobs legitimately share subject names (every
// throughput rule's subject is its metric name), and each gets its own
// firing lifecycle.
type alertKey struct {
	rule    string
	job     string
	subject string
}

// alertStatus tracks one (rule, subject) pair through the sustain/firing
// state machine.
type alertStatus struct {
	firing      bool
	violStreak  int // consecutive violating evaluations
	cleanStreak int // consecutive clean evaluations while firing
	sinceMillis int64
	lastValue   int64
	lastReason  string
}

// alertManager is the firing/resolved state machine. Only the monitor run
// loop calls observe/sweep; the mutex exists for the /alerts handler and
// shell reads.
type alertManager struct {
	mu     sync.Mutex
	states map[alertKey]*alertStatus
	recent []AlertMessage // transition history ring, newest last
	seq    int64
}

// recentCap bounds the transition history kept for /alerts.
const recentCap = 256

func newAlertManager() *alertManager {
	return &alertManager{states: map[alertKey]*alertStatus{}}
}

// observe folds one evaluation of (rule, subject) into the state machine
// and returns the transition to publish, if this evaluation caused one.
// sustain is the number of consecutive evaluations the condition must hold
// (or clear) before the state flips — the debounce that keeps a flapping
// signal from spamming __alerts.
func (am *alertManager) observe(r Rule, job, subject string, violated bool, value int64, reason string, nowMillis int64) *AlertMessage {
	sustain := r.Sustain
	if sustain < 1 {
		sustain = 1
	}
	key := alertKey{rule: r.Name, job: job, subject: subject}
	am.mu.Lock()
	defer am.mu.Unlock()
	st := am.states[key]
	if st == nil {
		if !violated {
			return nil // never seen and clean: nothing to track
		}
		st = &alertStatus{}
		am.states[key] = st
	}
	st.lastValue = value
	if reason != "" {
		st.lastReason = reason
	}
	var transition *AlertMessage
	if violated {
		st.cleanStreak = 0
		st.violStreak++
		if !st.firing && st.violStreak >= sustain {
			st.firing = true
			st.sinceMillis = nowMillis
			transition = am.record(r, job, subject, StateFiring, value, reason, nowMillis, st.sinceMillis)
		}
	} else {
		st.violStreak = 0
		if st.firing {
			st.cleanStreak++
			if st.cleanStreak >= sustain {
				st.firing = false
				transition = am.record(r, job, subject, StateResolved, value, reason, nowMillis, st.sinceMillis)
				st.sinceMillis = 0
			}
		}
	}
	return transition
}

// record appends a transition to the history ring and returns it. Caller
// holds am.mu.
func (am *alertManager) record(r Rule, job, subject string, state AlertState, value int64, reason string, nowMillis, sinceMillis int64) *AlertMessage {
	am.seq++
	msg := AlertMessage{
		Rule:        r.Name,
		Kind:        string(r.Kind),
		Job:         job,
		Subject:     subject,
		State:       state,
		Value:       value,
		Threshold:   r.Threshold,
		Reason:      reason,
		TimeMillis:  nowMillis,
		SinceMillis: sinceMillis,
		Seq:         am.seq,
	}
	am.recent = append(am.recent, msg)
	if len(am.recent) > recentCap {
		am.recent = am.recent[len(am.recent)-recentCap:]
	}
	return &msg
}

// ActiveAlert is one currently-firing alert, for /alerts and \top.
type ActiveAlert struct {
	Rule        string `json:"rule"`
	Job         string `json:"job,omitempty"`
	Subject     string `json:"subject"`
	Value       int64  `json:"value"`
	Reason      string `json:"reason,omitempty"`
	SinceMillis int64  `json:"since-millis"`
}

// Active returns the currently-firing alerts, sorted by rule, job, subject.
func (am *alertManager) Active() []ActiveAlert {
	am.mu.Lock()
	defer am.mu.Unlock()
	out := make([]ActiveAlert, 0, len(am.states))
	for key, st := range am.states {
		if !st.firing {
			continue
		}
		out = append(out, ActiveAlert{
			Rule:        key.rule,
			Job:         key.job,
			Subject:     key.subject,
			Value:       st.lastValue,
			Reason:      st.lastReason,
			SinceMillis: st.sinceMillis,
		})
	}
	sortActive(out)
	return out
}

func sortActive(out []ActiveAlert) {
	for i := 1; i < len(out); i++ {
		for j := i; j > 0; j-- {
			a, b := out[j-1], out[j]
			if a.Rule < b.Rule ||
				(a.Rule == b.Rule && a.Job < b.Job) ||
				(a.Rule == b.Rule && a.Job == b.Job && a.Subject <= b.Subject) {
				break
			}
			out[j-1], out[j] = b, a
		}
	}
}

// Recent returns the newest transition records, newest last, up to max.
func (am *alertManager) Recent(max int) []AlertMessage {
	am.mu.Lock()
	defer am.mu.Unlock()
	n := len(am.recent)
	if max > 0 && n > max {
		n = max
	}
	out := make([]AlertMessage, n)
	copy(out, am.recent[len(am.recent)-n:])
	return out
}

// AlertsTailer consumes the alerts stream back into decoded records — the
// consumer half of the evaluator, used by the shell's \alerts command and
// by tests asserting on published transitions.
type AlertsTailer struct {
	consumer *kafka.Consumer
	s        serde.Serde
}

// NewAlertsTailer attaches a consumer at the start of the alerts topic.
func NewAlertsTailer(b *kafka.Broker, topic string) (*AlertsTailer, error) {
	s, err := serde.Lookup("alert")
	if err != nil {
		return nil, err
	}
	if err := b.EnsureTopic(topic, kafka.TopicConfig{Partitions: 1}); err != nil {
		return nil, fmt.Errorf("monitor: alerts tailer ensure topic: %w", err)
	}
	c := kafka.NewConsumer(b, "alerts-tailer")
	if err := c.Assign(kafka.TopicPartition{Topic: topic, Partition: 0}); err != nil {
		return nil, fmt.Errorf("monitor: alerts tailer assign: %w", err)
	}
	return &AlertsTailer{consumer: c, s: s}, nil
}

// Poll returns up to max alert records published since the last call,
// blocking per the consumer's semantics until records arrive or ctx ends.
func (t *AlertsTailer) Poll(ctx context.Context, max int) ([]*AlertMessage, error) {
	msgs, err := t.consumer.Poll(ctx, max)
	if err != nil {
		return nil, err
	}
	out := make([]*AlertMessage, 0, len(msgs))
	for i := range msgs {
		v, err := t.s.Decode(msgs[i].Value)
		if err != nil {
			return out, fmt.Errorf("monitor: alert decode: %w", err)
		}
		out = append(out, v.(*AlertMessage))
	}
	return out, nil
}

// Close releases the tailer's consumer.
func (t *AlertsTailer) Close() { t.consumer.Close() }

package monitor

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
	"time"

	"samzasql/internal/executor"
	"samzasql/internal/sql/catalog"
	"samzasql/internal/workload"
	"samzasql/internal/zk"
)

// httpQuery fetches one /query response from the introspection server,
// reporting false on any transport, status, or decode failure so callers
// can poll.
func httpQuery(t *testing.T, base, params string) (QueryResponse, bool) {
	t.Helper()
	resp, err := http.Get(base + "/query?" + params)
	if err != nil {
		return QueryResponse{}, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return QueryResponse{}, false
	}
	var out QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return QueryResponse{}, false
	}
	return out, true
}

// TestQueryEndpointMergedCrossContainerP99 is the acceptance e2e: a
// 2-container SQL job publishes per-container operator histograms on
// __metrics; /query answers the merged cross-container p99 for the filter
// operator, and the merged window count equals the sum of the two
// per-container counts exactly (sparse-bucket merge, not an average).
func TestQueryEndpointMergedCrossContainerP99(t *testing.T) {
	broker, runner := testEnv()
	cat := catalog.New()
	if err := workload.DefineCatalog(cat); err != nil {
		t.Fatal(err)
	}
	if _, err := workload.ProduceOrders(broker, "orders", 4, 2000, workload.DefaultOrdersConfig()); err != nil {
		t.Fatal(err)
	}
	e := executor.NewEngine(cat, broker, runner, zk.NewStore())
	e.Containers = 2
	e.MetricsInterval = 10 * time.Millisecond

	mon, err := Start(Config{Broker: broker, EvalInterval: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Stop()
	mon.Register(runner)
	addr, shutdown, err := runner.ServeIntrospection("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown(context.Background())
	base := "http://" + addr

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	p, job, err := e.ExecuteStream(ctx, "SELECT STREAM * FROM Orders WHERE units > 50")
	if err != nil {
		t.Fatal(err)
	}
	defer job.Stop()

	const metric = "operator.filter.process-ns"
	q := func(extra string) (QueryResponse, bool) {
		return httpQuery(t, base, fmt.Sprintf("metric=%s&agg=p99&job=%s&window=1m%s", metric, p.JobName, extra))
	}
	// Wait for both containers to report, the merged count to equal their
	// sum, and the count to have stopped moving (job drained) — equality at
	// a quiescent moment is the exact-merge acceptance check.
	var merged, per0, per1 QueryResponse
	prevCount := int64(-1)
	waitFor(t, 20*time.Second, func() bool {
		c0, ok0 := q("&container=0")
		c1, ok1 := q("&container=1")
		m, okM := q("")
		if !ok0 || !ok1 || !okM {
			return false
		}
		stable := m.Count == prevCount
		prevCount = m.Count
		merged, per0, per1 = m, c0, c1
		return c0.Count > 0 && c1.Count > 0 && m.Count == c0.Count+c1.Count && stable
	}, "merged cross-container p99 covering both containers")
	if merged.Value <= 0 {
		t.Fatalf("merged p99 = %d ns, want > 0", merged.Value)
	}
	// The merged p99 is a real data point, not below either container's own
	// p50-scale floor: it must be at least the smaller per-container p99's
	// bucket (both containers saw ~half the messages each).
	if merged.Value < min64(per0.Value, per1.Value) {
		t.Fatalf("merged p99 %d below both per-container p99s (%d, %d)", merged.Value, per0.Value, per1.Value)
	}

	// /alerts responds with well-formed JSON even with nothing firing.
	resp, err := http.Get(base + "/alerts")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/alerts status %d", resp.StatusCode)
	}
	var alerts AlertsResponse
	if err := json.NewDecoder(resp.Body).Decode(&alerts); err != nil {
		t.Fatalf("decode /alerts: %v", err)
	}
	if alerts.Active == nil || alerts.Recent == nil {
		t.Fatal("/alerts must return non-nil arrays")
	}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// TestQueryEndpointBadRequests pins the HTTP contract: missing metric and
// malformed parameters are 400s, unknown metrics are empty 200s.
func TestQueryEndpointBadRequests(t *testing.T) {
	broker, runner := testEnv()
	mon, err := Start(Config{Broker: broker})
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Stop()
	mon.Register(runner)
	addr, shutdown, err := runner.ServeIntrospection("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown(context.Background())
	base := "http://" + addr

	for _, c := range []struct {
		params string
		status int
	}{
		{"", http.StatusBadRequest},
		{"metric=x&agg=median", http.StatusBadRequest},
		{"metric=x&container=zero", http.StatusBadRequest},
		{"metric=x&window=-5s", http.StatusBadRequest},
		{"metric=does-not-exist&agg=p99", http.StatusOK},
	} {
		resp, err := http.Get(base + "/query?" + c.params)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != c.status {
			t.Errorf("GET /query?%s = %d, want %d", c.params, resp.StatusCode, c.status)
		}
	}
}

package monitor

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"samzasql/internal/kafka"
	"samzasql/internal/metrics"
	"samzasql/internal/samza"
	"samzasql/internal/yarn"
)

func testEnv() (*kafka.Broker, *samza.JobRunner) {
	b := kafka.NewBroker()
	c := yarn.NewCluster()
	c.AddNode("n1", yarn.Resource{VCores: 64, MemoryMB: 1 << 20})
	c.AddNode("n2", yarn.Resource{VCores: 64, MemoryMB: 1 << 20})
	return b, samza.NewJobRunner(b, c)
}

func produceN(t *testing.T, b *kafka.Broker, topic string, partition int32, n int, prefix string) {
	t.Helper()
	for i := 0; i < n; i++ {
		_, err := b.Produce(topic, kafka.Message{
			Partition: partition,
			Key:       []byte(fmt.Sprintf("%s-%d", prefix, i)),
			Value:     []byte(fmt.Sprintf("%s-v%d", prefix, i)),
			Timestamp: int64(i),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestStoreRingBounds pins the memory bound: a series holds at most
// Capacity samples, evicting the oldest.
func TestStoreRingBounds(t *testing.T) {
	st := NewStore(4)
	k := SeriesKey{Job: "j", Container: 0, Name: "c"}
	for i := 0; i < 10; i++ {
		st.Observe(k, KindCounter, int64(i), int64(i*100))
	}
	pts := st.Range("j", -1, "c", 0)[k]
	if len(pts) != 4 {
		t.Fatalf("ring holds %d points, want 4", len(pts))
	}
	for i, p := range pts {
		if want := int64(6 + i); p.TimeMillis != want {
			t.Fatalf("point %d at t=%d, want t=%d (oldest evicted first)", i, p.TimeMillis, want)
		}
	}
	if got, _ := st.Latest(k); got.Value != 900 {
		t.Fatalf("latest = %+v, want value 900", got)
	}

	hk := SeriesKey{Job: "j", Container: 0, Name: "h"}
	for i := 0; i < 10; i++ {
		var h metrics.Histogram
		h.Observe(int64(i + 1))
		st.ObserveHist(hk, int64(i), h.Snapshot())
	}
	if info := st.Series(); len(info) != 2 {
		t.Fatalf("store has %d series, want 2", len(info))
	}
	for _, info := range st.Series() {
		if info.Samples > 4 {
			t.Fatalf("series %v holds %d samples, capacity 4", info.Key, info.Samples)
		}
	}
}

// TestStoreWindowQuantileMergesContainers checks the /query p99 semantics:
// per-container window deltas merged exactly across containers, excluding
// observations that predate the window.
func TestStoreWindowQuantileMergesContainers(t *testing.T) {
	st := NewStore(64)
	rng := rand.New(rand.NewSource(3))
	var h0, h1, union metrics.Histogram

	// Pre-window noise on container 0 only: large values that must NOT
	// surface in the windowed quantile.
	for i := 0; i < 1000; i++ {
		h0.Observe(5_000_000 + rng.Int63n(1000))
	}
	st.ObserveHist(SeriesKey{Job: "j", Container: 0, Name: "op.ns"}, 1000, h0.Snapshot())
	st.ObserveHist(SeriesKey{Job: "j", Container: 1, Name: "op.ns"}, 1000, h1.Snapshot())

	// In-window observations on both containers.
	for i := 0; i < 2000; i++ {
		v := 1000 + rng.Int63n(10_000)
		if i%2 == 0 {
			h0.Observe(v)
		} else {
			h1.Observe(v)
		}
		union.Observe(v)
	}
	st.ObserveHist(SeriesKey{Job: "j", Container: 0, Name: "op.ns"}, 2000, h0.Snapshot())
	st.ObserveHist(SeriesKey{Job: "j", Container: 1, Name: "op.ns"}, 2000, h1.Snapshot())

	got, count := st.QuantileWindow("j", -1, "op.ns", 0.99, 1500)
	want := union.Snapshot()
	if count != want.Count {
		t.Fatalf("windowed count = %d, want %d (pre-window excluded, both containers included)", count, want.Count)
	}
	// The windowed delta carries the cumulative Max (documented on
	// DeltaSince), so compare at bucket granularity: same bucket as the
	// union's p99, i.e. within the layout's 1/8 relative error.
	wantP99 := want.Quantile(0.99)
	if diff := got - wantP99; diff < 0 || float64(diff) > float64(wantP99)/8+1 {
		t.Fatalf("windowed merged p99 = %d, want union p99 %d (same bucket)", got, wantP99)
	}
	if got >= 5_000_000 {
		t.Fatalf("windowed p99 %d polluted by pre-window observations", got)
	}
	// Per-container filter returns just that container's share.
	_, c0 := st.QuantileWindow("j", 0, "op.ns", 0.99, 1500)
	if c0 != 1000 {
		t.Fatalf("container-0 windowed count = %d, want 1000", c0)
	}
}

// TestCounterRateResetGuard pins restart behavior: a counter that goes
// backwards re-baselines at its new value instead of producing a negative
// rate, and the new value counts as fresh events.
func TestCounterRateResetGuard(t *testing.T) {
	st := NewStore(16)
	k := SeriesKey{Job: "j", Container: 0, Name: "msgs"}
	st.Observe(k, KindCounter, 0, 100)
	st.Observe(k, KindCounter, 1000, 200) // +100
	st.Observe(k, KindCounter, 2000, 50)  // restart: counts 50
	st.Observe(k, KindCounter, 3000, 150) // +100
	rate, events := st.CounterRate("j", -1, "msgs", 0)
	if events != 250 {
		t.Fatalf("events = %d, want 250 (100 + restart 50 + 100)", events)
	}
	if rate <= 0 {
		t.Fatalf("rate = %f, want positive", rate)
	}
}

// TestAlertManagerSustainAndDedup pins the state machine: a condition must
// hold Sustain consecutive evaluations to fire, repeated violations while
// firing publish nothing, and resolution needs Sustain clean evaluations.
func TestAlertManagerSustainAndDedup(t *testing.T) {
	am := newAlertManager()
	r := Rule{Name: "lag", Kind: RuleLag, Threshold: 10, Sustain: 3}
	seq := []struct {
		violated bool
		want     AlertState // "" = no transition
	}{
		{true, ""}, {true, ""}, {true, StateFiring}, // sustain 3 to fire
		{true, ""}, {true, ""}, // dedup while firing
		{false, ""}, {true, ""}, // clean streak broken: stays firing
		{false, ""}, {false, ""}, {false, StateResolved}, // sustain 3 to resolve
		{false, ""}, // already resolved: nothing
	}
	for i, step := range seq {
		got := am.observe(r, "job", "kafka.lag.in.0", step.violated, 42, "r", int64(1000+i))
		switch {
		case step.want == "" && got != nil:
			t.Fatalf("step %d: unexpected transition %+v", i, got)
		case step.want != "" && (got == nil || got.State != step.want):
			t.Fatalf("step %d: transition = %+v, want state %q", i, got, step.want)
		}
	}
	if active := am.Active(); len(active) != 0 {
		t.Fatalf("resolved alert still active: %+v", active)
	}
	recent := am.Recent(0)
	if len(recent) != 2 || recent[0].State != StateFiring || recent[1].State != StateResolved {
		t.Fatalf("transition history = %+v, want [firing resolved]", recent)
	}
	if recent[1].SinceMillis != recent[0].TimeMillis {
		t.Fatalf("resolved record since=%d, want firing time %d", recent[1].SinceMillis, recent[0].TimeMillis)
	}
}

func TestSparkline(t *testing.T) {
	if got := Sparkline([]int64{0, 5, 10}); got != "▁▄█" {
		t.Fatalf("sparkline = %q, want ▁▄█", got)
	}
	if got := Sparkline([]int64{0, 0}); got != "▁▁" {
		t.Fatalf("all-zero sparkline = %q", got)
	}
	if got := Sparkline(nil); got != "" {
		t.Fatalf("empty sparkline = %q", got)
	}
}

// slowTask simulates a task that cannot keep up: a fixed per-message delay
// makes an injected burst accumulate consumer lag, then drain.
type slowTask struct {
	delay     time.Duration
	processed *atomic.Int64
}

func (t *slowTask) Init(*samza.TaskContext) error { return nil }

func (t *slowTask) Process(env samza.IncomingMessageEnvelope, c samza.MessageCollector, _ samza.Coordinator) error {
	if t.delay > 0 {
		time.Sleep(t.delay)
	}
	t.processed.Add(1)
	return nil
}

// TestLagAlertFiresAndResolves is the end-to-end alert demo: an injected
// hot partition drives per-partition lag over the rule threshold, the
// monitor publishes a firing record on __alerts, and draining the backlog
// publishes the matching resolved record.
func TestLagAlertFiresAndResolves(t *testing.T) {
	b, runner := testEnv()
	if err := b.EnsureTopic("in", kafka.TopicConfig{Partitions: 1}); err != nil {
		t.Fatal(err)
	}
	// Hot partition: a burst the slow task needs ~1s to drain.
	produceN(t, b, "in", 0, 500, "burst")

	var processed atomic.Int64
	job := &samza.JobSpec{
		Name:            "laggy",
		Inputs:          []samza.StreamSpec{{Topic: "in"}},
		TaskFactory:     func() samza.StreamTask { return &slowTask{delay: 2 * time.Millisecond, processed: &processed} },
		MetricsInterval: 10 * time.Millisecond,
	}

	mon, err := Start(Config{
		Broker:       b,
		Rules:        []Rule{LagRule(100, time.Second, 2)},
		EvalInterval: 10 * time.Millisecond,
		Health: func() map[string]map[string]string {
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Stop()

	tailer, err := NewAlertsTailer(b, DefaultAlertsTopic)
	if err != nil {
		t.Fatal(err)
	}
	defer tailer.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rj, err := runner.Submit(ctx, job)
	if err != nil {
		t.Fatal(err)
	}
	defer rj.Stop()

	// Collect alert records until the resolved transition (or timeout).
	actx, acancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer acancel()
	var records []*AlertMessage
	for {
		batch, err := tailer.Poll(actx, 16)
		if err != nil {
			t.Fatalf("alerts poll after %d records: %v (processed=%d)", len(records), err, processed.Load())
		}
		records = append(records, batch...)
		if len(records) > 0 && records[len(records)-1].State == StateResolved {
			break
		}
	}

	if len(records) < 2 {
		t.Fatalf("want firing + resolved, got %d records", len(records))
	}
	firing, resolved := records[0], records[len(records)-1]
	if firing.State != StateFiring || firing.Subject != "kafka.lag.in.0" || firing.Job != "laggy" {
		t.Fatalf("first record = %+v, want firing kafka.lag.in.0", firing)
	}
	if firing.Value < 100 {
		t.Fatalf("firing lag %d below threshold 100", firing.Value)
	}
	if !strings.Contains(firing.Reason, "lag") {
		t.Fatalf("firing reason %q does not explain the lag", firing.Reason)
	}
	if resolved.State != StateResolved || resolved.Subject != firing.Subject {
		t.Fatalf("last record = %+v, want resolved for %s", resolved, firing.Subject)
	}
	if resolved.SinceMillis != firing.TimeMillis {
		t.Fatalf("resolved since=%d, want firing time %d", resolved.SinceMillis, firing.TimeMillis)
	}
	// Dedup: exactly one firing and one resolved for the subject.
	for _, rec := range records[1 : len(records)-1] {
		if rec.Subject == firing.Subject {
			t.Fatalf("duplicate transition while firing: %+v", rec)
		}
	}
	// The monitor's store answered the same story: messages flowed.
	if _, events := mon.Store().CounterRate("laggy", -1, "messages-processed", 0); events == 0 {
		t.Fatal("store ingested no messages-processed increments")
	}
}

// TestTailersResumeAcrossContainerRestart is the restart-coverage test: a
// job whose task crashes mid-stream restarts under the YARN sim while the
// monitor tails __metrics and __traces. The tailers must keep consuming
// (snapshots from both attempts arrive), the restart must be visible in
// the lifecycle event log, and the store's reset guard must keep windowed
// rates sane (no negative, no double-count beyond the checkpoint replay
// window).
func TestTailersResumeAcrossContainerRestart(t *testing.T) {
	b, runner := testEnv()
	runner.EnableEventLog("")
	if err := b.CreateTopic("in", kafka.TopicConfig{Partitions: 1}); err != nil {
		t.Fatal(err)
	}
	const total = 200
	produceN(t, b, "in", 0, total, "m")

	var processed atomic.Int64
	var crashed atomic.Bool
	job := &samza.JobSpec{
		Name:            "crashy",
		Inputs:          []samza.StreamSpec{{Topic: "in"}},
		CommitEvery:     10,
		MaxRestarts:     2,
		MetricsInterval: 5 * time.Millisecond,
		TaskFactory: func() samza.StreamTask {
			// The per-message delay keeps processing slower than the 5ms
			// snapshot interval, so both attempts publish intermediate
			// counter values and the restart reset is observable.
			return &crashingTask{crashAt: 80, delay: 200 * time.Microsecond, crashed: &crashed, processed: &processed}
		},
	}

	mon, err := Start(Config{
		Broker:       b,
		Rules:        []Rule{}, // pure ingestion test
		EvalInterval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Stop()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rj, err := runner.Submit(ctx, job)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, func() bool {
		return processed.Load() >= total && crashed.Load()
	}, "all messages processed across the crash")
	rj.Stop()

	// Closed flips on a Final snapshot (attempt 1's crash flush also sets
	// it); the real completion signal is the reset from attempt 2's
	// snapshots reaching the store.
	flatten := func() []Point {
		var all []Point
		for _, p := range mon.Store().Range("crashy", -1, "messages-processed", 0) {
			all = append(all, p...)
		}
		return all
	}
	sawReset := func() bool {
		all := flatten()
		for i := 1; i < len(all); i++ {
			if all[i].Value < all[i-1].Value {
				return true
			}
		}
		return false
	}
	waitFor(t, 5*time.Second, sawReset, "counter reset from the restarted attempt's snapshots")
	if !mon.Store().Closed("crashy", 0) {
		t.Fatal("no final snapshot ingested")
	}

	// Reset-guarded event total: at least every message once (at-least-once
	// delivery), at most total + the checkpoint replay window. waitFor: the
	// second attempt's final flush may still be in flight.
	waitFor(t, 5*time.Second, func() bool {
		_, events := mon.Store().CounterRate("crashy", -1, "messages-processed", 0)
		return events >= total
	}, "windowed event total covering every message")
	_, events := mon.Store().CounterRate("crashy", -1, "messages-processed", 0)
	if events > total+2*10 {
		t.Fatalf("windowed events = %d: double-counting beyond the replay window (total %d, CommitEvery 10)", events, total)
	}

	// The lifecycle event log recorded the restart.
	waitFor(t, 5*time.Second, func() bool {
		for _, ev := range mon.RecentEvents(0) {
			if ev.Kind == "container-restart" {
				return true
			}
		}
		return false
	}, "container-restart lifecycle event ingested")
}

// crashingTask fails once at crashAt messages, then processes normally.
type crashingTask struct {
	crashAt   int64
	delay     time.Duration
	crashed   *atomic.Bool
	processed *atomic.Int64
}

func (t *crashingTask) Init(*samza.TaskContext) error { return nil }

func (t *crashingTask) Process(env samza.IncomingMessageEnvelope, c samza.MessageCollector, _ samza.Coordinator) error {
	if t.delay > 0 {
		time.Sleep(t.delay)
	}
	n := t.processed.Add(1)
	if n == t.crashAt && t.crashed.CompareAndSwap(false, true) {
		return fmt.Errorf("injected task failure")
	}
	return nil
}

// TestTaskFlapRule drives the health-based rule directly through a fake
// HealthSource: a task flapping between running and failed fires, then
// resolves once it settles.
func TestTaskFlapRule(t *testing.T) {
	b, _ := testEnv()
	var state atomic.Value
	state.Store("running")
	flip := func() { // toggles the reported state
		if state.Load() == "running" {
			state.Store("failed")
		} else {
			state.Store("running")
		}
	}
	mon, err := Start(Config{
		Broker:       b,
		Rules:        []Rule{TaskFlapRule(3, 5*time.Second)},
		EvalInterval: 5 * time.Millisecond,
		Health: func() map[string]map[string]string {
			return map[string]map[string]string{
				"j": {"Partition-0": state.Load().(string)},
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Stop()

	// Flap a few times with gaps larger than the eval interval so each
	// transition is observed.
	for i := 0; i < 5; i++ {
		time.Sleep(15 * time.Millisecond)
		flip()
	}
	waitFor(t, 5*time.Second, func() bool {
		for _, a := range mon.ActiveAlerts() {
			if a.Rule == "task-flap" && a.Subject == "Partition-0" {
				return true
			}
		}
		return false
	}, "task-flap alert firing")
}

// Package monitor is the cluster-wide observability aggregator: it tails
// the __metrics and __traces streams (plus the lifecycle event log that
// rides on __traces) into a bounded in-memory time-series store, answers
// windowed queries over it (raw ranges, rates, and p50/p95/p99 roll-ups
// merged exactly across containers from the log-bucketed histogram
// buckets), and evaluates SLO rules — sustained consumer lag, throughput
// drop versus the trailing window, p99 over threshold, task-liveness flaps
// — publishing firing/resolved alert transitions onto the __alerts stream.
//
// Because the monitor consumes ordinary streams, it inherits the
// platform's own properties (§2 of the paper): it can run anywhere a
// consumer can, it can replay history from retention, and its output
// (__alerts) is itself a stream any job can consume. It is the measurement
// substrate the adaptive-runtime work (ROADMAP item 5) reads its control
// inputs from.
//
// Concurrency layout: two poller goroutines block on the tailers and
// forward decoded batches over channels; ONE run-loop goroutine is the
// single writer to all monitor state (the series store, the per-job trace
// aggregates, the alert state machine). HTTP handlers and the shell read
// through RLock-guarded accessors. All goroutines are WaitGroup-joined,
// and alert publishes happen with no monitor lock held.
//
//samzasql:enforce goroutine-supervision
package monitor

package monitor

import (
	"encoding/json"
	"net/http"
	"sort"
	"strconv"
	"time"

	"samzasql/internal/metrics"
	"samzasql/internal/samza"
)

// DefaultQueryWindow is the lookback /query uses when the request does not
// pass one.
const DefaultQueryWindow = 30 * time.Second

// QuerySeries is one series' raw points in a query response.
type QuerySeries struct {
	Job       string  `json:"job"`
	Container int     `json:"container"`
	Name      string  `json:"name"`
	Points    []Point `json:"points"`
}

// QueryResponse is the /query JSON payload. Value carries the aggregate
// (quantile nanoseconds, summed rate, window max); Series carries raw
// points when agg=raw.
type QueryResponse struct {
	Metric   string        `json:"metric"`
	Agg      string        `json:"agg"`
	WindowMS int64         `json:"window-ms"`
	Job      string        `json:"job,omitempty"`
	Value    int64         `json:"value"`
	Rate     float64       `json:"rate,omitempty"`
	Count    int64         `json:"count"`
	Series   []QuerySeries `json:"series,omitempty"`
}

// Register mounts the monitor's endpoints on the runner's introspection
// server: /query (windowed aggregates), /alerts (active + recent
// transitions), and /profile (cluster-merged hot functions).
func (m *Monitor) Register(r *samza.JobRunner) {
	r.Handle("/query", m.QueryHandler())
	r.Handle("/alerts", m.AlertsHandler())
	r.Handle("/profile", m.ProfileHandler())
}

// QueryHandler answers windowed queries over the store:
//
//	GET /query?metric=<name>&agg=raw|rate|p50|p95|p99|max[&job=<job>][&container=<n>][&window=<dur>]
//
// Quantile aggregates merge the log-bucketed histogram deltas exactly
// across containers; rate sums counter increments with restart guards;
// raw returns the per-series points. Unknown metrics return empty results
// (Count 0), not errors — absence of data is an answer.
func (m *Monitor) QueryHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		metric := req.URL.Query().Get("metric")
		if metric == "" {
			http.Error(w, "missing ?metric=", http.StatusBadRequest)
			return
		}
		agg := req.URL.Query().Get("agg")
		if agg == "" {
			agg = "raw"
		}
		job := req.URL.Query().Get("job")
		container := -1
		if c := req.URL.Query().Get("container"); c != "" {
			n, err := strconv.Atoi(c)
			if err != nil {
				http.Error(w, "bad ?container=: "+err.Error(), http.StatusBadRequest)
				return
			}
			container = n
		}
		window := DefaultQueryWindow
		if ws := req.URL.Query().Get("window"); ws != "" {
			d, err := time.ParseDuration(ws)
			if err != nil || d <= 0 {
				http.Error(w, "bad ?window= (want a positive Go duration like 5s)", http.StatusBadRequest)
				return
			}
			window = d
		}
		resp, ok := m.Query(metric, agg, job, container, window, time.Now())
		if !ok {
			http.Error(w, "bad ?agg= (want raw, rate, p50, p95, p99 or max)", http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(resp)
	})
}

// Query evaluates one windowed query against the store. The bool is false
// only for an unknown agg.
func (m *Monitor) Query(metric, agg, job string, container int, window time.Duration, now time.Time) (QueryResponse, bool) {
	from := Window(now, window)
	resp := QueryResponse{
		Metric:   metric,
		Agg:      agg,
		WindowMS: window.Milliseconds(),
		Job:      job,
	}
	switch agg {
	case "raw":
		ranges := m.store.Range(job, container, metric, from)
		for k, pts := range ranges {
			resp.Series = append(resp.Series, QuerySeries{
				Job: k.Job, Container: k.Container, Name: k.Name, Points: pts,
			})
			resp.Count += int64(len(pts))
		}
		sort.Slice(resp.Series, func(i, j int) bool {
			a, b := resp.Series[i], resp.Series[j]
			if a.Job != b.Job {
				return a.Job < b.Job
			}
			return a.Container < b.Container
		})
	case "rate":
		rate, events := m.store.CounterRate(job, container, metric, from)
		resp.Rate = rate
		resp.Value = int64(rate)
		resp.Count = events
	case "p50", "p95", "p99":
		q := map[string]float64{"p50": 0.50, "p95": 0.95, "p99": 0.99}[agg]
		resp.Value, resp.Count = m.store.QuantileWindow(job, container, metric, q, from)
	case "max":
		resp.Value = m.store.MaxWindow(job, container, metric, from)
		_, resp.Count = m.store.QuantileWindow(job, container, metric, 1.0, from)
	default:
		return QueryResponse{}, false
	}
	return resp, true
}

// AlertsResponse is the /alerts JSON payload.
type AlertsResponse struct {
	Active []ActiveAlert  `json:"active"`
	Recent []AlertMessage `json:"recent"`
}

// AlertsHandler serves the active alerts and the recent transition log.
func (m *Monitor) AlertsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		resp := AlertsResponse{
			Active: m.ActiveAlerts(),
			Recent: m.RecentAlerts(64),
		}
		if resp.Active == nil {
			resp.Active = []ActiveAlert{}
		}
		if resp.Recent == nil {
			resp.Recent = []AlertMessage{}
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(resp)
	})
}

// WindowHistogramFor is a convenience for callers needing the merged
// windowed distribution (the shell's operator table).
func (m *Monitor) WindowHistogramFor(job, metric string, window time.Duration, now time.Time) metrics.HistogramSnapshot {
	return m.store.WindowHistogram(job, -1, metric, Window(now, window))
}

package monitor

import (
	"fmt"
	"time"
)

// RuleKind selects the evaluation strategy.
type RuleKind string

const (
	// RuleLag fires when a per-partition consumer-lag gauge stays at or
	// above Threshold messages. The reason line reports the growth over the
	// window, so a sustained-growth incident is distinguishable from a
	// steady backlog.
	RuleLag RuleKind = "lag"
	// RuleThroughputDrop fires when the rate of a counter over the last
	// Window falls below (1 - DropFraction) of its rate over the trailing
	// window [2·Window, Window) — sudden slowdowns against the job's own
	// recent baseline, not an absolute bound.
	RuleThroughputDrop RuleKind = "throughput-drop"
	// RuleP99 fires when the cross-container merged p99 of a histogram
	// metric over the last Window is at or above Threshold (nanoseconds for
	// latency histograms).
	RuleP99 RuleKind = "p99"
	// RuleTaskFlap fires when a task's /healthz liveness state changes at
	// least Threshold times within Window — a task cycling through
	// running/failed/restarting instead of settling.
	RuleTaskFlap RuleKind = "task-flap"
)

// Rule is one declarative SLO condition the evaluator checks every
// EvalInterval. A rule fires per subject (partition gauge, metric, task),
// so one rule yields one alert per violating subject, each with its own
// firing/resolved lifecycle.
type Rule struct {
	// Name identifies the rule in alert records; must be unique within a
	// monitor's rule set.
	Name string
	// Kind selects the evaluation strategy.
	Kind RuleKind
	// Metric is the metric the rule reads: a gauge name prefix for RuleLag
	// (default "kafka.lag."), a counter name for RuleThroughputDrop, a
	// histogram name for RuleP99. Unused for RuleTaskFlap.
	Metric string
	// Job restricts the rule to one job; empty means every job.
	Job string
	// Threshold is the bound: lag messages, p99 nanoseconds, or flap count.
	Threshold int64
	// DropFraction (RuleThroughputDrop only) is the fractional drop versus
	// the trailing window that counts as a violation, e.g. 0.5 fires when
	// throughput halves.
	DropFraction float64
	// Window is the evaluation lookback.
	Window time.Duration
	// Sustain is how many consecutive evaluations the condition must hold
	// before firing (and clear before resolving). 0 means 1.
	Sustain int
}

// DefaultLagPrefix is the gauge namespace per-partition consumer lag lives
// in (bound by Consumer.BindLagGauge as "kafka.lag.<topic>.<partition>").
const DefaultLagPrefix = "kafka.lag."

// LagRule builds a sustained consumer-lag rule over every partition gauge.
func LagRule(threshold int64, window time.Duration, sustain int) Rule {
	return Rule{
		Name:      fmt.Sprintf("lag-over-%d", threshold),
		Kind:      RuleLag,
		Metric:    DefaultLagPrefix,
		Threshold: threshold,
		Window:    window,
		Sustain:   sustain,
	}
}

// ThroughputDropRule builds a rule firing when counter's rate drops by
// dropFraction versus the trailing window.
func ThroughputDropRule(counter string, dropFraction float64, window time.Duration, sustain int) Rule {
	return Rule{
		Name:         fmt.Sprintf("throughput-drop-%s", counter),
		Kind:         RuleThroughputDrop,
		Metric:       counter,
		DropFraction: dropFraction,
		Window:       window,
		Sustain:      sustain,
	}
}

// P99Rule builds a tail-latency rule on a histogram metric.
func P99Rule(metric string, thresholdNs int64, window time.Duration, sustain int) Rule {
	return Rule{
		Name:      fmt.Sprintf("p99-%s", metric),
		Kind:      RuleP99,
		Metric:    metric,
		Threshold: thresholdNs,
		Window:    window,
		Sustain:   sustain,
	}
}

// TaskFlapRule builds a task-liveness flap rule: maxFlaps state changes
// within window fire it.
func TaskFlapRule(maxFlaps int64, window time.Duration) Rule {
	return Rule{
		Name:      "task-flap",
		Kind:      RuleTaskFlap,
		Threshold: maxFlaps,
		Window:    window,
	}
}

// DefaultRules is a conservative starter set: sustained lag over 10k
// messages, throughput halving, and 3 liveness flaps in 30 seconds. p99
// rules are workload-specific (they name a histogram metric), so none is
// included by default.
func DefaultRules() []Rule {
	return []Rule{
		LagRule(10_000, 5*time.Second, 3),
		ThroughputDropRule("messages-processed", 0.5, 5*time.Second, 3),
		TaskFlapRule(3, 30*time.Second),
	}
}

// violation is one subject's evaluation result inside an eval pass.
type violation struct {
	job      string
	subject  string
	violated bool
	value    int64
	reason   string
}

// evalRule computes this eval pass's violations for one rule. It reads the
// store (RLock inside each accessor) and the flap log; it holds no lock of
// its own, so the caller can publish transitions immediately after.
func (m *Monitor) evalRule(r Rule, now time.Time) []violation {
	switch r.Kind {
	case RuleLag:
		return m.evalLag(r, now)
	case RuleThroughputDrop:
		return m.evalThroughputDrop(r, now)
	case RuleP99:
		return m.evalP99(r, now)
	case RuleTaskFlap:
		return m.evalTaskFlap(r, now)
	default:
		return nil
	}
}

// evalLag checks every per-partition lag gauge against the threshold. Lag
// gauges from different containers never overlap (each partition has one
// owner), so per-subject evaluation needs no cross-container merge —
// subjects are job/gauge-name pairs.
func (m *Monitor) evalLag(r Rule, now time.Time) []violation {
	prefix := r.Metric
	if prefix == "" {
		prefix = DefaultLagPrefix
	}
	from := Window(now, r.Window)
	series := m.store.GaugeSeries(r.Job, prefix, from)
	// Aggregate by (job, name): after a container restart the same gauge
	// may briefly exist under two container IDs; latest point wins.
	type subjKey struct{ job, name string }
	latest := map[subjKey]Point{}
	earliest := map[subjKey]Point{}
	for k, pts := range series {
		sk := subjKey{job: k.Job, name: k.Name}
		last := pts[len(pts)-1]
		if cur, ok := latest[sk]; !ok || last.TimeMillis > cur.TimeMillis {
			latest[sk] = last
		}
		first := pts[0]
		if cur, ok := earliest[sk]; !ok || first.TimeMillis < cur.TimeMillis {
			earliest[sk] = first
		}
	}
	out := make([]violation, 0, len(latest))
	for sk, last := range latest {
		growth := last.Value - earliest[sk].Value
		v := violation{
			job:      sk.job,
			subject:  sk.name,
			violated: last.Value >= r.Threshold,
			value:    last.Value,
		}
		if v.violated {
			v.reason = fmt.Sprintf("lag %d >= %d (%+d over %s)", last.Value, r.Threshold, growth, r.Window)
		}
		out = append(out, v)
	}
	return out
}

// evalThroughputDrop compares the counter's rate over the last window to
// its rate over the trailing window, per job.
func (m *Monitor) evalThroughputDrop(r Rule, now time.Time) []violation {
	jobs := []string{r.Job}
	if r.Job == "" {
		jobs = m.store.Jobs()
	}
	var out []violation
	for _, job := range jobs {
		if job == MonitorJob {
			continue // the monitor's own series are not a workload
		}
		recentFrom := Window(now, r.Window)
		trailingFrom := Window(now, 2*r.Window)
		recentRate, _ := m.store.CounterRate(job, -1, r.Metric, recentFrom)
		// Trailing rate over [2W, W): approximate via rates over [2W, now]
		// and [W, now] — trailing = 2*whole - recent.
		wholeRate, _ := m.store.CounterRate(job, -1, r.Metric, trailingFrom)
		trailingRate := 2*wholeRate - recentRate
		if trailingRate <= 0 {
			continue // no baseline yet (job just started or already idle)
		}
		pct := int64(100 * recentRate / trailingRate)
		v := violation{
			job:      job,
			subject:  r.Metric,
			violated: recentRate < (1-r.DropFraction)*trailingRate,
			value:    pct,
		}
		if v.violated {
			v.reason = fmt.Sprintf("throughput %.0f/s is %d%% of trailing %.0f/s (drop bound %.0f%%)",
				recentRate, pct, trailingRate, 100*(1-r.DropFraction))
		}
		out = append(out, v)
	}
	return out
}

// evalP99 checks the merged cross-container windowed p99 of the metric.
func (m *Monitor) evalP99(r Rule, now time.Time) []violation {
	jobs := []string{r.Job}
	if r.Job == "" {
		jobs = m.store.Jobs()
	}
	var out []violation
	for _, job := range jobs {
		p99, count := m.store.QuantileWindow(job, -1, r.Metric, 0.99, Window(now, r.Window))
		if count == 0 {
			continue // metric absent or idle in this job
		}
		v := violation{
			job:      job,
			subject:  r.Metric,
			violated: p99 >= r.Threshold,
			value:    p99,
		}
		if v.violated {
			v.reason = fmt.Sprintf("p99 %s >= %s over %s (%d observations)",
				time.Duration(p99), time.Duration(r.Threshold), r.Window, count)
		}
		out = append(out, v)
	}
	return out
}

// evalTaskFlap counts liveness state changes per task within the window
// from the health poller's flap log.
func (m *Monitor) evalTaskFlap(r Rule, now time.Time) []violation {
	from := Window(now, r.Window)
	flaps := m.flapCounts(from)
	out := make([]violation, 0, len(flaps))
	for subj, count := range flaps {
		v := violation{
			job:      subj.job,
			subject:  subj.task,
			violated: count >= r.Threshold,
			value:    count,
		}
		if v.violated {
			v.reason = fmt.Sprintf("%d liveness transitions in %s (bound %d)", count, r.Window, r.Threshold)
		}
		out = append(out, v)
	}
	return out
}

package monitor

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"samzasql/internal/profile"
	"samzasql/internal/samza"
)

// DefaultHotCapacity is the per-(job, container) batch-ring size when the
// config does not choose one. At the default 1s capture interval it retains
// ~64s of profile history per container.
const DefaultHotCapacity = 64

// DefaultHotTopN is how many functions /profile and \profile return when
// the request does not choose.
const DefaultHotTopN = 20

// Profile kinds the hot store aggregates, as /profile's ?kind= values.
const (
	// HotKindCPU is per-function CPU time over capture windows (a delta:
	// window values sum across batches).
	HotKindCPU = "cpu"
	// HotKindHeap is per-function allocated bytes between captures (also a
	// delta).
	HotKindHeap = "heap"
	// HotKindGoroutine is per-function live goroutine counts (a level: the
	// newest batch per container wins).
	HotKindGoroutine = "goroutine"
)

// hotKey identifies one container's batch ring.
type hotKey struct {
	Job       string
	Container int
}

// hotRing is a fixed-capacity ring of profile batches, oldest overwritten
// first — the same bounded-memory discipline as the scalar series store,
// but at batch granularity: each batch already carries top-N folded
// functions, so memory is O(containers × capacity × topN) forever.
type hotRing struct {
	buf   []*samza.ProfileBatchMessage
	start int
	n     int
}

func (r *hotRing) add(m *samza.ProfileBatchMessage) {
	if r.n < cap(r.buf) {
		r.buf = r.buf[:r.n+1]
		r.buf[(r.start+r.n)%cap(r.buf)] = m
		r.n++
		return
	}
	r.buf[r.start] = m
	r.start = (r.start + 1) % cap(r.buf)
}

// at returns the i-th oldest retained batch.
func (r *hotRing) at(i int) *samza.ProfileBatchMessage {
	return r.buf[(r.start+i)%cap(r.buf)]
}

// HotFunc is one function's cluster-merged aggregate over a query window.
type HotFunc struct {
	// Name is the fully-qualified function name.
	Name string `json:"name"`
	// Flat is the value attributed to the function's own frames: CPU
	// nanoseconds, allocated bytes, or goroutine count by kind.
	Flat int64 `json:"flat"`
	// Cum is the value of samples the function appears anywhere in.
	Cum int64 `json:"cum"`
}

// HotStore aggregates profile batches into cluster-wide windowed top-N hot
// functions. Ingestion is single-writer (the monitor run loop); reads copy
// out under an RWMutex, mirroring the series store.
type HotStore struct {
	mu       sync.RWMutex
	capacity int
	rings    map[hotKey]*hotRing
}

// NewHotStore builds a store retaining capacity batches per container.
func NewHotStore(capacity int) *HotStore {
	if capacity < 2 {
		capacity = 2
	}
	return &HotStore{capacity: capacity, rings: map[hotKey]*hotRing{}}
}

// Ingest files one profile batch.
func (h *HotStore) Ingest(m *samza.ProfileBatchMessage) {
	if m == nil {
		return
	}
	k := hotKey{Job: m.Job, Container: m.Container}
	h.mu.Lock()
	r := h.rings[k]
	if r == nil {
		r = &hotRing{buf: make([]*samza.ProfileBatchMessage, 0, h.capacity)}
		h.rings[k] = r
	}
	r.add(m)
	h.mu.Unlock()
}

// Jobs returns the distinct job names with retained profiles, sorted.
func (h *HotStore) Jobs() []string {
	h.mu.RLock()
	seen := map[string]bool{}
	for k := range h.rings {
		seen[k.Job] = true
	}
	h.mu.RUnlock()
	out := make([]string, 0, len(seen))
	for j := range seen {
		out = append(out, j)
	}
	sort.Strings(out)
	return out
}

// Batches reports how many batches are retained for a job ("" = all jobs).
func (h *HotStore) Batches(job string) int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	total := 0
	for k, r := range h.rings {
		if job == "" || k.Job == job {
			total += r.n
		}
	}
	return total
}

// TopN returns the cluster-merged top-n hot functions of one kind for a job
// ("" merges every job) over the window [fromMillis, now], sorted by Flat
// descending, plus the number of distinct containers that contributed.
// CPU and heap batches are window deltas, so the merge sums them; the
// goroutine kind is a level, so only each container's newest in-window
// batch contributes.
func (h *HotStore) TopN(job, kind string, n int, fromMillis int64) ([]HotFunc, int) {
	if n <= 0 {
		n = DefaultHotTopN
	}
	h.mu.RLock()
	var lists [][]profile.FuncStat
	containers := 0
	for k, r := range h.rings {
		if job != "" && k.Job != job {
			continue
		}
		contributed := false
		if kind == HotKindGoroutine {
			// Newest in-window batch with a goroutine fold wins.
			for i := r.n - 1; i >= 0; i-- {
				m := r.at(i)
				if m.TimeMillis < fromMillis {
					break
				}
				if len(m.Goroutines) > 0 {
					lists = append(lists, m.Goroutines)
					contributed = true
					break
				}
			}
		} else {
			for i := 0; i < r.n; i++ {
				m := r.at(i)
				if m.TimeMillis < fromMillis {
					continue
				}
				var stats []profile.FuncStat
				if kind == HotKindHeap {
					stats = m.HeapDelta
				} else {
					stats = m.CPU
				}
				if len(stats) > 0 {
					lists = append(lists, stats)
					contributed = true
				}
			}
		}
		if contributed {
			containers++
		}
	}
	h.mu.RUnlock()
	merged := profile.Merge(lists...)
	out := make([]HotFunc, 0, n)
	for _, s := range profile.Truncate(merged, n) {
		out = append(out, HotFunc{Name: s.Name, Flat: s.Flat, Cum: s.Cum})
	}
	return out, containers
}

// ProfileResponse is the /profile JSON payload.
type ProfileResponse struct {
	Job        string    `json:"job,omitempty"`
	Kind       string    `json:"kind"`
	WindowMS   int64     `json:"window-ms"`
	Containers int       `json:"containers"`
	Batches    int       `json:"batches"`
	Functions  []HotFunc `json:"functions"`
}

// HotStore exposes the profile aggregation store.
func (m *Monitor) HotStore() *HotStore { return m.hot }

// ProfileHandler answers cluster-merged hot-function queries:
//
//	GET /profile?[top=N][&kind=cpu|heap|goroutine][&job=<job>][&window=<dur>]
//
// Functions merge across every container that published profile batches in
// the window; flat/cum semantics follow pprof's. An empty function list is
// an answer (no batches in the window), not an error.
func (m *Monitor) ProfileHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		kind := req.URL.Query().Get("kind")
		if kind == "" {
			kind = HotKindCPU
		}
		if kind != HotKindCPU && kind != HotKindHeap && kind != HotKindGoroutine {
			http.Error(w, "bad ?kind= (want cpu, heap or goroutine)", http.StatusBadRequest)
			return
		}
		top := DefaultHotTopN
		if ts := req.URL.Query().Get("top"); ts != "" {
			n, err := strconv.Atoi(ts)
			if err != nil || n <= 0 {
				http.Error(w, "bad ?top= (want a positive integer)", http.StatusBadRequest)
				return
			}
			top = n
		}
		window := DefaultQueryWindow
		if ws := req.URL.Query().Get("window"); ws != "" {
			d, err := time.ParseDuration(ws)
			if err != nil || d <= 0 {
				http.Error(w, "bad ?window= (want a positive Go duration like 30s)", http.StatusBadRequest)
				return
			}
			window = d
		}
		job := req.URL.Query().Get("job")
		resp := m.ProfileQuery(job, kind, top, window, time.Now())
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(resp)
	})
}

// ProfileQuery evaluates one hot-function query against the store.
func (m *Monitor) ProfileQuery(job, kind string, top int, window time.Duration, now time.Time) ProfileResponse {
	from := Window(now, window)
	funcs, containers := m.hot.TopN(job, kind, top, from)
	if funcs == nil {
		funcs = []HotFunc{}
	}
	return ProfileResponse{
		Job:        job,
		Kind:       kind,
		WindowMS:   window.Milliseconds(),
		Containers: containers,
		Batches:    m.hot.Batches(job),
		Functions:  funcs,
	}
}

// WriteProfile renders the hot-function table the shell's \profile command
// shows: cluster-merged CPU top-N with flat/cum milliseconds and share of
// the window's sampled CPU, plus the top allocating functions.
func (m *Monitor) WriteProfile(w io.Writer, top int, window time.Duration, now time.Time) {
	from := Window(now, window)
	jobs := m.hot.Jobs()
	if len(jobs) == 0 {
		fmt.Fprintln(w, "(no profile batches ingested yet — jobs need ProfileInterval > 0)")
		return
	}
	for _, job := range jobs {
		cpu, containers := m.hot.TopN(job, HotKindCPU, top, from)
		fmt.Fprintf(w, "job %-24s containers=%d window=%s\n", job, containers, window)
		if len(cpu) == 0 {
			fmt.Fprintln(w, "  (no cpu samples in window)")
		} else {
			var total int64
			for _, f := range cpu {
				total += f.Flat
			}
			fmt.Fprintf(w, "  %-52s %10s %10s %6s\n", "hot functions (cpu)", "flat-ms", "cum-ms", "flat%")
			for _, f := range cpu {
				share := 0.0
				if total > 0 {
					share = 100 * float64(f.Flat) / float64(total)
				}
				fmt.Fprintf(w, "  %-52s %10.1f %10.1f %5.1f%%\n",
					trimFuncName(f.Name, 52), float64(f.Flat)/1e6, float64(f.Cum)/1e6, share)
			}
		}
		heap, _ := m.hot.TopN(job, HotKindHeap, 5, from)
		if len(heap) > 0 {
			fmt.Fprintf(w, "  %-52s %10s %10s\n", "top allocators (heap delta)", "flat-KiB", "cum-KiB")
			for _, f := range heap {
				fmt.Fprintf(w, "  %-52s %10.1f %10.1f\n",
					trimFuncName(f.Name, 52), float64(f.Flat)/1024, float64(f.Cum)/1024)
			}
		}
		fmt.Fprintln(w)
	}
}

// trimFuncName shortens a qualified function name to width, keeping the
// most specific suffix.
func trimFuncName(name string, width int) string {
	if len(name) <= width {
		return name
	}
	return "…" + name[len(name)-(width-1):]
}

package monitor

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"samzasql/internal/metrics"
	"samzasql/internal/profile"
	"samzasql/internal/trace"
)

// sparkChars are the eight levels of a text sparkline, lowest first.
var sparkChars = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders values as a fixed-height text sparkline scaled to the
// series' own max. An empty or all-zero series renders as flat baseline.
func Sparkline(values []int64) string {
	if len(values) == 0 {
		return ""
	}
	var max int64
	for _, v := range values {
		if v > max {
			max = v
		}
	}
	var sb strings.Builder
	for _, v := range values {
		idx := 0
		if max > 0 {
			idx = int(v * int64(len(sparkChars)-1) / max)
		}
		sb.WriteRune(sparkChars[idx])
	}
	return sb.String()
}

// sparkPoints downsamples a point series to width buckets (max per bucket)
// for sparkline rendering.
func sparkPoints(pts []Point, width int) []int64 {
	if len(pts) == 0 || width <= 0 {
		return nil
	}
	if len(pts) <= width {
		out := make([]int64, len(pts))
		for i, p := range pts {
			out[i] = p.Value
		}
		return out
	}
	out := make([]int64, width)
	for i, p := range pts {
		b := i * width / len(pts)
		if p.Value > out[b] {
			out[b] = p.Value
		}
	}
	return out
}

// topWindow is the lookback the overview computes rates and percentiles
// over.
const topWindow = 5 * time.Second

// sparkWidth is the sparkline column width in the overview.
const sparkWidth = 24

// topOperators is how many operators the slowest-operator table shows.
const topOperators = 5

// WriteTop renders the live job overview the shell's \top command shows:
// per-job throughput, per-task processing rates, per-partition lag
// sparklines, the slowest operators (merged cross-container p99 plus
// trace-breakdown self-time), and the firing alerts.
func (m *Monitor) WriteTop(w io.Writer, now time.Time) {
	from := Window(now, topWindow)
	jobs := m.store.Jobs()
	shown := 0
	for _, job := range jobs {
		if job == MonitorJob || job == "" {
			continue
		}
		shown++
		rate, _ := m.store.CounterRate(job, -1, "messages-processed", from)
		lag := m.store.GaugeSum(job, DefaultLagPrefix)
		fmt.Fprintf(w, "job %-24s %14s   backlog %d\n", job, metrics.FormatThroughput(rate), lag)

		m.writeRuntimeTable(w, job)
		m.writeTaskTable(w, job, from)
		m.writeLagSparklines(w, job, from)
		m.writeOperatorTable(w, job, now)
		fmt.Fprintln(w)
	}
	if shown == 0 {
		fmt.Fprintln(w, "(no job telemetry ingested yet)")
	}
	if active := m.ActiveAlerts(); len(active) > 0 {
		fmt.Fprintln(w, "alerts:")
		for _, a := range active {
			fmt.Fprintf(w, "  FIRING %-28s %-24s value=%d  %s\n", a.Rule, a.Subject, a.Value, a.Reason)
		}
	} else {
		fmt.Fprintln(w, "alerts: none firing")
	}
}

// writeRuntimeTable shows the per-container Go runtime vitals published by
// the runtime/metrics collector: live goroutines, heap in use, and the
// last observed GC pause. Absent series (jobs without MetricsInterval)
// print nothing.
func (m *Monitor) writeRuntimeTable(w io.Writer, job string) {
	containers := map[int]bool{}
	for _, info := range m.store.Series() {
		if info.Key.Job == job && info.Key.Name == profile.RuntimeGoroutines {
			containers[info.Key.Container] = true
		}
	}
	if len(containers) == 0 {
		return
	}
	ids := make([]int, 0, len(containers))
	for c := range containers {
		ids = append(ids, c)
	}
	sort.Ints(ids)
	fmt.Fprintf(w, "  %-28s %12s %12s %12s\n", "container runtime", "goroutines", "heap-MiB", "gc-pause-us")
	for _, c := range ids {
		gor, _ := m.store.Latest(SeriesKey{Job: job, Container: c, Name: profile.RuntimeGoroutines})
		heap, _ := m.store.Latest(SeriesKey{Job: job, Container: c, Name: profile.RuntimeHeapLive})
		pause, _ := m.store.Latest(SeriesKey{Job: job, Container: c, Name: profile.RuntimeGCLastPause})
		fmt.Fprintf(w, "  container %-18d %12d %12.1f %12.1f\n",
			c, gor.Value, float64(heap.Value)/(1<<20), float64(pause.Value)/1e3)
	}
}

// writeTaskTable lists per-task processing rates and windowed latency,
// derived from the task.<name>.process-ns histogram deltas.
func (m *Monitor) writeTaskTable(w io.Writer, job string, fromMillis int64) {
	names := m.metricNames(job, "task.", ".process-ns")
	if len(names) == 0 {
		return
	}
	fmt.Fprintf(w, "  %-28s %12s %10s %10s\n", "task", "msg/s", "p95-us", "p99-us")
	for _, name := range names {
		h := m.store.WindowHistogram(job, -1, name, fromMillis)
		secs := float64(topWindow) / float64(time.Second)
		task := strings.TrimSuffix(strings.TrimPrefix(name, "task."), ".process-ns")
		fmt.Fprintf(w, "  %-28s %12.0f %10.1f %10.1f\n",
			task, float64(h.Count)/secs, float64(h.Quantile(0.95))/1e3, float64(h.Quantile(0.99))/1e3)
	}
}

// writeLagSparklines renders one sparkline per partition-lag gauge.
func (m *Monitor) writeLagSparklines(w io.Writer, job string, fromMillis int64) {
	series := m.store.GaugeSeries(job, DefaultLagPrefix, fromMillis)
	if len(series) == 0 {
		return
	}
	keys := make([]SeriesKey, 0, len(series))
	for k := range series {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Name != keys[j].Name {
			return keys[i].Name < keys[j].Name
		}
		return keys[i].Container < keys[j].Container
	})
	fmt.Fprintf(w, "  %-28s %-*s %10s\n", "partition lag", sparkWidth, "trend", "now")
	for _, k := range keys {
		pts := series[k]
		fmt.Fprintf(w, "  %-28s %-*s %10d\n",
			strings.TrimPrefix(k.Name, DefaultLagPrefix),
			sparkWidth, Sparkline(sparkPoints(pts, sparkWidth)),
			pts[len(pts)-1].Value)
	}
}

// operatorRow is one line of the slowest-operator table.
type operatorRow struct {
	name   string
	p99Ns  int64
	count  int64
	selfNs int64
}

// writeOperatorTable shows the top-N slowest operators: windowed merged
// p99 from the operator histograms, enriched with critical-path self-time
// from the sampled trace breakdown when tracing is on.
func (m *Monitor) writeOperatorTable(w io.Writer, job string, now time.Time) {
	from := Window(now, topWindow)
	selfNs := map[string]int64{}
	for _, st := range trace.Breakdown(m.RecentTraces(job)) {
		selfNs[st.Stage] = st.SelfNs
	}
	var rows []operatorRow
	for _, name := range m.metricNames(job, "operator.", ".process-ns") {
		h := m.store.WindowHistogram(job, -1, name, from)
		if h.Count == 0 {
			continue
		}
		op := strings.TrimSuffix(name, ".process-ns")
		rows = append(rows, operatorRow{
			name:   strings.TrimPrefix(op, "operator."),
			p99Ns:  h.Quantile(0.99),
			count:  h.Count,
			selfNs: selfNs[op],
		})
	}
	if len(rows) == 0 {
		return
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].p99Ns > rows[j].p99Ns })
	if len(rows) > topOperators {
		rows = rows[:topOperators]
	}
	fmt.Fprintf(w, "  %-28s %10s %10s %12s\n", "slowest operators", "p99-us", "calls", "trace-self-us")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-28s %10.1f %10d %12.1f\n",
			r.name, float64(r.p99Ns)/1e3, r.count, float64(r.selfNs)/1e3)
	}
}

// metricNames lists the distinct metric names for a job matching the
// prefix/suffix pair, sorted.
func (m *Monitor) metricNames(job, prefix, suffix string) []string {
	seen := map[string]bool{}
	for _, info := range m.store.Series() {
		k := info.Key
		if k.Job != job || !strings.HasPrefix(k.Name, prefix) || !strings.HasSuffix(k.Name, suffix) {
			continue
		}
		seen[k.Name] = true
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

package monitor

import (
	"sort"
	"strings"
	"sync"
	"time"

	"samzasql/internal/metrics"
)

// Kind is the series type, mirroring the three registry metric kinds.
type Kind uint8

const (
	// KindCounter series hold cumulative monotonic values.
	KindCounter Kind = iota
	// KindGauge series hold point-in-time values.
	KindGauge
	// KindHistogram series hold full histogram snapshots (with sparse
	// buckets, so windows and cross-container merges stay exact).
	KindHistogram
)

// SeriesKey identifies one time series: a metric name as published by one
// container of one job. Container -1 holds runner- or monitor-level series.
type SeriesKey struct {
	Job       string
	Container int
	Name      string
}

// Point is one scalar sample.
type Point struct {
	TimeMillis int64 `json:"t"`
	Value      int64 `json:"v"`
}

// HistPoint is one histogram sample: the full cumulative snapshot at that
// time. Windowed percentiles come from DeltaSince between two HistPoints.
type HistPoint struct {
	TimeMillis int64
	Snap       metrics.HistogramSnapshot
}

// series is one fixed-capacity ring of samples. Only the store's single
// writer mutates it; readers copy out under the store's RLock.
type series struct {
	kind  Kind
	pts   []Point     // scalar ring (counter/gauge)
	hists []HistPoint // histogram ring
	start int         // index of the oldest valid sample
	n     int         // number of valid samples
}

func (s *series) capacity() int {
	if s.kind == KindHistogram {
		return cap(s.hists)
	}
	return cap(s.pts)
}

// addPoint writes one scalar sample, overwriting the oldest when full.
func (s *series) addPoint(t, v int64) {
	if s.n < cap(s.pts) {
		s.pts = s.pts[:s.n+1]
		s.pts[(s.start+s.n)%cap(s.pts)] = Point{TimeMillis: t, Value: v}
		s.n++
		return
	}
	s.pts[s.start] = Point{TimeMillis: t, Value: v}
	s.start = (s.start + 1) % cap(s.pts)
}

// addHist writes one histogram sample, overwriting the oldest when full.
func (s *series) addHist(t int64, snap metrics.HistogramSnapshot) {
	if s.n < cap(s.hists) {
		s.hists = s.hists[:s.n+1]
		s.hists[(s.start+s.n)%cap(s.hists)] = HistPoint{TimeMillis: t, Snap: snap}
		s.n++
		return
	}
	s.hists[s.start] = HistPoint{TimeMillis: t, Snap: snap}
	s.start = (s.start + 1) % cap(s.hists)
}

// DefaultCapacity is the per-series sample budget when the monitor config
// does not choose one. At a 100ms snapshot interval it retains ~51s of
// history per metric × container.
const DefaultCapacity = 512

// Store is the bounded in-memory time-series store. Memory is bounded by
// construction: each series is a fixed ring of Capacity samples, and the
// number of series is the number of distinct metric names × containers the
// tailed jobs publish. Ingestion is single-writer (the monitor run loop);
// reads copy out under an RWMutex so HTTP handlers never block ingestion
// for long and never observe a ring mid-rotation.
type Store struct {
	mu       sync.RWMutex
	capacity int
	series   map[SeriesKey]*series
	// closed marks (job, container) pairs whose final snapshot arrived; rule
	// evaluation skips their stale gauges.
	closed map[SeriesKey]bool
}

// NewStore builds a store with the given per-series sample capacity
// (minimum 2 — windowed queries need two edges).
func NewStore(capacity int) *Store {
	if capacity < 2 {
		capacity = 2
	}
	return &Store{
		capacity: capacity,
		series:   map[SeriesKey]*series{},
		closed:   map[SeriesKey]bool{},
	}
}

// Observe ingests one scalar sample. It is the per-sample unit of the
// ingest loop — a snapshot fans out into one Observe per counter and gauge
// — so in steady state (every series already allocated) it must not
// allocate: a ring-slot write plus one map lookup.
//
//samzasql:hotpath
func (st *Store) Observe(k SeriesKey, kind Kind, tMillis, v int64) {
	//samzasql:ignore hotpath-blocking -- the monitor store lock guards a counter update on the metrics-ingest path, which is the monitor's own input loop
	st.mu.Lock()
	s := st.series[k]
	if s == nil {
		s = &series{kind: kind, pts: make([]Point, 0, st.capacity)}
		st.series[k] = s
	}
	s.addPoint(tMillis, v)
	st.mu.Unlock()
}

// ObserveHist ingests one histogram sample.
func (st *Store) ObserveHist(k SeriesKey, tMillis int64, snap metrics.HistogramSnapshot) {
	st.mu.Lock()
	s := st.series[k]
	if s == nil {
		s = &series{kind: KindHistogram, hists: make([]HistPoint, 0, st.capacity)}
		st.series[k] = s
	}
	s.addHist(tMillis, snap)
	st.mu.Unlock()
}

// IngestSnapshot fans a full registry snapshot out into the per-metric
// series and, when final, closes the (job, container) out.
func (st *Store) IngestSnapshot(job string, container int, tMillis int64, snap metrics.Snapshot, final bool) {
	for name, v := range snap.Counters {
		st.Observe(SeriesKey{Job: job, Container: container, Name: name}, KindCounter, tMillis, v)
	}
	for name, v := range snap.Gauges {
		st.Observe(SeriesKey{Job: job, Container: container, Name: name}, KindGauge, tMillis, v)
	}
	for name, h := range snap.Histograms {
		st.ObserveHist(SeriesKey{Job: job, Container: container, Name: name}, tMillis, h)
	}
	if final {
		st.mu.Lock()
		st.closed[SeriesKey{Job: job, Container: container}] = true
		st.mu.Unlock()
	}
}

// Closed reports whether the (job, container) pair published its final
// snapshot.
func (st *Store) Closed(job string, container int) bool {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.closed[SeriesKey{Job: job, Container: container}]
}

// SeriesInfo describes one retained series: its key, kind, and how many
// samples the ring currently holds.
type SeriesInfo struct {
	Key     SeriesKey
	Kind    Kind
	Samples int
}

// Series lists every series, sorted by (job, name, container).
func (st *Store) Series() []SeriesInfo {
	st.mu.RLock()
	out := make([]SeriesInfo, 0, len(st.series))
	for k, s := range st.series {
		out = append(out, SeriesInfo{Key: k, Kind: s.kind, Samples: s.n})
	}
	st.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Key, out[j].Key
		if a.Job != b.Job {
			return a.Job < b.Job
		}
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		return a.Container < b.Container
	})
	return out
}

// Jobs returns the distinct job names with at least one series, sorted.
func (st *Store) Jobs() []string {
	st.mu.RLock()
	seen := map[string]bool{}
	for k := range st.series {
		seen[k.Job] = true
	}
	st.mu.RUnlock()
	out := make([]string, 0, len(seen))
	for j := range seen {
		out = append(out, j)
	}
	sort.Strings(out)
	return out
}

// match reports whether a key satisfies the (job, container, name) filter.
// Empty job means every job; container < 0 means every container.
func matchKey(k SeriesKey, job string, container int, name string) bool {
	if name != "" && k.Name != name {
		return false
	}
	if job != "" && k.Job != job {
		return false
	}
	if container >= 0 && k.Container != container {
		return false
	}
	return true
}

// Range returns the scalar samples of every matching series at or after
// fromMillis, as copies keyed by series.
func (st *Store) Range(job string, container int, name string, fromMillis int64) map[SeriesKey][]Point {
	st.mu.RLock()
	defer st.mu.RUnlock()
	out := map[SeriesKey][]Point{}
	for k, s := range st.series {
		if s.kind == KindHistogram || !matchKey(k, job, container, name) {
			continue
		}
		var pts []Point
		for i := 0; i < s.n; i++ {
			p := s.pts[(s.start+i)%cap(s.pts)]
			if p.TimeMillis >= fromMillis {
				pts = append(pts, p)
			}
		}
		if len(pts) > 0 {
			out[k] = pts
		}
	}
	return out
}

// Latest returns the newest sample of the series, if any.
func (st *Store) Latest(k SeriesKey) (Point, bool) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	s := st.series[k]
	if s == nil || s.n == 0 || s.kind == KindHistogram {
		return Point{}, false
	}
	return s.pts[(s.start+s.n-1)%cap(s.pts)], true
}

// windowEdges returns the newest sample and the newest sample older than
// fromMillis (the window baseline), or the oldest retained sample when
// nothing predates the window.
func (s *series) windowEdges(fromMillis int64) (first, last Point, ok bool) {
	if s.n == 0 {
		return Point{}, Point{}, false
	}
	last = s.pts[(s.start+s.n-1)%cap(s.pts)]
	first = s.pts[s.start]
	for i := s.n - 1; i >= 0; i-- {
		p := s.pts[(s.start+i)%cap(s.pts)]
		if p.TimeMillis < fromMillis {
			first = p
			break
		}
	}
	return first, last, true
}

// CounterRate returns events/second over the window [fromMillis, now] for
// every matching counter series summed together, guarding against counter
// resets (a container restart re-baselines instead of going negative).
// The second return is the summed absolute delta (events in the window).
func (st *Store) CounterRate(job string, container int, name string, fromMillis int64) (float64, int64) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	var events int64
	var minT, maxT int64
	for k, s := range st.series {
		if s.kind != KindCounter || !matchKey(k, job, container, name) {
			continue
		}
		// Walk the window accumulating positive increments; a decrease is a
		// restart — the new value counts from zero.
		var prev Point
		havePrev := false
		for i := 0; i < s.n; i++ {
			p := s.pts[(s.start+i)%cap(s.pts)]
			if p.TimeMillis < fromMillis {
				prev, havePrev = p, true
				continue
			}
			if havePrev {
				if d := p.Value - prev.Value; d >= 0 {
					events += d
				} else {
					events += p.Value
				}
			}
			if minT == 0 || p.TimeMillis < minT {
				minT = p.TimeMillis
			}
			if p.TimeMillis > maxT {
				maxT = p.TimeMillis
			}
			prev, havePrev = p, true
		}
	}
	if maxT <= minT {
		return 0, events
	}
	return float64(events) / (float64(maxT-minT) / 1000.0), events
}

// QuantileWindow merges the histogram activity of every matching series
// over the window [fromMillis, now] — per-container DeltaSince between the
// window edges, then an exact cross-container bucket merge — and returns
// the q-quantile of the merged distribution plus its observation count.
// Quantile semantics (empty → 0, single bucket → that bucket) are pinned
// by metrics.HistogramSnapshot.Quantile.
func (st *Store) QuantileWindow(job string, container int, name string, q float64, fromMillis int64) (int64, int64) {
	merged := st.WindowHistogram(job, container, name, fromMillis)
	return merged.Quantile(q), merged.Count
}

// WindowHistogram returns the merged windowed distribution itself.
func (st *Store) WindowHistogram(job string, container int, name string, fromMillis int64) metrics.HistogramSnapshot {
	st.mu.RLock()
	defer st.mu.RUnlock()
	var merged metrics.HistogramSnapshot
	for k, s := range st.series {
		if s.kind != KindHistogram || !matchKey(k, job, container, name) {
			continue
		}
		if s.n == 0 {
			continue
		}
		last := s.hists[(s.start+s.n-1)%cap(s.hists)]
		// Baseline: newest sample older than the window start. Without one
		// the whole cumulative snapshot is the window's best estimate.
		var base metrics.HistogramSnapshot
		for i := s.n - 1; i >= 0; i-- {
			p := s.hists[(s.start+i)%cap(s.hists)]
			if p.TimeMillis < fromMillis {
				base = p.Snap
				break
			}
		}
		merged = metrics.MergeHistograms(merged, last.Snap.DeltaSince(base))
	}
	return merged
}

// GaugeSum returns the sum of the latest values of every matching gauge
// series (per-partition lag gauges sum to job backlog), skipping series
// from closed-out containers.
func (st *Store) GaugeSum(job string, namePrefix string) int64 {
	st.mu.RLock()
	defer st.mu.RUnlock()
	var total int64
	for k, s := range st.series {
		if s.kind != KindGauge || s.n == 0 {
			continue
		}
		if job != "" && k.Job != job {
			continue
		}
		if !strings.HasPrefix(k.Name, namePrefix) {
			continue
		}
		if st.closed[SeriesKey{Job: k.Job, Container: k.Container}] {
			continue
		}
		total += s.pts[(s.start+s.n-1)%cap(s.pts)].Value
	}
	return total
}

// GaugeSeries returns, for every matching live gauge series, its windowed
// points — the per-partition lag series rules and sparklines read.
func (st *Store) GaugeSeries(job string, namePrefix string, fromMillis int64) map[SeriesKey][]Point {
	st.mu.RLock()
	defer st.mu.RUnlock()
	out := map[SeriesKey][]Point{}
	for k, s := range st.series {
		if s.kind != KindGauge || s.n == 0 {
			continue
		}
		if job != "" && k.Job != job {
			continue
		}
		if !strings.HasPrefix(k.Name, namePrefix) {
			continue
		}
		if st.closed[SeriesKey{Job: k.Job, Container: k.Container}] {
			continue
		}
		var pts []Point
		for i := 0; i < s.n; i++ {
			p := s.pts[(s.start+i)%cap(s.pts)]
			if p.TimeMillis >= fromMillis {
				pts = append(pts, p)
			}
		}
		if len(pts) > 0 {
			out[k] = pts
		}
	}
	return out
}

// MaxWindow returns the maximum scalar value of every matching series over
// the window, or the histogram window max for histogram series.
func (st *Store) MaxWindow(job string, container int, name string, fromMillis int64) int64 {
	st.mu.RLock()
	var max int64
	histSeen := false
	for k, s := range st.series {
		if !matchKey(k, job, container, name) || s.n == 0 {
			continue
		}
		if s.kind == KindHistogram {
			histSeen = true
			continue
		}
		for i := 0; i < s.n; i++ {
			p := s.pts[(s.start+i)%cap(s.pts)]
			if p.TimeMillis >= fromMillis && p.Value > max {
				max = p.Value
			}
		}
	}
	st.mu.RUnlock()
	if histSeen {
		h := st.WindowHistogram(job, container, name, fromMillis)
		if h.Max > max {
			max = h.Max
		}
	}
	return max
}

// Window converts a lookback duration to its fromMillis edge at now.
func Window(now time.Time, lookback time.Duration) int64 {
	return now.Add(-lookback).UnixMilli()
}

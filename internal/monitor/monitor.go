package monitor

import (
	"context"
	"fmt"
	"sync"
	"time"

	"samzasql/internal/kafka"
	"samzasql/internal/metrics"
	"samzasql/internal/samza"
	"samzasql/internal/serde"
	"samzasql/internal/trace"
)

// MonitorJob is the pseudo-job name the monitor files its own metrics
// under in the store (container -1), so the observability pipeline is
// queryable through its own /query endpoint.
const MonitorJob = "__monitor"

// DefaultEvalInterval is the rule-evaluation period when the config does
// not choose one.
const DefaultEvalInterval = 100 * time.Millisecond

// DefaultRecentTraces bounds the per-job assembled-trace store feeding the
// operator breakdowns.
const DefaultRecentTraces = 128

// HealthSource reports per-task liveness, shaped like the /healthz payload:
// job name -> task name -> state ("init", "running", "stopped", "failed").
// JobRunner-backed monitors pass a closure over RunningJob.TaskHealth.
type HealthSource func() map[string]map[string]string

// Config configures a Monitor.
type Config struct {
	// Broker is the broker whose telemetry streams the monitor tails and
	// whose alerts topic it publishes to. Required.
	Broker *kafka.Broker
	// MetricsTopic defaults to samza.DefaultMetricsTopic.
	MetricsTopic string
	// TraceTopic defaults to samza.DefaultTraceTopic.
	TraceTopic string
	// ProfilesTopic defaults to samza.DefaultProfilesTopic.
	ProfilesTopic string
	// AlertsTopic defaults to DefaultAlertsTopic.
	AlertsTopic string
	// Health, when set, feeds the task-flap rule. Polled every eval tick.
	Health HealthSource
	// Rules is the SLO rule set; nil means DefaultRules().
	Rules []Rule
	// EvalInterval is the rule-evaluation period; 0 means
	// DefaultEvalInterval.
	EvalInterval time.Duration
	// Capacity is the per-series ring size; 0 means DefaultCapacity.
	Capacity int
	// RecentTraces is the per-job trace-store size; 0 means
	// DefaultRecentTraces.
	RecentTraces int
	// HotCapacity is the per-container profile-batch ring size; 0 means
	// DefaultHotCapacity.
	HotCapacity int
}

// Monitor tails the telemetry streams into the store and evaluates the
// rule set. Create with Start, release with Stop.
type Monitor struct {
	cfg    Config
	store  *Store
	hot    *HotStore
	am     *alertManager
	mtail  *samza.MetricsTailer
	ttail  *samza.TraceTailer
	ptail  *samza.ProfilesTailer
	alerts serde.Serde

	// Monitor self-metrics, pre-bound (never looked up on the ingest path).
	reg             *metrics.Registry
	snapshotsIn     *metrics.Counter
	spansIn         *metrics.Counter
	eventsIn        *metrics.Counter
	profilesIn      *metrics.Counter
	alertsPublished *metrics.Counter
	decodeErrors    *metrics.Counter
	publishErrors   *metrics.Counter

	// traceMu guards the per-job trace/event state written by the run loop
	// and read by the top/query surfaces. trace.Recent is internally
	// locked; the mutex covers the maps themselves.
	traceMu sync.RWMutex
	recent  map[string]*trace.Recent
	events  []trace.Event // lifecycle ring, newest last
	dropped int64         // spans lost to ring overflow, from batch headers

	// Health-flap log, written by the run loop only.
	prevHealth map[flapKey]string
	flapLog    []flapEvent

	metricsCh  chan []*samza.MetricsSnapshotMessage
	tracesCh   chan []*samza.TraceBatchMessage
	profilesCh chan []*samza.ProfileBatchMessage

	cancel context.CancelFunc
	wg     sync.WaitGroup
}

// flapKey identifies one task for liveness tracking.
type flapKey struct{ job, task string }

// flapEvent is one observed liveness transition.
type flapEvent struct {
	key        flapKey
	timeMillis int64
}

// eventsCap bounds the retained lifecycle-event ring.
const eventsCap = 512

// flapLogCap bounds the retained liveness-transition log.
const flapLogCap = 1024

// Start builds the monitor, ensures its topics exist, and launches the
// poller and run-loop goroutines. The returned monitor is live until Stop.
func Start(cfg Config) (*Monitor, error) {
	if cfg.Broker == nil {
		return nil, fmt.Errorf("monitor: config needs a broker")
	}
	if cfg.MetricsTopic == "" {
		cfg.MetricsTopic = samza.DefaultMetricsTopic
	}
	if cfg.TraceTopic == "" {
		cfg.TraceTopic = samza.DefaultTraceTopic
	}
	if cfg.ProfilesTopic == "" {
		cfg.ProfilesTopic = samza.DefaultProfilesTopic
	}
	if cfg.AlertsTopic == "" {
		cfg.AlertsTopic = DefaultAlertsTopic
	}
	if cfg.Rules == nil {
		cfg.Rules = DefaultRules()
	}
	if cfg.EvalInterval <= 0 {
		cfg.EvalInterval = DefaultEvalInterval
	}
	if cfg.Capacity <= 0 {
		cfg.Capacity = DefaultCapacity
	}
	if cfg.RecentTraces <= 0 {
		cfg.RecentTraces = DefaultRecentTraces
	}
	if cfg.HotCapacity <= 0 {
		cfg.HotCapacity = DefaultHotCapacity
	}
	for _, topic := range []string{cfg.MetricsTopic, cfg.TraceTopic, cfg.ProfilesTopic, cfg.AlertsTopic} {
		if err := cfg.Broker.EnsureTopic(topic, kafka.TopicConfig{Partitions: 1}); err != nil {
			return nil, fmt.Errorf("monitor: ensure topic %s: %w", topic, err)
		}
	}
	alertSerde, err := serde.Lookup("alert")
	if err != nil {
		return nil, err
	}
	mtail, err := samza.NewMetricsTailer(cfg.Broker, cfg.MetricsTopic)
	if err != nil {
		return nil, err
	}
	ttail, err := samza.NewTraceTailer(cfg.Broker, cfg.TraceTopic)
	if err != nil {
		mtail.Close()
		return nil, err
	}
	ptail, err := samza.NewProfilesTailer(cfg.Broker, cfg.ProfilesTopic)
	if err != nil {
		mtail.Close()
		ttail.Close()
		return nil, err
	}
	reg := metrics.NewRegistry()
	m := &Monitor{
		cfg:             cfg,
		store:           NewStore(cfg.Capacity),
		hot:             NewHotStore(cfg.HotCapacity),
		am:              newAlertManager(),
		mtail:           mtail,
		ttail:           ttail,
		ptail:           ptail,
		alerts:          alertSerde,
		reg:             reg,
		snapshotsIn:     reg.Counter("monitor.snapshots-ingested"),
		spansIn:         reg.Counter("monitor.spans-ingested"),
		eventsIn:        reg.Counter("monitor.events-ingested"),
		profilesIn:      reg.Counter("monitor.profiles-ingested"),
		alertsPublished: reg.Counter("monitor.alerts-published"),
		decodeErrors:    reg.Counter("monitor.decode-errors"),
		publishErrors:   reg.Counter("monitor.publish-errors"),
		recent:          map[string]*trace.Recent{},
		prevHealth:      map[flapKey]string{},
		metricsCh:       make(chan []*samza.MetricsSnapshotMessage, 16),
		tracesCh:        make(chan []*samza.TraceBatchMessage, 16),
		profilesCh:      make(chan []*samza.ProfileBatchMessage, 16),
	}
	// The tailers' own lag gauges land in the monitor registry, which the
	// run loop files into the store each tick — the pipeline observes
	// itself falling behind.
	mtail.BindLag(reg)
	ttail.BindLag(reg)
	ptail.BindLag(reg)

	ctx, cancel := context.WithCancel(context.Background())
	m.cancel = cancel
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		m.tailMetrics(ctx)
	}()
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		m.tailTraces(ctx)
	}()
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		m.tailProfiles(ctx)
	}()
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		m.run(ctx)
	}()
	return m, nil
}

// Stop cancels the goroutines, waits for them, and releases the tailers.
func (m *Monitor) Stop() {
	m.cancel()
	m.wg.Wait()
	m.mtail.Close()
	m.ttail.Close()
	m.ptail.Close()
}

// Store exposes the time-series store for queries.
func (m *Monitor) Store() *Store { return m.store }

// Metrics exposes the monitor's self-metrics registry.
func (m *Monitor) Metrics() *metrics.Registry { return m.reg }

// ActiveAlerts returns the currently-firing alerts.
func (m *Monitor) ActiveAlerts() []ActiveAlert { return m.am.Active() }

// RecentAlerts returns up to max recent alert transitions, newest last.
func (m *Monitor) RecentAlerts(max int) []AlertMessage { return m.am.Recent(max) }

// RecentTraces returns the assembled recent traces for a job, newest
// first, for the operator breakdown surfaces.
func (m *Monitor) RecentTraces(job string) []*trace.TraceData {
	m.traceMu.RLock()
	r := m.recent[job]
	m.traceMu.RUnlock()
	if r == nil {
		return nil
	}
	return r.Traces()
}

// RecentEvents returns up to max retained lifecycle events, newest last.
func (m *Monitor) RecentEvents(max int) []trace.Event {
	m.traceMu.RLock()
	defer m.traceMu.RUnlock()
	n := len(m.events)
	if max > 0 && n > max {
		n = max
	}
	out := make([]trace.Event, n)
	copy(out, m.events[len(m.events)-n:])
	return out
}

// tailMetrics blocks on the metrics tailer and forwards decoded batches to
// the run loop. Decode errors are counted, the decoded prefix still
// delivered; the loop exits when ctx ends.
func (m *Monitor) tailMetrics(ctx context.Context) {
	for {
		batch, err := m.mtail.Poll(ctx, 256)
		if err != nil && ctx.Err() != nil {
			return
		}
		if err != nil {
			m.decodeErrors.Inc()
		}
		if len(batch) == 0 {
			continue
		}
		select {
		case m.metricsCh <- batch:
		case <-ctx.Done():
			return
		}
	}
}

// tailTraces is tailMetrics for the trace stream.
func (m *Monitor) tailTraces(ctx context.Context) {
	for {
		batch, err := m.ttail.Poll(ctx, 256)
		if err != nil && ctx.Err() != nil {
			return
		}
		if err != nil {
			m.decodeErrors.Inc()
		}
		if len(batch) == 0 {
			continue
		}
		select {
		case m.tracesCh <- batch:
		case <-ctx.Done():
			return
		}
	}
}

// tailProfiles is tailMetrics for the profiles stream.
func (m *Monitor) tailProfiles(ctx context.Context) {
	for {
		batch, err := m.ptail.Poll(ctx, 256)
		if err != nil && ctx.Err() != nil {
			return
		}
		if err != nil {
			m.decodeErrors.Inc()
		}
		if len(batch) == 0 {
			continue
		}
		select {
		case m.profilesCh <- batch:
		case <-ctx.Done():
			return
		}
	}
}

// run is the single writer: it ingests batches from both pollers and
// evaluates the rule set every EvalInterval.
func (m *Monitor) run(ctx context.Context) {
	tick := time.NewTicker(m.cfg.EvalInterval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case batch := <-m.metricsCh:
			m.ingestMetrics(batch)
		case batch := <-m.tracesCh:
			m.ingestTraces(batch)
		case batch := <-m.profilesCh:
			m.ingestProfiles(batch)
		case <-tick.C:
			m.evaluate(time.Now())
		}
	}
}

// ingestMetrics fans snapshot batches into the store.
func (m *Monitor) ingestMetrics(batch []*samza.MetricsSnapshotMessage) {
	for _, msg := range batch {
		m.store.IngestSnapshot(msg.Job, msg.Container, msg.TimeMillis, msg.Metrics, msg.Final)
		m.snapshotsIn.Inc()
	}
}

// ingestProfiles files profile batches into the hot-function store.
func (m *Monitor) ingestProfiles(batch []*samza.ProfileBatchMessage) {
	for _, msg := range batch {
		m.hot.Ingest(msg)
		m.profilesIn.Inc()
	}
}

// ingestTraces folds span batches into the per-job trace stores and the
// lifecycle-event ring.
func (m *Monitor) ingestTraces(batch []*samza.TraceBatchMessage) {
	for _, msg := range batch {
		if len(msg.Spans) > 0 {
			m.traceMu.Lock()
			r := m.recent[msg.Job]
			if r == nil {
				r = trace.NewRecent(m.cfg.RecentTraces)
				m.recent[msg.Job] = r
			}
			m.traceMu.Unlock()
			// Recent is internally locked; Add outside traceMu keeps the
			// read path (RecentTraces) from stalling behind assembly.
			r.Add(msg.Spans)
			m.spansIn.Add(int64(len(msg.Spans)))
		}
		if len(msg.Events) > 0 {
			m.traceMu.Lock()
			m.events = append(m.events, msg.Events...)
			if len(m.events) > eventsCap {
				m.events = m.events[len(m.events)-eventsCap:]
			}
			m.traceMu.Unlock()
			m.eventsIn.Add(int64(len(msg.Events)))
		}
		if msg.Dropped > 0 {
			m.traceMu.Lock()
			m.dropped += msg.Dropped
			m.traceMu.Unlock()
		}
	}
}

// evaluate runs one rule pass: refresh self-observability, poll health for
// flap tracking, evaluate every rule, and publish any transitions. No
// monitor lock is held while publishing.
func (m *Monitor) evaluate(now time.Time) {
	// Tailer lag gauges + own counters into the store under the
	// pseudo-job, so /query can answer for the monitor itself. A lag
	// refresh failure just leaves the gauge at its last value.
	_, _ = m.mtail.UpdateLag()
	_, _ = m.ttail.UpdateLag()
	_, _ = m.ptail.UpdateLag()
	m.store.IngestSnapshot(MonitorJob, -1, now.UnixMilli(), m.reg.Snapshot(), false)

	if m.cfg.Health != nil {
		m.observeHealth(m.cfg.Health(), now.UnixMilli())
	}

	nowMillis := now.UnixMilli()
	var transitions []*AlertMessage
	for _, rule := range m.cfg.Rules {
		for _, v := range m.evalRule(rule, now) {
			if t := m.am.observe(rule, v.job, v.subject, v.violated, v.value, v.reason, nowMillis); t != nil {
				transitions = append(transitions, t)
			}
		}
	}
	for _, t := range transitions {
		m.publishAlert(t)
	}
}

// observeHealth diffs the liveness map against the previous tick and logs
// transitions for the flap rule. First sight of a task is not a flap.
func (m *Monitor) observeHealth(health map[string]map[string]string, nowMillis int64) {
	for job, tasks := range health {
		for task, state := range tasks {
			key := flapKey{job: job, task: task}
			prev, seen := m.prevHealth[key]
			m.prevHealth[key] = state
			if seen && prev != state {
				m.flapLog = append(m.flapLog, flapEvent{key: key, timeMillis: nowMillis})
			}
		}
	}
	if len(m.flapLog) > flapLogCap {
		m.flapLog = m.flapLog[len(m.flapLog)-flapLogCap:]
	}
}

// flapCounts counts logged transitions per task since fromMillis. Tasks
// that are currently tracked but quiet report zero, so their alerts can
// resolve.
func (m *Monitor) flapCounts(fromMillis int64) map[flapKey]int64 {
	out := make(map[flapKey]int64, len(m.prevHealth))
	for key := range m.prevHealth {
		out[key] = 0
	}
	for _, ev := range m.flapLog {
		if ev.timeMillis >= fromMillis {
			out[ev.key]++
		}
	}
	return out
}

// publishAlert serde-encodes one transition onto the alerts topic. Errors
// are counted, never fatal: alerting must not take down the monitor.
func (m *Monitor) publishAlert(msg *AlertMessage) {
	data, err := m.alerts.Encode(msg)
	if err != nil {
		m.publishErrors.Inc()
		return
	}
	_, err = m.cfg.Broker.Produce(m.cfg.AlertsTopic, kafka.Message{
		Partition: 0,
		Key:       []byte(msg.Rule + "/" + msg.Subject),
		Value:     data,
		Timestamp: msg.TimeMillis,
	})
	if err != nil {
		m.publishErrors.Inc()
		return
	}
	m.alertsPublished.Inc()
}

package monitor

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"samzasql/internal/kafka"
	"samzasql/internal/metrics"
	"samzasql/internal/profile"
	"samzasql/internal/samza"
)

func batchAt(job string, container int, tMillis int64, cpu []profile.FuncStat) *samza.ProfileBatchMessage {
	return &samza.ProfileBatchMessage{
		Job: job, Container: container, TimeMillis: tMillis,
		WindowMillis: 100, CPU: cpu,
	}
}

// TestHotStoreMergeAcrossContainers pins the cluster-merge semantics: CPU
// stats from different containers sum per function, the contributing
// container count is distinct publishers, and Flat orders the result.
func TestHotStoreMergeAcrossContainers(t *testing.T) {
	h := NewHotStore(8)
	h.Ingest(batchAt("j", 0, 100, []profile.FuncStat{
		{Name: "hot", Flat: 300, Cum: 500},
		{Name: "warm", Flat: 100, Cum: 200},
	}))
	h.Ingest(batchAt("j", 1, 110, []profile.FuncStat{
		{Name: "hot", Flat: 250, Cum: 400},
		{Name: "cold", Flat: 10, Cum: 10},
	}))
	// Second batch from container 0: deltas accumulate across batches too.
	h.Ingest(batchAt("j", 0, 120, []profile.FuncStat{
		{Name: "warm", Flat: 50, Cum: 60},
	}))
	top, containers := h.TopN("j", HotKindCPU, 10, 0)
	if containers != 2 {
		t.Fatalf("containers = %d, want 2", containers)
	}
	if len(top) != 3 || top[0].Name != "hot" || top[0].Flat != 550 || top[0].Cum != 900 {
		t.Fatalf("merged top = %+v, want hot 550/900 first", top)
	}
	if top[1].Name != "warm" || top[1].Flat != 150 {
		t.Fatalf("warm did not accumulate across batches: %+v", top[1])
	}
	// Truncation keeps the hottest.
	top, _ = h.TopN("j", HotKindCPU, 1, 0)
	if len(top) != 1 || top[0].Name != "hot" {
		t.Fatalf("top-1 = %+v", top)
	}
	// Other jobs are invisible unless job filter is empty.
	h.Ingest(batchAt("other", 0, 130, []profile.FuncStat{{Name: "hot", Flat: 1, Cum: 1}}))
	if top, _ = h.TopN("j", HotKindCPU, 10, 0); top[0].Flat != 550 {
		t.Fatalf("job filter leaked: %+v", top[0])
	}
	if top, _ = h.TopN("", HotKindCPU, 10, 0); top[0].Flat != 551 {
		t.Fatalf("empty job filter should merge every job: %+v", top[0])
	}
}

// TestHotStoreWindowAndKinds pins the window filter and the per-kind
// semantics: cpu/heap sum in-window deltas, goroutine takes each
// container's newest in-window level only.
func TestHotStoreWindowAndKinds(t *testing.T) {
	h := NewHotStore(8)
	old := batchAt("j", 0, 100, []profile.FuncStat{{Name: "stale", Flat: 999, Cum: 999}})
	old.HeapDelta = []profile.FuncStat{{Name: "alloc", Flat: 1 << 20, Cum: 1 << 20}}
	old.Goroutines = []profile.FuncStat{{Name: "park", Flat: 50, Cum: 50}}
	h.Ingest(old)
	cur := batchAt("j", 0, 5000, []profile.FuncStat{{Name: "fresh", Flat: 10, Cum: 10}})
	cur.HeapDelta = []profile.FuncStat{{Name: "alloc", Flat: 4096, Cum: 4096}}
	cur.Goroutines = []profile.FuncStat{{Name: "park", Flat: 7, Cum: 7}}
	h.Ingest(cur)

	if top, _ := h.TopN("j", HotKindCPU, 10, 4000); len(top) != 1 || top[0].Name != "fresh" {
		t.Fatalf("window filter kept stale cpu: %+v", top)
	}
	if top, _ := h.TopN("j", HotKindHeap, 10, 4000); len(top) != 1 || top[0].Flat != 4096 {
		t.Fatalf("window filter kept stale heap: %+v", top)
	}
	// Goroutines are a level: latest in-window batch wins, no summing.
	if top, _ := h.TopN("j", HotKindGoroutine, 10, 0); len(top) != 1 || top[0].Flat != 7 {
		t.Fatalf("goroutine kind summed instead of taking latest level: %+v", top)
	}
	// Fully out-of-window queries are empty answers, not errors.
	if top, containers := h.TopN("j", HotKindCPU, 10, 9000); len(top) != 0 || containers != 0 {
		t.Fatalf("future window returned %+v containers=%d", top, containers)
	}
}

// TestHotStoreRingEviction pins the memory bound at batch granularity: a
// container retains at most capacity batches, oldest evicted first.
func TestHotStoreRingEviction(t *testing.T) {
	h := NewHotStore(4)
	for i := 0; i < 10; i++ {
		h.Ingest(batchAt("j", 0, int64(i), []profile.FuncStat{{Name: "f", Flat: 1, Cum: 1}}))
	}
	if got := h.Batches("j"); got != 4 {
		t.Fatalf("ring holds %d batches, want 4", got)
	}
	// Only the surviving 4 batches (t=6..9) contribute.
	top, _ := h.TopN("j", HotKindCPU, 10, 0)
	if len(top) != 1 || top[0].Flat != 4 {
		t.Fatalf("evicted batches still contribute: %+v", top)
	}
	if jobs := h.Jobs(); len(jobs) != 1 || jobs[0] != "j" {
		t.Fatalf("jobs = %v", jobs)
	}
}

// TestStoreRingAtExactCapacity pins the eviction boundary the capacity ring
// must not get wrong: exactly capacity samples fit without eviction, the
// (capacity+1)-th evicts exactly the oldest.
func TestStoreRingAtExactCapacity(t *testing.T) {
	st := NewStore(4)
	k := SeriesKey{Job: "j", Container: 0, Name: "g"}
	for i := 0; i < 4; i++ {
		st.Observe(k, KindGauge, int64(i), int64(i))
	}
	pts := st.Range("j", -1, "g", 0)[k]
	if len(pts) != 4 || pts[0].TimeMillis != 0 {
		t.Fatalf("at capacity: %+v (nothing should be evicted yet)", pts)
	}
	st.Observe(k, KindGauge, 4, 4)
	pts = st.Range("j", -1, "g", 0)[k]
	if len(pts) != 4 || pts[0].TimeMillis != 1 || pts[3].TimeMillis != 4 {
		t.Fatalf("one past capacity: %+v (want t=1..4)", pts)
	}
}

// TestStoreClosedContainerPruning pins the gauge-surface pruning boundary:
// a container's final snapshot removes its gauges from sums and series
// listings, while other containers' series survive.
func TestStoreClosedContainerPruning(t *testing.T) {
	st := NewStore(16)
	ingest := func(container int, v int64, final bool) {
		st.IngestSnapshot("j", container, 100, metrics.Snapshot{
			Gauges: map[string]int64{"lag.in.0": v},
		}, final)
	}
	ingest(0, 40, false)
	ingest(1, 60, false)
	if got := st.GaugeSum("j", "lag."); got != 100 {
		t.Fatalf("live sum = %d, want 100", got)
	}
	// Container 0 closes out: its gauge must vanish from sums and series.
	ingest(0, 40, true)
	if !st.Closed("j", 0) {
		t.Fatal("container 0 not marked closed after final snapshot")
	}
	if st.Closed("j", 1) {
		t.Fatal("container 1 wrongly marked closed")
	}
	if got := st.GaugeSum("j", "lag."); got != 60 {
		t.Fatalf("sum after close = %d, want 60 (closed container pruned)", got)
	}
	series := st.GaugeSeries("j", "lag.", 0)
	if len(series) != 1 {
		t.Fatalf("series after close = %v, want container 1 only", series)
	}
	for k := range series {
		if k.Container != 1 {
			t.Fatalf("closed container %d still listed", k.Container)
		}
	}
}

// busyTask burns CPU per message so capture windows have samples to fold.
type busyTask struct{ sink int64 }

func (b *busyTask) Init(ctx *samza.TaskContext) error { return nil }

func (b *busyTask) Process(env samza.IncomingMessageEnvelope, col samza.MessageCollector, coord samza.Coordinator) error {
	for i := 0; i < 20000; i++ {
		b.sink += int64(i * i)
	}
	return nil
}

// TestMonitorServesClusterMergedProfiles is the e2e: a two-container job
// with continuous profiling on, the monitor tailing __profiles, and
// /profile answering cluster-merged top-N hot functions with contributions
// from both containers.
func TestMonitorServesClusterMergedProfiles(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping CPU capture windows")
	}
	b, runner := testEnv()
	if err := b.EnsureTopic("in", kafka.TopicConfig{Partitions: 4}); err != nil {
		t.Fatal(err)
	}
	m, err := Start(Config{Broker: b})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Stop()

	produceN(t, b, "in", 0, 400, "a")
	produceN(t, b, "in", 1, 400, "b")
	produceN(t, b, "in", 2, 400, "c")
	produceN(t, b, "in", 3, 400, "d")
	job := &samza.JobSpec{
		Name:            "hotjob",
		Inputs:          []samza.StreamSpec{{Topic: "in"}},
		Containers:      2,
		TaskFactory:     func() samza.StreamTask { return &busyTask{} },
		ProfileInterval: 40 * time.Millisecond,
		ProfileWindow:   20 * time.Millisecond,
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rj, err := runner.Submit(ctx, job)
	if err != nil {
		t.Fatal(err)
	}
	defer rj.Stop()

	// The job drains its input quickly; keep the process CPU-busy so every
	// capture window has samples to fold (an idle window folds to nothing).
	stopBurn := make(chan struct{})
	defer close(stopBurn)
	go func() {
		var sink atomic.Int64
		for {
			select {
			case <-stopBurn:
				return
			default:
				for i := 0; i < 1000; i++ {
					sink.Add(int64(i))
				}
			}
		}
	}()

	// Both containers must land CPU-bearing batches in the store.
	waitFor(t, 30*time.Second, func() bool {
		_, containers := m.HotStore().TopN("hotjob", HotKindCPU, 10, 0)
		return containers >= 2
	}, "cpu profile batches from both containers")

	srv := httptest.NewServer(m.ProfileHandler())
	defer srv.Close()
	res, err := srv.Client().Get(srv.URL + "/profile?top=10&window=1m&job=hotjob")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var resp ProfileResponse
	if err := json.NewDecoder(res.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if resp.Containers < 2 {
		t.Fatalf("/profile merged %d containers, want >= 2", resp.Containers)
	}
	if len(resp.Functions) == 0 {
		t.Fatal("/profile returned no hot functions")
	}
	for _, f := range resp.Functions {
		if f.Name == "" || f.Flat < 0 || f.Cum < f.Flat {
			t.Fatalf("malformed hot function %+v (want cum >= flat >= 0)", f)
		}
	}
	// The goroutine kind answers too, from the same batches.
	gr, err := srv.Client().Get(srv.URL + "/profile?kind=goroutine&job=hotjob")
	if err != nil {
		t.Fatal(err)
	}
	defer gr.Body.Close()
	var gresp ProfileResponse
	if err := json.NewDecoder(gr.Body).Decode(&gresp); err != nil {
		t.Fatal(err)
	}
	if len(gresp.Functions) == 0 {
		t.Fatal("/profile?kind=goroutine returned no functions")
	}
	// Bad params are 400s, not panics.
	for _, q := range []string{"?kind=bogus", "?top=-1", "?window=never"} {
		br, err := srv.Client().Get(srv.URL + "/profile" + q)
		if err != nil {
			t.Fatal(err)
		}
		br.Body.Close()
		if br.StatusCode != 400 {
			t.Fatalf("GET /profile%s = %d, want 400", q, br.StatusCode)
		}
	}

	// The text renderer shows the same data for \profile.
	var sb strings.Builder
	m.WriteProfile(&sb, 10, time.Minute, time.Now())
	if !strings.Contains(sb.String(), "hotjob") || !strings.Contains(sb.String(), "hot functions (cpu)") {
		t.Fatalf("WriteProfile output missing table:\n%s", sb.String())
	}
}

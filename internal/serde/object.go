package serde

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// ObjectSerde is a generic object serde for []any rows, modeled on Kryo's
// default (unregistered) mode: every value is prefixed with its class name
// as a length-prefixed string, followed by a compact payload (zigzag
// varints for integers, length-prefixed strings). Like Kryo it needs no
// schema — and like Kryo it is measurably slower than a schema-driven
// codec, because every element pays a name read, a string match and boxing
// where Avro's codec walks a fixed field plan. SamzaSQL's prototype used
// Kryo for its key-value store values, which the paper identifies as the
// main cause of its ~2x join slowdown versus native Avro state (§5.1).
type ObjectSerde struct{}

// Name implements Serde.
func (ObjectSerde) Name() string { return "object" }

// Class names (what Kryo would write for unregistered classes; shortened
// from the java.lang.* forms but kept as strings so decode must match on
// text, not on a byte tag).
const (
	clsNil    = "null"
	clsInt64  = "long"
	clsFloat  = "double"
	clsString = "string"
	clsBool   = "boolean"
	clsBytes  = "bytes"
	clsRow    = "object[]"
)

// ErrCorruptObject reports undecodable object payloads.
var ErrCorruptObject = errors.New("serde: corrupt object payload")

// Encode implements Serde. Values must be []any rows (or single values,
// wrapped as one-element rows) of nil/int64/float64/string/bool/[]byte
// or nested []any.
func (o ObjectSerde) Encode(v any) ([]byte, error) {
	row, ok := v.([]any)
	if !ok {
		row = []any{v}
	}
	return o.appendRow(nil, row)
}

func appendName(dst []byte, name string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(name)))
	return append(dst, name...)
}

func (o ObjectSerde) appendRow(dst []byte, row []any) ([]byte, error) {
	dst = binary.AppendUvarint(dst, uint64(len(row)))
	var err error
	for _, el := range row {
		dst, err = o.appendValue(dst, el)
		if err != nil {
			return nil, err
		}
	}
	return dst, nil
}

func (o ObjectSerde) appendValue(dst []byte, el any) ([]byte, error) {
	switch t := el.(type) {
	case nil:
		return appendName(dst, clsNil), nil
	case int64:
		dst = appendName(dst, clsInt64)
		return binary.AppendUvarint(dst, uint64((t<<1)^(t>>63))), nil
	case float64:
		dst = appendName(dst, clsFloat)
		return binary.LittleEndian.AppendUint64(dst, math.Float64bits(t)), nil
	case string:
		dst = appendName(dst, clsString)
		dst = binary.AppendUvarint(dst, uint64(len(t)))
		return append(dst, t...), nil
	case bool:
		dst = appendName(dst, clsBool)
		if t {
			return append(dst, 1), nil
		}
		return append(dst, 0), nil
	case []byte:
		dst = appendName(dst, clsBytes)
		dst = binary.AppendUvarint(dst, uint64(len(t)))
		return append(dst, t...), nil
	case []any:
		dst = appendName(dst, clsRow)
		return o.appendRow(dst, t)
	default:
		return nil, fmt.Errorf("serde: object serde cannot encode %T", el)
	}
}

// Decode implements Serde, returning a []any row.
func (o ObjectSerde) Decode(data []byte) (any, error) {
	row, n, err := o.decodeRow(data)
	if err != nil {
		return nil, err
	}
	if n != len(data) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorruptObject, len(data)-n)
	}
	return row, nil
}

func (o ObjectSerde) decodeRow(data []byte) ([]any, int, error) {
	count, n := binary.Uvarint(data)
	if n <= 0 {
		return nil, 0, ErrCorruptObject
	}
	pos := n
	row := make([]any, count)
	for i := range row {
		v, n, err := o.decodeValue(data[pos:])
		if err != nil {
			return nil, 0, err
		}
		row[i] = v
		pos += n
	}
	return row, pos, nil
}

func readName(data []byte) (string, int, error) {
	ln, n := binary.Uvarint(data)
	if n <= 0 || n+int(ln) > len(data) {
		return "", 0, ErrCorruptObject
	}
	return string(data[n : n+int(ln)]), n + int(ln), nil
}

func (o ObjectSerde) decodeValue(data []byte) (any, int, error) {
	name, pos, err := readName(data)
	if err != nil {
		return nil, 0, err
	}
	switch name {
	case clsNil:
		return nil, pos, nil
	case clsInt64:
		u, n := binary.Uvarint(data[pos:])
		if n <= 0 {
			return nil, 0, ErrCorruptObject
		}
		return int64(u>>1) ^ -int64(u&1), pos + n, nil
	case clsFloat:
		if pos+8 > len(data) {
			return nil, 0, ErrCorruptObject
		}
		return math.Float64frombits(binary.LittleEndian.Uint64(data[pos:])), pos + 8, nil
	case clsString:
		ln, n := binary.Uvarint(data[pos:])
		if n <= 0 || pos+n+int(ln) > len(data) {
			return nil, 0, ErrCorruptObject
		}
		start := pos + n
		return string(data[start : start+int(ln)]), start + int(ln), nil
	case clsBool:
		if pos >= len(data) {
			return nil, 0, ErrCorruptObject
		}
		return data[pos] != 0, pos + 1, nil
	case clsBytes:
		ln, n := binary.Uvarint(data[pos:])
		if n <= 0 || pos+n+int(ln) > len(data) {
			return nil, 0, ErrCorruptObject
		}
		start := pos + n
		out := make([]byte, ln)
		copy(out, data[start:start+int(ln)])
		return out, start + int(ln), nil
	case clsRow:
		row, n, err := o.decodeRow(data[pos:])
		if err != nil {
			return nil, 0, err
		}
		return row, pos + n, nil
	default:
		return nil, 0, fmt.Errorf("%w: unknown class %q", ErrCorruptObject, name)
	}
}

func init() {
	Register(ObjectSerde{})
}

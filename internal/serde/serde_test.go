package serde

import (
	"bytes"
	"errors"
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestStringSerdeRoundTrip(t *testing.T) {
	s := StringSerde{}
	b, err := s.Encode("hello")
	if err != nil {
		t.Fatal(err)
	}
	v, err := s.Decode(b)
	if err != nil || v.(string) != "hello" {
		t.Fatalf("decode: %v %v", v, err)
	}
	if _, err := s.Encode(42); !errors.Is(err, ErrWrongType) {
		t.Fatalf("wrong type: %v", err)
	}
}

func TestInt64SerdeRoundTrip(t *testing.T) {
	s := Int64Serde{}
	for _, n := range []int64{0, 1, -1, math.MaxInt64, math.MinInt64, 123456789} {
		b, err := s.Encode(n)
		if err != nil {
			t.Fatal(err)
		}
		v, err := s.Decode(b)
		if err != nil || v.(int64) != n {
			t.Fatalf("round trip %d: %v %v", n, v, err)
		}
	}
	if _, err := s.Decode([]byte{1, 2}); err == nil {
		t.Fatal("short payload accepted")
	}
}

func TestInt64SerdeOrderPreserving(t *testing.T) {
	s := Int64Serde{}
	values := []int64{-100, -1, 0, 1, 7, 1000, math.MinInt64, math.MaxInt64}
	type pair struct {
		n int64
		b []byte
	}
	pairs := make([]pair, len(values))
	for i, n := range values {
		b, _ := s.Encode(n)
		pairs[i] = pair{n, b}
	}
	sort.Slice(pairs, func(i, j int) bool { return bytes.Compare(pairs[i].b, pairs[j].b) < 0 })
	for i := 1; i < len(pairs); i++ {
		if pairs[i-1].n >= pairs[i].n {
			t.Fatalf("byte order violates numeric order: %d before %d", pairs[i-1].n, pairs[i].n)
		}
	}
}

func TestJSONSerdeRoundTrip(t *testing.T) {
	s := JSONSerde{}
	in := map[string]any{"a": float64(1), "b": "x", "c": []any{true, nil}}
	b, err := s.Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	v, err := s.Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	m := v.(map[string]any)
	if m["a"].(float64) != 1 || m["b"].(string) != "x" {
		t.Fatalf("decoded %v", m)
	}
}

func TestGobSerdeRowRoundTrip(t *testing.T) {
	s := GobSerde{}
	row := []any{int64(5), "abc", 3.14, true}
	b, err := s.Encode(row)
	if err != nil {
		t.Fatal(err)
	}
	v, err := s.Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	out := v.([]any)
	if len(out) != 4 || out[0].(int64) != 5 || out[1].(string) != "abc" || out[2].(float64) != 3.14 || out[3].(bool) != true {
		t.Fatalf("decoded %v", out)
	}
}

func TestGobSerdeScalar(t *testing.T) {
	s := GobSerde{}
	b, err := s.Encode("solo")
	if err != nil {
		t.Fatal(err)
	}
	v, err := s.Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if row := v.([]any); len(row) != 1 || row[0].(string) != "solo" {
		t.Fatalf("decoded %v", v)
	}
}

func TestRegistryLookup(t *testing.T) {
	for _, name := range []string{"string", "int64", "bytes", "json", "gob"} {
		s, err := Lookup(name)
		if err != nil || s.Name() != name {
			t.Fatalf("Lookup(%q): %v %v", name, s, err)
		}
	}
	if _, err := Lookup("nope"); err == nil {
		t.Fatal("unknown serde resolved")
	}
}

// Property: int64 serde round-trips every value and preserves ordering
// pairwise.
func TestPropertyInt64Serde(t *testing.T) {
	s := Int64Serde{}
	f := func(a, b int64) bool {
		ea, err1 := s.Encode(a)
		eb, err2 := s.Encode(b)
		if err1 != nil || err2 != nil {
			return false
		}
		da, _ := s.Decode(ea)
		db, _ := s.Decode(eb)
		if da.(int64) != a || db.(int64) != b {
			return false
		}
		cmp := bytes.Compare(ea, eb)
		switch {
		case a < b:
			return cmp < 0
		case a > b:
			return cmp > 0
		default:
			return cmp == 0
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: string serde round-trips arbitrary strings.
func TestPropertyStringSerde(t *testing.T) {
	s := StringSerde{}
	f := func(in string) bool {
		b, err := s.Encode(in)
		if err != nil {
			return false
		}
		v, err := s.Decode(b)
		return err == nil && v.(string) == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

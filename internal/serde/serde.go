// Package serde defines the serializer/deserializer abstraction Samza tasks
// use for message payloads and local-state values, mirroring Samza's Serde
// API (§2). Schema-driven codecs (Avro) live in internal/avro; this package
// provides the generic codecs, including the gob-based object serde that
// stands in for the paper's Kryo serializer.
package serde

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
)

// Serde converts between in-memory values and byte slices. Implementations
// must be safe for concurrent use.
type Serde interface {
	// Name identifies the serde in job configuration.
	Name() string
	Encode(v any) ([]byte, error)
	Decode(data []byte) (any, error)
}

// ErrWrongType is returned when a typed serde is handed an incompatible value.
var ErrWrongType = errors.New("serde: wrong value type")

// StringSerde encodes Go strings as raw UTF-8 bytes.
type StringSerde struct{}

// Name implements Serde.
func (StringSerde) Name() string { return "string" }

// Encode implements Serde.
func (StringSerde) Encode(v any) ([]byte, error) {
	s, ok := v.(string)
	if !ok {
		return nil, fmt.Errorf("%w: want string, got %T", ErrWrongType, v)
	}
	return []byte(s), nil
}

// Decode implements Serde.
func (StringSerde) Decode(data []byte) (any, error) { return string(data), nil }

// Int64Serde encodes int64 values as 8 big-endian bytes, preserving numeric
// order under lexicographic byte comparison (useful for range scans).
type Int64Serde struct{}

// Name implements Serde.
func (Int64Serde) Name() string { return "int64" }

// Encode implements Serde.
func (Int64Serde) Encode(v any) ([]byte, error) {
	n, ok := v.(int64)
	if !ok {
		return nil, fmt.Errorf("%w: want int64, got %T", ErrWrongType, v)
	}
	var b [8]byte
	// Bias by the sign bit so negative values sort below positives.
	binary.BigEndian.PutUint64(b[:], uint64(n)^(1<<63))
	return b[:], nil
}

// Decode implements Serde.
func (Int64Serde) Decode(data []byte) (any, error) {
	if len(data) != 8 {
		return nil, fmt.Errorf("serde: int64 payload has %d bytes", len(data))
	}
	return int64(binary.BigEndian.Uint64(data) ^ (1 << 63)), nil
}

// BytesSerde passes byte slices through unchanged.
type BytesSerde struct{}

// Name implements Serde.
func (BytesSerde) Name() string { return "bytes" }

// Encode implements Serde.
func (BytesSerde) Encode(v any) ([]byte, error) {
	b, ok := v.([]byte)
	if !ok {
		return nil, fmt.Errorf("%w: want []byte, got %T", ErrWrongType, v)
	}
	return b, nil
}

// Decode implements Serde.
func (BytesSerde) Decode(data []byte) (any, error) { return data, nil }

// JSONSerde encodes arbitrary values with encoding/json. Decoded values use
// json's generic types (map[string]any, []any, float64, string, bool, nil).
type JSONSerde struct{}

// Name implements Serde.
func (JSONSerde) Name() string { return "json" }

// Encode implements Serde.
func (JSONSerde) Encode(v any) ([]byte, error) { return json.Marshal(v) }

// Decode implements Serde.
func (JSONSerde) Decode(data []byte) (any, error) {
	var v any
	if err := json.Unmarshal(data, &v); err != nil {
		return nil, err
	}
	return v, nil
}

// GobSerde is a generic reflective object serde. It is the Go analog of the
// Kryo serializer the paper's SamzaSQL prototype used inside its key-value
// store, and like Kryo it is substantially slower than a schema-driven
// codec — the property behind the paper's ~2x join slowdown (§5.1).
//
// Values round-trip as []any rows (the SamzaSQL tuple representation).
type GobSerde struct{}

// Name implements Serde.
func (GobSerde) Name() string { return "gob" }

// gobRow wraps the row so gob records concrete element types.
type gobRow struct{ Fields []any }

func init() {
	gob.Register(gobRow{})
	gob.Register([]any{})
	gob.Register(map[string]any{})
	gob.Register(int64(0))
	gob.Register(float64(0))
	gob.Register("")
	gob.Register(true)
}

// Encode implements Serde.
func (GobSerde) Encode(v any) ([]byte, error) {
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	if row, ok := v.([]any); ok {
		if err := enc.Encode(gobRow{Fields: row}); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	}
	if err := enc.Encode(gobRow{Fields: []any{v}}); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Decode implements Serde.
func (GobSerde) Decode(data []byte) (any, error) {
	var row gobRow
	dec := gob.NewDecoder(bytes.NewReader(data))
	if err := dec.Decode(&row); err != nil {
		return nil, err
	}
	return row.Fields, nil
}

// registryMu guards the process-wide serde registry used to resolve serde
// names found in job configuration.
var (
	registryMu sync.RWMutex
	registry   = map[string]Serde{}
)

// Register installs a serde under its Name. Later registrations replace
// earlier ones, letting tests inject instrumented serdes.
func Register(s Serde) {
	registryMu.Lock()
	defer registryMu.Unlock()
	registry[s.Name()] = s
}

// Lookup resolves a serde name from the registry.
func Lookup(name string) (Serde, error) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	s, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("serde: unknown serde %q", name)
	}
	return s, nil
}

func init() {
	Register(StringSerde{})
	Register(Int64Serde{})
	Register(BytesSerde{})
	Register(JSONSerde{})
	Register(GobSerde{})
}

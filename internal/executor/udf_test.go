package executor

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"testing"

	"samzasql/internal/sql/types"
	"samzasql/internal/sql/udf"
)

// registerTestUDFs installs the test UDFs once per process (the registry is
// global, like a production deployment's function catalog).
var registerUDFsOnce sync.Once

func registerTestUDFs(t *testing.T) {
	t.Helper()
	registerUDFsOnce.Do(func() {
		// Scalar: DOUBLE_IT(x) = 2x.
		err := udf.RegisterScalar(&udf.Scalar{
			Name: "DOUBLE_IT", MinArgs: 1, MaxArgs: 1,
			ResultType: func(args []types.Type) (types.Type, error) {
				if !args[0].Numeric() && args[0] != types.Null {
					return types.Unknown, fmt.Errorf("DOUBLE_IT needs a number")
				}
				return args[0], nil
			},
			Eval: func(args []any) (any, error) {
				switch v := args[0].(type) {
				case nil:
					return nil, nil
				case int64:
					return 2 * v, nil
				case float64:
					return 2 * v, nil
				default:
					return nil, fmt.Errorf("DOUBLE_IT over %T", v)
				}
			},
		})
		if err != nil {
			panic(err)
		}
		// Aggregate: GEOMEAN — non-invertible in this implementation (log
		// sum is invertible, but we deliberately mark it non-invertible to
		// exercise the sliding window's rebuild path for UDAFs).
		err = udf.RegisterAggregate(&udf.Aggregate{
			Name: "GEOMEAN",
			ResultType: func(arg types.Type) (types.Type, error) {
				if !arg.Numeric() {
					return types.Unknown, fmt.Errorf("GEOMEAN needs a number")
				}
				return types.Double, nil
			},
			New: func() udf.AggregateState { return &geomeanState{} },
		})
		if err != nil {
			panic(err)
		}
	})
}

// geomeanState implements the UDAF contract, including snapshot/restore so
// it participates in changelog-backed fault tolerance.
type geomeanState struct {
	logSum float64
	count  int64
}

func (g *geomeanState) Add(v any) error {
	if v == nil {
		return nil
	}
	f, err := toF(v)
	if err != nil {
		return err
	}
	if f <= 0 {
		return nil // geometric mean over positive values only
	}
	g.logSum += math.Log(f)
	g.count++
	return nil
}

func (g *geomeanState) Remove(v any) error { return fmt.Errorf("GEOMEAN is not invertible") }
func (g *geomeanState) Invertible() bool   { return false }

func (g *geomeanState) Value() any {
	if g.count == 0 {
		return nil
	}
	return math.Exp(g.logSum / float64(g.count))
}

func (g *geomeanState) Snapshot() []any { return []any{g.logSum, g.count} }

func (g *geomeanState) Restore(row []any) error {
	if len(row) != 2 {
		return fmt.Errorf("geomean snapshot has %d fields", len(row))
	}
	g.logSum, _ = row[0].(float64)
	g.count, _ = row[1].(int64)
	return nil
}

func toF(v any) (float64, error) {
	switch t := v.(type) {
	case int64:
		return float64(t), nil
	case float64:
		return t, nil
	default:
		return 0, fmt.Errorf("not a number: %T", v)
	}
}

func TestScalarUDFInQueries(t *testing.T) {
	registerTestUDFs(t)
	e, _ := testEngine(t, 2, 100)
	rows, err := e.ExecuteBounded("SELECT orderId, DOUBLE_IT(units) FROM Orders WHERE DOUBLE_IT(units) > 150")
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, r := range replayOrders(t, 100) {
		if 2*r[3].(int64) > 150 {
			want++
		}
	}
	if len(rows) != want {
		t.Fatalf("%d rows, want %d", len(rows), want)
	}
	for _, r := range rows {
		if r[1].(int64)%2 != 0 {
			t.Fatalf("DOUBLE_IT produced odd value %v", r[1])
		}
	}
}

func TestScalarUDFTypeError(t *testing.T) {
	registerTestUDFs(t)
	e, _ := testEngine(t, 1, 1)
	_, err := e.ExecuteBounded("SELECT DOUBLE_IT(pad) FROM Orders")
	if err == nil || !strings.Contains(err.Error(), "DOUBLE_IT") {
		t.Fatalf("type error not surfaced: %v", err)
	}
}

func TestUDAFInGroupBy(t *testing.T) {
	registerTestUDFs(t)
	e, _ := testEngine(t, 2, 500)
	rows, err := e.ExecuteBounded("SELECT productId, GEOMEAN(units) FROM Orders GROUP BY productId")
	if err != nil {
		t.Fatal(err)
	}
	// Reference computation.
	logSum := map[int64]float64{}
	count := map[int64]int64{}
	for _, r := range replayOrders(t, 500) {
		pid := r[1].(int64)
		logSum[pid] += math.Log(float64(r[3].(int64)))
		count[pid]++
	}
	if len(rows) != len(count) {
		t.Fatalf("%d groups, want %d", len(rows), len(count))
	}
	for _, r := range rows {
		pid := r[0].(int64)
		want := math.Exp(logSum[pid] / float64(count[pid]))
		got := r[1].(float64)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("group %d: GEOMEAN %v, want %v", pid, got, want)
		}
	}
}

func TestUDAFInSlidingWindow(t *testing.T) {
	registerTestUDFs(t)
	e, _ := testEngine(t, 1, 300)
	rows, err := e.ExecuteBounded(`
		SELECT rowtime, productId, units,
		  GEOMEAN(units) OVER (PARTITION BY productId ORDER BY rowtime
		    RANGE INTERVAL '1' SECOND PRECEDING) g
		FROM Orders`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 300 {
		t.Fatalf("%d rows", len(rows))
	}
	// Reference: per product, geometric mean over trailing 1s window. The
	// non-invertible UDAF exercises the rebuild-from-window path.
	type ev struct{ ts, units int64 }
	hist := map[int64][]ev{}
	idx := 0
	for _, r := range replayOrders(t, 300) {
		pid := r[1].(int64)
		ts := r[0].(int64)
		u := r[3].(int64)
		hist[pid] = append(hist[pid], ev{ts, u})
		var ls float64
		var n int64
		for _, h := range hist[pid] {
			if h.ts >= ts-1000 {
				ls += math.Log(float64(h.units))
				n++
			}
		}
		want := math.Exp(ls / float64(n))
		got := rows[idx][3].(float64)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("row %d (product %d): GEOMEAN %v, want %v", idx, pid, got, want)
		}
		idx++
	}
}

func TestUDFNamesListing(t *testing.T) {
	registerTestUDFs(t)
	names := udf.Names()
	found := map[string]bool{}
	for _, n := range names {
		found[n] = true
	}
	if !found["DOUBLE_IT"] || !found["GEOMEAN"] {
		t.Fatalf("Names() = %v", names)
	}
	if !sort.StringsAreSorted(names) {
		t.Fatalf("Names() not sorted: %v", names)
	}
}

func TestUDFDuplicateRegistrationRejected(t *testing.T) {
	registerTestUDFs(t)
	err := udf.RegisterScalar(&udf.Scalar{
		Name: "DOUBLE_IT", MinArgs: 1, MaxArgs: 1,
		ResultType: func(args []types.Type) (types.Type, error) { return args[0], nil },
		Eval:       func(args []any) (any, error) { return args[0], nil },
	})
	if err == nil {
		t.Fatal("duplicate scalar registration accepted")
	}
	err = udf.RegisterAggregate(&udf.Aggregate{
		Name:       "GEOMEAN",
		ResultType: func(arg types.Type) (types.Type, error) { return types.Double, nil },
		New:        func() udf.AggregateState { return &geomeanState{} },
	})
	if err == nil {
		t.Fatal("duplicate aggregate registration accepted")
	}
}

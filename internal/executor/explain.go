package executor

import (
	"context"
	"fmt"
	"strings"
	"time"

	"samzasql/internal/metrics"
	"samzasql/internal/sql/plan"
)

// ExplainAnalyze runs a streaming query briefly — until its input backlog
// drains or maxRun elapses, whichever comes first — then renders the
// optimized physical plan annotated with live per-operator tuple counts
// and latency percentiles from the metrics registry. The query's job is
// stopped before returning; its output topic retains whatever it emitted.
func (e *Engine) ExplainAnalyze(ctx context.Context, query string, maxRun time.Duration) (string, error) {
	p, err := e.Prepare(query)
	if err != nil {
		return "", err
	}
	if !p.Program.Streaming {
		return "", fmt.Errorf("executor: EXPLAIN ANALYZE needs a streaming query; use EXPLAIN for bounded ones")
	}
	if maxRun <= 0 {
		maxRun = 2 * time.Second
	}
	job, err := e.Submit(ctx, p)
	if err != nil {
		return "", err
	}
	started := time.Now()
	// Let the job chew: done when every input message has been processed
	// (backlog zero after some progress) or the run budget expires.
	deadline := started.Add(maxRun)
	for time.Now().Before(deadline) {
		snap := job.MetricsSnapshot()
		if snap.Counters["messages-processed"] > 0 && job.Main.UpdateLags() == 0 {
			break
		}
		select {
		case <-ctx.Done():
			job.Stop()
			return "", ctx.Err()
		case <-time.After(20 * time.Millisecond):
		}
	}
	elapsed := time.Since(started)
	job.Stop()
	snap := job.MetricsSnapshot()
	return renderAnalyze(p, snap, elapsed), nil
}

// renderAnalyze formats the plan plus the per-stage observation table.
func renderAnalyze(p *Prepared, snap metrics.Snapshot, elapsed time.Duration) string {
	var b strings.Builder
	b.WriteString(plan.Format(p.Optimized))
	if !strings.HasSuffix(b.String(), "\n") {
		b.WriteString("\n")
	}
	processed := snap.Counters["messages-processed"]
	fmt.Fprintf(&b, "\nran %.2fs  %d messages processed (%.0f msg/s)  job %s\n\n",
		elapsed.Seconds(), processed, float64(processed)/elapsed.Seconds(), p.JobName)
	fmt.Fprintf(&b, "%-22s %10s %10s %10s %10s %10s\n",
		"stage", "tuples", "p50(us)", "p95(us)", "p99(us)", "max(us)")
	for _, stage := range p.Program.Stages {
		out := snap.Counters["operator."+stage+".out"]
		h := snap.Histograms["operator."+stage+".process-ns"]
		fmt.Fprintf(&b, "%-22s %10d %10.1f %10.1f %10.1f %10.1f\n",
			stage, out,
			float64(h.P50)/1e3, float64(h.P95)/1e3, float64(h.P99)/1e3, float64(h.Max)/1e3)
	}
	return b.String()
}

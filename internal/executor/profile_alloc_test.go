package executor

import (
	"testing"

	"samzasql/internal/profile"
	"samzasql/internal/samza"
)

// TestFilterProcessZeroAllocsWithProfiler pins the acceptance bound for
// continuous profiling: a constructed-but-idle profiler must not put
// allocations back on the hot path. Between capture windows the profiler
// holds no locks and runs no code on the task path — Process must stay at
// zero allocations with the profiler object live in the process. (During a
// capture window the runtime's CPU sampler itself costs a few percent; the
// overhead sweep in EXPERIMENTS.md measures that separately.)
func TestFilterProcessZeroAllocsWithProfiler(t *testing.T) {
	prof := profile.New(profile.Config{}, false)
	if prof.Enabled() {
		t.Fatal("profiler should be idle")
	}
	if _, err := prof.Capture(t.Context()); err == nil {
		t.Fatal("idle profiler must refuse captures")
	}

	task, coll, miss, hit := setupFilterTask(t)
	for name, env := range map[string]samza.IncomingMessageEnvelope{"miss": miss, "hit": hit} {
		env := env
		allocs := testing.AllocsPerRun(1000, func() {
			if err := task.Process(env, task.bound, nil); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("%s path with idle profiler: %.1f allocs per message, want 0", name, allocs)
		}
	}
	if coll.sent == 0 {
		t.Fatal("hit path never reached the collector")
	}
}

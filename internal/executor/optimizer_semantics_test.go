package executor

import (
	"fmt"
	"testing"
)

// TestOptimizerPreservesSemantics executes a battery of queries with the
// rule-based optimizer on and off and requires identical result sets — the
// global correctness property every opt rule must maintain (§4.2).
func TestOptimizerPreservesSemantics(t *testing.T) {
	queries := []string{
		"SELECT * FROM Orders WHERE units > 50 AND 1 = 1",
		"SELECT rowtime, units * 2 + (3 - 1) FROM Orders WHERE units > 10 OR units < 5",
		"SELECT x + 1 FROM (SELECT units AS x, rowtime FROM Orders) WHERE x > 5",
		`SELECT Orders.orderId, Products.supplierId
		 FROM Orders JOIN Products ON Orders.productId = Products.productId
		 WHERE Orders.units > 10 AND Products.supplierId = 3`,
		`SELECT productId, COUNT(*), SUM(units) FROM Orders
		 GROUP BY productId HAVING COUNT(*) > 2`,
		`SELECT START(rowtime), COUNT(*) FROM Orders
		 GROUP BY TUMBLE(rowtime, INTERVAL '5' SECOND)`,
		`SELECT rowtime, SUM(units) OVER (PARTITION BY productId
		   ORDER BY rowtime RANGE INTERVAL '1' SECOND PRECEDING) s
		 FROM Orders WHERE units > 1`,
		"SELECT CASE WHEN units > 50 THEN 'big' ELSE 'small' END, units FROM Orders WHERE units IN (1, 2, 3, 90, 91)",
	}
	for _, q := range queries {
		optEngine, _ := testEngine(t, 4, 800)
		optEngine.Optimize = true
		optimized, err := optEngine.ExecuteBounded(q)
		if err != nil {
			t.Fatalf("optimized %q: %v", q, err)
		}
		rawEngine, _ := testEngine(t, 4, 800)
		rawEngine.Optimize = false
		raw, err := rawEngine.ExecuteBounded(q)
		if err != nil {
			t.Fatalf("unoptimized %q: %v", q, err)
		}
		if len(optimized) != len(raw) {
			t.Fatalf("%q: %d rows optimized vs %d unoptimized", q, len(optimized), len(raw))
		}
		sortRows(optimized)
		sortRows(raw)
		for i := range raw {
			if fmt.Sprintf("%v", optimized[i]) != fmt.Sprintf("%v", raw[i]) {
				t.Fatalf("%q row %d differs:\n  opt: %v\n  raw: %v", q, i, optimized[i], raw[i])
			}
		}
	}
}

// Package executor is SamzaSQL's query executor (§4.1, §4.2): it drives the
// two-step planning pipeline. Step one runs at the shell: parse → validate →
// logical plan → optimize → physical compile, deriving the Samza job
// configuration and publishing planner metadata (the query text, output
// topic and schema locations) to Zookeeper. Step two runs inside each
// SamzaSQL task at initialization: the task reads the metadata back from
// Zookeeper, re-plans, and generates its operator router.
package executor

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"samzasql/internal/kafka"
	"samzasql/internal/samza"
	"samzasql/internal/sql/ast"
	"samzasql/internal/sql/catalog"
	"samzasql/internal/sql/opt"
	"samzasql/internal/sql/parser"
	"samzasql/internal/sql/physical"
	"samzasql/internal/sql/plan"
	"samzasql/internal/sql/validate"
	"samzasql/internal/zk"
)

// Engine executes SamzaSQL statements against a broker and cluster.
type Engine struct {
	Catalog *catalog.Catalog
	Broker  *kafka.Broker
	Runner  *samza.JobRunner
	ZK      *zk.Store
	// Containers is the container count for submitted jobs (clamped to
	// the partition count by the job planner).
	Containers int
	// TaskParallelism bounds concurrent task execution per container
	// (samza.JobSpec.TaskParallelism): 0 lets every task run in parallel,
	// 1 reproduces the sequential container loop.
	TaskParallelism int
	// Optimize toggles the rule-based optimizer (on by default; the
	// ablation benches turn it off).
	Optimize bool
	// FastPath enables the fused scan/filter/project/insert execution mode
	// for eligible queries — the paper's §7 proposal to close the 30-40%
	// gap by avoiding the AvroToArray/ArrayToAvro steps. Off by default to
	// match the prototype the paper evaluates.
	FastPath bool
	// StoreCacheSize, when positive, wraps every task store of submitted
	// jobs in an LRU object cache with write-behind batching
	// (samza.JobSpec.StoreCacheSize). 0 — the default — keeps the
	// paper-faithful per-operation store path.
	StoreCacheSize int
	// WriteBatchSize, when > 1, buffers store/changelog writes until commit
	// (samza.JobSpec.WriteBatchSize). The default (0) keeps write-through
	// changelog mirroring, which the §4.3 replay-detection output dedup
	// depends on; see the JobSpec field for the trade-off.
	WriteBatchSize int
	// MetricsInterval, when positive, enables the per-container metrics
	// snapshot reporter on submitted jobs (samza.JobSpec.MetricsInterval).
	MetricsInterval time.Duration
	// TraceSampleRate, when positive, enables end-to-end dataflow tracing
	// on submitted jobs: the broker samples roughly this fraction of
	// produced messages into span trees (samza.JobSpec.TraceSampleRate),
	// published on the "__traces" stream and visible via /debug/traces and
	// the shell's \trace. 0 keeps the hot path at a single branch.
	TraceSampleRate float64
	// TraceInterval overrides the per-container trace reporter period; 0
	// uses samza.DefaultTraceInterval whenever sampling is enabled.
	TraceInterval time.Duration
	// ProfileInterval, when positive, enables the per-container continuous
	// profiler on submitted jobs (samza.JobSpec.ProfileInterval): windowed
	// CPU captures plus heap/goroutine snapshots published on "__profiles",
	// cluster-merged by the monitor's /profile. 0 keeps profiling fully off.
	ProfileInterval time.Duration
	// ProfileWindow is the CPU sampling length within each profile interval
	// (samza.JobSpec.ProfileWindow); 0 uses profile.DefaultWindow.
	ProfileWindow time.Duration
	// BatchSize sets the vectorized delivery granularity of submitted jobs
	// (samza.JobSpec.BatchSize): how many messages one poll drains into a
	// columnar block. 0 uses samza.DefaultBatchSize; samza.ScalarBatch (-1)
	// forces the per-message reference path.
	BatchSize int

	queryID atomic.Int64
	reparts repartitionJobs
}

// NewEngine wires an engine.
func NewEngine(cat *catalog.Catalog, broker *kafka.Broker, runner *samza.JobRunner, zkStore *zk.Store) *Engine {
	return &Engine{
		Catalog:    cat,
		Broker:     broker,
		Runner:     runner,
		ZK:         zkStore,
		Containers: 1,
		Optimize:   true,
	}
}

// Prepared is a fully planned statement.
type Prepared struct {
	Stmt      ast.Statement
	Bound     *validate.Result
	Logical   plan.Node
	Optimized plan.Node
	Program   *physical.Program
	// JobName identifies the Samza job for streaming execution.
	JobName string
	// OutputTopic receives the query result stream.
	OutputTopic string
	Warnings    []string
}

// Prepare runs step-one planning on a statement string.
func (e *Engine) Prepare(query string) (*Prepared, error) {
	stmt, err := parser.Parse(query)
	if err != nil {
		return nil, err
	}
	v := validate.New(e.Catalog)
	res, err := v.Validate(stmt)
	if err != nil {
		return nil, err
	}
	logical, err := plan.Build(res)
	if err != nil {
		return nil, err
	}
	optimized := logical
	if e.Optimize {
		optimized = opt.Optimize(logical)
	}
	id := e.queryID.Add(1)
	jobName := fmt.Sprintf("samzasql-query-%d", id)
	output := res.InsertTarget
	if output == "" {
		output = fmt.Sprintf("%s-output", jobName)
	}
	prog, err := physical.CompileWithOptions(optimized, output, physical.Options{FastPath: e.FastPath})
	if err != nil {
		return nil, err
	}
	return &Prepared{
		Stmt:        stmt,
		Bound:       res,
		Logical:     logical,
		Optimized:   optimized,
		Program:     prog,
		JobName:     jobName,
		OutputTopic: output,
		Warnings:    res.Warnings,
	}, nil
}

// Explain returns the optimized plan rendering for a query.
func (e *Engine) Explain(query string) (string, error) {
	p, err := e.Prepare(query)
	if err != nil {
		return "", err
	}
	return plan.Format(p.Optimized), nil
}

// CreateView validates and registers a view in the catalog (§3.5).
func (e *Engine) CreateView(query string) (*Prepared, error) {
	p, err := e.Prepare(query)
	if err != nil {
		return nil, err
	}
	if p.Bound.View == nil {
		return nil, fmt.Errorf("executor: statement is not CREATE VIEW")
	}
	err = e.Catalog.Define(&catalog.Object{
		Kind: catalog.View,
		Name: p.Bound.View.Name,
		Row:  p.Bound.Root.Output,
		Def:  p.Bound.View.Select,
	})
	if err != nil {
		return nil, err
	}
	return p, nil
}

// zkQueryPath is where the shell publishes a job's query text (§4.2).
func zkQueryPath(jobName string) string {
	return "/samzasql/jobs/" + jobName + "/query"
}

// Submit launches a prepared streaming query and returns the running
// handle. It starts any repartition stages the plan needs (§7 future work
// 1), provisions the output topic (same partition count as the first
// input), publishes the query text to Zookeeper and generates the Samza job
// configuration referencing it.
func (e *Engine) Submit(ctx context.Context, p *Prepared) (*Job, error) {
	if !p.Program.Streaming {
		return nil, fmt.Errorf("executor: query is not streaming; use ExecuteBounded")
	}
	// Repartition stages run first: they create and feed the intermediate
	// topics the main job's scans read.
	var reparts []*samza.RunningJob
	for _, spec := range p.Program.Repartitions {
		rj, err := e.reparts.ensure(ctx, e, spec)
		if err != nil {
			for _, r := range reparts {
				r.Stop()
			}
			return nil, fmt.Errorf("executor: repartition stage: %w", err)
		}
		if rj != nil {
			reparts = append(reparts, rj)
		}
	}
	partitions, err := e.Broker.Partitions(p.Program.Inputs[0].Topic)
	if err != nil {
		return nil, err
	}
	if err := e.Broker.EnsureTopic(p.OutputTopic, kafka.TopicConfig{Partitions: partitions}); err != nil {
		return nil, err
	}
	// Publish planner metadata to Zookeeper; tasks re-plan from it.
	if err := e.ZK.CreateRecursive(zkQueryPath(p.JobName), []byte(p.Stmt.String())); err != nil {
		return nil, err
	}

	inputs := make([]samza.StreamSpec, len(p.Program.Inputs))
	for i, in := range p.Program.Inputs {
		inputs[i] = samza.StreamSpec{Topic: in.Topic, Bootstrap: in.Bootstrap}
	}
	job := &samza.JobSpec{
		Name:            p.JobName,
		Inputs:          inputs,
		Containers:      e.Containers,
		TaskParallelism: e.TaskParallelism,
		Stores:          p.Program.Stores,
		CommitEvery:     1000,
		MaxRestarts:     2,
		StoreCacheSize:  e.StoreCacheSize,
		WriteBatchSize:  e.WriteBatchSize,
		MetricsInterval: e.MetricsInterval,
		TraceSampleRate: e.TraceSampleRate,
		TraceInterval:   e.TraceInterval,
		ProfileInterval: e.ProfileInterval,
		ProfileWindow:   e.ProfileWindow,
		BatchSize:       e.BatchSize,
		Config: map[string]string{
			"samzasql.zk.query.path": zkQueryPath(p.JobName),
			"samzasql.output.topic":  p.OutputTopic,
			"samzasql.fastpath":      fmt.Sprintf("%v", e.FastPath),
		},
		TaskFactory: func() samza.StreamTask {
			return NewTask(e.Catalog, e.ZK, e.Optimize)
		},
	}
	// Tracing is a broker-level concern (contexts attach at produce time);
	// installing the sampler here keeps one knob for the whole pipeline,
	// repartition stages included.
	if e.TraceSampleRate > 0 {
		e.Broker.SetTraceSampling(e.TraceSampleRate)
	}
	main, err := e.Runner.Submit(ctx, job)
	if err != nil {
		for _, r := range reparts {
			r.Stop()
		}
		return nil, err
	}
	return &Job{Main: main, Repartitions: reparts}, nil
}

// ExecuteStream prepares and submits a streaming query in one call.
func (e *Engine) ExecuteStream(ctx context.Context, query string) (*Prepared, *Job, error) {
	p, err := e.Prepare(query)
	if err != nil {
		return nil, nil, err
	}
	rj, err := e.Submit(ctx, p)
	if err != nil {
		return nil, nil, err
	}
	return p, rj, nil
}

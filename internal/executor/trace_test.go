package executor

import (
	"context"
	"strings"
	"testing"
	"time"

	"samzasql/internal/kafka"
	"samzasql/internal/metrics"
	"samzasql/internal/samza"
	"samzasql/internal/sql/catalog"
	"samzasql/internal/trace"
	"samzasql/internal/workload"
	"samzasql/internal/yarn"
	"samzasql/internal/zk"
)

// TestFilterProcessZeroAllocsTracerBound re-pins the zero-alloc hot path
// with the tracing cursor wired the way a container wires it: Active bound
// in the task context, sampling off. The unsampled path must stay at one
// branch per call site — no allocations.
func TestFilterProcessZeroAllocsTracerBound(t *testing.T) {
	cat := catalog.New()
	if err := workload.DefineCatalog(cat); err != nil {
		t.Fatal(err)
	}
	zkStore := zk.NewStore()
	const queryPath = "/samzasql/queries/traced-filter"
	if err := zkStore.CreateRecursive(queryPath, []byte("SELECT STREAM * FROM Orders WHERE units > 50")); err != nil {
		t.Fatal(err)
	}
	coll := &nullCollector{}
	act := trace.NewActive(trace.NewRecorder(64))
	ctx := &samza.TaskContext{
		Task:      samza.TaskNameFor(0),
		Partition: 0,
		Metrics:   metrics.NewRegistry(),
		Trace:     act,
		Config: map[string]string{
			"samzasql.zk.query.path": queryPath,
			"samzasql.output.topic":  "traced-out",
			"samzasql.fastpath":      "true",
		},
		Collector: coll,
	}
	task := NewTask(cat, zkStore, true)
	if err := task.Init(ctx); err != nil {
		t.Fatal(err)
	}
	gen := workload.NewOrdersGen(workload.DefaultOrdersConfig())
	_, key, value, err := gen.Next()
	if err != nil {
		t.Fatal(err)
	}
	env := samza.IncomingMessageEnvelope{
		Stream: "orders", Partition: 0, Key: key, Value: value,
	}
	allocs := testing.AllocsPerRun(1000, func() {
		if err := task.Process(env, task.bound, nil); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("unsampled message with tracer bound: %.1f allocs, want 0", allocs)
	}
}

// tracedEngine is testEngine with broker sampling installed before the
// workload lands, so the pre-produced messages carry trace contexts.
func tracedEngine(t *testing.T, orders int) *Engine {
	t.Helper()
	broker := kafka.NewBroker()
	broker.SetTraceSampling(1.0)
	cluster := yarn.NewCluster()
	cluster.AddNode("n1", yarn.Resource{VCores: 64, MemoryMB: 1 << 20})
	cat := catalog.New()
	if err := workload.DefineCatalog(cat); err != nil {
		t.Fatal(err)
	}
	if _, err := workload.ProduceOrders(broker, "orders", 2, orders, workload.DefaultOrdersConfig()); err != nil {
		t.Fatal(err)
	}
	e := NewEngine(cat, broker, samza.NewJobRunner(broker, cluster), zk.NewStore())
	e.TraceSampleRate = 1.0
	e.TraceInterval = 5 * time.Millisecond
	return e
}

// TestTracedQueryPublishesOperatorSpans runs a fully sampled SQL query and
// asserts the published traces cover produce → poll → process → operator
// stages, end to end through the executor.
func TestTracedQueryPublishesOperatorSpans(t *testing.T) {
	e := tracedEngine(t, 50)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, job, err := e.ExecuteStream(ctx, "SELECT STREAM productId, units FROM Orders WHERE units > 50")
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for job.MetricsSnapshot().Counters["messages-processed"] < 50 {
		if time.Now().After(deadline) {
			t.Fatal("job never processed the workload")
		}
		time.Sleep(5 * time.Millisecond)
	}
	job.Stop()

	stages := map[string]bool{}
	for _, td := range job.Main.RecentTraces() {
		for _, s := range td.Spans {
			stages[s.Stage] = true
		}
	}
	for _, want := range []string{"produce", "poll", "process", "operator.filter"} {
		if !stages[want] {
			t.Errorf("no %q span in recent traces; have %v", want, stages)
		}
	}

	// The runner-level rendering both /debug/traces and \trace share.
	var b strings.Builder
	e.Runner.WriteTraces(&b)
	out := b.String()
	for _, want := range []string{"operator.filter", "process", "queue-wait"} {
		if !strings.Contains(out, want) {
			t.Errorf("WriteTraces output missing %q:\n%s", want, out)
		}
	}
}

// TestBlockTraceSpansCarryRowCounts guards the batched tracing contract: a
// sampled message processed inside a columnar block still gets a full
// produce → poll → process → operator.* span tree, and every operator span
// reports the number of rows the block stage covered — with at least one
// genuinely multi-row block proving delivery was vectorized.
func TestBlockTraceSpansCarryRowCounts(t *testing.T) {
	e := tracedEngine(t, 80)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, job, err := e.ExecuteStream(ctx, "SELECT STREAM productId, units FROM Orders WHERE units > 25")
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for job.MetricsSnapshot().Counters["messages-processed"] < 80 {
		if time.Now().After(deadline) {
			t.Fatal("job never processed the workload")
		}
		time.Sleep(5 * time.Millisecond)
	}
	job.Stop()

	stages := map[string]bool{}
	var filterRows []int64
	for _, td := range job.Main.RecentTraces() {
		for _, s := range td.Spans {
			stages[s.Stage] = true
			if s.Stage == "operator.filter" {
				filterRows = append(filterRows, s.Rows)
			}
		}
	}
	for _, want := range []string{"produce", "poll", "process", "operator.filter"} {
		if !stages[want] {
			t.Fatalf("no %q span in recent traces; have %v", want, stages)
		}
	}
	multi := false
	for _, r := range filterRows {
		if r < 1 {
			t.Errorf("operator.filter span with row count %d, want >= 1 (the sampled row itself)", r)
		}
		if r > 1 {
			multi = true
		}
	}
	if !multi {
		t.Errorf("no operator.filter span covered more than one row (%v) — blocks were not batched", filterRows)
	}
}

func TestExplainAnalyze(t *testing.T) {
	e, _ := testEngine(t, 2, 300)
	out, err := e.ExplainAnalyze(context.Background(), "SELECT STREAM * FROM Orders WHERE units > 50", 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Filter", "messages processed", "stage", "p95(us)", "filter"} {
		if !strings.Contains(out, want) {
			t.Errorf("EXPLAIN ANALYZE output missing %q:\n%s", want, out)
		}
	}
	// The observed tuple counts come from live operator metrics: the filter
	// stage must report non-zero output for this predicate.
	if !strings.Contains(out, "300 messages processed") {
		t.Errorf("EXPLAIN ANALYZE did not drain the backlog:\n%s", out)
	}

	if _, err := e.ExplainAnalyze(context.Background(), "SELECT * FROM Orders", time.Second); err == nil {
		t.Fatal("EXPLAIN ANALYZE on a bounded query should error")
	}
}

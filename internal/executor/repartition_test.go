package executor

import (
	"context"
	"strings"
	"testing"
	"time"

	"samzasql/internal/avro"
	"samzasql/internal/kafka"
	"samzasql/internal/samza"
	"samzasql/internal/sql/catalog"
	"samzasql/internal/sql/types"
	"samzasql/internal/workload"
	"samzasql/internal/yarn"
	"samzasql/internal/zk"
)

// clicksCatalog builds a scenario whose join is NOT co-partitioned: a
// Clicks stream published keyed by userId, joined to Orders (keyed by
// productId) on productId. The Clicks side must repartition (§7 future
// work 1).
func clicksEngine(t *testing.T, partitions int32) *Engine {
	t.Helper()
	broker := kafka.NewBroker()
	cluster := yarn.NewCluster()
	cluster.AddNode("n1", yarn.Resource{VCores: 64, MemoryMB: 1 << 20})
	cluster.AddNode("n2", yarn.Resource{VCores: 64, MemoryMB: 1 << 20})
	cat := catalog.New()
	if err := workload.DefineCatalog(cat); err != nil {
		t.Fatal(err)
	}
	err := cat.Define(&catalog.Object{
		Kind: catalog.Stream, Name: "Clicks", Topic: "clicks",
		TimestampCol: "rowtime", PartitionKeyCol: "userId",
		Row: types.NewRowType(
			types.Column{Name: "rowtime", Type: types.Timestamp},
			types.Column{Name: "userId", Type: types.Bigint},
			types.Column{Name: "productId", Type: types.Bigint},
		),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := broker.EnsureTopic("clicks", kafka.TopicConfig{Partitions: partitions}); err != nil {
		t.Fatal(err)
	}
	if err := workload.ProduceProducts(broker, "products", partitions, 100); err != nil {
		t.Fatal(err)
	}
	return NewEngine(cat, broker, samza.NewJobRunner(broker, cluster), zk.NewStore())
}

func produceClicks(t *testing.T, e *Engine, count int) {
	t.Helper()
	codec := avro.MustCodec(avro.Record("Clicks",
		avro.F("rowtime", avro.Long()),
		avro.F("userId", avro.Long()),
		avro.F("productId", avro.Long()),
	))
	for i := 0; i < count; i++ {
		row := []any{int64(1_600_000_000_000 + i*10), int64(i % 7), int64(i % 100)}
		value, err := codec.EncodeRow(row)
		if err != nil {
			t.Fatal(err)
		}
		// Published keyed by userId — NOT by the join key.
		if _, err := e.Broker.Produce("clicks", kafka.Message{
			Partition: -1,
			Key:       []byte{byte('u'), byte(i % 7)},
			Value:     value,
			Timestamp: row[0].(int64),
		}); err != nil {
			t.Fatal(err)
		}
	}
}

const clicksJoin = `
SELECT STREAM Clicks.rowtime, Clicks.userId, Clicks.productId,
  Products.supplierId
FROM Clicks JOIN Products ON Clicks.productId = Products.productId`

func TestRepartitionDetectedInPlan(t *testing.T) {
	e := clicksEngine(t, 4)
	p, err := e.Prepare(clicksJoin)
	if err != nil {
		t.Fatal(err)
	}
	if p.Bound.Root.Join.LeftRepartitionCol != "productId" {
		t.Fatalf("left repartition col %q", p.Bound.Root.Join.LeftRepartitionCol)
	}
	if got := len(p.Program.Repartitions); got != 1 {
		t.Fatalf("%d repartition stages", got)
	}
	spec := p.Program.Repartitions[0]
	if spec.SourceTopic != "clicks" || spec.KeyCol != "productId" {
		t.Fatalf("spec %+v", spec)
	}
	// The main job's scan reads the intermediate topic.
	found := false
	for _, in := range p.Program.Inputs {
		if in.Topic == spec.TargetTopic {
			found = true
		}
	}
	if !found {
		t.Fatalf("main job inputs %v do not include %q", p.Program.Inputs, spec.TargetTopic)
	}
	// EXPLAIN shows the repartitioned scan.
	plan, err := e.Explain(clicksJoin)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "repartition by productId") {
		t.Fatalf("plan missing repartition marker:\n%s", plan)
	}
}

func TestCoPartitionedJoinSkipsRepartition(t *testing.T) {
	e := clicksEngine(t, 4)
	p, err := e.Prepare(`
		SELECT STREAM Orders.rowtime FROM Orders
		JOIN Products ON Orders.productId = Products.productId`)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Program.Repartitions) != 0 {
		t.Fatalf("co-partitioned join planned %d repartitions", len(p.Program.Repartitions))
	}
}

func TestMisalignedRelationRejected(t *testing.T) {
	e := clicksEngine(t, 4)
	// Join ON a Products column that is not its changelog key.
	_, err := e.Prepare(`
		SELECT STREAM Orders.rowtime FROM Orders
		JOIN Products ON Orders.productId = Products.supplierId`)
	if err == nil || !strings.Contains(err.Error(), "changelog") {
		t.Fatalf("misaligned relation join: %v", err)
	}
}

func TestRepartitionedJoinEndToEnd(t *testing.T) {
	const clicks = 400
	e := clicksEngine(t, 4)
	produceClicks(t, e, clicks)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	p, job, err := e.ExecuteStream(ctx, clicksJoin)
	if err != nil {
		t.Fatal(err)
	}
	if len(job.Repartitions) != 1 {
		t.Fatalf("%d repartition jobs started", len(job.Repartitions))
	}
	waitForCount(t, 15*time.Second, func() int {
		return len(drainNew(t, e.Broker, p.OutputTopic))
	}, clicks, "repartitioned join output")
	job.Stop()

	out := drainNew(t, e.Broker, p.OutputTopic)
	if len(out) != clicks {
		t.Fatalf("%d joined rows, want %d", len(out), clicks)
	}
	for _, m := range out {
		row, err := p.Program.OutputCodec.DecodeRow(m.Value, nil)
		if err != nil {
			t.Fatal(err)
		}
		if row[3].(int64) != row[2].(int64)%10 {
			t.Fatalf("join mismatch %v", row)
		}
	}
	// The intermediate topic is keyed by productId: within any partition,
	// every message carries keys that hash there.
	spec := p.Program.Repartitions[0]
	nParts, err := e.Broker.Partitions(spec.TargetTopic)
	if err != nil {
		t.Fatal(err)
	}
	for part := int32(0); part < nParts; part++ {
		tp := kafka.TopicPartition{Topic: spec.TargetTopic, Partition: part}
		hwm, _ := e.Broker.HighWatermark(tp)
		off := int64(0)
		for off < hwm {
			msgs, wait, err := e.Broker.Fetch(tp, off, 512)
			if err != nil {
				t.Fatal(err)
			}
			if wait != nil {
				break
			}
			for _, m := range msgs {
				if kafka.PartitionForKey(m.Key, nParts) != part {
					t.Fatalf("message keyed %q landed in partition %d", m.Key, part)
				}
			}
			off = msgs[len(msgs)-1].Offset + 1
		}
	}
}

func TestSharedRepartitionStage(t *testing.T) {
	e := clicksEngine(t, 4)
	produceClicks(t, e, 50)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, job1, err := e.ExecuteStream(ctx, clicksJoin)
	if err != nil {
		t.Fatal(err)
	}
	defer job1.Stop()
	_, job2, err := e.ExecuteStream(ctx, clicksJoin)
	if err != nil {
		t.Fatal(err)
	}
	defer job2.Stop()
	if len(job1.Repartitions) != 1 {
		t.Fatalf("first query started %d stages", len(job1.Repartitions))
	}
	if len(job2.Repartitions) != 0 {
		t.Fatalf("second query duplicated the repartition stage (%d)", len(job2.Repartitions))
	}
}

func TestRepartitionedJoinBounded(t *testing.T) {
	e := clicksEngine(t, 4)
	produceClicks(t, e, 200)
	rows, err := e.ExecuteBounded(strings.Replace(clicksJoin, "SELECT STREAM", "SELECT", 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 200 {
		t.Fatalf("%d joined rows, want 200", len(rows))
	}
	for _, r := range rows {
		if r[3].(int64) != r[2].(int64)%10 {
			t.Fatalf("join mismatch %v", r)
		}
	}
	// Idempotent: a second bounded run must not double the intermediate.
	rows2, err := e.ExecuteBounded(strings.Replace(clicksJoin, "SELECT STREAM", "SELECT", 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows2) != 200 {
		t.Fatalf("second run: %d rows, want 200", len(rows2))
	}
}

package executor

import (
	"testing"
	"time"

	"samzasql/internal/kafka"
	"samzasql/internal/monitor"
	"samzasql/internal/samza"
)

// TestFilterProcessZeroAllocsWithMonitor pins the acceptance bound for the
// observability pipeline: attaching the cluster monitor must not put
// allocations back on the unsampled hot path. The monitor is live — tailers
// parked on the telemetry topics, run loop armed — while AllocsPerRun
// measures the task. testing.AllocsPerRun counts process-global mallocs, so
// the eval interval is pushed out of the measurement window to keep the
// check deterministic; what matters is that the attached monitor's standing
// machinery (goroutines, consumers, ring store) contributes nothing.
func TestFilterProcessZeroAllocsWithMonitor(t *testing.T) {
	broker := kafka.NewBroker()
	mon, err := monitor.Start(monitor.Config{Broker: broker, EvalInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Stop()

	task, coll, miss, hit := setupFilterTask(t)
	for name, env := range map[string]samza.IncomingMessageEnvelope{"miss": miss, "hit": hit} {
		env := env
		allocs := testing.AllocsPerRun(1000, func() {
			if err := task.Process(env, task.bound, nil); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("%s path with monitor attached: %.1f allocs per message, want 0", name, allocs)
		}
	}
	if coll.sent == 0 {
		t.Fatal("hit path never reached the collector")
	}
}

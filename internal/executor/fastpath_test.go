package executor

import (
	"context"
	"fmt"
	"sort"
	"testing"
	"time"
)

// TestFastPathMatchesNormalPath verifies the §7 fast-path mode produces
// byte-identical results to the standard operator pipeline for the queries
// it accelerates, in both bounded and streaming execution.
func TestFastPathMatchesNormalPath(t *testing.T) {
	queries := []string{
		"SELECT * FROM Orders WHERE units > 50",
		"SELECT rowtime, productId, units FROM Orders",
		"SELECT rowtime, units FROM Orders WHERE units > 25 AND productId < 50",
		"SELECT * FROM Orders",         // identity, no filter
		"SELECT units * 2 FROM Orders", // computed projection: compiled kernel
		"SELECT productId, units * 2 FROM Orders WHERE units > 10",
	}
	for _, q := range queries {
		normalEngine, _ := testEngine(t, 4, 500)
		normalEngine.FastPath = false
		normal, err := normalEngine.ExecuteBounded(q)
		if err != nil {
			t.Fatalf("normal %q: %v", q, err)
		}
		fastEngine, _ := testEngine(t, 4, 500)
		fastEngine.FastPath = true
		p, err := fastEngine.Prepare(q)
		if err != nil {
			t.Fatal(err)
		}
		if !p.Program.FastPath() {
			t.Fatalf("query %q did not take the fast path", q)
		}
		fast, err := fastEngine.RunBounded(p)
		if err != nil {
			t.Fatalf("fast %q: %v", q, err)
		}
		if len(fast) != len(normal) {
			t.Fatalf("%q: fast %d rows, normal %d rows", q, len(fast), len(normal))
		}
		sortRows(normal)
		sortRows(fast)
		for i := range normal {
			if fmt.Sprintf("%v", normal[i]) != fmt.Sprintf("%v", fast[i]) {
				t.Fatalf("%q row %d: normal %v, fast %v", q, i, normal[i], fast[i])
			}
		}
	}
}

func sortRows(rows [][]any) {
	sort.Slice(rows, func(i, j int) bool {
		return fmt.Sprintf("%v", rows[i]) < fmt.Sprintf("%v", rows[j])
	})
}

// TestFastPathIneligibleQueriesFallBack checks that plans the fast path
// cannot serve still compile through the general router.
func TestFastPathIneligibleQueriesFallBack(t *testing.T) {
	e, _ := testEngine(t, 1, 10)
	e.FastPath = true
	for _, q := range []string{
		"SELECT productId, COUNT(*) FROM Orders GROUP BY productId", // aggregate
		"SELECT Orders.rowtime FROM Orders JOIN Products ON Orders.productId = Products.productId",
	} {
		p, err := e.Prepare(q)
		if err != nil {
			t.Fatalf("%q: %v", q, err)
		}
		if p.Program.FastPath() {
			t.Fatalf("%q wrongly took the fast path", q)
		}
		if _, err := e.RunBounded(p); err != nil {
			t.Fatalf("%q fallback execution: %v", q, err)
		}
	}
}

// TestFastPathStreamingJob runs the fast path as a real Samza job end to
// end, including the task-side re-plan reading the fastpath flag from the
// job configuration.
func TestFastPathStreamingJob(t *testing.T) {
	e, _ := testEngine(t, 4, 1000)
	e.FastPath = true
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	p, rj, err := e.ExecuteStream(ctx, "SELECT STREAM * FROM Orders WHERE units > 50")
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, r := range replayOrders(t, 1000) {
		if r[3].(int64) > 50 {
			want++
		}
	}
	waitForCount(t, 10*time.Second, func() int {
		return len(drainNew(t, e.Broker, p.OutputTopic))
	}, want, "fast-path filtered output")
	rj.Stop()

	out := drainNew(t, e.Broker, p.OutputTopic)
	if len(out) != want {
		t.Fatalf("%d outputs, want %d", len(out), want)
	}
	// Identity fast path forwards the original 100-byte message bytes.
	for _, m := range out[:5] {
		row, err := p.Program.OutputCodec.DecodeRow(m.Value, nil)
		if err != nil {
			t.Fatal(err)
		}
		if row[3].(int64) <= 50 {
			t.Fatalf("row %v fails predicate", row)
		}
		if len(m.Value) < 90 {
			t.Fatalf("forwarded message shrunk to %d bytes; not the original encoding", len(m.Value))
		}
	}
}

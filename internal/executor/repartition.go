package executor

import (
	"context"
	"fmt"
	"strconv"
	"sync"

	"samzasql/internal/kafka"
	"samzasql/internal/metrics"
	"samzasql/internal/samza"
	"samzasql/internal/sql/physical"
	"samzasql/internal/yarn"
)

// RepartitionTask is the Samza task of a re-keying stage (§7 future work
// 1): it reads the join-key column straight from each message's wire bytes
// (never materializing the tuple) and forwards the message unchanged to the
// intermediate topic, keyed so the broker's partitioner co-locates join
// keys. Ordering is preserved per source partition only — the caveat the
// paper flags for order-sensitive downstream queries.
type RepartitionTask struct {
	Spec *physical.RepartitionSpec
	// Partitions is the target topic's partition count, letting the
	// vectorized path group a batch by destination partition. Zero (unknown)
	// keeps batches unsplit with broker-side key hashing.
	Partitions int32

	// perPart is the per-destination message grouping reused across batches.
	perPart [][]kafka.Message
}

// Init implements samza.StreamTask.
func (t *RepartitionTask) Init(*samza.TaskContext) error { return nil }

// Process implements samza.StreamTask.
func (t *RepartitionTask) Process(env samza.IncomingMessageEnvelope, c samza.MessageCollector, _ samza.Coordinator) error {
	keyVal, err := t.Spec.Codec.ReadField(env.Value, t.Spec.KeyCol)
	if err != nil {
		return fmt.Errorf("executor: repartition key read: %w", err)
	}
	return c.Send(samza.OutgoingMessageEnvelope{
		Stream:    t.Spec.TargetTopic,
		Partition: -1, // broker partitions by the new key
		Key:       repartitionKey(keyVal),
		Value:     env.Value,
		Timestamp: env.Timestamp,
	})
}

// repartitionKey renders the re-keying value as bytes: the same text
// fmt.Sprintf("%v") produces (the broker hashes these bytes, so both paths
// must agree), with the common scalar types formatted via strconv to keep
// reflection out of the batched path.
func repartitionKey(v any) []byte {
	switch x := v.(type) {
	case int64:
		return strconv.AppendInt(nil, x, 10)
	case string:
		return []byte(x)
	case float64:
		return strconv.AppendFloat(nil, x, 'g', -1, 64)
	case bool:
		return strconv.AppendBool(nil, x)
	}
	return []byte(fmt.Sprintf("%v", v))
}

// ProcessBatch implements samza.BatchedStreamTask: the whole polled batch is
// re-keyed in one pass and routed by destination partition — the messages
// bound for each target partition flush through one SendBatch call (the
// same FNV key hash the broker applies, so content and per-partition order
// are identical to the scalar path). Collectors without a batched side, or
// an unknown partition count, fall back to broker-side partitioning.
//
//samzasql:hotpath
func (t *RepartitionTask) ProcessBatch(envs []samza.IncomingMessageEnvelope, c samza.MessageCollector, coord samza.Coordinator, _ int64) error {
	bc, ok := c.(samza.BatchCollector)
	if !ok {
		for i := range envs {
			//samzasql:ignore hotpath-blocking -- producing to the broker is this task's output contract; the partition append lock is held for a single in-memory append
			if err := t.Process(envs[i], c, coord); err != nil {
				return err
			}
		}
		return nil
	}
	n := t.Partitions
	for int32(len(t.perPart)) < n {
		t.perPart = append(t.perPart, nil)
	}
	for p := range t.perPart {
		t.perPart[p] = t.perPart[p][:0]
	}
	var all []kafka.Message // unknown partition count: one unsplit batch
	for i := range envs {
		env := &envs[i]
		keyVal, err := t.Spec.Codec.ReadField(env.Value, t.Spec.KeyCol)
		if err != nil {
			return fmt.Errorf("executor: repartition key read: %w", err)
		}
		key := repartitionKey(keyVal)
		if n <= 0 {
			all = append(all, kafka.Message{Partition: -1, Key: key, Value: env.Value, Timestamp: env.Timestamp})
			continue
		}
		//samzasql:ignore hotpath-blocking -- producing to the broker is this task's output contract; the partition append lock is held for a single in-memory append
		dest := kafka.PartitionForKey(key, n)
		t.perPart[dest] = append(t.perPart[dest], kafka.Message{
			Partition: dest, Key: key, Value: env.Value, Timestamp: env.Timestamp,
		})
	}
	if n <= 0 {
		if len(all) == 0 {
			return nil
		}
		//samzasql:ignore hotpath-blocking -- producing to the broker is this task's output contract; the partition append lock is held for a single in-memory append
		return bc.SendBatch(t.Spec.TargetTopic, all)
	}
	for p := int32(0); p < n; p++ {
		if len(t.perPart[p]) == 0 {
			continue
		}
		//samzasql:ignore hotpath-blocking -- producing to the broker is this task's output contract; the partition append lock is held for a single in-memory append
		if err := bc.SendBatch(t.Spec.TargetTopic, t.perPart[p]); err != nil {
			return err
		}
	}
	return nil
}

// repartitionJobs tracks re-keying stages already running, so concurrent
// queries joining on the same key share one intermediate stream instead of
// duplicating it (§2's sharing-through-intermediate-streams property).
type repartitionJobs struct {
	mu      sync.Mutex
	started map[string]*samza.RunningJob
}

// ensure starts the stage for spec if no equivalent stage runs yet,
// returning the job (nil if an existing stage already feeds the topic).
func (r *repartitionJobs) ensure(ctx context.Context, e *Engine, spec *physical.RepartitionSpec) (*samza.RunningJob, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.started == nil {
		r.started = map[string]*samza.RunningJob{}
	}
	if _, ok := r.started[spec.TargetTopic]; ok {
		return nil, nil
	}
	srcParts, err := e.Broker.Partitions(spec.SourceTopic)
	if err != nil {
		return nil, err
	}
	if err := e.Broker.EnsureTopic(spec.TargetTopic, kafka.TopicConfig{Partitions: srcParts}); err != nil {
		return nil, err
	}
	job := &samza.JobSpec{
		Name:            "repartition-" + spec.TargetTopic,
		Inputs:          []samza.StreamSpec{{Topic: spec.SourceTopic}},
		Containers:      e.Containers,
		TaskParallelism: e.TaskParallelism,
		BatchSize:       e.BatchSize,
		CommitEvery:     1000,
		MaxRestarts:     2,
		Config:          map[string]string{},
		TaskFactory: func() samza.StreamTask {
			return &RepartitionTask{Spec: spec, Partitions: srcParts}
		},
	}
	rj, err := e.Runner.Submit(ctx, job)
	if err != nil {
		return nil, err
	}
	r.started[spec.TargetTopic] = rj
	return rj, nil
}

// Job is a running SamzaSQL query: the main Samza job plus any upstream
// repartition stages it depends on.
type Job struct {
	// Main is the query's own Samza job.
	Main *samza.RunningJob
	// Repartitions are the re-keying stages this submission started (shared
	// stages started by earlier queries are not listed and not stopped).
	Repartitions []*samza.RunningJob
}

// Stop stops the main job, then this submission's repartition stages.
func (j *Job) Stop() []yarn.ContainerStatus {
	statuses := j.Main.Stop()
	for _, r := range j.Repartitions {
		statuses = append(statuses, r.Stop()...)
	}
	return statuses
}

// Wait blocks until the main job's containers exit.
func (j *Job) Wait() []yarn.ContainerStatus { return j.Main.Wait() }

// MetricsSnapshot reports the main job's merged metrics.
func (j *Job) MetricsSnapshot() metrics.Snapshot { return j.Main.MetricsSnapshot() }

// TaskHealth reports the main job's per-task liveness.
func (j *Job) TaskHealth() map[string]string { return j.Main.TaskHealth() }

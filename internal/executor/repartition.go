package executor

import (
	"context"
	"fmt"
	"sync"

	"samzasql/internal/kafka"
	"samzasql/internal/metrics"
	"samzasql/internal/samza"
	"samzasql/internal/sql/physical"
	"samzasql/internal/yarn"
)

// RepartitionTask is the Samza task of a re-keying stage (§7 future work
// 1): it reads the join-key column straight from each message's wire bytes
// (never materializing the tuple) and forwards the message unchanged to the
// intermediate topic, keyed so the broker's partitioner co-locates join
// keys. Ordering is preserved per source partition only — the caveat the
// paper flags for order-sensitive downstream queries.
type RepartitionTask struct {
	Spec *physical.RepartitionSpec
}

// Init implements samza.StreamTask.
func (t *RepartitionTask) Init(*samza.TaskContext) error { return nil }

// Process implements samza.StreamTask.
func (t *RepartitionTask) Process(env samza.IncomingMessageEnvelope, c samza.MessageCollector, _ samza.Coordinator) error {
	keyVal, err := t.Spec.Codec.ReadField(env.Value, t.Spec.KeyCol)
	if err != nil {
		return fmt.Errorf("executor: repartition key read: %w", err)
	}
	return c.Send(samza.OutgoingMessageEnvelope{
		Stream:    t.Spec.TargetTopic,
		Partition: -1, // broker partitions by the new key
		Key:       []byte(fmt.Sprintf("%v", keyVal)),
		Value:     env.Value,
		Timestamp: env.Timestamp,
	})
}

// repartitionJobs tracks re-keying stages already running, so concurrent
// queries joining on the same key share one intermediate stream instead of
// duplicating it (§2's sharing-through-intermediate-streams property).
type repartitionJobs struct {
	mu      sync.Mutex
	started map[string]*samza.RunningJob
}

// ensure starts the stage for spec if no equivalent stage runs yet,
// returning the job (nil if an existing stage already feeds the topic).
func (r *repartitionJobs) ensure(ctx context.Context, e *Engine, spec *physical.RepartitionSpec) (*samza.RunningJob, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.started == nil {
		r.started = map[string]*samza.RunningJob{}
	}
	if _, ok := r.started[spec.TargetTopic]; ok {
		return nil, nil
	}
	srcParts, err := e.Broker.Partitions(spec.SourceTopic)
	if err != nil {
		return nil, err
	}
	if err := e.Broker.EnsureTopic(spec.TargetTopic, kafka.TopicConfig{Partitions: srcParts}); err != nil {
		return nil, err
	}
	job := &samza.JobSpec{
		Name:            "repartition-" + spec.TargetTopic,
		Inputs:          []samza.StreamSpec{{Topic: spec.SourceTopic}},
		Containers:      e.Containers,
		TaskParallelism: e.TaskParallelism,
		CommitEvery:     1000,
		MaxRestarts:     2,
		Config:          map[string]string{},
		TaskFactory: func() samza.StreamTask {
			return &RepartitionTask{Spec: spec}
		},
	}
	rj, err := e.Runner.Submit(ctx, job)
	if err != nil {
		return nil, err
	}
	r.started[spec.TargetTopic] = rj
	return rj, nil
}

// Job is a running SamzaSQL query: the main Samza job plus any upstream
// repartition stages it depends on.
type Job struct {
	// Main is the query's own Samza job.
	Main *samza.RunningJob
	// Repartitions are the re-keying stages this submission started (shared
	// stages started by earlier queries are not listed and not stopped).
	Repartitions []*samza.RunningJob
}

// Stop stops the main job, then this submission's repartition stages.
func (j *Job) Stop() []yarn.ContainerStatus {
	statuses := j.Main.Stop()
	for _, r := range j.Repartitions {
		statuses = append(statuses, r.Stop()...)
	}
	return statuses
}

// Wait blocks until the main job's containers exit.
func (j *Job) Wait() []yarn.ContainerStatus { return j.Main.Wait() }

// MetricsSnapshot reports the main job's merged metrics.
func (j *Job) MetricsSnapshot() metrics.Snapshot { return j.Main.MetricsSnapshot() }

// TaskHealth reports the main job's per-task liveness.
func (j *Job) TaskHealth() map[string]string { return j.Main.TaskHealth() }

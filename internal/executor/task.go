package executor

import (
	"fmt"

	"samzasql/internal/operators"
	"samzasql/internal/samza"
	"samzasql/internal/sql/catalog"
	"samzasql/internal/sql/opt"
	"samzasql/internal/sql/parser"
	"samzasql/internal/sql/physical"
	"samzasql/internal/sql/plan"
	"samzasql/internal/sql/validate"
	"samzasql/internal/zk"
)

// Task is the SamzaSQL stream task (§2, §4.2): a Samza StreamTask whose
// Init performs the second planning step — it loads the query text from
// Zookeeper, re-plans it, generates the operator router — and whose Process
// routes each message through the generated operators.
type Task struct {
	catalog  *catalog.Catalog
	zk       *zk.Store
	optimize bool

	program *physical.Program
	ctx     *samza.TaskContext
}

// NewTask builds an uninitialized SamzaSQL task.
func NewTask(cat *catalog.Catalog, zkStore *zk.Store, optimize bool) *Task {
	return &Task{catalog: cat, zk: zkStore, optimize: optimize}
}

// Init implements samza.StreamTask: task-side query planning.
func (t *Task) Init(ctx *samza.TaskContext) error {
	t.ctx = ctx
	path, ok := ctx.Config["samzasql.zk.query.path"]
	if !ok {
		return fmt.Errorf("executor: task config missing samzasql.zk.query.path")
	}
	queryText, _, err := t.zk.Get(path)
	if err != nil {
		return fmt.Errorf("executor: loading query from zookeeper: %w", err)
	}
	stmt, err := parser.Parse(string(queryText))
	if err != nil {
		return err
	}
	res, err := validate.New(t.catalog).Validate(stmt)
	if err != nil {
		return err
	}
	logical, err := plan.Build(res)
	if err != nil {
		return err
	}
	if t.optimize {
		logical = opt.Optimize(logical)
	}
	prog, err := physical.CompileWithOptions(logical, ctx.Config["samzasql.output.topic"],
		physical.Options{FastPath: ctx.Config["samzasql.fastpath"] == "true"})
	if err != nil {
		return err
	}
	t.program = prog
	return prog.Router.Open(&operators.OpContext{
		Store:     ctx.Store,
		Partition: ctx.Partition,
		Metrics:   ctx.Metrics,
	})
}

// Process implements samza.StreamTask: decode, route, emit.
func (t *Task) Process(env samza.IncomingMessageEnvelope, collector samza.MessageCollector, _ samza.Coordinator) error {
	t.program.SetSender(func(stream string, partition int32, key, value []byte, ts int64) error {
		return collector.Send(samza.OutgoingMessageEnvelope{
			Stream:    stream,
			Partition: partition,
			Key:       key,
			Value:     value,
			Timestamp: ts,
		})
	})
	return t.program.RouteMessage(env.Stream, env.Value, env.Key, env.Timestamp, env.Partition, env.Offset)
}

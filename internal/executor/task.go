package executor

import (
	"fmt"
	"time"

	"samzasql/internal/operators"
	"samzasql/internal/samza"
	"samzasql/internal/sql/catalog"
	"samzasql/internal/sql/opt"
	"samzasql/internal/sql/parser"
	"samzasql/internal/sql/physical"
	"samzasql/internal/sql/plan"
	"samzasql/internal/sql/validate"
	"samzasql/internal/trace"
	"samzasql/internal/zk"
)

// Task is the SamzaSQL stream task (§2, §4.2): a Samza StreamTask whose
// Init performs the second planning step — it loads the query text from
// Zookeeper, re-plans it, generates the operator router — and whose Process
// routes each message through the generated operators.
type Task struct {
	catalog  *catalog.Catalog
	zk       *zk.Store
	optimize bool

	program *physical.Program
	ctx     *samza.TaskContext
	// bound is the collector the program's sender currently targets. The
	// framework passes the same collector to every Process call (it is
	// bound in TaskContext before Init), so after Init the per-message path
	// never rebuilds the sender closure — and since each task owns its own
	// Program, routing stays goroutine-confined under task parallelism.
	bound samza.MessageCollector
}

// NewTask builds an uninitialized SamzaSQL task.
func NewTask(cat *catalog.Catalog, zkStore *zk.Store, optimize bool) *Task {
	return &Task{catalog: cat, zk: zkStore, optimize: optimize}
}

// Init implements samza.StreamTask: task-side query planning.
func (t *Task) Init(ctx *samza.TaskContext) error {
	t.ctx = ctx
	path, ok := ctx.Config["samzasql.zk.query.path"]
	if !ok {
		return fmt.Errorf("executor: task config missing samzasql.zk.query.path")
	}
	queryText, _, err := t.zk.Get(path)
	if err != nil {
		return fmt.Errorf("executor: loading query from zookeeper: %w", err)
	}
	stmt, err := parser.Parse(string(queryText))
	if err != nil {
		return err
	}
	res, err := validate.New(t.catalog).Validate(stmt)
	if err != nil {
		return err
	}
	logical, err := plan.Build(res)
	if err != nil {
		return err
	}
	if t.optimize {
		logical = opt.Optimize(logical)
	}
	prog, err := physical.CompileWithOptions(logical, ctx.Config["samzasql.output.topic"],
		physical.Options{FastPath: ctx.Config["samzasql.fastpath"] == "true"})
	if err != nil {
		return err
	}
	t.program = prog
	if ctx.Collector != nil {
		t.bindSender(ctx.Collector)
	}
	return prog.Router.Open(&operators.OpContext{
		Store:     ctx.Store,
		Partition: ctx.Partition,
		Metrics:   ctx.Metrics,
		Trace:     ctx.Trace,
	})
}

// bindSender points the program's output sink at collector. Called once per
// task in the common case; Process rebinds only if a caller hands it a
// different collector (direct drivers in tests do).
func (t *Task) bindSender(collector samza.MessageCollector) {
	t.bound = collector
	var act *trace.Active
	if t.ctx != nil {
		act = t.ctx.Trace
	}
	//samzasql:ignore hotpath-escape -- the sender closure is bound once per task (rebound only when a test driver swaps collectors), not per message
	t.program.SetSender(func(stream string, partition int32, key, value []byte, ts int64) error {
		env := samza.OutgoingMessageEnvelope{
			Stream:    stream,
			Partition: partition,
			Key:       key,
			Value:     value,
			Timestamp: ts,
		}
		// A message emitted mid-trace carries a child context, so the
		// downstream consumer (a repartition hop) extends the same tree.
		if act.Sampled() {
			env.Trace = act.Outgoing(time.Now().UnixNano())
		}
		return collector.Send(env)
	})
	// Collectors with a batched side unlock the block path's one-call
	// flush; plain collectors leave it unbound and blocks send per row.
	if bc, ok := collector.(samza.BatchCollector); ok {
		t.program.SetBatchSender(bc.SendBatch)
	} else {
		t.program.SetBatchSender(nil)
	}
}

// Process implements samza.StreamTask: decode, route, emit.
//
//samzasql:hotpath
func (t *Task) Process(env samza.IncomingMessageEnvelope, collector samza.MessageCollector, _ samza.Coordinator) error {
	if collector != t.bound {
		t.bindSender(collector)
	}
	return t.program.RouteMessage(env.Stream, env.Value, env.Key, env.Timestamp, env.Partition, env.Offset)
}

// ProcessBatch implements samza.BatchedStreamTask: the whole polled batch
// flows through the program's vectorized pipeline (or, for plans without
// one, through the per-tuple router message by message).
//
//samzasql:hotpath
func (t *Task) ProcessBatch(envs []samza.IncomingMessageEnvelope, collector samza.MessageCollector, _ samza.Coordinator, pollNs int64) error {
	if collector != t.bound {
		t.bindSender(collector)
	}
	var act *trace.Active
	if t.ctx != nil {
		act = t.ctx.Trace
	}
	return t.program.RouteBatch(envs, act, pollNs)
}

package executor

import (
	"context"
	"strings"
	"testing"
	"time"

	"samzasql/internal/avro"
	"samzasql/internal/kafka"
	"samzasql/internal/samza"
	"samzasql/internal/sql/catalog"
	"samzasql/internal/workload"
	"samzasql/internal/yarn"
	"samzasql/internal/zk"
)

// testEngine builds a full stack: broker, 2-node cluster, catalog with the
// paper's schema, and preloaded Orders/Products/Packets data.
func testEngine(t *testing.T, partitions int32, orders int) (*Engine, *workload.OrdersGen) {
	t.Helper()
	broker := kafka.NewBroker()
	cluster := yarn.NewCluster()
	cluster.AddNode("n1", yarn.Resource{VCores: 64, MemoryMB: 1 << 20})
	cluster.AddNode("n2", yarn.Resource{VCores: 64, MemoryMB: 1 << 20})
	cat := catalog.New()
	if err := workload.DefineCatalog(cat); err != nil {
		t.Fatal(err)
	}
	gen, err := workload.ProduceOrders(broker, "orders", partitions, orders, workload.DefaultOrdersConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := workload.ProduceProducts(broker, "products", partitions, 100); err != nil {
		t.Fatal(err)
	}
	if err := workload.ProducePackets(broker, "packets-r1", "packets-r2", partitions, 200, workload.DefaultPacketsConfig()); err != nil {
		t.Fatal(err)
	}
	e := NewEngine(cat, broker, samza.NewJobRunner(broker, cluster), zk.NewStore())
	return e, gen
}

// replayOrders regenerates the deterministic order rows.
func replayOrders(t *testing.T, count int) [][]any {
	t.Helper()
	g := workload.NewOrdersGen(workload.DefaultOrdersConfig())
	rows := make([][]any, count)
	for i := range rows {
		row, _, _, err := g.Next()
		if err != nil {
			t.Fatal(err)
		}
		rows[i] = row
	}
	return rows
}

func TestBoundedFilter(t *testing.T) {
	e, _ := testEngine(t, 4, 500)
	rows, err := e.ExecuteBounded("SELECT * FROM Orders WHERE units > 50")
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, r := range replayOrders(t, 500) {
		if r[3].(int64) > 50 {
			want++
		}
	}
	if len(rows) != want {
		t.Fatalf("filter returned %d rows, want %d", len(rows), want)
	}
	for _, r := range rows {
		if r[3].(int64) <= 50 {
			t.Fatalf("row %v fails predicate", r)
		}
	}
}

func TestBoundedProject(t *testing.T) {
	e, _ := testEngine(t, 4, 200)
	rows, err := e.ExecuteBounded("SELECT rowtime, productId, units FROM Orders")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 200 {
		t.Fatalf("%d rows, want 200", len(rows))
	}
	for _, r := range rows {
		if len(r) != 3 {
			t.Fatalf("row arity %d", len(r))
		}
	}
}

func TestBoundedExpressionProjection(t *testing.T) {
	e, _ := testEngine(t, 1, 50)
	rows, err := e.ExecuteBounded("SELECT units * 2 + 1 AS x, CASE WHEN units > 50 THEN 'big' ELSE 'small' END FROM Orders")
	if err != nil {
		t.Fatal(err)
	}
	orders := replayOrders(t, 50)
	// Single partition: broker preserves production order within it... but
	// bounded mode sorts by timestamp, which is monotone, so order holds.
	for i, r := range rows {
		units := orders[i][3].(int64)
		if r[0].(int64) != units*2+1 {
			t.Fatalf("row %d: x=%v want %d", i, r[0], units*2+1)
		}
		wantLabel := "small"
		if units > 50 {
			wantLabel = "big"
		}
		if r[1].(string) != wantLabel {
			t.Fatalf("row %d: label %v", i, r[1])
		}
	}
}

func TestBoundedGroupedAggregate(t *testing.T) {
	e, _ := testEngine(t, 4, 1000)
	rows, err := e.ExecuteBounded(`
		SELECT productId, COUNT(*), SUM(units) FROM Orders GROUP BY productId`)
	if err != nil {
		t.Fatal(err)
	}
	wantCount := map[int64]int64{}
	wantSum := map[int64]int64{}
	for _, r := range replayOrders(t, 1000) {
		pid := r[1].(int64)
		wantCount[pid]++
		wantSum[pid] += r[3].(int64)
	}
	if len(rows) != len(wantCount) {
		t.Fatalf("%d groups, want %d", len(rows), len(wantCount))
	}
	for _, r := range rows {
		pid := r[0].(int64)
		if r[1].(int64) != wantCount[pid] || r[2].(int64) != wantSum[pid] {
			t.Fatalf("group %d: got (%v,%v), want (%d,%d)", pid, r[1], r[2], wantCount[pid], wantSum[pid])
		}
	}
}

func TestBoundedTumbleWindow(t *testing.T) {
	e, _ := testEngine(t, 4, 2000)
	rows, err := e.ExecuteBounded(`
		SELECT START(rowtime), END(rowtime), COUNT(*) FROM Orders
		GROUP BY TUMBLE(rowtime, INTERVAL '5' SECOND)`)
	if err != nil {
		t.Fatal(err)
	}
	want := map[int64]int64{} // window end -> count
	const w = 5000
	for _, r := range replayOrders(t, 2000) {
		ts := r[0].(int64)
		end := (ts/w)*w + w
		if end == ts {
			end += w
		}
		// Window covers [end-w, end); boundary math must match the operator:
		// first boundary strictly greater than ts.
		want[(ts/w+1)*w]++
	}
	// Orders tick every 10ms so 2000 records span 20s => ~5 windows.
	if len(rows) != len(want) {
		t.Fatalf("%d windows, want %d (%v)", len(rows), len(want), rows)
	}
	total := int64(0)
	for _, r := range rows {
		start, end, count := r[0].(int64), r[1].(int64), r[2].(int64)
		if end-start != w {
			t.Fatalf("window [%d,%d) has wrong width", start, end)
		}
		if want[end] != count {
			t.Fatalf("window ending %d: count %d, want %d", end, count, want[end])
		}
		total += count
	}
	if total != 2000 {
		t.Fatalf("window counts sum to %d, want 2000", total)
	}
}

func TestBoundedHopWindow(t *testing.T) {
	e, _ := testEngine(t, 1, 1000)
	// Emit every 2s over the last 4s: each record lands in 2 windows.
	rows, err := e.ExecuteBounded(`
		SELECT START(rowtime), END(rowtime), COUNT(*) FROM Orders
		GROUP BY HOP(rowtime, INTERVAL '2' SECOND, INTERVAL '4' SECOND)`)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, r := range rows {
		if r[1].(int64)-r[0].(int64) != 4000 {
			t.Fatalf("window width %d", r[1].(int64)-r[0].(int64))
		}
		total += r[2].(int64)
	}
	// 1000 records × 2 windows each (modulo edge windows).
	if total < 1900 || total > 2000*2 {
		t.Fatalf("hop total %d out of expected range", total)
	}
}

func TestBoundedHavingSubquery(t *testing.T) {
	e, _ := testEngine(t, 4, 1000)
	// Listing 3's subquery form.
	rows, err := e.ExecuteBounded(`
		SELECT rowtime, productId FROM (
		  SELECT FLOOR(rowtime TO HOUR) AS rowtime, productId,
		    COUNT(*) AS c, SUM(units) AS su
		  FROM Orders GROUP BY FLOOR(rowtime TO HOUR), productId)
		WHERE c > 2 OR su > 10`)
	if err != nil {
		t.Fatal(err)
	}
	type key struct{ h, p int64 }
	cnt := map[key]int64{}
	sum := map[key]int64{}
	for _, r := range replayOrders(t, 1000) {
		k := key{(r[0].(int64) / 3600000) * 3600000, r[1].(int64)}
		cnt[k]++
		sum[k] += r[3].(int64)
	}
	want := 0
	for k := range cnt {
		if cnt[k] > 2 || sum[k] > 10 {
			want++
		}
	}
	if len(rows) != want {
		t.Fatalf("%d rows, want %d", len(rows), want)
	}
}

func TestBoundedStreamRelationJoin(t *testing.T) {
	e, _ := testEngine(t, 4, 300)
	rows, err := e.ExecuteBounded(`
		SELECT Orders.rowtime, Orders.orderId, Orders.productId, Orders.units,
		  Products.supplierId
		FROM Orders JOIN Products ON Orders.productId = Products.productId`)
	if err != nil {
		t.Fatal(err)
	}
	// Every order matches exactly one product.
	if len(rows) != 300 {
		t.Fatalf("%d joined rows, want 300", len(rows))
	}
	for _, r := range rows {
		pid := r[2].(int64)
		if r[4].(int64) != pid%10 {
			t.Fatalf("order with product %d joined to supplier %v", pid, r[4])
		}
	}
}

func TestBoundedSlidingWindow(t *testing.T) {
	e, _ := testEngine(t, 1, 400)
	rows, err := e.ExecuteBounded(`
		SELECT rowtime, productId, units,
		  SUM(units) OVER (PARTITION BY productId ORDER BY rowtime
		    RANGE INTERVAL '1' SECOND PRECEDING) unitsLastSecond
		FROM Orders`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 400 {
		t.Fatalf("%d rows, want 400", len(rows))
	}
	// Reference computation.
	orders := replayOrders(t, 400)
	type entry struct{ ts, units int64 }
	hist := map[int64][]entry{}
	wantAt := make([]int64, len(orders))
	for i, r := range orders {
		pid := r[1].(int64)
		ts := r[0].(int64)
		u := r[3].(int64)
		hist[pid] = append(hist[pid], entry{ts, u})
		var sum int64
		for _, h := range hist[pid] {
			if h.ts >= ts-1000 {
				sum += h.units
			}
		}
		wantAt[i] = sum
	}
	for i, r := range rows {
		if r[3].(int64) != wantAt[i] {
			t.Fatalf("row %d: window sum %v, want %d", i, r[3], wantAt[i])
		}
	}
}

func TestBoundedStreamStreamJoin(t *testing.T) {
	e, _ := testEngine(t, 4, 10)
	rows, err := e.ExecuteBounded(`
		SELECT GREATEST(PacketsR1.rowtime, PacketsR2.rowtime) AS rowtime,
		  PacketsR1.sourcetime, PacketsR1.packetId,
		  PacketsR2.rowtime - PacketsR1.rowtime AS timeToTravel
		FROM PacketsR1 JOIN PacketsR2 ON
		  PacketsR1.rowtime BETWEEN PacketsR2.rowtime - INTERVAL '2' SECOND
		    AND PacketsR2.rowtime + INTERVAL '2' SECOND
		  AND PacketsR1.packetId = PacketsR2.packetId`)
	if err != nil {
		t.Fatal(err)
	}
	// Travel times are uniform in (0, 1500] < 2s, so every packet joins.
	if len(rows) != 200 {
		t.Fatalf("%d joined packets, want 200", len(rows))
	}
	for _, r := range rows {
		travel := r[3].(int64)
		if travel <= 0 || travel > 2000 {
			t.Fatalf("timeToTravel %d out of window", travel)
		}
	}
}

func TestBoundedDistinct(t *testing.T) {
	e, _ := testEngine(t, 1, 500)
	rows, err := e.ExecuteBounded("SELECT DISTINCT productId FROM Orders")
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int64]bool{}
	for _, r := range rows {
		pid := r[0].(int64)
		if seen[pid] {
			t.Fatalf("duplicate product %d", pid)
		}
		seen[pid] = true
	}
}

func TestExplain(t *testing.T) {
	e, _ := testEngine(t, 1, 1)
	out, err := e.Explain("SELECT STREAM rowtime, productId, units FROM Orders WHERE units > 25")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Project", "Filter", "Scan(Orders, stream)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("explain output missing %q:\n%s", want, out)
		}
	}
}

func TestCreateViewThenQuery(t *testing.T) {
	e, _ := testEngine(t, 4, 600)
	_, err := e.CreateView(`
		CREATE VIEW ProductTotals (productId, c, su) AS
		SELECT productId, COUNT(*), SUM(units) FROM Orders GROUP BY productId`)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := e.ExecuteBounded("SELECT productId, su FROM ProductTotals WHERE c > 3")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("view query returned nothing")
	}
}

// drainNew reads all messages currently in a topic.
func drainNew(t *testing.T, b *kafka.Broker, topic string) []kafka.Message {
	t.Helper()
	n, err := b.Partitions(topic)
	if err != nil {
		t.Fatal(err)
	}
	var out []kafka.Message
	for p := int32(0); p < n; p++ {
		tp := kafka.TopicPartition{Topic: topic, Partition: p}
		hwm, _ := b.HighWatermark(tp)
		off, _ := b.StartOffset(tp)
		for off < hwm {
			msgs, wait, err := b.Fetch(tp, off, 1024)
			if err != nil {
				t.Fatal(err)
			}
			if wait != nil {
				break
			}
			out = append(out, msgs...)
			off = msgs[len(msgs)-1].Offset + 1
		}
	}
	return out
}

func waitForCount(t *testing.T, timeout time.Duration, fn func() int, want int, what string) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if fn() >= want {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s (have %d, want %d)", what, fn(), want)
}

func TestStreamingFilterJob(t *testing.T) {
	e, _ := testEngine(t, 4, 1000)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	p, rj, err := e.ExecuteStream(ctx, "SELECT STREAM * FROM Orders WHERE units > 50")
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, r := range replayOrders(t, 1000) {
		if r[3].(int64) > 50 {
			want++
		}
	}
	waitForCount(t, 10*time.Second, func() int {
		return len(drainNew(t, e.Broker, p.OutputTopic))
	}, want, "filtered output")
	rj.Stop()

	out := drainNew(t, e.Broker, p.OutputTopic)
	if len(out) != want {
		t.Fatalf("%d output messages, want %d", len(out), want)
	}
	// Output must decode with the derived schema and satisfy the predicate.
	codec := p.Program.OutputCodec
	for _, m := range out[:10] {
		row, err := codec.DecodeRow(m.Value, nil)
		if err != nil {
			t.Fatal(err)
		}
		if row[3].(int64) <= 50 {
			t.Fatalf("output row %v fails predicate", row)
		}
	}
}

func TestStreamingJoinJob(t *testing.T) {
	e, _ := testEngine(t, 4, 500)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	p, rj, err := e.ExecuteStream(ctx, `
		SELECT STREAM Orders.rowtime, Orders.orderId, Orders.productId,
		  Orders.units, Products.supplierId
		FROM Orders JOIN Products ON Orders.productId = Products.productId`)
	if err != nil {
		t.Fatal(err)
	}
	waitForCount(t, 10*time.Second, func() int {
		return len(drainNew(t, e.Broker, p.OutputTopic))
	}, 500, "joined output")
	rj.Stop()

	out := drainNew(t, e.Broker, p.OutputTopic)
	if len(out) != 500 {
		t.Fatalf("%d joined messages, want 500", len(out))
	}
	codec := p.Program.OutputCodec
	for _, m := range out {
		row, err := codec.DecodeRow(m.Value, nil)
		if err != nil {
			t.Fatal(err)
		}
		if row[4].(int64) != row[2].(int64)%10 {
			t.Fatalf("join mismatch: %v", row)
		}
	}
}

func TestStreamingLateProducerJob(t *testing.T) {
	// Messages produced after the job starts must flow through.
	e, _ := testEngine(t, 2, 0)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	p, rj, err := e.ExecuteStream(ctx, "SELECT STREAM rowtime, productId, units FROM Orders")
	if err != nil {
		t.Fatal(err)
	}
	g := workload.NewOrdersGen(workload.DefaultOrdersConfig())
	for i := 0; i < 100; i++ {
		row, key, value, err := g.Next()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e.Broker.Produce("orders", kafka.Message{
			Partition: -1, Key: key, Value: value, Timestamp: row[0].(int64),
		}); err != nil {
			t.Fatal(err)
		}
	}
	waitForCount(t, 10*time.Second, func() int {
		return len(drainNew(t, e.Broker, p.OutputTopic))
	}, 100, "projected output")
	rj.Stop()
}

func TestSubmitNonStreamingRejected(t *testing.T) {
	e, _ := testEngine(t, 1, 1)
	p, err := e.Prepare("SELECT * FROM Orders")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Submit(context.Background(), p); err == nil {
		t.Fatal("bounded query submitted as streaming job")
	}
}

func TestInsertIntoStreamJob(t *testing.T) {
	e, _ := testEngine(t, 4, 300)
	if err := e.Broker.EnsureTopic("big-orders", kafka.TopicConfig{Partitions: 4}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, rj, err := e.ExecuteStream(ctx, "INSERT INTO \"big-orders\" SELECT STREAM * FROM Orders WHERE units > 90")
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, r := range replayOrders(t, 300) {
		if r[3].(int64) > 90 {
			want++
		}
	}
	waitForCount(t, 10*time.Second, func() int {
		return len(drainNew(t, e.Broker, "big-orders"))
	}, want, "insert target")
	rj.Stop()
}

var _ = avro.Long // keep avro import for schema assertions above

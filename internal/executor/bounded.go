package executor

import (
	"fmt"
	"sort"

	"samzasql/internal/kafka"
	"samzasql/internal/kv"
	"samzasql/internal/metrics"
	"samzasql/internal/operators"
)

// ExecuteBounded runs a non-streaming query over the retained history of
// its input topics (§3.3: without STREAM, "SamzaSQL will consider the
// stream as a table consisting of the history of the stream up to the point
// of execution"). It evaluates the program locally: bootstrap inputs first,
// then the remaining messages merged in timestamp order, and returns the
// result rows.
func (e *Engine) ExecuteBounded(query string) ([][]any, error) {
	p, err := e.Prepare(query)
	if err != nil {
		return nil, err
	}
	return e.RunBounded(p)
}

// RunBounded executes a prepared statement in table mode.
func (e *Engine) RunBounded(p *Prepared) ([][]any, error) {
	prog := p.Program
	stores := map[string]kv.Store{}
	opCtx := &operators.OpContext{
		Store: func(name string) kv.Store {
			s, ok := stores[name]
			if !ok {
				s = kv.NewStore()
				stores[name] = s
			}
			return s
		},
		Partition: 0,
		Metrics:   metrics.NewRegistry(),
	}
	if err := prog.Router.Open(opCtx); err != nil {
		return nil, err
	}

	// Capture output rows instead of producing to a topic. Grouped
	// unwindowed queries emit partial rows per input tuple under the
	// early-results policy (§3.3); table mode keeps only the final row per
	// group (the partials update monotonically, so last wins).
	var rows [][]any
	grouped := prog.Aggregate() != nil
	lastPerKey := map[string]int{}
	prog.SetSender(func(stream string, partition int32, key, value []byte, ts int64) error {
		row, err := prog.OutputCodec.DecodeRow(value, nil)
		if err != nil {
			return err
		}
		if grouped && len(key) > 0 {
			if idx, ok := lastPerKey[string(key)]; ok {
				rows[idx] = row
				return nil
			}
			lastPerKey[string(key)] = len(rows)
		}
		rows = append(rows, row)
		return nil
	})

	// Materialize any repartition stages inline: bounded mode has no
	// long-running upstream jobs, so re-key the retained history directly
	// into the intermediate topics the scans read.
	for _, spec := range prog.Repartitions {
		srcParts, err := e.Broker.Partitions(spec.SourceTopic)
		if err != nil {
			return nil, err
		}
		if err := e.Broker.EnsureTopic(spec.TargetTopic, kafka.TopicConfig{Partitions: srcParts}); err != nil {
			return nil, err
		}
		msgs, err := e.drainTopic(spec.SourceTopic)
		if err != nil {
			return nil, err
		}
		// Skip what an earlier bounded run already re-keyed.
		already := int64(0)
		for part := int32(0); part < srcParts; part++ {
			hwm, err := e.Broker.HighWatermark(kafka.TopicPartition{Topic: spec.TargetTopic, Partition: part})
			if err != nil {
				return nil, err
			}
			already += hwm
		}
		for i, m := range msgs {
			if int64(i) < already {
				continue
			}
			keyVal, err := spec.Codec.ReadField(m.Value, spec.KeyCol)
			if err != nil {
				return nil, err
			}
			if _, err := e.Broker.Produce(spec.TargetTopic, kafka.Message{
				Partition: -1,
				Key:       []byte(fmt.Sprintf("%v", keyVal)),
				Value:     m.Value,
				Timestamp: m.Timestamp,
			}); err != nil {
				return nil, err
			}
		}
	}

	// Feed bootstrap inputs fully first (relation changelogs), then the
	// stream inputs merged by message timestamp so windowed operators see
	// a coherent watermark across partitions.
	var streamMsgs []kafka.Message
	for _, in := range prog.Inputs {
		msgs, err := e.drainTopic(in.Topic)
		if err != nil {
			return nil, err
		}
		if in.Bootstrap {
			for _, m := range msgs {
				if err := prog.RouteMessage(m.Topic, m.Value, m.Key, m.Timestamp, m.Partition, m.Offset); err != nil {
					return nil, err
				}
			}
			continue
		}
		streamMsgs = append(streamMsgs, msgs...)
	}
	sort.SliceStable(streamMsgs, func(i, j int) bool {
		return streamMsgs[i].Timestamp < streamMsgs[j].Timestamp
	})
	for _, m := range streamMsgs {
		if err := prog.RouteMessage(m.Topic, m.Value, m.Key, m.Timestamp, m.Partition, m.Offset); err != nil {
			return nil, err
		}
	}
	// Close the windows still open at end of history.
	if err := prog.FlushAggregate(); err != nil {
		return nil, err
	}
	if p.Bound.Root.Distinct {
		rows = dedupeRows(rows)
	}
	return rows, nil
}

func dedupeRows(rows [][]any) [][]any {
	seen := map[string]bool{}
	var out [][]any
	for _, r := range rows {
		k := fmt.Sprintf("%v", r)
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, r)
	}
	return out
}

// drainTopic reads every retained message of a topic.
func (e *Engine) drainTopic(topic string) ([]kafka.Message, error) {
	n, err := e.Broker.Partitions(topic)
	if err != nil {
		return nil, err
	}
	var out []kafka.Message
	for part := int32(0); part < n; part++ {
		tp := kafka.TopicPartition{Topic: topic, Partition: part}
		start, err := e.Broker.StartOffset(tp)
		if err != nil {
			return nil, err
		}
		hwm, err := e.Broker.HighWatermark(tp)
		if err != nil {
			return nil, err
		}
		off := start
		for off < hwm {
			msgs, wait, err := e.Broker.Fetch(tp, off, 1024)
			if err != nil {
				return nil, err
			}
			if wait != nil {
				break
			}
			out = append(out, msgs...)
			off = msgs[len(msgs)-1].Offset + 1
		}
	}
	return out, nil
}

package executor

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"time"

	"samzasql/internal/kafka"
	"samzasql/internal/metrics"
	"samzasql/internal/samza"
	"samzasql/internal/sql/catalog"
	"samzasql/internal/workload"
	"samzasql/internal/zk"
)

// equivCase is one query shape the vectorized batch path must execute with
// results identical to the per-message scalar path. wantRows computes the
// expected output count from the deterministic Orders replay so every run
// can wait for completion instead of guessing at idle timeouts.
type equivCase struct {
	name     string
	query    string
	wantRows func(orders [][]any) int
}

var equivCases = []equivCase{
	{
		name:  "filter",
		query: "SELECT STREAM * FROM Orders WHERE units > 50",
		wantRows: func(orders [][]any) int {
			n := 0
			for _, r := range orders {
				if r[3].(int64) > 50 {
					n++
				}
			}
			return n
		},
	},
	{
		name:     "project",
		query:    "SELECT STREAM rowtime, productId, units FROM Orders",
		wantRows: func(orders [][]any) int { return len(orders) },
	},
	{
		name:  "computed-scalar",
		query: "SELECT STREAM productId, units * 2 + 1 FROM Orders WHERE units > 10",
		wantRows: func(orders [][]any) int {
			n := 0
			for _, r := range orders {
				if r[3].(int64) > 10 {
					n++
				}
			}
			return n
		},
	},
	{
		name: "window",
		query: `SELECT STREAM rowtime, orderId, productId, units,
		  SUM(units) OVER (PARTITION BY productId ORDER BY rowtime
		    RANGE INTERVAL '10' SECOND PRECEDING) s
		FROM Orders`,
		wantRows: func(orders [][]any) int { return len(orders) },
	},
	{
		name: "join",
		query: `SELECT STREAM Orders.rowtime, Orders.orderId, Orders.productId,
		  Orders.units, Products.supplierId
		FROM Orders JOIN Products ON Orders.productId = Products.productId`,
		// Every order matches exactly one product.
		wantRows: func(orders [][]any) int { return len(orders) },
	},
	{
		name:  "aggregate-grouped",
		query: "SELECT STREAM productId, COUNT(*), SUM(units) FROM Orders GROUP BY productId",
		// Early-results policy: every input tuple emits its group's row.
		wantRows: func(orders [][]any) int { return len(orders) },
	},
	{
		name: "aggregate-tumble",
		query: `SELECT STREAM START(rowtime), END(rowtime), COUNT(*), SUM(units)
		FROM Orders GROUP BY TUMBLE(rowtime, INTERVAL '1' SECOND)`,
		// Simulate the operator's watermark protocol over the replay: each
		// tuple opens its window (end = next 1s boundary after rowtime) when
		// that end is still ahead of the watermark, then advancing the
		// watermark to the tuple's rowtime closes every window it passed.
		// Windows still open at end of input never emit in streaming mode.
		wantRows: func(orders [][]any) int {
			const w = int64(1000)
			var wm int64
			open := map[int64]bool{}
			n := 0
			for _, r := range orders {
				ts := r[0].(int64)
				if e := (ts/w + 1) * w; e > wm {
					open[e] = true
				}
				if ts > wm {
					for end := range open {
						if end <= ts {
							n++
							delete(open, end)
						}
					}
					wm = ts
				}
			}
			return n
		},
	},
}

// runWithBatchSize executes the query as a streaming job with the given
// delivery granularity and returns the complete output topic contents once
// the expected row count has landed (plus a short grace window so trailing
// duplicates would be caught), together with the folded changelog state.
func runWithBatchSize(t *testing.T, query string, partitions int32, orders, batchSize, want int) ([]kafka.Message, []string) {
	t.Helper()
	e, _ := testEngine(t, partitions, orders)
	return runOnEngine(t, e, query, batchSize, want)
}

// runOnEngine is runWithBatchSize over a pre-built engine (scenarios with
// their own catalog and data, e.g. the repartitioned Clicks join). The job
// is stopped before the changelog digest is taken, so buffered state writes
// have flushed.
func runOnEngine(t *testing.T, e *Engine, query string, batchSize, want int) ([]kafka.Message, []string) {
	t.Helper()
	e.BatchSize = batchSize
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	p, rj, err := e.ExecuteStream(ctx, query)
	if err != nil {
		t.Fatalf("batch=%d: %v", batchSize, err)
	}
	defer rj.Stop()
	waitForCount(t, 15*time.Second, func() int {
		return len(drainNew(t, e.Broker, p.OutputTopic))
	}, want, fmt.Sprintf("batch=%d output", batchSize))
	time.Sleep(50 * time.Millisecond)
	out := drainNew(t, e.Broker, p.OutputTopic)
	if len(out) != want {
		t.Fatalf("batch=%d: %d output rows, want %d (duplicates or stragglers)", batchSize, len(out), want)
	}
	rj.Stop()
	return out, changelogDigest(t, e.Broker)
}

// changelogDigest folds every changelog topic last-write-wins per (topic,
// partition, key) — an empty value is a tombstone — so two runs that leave
// identical durable state produce identical digests no matter how many
// intermediate versions each wrote. The scalar path writes state once per
// tuple and the block path once per key per block; equality here proves the
// batched write-back converges to the same store contents a replay would
// restore.
func changelogDigest(t *testing.T, b *kafka.Broker) []string {
	t.Helper()
	state := map[string]string{}
	for _, topic := range b.Topics() {
		if !strings.Contains(topic, "-changelog") {
			continue
		}
		nParts, err := b.Partitions(topic)
		if err != nil {
			t.Fatal(err)
		}
		for part := int32(0); part < nParts; part++ {
			tp := kafka.TopicPartition{Topic: topic, Partition: part}
			hwm, err := b.HighWatermark(tp)
			if err != nil {
				t.Fatal(err)
			}
			off, err := b.StartOffset(tp)
			if err != nil {
				t.Fatal(err)
			}
			for off < hwm {
				msgs, wait, err := b.Fetch(tp, off, 512)
				if err != nil {
					t.Fatal(err)
				}
				if wait != nil {
					break
				}
				for _, m := range msgs {
					id := fmt.Sprintf("%s p%d k=%x", topic, part, m.Key)
					if len(m.Value) == 0 {
						delete(state, id)
					} else {
						state[id] = fmt.Sprintf("%s v=%x", id, m.Value)
					}
				}
				off = msgs[len(msgs)-1].Offset + 1
			}
		}
	}
	out := make([]string, 0, len(state))
	for _, v := range state {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// digest renders each output message — partition, offset, key, value bytes
// and timestamp — so runs can be compared exactly: equal sorted digests mean
// identical per-partition sequences, offsets included.
func digest(msgs []kafka.Message) []string {
	out := make([]string, 0, len(msgs))
	for _, m := range msgs {
		out = append(out, fmt.Sprintf("p%d@%d k=%x ts=%d v=%x", m.Partition, m.Offset, m.Key, m.Timestamp, m.Value))
	}
	sort.Strings(out)
	return out
}

func diffDigests(t *testing.T, label string, ref, got []string) {
	t.Helper()
	if len(ref) != len(got) {
		t.Fatalf("%s: %d rows vs scalar's %d", label, len(got), len(ref))
	}
	for i := range ref {
		if ref[i] != got[i] {
			t.Fatalf("%s: output diverges from scalar path at sorted row %d:\n  scalar: %s\n  batch:  %s", label, i, ref[i], got[i])
		}
	}
}

// TestBatchScalarEquivalence replays every query shape through the scalar
// reference path (BatchSize = -1) and a spread of block sizes — 1, a prime
// that leaves a partial final batch, the default 256, and two seeded random
// sizes — asserting byte-identical outputs, offsets and timestamps. With a
// single input partition the task processes a deterministic sequence, so
// the comparison is exact, not just multiset equality.
func TestBatchScalarEquivalence(t *testing.T) {
	const orders = 457 // not divisible by any tested batch size > 1
	rng := rand.New(rand.NewSource(0x5eed))
	sizes := []int{1, 7, 256, 2 + rng.Intn(96), 2 + rng.Intn(96)}
	replayed := replayOrders(t, orders)
	for _, c := range equivCases {
		t.Run(c.name, func(t *testing.T) {
			want := c.wantRows(replayed)
			refOut, refState := runWithBatchSize(t, c.query, 1, orders, samza.ScalarBatch, want)
			ref := digest(refOut)
			for _, bs := range sizes {
				gotOut, gotState := runWithBatchSize(t, c.query, 1, orders, bs, want)
				diffDigests(t, fmt.Sprintf("%s batch=%d", c.name, bs), ref, digest(gotOut))
				diffDigests(t, fmt.Sprintf("%s batch=%d state", c.name, bs), refState, gotState)
			}
		})
	}
}

// TestBatchScalarEquivalenceRepartition covers the re-keying stage's batched
// path plus the stream-relation join fed by the intermediate topic: the
// Clicks scenario is published keyed by userId but joins on productId, so
// every run routes through RepartitionTask. With a single partition the
// whole dataflow is a deterministic sequence, so outputs, offsets and
// changelog state must match the scalar reference byte for byte.
func TestBatchScalarEquivalenceRepartition(t *testing.T) {
	const clicks = 300
	run := func(batchSize int) ([]kafka.Message, []string) {
		e := clicksEngine(t, 1)
		produceClicks(t, e, clicks)
		return runOnEngine(t, e, clicksJoin, batchSize, clicks)
	}
	refOut, refState := run(samza.ScalarBatch)
	ref := digest(refOut)
	for _, bs := range []int{1, 7, 256} {
		gotOut, gotState := run(bs)
		diffDigests(t, fmt.Sprintf("repartition batch=%d", bs), ref, digest(gotOut))
		diffDigests(t, fmt.Sprintf("repartition batch=%d state", bs), refState, gotState)
	}
}

// TestBatchScalarEquivalenceMultiPartition re-checks the filter and
// computed-projection kernels with several input partitions. Task
// interleaving makes cross-partition output order nondeterministic, so the
// comparison drops offsets and matches the (key, value) multiset instead.
func TestBatchScalarEquivalenceMultiPartition(t *testing.T) {
	const orders = 311
	replayed := replayOrders(t, orders)
	for _, c := range equivCases[:3] {
		t.Run(c.name, func(t *testing.T) {
			want := c.wantRows(replayed)
			values := func(msgs []kafka.Message) []string {
				out := make([]string, 0, len(msgs))
				for _, m := range msgs {
					out = append(out, fmt.Sprintf("k=%x v=%x", m.Key, m.Value))
				}
				sort.Strings(out)
				return out
			}
			refOut, _ := runWithBatchSize(t, c.query, 3, orders, samza.ScalarBatch, want)
			ref := values(refOut)
			for _, bs := range []int{1, 13, 256} {
				gotOut, _ := runWithBatchSize(t, c.query, 3, orders, bs, want)
				diffDigests(t, fmt.Sprintf("%s batch=%d", c.name, bs), ref, values(gotOut))
			}
		})
	}
}

// nullBatchCollector extends the alloc-benchmark collector with the batched
// sink so the block path binds SendBatch instead of per-row Send.
type nullBatchCollector struct {
	nullCollector
	batches int
	rows    int
}

func (c *nullBatchCollector) SendBatch(stream string, msgs []kafka.Message) error {
	c.batches++
	c.rows += len(msgs)
	return nil
}

// setupBatchFilterTask mirrors setupFilterTask but binds a BatchCollector
// and pre-encodes a whole block of Orders envelopes.
func setupBatchFilterTask(tb testing.TB, n int) (*Task, *nullBatchCollector, []samza.IncomingMessageEnvelope) {
	tb.Helper()
	cat := catalog.New()
	if err := workload.DefineCatalog(cat); err != nil {
		tb.Fatal(err)
	}
	zkStore := zk.NewStore()
	const queryPath = "/samzasql/queries/bench-filter-block"
	if err := zkStore.CreateRecursive(queryPath, []byte("SELECT STREAM * FROM Orders WHERE units > 50")); err != nil {
		tb.Fatal(err)
	}
	coll := &nullBatchCollector{}
	ctx := &samza.TaskContext{
		Task:      samza.TaskNameFor(0),
		Partition: 0,
		Metrics:   metrics.NewRegistry(),
		Config: map[string]string{
			"samzasql.zk.query.path": queryPath,
			"samzasql.output.topic":  "bench-out",
			"samzasql.fastpath":      "true",
		},
		Collector: coll,
	}
	task := NewTask(cat, zkStore, true)
	if err := task.Init(ctx); err != nil {
		tb.Fatal(err)
	}
	gen := workload.NewOrdersGen(workload.DefaultOrdersConfig())
	envs := make([]samza.IncomingMessageEnvelope, n)
	for i := range envs {
		row, key, value, err := gen.Next()
		if err != nil {
			tb.Fatal(err)
		}
		envs[i] = samza.IncomingMessageEnvelope{
			Stream: "orders", Partition: 0, Offset: int64(i),
			Key: key, Value: value, Timestamp: row[0].(int64),
		}
	}
	return task, coll, envs
}

// TestFilterBlockZeroAllocs pins the vectorized promise: once the scratch
// buffers are warm (AllocsPerRun runs the body once before measuring), the
// identity-filter kernel processes a whole block — decode-sparse, evaluate,
// forward — without a single heap allocation, i.e. 0 allocs per message.
func TestFilterBlockZeroAllocs(t *testing.T) {
	const block = 64
	task, coll, envs := setupBatchFilterTask(t, block)
	allocs := testing.AllocsPerRun(500, func() {
		if err := task.ProcessBatch(envs, coll, nil, 0); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("block path: %.1f allocs per %d-message block, want 0", allocs, block)
	}
	if coll.batches == 0 || coll.rows == 0 {
		t.Fatalf("block path never reached the batch collector (batches=%d rows=%d)", coll.batches, coll.rows)
	}
}

// BenchmarkFilterBlockProcess measures the per-block cost of the fastpath
// filter kernel through Task.ProcessBatch, excluding broker I/O; divide by
// the block size for the per-message cost comparable to
// BenchmarkFilterMessageProcess.
func BenchmarkFilterBlockProcess(b *testing.B) {
	const block = 256
	task, coll, envs := setupBatchFilterTask(b, block)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := task.ProcessBatch(envs, coll, nil, 0); err != nil {
			b.Fatal(err)
		}
	}
}

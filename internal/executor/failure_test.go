package executor

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"samzasql/internal/kafka"
	"samzasql/internal/samza"
)

// crashingTask wraps the SamzaSQL task, injecting one failure after a fixed
// number of processed messages — simulating the task crash the paper's
// fault-tolerance design (§4.3) must absorb: replayed messages after
// restart must neither double-count window state nor re-emit output.
type crashingTask struct {
	*Task
	crashAfter int64
	processed  *atomic.Int64
	crashed    *atomic.Bool
}

func (t *crashingTask) Process(env samza.IncomingMessageEnvelope, c samza.MessageCollector, coord samza.Coordinator) error {
	if err := t.Task.Process(env, c, coord); err != nil {
		return err
	}
	if t.processed.Add(1) >= t.crashAfter && t.crashed.CompareAndSwap(false, true) {
		return errors.New("injected failure after window state update")
	}
	return nil
}

// ProcessBatch shadows the embedded Task's batched entry point: the
// container hands whole blocks to BatchedStreamTasks, so the crash must be
// injected at batch granularity too (the error positions the entire batch
// as failed, replaying every message in it — a strictly harsher replay
// than the scalar crash).
func (t *crashingTask) ProcessBatch(envs []samza.IncomingMessageEnvelope, c samza.MessageCollector, coord samza.Coordinator, pollNs int64) error {
	if err := t.Task.ProcessBatch(envs, c, coord, pollNs); err != nil {
		return err
	}
	if t.processed.Add(int64(len(envs))) >= t.crashAfter && t.crashed.CompareAndSwap(false, true) {
		return errors.New("injected failure after window state update")
	}
	return nil
}

// TestSlidingWindowExactlyOnceAcrossFailure runs the Listing 6 sliding
// window as a real Samza job, crashes the task mid-stream (after the last
// checkpoint, so messages replay), and verifies the §4.3 claim: every input
// order appears in the output exactly once, with the same window sums a
// failure-free run produces.
func TestSlidingWindowExactlyOnceAcrossFailure(t *testing.T) {
	const totalOrders = 2000
	query := `SELECT STREAM rowtime, orderId, productId, units,
		  SUM(units) OVER (PARTITION BY productId ORDER BY rowtime
		    RANGE INTERVAL '10' SECOND PRECEDING) s
		FROM Orders`

	run := func(crashAfter int64) map[int64][]any {
		e, _ := testEngine(t, 1, totalOrders)
		p, err := e.Prepare(query)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Broker.EnsureTopic(p.OutputTopic, kafka.TopicConfig{Partitions: 1}); err != nil {
			t.Fatal(err)
		}
		if err := e.ZK.CreateRecursive(zkQueryPath(p.JobName), []byte(p.Stmt.String())); err != nil {
			t.Fatal(err)
		}
		var processed atomic.Int64
		var crashed atomic.Bool
		job := &samza.JobSpec{
			Name:        p.JobName,
			Inputs:      []samza.StreamSpec{{Topic: "orders"}},
			Containers:  1,
			Stores:      p.Program.Stores,
			CommitEvery: 500,
			MaxRestarts: 2,
			Config: map[string]string{
				"samzasql.zk.query.path": zkQueryPath(p.JobName),
				"samzasql.output.topic":  p.OutputTopic,
			},
			TaskFactory: func() samza.StreamTask {
				inner := NewTask(e.Catalog, e.ZK, true)
				if crashAfter <= 0 {
					return inner
				}
				return &crashingTask{Task: inner, crashAfter: crashAfter, processed: &processed, crashed: &crashed}
			},
		}
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		rj, err := e.Runner.Submit(ctx, job)
		if err != nil {
			t.Fatal(err)
		}
		defer rj.Stop()

		byOrder := map[int64][]any{}
		deadline := time.Now().Add(15 * time.Second)
		for len(byOrder) < totalOrders && time.Now().Before(deadline) {
			for _, m := range drainNew(t, e.Broker, p.OutputTopic) {
				row, err := p.Program.OutputCodec.DecodeRow(m.Value, nil)
				if err != nil {
					t.Fatal(err)
				}
				byOrder[row[1].(int64)] = row
			}
			time.Sleep(10 * time.Millisecond)
		}
		if crashAfter > 0 && !crashed.Load() {
			t.Fatal("failure was never injected")
		}
		// Duplicate detection: total emitted messages vs distinct orders.
		out := drainNew(t, e.Broker, p.OutputTopic)
		if len(out) != len(byOrder) {
			t.Fatalf("emitted %d messages for %d distinct orders: duplicates across replay", len(out), len(byOrder))
		}
		if len(byOrder) != totalOrders {
			t.Fatalf("only %d of %d orders in output", len(byOrder), totalOrders)
		}
		return byOrder
	}

	// Crash after 700 messages: 200 past the 500-message checkpoint, so
	// replay is guaranteed to re-deliver processed messages.
	withFailure := run(700)
	clean := run(0)

	for orderID, want := range clean {
		got, ok := withFailure[orderID]
		if !ok {
			t.Fatalf("order %d missing after failure", orderID)
		}
		if fmt.Sprintf("%v", got) != fmt.Sprintf("%v", want) {
			t.Fatalf("order %d differs across failure:\n  clean: %v\n  crash: %v", orderID, want, got)
		}
	}
}

package executor

import (
	"testing"

	"samzasql/internal/metrics"
	"samzasql/internal/samza"
	"samzasql/internal/sql/catalog"
	"samzasql/internal/workload"
	"samzasql/internal/zk"
)

// nullCollector counts sends without touching a broker, so the benchmarks
// below measure only the task's own per-message machinery.
type nullCollector struct{ sent int }

func (c *nullCollector) Send(samza.OutgoingMessageEnvelope) error {
	c.sent++
	return nil
}

// setupFilterTask initializes a SamzaSQL fastpath filter task exactly as a
// container would — collector bound in TaskContext before Init — and returns
// pre-encoded Orders envelopes that fail and pass the predicate.
func setupFilterTask(tb testing.TB) (*Task, *nullCollector, samza.IncomingMessageEnvelope, samza.IncomingMessageEnvelope) {
	tb.Helper()
	cat := catalog.New()
	if err := workload.DefineCatalog(cat); err != nil {
		tb.Fatal(err)
	}
	zkStore := zk.NewStore()
	const queryPath = "/samzasql/queries/bench-filter"
	if err := zkStore.CreateRecursive(queryPath, []byte("SELECT STREAM * FROM Orders WHERE units > 50")); err != nil {
		tb.Fatal(err)
	}
	coll := &nullCollector{}
	ctx := &samza.TaskContext{
		Task:      samza.TaskNameFor(0),
		Partition: 0,
		Metrics:   metrics.NewRegistry(),
		Config: map[string]string{
			"samzasql.zk.query.path": queryPath,
			"samzasql.output.topic":  "bench-out",
			"samzasql.fastpath":      "true",
		},
		Collector: coll,
	}
	task := NewTask(cat, zkStore, true)
	if err := task.Init(ctx); err != nil {
		tb.Fatal(err)
	}

	gen := workload.NewOrdersGen(workload.DefaultOrdersConfig())
	var miss, hit samza.IncomingMessageEnvelope
	haveMiss, haveHit := false, false
	for i := 0; !haveMiss || !haveHit; i++ {
		if i > 10_000 {
			tb.Fatal("generator never produced both predicate outcomes")
		}
		row, key, value, err := gen.Next()
		if err != nil {
			tb.Fatal(err)
		}
		env := samza.IncomingMessageEnvelope{
			Stream: "orders", Partition: 0, Offset: int64(i),
			Key: key, Value: value, Timestamp: row[0].(int64),
		}
		if units := row[3].(int64); units > 50 && !haveHit {
			hit, haveHit = env, true
		} else if units <= 50 && !haveMiss {
			miss, haveMiss = env, true
		}
	}
	return task, coll, miss, hit
}

// TestFilterProcessZeroAllocs pins the satellite regression: with the sender
// bound once at Init, processing a filter-query message allocates nothing —
// neither on the filtered-out path nor when the row is forwarded.
func TestFilterProcessZeroAllocs(t *testing.T) {
	task, coll, miss, hit := setupFilterTask(t)
	for name, env := range map[string]samza.IncomingMessageEnvelope{"miss": miss, "hit": hit} {
		env := env
		allocs := testing.AllocsPerRun(1000, func() {
			if err := task.Process(env, task.bound, nil); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("%s path: %.1f allocs per message, want 0", name, allocs)
		}
	}
	if coll.sent == 0 {
		t.Fatal("hit path never reached the collector")
	}
}

// BenchmarkFilterMessageProcess measures the full per-message cost of a
// fastpath filter query through Task.Process, excluding broker I/O.
func BenchmarkFilterMessageProcess(b *testing.B) {
	for _, c := range []struct {
		name string
		pick func(miss, hit samza.IncomingMessageEnvelope) samza.IncomingMessageEnvelope
	}{
		{"filtered-out", func(miss, _ samza.IncomingMessageEnvelope) samza.IncomingMessageEnvelope { return miss }},
		{"forwarded", func(_, hit samza.IncomingMessageEnvelope) samza.IncomingMessageEnvelope { return hit }},
	} {
		b.Run(c.name, func(b *testing.B) {
			task, _, miss, hit := setupFilterTask(b)
			env := c.pick(miss, hit)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := task.Process(env, task.bound, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

package workload

import (
	"testing"

	"samzasql/internal/avro"
	"samzasql/internal/kafka"
	"samzasql/internal/sql/catalog"
)

func TestOrdersGenDeterministic(t *testing.T) {
	g1 := NewOrdersGen(DefaultOrdersConfig())
	g2 := NewOrdersGen(DefaultOrdersConfig())
	for i := 0; i < 100; i++ {
		r1, k1, v1, err1 := g1.Next()
		r2, k2, v2, err2 := g2.Next()
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if string(k1) != string(k2) || string(v1) != string(v2) {
			t.Fatalf("generators diverged at record %d", i)
		}
		for j := range r1 {
			if r1[j] != r2[j] {
				t.Fatalf("row %d field %d differs", i, j)
			}
		}
	}
}

func TestOrdersGenMessageSize(t *testing.T) {
	g := NewOrdersGen(DefaultOrdersConfig())
	for i := 0; i < 200; i++ {
		_, _, value, err := g.Next()
		if err != nil {
			t.Fatal(err)
		}
		// §5.1 requires ~100-byte messages; allow varint wiggle.
		if len(value) < 90 || len(value) > 110 {
			t.Fatalf("record %d is %d bytes, want ~%d", i, len(value), TargetMessageBytes)
		}
	}
}

func TestOrdersGenFields(t *testing.T) {
	cfg := DefaultOrdersConfig()
	g := NewOrdersGen(cfg)
	prevTs := int64(0)
	for i := 0; i < 100; i++ {
		row, key, value, err := g.Next()
		if err != nil {
			t.Fatal(err)
		}
		ts := row[0].(int64)
		pid := row[1].(int64)
		orderID := row[2].(int64)
		units := row[3].(int64)
		if ts <= prevTs {
			t.Fatalf("rowtime not monotone at %d", i)
		}
		prevTs = ts
		if pid < 0 || pid >= int64(cfg.Products) {
			t.Fatalf("productId %d out of range", pid)
		}
		if orderID != int64(i) {
			t.Fatalf("orderId %d, want %d", orderID, i)
		}
		if units < 1 || units > int64(cfg.MaxUnits) {
			t.Fatalf("units %d out of range", units)
		}
		// Key is the productId (join co-partitioning).
		decoded, err := g.Codec().DecodeRow(value, nil)
		if err != nil {
			t.Fatal(err)
		}
		if decoded[1].(int64) != pid {
			t.Fatal("encoded row disagrees with returned row")
		}
		if string(key) == "" {
			t.Fatal("empty partition key")
		}
	}
}

func TestDefineCatalogObjects(t *testing.T) {
	cat := catalog.New()
	if err := DefineCatalog(cat); err != nil {
		t.Fatal(err)
	}
	orders, err := cat.Resolve("Orders")
	if err != nil || orders.Kind != catalog.Stream || orders.TimestampCol != "rowtime" ||
		orders.PartitionKeyCol != "productId" {
		t.Fatalf("Orders: %+v %v", orders, err)
	}
	products, err := cat.Resolve("Products")
	if err != nil || products.Kind != catalog.Table {
		t.Fatalf("Products: %+v %v", products, err)
	}
	for _, name := range []string{"PacketsR1", "PacketsR2"} {
		o, err := cat.Resolve(name)
		if err != nil || o.PartitionKeyCol != "packetId" {
			t.Fatalf("%s: %+v %v", name, o, err)
		}
	}
}

func TestProduceOrdersCoPartitionsWithProducts(t *testing.T) {
	b := kafka.NewBroker()
	const parts = 8
	if _, err := ProduceOrders(b, "orders", parts, 200, DefaultOrdersConfig()); err != nil {
		t.Fatal(err)
	}
	if err := ProduceProducts(b, "products", parts, 50); err != nil {
		t.Fatal(err)
	}
	// Every order's productId must hash to the same partition as the
	// product row with that id — the invariant bootstrap joins rely on.
	oc := avro.MustCodec(OrdersSchema())
	for p := int32(0); p < parts; p++ {
		tp := kafka.TopicPartition{Topic: "orders", Partition: p}
		hwm, _ := b.HighWatermark(tp)
		off := int64(0)
		for off < hwm {
			msgs, wait, err := b.Fetch(tp, off, 256)
			if err != nil {
				t.Fatal(err)
			}
			if wait != nil {
				break
			}
			for _, m := range msgs {
				pid, err := oc.ReadField(m.Value, "productId")
				if err != nil {
					t.Fatal(err)
				}
				if pid.(int64) < 50 {
					want := kafka.PartitionForKey(m.Key, parts)
					if want != p {
						t.Fatalf("order with key %q in partition %d, hash says %d", m.Key, p, want)
					}
				}
			}
			off = msgs[len(msgs)-1].Offset + 1
		}
	}
}

func TestProducePacketsCorrelated(t *testing.T) {
	b := kafka.NewBroker()
	if err := ProducePackets(b, "packets-r1", "packets-r2", 2, 100, DefaultPacketsConfig()); err != nil {
		t.Fatal(err)
	}
	c1 := avro.MustCodec(PacketsSchema("PacketsR1"))
	c2 := avro.MustCodec(PacketsSchema("PacketsR2"))
	// Collect both sides by packetId.
	type obs struct{ r1, r2 int64 }
	seen := map[int64]*obs{}
	read := func(topic string, codec *avro.Codec, isR1 bool) {
		for p := int32(0); p < 2; p++ {
			tp := kafka.TopicPartition{Topic: topic, Partition: p}
			hwm, _ := b.HighWatermark(tp)
			off := int64(0)
			for off < hwm {
				msgs, wait, err := b.Fetch(tp, off, 256)
				if err != nil {
					t.Fatal(err)
				}
				if wait != nil {
					break
				}
				for _, m := range msgs {
					row, err := codec.DecodeRow(m.Value, nil)
					if err != nil {
						t.Fatal(err)
					}
					id := row[2].(int64)
					o := seen[id]
					if o == nil {
						o = &obs{}
						seen[id] = o
					}
					if isR1 {
						o.r1 = row[0].(int64)
					} else {
						o.r2 = row[0].(int64)
					}
				}
				off = msgs[len(msgs)-1].Offset + 1
			}
		}
	}
	read("packets-r1", c1, true)
	read("packets-r2", c2, false)
	if len(seen) != 100 {
		t.Fatalf("%d packet ids", len(seen))
	}
	cfg := DefaultPacketsConfig()
	for id, o := range seen {
		if o.r1 == 0 || o.r2 == 0 {
			t.Fatalf("packet %d missing an observation", id)
		}
		travel := o.r2 - o.r1
		if travel <= 0 || travel > cfg.TravelMillis+1 {
			t.Fatalf("packet %d travel %d out of range", id, travel)
		}
	}
}

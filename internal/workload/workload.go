// Package workload generates the synthetic evaluation data of §5.1: an
// Orders stream of 100-byte Avro messages (padded with a random string, as
// the paper does to hit the Kafka benchmark's sweet-spot message size), a
// Products relation delivered as a changelog, and the PacketsR1/R2 streams
// used by the stream-to-stream join example.
package workload

import (
	"fmt"
	"math/rand"

	"samzasql/internal/avro"
	"samzasql/internal/kafka"
	"samzasql/internal/sql/catalog"
	"samzasql/internal/sql/types"
)

// TargetMessageBytes is the benchmark message size (§5.1).
const TargetMessageBytes = 100

// OrdersSchema is the Avro wire schema of the Orders stream.
func OrdersSchema() *avro.Schema {
	return avro.Record("Orders",
		avro.F("rowtime", avro.Long()),
		avro.F("productId", avro.Long()),
		avro.F("orderId", avro.Long()),
		avro.F("units", avro.Long()),
		avro.F("pad", avro.String()),
	)
}

// ProductsSchema is the Avro wire schema of the Products relation.
func ProductsSchema() *avro.Schema {
	return avro.Record("Products",
		avro.F("productId", avro.Long()),
		avro.F("name", avro.String()),
		avro.F("supplierId", avro.Long()),
	)
}

// PacketsSchema is the Avro wire schema of the Packets streams.
func PacketsSchema(name string) *avro.Schema {
	return avro.Record(name,
		avro.F("rowtime", avro.Long()),
		avro.F("sourcetime", avro.Long()),
		avro.F("packetId", avro.Long()),
	)
}

// DefineCatalog registers the evaluation schema (§3.2's running example) in
// a catalog: Orders/PacketsR1/PacketsR2 streams and the Products table.
func DefineCatalog(cat *catalog.Catalog) error {
	objects := []*catalog.Object{
		{
			Kind: catalog.Stream, Name: "Orders", Topic: "orders", TimestampCol: "rowtime",
			PartitionKeyCol: "productId",
			Row: types.NewRowType(
				types.Column{Name: "rowtime", Type: types.Timestamp},
				types.Column{Name: "productId", Type: types.Bigint},
				types.Column{Name: "orderId", Type: types.Bigint},
				types.Column{Name: "units", Type: types.Bigint},
				types.Column{Name: "pad", Type: types.Varchar},
			),
		},
		{
			Kind: catalog.Table, Name: "Products", Topic: "products",
			PartitionKeyCol: "productId",
			Row: types.NewRowType(
				types.Column{Name: "productId", Type: types.Bigint},
				types.Column{Name: "name", Type: types.Varchar},
				types.Column{Name: "supplierId", Type: types.Bigint},
			),
		},
		{
			Kind: catalog.Stream, Name: "PacketsR1", Topic: "packets-r1", TimestampCol: "rowtime",
			PartitionKeyCol: "packetId", Row: packetsRow(),
		},
		{
			Kind: catalog.Stream, Name: "PacketsR2", Topic: "packets-r2", TimestampCol: "rowtime",
			PartitionKeyCol: "packetId", Row: packetsRow(),
		},
	}
	for _, o := range objects {
		if err := cat.Define(o); err != nil {
			return err
		}
	}
	return nil
}

func packetsRow() *types.RowType {
	return types.NewRowType(
		types.Column{Name: "rowtime", Type: types.Timestamp},
		types.Column{Name: "sourcetime", Type: types.Timestamp},
		types.Column{Name: "packetId", Type: types.Bigint},
	)
}

// OrdersConfig parameterizes the Orders generator.
type OrdersConfig struct {
	// Products is the distinct productId count (keys of the join and the
	// sliding-window partitioning).
	Products int
	// StartTs and TsStepMillis drive rowtime: each record advances the
	// clock by TsStepMillis (deterministic event time).
	StartTs      int64
	TsStepMillis int64
	// MaxUnits bounds the uniform units column (1..MaxUnits).
	MaxUnits int
	// Seed makes the generator deterministic.
	Seed int64
}

// DefaultOrdersConfig matches the evaluation workload.
func DefaultOrdersConfig() OrdersConfig {
	return OrdersConfig{
		Products:     100,
		StartTs:      1_600_000_000_000,
		TsStepMillis: 10,
		MaxUnits:     100,
		Seed:         42,
	}
}

// OrdersGen produces Orders records as pre-encoded 100-byte Avro messages.
type OrdersGen struct {
	cfg   OrdersConfig
	codec *avro.Codec
	rng   *rand.Rand
	next  int64
	ts    int64
	// padLen is computed once so every message hits the target size.
	padLen int
}

// NewOrdersGen builds a deterministic generator.
func NewOrdersGen(cfg OrdersConfig) *OrdersGen {
	g := &OrdersGen{
		cfg:   cfg,
		codec: avro.MustCodec(OrdersSchema()),
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		ts:    cfg.StartTs,
	}
	// Size a probe record to derive the pad length for ~100B messages.
	probe, err := g.codec.EncodeRow([]any{cfg.StartTs, int64(cfg.Products), int64(1 << 40), int64(cfg.MaxUnits), ""})
	if err != nil {
		panic(err)
	}
	g.padLen = TargetMessageBytes - len(probe)
	if g.padLen < 0 {
		g.padLen = 0
	}
	return g
}

// Codec exposes the Orders codec.
func (g *OrdersGen) Codec() *avro.Codec { return g.codec }

// Next returns the next record: its row, partition key (productId, so joins
// co-partition) and Avro encoding.
func (g *OrdersGen) Next() (row []any, key []byte, value []byte, err error) {
	orderID := g.next
	g.next++
	g.ts += g.cfg.TsStepMillis
	productID := int64(g.rng.Intn(g.cfg.Products))
	units := int64(g.rng.Intn(g.cfg.MaxUnits) + 1)
	pad := randString(g.rng, g.padLen)
	row = []any{g.ts, productID, orderID, units, pad}
	value, err = g.codec.EncodeRow(row)
	if err != nil {
		return nil, nil, nil, err
	}
	key = []byte(fmt.Sprintf("%d", productID))
	return row, key, value, nil
}

const padAlphabet = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"

func randString(rng *rand.Rand, n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = padAlphabet[rng.Intn(len(padAlphabet))]
	}
	return string(b)
}

// ProduceOrders creates the topic (if needed) and appends count records,
// keyed by productId.
func ProduceOrders(b *kafka.Broker, topic string, partitions int32, count int, cfg OrdersConfig) (*OrdersGen, error) {
	if err := b.EnsureTopic(topic, kafka.TopicConfig{Partitions: partitions}); err != nil {
		return nil, err
	}
	g := NewOrdersGen(cfg)
	for i := 0; i < count; i++ {
		row, key, value, err := g.Next()
		if err != nil {
			return nil, err
		}
		_, err = b.Produce(topic, kafka.Message{
			Partition: -1,
			Key:       key,
			Value:     value,
			Timestamp: row[0].(int64),
		})
		if err != nil {
			return nil, err
		}
	}
	return g, nil
}

// ProduceProducts writes the Products relation as a compacted changelog
// keyed by productId, co-partitioned with Orders.
func ProduceProducts(b *kafka.Broker, topic string, partitions int32, products int) error {
	if err := b.EnsureTopic(topic, kafka.TopicConfig{Partitions: partitions, Compacted: true}); err != nil {
		return err
	}
	codec := avro.MustCodec(ProductsSchema())
	for id := 0; id < products; id++ {
		row := []any{int64(id), fmt.Sprintf("product-%d", id), int64(id % 10)}
		value, err := codec.EncodeRow(row)
		if err != nil {
			return err
		}
		_, err = b.Produce(topic, kafka.Message{
			Partition: -1,
			Key:       []byte(fmt.Sprintf("%d", id)),
			Value:     value,
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// PacketsConfig parameterizes the packet-pair generator.
type PacketsConfig struct {
	StartTs int64
	// GapMillis separates consecutive packets at R1.
	GapMillis int64
	// TravelMillis is the max R1→R2 latency (uniform).
	TravelMillis int64
	Seed         int64
}

// DefaultPacketsConfig matches the Listing 7 example.
func DefaultPacketsConfig() PacketsConfig {
	return PacketsConfig{StartTs: 1_600_000_000_000, GapMillis: 20, TravelMillis: 1500, Seed: 7}
}

// ProducePackets writes correlated packet observations to both router
// streams, keyed by packetId so the join co-partitions.
func ProducePackets(b *kafka.Broker, topicR1, topicR2 string, partitions int32, count int, cfg PacketsConfig) error {
	for _, topic := range []string{topicR1, topicR2} {
		if err := b.EnsureTopic(topic, kafka.TopicConfig{Partitions: partitions}); err != nil {
			return err
		}
	}
	c1 := avro.MustCodec(PacketsSchema("PacketsR1"))
	c2 := avro.MustCodec(PacketsSchema("PacketsR2"))
	rng := rand.New(rand.NewSource(cfg.Seed))
	ts := cfg.StartTs
	for i := 0; i < count; i++ {
		ts += cfg.GapMillis
		source := ts - 1 // packet creation just before R1 sees it
		pid := int64(i)
		key := []byte(fmt.Sprintf("%d", pid))
		v1, err := c1.EncodeRow([]any{ts, source, pid})
		if err != nil {
			return err
		}
		if _, err := b.Produce(topicR1, kafka.Message{Partition: -1, Key: key, Value: v1, Timestamp: ts}); err != nil {
			return err
		}
		arrive := ts + 1 + rng.Int63n(cfg.TravelMillis)
		v2, err := c2.EncodeRow([]any{arrive, source, pid})
		if err != nil {
			return err
		}
		if _, err := b.Produce(topicR2, kafka.Message{Partition: -1, Key: key, Value: v2, Timestamp: arrive}); err != nil {
			return err
		}
	}
	return nil
}

package analysis

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
)

// LockDiscipline enforces the locking rules the single-lock poll path and
// the batched producer path rely on:
//
//  1. no copying of values containing sync.Mutex/RWMutex/WaitGroup/Once/Cond
//     (assignments, by-value parameters, range variables, call arguments);
//  2. no blocking channel operation and no Produce/Flush-class call while a
//     mutex is held — the broker signals subscribers *after* unlocking for
//     exactly this reason, and a produce under a task lock can deadlock
//     against a consumer parked on the same partition;
//  3. no return while a mutex is still held without a deferred unlock —
//     the multi-return early-exit that leaks the lock.
//
// The analysis is a linear, branch-aware walk over each function body (an
// intraprocedural approximation, not a full CFG): branches fork the held-lock
// state, and after a branch a lock counts as held only if every continuing
// path still holds it.
var LockDiscipline = &Analyzer{
	Name: "lock-discipline",
	Doc: "no mutex copied by value; no blocking channel op or Produce/Flush-class call while a " +
		"lock is held; no return while a lock is held without defer Unlock",
	Run: runLockDiscipline,
}

// blockingCallsUnderLock are method names that may block on another lock or
// wake other goroutines and therefore must not run under a held mutex.
var blockingCallsUnderLock = map[string]bool{
	"Produce":      true,
	"ProduceBatch": true,
	"Send":         true,
	"SendBatch":    true,
	"SendTo":       true,
	"Flush":        true,
}

func runLockDiscipline(pass *Pass) {
	checkLockCopies(pass)
	for _, f := range pass.Files() {
		for _, d := range f.Decls {
			if decl, ok := d.(*ast.FuncDecl); ok && decl.Body != nil {
				walkLockRegions(pass, decl.Body.List, lockState{})
			}
		}
	}
}

// ---- rule 1: lock values copied ----

func checkLockCopies(pass *Pass) {
	for _, f := range pass.Files() {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, rhs := range n.Rhs {
					checkCopiedExpr(pass, rhs)
				}
			case *ast.FuncDecl:
				if n.Type.Params != nil {
					for _, field := range n.Type.Params.List {
						if t := pass.TypeOf(field.Type); t != nil && lockKind(t) != "" {
							pass.Reportf(field.Pos(), "parameter passes %s by value, copying its %s; pass a pointer", t, lockKind(t))
						}
					}
				}
				if n.Recv != nil {
					for _, field := range n.Recv.List {
						if t := pass.TypeOf(field.Type); t != nil && lockKind(t) != "" {
							pass.Reportf(field.Pos(), "value receiver copies %s, which contains a %s; use a pointer receiver", t, lockKind(t))
						}
					}
				}
			case *ast.RangeStmt:
				if v := n.Value; v != nil {
					if t := pass.TypeOf(v); t != nil && lockKind(t) != "" {
						pass.Reportf(v.Pos(), "range value copies %s, which contains a %s; iterate by index", t, lockKind(t))
					}
				}
			case *ast.CallExpr:
				for _, arg := range n.Args {
					checkCopiedExpr(pass, arg)
				}
			}
			return true
		})
	}
}

// checkCopiedExpr flags e when it reads an existing lock-holding value by
// value. Composite literals and function-call results are fresh values, not
// copies, so only variable-like expressions are checked.
func checkCopiedExpr(pass *Pass, e ast.Expr) {
	switch e.(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
	default:
		return
	}
	if _, isPkg := pass.Info().Uses[rootIdent(e)].(*types.PkgName); isPkg {
		return
	}
	t := pass.TypeOf(e)
	if t == nil {
		return
	}
	if kind := lockKind(t); kind != "" {
		pass.Reportf(e.Pos(), "copies %s by value, which contains a %s; copy a pointer instead", t, kind)
	}
}

func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// lockKind reports the sync primitive t contains by value ("" when none),
// looking through named types, structs and arrays.
func lockKind(t types.Type) string {
	return lockKindSeen(t, map[types.Type]bool{})
}

func lockKindSeen(t types.Type, seen map[types.Type]bool) string {
	if t == nil || seen[t] {
		return ""
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
			switch obj.Name() {
			case "Mutex", "RWMutex", "WaitGroup", "Once", "Cond", "Pool", "Map":
				return "sync." + obj.Name()
			}
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if k := lockKindSeen(u.Field(i).Type(), seen); k != "" {
				return k
			}
		}
	case *types.Array:
		return lockKindSeen(u.Elem(), seen)
	}
	return ""
}

// ---- rules 2+3: held-lock regions ----

// lockState maps a lock expression (printed, e.g. "c.mu") to whether its
// unlock is deferred (true = safe on every exit path).
type lockState map[string]bool

func (s lockState) clone() lockState {
	out := make(lockState, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

// walkLockRegions interprets stmts linearly, forking on branches. It returns
// the state after the statements and whether the path always terminates
// (return/panic) before reaching the end.
func walkLockRegions(pass *Pass, stmts []ast.Stmt, held lockState) (lockState, bool) {
	for _, stmt := range stmts {
		var terminated bool
		held, terminated = walkLockStmt(pass, stmt, held)
		if terminated {
			return held, true
		}
	}
	return held, false
}

func walkLockStmt(pass *Pass, stmt ast.Stmt, held lockState) (lockState, bool) {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if lock, op := lockCall(pass, call); lock != "" {
				switch op {
				case "Lock", "RLock":
					held[lock] = false
				case "Unlock", "RUnlock":
					delete(held, lock)
				}
				return held, false
			}
		}
		checkExprUnderLock(pass, s.X, held)
	case *ast.DeferStmt:
		if lock, op := lockCall(pass, s.Call); lock != "" && (op == "Unlock" || op == "RUnlock") {
			if _, ok := held[lock]; ok {
				held[lock] = true // deferred: released on every exit path
			}
			return held, false
		}
		checkExprUnderLock(pass, s.Call, held)
	case *ast.SendStmt:
		reportChanOpUnderLock(pass, s.Arrow, held, "channel send")
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			checkExprUnderLock(pass, rhs, held)
		}
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			checkExprUnderLock(pass, r, held)
		}
		for lock, deferred := range held {
			if !deferred {
				pass.Reportf(s.Pos(), "returns while %s is locked with no defer %s.Unlock(); a multi-return function must defer the unlock (or unlock on every path before returning)", lock, lock)
			}
		}
		return held, true
	case *ast.BlockStmt:
		return walkLockRegions(pass, s.List, held)
	case *ast.IfStmt:
		if s.Init != nil {
			held, _ = walkLockStmt(pass, s.Init, held)
		}
		checkExprUnderLock(pass, s.Cond, held)
		thenState, thenTerm := walkLockRegions(pass, s.Body.List, held.clone())
		elseState, elseTerm := held.clone(), false
		if s.Else != nil {
			elseState, elseTerm = walkLockStmt(pass, s.Else, held.clone())
		}
		switch {
		case thenTerm && elseTerm:
			return held, true
		case thenTerm:
			return elseState, false
		case elseTerm:
			return thenState, false
		default:
			return intersectLocks(thenState, elseState), false
		}
	case *ast.ForStmt, *ast.RangeStmt, *ast.LabeledStmt:
		// Loop bodies fork the state; locks taken inside a loop iteration
		// are expected to be released inside it, so the post-loop state is
		// the entry state.
		var body *ast.BlockStmt
		switch s := stmt.(type) {
		case *ast.ForStmt:
			if s.Cond != nil {
				checkExprUnderLock(pass, s.Cond, held)
			}
			body = s.Body
		case *ast.RangeStmt:
			checkExprUnderLock(pass, s.X, held)
			body = s.Body
		case *ast.LabeledStmt:
			return walkLockStmt(pass, s.Stmt, held)
		}
		walkLockRegions(pass, body.List, held.clone())
	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		var bodyList []ast.Stmt
		if sw, ok := stmt.(*ast.SwitchStmt); ok {
			bodyList = sw.Body.List
		} else {
			bodyList = stmt.(*ast.TypeSwitchStmt).Body.List
		}
		states := []lockState{}
		allTerm := len(bodyList) > 0
		for _, cc := range bodyList {
			clause := cc.(*ast.CaseClause)
			st, term := walkLockRegions(pass, clause.Body, held.clone())
			if !term {
				states = append(states, st)
				allTerm = false
			}
		}
		if allTerm && hasDefaultClause(bodyList) {
			return held, true
		}
		states = append(states, held) // a missing/failing case falls through
		return intersectAll(states), false
	case *ast.SelectStmt:
		if len(held) > 0 && !selectHasDefault(s) {
			reportChanOpUnderLock(pass, s.Pos(), held, "blocking select")
		}
		states := []lockState{}
		allTerm := len(s.Body.List) > 0
		for _, cc := range s.Body.List {
			clause := cc.(*ast.CommClause)
			st, term := walkLockRegions(pass, clause.Body, held.clone())
			if !term {
				states = append(states, st)
				allTerm = false
			}
		}
		if allTerm {
			return held, true
		}
		return intersectAll(states), false
	case *ast.GoStmt:
		// The spawned goroutine runs with its own (empty) lock state.
		if fl, ok := s.Call.Fun.(*ast.FuncLit); ok {
			walkLockRegions(pass, fl.Body.List, lockState{})
		}
	case *ast.BranchStmt:
		// break/continue/goto end this linear path conservatively.
		return held, false
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						checkExprUnderLock(pass, v, held)
					}
				}
			}
		}
	}
	return held, false
}

// checkExprUnderLock flags blocking channel receives and Produce/Flush-class
// calls appearing in e while any lock is held.
func checkExprUnderLock(pass *Pass, e ast.Expr, held lockState) {
	if len(held) == 0 || e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // runs later, under its own state
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				reportChanOpUnderLock(pass, n.OpPos, held, "channel receive")
			}
		case *ast.CallExpr:
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok || !blockingCallsUnderLock[sel.Sel.Name] {
				return true
			}
			// Only method calls can reach the broker/store stack; plain
			// functions named Send etc. in other packages are fine.
			if pass.Info().Selections[sel] == nil {
				return true
			}
			for lock := range held {
				pass.Reportf(n.Pos(), "calls %s.%s while %s is held; produce/flush paths take partition locks and wake consumers, so release %s first (snapshot under the lock, then call)", exprString(pass, sel.X), sel.Sel.Name, lock, lock)
			}
		}
		return true
	})
}

func reportChanOpUnderLock(pass *Pass, pos token.Pos, held lockState, what string) {
	for lock := range held {
		pass.Reportf(pos, "%s while %s is held can block every other user of %s; move the channel operation outside the critical section", what, lock, lock)
	}
}

// lockCall returns (lockExpr, op) when call is x.Lock/RLock/Unlock/RUnlock()
// with no arguments on a sync (or sync-embedding) receiver.
func lockCall(pass *Pass, call *ast.CallExpr) (string, string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || len(call.Args) != 0 {
		return "", ""
	}
	op := sel.Sel.Name
	switch op {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", ""
	}
	// The receiver must be (or embed) a sync lock; this keeps unrelated
	// Lock() methods out of the analysis.
	if t := pass.TypeOf(sel.X); t != nil {
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if lockKind(t) == "" {
			return "", ""
		}
	}
	return exprString(pass, sel.X), op
}

func exprString(pass *Pass, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, pass.Fset(), e); err != nil {
		return "<expr>"
	}
	return buf.String()
}

func intersectLocks(a, b lockState) lockState {
	out := lockState{}
	for k, v := range a {
		if bv, ok := b[k]; ok {
			out[k] = v || bv
		}
	}
	return out
}

func intersectAll(states []lockState) lockState {
	if len(states) == 0 {
		return lockState{}
	}
	out := states[0]
	for _, s := range states[1:] {
		out = intersectLocks(out, s)
	}
	return out
}

func hasDefaultClause(clauses []ast.Stmt) bool {
	for _, cc := range clauses {
		if clause, ok := cc.(*ast.CaseClause); ok && clause.List == nil {
			return true
		}
	}
	return false
}

func selectHasDefault(s *ast.SelectStmt) bool {
	for _, cc := range s.Body.List {
		if clause, ok := cc.(*ast.CommClause); ok && clause.Comm == nil {
			return true
		}
	}
	return false
}

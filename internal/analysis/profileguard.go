package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// ProfileGuard enforces the continuous profiler's hot-path contract: inside
// //samzasql:hotpath functions, every call into internal/profile (capture,
// folding, batch construction) must sit inside an if whose condition checks
// the enable bit — `if prof.Enabled() { ... }`. The Enabled check itself is
// the guard and stays legal anywhere; it is nil-safe and branch-only, so an
// idle profiler costs the hot path exactly one predicted branch. Everything
// else the package does (StartCPUProfile, pprof lookups, protobuf folds)
// stops the world or allocates and must never run when profiling is off.
var ProfileGuard = &Analyzer{
	Name: "profile-guard",
	Doc: "calls into internal/profile inside //samzasql:hotpath functions must be guarded by a " +
		"branch on the enable bit (if x.Enabled()); the profiler-off path stays branch-only",
	Run: runProfileGuard,
}

func runProfileGuard(pass *Pass) {
	for _, decl := range pass.Pkg.HotPathFuncs() {
		checkProfileGuard(pass, decl)
	}
}

func checkProfileGuard(pass *Pass, decl *ast.FuncDecl) {
	// Guarded regions: bodies of if statements whose condition mentions an
	// Enabled identifier. Lexical containment is the check; an early-return
	// inversion (`if !enabled { return }`) deliberately does not count, so
	// the guarded work stays visibly bracketed — same contract as
	// trace-guard's sample bit.
	var guarded []*ast.BlockStmt
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok || !mentionsEnabled(ifs.Cond) {
			return true
		}
		guarded = append(guarded, ifs.Body)
		return true
	})
	inGuard := func(n ast.Node) bool {
		for _, b := range guarded {
			if n.Pos() >= b.Pos() && n.End() <= b.End() {
				return true
			}
		}
		return false
	}

	ast.Inspect(decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := profileCallee(pass, call)
		if fn == nil || fn.Name() == "Enabled" || inGuard(call) {
			return true
		}
		pass.Reportf(call.Pos(), "unguarded profile.%s call in //samzasql:hotpath function %s costs the profiler-off path; branch on the enable bit first: if x.Enabled() { ... }", fn.Name(), decl.Name.Name)
		return true
	})
}

// mentionsEnabled reports whether a condition references an identifier or
// selector named Enabled.
func mentionsEnabled(cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == "Enabled" {
			found = true
			return false
		}
		return !found
	})
	return found
}

// profileCallee resolves call's target and returns it when it lives in the
// internal/profile package (package functions and methods on its types
// alike).
func profileCallee(pass *Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, ok := pass.Info().Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil || !strings.HasSuffix(fn.Pkg().Path(), "internal/profile") {
		return nil
	}
	return fn
}

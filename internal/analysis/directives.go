package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Directive comment prefixes. Like //go: directives they must start the
// comment with no space after the slashes.
const (
	hotpathDirective = "//samzasql:hotpath"
	ignoreDirective  = "//samzasql:ignore"
	enforceDirective = "//samzasql:enforce"
)

// ignoreEntry is one //samzasql:ignore occurrence: the analyzers it names
// (empty = all) on the lines it covers.
type ignoreEntry struct {
	analyzers []string // nil means every analyzer
}

// directiveIndex is the per-package view of all samzasql comment directives.
type directiveIndex struct {
	// ignores maps filename -> line -> entry. An entry on line L covers
	// findings on L and L+1, so both trailing comments and comments on the
	// line above the offending statement work.
	ignores map[string]map[int][]ignoreEntry
	// hotpathLines maps filename -> set of lines carrying the hotpath
	// directive.
	hotpathLines map[string]map[int]bool
	// enforced lists the scoped analyzers the package opted into via
	// //samzasql:enforce (fixture packages use this; runtime packages are in
	// scope by import path).
	enforced map[string]bool
}

// indexDirectives scans every comment in the package once.
func indexDirectives(pkg *Package) *directiveIndex {
	idx := &directiveIndex{
		ignores:      map[string]map[int][]ignoreEntry{},
		hotpathLines: map[string]map[int]bool{},
		enforced:     map[string]bool{},
	}
	for _, f := range pkg.Syntax {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				pos := pkg.Fset.Position(c.Pos())
				text := c.Text
				switch {
				case strings.HasPrefix(text, ignoreDirective):
					rest := strings.TrimPrefix(text, ignoreDirective)
					entry := ignoreEntry{analyzers: parseAnalyzerList(rest)}
					byLine := idx.ignores[pos.Filename]
					if byLine == nil {
						byLine = map[int][]ignoreEntry{}
						idx.ignores[pos.Filename] = byLine
					}
					byLine[pos.Line] = append(byLine[pos.Line], entry)
				case strings.HasPrefix(text, hotpathDirective):
					lines := idx.hotpathLines[pos.Filename]
					if lines == nil {
						lines = map[int]bool{}
						idx.hotpathLines[pos.Filename] = lines
					}
					lines[pos.Line] = true
				case strings.HasPrefix(text, enforceDirective):
					for _, name := range parseAnalyzerList(strings.TrimPrefix(text, enforceDirective)) {
						idx.enforced[name] = true
					}
				}
			}
		}
	}
	return idx
}

// parseAnalyzerList parses the optional analyzer list after a directive
// keyword: a comma-separated first field; everything after the first
// whitespace-separated field (or after "--") is free-text rationale. A
// missing list yields nil (= all analyzers).
func parseAnalyzerList(rest string) []string {
	fields := strings.Fields(rest)
	if len(fields) == 0 || fields[0] == "--" {
		return nil
	}
	var out []string
	for _, name := range strings.Split(fields[0], ",") {
		if name = strings.TrimSpace(name); name != "" {
			out = append(out, name)
		}
	}
	return out
}

// suppresses reports whether an ignore directive covers a finding from the
// named analyzer at pos.
func (idx *directiveIndex) suppresses(pos token.Position, analyzer string) bool {
	byLine := idx.ignores[pos.Filename]
	if byLine == nil {
		return false
	}
	for _, line := range [2]int{pos.Line, pos.Line - 1} {
		for _, e := range byLine[line] {
			if e.analyzers == nil {
				return true
			}
			for _, name := range e.analyzers {
				if name == analyzer {
					return true
				}
			}
		}
	}
	return false
}

// Enforces reports whether the package opted into the named scoped analyzer
// via //samzasql:enforce.
func (p *Package) Enforces(analyzer string) bool {
	return p.directives.enforced[analyzer]
}

// IsHotPath reports whether decl carries the //samzasql:hotpath directive —
// in its doc comment or on the line directly above (or on) the line the
// declaration starts on.
func (p *Package) IsHotPath(decl *ast.FuncDecl) bool {
	pos := p.Fset.Position(decl.Pos())
	lines := p.directives.hotpathLines[pos.Filename]
	if lines == nil {
		return false
	}
	if lines[pos.Line] || lines[pos.Line-1] {
		return true
	}
	if decl.Doc != nil {
		start := p.Fset.Position(decl.Doc.Pos()).Line
		for l := start; l < pos.Line; l++ {
			if lines[l] {
				return true
			}
		}
	}
	return false
}

// HotPathFuncs returns the package's hotpath-annotated declarations.
func (p *Package) HotPathFuncs() []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, f := range p.Syntax {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil && p.IsHotPath(fd) {
				out = append(out, fd)
			}
		}
	}
	return out
}

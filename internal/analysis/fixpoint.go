package analysis

import "sort"

// This file is the worklist fixpoint driver the interprocedural analyzers
// share: each analyzer owns a per-function fact (its summary), a transfer
// function recomputing the fact from the function body plus current callee
// facts, and an equality test. The driver iterates bottom-up until no fact
// changes; recursion and mutual recursion converge as long as the facts are
// monotone and drawn from a finite domain (all four analyzers use grow-only
// sets over program positions, which are both).

// Fact is an analyzer-owned per-function summary value.
type Fact any

// maxFixpointVisitsPerFunc caps how many times one function's transfer may
// re-run, as a backstop against a non-monotone transfer looping forever. At
// the cap the driver stops re-queueing that function; results degrade to
// the last computed fact instead of hanging the build.
const maxFixpointVisitsPerFunc = 64

// FactStore holds the converged facts of one Fixpoint run.
type FactStore struct {
	facts map[*Func]Fact
}

// Get returns fn's fact (nil when the transfer never produced one).
func (s *FactStore) Get(fn *Func) Fact { return s.facts[fn] }

// Fixpoint computes per-function facts to convergence over the call graph.
// transfer recomputes fn's fact; it reads callee facts through get (which
// returns nil before a callee's first visit — transfers must treat nil as
// bottom). equal compares an old and new fact; when a fact changes, every
// caller of fn re-enters the worklist.
func (g *CallGraph) Fixpoint(
	transfer func(fn *Func, get func(*Func) Fact) Fact,
	equal func(old, new Fact) bool,
) *FactStore {
	store := &FactStore{facts: make(map[*Func]Fact, len(g.Funcs))}

	// Deterministic seed order: process callees before callers where the
	// graph allows (position order is a cheap stable approximation; the
	// worklist fixes up the rest).
	queue := make([]*Func, len(g.Funcs))
	copy(queue, g.Funcs)
	sort.SliceStable(queue, func(i, j int) bool { return queue[i].Pos() < queue[j].Pos() })

	inQueue := make(map[*Func]bool, len(queue))
	visits := make(map[*Func]int, len(queue))
	for _, fn := range queue {
		inQueue[fn] = true
	}

	get := func(fn *Func) Fact { return store.facts[fn] }

	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		inQueue[fn] = false

		visits[fn]++
		if visits[fn] > maxFixpointVisitsPerFunc {
			continue
		}
		next := transfer(fn, get)
		old, seen := store.facts[fn]
		if seen && equal(old, next) {
			continue
		}
		store.facts[fn] = next
		for _, site := range g.CallerSites[fn] {
			caller := site.Caller
			if !inQueue[caller] {
				inQueue[caller] = true
				queue = append(queue, caller)
			}
		}
	}
	return store
}

package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ChanLeak finds channels that are created and then abandoned on some CFG
// path — the classic Go goroutine leak: a helper goroutine parks forever on
// a send or receive because the path the creating function actually took
// (usually an early error return or a shutdown branch) never performs the
// matching operation. The runtime's own history motivates the rule: tailer
// goroutines and notify channels in the monitor and kafka layers are exactly
// this shape, and a leaked sender per failed poll adds up in a long-lived
// container.
//
// Two rules, both restricted to channels that do not escape the creating
// function (escaping channels — returned, stored in fields, passed to other
// functions — have lifetimes the analysis cannot see):
//
//   - stuck sender: an unbuffered channel is sent to from a `go` literal
//     without a select alternative, and the creating function has a CFG path
//     from the spawn to its exit that passes no receive from that channel.
//   - stuck receiver: a `go` literal receives from or ranges over the
//     channel without a select alternative, and the creating function has a
//     CFG path from the spawn to its exit that neither closes nor sends on
//     the channel.
//
// A receive/close in a defer runs on every exit path, so it discharges the
// obligation; a select with a default or a second case (ctx.Done and
// friends) is an alternative and exempts the operation.
var ChanLeak = &Analyzer{
	Name: "chan-leak",
	Doc: "a locally-created channel must not strand its goroutine: every CFG path from a " +
		"`go` spawn to function exit must receive from (for in-goroutine senders) or " +
		"close/send on (for in-goroutine receivers) the channel, unless the operation " +
		"has a select alternative or the channel is buffered",
	RunProgram: runChanLeak,
}

// chanOpKind classifies one use of a tracked channel.
type chanOpKind int

const (
	chanSend chanOpKind = iota
	chanRecv
	chanClose
)

// chanOp is one send/recv/close of a tracked channel.
type chanOp struct {
	kind chanOpKind
	pos  token.Pos
	// node is the statement or expression performing the operation.
	node ast.Node
	// goStmt is the enclosing `go` statement when the op runs on a spawned
	// goroutine (nil when it runs on the creating function's own stack).
	goStmt *ast.GoStmt
	// deferred marks ops inside a defer (they run at function exit).
	deferred bool
	// guarded marks ops that are a select comm with an alternative (another
	// case or a default), so they cannot block alone.
	guarded bool
}

// chanTrack accumulates everything known about one created channel.
type chanTrack struct {
	obj      types.Object
	makePos  token.Pos
	buffered bool
	escaped  bool
	ops      []chanOp
}

func runChanLeak(pass *Pass) {
	for _, fn := range pass.Prog.Graph.Funcs {
		checkFuncChannels(pass, fn)
	}
}

// checkFuncChannels analyzes the channels created directly in fn's own body
// (channels created in nested literals are analyzed when those literals are
// visited as their own Func).
func checkFuncChannels(pass *Pass, fn *Func) {
	if fn.CFG == nil {
		return
	}
	info := fn.Pkg.Info

	// Creations: ch := make(chan T[, n]) with a plain local on the left,
	// found shallowly in fn's own CFG nodes.
	tracks := map[types.Object]*chanTrack{}
	walkLockNodes(fn, func(n ast.Node) {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return
		}
		for i, rhs := range as.Rhs {
			obj, buffered, ok := chanMake(info, as, i, rhs)
			if !ok {
				continue
			}
			if _, dup := tracks[obj]; dup {
				// Re-made in a loop; the per-path story is ambiguous, skip.
				tracks[obj].escaped = true
				continue
			}
			tracks[obj] = &chanTrack{obj: obj, makePos: rhs.Pos(), buffered: buffered}
		}
	})
	if len(tracks) == 0 {
		return
	}

	collectChanUses(info, fn.Body(), tracks)

	for _, tr := range tracks {
		if tr.escaped {
			continue
		}
		reportChanLeak(pass, fn, tr)
	}
}

// chanMake matches rhs as make(chan T[, n]) assigned to a local ident and
// returns the channel variable's object. buffered is true when a capacity
// argument is present and not literally zero.
func chanMake(info *types.Info, as *ast.AssignStmt, i int, rhs ast.Expr) (types.Object, bool, bool) {
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return nil, false, false
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "make" {
		return nil, false, false
	}
	if _, ok := info.Uses[id].(*types.Builtin); !ok {
		return nil, false, false
	}
	if _, ok := info.TypeOf(call.Args[0]).(*types.Chan); !ok {
		return nil, false, false
	}
	if i >= len(as.Lhs) {
		return nil, false, false
	}
	lhs, ok := as.Lhs[i].(*ast.Ident)
	if !ok || lhs.Name == "_" {
		return nil, false, false
	}
	var obj types.Object
	if def, ok := info.Defs[lhs]; ok && def != nil {
		obj = def
	} else if use, ok := info.Uses[lhs]; ok {
		obj = use
	}
	if obj == nil {
		return nil, false, false
	}
	buffered := false
	if len(call.Args) > 1 {
		buffered = true
		if lit, ok := ast.Unparen(call.Args[1]).(*ast.BasicLit); ok && lit.Value == "0" {
			buffered = false
		}
	}
	return obj, buffered, true
}

// collectChanUses walks body — including nested function literals, tracking
// go/defer/select context — and records every use of each tracked channel.
func collectChanUses(info *types.Info, body *ast.BlockStmt, tracks map[types.Object]*chanTrack) {
	// guardedComms: send/recv nodes that are the comm of a select clause
	// with an alternative.
	guardedComms := map[ast.Node]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		hasAlternative := len(sel.Body.List) >= 2
		for _, c := range sel.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasAlternative = true
			}
		}
		if !hasAlternative {
			return true
		}
		for _, c := range sel.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
				guardedComms[cc.Comm] = true
				// A recv comm may be wrapped: `v := <-ch` or `<-ch`.
				switch s := cc.Comm.(type) {
				case *ast.ExprStmt:
					guardedComms[ast.Unparen(s.X)] = true
				case *ast.AssignStmt:
					for _, r := range s.Rhs {
						guardedComms[ast.Unparen(r)] = true
					}
				}
			}
		}
		return true
	})

	lookup := func(e ast.Expr) *chanTrack {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return nil
		}
		obj := info.Uses[id]
		if obj == nil {
			return nil
		}
		return tracks[obj]
	}

	var walk func(n ast.Node, goStmt *ast.GoStmt, deferred bool)
	record := func(tr *chanTrack, op chanOp) { tr.ops = append(tr.ops, op) }
	walk = func(n ast.Node, goStmt *ast.GoStmt, deferred bool) {
		ast.Inspect(n, func(x ast.Node) bool {
			switch x := x.(type) {
			case *ast.GoStmt:
				walk(x.Call, x, deferred)
				return false
			case *ast.DeferStmt:
				walk(x.Call, goStmt, true)
				return false
			case *ast.SendStmt:
				if tr := lookup(x.Chan); tr != nil {
					record(tr, chanOp{kind: chanSend, pos: x.Arrow, node: x,
						goStmt: goStmt, deferred: deferred, guarded: guardedComms[x]})
				}
				walk(x.Value, goStmt, deferred)
				// x.Chan itself already classified; don't double as escape.
				return false
			case *ast.UnaryExpr:
				if x.Op == token.ARROW {
					if tr := lookup(x.X); tr != nil {
						record(tr, chanOp{kind: chanRecv, pos: x.OpPos, node: x,
							goStmt: goStmt, deferred: deferred, guarded: guardedComms[x]})
						return false
					}
				}
			case *ast.RangeStmt:
				if tr := lookup(x.X); tr != nil {
					record(tr, chanOp{kind: chanRecv, pos: x.X.Pos(), node: x,
						goStmt: goStmt, deferred: deferred})
					if x.Key != nil {
						walk(x.Key, goStmt, deferred)
					}
					walk(x.Body, goStmt, deferred)
					return false
				}
			case *ast.CallExpr:
				if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
					if _, builtin := info.Uses[id].(*types.Builtin); builtin {
						switch id.Name {
						case "close":
							if len(x.Args) == 1 {
								if tr := lookup(x.Args[0]); tr != nil {
									record(tr, chanOp{kind: chanClose, pos: x.Pos(), node: x,
										goStmt: goStmt, deferred: deferred})
									return false
								}
							}
						case "len", "cap":
							return false // reads, not escapes
						}
					}
				}
				// Any tracked channel passed as an argument (or as the callee
				// receiver) escapes.
				for _, arg := range x.Args {
					if tr := lookup(arg); tr != nil {
						tr.escaped = true
					}
				}
			case *ast.Ident:
				// Remaining bare references: comparisons are harmless, but
				// assignments, returns, composite literals and selector bases
				// alias or publish the channel. Approximation: mark escaped on
				// any use not consumed by a case above, except inside nil
				// comparisons.
				if tr := tracks[info.Uses[x]]; tr != nil {
					tr.escaped = true
				}
			case *ast.BinaryExpr:
				// ch == nil / ch != nil: harmless read.
				if x.Op == token.EQL || x.Op == token.NEQ {
					if lookup(x.X) != nil || lookup(x.Y) != nil {
						return false
					}
				}
			}
			return true
		})
	}
	for _, stmt := range body.List {
		walk(stmt, nil, false)
	}
}

// reportChanLeak applies the stuck-sender / stuck-receiver rules to one
// non-escaping channel.
func reportChanLeak(pass *Pass, fn *Func, tr *chanTrack) {
	var haveDeferredRecv, haveDeferredClose bool
	for _, op := range tr.ops {
		if op.deferred {
			switch op.kind {
			case chanRecv:
				haveDeferredRecv = true
			case chanClose:
				haveDeferredClose = true
			}
		}
	}

	// dischargeNodes collects the fn-own-stack operations of the given kinds
	// — the ops that discharge the goroutine's obligation (goroutine and
	// deferred ops don't gate the creator's paths; defers are handled via
	// haveDeferred* above).
	dischargeNodes := func(kinds ...chanOpKind) map[ast.Node]bool {
		nodes := map[ast.Node]bool{}
		for _, op := range tr.ops {
			if op.goStmt != nil || op.deferred {
				continue
			}
			for _, k := range kinds {
				if op.kind == k {
					nodes[op.node] = true
				}
			}
		}
		return nodes
	}
	blockHas := func(b *Block, nodes map[ast.Node]bool, after token.Pos) bool {
		for _, n := range b.Nodes {
			found := false
			ast.Inspect(n, func(x ast.Node) bool {
				if _, ok := x.(*ast.FuncLit); ok {
					return false
				}
				if nodes[x] && x.Pos() > after {
					found = true
					return false
				}
				return true
			})
			if found {
				return true
			}
		}
		return false
	}
	barredBy := func(nodes map[ast.Node]bool) func(*Block) bool {
		return func(b *Block) bool { return blockHas(b, nodes, token.NoPos) }
	}

	spawnBlock := func(g *ast.GoStmt) *Block {
		for _, b := range fn.CFG.Blocks {
			for _, n := range b.Nodes {
				if n == g {
					return b
				}
			}
		}
		return fn.CFG.Entry // spawned from a nested literal; be conservative
	}

	// abandoned reports whether some path from the spawn to function exit
	// avoids every discharging operation. The spawn block itself discharges
	// when it performs one of the ops after the go statement (straight-line
	// code keeps spawn and discharge in one block).
	abandoned := func(g *ast.GoStmt, nodes map[ast.Node]bool) bool {
		spawn := spawnBlock(g)
		if blockHas(spawn, nodes, g.End()) {
			return false
		}
		return fn.CFG.ReachableFrom(spawn, fn.CFG.Exit, barredBy(nodes))
	}

	reported := false
	for _, op := range tr.ops {
		if reported || op.goStmt == nil || op.guarded || op.deferred {
			continue
		}
		switch op.kind {
		case chanSend:
			if tr.buffered || haveDeferredRecv {
				continue
			}
			if abandoned(op.goStmt, dischargeNodes(chanRecv)) {
				pass.Reportf(tr.makePos,
					"channel may leak its sender goroutine: the goroutine started at %s sends on this unbuffered channel with no select alternative, and %s has a path to return that never receives from it; receive on every path (or buffer the channel, or guard the send with a select)",
					pass.Fset().Position(op.goStmt.Pos()), fn.Name())
				reported = true
			}
		case chanRecv:
			if haveDeferredClose {
				continue
			}
			if abandoned(op.goStmt, dischargeNodes(chanClose, chanSend)) {
				pass.Reportf(tr.makePos,
					"channel may leak its receiver goroutine: the goroutine started at %s receives from this channel with no select alternative, and %s has a path to return that never closes or sends on it; close the channel on every path (defer close is simplest)",
					pass.Fset().Position(op.goStmt.Pos()), fn.Name())
				reported = true
			}
		}
	}
}

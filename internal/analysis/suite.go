package analysis

// Suite returns every project analyzer, in stable order. The first seven are
// per-package; the last four are whole-program (CFG + call graph).
func Suite() []*Analyzer {
	return []*Analyzer{
		ErrDrop,
		GoroutineSupervision,
		HotpathAlloc,
		LockDiscipline,
		MetricsBinding,
		ProfileGuard,
		TraceGuard,
		ChanLeak,
		HotpathBlocking,
		HotpathEscape,
		LockOrder,
	}
}

// ByName returns the analyzer with the given name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range Suite() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

package analysis

// Suite returns every project analyzer, in stable order.
func Suite() []*Analyzer {
	return []*Analyzer{
		ErrDrop,
		GoroutineSupervision,
		HotpathAlloc,
		LockDiscipline,
		MetricsBinding,
		TraceGuard,
	}
}

// ByName returns the analyzer with the given name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range Suite() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Package traceguard is a golden fixture for the trace-guard analyzer:
// trace calls in //samzasql:hotpath functions must branch on the sample bit
// first. Every `// want` comment is a regexp matched against the diagnostic
// on that line; lines without one must stay clean.
package traceguard

import "samzasql/internal/trace"

type envelope struct {
	Trace trace.Context
}

//samzasql:hotpath
func bad(act *trace.Active, m envelope) {
	act.Begin("stage", 0)     // want `unguarded trace\.Begin call in //samzasql:hotpath function bad`
	_ = trace.NextID()        // want `unguarded trace\.NextID call in //samzasql:hotpath function bad`
	if m.Trace.TraceID != 0 { // a non-Sampled condition does not guard
		act.End(1) // want `unguarded trace\.End call in //samzasql:hotpath function bad`
	}
}

//samzasql:hotpath
func good(act *trace.Active, m envelope) {
	// The Sampled check itself is the guard and is legal anywhere.
	if act.Sampled() {
		act.Begin("stage", 0)
		act.End(1)
	}
	// The field spelling of the sample bit guards too.
	if m.Trace.Sampled {
		act.Leaf("store.get", 0, 1)
	}
}

//samzasql:hotpath
func suppressed(act *trace.Active) {
	//samzasql:ignore trace-guard -- cold init path, runs once per task
	act.Begin("stage", 0) // want-suppressed `unguarded trace\.Begin call`
}

// cold has no annotation: unguarded trace calls are legal off the hot path.
func cold(act *trace.Active) {
	act.Begin("stage", 0)
	act.End(1)
}

// Package lockorder is a golden fixture for the lock-order analyzer: the
// module-wide acquisition graph must stay acyclic.
package lockorder

import "sync"

type Broker struct {
	mu sync.Mutex
	n  int
}

type Partition struct {
	mu sync.Mutex
	n  int
}

// forward acquires Broker.mu → Partition.mu.
func forward(b *Broker, p *Partition) {
	b.mu.Lock()
	defer b.mu.Unlock()
	p.mu.Lock() // want `lock order cycle`
	p.n++
	p.mu.Unlock()
}

// backward acquires Partition.mu → Broker.mu: the opposite order. The cycle
// reports once, at the earlier acquisition (in forward above).
func backward(b *Broker, p *Partition) {
	p.mu.Lock()
	defer p.mu.Unlock()
	b.mu.Lock()
	b.n++
	b.mu.Unlock()
}

// consistent takes the same two locks in the forward order everywhere else;
// an edge repeated in one direction is not a cycle.
func consistent(b *Broker, p *Partition) {
	b.mu.Lock()
	p.mu.Lock()
	p.n++
	p.mu.Unlock()
	b.mu.Unlock()
}

// sameClassTwice locks two instances of one class in sequence. Instance
// identity is not decidable statically, so self-edges never report.
func sameClassTwice(p1, p2 *Partition) {
	p1.mu.Lock()
	p2.mu.Lock()
	p2.n++
	p2.mu.Unlock()
	p1.mu.Unlock()
}

// spawned takes the second lock on a fresh goroutine stack: no edge.
func spawned(b *Broker, p *Partition) {
	b.mu.Lock()
	defer b.mu.Unlock()
	go func() {
		p.mu.Lock()
		p.n++
		p.mu.Unlock()
	}()
}

package lockorder

import "sync"

// The interprocedural half of the fixture: the second acquisition happens
// inside a callee, so only the summary fixpoint can see the edge.

type Journal struct {
	mu sync.Mutex
	n  int
}

type Index struct {
	mu sync.Mutex
	n  int
}

func (j *Journal) bump() {
	j.mu.Lock()
	j.n++
	j.mu.Unlock()
}

func (ix *Index) bump() {
	ix.mu.Lock()
	ix.n++
	ix.mu.Unlock()
}

// viaCallee holds Index.mu and reaches Journal.mu through bump.
func viaCallee(ix *Index, j *Journal) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	j.bump() // want `lock order cycle`
}

// viaCalleeBack closes the cycle in the other direction, also via a call.
func viaCalleeBack(ix *Index, j *Journal) {
	j.mu.Lock()
	defer j.mu.Unlock()
	ix.bump()
}

// suppressedPair documents a known, rationalized inversion: the ignore
// directive keeps it visible under -show-ignored without failing the build.
type Left struct {
	mu sync.Mutex
	n  int
}

type Right struct {
	mu sync.Mutex
	n  int
}

func leftThenRight(l *Left, r *Right) {
	l.mu.Lock()
	defer l.mu.Unlock()
	//samzasql:ignore lock-order -- startup-only path; rightThenLeft runs single-threaded before serving
	r.mu.Lock() // want-suppressed `lock order cycle`
	r.n++
	r.mu.Unlock()
}

func rightThenLeft(l *Left, r *Right) {
	r.mu.Lock()
	defer r.mu.Unlock()
	l.mu.Lock()
	l.n++
	l.mu.Unlock()
}

// Package chanleak is a golden fixture for the chan-leak analyzer: locally
// created channels must not strand the goroutines parked on them.
package chanleak

import "context"

func compute() int { return 42 }

// stuckSender is the classic leak: the early error return abandons the
// unbuffered channel while the spawned sender is parked on it forever.
func stuckSender(fail bool) (int, error) {
	ch := make(chan int) // want `leak its sender goroutine`
	go func() {
		ch <- compute()
	}()
	if fail {
		return 0, errFailed
	}
	return <-ch, nil
}

// bufferedSender is legal: the send completes even if nobody ever receives.
func bufferedSender(fail bool) (int, error) {
	ch := make(chan int, 1)
	go func() {
		ch <- compute()
	}()
	if fail {
		return 0, errFailed
	}
	return <-ch, nil
}

// guardedSender is legal: the select alternative lets the goroutine give up.
func guardedSender(ctx context.Context, fail bool) (int, error) {
	ch := make(chan int)
	go func() {
		select {
		case ch <- compute():
		case <-ctx.Done():
		}
	}()
	if fail {
		return 0, errFailed
	}
	return <-ch, nil
}

// receivedOnAllPaths is legal: every path to return receives first.
func receivedOnAllPaths(fail bool) (int, error) {
	ch := make(chan int)
	go func() {
		ch <- compute()
	}()
	v := <-ch
	if fail {
		return v, errFailed
	}
	return v, nil
}

// deferredDrain is legal: the deferred receive runs on every exit path.
func deferredDrain(fail bool) (int, error) {
	ch := make(chan int)
	go func() {
		ch <- compute()
	}()
	defer func() { <-ch }()
	if fail {
		return 0, errFailed
	}
	return 0, nil
}

// stuckReceiver leaks the consumer: no path closes the channel, so the
// range never terminates.
func stuckReceiver(fail bool) error {
	ch := make(chan int) // want `leak its receiver goroutine`
	go func() {
		for v := range ch {
			sink(v)
		}
	}()
	if fail {
		return errFailed
	}
	ch <- 1
	return nil
}

// closedReceiver is legal: the deferred close terminates the range on every
// exit path.
func closedReceiver(fail bool) error {
	ch := make(chan int)
	defer close(ch)
	go func() {
		for v := range ch {
			sink(v)
		}
	}()
	if fail {
		return errFailed
	}
	ch <- 1
	return nil
}

// escaped channels have lifetimes the analysis cannot see: no report.
func escaped(fail bool) error {
	ch := make(chan int)
	go func() {
		ch <- compute()
	}()
	register(ch)
	if fail {
		return errFailed
	}
	return nil
}

// suppressed documents a rationalized leak-shape (the process exits right
// after, so the parked goroutine is moot).
func suppressed(fail bool) (int, error) {
	//samzasql:ignore chan-leak -- crash-only shutdown path; the process exits before the goroutine matters
	ch := make(chan int) // want-suppressed `leak its sender goroutine`
	go func() {
		ch <- compute()
	}()
	if fail {
		return 0, errFailed
	}
	return <-ch, nil
}

var errFailed = errorString("failed")

type errorString string

func (e errorString) Error() string { return string(e) }

func sink(int)          {}
func register(chan int) {}

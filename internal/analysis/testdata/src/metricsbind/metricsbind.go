// Package metricsbind is a golden fixture for the metrics-binding analyzer:
// registry name-lookups are banned inside Process/Window methods, poll
// loops, and //samzasql:hotpath functions, and legal everywhere handles are
// bound once.
package metricsbind

import "samzasql/internal/metrics"

type task struct {
	reg      *metrics.Registry
	messages *metrics.Counter
}

// Init is the binding site: lookups are legal here.
func (t *task) Init() {
	t.messages = t.reg.Counter("task.messages")
	_ = t.reg.Gauge("task.lag")
}

// Process is a per-message path by convention, no annotation needed.
func (t *task) Process(n int) {
	t.reg.Counter("task.messages").Add(int64(n)) // want `registry lookup Counter\(\.\.\.\) inside a per-message Process path`
	t.messages.Add(int64(n))                     // bound handle: fine
}

// Window is the other conventional per-message entry point.
func (t *task) Window() {
	_ = t.reg.Histogram("task.window") // want `registry lookup Histogram\(\.\.\.\) inside a per-message Window path`
}

// pollPartitions matches the poll-prefix convention.
func (t *task) pollPartitions() {
	_ = t.reg.Timer("task.poll") // want `registry lookup Timer\(\.\.\.\) inside a per-message pollPartitions path`
}

//samzasql:hotpath
func (t *task) drain() {
	_ = t.reg.Gauge("task.drain") // want `registry lookup Gauge\(\.\.\.\) inside a //samzasql:hotpath function`
}

func (t *task) pollSlow() {
	//samzasql:ignore metrics-binding -- cold rebalance path, runs once per reassignment
	t.reg.Counter("task.rebalances").Inc() // want-suppressed `registry lookup Counter\(\.\.\.\)`
}

// Package hotpathblock is a golden fixture for the hotpath-blocking
// analyzer: no path from a //samzasql:hotpath root may reach a blocking
// operation.
package hotpathblock

import (
	"sync"
	"time"
)

type Table struct {
	mu   sync.Mutex
	vals map[string]int
}

// lockedGet is not annotated: its lock surfaces at hot call sites.
func (t *Table) lockedGet(k string) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.vals[k]
}

// depth2 shows the chain through two un-annotated frames.
func depth2(t *Table, k string) int { return t.lockedGet(k) }

//samzasql:hotpath
func directLock(t *Table, k string) int {
	t.mu.Lock() // want `mu\.Lock\(\) blocks inside hot path`
	defer t.mu.Unlock()
	return t.vals[k]
}

//samzasql:hotpath
func viaCall(t *Table, k string) int {
	return depth2(t, k) // want `reaches .*mu\.Lock\(\).*via hotpathblock\.depth2 → \(\*hotpathblock\.Table\)\.lockedGet`
}

//samzasql:hotpath
func sleeps() {
	time.Sleep(time.Millisecond) // want `time\.Sleep blocks inside hot path`
}

//samzasql:hotpath
func channelOps(ch chan int, done chan struct{}) int {
	ch <- 1   // want `channel send blocks inside hot path`
	v := <-ch // want `channel receive blocks inside hot path`
	select {  // want `select without default blocks inside hot path`
	case <-done:
	case ch <- v:
	}
	return v
}

//samzasql:hotpath
func nonBlockingOps(ch chan int) int {
	// A select with a default never parks: legal.
	select {
	case v := <-ch:
		return v
	default:
	}
	// TryLock does not block either.
	return 0
}

// hotCallee is annotated itself: the boundary rule means its lock reports
// here, once, and not again at every hot caller.
//
//samzasql:hotpath
func hotCallee(t *Table, k string) int {
	//samzasql:ignore hotpath-blocking -- single-owner table: lock is uncontended by design, measured at ns
	t.mu.Lock() // want-suppressed `mu\.Lock\(\) blocks inside hot path`
	defer t.mu.Unlock()
	return t.vals[k]
}

//samzasql:hotpath
func hotCaller(t *Table, k string) int {
	// No finding here: hotCallee owns (and suppressed) its own fact.
	return hotCallee(t, k)
}

//samzasql:hotpath
func spawns(t *Table, k string) {
	// The goroutine blocks on its own stack, not the hot path's.
	go func() {
		t.mu.Lock()
		defer t.mu.Unlock()
		t.vals[k] = 1
	}()
}

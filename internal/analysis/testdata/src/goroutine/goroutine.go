// Package goroutine is a golden fixture for the goroutine-supervision
// analyzer. The enforce directive opts this package into the analyzer's
// scope, the way internal/samza and internal/yarn are in scope by path.
//
//samzasql:enforce goroutine-supervision
package goroutine

import "sync"

func work() {}

func unsupervised(ch chan int) {
	go work()   // want `unsupervised goroutine`
	go func() { // want `unsupervised goroutine`
		ch <- 1
	}()
}

func supervised(ch chan int) {
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		work()
	}()
	go func() {
		defer wg.Done()
		ch <- 1
	}()
	wg.Wait()
}

func suppressed() {
	//samzasql:ignore goroutine-supervision -- fire-and-forget warmup; process lifetime bounds it
	go work() // want-suppressed `unsupervised goroutine`
}

// poller mirrors the cluster monitor's tailer layout: long-lived goroutines
// that forward decoded batches over a channel, joined through the owner's
// WaitGroup so Stop can drain them.
type poller struct {
	wg sync.WaitGroup
	ch chan int
}

func (p *poller) start() {
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		for v := range p.ch {
			_ = v
		}
	}()
}

func (p *poller) startLeaky() {
	go func() { // want `unsupervised goroutine`
		for v := range p.ch {
			_ = v
		}
	}()
}

func (p *poller) stop() {
	close(p.ch)
	p.wg.Wait()
}

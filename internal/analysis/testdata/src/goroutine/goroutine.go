// Package goroutine is a golden fixture for the goroutine-supervision
// analyzer. The enforce directive opts this package into the analyzer's
// scope, the way internal/samza and internal/yarn are in scope by path.
//
//samzasql:enforce goroutine-supervision
package goroutine

import "sync"

func work() {}

func unsupervised(ch chan int) {
	go work()   // want `unsupervised goroutine`
	go func() { // want `unsupervised goroutine`
		ch <- 1
	}()
}

func supervised(ch chan int) {
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		work()
	}()
	go func() {
		defer wg.Done()
		ch <- 1
	}()
	wg.Wait()
}

func suppressed() {
	//samzasql:ignore goroutine-supervision -- fire-and-forget warmup; process lifetime bounds it
	go work() // want-suppressed `unsupervised goroutine`
}

package callgraph

// Wide is implemented by more module types than devirtLimit, so a call
// through it must resolve to Unknown rather than fanning out.
type Wide interface {
	ID() int
}

type W01 struct{}

func (W01) ID() int { return 1 }

type W02 struct{}

func (W02) ID() int { return 2 }

type W03 struct{}

func (W03) ID() int { return 3 }

type W04 struct{}

func (W04) ID() int { return 4 }

type W05 struct{}

func (W05) ID() int { return 5 }

type W06 struct{}

func (W06) ID() int { return 6 }

type W07 struct{}

func (W07) ID() int { return 7 }

type W08 struct{}

func (W08) ID() int { return 8 }

type W09 struct{}

func (W09) ID() int { return 9 }

type W10 struct{}

func (W10) ID() int { return 10 }

type W11 struct{}

func (W11) ID() int { return 11 }

type W12 struct{}

func (W12) ID() int { return 12 }

type W13 struct{}

func (W13) ID() int { return 13 }

// UseWide calls through the over-wide interface.
func UseWide(w Wide) int { return w.ID() }

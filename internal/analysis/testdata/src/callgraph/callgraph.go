// Package callgraph is a structural fixture for call-graph resolution
// tests: no want comments — callgraph_test.go asserts the edges directly.
package callgraph

// Store is a narrow interface with two module implementations, so calls
// through it devirtualize to both.
type Store interface {
	Get(k string) int
}

type MemStore struct{}

func (MemStore) Get(k string) int { return 1 }

type DiskStore struct{}

func (*DiskStore) Get(k string) int { return 2 }

// NotAStore has no Get method and must not appear as a devirtualized target.
type NotAStore struct{}

func (NotAStore) Put(k string) {}

// UseIface calls through the interface: two devirtualized callees.
func UseIface(s Store) int { return s.Get("x") }

// Static calls helper directly: one static callee.
func Static() int { return helper() }

func helper() int { return 7 }

// Literals exercises literal resolution: a direct literal call, a call
// through a variable (unknown), and go/defer flagged sites.
func Literals() {
	f := func() int { return 1 }
	_ = f() // unknown: call through a function value
	go func() { helper() }()
	defer func() { helper() }()
	func() { helper() }() // direct literal call: resolved
}

// Recurse and Mutual form a call-graph cycle for the fixpoint test.
func Recurse(n int) int {
	if n == 0 {
		return 0
	}
	return Mutual(n - 1)
}

func Mutual(n int) int {
	if n == 0 {
		return 1
	}
	return Recurse(n - 1)
}

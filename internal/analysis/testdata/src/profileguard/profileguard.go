// Package profileguard is a golden fixture for the profile-guard analyzer:
// profiler calls in //samzasql:hotpath functions must branch on the enable
// bit first. Every `// want` comment is a regexp matched against the
// diagnostic on that line; lines without one must stay clean.
package profileguard

import "samzasql/internal/profile"

//samzasql:hotpath
func bad(prof *profile.Profiler, busy bool) {
	_, _ = prof.CaptureHeapDelta()  // want `unguarded profile\.CaptureHeapDelta call in //samzasql:hotpath function bad`
	_, _ = prof.CaptureGoroutines() // want `unguarded profile\.CaptureGoroutines call in //samzasql:hotpath function bad`
	if busy {                       // a non-Enabled condition does not guard
		profile.SortStats(nil) // want `unguarded profile\.SortStats call in //samzasql:hotpath function bad`
	}
}

//samzasql:hotpath
func good(prof *profile.Profiler) {
	// The Enabled check itself is the guard and is legal anywhere — it is
	// nil-safe and branch-only.
	if prof.Enabled() {
		_, _ = prof.CaptureHeapDelta()
		profile.SortStats(nil)
	}
}

//samzasql:hotpath
func suppressed(prof *profile.Profiler) {
	//samzasql:ignore profile-guard -- cold init path, runs once per task
	_, _ = prof.CaptureGoroutines() // want-suppressed `unguarded profile\.CaptureGoroutines call`
}

// cold has no annotation: unguarded profiler calls are legal off the hot
// path — the reporter goroutine lives here.
func cold(prof *profile.Profiler) {
	_, _ = prof.CaptureHeapDelta()
	_, _ = prof.CaptureGoroutines()
}

// Package errdrop is a golden fixture for the error-drop analyzer. The
// enforce directive below opts this package into the analyzer's scope, the
// way internal/kv, internal/kafka and internal/samza are in scope by path.
//
//samzasql:enforce error-drop
package errdrop

type store struct{}

func (store) Flush() error              { return nil }
func (store) Commit(offset int64) error { return nil }
func (store) Checkpoint() error         { return nil }
func (store) Produce(v []byte) error    { return nil }
func (store) Close()                    {}

func drops(s store) {
	s.Flush()         // want `error result of Flush\(\.\.\.\) is discarded`
	go s.Produce(nil) // want `error result of Produce\(\.\.\.\) is discarded by the go statement`
	defer s.Commit(0) // want `error result of Commit\(\.\.\.\) is discarded by the defer`
	s.Close()         // no error result: nothing to drop
}

func handles(s store) error {
	if err := s.Flush(); err != nil {
		return err
	}
	// An explicit blank assignment is an audited decision, not a drop.
	_ = s.Checkpoint()
	return s.Commit(0)
}

func suppressed(s store) {
	//samzasql:ignore error-drop -- best-effort flush on the shutdown path; the restart replays the changelog
	s.Flush() // want-suppressed `error result of Flush\(\.\.\.\) is discarded`
}

// Package hotpathescape is a golden fixture for the hotpath-escape
// analyzer: no function reachable from a //samzasql:hotpath root may leak
// the address of a local onto the heap.
package hotpathescape

type box struct {
	p *int
}

type holder struct {
	slot *int
}

var global holder

func sinkIface(v any)  {}
func sinkPtr(p *int)   {}
func consume(f func()) { f() }

//samzasql:hotpath
func ifaceArg(n int) {
	sinkIface(&n) // want `&n converted to interface parameter`
}

//samzasql:hotpath
func storedThroughField(n int) {
	global.slot = &n // want `&n stored through global\.slot`
}

//samzasql:hotpath
func returned(n int) *int {
	return &n // want `&n returned`
}

//samzasql:hotpath
func appended(dst []*int, n int) []*int {
	return append(dst, &n) // want `&n appended to a slice`
}

//samzasql:hotpath
func composite(n int) box {
	return box{p: &n} // want `&n stored in a composite literal`
}

//samzasql:hotpath
func sentOnChannel(ch chan *int, n int) {
	ch <- &n // want `&n sent on a channel`
}

//samzasql:hotpath
func pointerParamIsFine(n int) {
	// A pointer parameter is not an interface conversion; with no other
	// escape route the compiler keeps n on the stack.
	sinkPtr(&n)
}

// helper is NOT annotated, but hot roots reach it: the escaping closure
// capture reports here with the route.
func helper(n int) {
	consume(func() { n++ }) // want `closure captures "n" and escapes in hotpathescape\.helper \(reached from hot path via hotpathescape\.callsHelper\)`
}

//samzasql:hotpath
func callsHelper(n int) {
	helper(n)
}

// coldEscape is identical to helper but nothing hot reaches it: no report.
func coldEscape(n int) {
	consume(func() { n++ })
}

//samzasql:hotpath
func suppressed(n int) *int {
	//samzasql:ignore hotpath-escape -- snapshot pointer handed to the (cold) checkpoint writer once per commit interval
	return &n // want-suppressed `&n returned`
}
